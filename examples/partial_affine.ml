(* Partial affine index expressions: the paper's Figure 7.

   Two situations where no single affine function covers a reference:
   (a) a local array whose base address depends on the call path, and
   (b) a data-dependent offset parameter. In both, the accesses *inside*
   the function are regular, and Algorithm 3 recovers an expression over
   the innermost M < N iterators with a floating constant term.

   Run with: dune exec examples/partial_affine.exe *)

let banner title =
  Printf.printf "\n=== %s %s\n" title (String.make (60 - String.length title) '=')

let show name src =
  banner (name ^ ": program");
  print_string src;
  let thresholds = Foray_core.Filter.{ nexec = 10; nloc = 5 } in
  let r =
    match Foray_core.Pipeline.run_source ~thresholds src with
    | Ok o -> o.Foray_core.Pipeline.result
    | Error e ->
        prerr_endline (Foray_core.Error.to_string e);
        exit (Foray_core.Error.exit_code e)
  in
  banner (name ^ ": FORAY model");
  print_string (Foray_core.Model.to_c r.model);
  banner (name ^ ": per-reference analysis");
  List.iter
    (fun ((node : Foray_core.Looptree.node), (ri : Foray_core.Looptree.refinfo)) ->
      let a = ri.aff in
      if Foray_core.Affine.execs a >= 10 && Foray_core.Affine.has_iterator a
      then
        Printf.printf
          "site %x at depth %d: %s, m=%d, coefficients [%s], %d \
           misprediction(s)\n"
          (Foray_core.Affine.site a)
          node.depth
          (if Foray_core.Affine.partial a then "PARTIAL affine"
           else "full affine")
          (Foray_core.Affine.m a)
          (String.concat "; "
             (List.map string_of_int (Foray_core.Affine.included_terms a)))
          (Foray_core.Affine.mispredictions a))
    (Foray_core.Looptree.refs r.tree)

let () =
  show "Figure 7a (stack-dependent base)" Foray_suite.Figures.fig7a;
  show "Figure 7b (offset parameter)" Foray_suite.Figures.fig7b
