(* Quickstart: the complete FORAY-GEN flow on the paper's Figure 4 example.

   Reproduces, in order: the original program (Figure 4(a)), the
   checkpoint-annotated program (Figure 4(b)), the head of the profile
   trace (Figure 4(c)) and the extracted FORAY model (Figure 4(d)) with its
   [1*i_inner + 103*i_outer] index expression.

   Run with: dune exec examples/quickstart.exe *)

let banner title =
  Printf.printf "\n=== %s %s\n" title (String.make (60 - String.length title) '=')

(* The typed pipeline API returns failures as values; a demo's error
   policy is to print the error and exit with its documented code. *)
let or_die = function
  | Ok v -> v
  | Error e ->
      prerr_endline (Foray_core.Error.to_string e);
      exit (Foray_core.Error.exit_code e)

let () =
  let src = Foray_suite.Figures.fig4a in
  banner "Original program (Figure 4a)";
  print_string src;

  let prog = Minic.Parser.program src in
  Minic.Sema.check_exn prog;

  banner "Annotated program (Figure 4b)";
  print_string (Minic.Pretty.program (Foray_instrument.Annotate.program prog));

  banner "Profile trace, first 24 records (Figure 4c)";
  let (_ : Foray_core.Pipeline.outcome), trace =
    or_die (Foray_core.Pipeline.run_offline prog)
  in
  List.iteri
    (fun i e -> if i < 24 then print_endline (Foray_trace.Event.to_line e))
    trace;
  Printf.printf "... (%d records total)\n" (List.length trace);

  banner "FORAY model (Figure 4d)";
  (* The example is tiny, so relax the paper's Nexec=20/Nloc=10 thresholds
     that target real workloads. *)
  let thresholds = Foray_core.Filter.{ nexec = 2; nloc = 2 } in
  let r =
    (or_die (Foray_core.Pipeline.run_source ~thresholds src))
      .Foray_core.Pipeline.result
  in
  print_string (Foray_core.Model.to_c r.model);

  banner "What the static baseline sees";
  let static = Foray_static.Baseline.analyze prog in
  Printf.printf
    "canonical for loops: %d of %d; statically analyzable references: %d\n"
    (List.length static.canonical_loops)
    (List.length static.total_loops)
    (List.length static.analyzable_refs);
  Printf.printf
    "FORAY-GEN recovered %d reference(s) the static analysis cannot see.\n"
    (Foray_core.Model.n_refs r.model
    - List.length static.analyzable_refs)
