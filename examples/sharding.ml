(* Sharded trace analysis on the paper's Figure 4(a) program.

   Cuts a stored trace into checkpoint-aligned shards, prints the shard
   table (where each cut landed and the loop stack it restores), analyzes
   the shards independently on a domain pool and shows that the merged
   model is byte-identical to the sequential one — the contract behind
   `foraygen analyze --shards N`.

   Run with: dune exec examples/sharding.exe *)

module Tracefile = Foray_trace.Tracefile

let banner title =
  Printf.printf "\n=== %s %s\n" title (String.make (60 - String.length title) '=')

let () =
  let src = Foray_suite.Figures.fig4a in
  let prog = Minic.Parser.program src in
  (* fig4a is a teaching-sized program: the paper analyzes it with
     Nexec = Nloc = 2 (its loops run handfuls of iterations). *)
  let thresholds = Foray_core.Filter.{ nexec = 2; nloc = 2 } in
  let (_ : Foray_core.Pipeline.outcome), trace =
    match Foray_core.Pipeline.run_offline ~thresholds prog with
    | Ok x -> x
    | Error e ->
        prerr_endline (Foray_core.Error.to_string e);
        exit (Foray_core.Error.exit_code e)
  in
  let events = Array.of_list trace in
  Printf.printf "fig4a trace: %d events\n" (Array.length events);

  banner "Shard table (n = 4)";
  let shards = Tracefile.shards ~n:4 events in
  Printf.printf "%-6s %-7s %-6s %s\n" "shard" "start" "len" "context (lid, iter)";
  List.iter
    (fun (s : Tracefile.shard) ->
      Printf.printf "%-6d %-7d %-6d [%s]\n" s.s_index s.s_start s.s_len
        (String.concat "; "
           (List.map
              (fun (lid, iter) -> Printf.sprintf "(%d, %d)" lid iter)
              s.s_context)))
    shards;
  print_string
    "Each shard after the first starts at a checkpoint; its context is\n\
     the loop stack the sequential walker would hold there, so a fresh\n\
     mergeable walker resumes mid-nest with the right iteration counters.\n";

  banner "Per-shard trees, merged";
  let loop_kinds = Foray_instrument.Annotate.loop_table prog in
  let seq_tree, _ = Foray_core.Pipeline.analyze_events events in
  let seq = Foray_core.Model.to_c (Foray_core.Model.of_tree ~thresholds ~loop_kinds seq_tree) in
  List.iter
    (fun n ->
      let tree, _ = Foray_core.Pipeline.analyze_events ~shards:n events in
      let model = Foray_core.Model.to_c (Foray_core.Model.of_tree ~thresholds ~loop_kinds tree) in
      Printf.printf "%2d shard(s): model %s sequential\n" n
        (if String.equal model seq then "==" else "<> (BUG)"))
    [ 1; 2; 4; 7; 64 ];

  banner "The sequential (= sharded) model";
  print_string seq
