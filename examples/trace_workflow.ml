(* The paper's two-stage workflow with a stored trace, plus model
   validation:

   1. simulate the gsm benchmark, streaming the trace to a binary file
      (the simulator never holds the trace in memory);
   2. re-read the file and run Algorithms 2+3 over it;
   3. check the result matches the online (no-file) analysis;
   4. replay the trace against the model and report prediction fidelity;
   5. compare cache vs SPM energy for the same trace's array traffic.

   Run with: dune exec examples/trace_workflow.exe *)

let banner title =
  Printf.printf "\n=== %s %s\n" title (String.make (60 - String.length title) '=')

let () =
  let bench = Option.get (Foray_suite.Suite.find "gsm") in
  let prog = Minic.Parser.program bench.source in
  Minic.Sema.check_exn prog;
  let instrumented = Foray_instrument.Annotate.program prog in
  let path = Filename.temp_file "gsm" ".trace" in

  banner "Stage 1: simulate, streaming the trace to disk";
  let file_sink, close =
    Foray_trace.Tracefile.sink_to_file ~format:Foray_trace.Tracefile.Binary
      path
  in
  let events = ref 0 in
  let sink e = incr events; file_sink e in
  let sim = Minic_sim.Interp.run instrumented ~sink in
  close ();
  let size =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    close_in ic;
    n
  in
  Printf.printf "simulated %d statements, wrote %d events (%d bytes, %.1f B/event)\n"
    sim.steps !events size
    (float_of_int size /. float_of_int !events);

  banner "Stage 2: analyze the stored trace";
  let tree = Foray_core.Looptree.create () in
  Foray_trace.Tracefile.iter path (Foray_core.Looptree.sink tree);
  let loop_kinds = Foray_instrument.Annotate.loop_table prog in
  let model = Foray_core.Model.of_tree ~loop_kinds tree in
  Printf.printf "model: %d loops, %d references\n"
    (Foray_core.Model.n_loops model)
    (Foray_core.Model.n_refs model);

  banner "Stage 2b: the same analysis, sharded 4 ways across domains";
  let events, _salvage =
    match Foray_trace.Tracefile.read_events path with
    | Ok x -> x
    | Error _ -> assert false (* salvage mode always returns Ok *)
  in
  let sharded_tree, _ = Foray_core.Pipeline.analyze_events ~shards:4 events in
  let sharded_model = Foray_core.Model.of_tree ~loop_kinds sharded_tree in
  Printf.printf "4-shard model identical to the sequential one: %b\n"
    (Foray_core.Model.to_c sharded_model = Foray_core.Model.to_c model);

  banner "Stage 3: agreement with the online analysis";
  let online =
    match Foray_core.Pipeline.run prog with
    | Ok o -> o.Foray_core.Pipeline.result
    | Error e ->
        prerr_endline (Foray_core.Error.to_string e);
        exit (Foray_core.Error.exit_code e)
  in
  Printf.printf "identical models: %b\n"
    (Foray_core.Model.to_c online.model = Foray_core.Model.to_c model);

  banner "Stage 4: model fidelity (replay the trace against the model)";
  let vsink, finish = Foray_core.Validate.sink model in
  Foray_trace.Tracefile.iter path vsink;
  let rep = finish () in
  Printf.printf "covered %d accesses (%.1f%% of all), accuracy %.2f%%\n"
    rep.covered
    (100.0 *. float_of_int rep.covered
    /. float_of_int (rep.covered + rep.uncovered))
    (100.0 *. Foray_core.Validate.overall rep);

  banner "Stage 5: cache vs SPM on this workload (2 KiB)";
  let cmp = Foray_report.Memcompare.run bench ~capacity:2048 in
  Printf.printf
    "all-main %.0f nJ | cache %.0f nJ (%.0f%% hits) | SPM+buffers %.0f nJ\n"
    cmp.main_energy cmp.cache_energy
    (100.0 *. cmp.cache_hit_rate)
    cmp.spm_energy;
  Sys.remove path
