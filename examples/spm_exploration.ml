(* SPM design-space exploration on the jpeg benchmark: Phase II of the
   paper's Figure 3 flow.

   Extracts the FORAY model of the synthetic jpeg encoder, derives buffer
   candidates with the reuse analysis, sweeps scratch-pad sizes, and prints
   the transformed FORAY model for the best configuration.

   Run with: dune exec examples/spm_exploration.exe *)

let banner title =
  Printf.printf "\n=== %s %s\n" title (String.make (60 - String.length title) '=')

let () =
  let bench = Option.get (Foray_suite.Suite.find "jpeg") in
  banner "Phase I: extract the FORAY model";
  let r =
    match Foray_core.Pipeline.run_source bench.source with
    | Ok o -> o.Foray_core.Pipeline.result
    | Error e ->
        prerr_endline (Foray_core.Error.to_string e);
        exit (Foray_core.Error.exit_code e)
  in
  Printf.printf "model: %d loops, %d references, %d distinct sites\n"
    (Foray_core.Model.n_loops r.model)
    (Foray_core.Model.n_refs r.model)
    (List.length r.model.sites);

  banner "Phase II step 2: buffer candidates from reuse analysis";
  let cands = Foray_spm.Reuse.candidates r.model in
  List.iter (fun c -> Format.printf "  %a@." Foray_spm.Reuse.pp c) cands;

  banner "Phase II step 3: design space exploration";
  let sweep =
    List.map
      (fun (s, (sol : Foray_spm.Dse.solution)) -> (s, sol.selection))
      (Foray_spm.Dse.sweep r.model)
  in
  List.iter
    (fun (_, sel) -> Format.printf "%a@." Foray_spm.Dse.pp_selection sel)
    sweep;
  let best_size, best =
    List.fold_left
      (fun (bs, b) (s, sel) ->
        if sel.Foray_spm.Dse.saving_pct > b.Foray_spm.Dse.saving_pct then
          (s, sel)
        else (bs, b))
      (List.hd sweep) (List.tl sweep)
  in
  Printf.printf "best configuration: %d bytes (%.1f%% energy saved)\n"
    best_size best.saving_pct;

  banner "Phase II step 4: transformed FORAY model";
  print_string (Foray_spm.Transform.apply r.model best);

  banner "Greedy vs optimal selection (ablation)";
  List.iter
    (fun (s, _) ->
      let g = Foray_spm.Dse.select_greedy cands ~spm_bytes:s in
      let o = Foray_spm.Dse.select_optimal cands ~spm_bytes:s in
      Printf.printf "  %5dB: greedy %.1f%%, optimal %.1f%%\n" s
        g.Foray_spm.Dse.saving_pct o.Foray_spm.Dse.saving_pct)
    sweep
