(* Inter-function optimization hints: the paper's Figure 9 example.

   [foo] is called from two loops with different strides. Because the
   FORAY model inlines functions per dynamic context, foo's loop
   materializes twice with different affine coefficients, and FORAY-GEN
   suggests duplicating the function so each call site can be optimized
   separately.

   Run with: dune exec examples/inlining_hints.exe *)

let banner title =
  Printf.printf "\n=== %s %s\n" title (String.make (60 - String.length title) '=')

let () =
  let src = Foray_suite.Figures.fig9 in
  banner "Program (Figure 9)";
  print_string src;

  let thresholds = Foray_core.Filter.{ nexec = 5; nloc = 5 } in
  let r =
    match Foray_core.Pipeline.run_source ~thresholds src with
    | Ok o -> o.Foray_core.Pipeline.result
    | Error e ->
        prerr_endline (Foray_core.Error.to_string e);
        exit (Foray_core.Error.exit_code e)
  in

  banner "FORAY model: foo's loop appears once per calling context";
  print_string (Foray_core.Model.to_c r.model);

  banner "Duplication hints";
  print_string (Foray_core.Hints.to_string (Foray_core.Pipeline.hints r));

  banner "Why this matters";
  print_endline
    "The two contexts access A[] with strides 40 and 8 bytes per outer\n\
     iteration. A scratch-pad buffer sized for the first pattern is\n\
     suboptimal for the second; duplicating foo lets Phase II pick a\n\
     buffer per call site (Section 4 of the paper)."
