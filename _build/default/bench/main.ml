(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, the Phase II SPM results, the ablations called out in
   DESIGN.md, and bechamel microbenchmarks for the complexity claims.

   Run with: dune exec bench/main.exe *)

open Foray_core
module Report = Foray_report.Report
module Suite = Foray_suite.Suite
module Figures = Foray_suite.Figures
module Tablefmt = Foray_util.Tablefmt

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let th nexec nloc = Filter.{ nexec; nloc }

(* ------------------------------------------------------------------ *)
(* Tables I-III (the paper's evaluation section)                       *)
(* ------------------------------------------------------------------ *)

let tables () =
  section "Paper evaluation: Tables I-III";
  let t0 = Sys.time () in
  let reports = Report.report_all () in
  Printf.printf "(pipeline over the 6-benchmark suite: %.2fs)\n\n" (Sys.time () -. t0);
  print_string (Report.table1 reports);
  print_newline ();
  print_string (Report.table2 reports);
  print_newline ();
  print_string (Report.table3 reports);
  print_newline ();
  print_string (Report.headline reports)

(* ------------------------------------------------------------------ *)
(* Figure reproductions                                                *)
(* ------------------------------------------------------------------ *)

let figure2 () =
  section "Figure 2: FORAY models of the Figure 1 excerpts";
  let r = Pipeline.run_source ~thresholds:(th 10 10) Figures.fig1 in
  print_string (Model.to_c r.model)

let figure4 () =
  section "Figure 4: annotated program, trace and model";
  let prog = Minic.Parser.program Figures.fig4a in
  let _, trace = Pipeline.run_offline ~thresholds:(th 2 2) prog in
  Printf.printf "trace (first 16 of %d records):\n" (List.length trace);
  List.iteri
    (fun i e -> if i < 16 then print_endline ("  " ^ Foray_trace.Event.to_line e))
    trace;
  let r = Pipeline.run_source ~thresholds:(th 2 2) Figures.fig4a in
  print_string (Model.to_c r.model)

let figure7 () =
  section "Figure 7: partial affine index expressions";
  List.iter
    (fun (name, src) ->
      let r = Pipeline.run_source ~thresholds:(th 10 5) src in
      let partials =
        List.filter (fun (_, (mr : Model.mref)) -> mr.partial)
          (Model.all_refs r.model)
      in
      Printf.printf "%s: %d model ref(s), %d partial\n" name
        (Model.n_refs r.model) (List.length partials);
      List.iter
        (fun (_, (mr : Model.mref)) ->
          Printf.printf
            "  site %x: partial over %d of %d loops, expression %s\n" mr.site
            mr.m mr.depth (Model.expr_of_ref mr))
        partials)
    [ ("fig7a (stack base)", Figures.fig7a);
      ("fig7b (offset param)", Figures.fig7b) ]

let figure9 () =
  section "Figure 9: function duplication hints";
  let r = Pipeline.run_source ~thresholds:(th 5 5) Figures.fig9 in
  print_string (Hints.to_string (Pipeline.hints r))

(* ------------------------------------------------------------------ *)
(* Phase II: SPM design-space exploration                              *)
(* ------------------------------------------------------------------ *)

let spm_sweep () =
  section "Phase II: SPM energy savings per benchmark (optimal selection)";
  let sizes = [ 256; 512; 1024; 2048; 4096; 8192; 16384 ] in
  let t =
    Tablefmt.create ~title:"Energy saved vs all-main-memory, by SPM size"
      ("Benchmark" :: List.map (fun s -> Printf.sprintf "%dB" s) sizes)
  in
  List.iter
    (fun (b : Suite.bench) ->
      let r = Pipeline.run_source b.source in
      let cands = Foray_spm.Reuse.candidates r.model in
      let row =
        List.map
          (fun s ->
            let sel = Foray_spm.Dse.select_optimal cands ~spm_bytes:s in
            Printf.sprintf "%.1f%%" sel.saving_pct)
          sizes
      in
      Tablefmt.row t (b.name :: row))
    Suite.all;
  print_string (Tablefmt.render t)

let spm_vs_cache () =
  section "SPM vs cache (the Banakar premise, over array traffic)";
  List.iter
    (fun capacity ->
      let results =
        List.map (fun b -> Foray_report.Memcompare.run b ~capacity) Suite.all
      in
      print_string (Foray_report.Memcompare.table ~capacity results);
      print_newline ())
    [ 1024; 2048 ]

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_thresholds () =
  section "Ablation: Step 4 thresholds (jpeg)";
  let prog = Minic.Parser.program (Option.get (Suite.find "jpeg")).source in
  let t =
    Tablefmt.create ~title:"Model size vs (Nexec, Nloc)"
      [ "Nexec"; "Nloc"; "model refs"; "model loops" ]
  in
  List.iter
    (fun (nexec, nloc) ->
      let r = Pipeline.run ~thresholds:(th nexec nloc) prog in
      Tablefmt.row t
        [
          string_of_int nexec; string_of_int nloc;
          string_of_int (Model.n_refs r.model);
          string_of_int (Model.n_loops r.model);
        ])
    [ (1, 1); (5, 5); (20, 10); (100, 10); (20, 100); (1000, 1000) ];
  print_string (Tablefmt.render t);
  print_string
    "(the paper's Nexec=20/Nloc=10 keeps the reusable references and drops\n\
    \ scalar and small-array traffic)\n"

let ablation_partial () =
  section "Ablation: value of partial affine expressions";
  let t =
    Tablefmt.create
      ~title:"Model references lost if partial expressions were rejected"
      [ "Benchmark"; "refs"; "partial"; "lost accesses" ]
  in
  List.iter
    (fun (b : Suite.bench) ->
      let r = Pipeline.run_source b.source in
      let refs = Model.all_refs r.model in
      let partial =
        List.filter (fun (_, (mr : Model.mref)) -> mr.partial) refs
      in
      let lost =
        List.fold_left (fun a (_, (mr : Model.mref)) -> a + mr.execs) 0 partial
      in
      Tablefmt.row t
        [
          b.name;
          string_of_int (List.length refs);
          string_of_int (List.length partial);
          string_of_int lost;
        ])
    Suite.all;
  print_string (Tablefmt.render t)

let ablation_dse () =
  section "Ablation: greedy vs optimal buffer selection (4 KiB SPM)";
  let t =
    Tablefmt.create ~title:"Energy saving, greedy vs grouped-knapsack DP"
      [ "Benchmark"; "greedy"; "optimal" ]
  in
  List.iter
    (fun (b : Suite.bench) ->
      let r = Pipeline.run_source b.source in
      let cands = Foray_spm.Reuse.candidates r.model in
      let g = Foray_spm.Dse.select_greedy cands ~spm_bytes:4096 in
      let o = Foray_spm.Dse.select_optimal cands ~spm_bytes:4096 in
      Tablefmt.row t
        [
          b.name;
          Printf.sprintf "%.1f%%" g.saving_pct;
          Printf.sprintf "%.1f%%" o.saving_pct;
        ])
    Suite.all;
  print_string (Tablefmt.render t)

let ablation_fusion () =
  section "Ablation: buffer fusion (stencil sharing)";
  let t =
    Tablefmt.create
      ~title:"Energy saving at 1 KiB, separate vs fused buffers"
      [ "Benchmark"; "groups"; "fused groups"; "separate"; "fused" ]
  in
  List.iter
    (fun (b : Suite.bench) ->
      let r = Pipeline.run_source b.source in
      let plain = Foray_spm.Reuse.candidates r.model in
      let fused = Foray_spm.Reuse.candidates ~fuse:true r.model in
      let sp = Foray_spm.Dse.select_optimal plain ~spm_bytes:1024 in
      let sf = Foray_spm.Dse.select_optimal fused ~spm_bytes:1024 in
      Tablefmt.row t
        [
          b.name;
          string_of_int (List.length (Foray_spm.Reuse.by_ref plain));
          string_of_int (List.length (Foray_spm.Reuse.by_ref fused));
          Printf.sprintf "%.1f%%" sp.saving_pct;
          Printf.sprintf "%.1f%%" sf.saving_pct;
        ])
    Suite.all;
  print_string (Tablefmt.render t)

let model_fidelity () =
  section "Model fidelity: replaying the trace against the model";
  let t =
    Tablefmt.create
      ~title:"Prediction accuracy of extracted models (covered accesses)"
      [ "Benchmark"; "covered"; "uncovered"; "exact"; "accuracy" ]
  in
  List.iter
    (fun (b : Suite.bench) ->
      let prog = Minic.Parser.program b.source in
      let r, trace = Pipeline.run_offline prog in
      let rep = Validate.replay r.model trace in
      let exact =
        List.fold_left (fun a (rr : Validate.ref_report) -> a + rr.exact) 0 rep.refs
      in
      Tablefmt.row t
        [
          b.name;
          string_of_int rep.covered;
          string_of_int rep.uncovered;
          string_of_int exact;
          Printf.sprintf "%.2f%%" (100.0 *. Validate.overall rep);
        ])
    Suite.all;
  print_string (Tablefmt.render t)

let input_dependence () =
  section "Future work (paper section 6): model dependence on profiling input";
  List.iter
    (fun name ->
      let b = Option.get (Suite.find name) in
      let prog = Minic.Parser.program b.source in
      let rep = Stability.study ~seeds:[ 1; 42; 1337 ] prog in
      Printf.printf "%s: %s" name (Stability.to_string rep))
    [ "jpeg"; "lame"; "gsm"; "adpcm" ]

let ablation_online () =
  section "Ablation: online vs offline trace analysis (constant-space claim)";
  let t =
    Tablefmt.create ~title:"Same model, with and without storing the trace"
      [ "Benchmark"; "events"; "online s"; "offline s"; "models equal" ]
  in
  List.iter
    (fun name ->
      let b = Option.get (Suite.find name) in
      let prog = Minic.Parser.program b.source in
      let t0 = Sys.time () in
      let online = Pipeline.run prog in
      let t1 = Sys.time () in
      let offline, trace = Pipeline.run_offline prog in
      let t2 = Sys.time () in
      Tablefmt.row t
        [
          name;
          string_of_int (List.length trace);
          Printf.sprintf "%.2f" (t1 -. t0);
          Printf.sprintf "%.2f" (t2 -. t1);
          string_of_bool (Model.to_c online.model = Model.to_c offline.model);
        ])
    [ "adpcm"; "gsm"; "fft" ];
  print_string (Tablefmt.render t)

let scaling () =
  section "Scaling: analysis cost vs trace length (linear-time claim)";
  let t =
    Tablefmt.create ~title:"Algorithm 2+3 over synthetic nested-loop traces"
      [ "events"; "seconds"; "Mev/s" ]
  in
  List.iter
    (fun outer ->
      let tree = Looptree.create () in
      let sink = Looptree.sink tree in
      let ck loop kind = Foray_trace.Event.Checkpoint { loop; kind } in
      let t0 = Sys.time () in
      let events = ref 0 in
      let push e = incr events; sink e in
      push (ck 1 Foray_trace.Event.Loop_enter);
      for i = 0 to outer - 1 do
        push (ck 1 Foray_trace.Event.Body_enter);
        push (ck 2 Foray_trace.Event.Loop_enter);
        for j = 0 to 31 do
          push (ck 2 Foray_trace.Event.Body_enter);
          push
            (Foray_trace.Event.Access
               { site = 7; addr = 4096 + (4 * j) + (128 * i); write = false;
                 sys = false; width = 4 });
          push (ck 2 Foray_trace.Event.Body_exit)
        done;
        push (ck 2 Foray_trace.Event.Loop_exit);
        push (ck 1 Foray_trace.Event.Body_exit)
      done;
      push (ck 1 Foray_trace.Event.Loop_exit);
      let dt = Sys.time () -. t0 in
      Tablefmt.row t
        [
          string_of_int !events;
          Printf.sprintf "%.3f" dt;
          (if dt > 0.0 then
             Printf.sprintf "%.1f" (float_of_int !events /. dt /. 1e6)
           else "-");
        ])
    [ 1_000; 10_000; 100_000; 200_000 ];
  print_string (Tablefmt.render t);
  print_string
    "(near-flat throughput across two orders of magnitude: linear time; the\n\
     walker state is the loop tree plus per-reference footprint intervals,\n\
     independent of the trace length)\n"

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks (complexity claims of Section 4)           *)
(* ------------------------------------------------------------------ *)

let microbench () =
  section "Microbenchmarks (bechamel, monotonic clock)";
  let open Bechamel in
  let witness = Toolkit.Instance.monotonic_clock in
  let run_one (test : Test.t) =
    let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.4) () in
    List.iter
      (fun elt ->
        let b = Benchmark.run cfg [ witness ] elt in
        let ols =
          Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| "run" |]
        in
        let est = Analyze.one ols witness b in
        match Analyze.OLS.estimates est with
        | Some [ t ] -> Printf.printf "  %-38s %12.1f ns/op\n" (Test.Elt.name elt) t
        | _ -> Printf.printf "  %-38s (no estimate)\n" (Test.Elt.name elt))
      (Test.elements test)
  in
  (* Algorithm 3: one observation *)
  let aff = Affine.create ~site:1 ~depth:3 in
  let iters = [| 0; 0; 0 |] in
  let k = ref 0 in
  run_one
    (Test.make ~name:"affine.observe (algorithm 3 step)"
       (Staged.stage (fun () ->
            incr k;
            iters.(0) <- !k land 15;
            iters.(1) <- (!k lsr 4) land 15;
            iters.(2) <- !k lsr 8;
            Affine.observe aff ~iters ~addr:(1000 + (4 * !k)))));
  (* Algorithm 2: one trace event through the walker *)
  let tree = Looptree.create () in
  let sink = Looptree.sink tree in
  Looptree.sink tree (Checkpoint { loop = 1; kind = Foray_trace.Event.Loop_enter });
  Looptree.sink tree (Checkpoint { loop = 1; kind = Foray_trace.Event.Body_enter });
  let j = ref 0 in
  run_one
    (Test.make ~name:"looptree.sink (access event)"
       (Staged.stage (fun () ->
            incr j;
            sink
              (Access
                 { site = 42; addr = 5000 + (4 * !j); write = false;
                   sys = false; width = 4 }))));
  (* trace serialization *)
  let line = "Instr: 4002a0 addr: 7fff5934 wr 4" in
  run_one
    (Test.make ~name:"event.of_line (figure 4c record)"
       (Staged.stage (fun () -> ignore (Foray_trace.Event.of_line line))));
  (* interval set *)
  let base = Foray_util.Iset.of_intervals [ (0, 64); (128, 256); (1024, 4096) ] in
  let i = ref 0 in
  run_one
    (Test.make ~name:"iset.add_range"
       (Staged.stage (fun () ->
            incr i;
            ignore (Foray_util.Iset.add_range (!i land 8191) ((!i land 8191) + 4) base))));
  (* end-to-end simulation+analysis throughput on the smallest benchmark *)
  let adpcm = Minic.Parser.program (Option.get (Suite.find "adpcm")).source in
  run_one
    (Test.make ~name:"pipeline.run adpcm (end to end)"
       (Staged.stage (fun () -> ignore (Pipeline.run adpcm))));
  (* knapsack on a real candidate set *)
  let gsm = Pipeline.run_source (Option.get (Suite.find "gsm")).source in
  let cands = Foray_spm.Reuse.candidates gsm.model in
  run_one
    (Test.make ~name:"dse.select_optimal gsm@4KiB"
       (Staged.stage (fun () ->
            ignore (Foray_spm.Dse.select_optimal cands ~spm_bytes:4096))))

(* ------------------------------------------------------------------ *)

let () =
  let t0 = Sys.time () in
  tables ();
  figure2 ();
  figure4 ();
  figure7 ();
  figure9 ();
  spm_sweep ();
  spm_vs_cache ();
  ablation_thresholds ();
  ablation_partial ();
  ablation_dse ();
  ablation_fusion ();
  model_fidelity ();
  input_dependence ();
  ablation_online ();
  scaling ();
  microbench ();
  Printf.printf "\ntotal bench time: %.1fs\n" (Sys.time () -. t0)
