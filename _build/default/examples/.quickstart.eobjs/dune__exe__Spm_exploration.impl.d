examples/spm_exploration.ml: Foray_core Foray_spm Foray_suite Format List Option Printf String
