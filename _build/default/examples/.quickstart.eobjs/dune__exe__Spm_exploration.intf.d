examples/spm_exploration.mli:
