examples/partial_affine.mli:
