examples/partial_affine.ml: Foray_core Foray_suite List Printf String
