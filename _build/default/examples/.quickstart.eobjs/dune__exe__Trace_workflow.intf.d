examples/trace_workflow.mli:
