examples/quickstart.mli:
