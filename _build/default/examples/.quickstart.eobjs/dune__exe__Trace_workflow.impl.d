examples/trace_workflow.ml: Filename Foray_core Foray_instrument Foray_report Foray_suite Foray_trace Minic Minic_sim Option Printf String Sys
