examples/quickstart.ml: Foray_core Foray_instrument Foray_static Foray_suite Foray_trace List Minic Printf String
