examples/inlining_hints.ml: Foray_core Foray_suite Printf String
