examples/inlining_hints.mli:
