(* Trace file persistence tests: both formats, streaming, auto-detection. *)

open Foray_trace

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let sample_trace () =
  let prog = Minic.Parser.program Foray_suite.Figures.fig4a in
  let instrumented = Foray_instrument.Annotate.program prog in
  let sink, get = Event.collector () in
  let _ = Minic_sim.Interp.run instrumented ~sink in
  get ()

let t_roundtrip_text () =
  let trace = sample_trace () in
  let path = tmp "foray_text.tr" in
  Tracefile.save ~format:Tracefile.Text path trace;
  let back = Tracefile.load path in
  Alcotest.(check int) "length" (List.length trace) (List.length back);
  List.iter2 (fun a b -> if not (Event.equal a b) then Alcotest.fail "event") trace back

let t_roundtrip_binary () =
  let trace = sample_trace () in
  let path = tmp "foray_bin.tr" in
  Tracefile.save ~format:Tracefile.Binary path trace;
  let back = Tracefile.load path in
  Alcotest.(check int) "length" (List.length trace) (List.length back);
  List.iter2 (fun a b -> if not (Event.equal a b) then Alcotest.fail "event") trace back

let t_binary_smaller () =
  let trace = sample_trace () in
  let pt = tmp "foray_sz_t.tr" and pb = tmp "foray_sz_b.tr" in
  Tracefile.save ~format:Tracefile.Text pt trace;
  Tracefile.save ~format:Tracefile.Binary pb trace;
  let size p =
    let ic = open_in_bin p in
    let n = in_channel_length ic in
    close_in ic;
    n
  in
  Alcotest.(check bool) "binary smaller than text" true (size pb < size pt)

let t_streaming_fold () =
  let trace = sample_trace () in
  let path = tmp "foray_fold.tr" in
  Tracefile.save ~format:Tracefile.Binary path trace;
  let n = Tracefile.fold path (fun acc _ -> acc + 1) 0 in
  Alcotest.(check int) "fold counts all" (List.length trace) n

let t_sink_to_file_streaming () =
  let path = tmp "foray_stream.tr" in
  let sink, close = Tracefile.sink_to_file ~format:Tracefile.Binary path in
  let prog = Minic.Parser.program Foray_suite.Figures.fig4a in
  let instrumented = Foray_instrument.Annotate.program prog in
  let _ = Minic_sim.Interp.run instrumented ~sink in
  close ();
  let back = Tracefile.load path in
  Alcotest.(check int) "same as direct collection" 87 (List.length back)

let t_analysis_from_file_matches () =
  (* simulator -> file -> analyzer == online *)
  let prog = Minic.Parser.program Foray_suite.Figures.fig1 in
  let r, trace = Foray_core.Pipeline.run_offline prog in
  let path = tmp "foray_match.tr" in
  Tracefile.save ~format:Tracefile.Binary path trace;
  let tree = Foray_core.Looptree.create () in
  Tracefile.iter path (Foray_core.Looptree.sink tree);
  let model =
    Foray_core.Model.of_tree ~loop_kinds:r.loop_kinds tree
  in
  Alcotest.(check string) "same model"
    (Foray_core.Model.to_c r.model)
    (Foray_core.Model.to_c model)

let t_empty_file () =
  let path = tmp "foray_empty.tr" in
  let oc = open_out path in
  close_out oc;
  Alcotest.(check int) "empty file, empty trace" 0
    (List.length (Tracefile.load path))

let t_corrupt_binary () =
  let path = tmp "foray_corrupt.tr" in
  let oc = open_out_bin path in
  output_string oc "FORAYTR1";
  output_string oc "\x09";
  (* bad tag *)
  close_out oc;
  try
    ignore (Tracefile.load path);
    Alcotest.fail "expected failure"
  with Failure _ -> ()

let t_varint_values () =
  (* exercise multi-byte varints through large addresses *)
  let big =
    [ Event.Access
        { site = 0x0f00_ffff; addr = 0x7fff_fff7; write = true; sys = true;
          width = 8 };
      Event.Checkpoint { loop = 1_000_000; kind = Event.Body_exit } ]
  in
  let path = tmp "foray_big.tr" in
  Tracefile.save ~format:Tracefile.Binary path big;
  let back = Tracefile.load path in
  List.iter2
    (fun a b -> if not (Event.equal a b) then Alcotest.fail "big values")
    big back

let tests =
  [
    Alcotest.test_case "text round-trip" `Quick t_roundtrip_text;
    Alcotest.test_case "binary round-trip" `Quick t_roundtrip_binary;
    Alcotest.test_case "binary is smaller" `Quick t_binary_smaller;
    Alcotest.test_case "streaming fold" `Quick t_streaming_fold;
    Alcotest.test_case "streaming writer" `Quick t_sink_to_file_streaming;
    Alcotest.test_case "file analysis matches online" `Quick
      t_analysis_from_file_matches;
    Alcotest.test_case "empty file" `Quick t_empty_file;
    Alcotest.test_case "corrupt binary" `Quick t_corrupt_binary;
    Alcotest.test_case "large varints" `Quick t_varint_values;
  ]
