test/test_pipeline.ml: Alcotest Filter Foray_core Foray_suite Foray_trace List Looptree Minic Model Option Pipeline String
