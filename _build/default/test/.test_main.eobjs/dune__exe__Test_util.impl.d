test/test_util.ml: Alcotest Foray_util List Prng Stats String Tablefmt
