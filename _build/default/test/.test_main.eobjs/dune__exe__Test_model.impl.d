test/test_model.ml: Alcotest Array Filter Foray_core Foray_trace List Looptree Minic Model String
