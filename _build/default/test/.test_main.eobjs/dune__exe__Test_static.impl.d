test/test_static.ml: Alcotest Baseline Foray_core Foray_static Foray_suite Foray_trace Hashtbl List Minic Minic_sim Option Static_affine
