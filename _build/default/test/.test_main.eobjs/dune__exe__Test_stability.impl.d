test/test_stability.ml: Alcotest Filter Foray_core Foray_suite List Minic Option Stability
