test/test_interp.ml: Alcotest Foray_suite Foray_trace List Minic Minic_sim Option String
