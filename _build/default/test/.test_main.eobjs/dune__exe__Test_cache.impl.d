test/test_cache.ml: Alcotest Cache Foray_cachesim Foray_trace List QCheck2 QCheck_alcotest
