test/test_generator.ml: Alcotest Foray_core Foray_static Foray_suite List Minic Model Pipeline Printexc String
