test/test_tracefile.ml: Alcotest Event Filename Foray_core Foray_instrument Foray_suite Foray_trace List Minic Minic_sim Tracefile
