test/test_spm.ml: Alcotest Array Dse Energy Filter Foray_core Foray_spm Foray_suite Foray_trace Foray_util List Looptree Minic Model Option Pipeline Printf Reuse String Transform
