test/test_iset.ml: Alcotest Foray_util Int Iset List QCheck2 QCheck_alcotest Set
