test/test_trace.ml: Alcotest Event Foray_trace List Tstats
