test/test_affine.ml: Affine Alcotest Array Foray_core Foray_util List QCheck2 QCheck_alcotest
