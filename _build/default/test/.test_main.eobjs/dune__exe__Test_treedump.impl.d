test/test_treedump.ml: Alcotest Foray_core Foray_report Foray_suite Option String
