test/test_switch.ml: Alcotest Foray_core Foray_trace List Minic Minic_sim Printf String
