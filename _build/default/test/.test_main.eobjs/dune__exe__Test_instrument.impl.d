test/test_instrument.ml: Alcotest Ast Foray_instrument Foray_suite Foray_trace List Minic Minic_sim Parser
