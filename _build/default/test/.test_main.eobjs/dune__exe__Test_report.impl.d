test/test_report.ml: Alcotest Foray_report Lazy List Report String
