test/test_misc.ml: Alcotest Filter Foray_core Foray_trace List Looptree Minic Minic_machine Minic_sim Model Pipeline
