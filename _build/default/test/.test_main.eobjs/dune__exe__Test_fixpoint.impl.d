test/test_fixpoint.ml: Alcotest Filter Foray_core Foray_suite Foray_trace List Minic Minic_sim Model Option Pipeline Printf String
