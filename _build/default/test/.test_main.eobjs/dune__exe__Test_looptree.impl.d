test/test_looptree.ml: Affine Alcotest Foray_core Foray_trace Foray_util List Looptree
