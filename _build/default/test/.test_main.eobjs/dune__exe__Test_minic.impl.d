test/test_minic.ml: Alcotest Ast Foray_instrument Foray_suite Foray_trace Lexer List Minic Minic_sim Option Parser Pretty Printf QCheck2 QCheck_alcotest Sema String
