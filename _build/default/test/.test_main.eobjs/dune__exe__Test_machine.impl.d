test/test_machine.ml: Alcotest Layout Memory Minic_machine
