test/test_validate.ml: Alcotest Filter Foray_core Foray_suite List Minic Model Option Pipeline Validate
