(* Instrumentation pass (Step 1) tests. *)

open Minic

let count_checkpoints prog =
  let n = ref 0 in
  Ast.iter_stmts
    (fun st -> match st.Ast.s with Ast.Scheckpoint _ -> incr n | _ -> ())
    prog

let t_counts () =
  let prog =
    Parser.program
      "int main() { int i; for (i = 0; i < 3; i++) { i = i; } while (i > 0) { i--; } do { i++; } while (i < 2); return i; }"
  in
  let instr = Foray_instrument.Annotate.program prog in
  let n = ref 0 in
  Ast.iter_stmts
    (fun st -> match st.Ast.s with Ast.Scheckpoint _ -> incr n | _ -> ())
    instr;
  ignore count_checkpoints;
  (* 3 loops x 4 checkpoint kinds *)
  Alcotest.(check int) "4 checkpoints per loop" 12 !n

let t_kinds_and_placement () =
  let prog = Parser.program "int main() { int i; for (i = 0; i < 3; i++) { i = i; } return 0; }" in
  let instr = Foray_instrument.Annotate.program prog in
  (* find the wrapping block: [enter; for(...); exit] *)
  let ok = ref false in
  Ast.iter_stmts
    (fun st ->
      match st.Ast.s with
      | Ast.Sblock
          [ { s = Ast.Scheckpoint (l1, Ast.Loop_enter); _ };
            { s = Ast.Sfor (_, _, _, body); _ };
            { s = Ast.Scheckpoint (l2, Ast.Loop_exit); _ } ] ->
          if l1 = l2 then begin
            (* body starts with body_enter and ends with body_exit *)
            match (List.hd body, List.rev body |> List.hd) with
            | ( { Ast.s = Ast.Scheckpoint (b1, Ast.Body_enter); _ },
                { Ast.s = Ast.Scheckpoint (b2, Ast.Body_exit); _ } ) ->
                if b1 = l1 && b2 = l1 then ok := true
            | _ -> ()
          end
      | _ -> ())
    instr;
  Alcotest.(check bool) "figure 4(b) shape" true !ok

let t_loop_ids_match () =
  let prog = Parser.program "int main() { int i; while (i < 3) { i++; } return 0; }" in
  let loops = Ast.loops prog in
  let lid = (List.hd loops).Ast.sid in
  let instr = Foray_instrument.Annotate.program prog in
  let ids = ref [] in
  Ast.iter_stmts
    (fun st ->
      match st.Ast.s with
      | Ast.Scheckpoint (l, _) -> ids := l :: !ids
      | _ -> ())
    instr;
  Alcotest.(check bool) "checkpoints carry the loop id" true
    (List.for_all (fun l -> l = lid) !ids)

let t_loop_table () =
  let prog =
    Parser.program
      "int main() { int i; for (i = 0; i < 1; i++) { } while (i > 9) { } do { i++; } while (0); return 0; }"
  in
  let table = Foray_instrument.Annotate.loop_table prog in
  Alcotest.(check (list string))
    "kinds in order" [ "for"; "while"; "do" ]
    (List.map snd table)

let t_non_loops_untouched () =
  let src = "int main() { int a; if (a) { a = 1; } else { a = 2; } return a; }" in
  let prog = Parser.program src in
  let instr = Foray_instrument.Annotate.program prog in
  Alcotest.(check bool) "no checkpoints without loops" true
    (Ast.equal_program prog instr)

let t_instrumented_runs_same () =
  (* instrumentation must not change program semantics *)
  List.iter
    (fun (b : Foray_suite.Suite.bench) ->
      let prog = Parser.program b.source in
      let instr = Foray_instrument.Annotate.program prog in
      let r1 = Minic_sim.Interp.run prog ~sink:Foray_trace.Event.null_sink in
      let r2 = Minic_sim.Interp.run instr ~sink:Foray_trace.Event.null_sink in
      Alcotest.(check (list int))
        (b.name ^ " output unchanged")
        r1.output r2.output;
      Alcotest.(check int) (b.name ^ " ret unchanged") r1.ret r2.ret)
    Foray_suite.Suite.all

let tests =
  [
    Alcotest.test_case "checkpoint counts" `Quick t_counts;
    Alcotest.test_case "kinds and placement" `Quick t_kinds_and_placement;
    Alcotest.test_case "loop ids match" `Quick t_loop_ids_match;
    Alcotest.test_case "loop table" `Quick t_loop_table;
    Alcotest.test_case "non-loops untouched" `Quick t_non_loops_untouched;
    Alcotest.test_case "semantics preserved" `Slow t_instrumented_runs_same;
  ]
