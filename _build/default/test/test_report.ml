(* Experiment report invariants over the full benchmark suite. These are
   the sanity properties behind Tables I-III; exact numbers live in
   EXPERIMENTS.md. *)

open Foray_report

let reports = lazy (Report.report_all ())

let t_table1_invariants () =
  List.iter
    (fun (r : Report.bench_report) ->
      Alcotest.(check bool) (r.name ^ " has lines") true (r.lines > 0);
      Alcotest.(check int)
        (r.name ^ " loop kinds partition")
        r.loops_total
        (r.loops_for + r.loops_while + r.loops_do))
    (Lazy.force reports)

let t_table2_invariants () =
  List.iter
    (fun (r : Report.bench_report) ->
      Alcotest.(check bool) (r.name ^ " model has loops") true (r.model_loops > 0);
      Alcotest.(check bool) (r.name ^ " model has refs") true (r.model_refs > 0);
      Alcotest.(check bool)
        (r.name ^ " not-foray <= total")
        true
        (r.refs_not_foray <= r.model_refs && r.loops_not_foray <= r.model_loops);
      (* inlined model loops can exceed executed source loops, but never
         the other way by more than the context multiplier; sanity only *)
      Alcotest.(check bool) (r.name ^ " loops sane") true (r.model_loops <= 10 * r.loops_total))
    (Lazy.force reports)

let t_table3_invariants () =
  List.iter
    (fun (r : Report.bench_report) ->
      Alcotest.(check bool) (r.name ^ " accesses positive") true (r.accesses_total > 0);
      Alcotest.(check bool)
        (r.name ^ " categories within totals")
        true
        (r.model_sites + r.sys_sites <= r.refs_total
        && r.model_accesses + r.sys_accesses <= r.accesses_total
        && r.model_footprint <= r.footprint_total
        && r.sys_footprint <= r.footprint_total
        && r.other_footprint <= r.footprint_total))
    (Lazy.force reports)

let t_paper_shape () =
  (* the qualitative claims of the evaluation *)
  let get name =
    List.find (fun (r : Report.bench_report) -> r.name = name) (Lazy.force reports)
  in
  let fft = get "fft" and adpcm = get "adpcm" in
  Alcotest.(check int) "fft entirely in FORAY form" 0 fft.refs_not_foray;
  Alcotest.(check int) "adpcm entirely out of FORAY form" adpcm.model_refs
    adpcm.refs_not_foray;
  (* non-for loops are a substantial minority overall (paper: 23%) *)
  let total = List.fold_left (fun a (r : Report.bench_report) -> a + r.loops_total) 0 (Lazy.force reports) in
  let nonfor =
    List.fold_left
      (fun a (r : Report.bench_report) -> a + r.loops_while + r.loops_do)
      0 (Lazy.force reports)
  in
  let pct = 100.0 *. float_of_int nonfor /. float_of_int total in
  Alcotest.(check bool) "non-for loops 10..45%" true (pct > 10.0 && pct < 45.0);
  (* FORAY-GEN roughly doubles the analyzable references on average *)
  let ratios =
    List.filter_map
      (fun (r : Report.bench_report) ->
        let s = r.model_refs - r.refs_not_foray in
        if s = 0 then None
        else Some (float_of_int r.model_refs /. float_of_int s))
      (Lazy.force reports)
  in
  let avg = List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios) in
  Alcotest.(check bool) "about 2x average increase" true
    (avg > 1.5 && avg < 3.0)

let t_tables_render () =
  let rs = Lazy.force reports in
  List.iter
    (fun s ->
      Alcotest.(check bool) "non-empty" true (String.length s > 100);
      (* every benchmark appears *)
      List.iter
        (fun (r : Report.bench_report) ->
          let sub = r.name in
          let n = String.length sub and l = String.length s in
          let rec go i = i + n <= l && (String.sub s i n = sub || go (i + 1)) in
          if not (go 0) then Alcotest.failf "missing %s" r.name)
        rs)
    [ Report.table1 rs; Report.table2 rs; Report.table3 rs; Report.headline rs ]

let tests =
  [
    Alcotest.test_case "table I invariants" `Slow t_table1_invariants;
    Alcotest.test_case "table II invariants" `Slow t_table2_invariants;
    Alcotest.test_case "table III invariants" `Slow t_table3_invariants;
    Alcotest.test_case "paper-shape claims" `Slow t_paper_shape;
    Alcotest.test_case "tables render" `Slow t_tables_render;
  ]
