(* Tests for Stats, Tablefmt and Prng. *)

open Foray_util

let t_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.observe s) [ 3; 1; 4; 1; 5 ];
  Alcotest.(check int) "count" 5 (Stats.count s);
  Alcotest.(check int) "total" 14 (Stats.total s);
  Alcotest.(check int) "min" 1 (Stats.min s);
  Alcotest.(check int) "max" 5 (Stats.max s);
  Alcotest.(check (float 0.001)) "mean" 2.8 (Stats.mean s)

let t_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Stats.mean s);
  Alcotest.check_raises "min raises" (Invalid_argument "Stats.min: empty")
    (fun () -> ignore (Stats.min s))

let t_percent () =
  Alcotest.(check (float 0.001)) "50%" 50.0 (Stats.percent 1 2);
  Alcotest.(check (float 0.001)) "0 of 0" 0.0 (Stats.percent 5 0)

let t_human () =
  Alcotest.(check string) "millions" "8.3M" (Stats.human 8_300_000);
  Alcotest.(check string) "tens of millions" "43M" (Stats.human 43_000_000);
  Alcotest.(check string) "thousands" "124k" (Stats.human 123_625);
  Alcotest.(check string) "small" "4964" (Stats.human 4964)

let t_table_render () =
  let t = Tablefmt.create ~title:"T" [ "a"; "bb" ] in
  Tablefmt.row t [ "x"; "1" ];
  Tablefmt.row t [ "long" ];
  let s = Tablefmt.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  (* all lines of the box have equal width *)
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> l <> "") |> List.tl
  in
  let w = String.length (List.hd lines) in
  Alcotest.(check bool) "aligned box" true
    (List.for_all (fun l -> String.length l = w) lines)

let t_table_too_many () =
  let t = Tablefmt.create ~title:"T" [ "a" ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Tablefmt.row: too many cells") (fun () ->
      Tablefmt.row t [ "x"; "y" ])

let t_pctf () =
  Alcotest.(check string) "zero" "0%" (Tablefmt.pctf 0.0);
  Alcotest.(check string) "sub-1" "0.2%" (Tablefmt.pctf 0.2);
  Alcotest.(check string) "integer" "27%" (Tablefmt.pctf 27.4)

let t_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let xs = List.init 100 (fun _ -> Prng.next a) in
  let ys = List.init 100 (fun _ -> Prng.next b) in
  Alcotest.(check bool) "same seed same stream" true (xs = ys);
  let c = Prng.create 43 in
  let zs = List.init 100 (fun _ -> Prng.next c) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let t_prng_bounds () =
  let r = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.int r 10 in
    if x < 0 || x >= 10 then Alcotest.fail "int out of bounds";
    let y = Prng.range r 5 8 in
    if y < 5 || y > 8 then Alcotest.fail "range out of bounds"
  done

let t_prng_pick () =
  let r = Prng.create 9 in
  for _ = 1 to 100 do
    let x = Prng.pick r [ 1; 2; 3 ] in
    if not (List.mem x [ 1; 2; 3 ]) then Alcotest.fail "pick out of list"
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Prng.pick: empty list")
    (fun () -> ignore (Prng.pick r []))

let tests =
  [
    Alcotest.test_case "stats basic" `Quick t_stats_basic;
    Alcotest.test_case "stats empty" `Quick t_stats_empty;
    Alcotest.test_case "percent" `Quick t_percent;
    Alcotest.test_case "human" `Quick t_human;
    Alcotest.test_case "table render" `Quick t_table_render;
    Alcotest.test_case "table too many cells" `Quick t_table_too_many;
    Alcotest.test_case "pctf" `Quick t_pctf;
    Alcotest.test_case "prng deterministic" `Quick t_prng_deterministic;
    Alcotest.test_case "prng bounds" `Quick t_prng_bounds;
    Alcotest.test_case "prng pick" `Quick t_prng_pick;
  ]
