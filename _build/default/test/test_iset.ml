(* Unit and property tests for the interval set. *)

open Foray_util
module SI = Set.Make (Int)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let t_empty () =
  checkb "empty is empty" true (Iset.is_empty Iset.empty);
  check "cardinal 0" 0 (Iset.cardinal Iset.empty);
  check "span 0" 0 (Iset.span Iset.empty)

let t_singleton () =
  let s = Iset.singleton 5 in
  checkb "mem 5" true (Iset.mem 5 s);
  checkb "not mem 4" false (Iset.mem 4 s);
  check "cardinal" 1 (Iset.cardinal s);
  check "min" 5 (Iset.min_elt s);
  check "max" 5 (Iset.max_elt s)

let t_coalesce () =
  let s = Iset.empty |> Iset.add 1 |> Iset.add 2 |> Iset.add 3 in
  Alcotest.(check (list (pair int int)))
    "adjacent points coalesce" [ (1, 4) ] (Iset.intervals s)

let t_overlap_absorb () =
  (* regression for the bug where a covering predecessor lost its tail *)
  let s = Iset.add_range 0 100 Iset.empty in
  let s = Iset.add_range 5 10 s in
  check "covered add keeps everything" 100 (Iset.cardinal s);
  let s2 = Iset.add_range 50 60 (Iset.add_range 0 10 Iset.empty) in
  let s2 = Iset.add_range 5 55 s2 in
  check "bridging add merges" 60 (Iset.cardinal s2);
  Alcotest.(check (list (pair int int)))
    "one interval" [ (0, 60) ] (Iset.intervals s2)

let t_ranges () =
  let s = Iset.add_range 10 20 (Iset.add_range 0 5 Iset.empty) in
  check "cardinal" 15 (Iset.cardinal s);
  check "span covers the hole" 20 (Iset.span s);
  checkb "hole not member" false (Iset.mem 7 s);
  checkb "edge lo" true (Iset.mem 10 s);
  checkb "edge hi excluded" false (Iset.mem 20 s)

let t_empty_range () =
  let s = Iset.add_range 5 5 Iset.empty in
  checkb "hi=lo is empty" true (Iset.is_empty s);
  let s = Iset.add_range 7 3 Iset.empty in
  checkb "hi<lo is empty" true (Iset.is_empty s)

let t_union_inter () =
  let a = Iset.of_intervals [ (0, 10); (20, 30) ] in
  let b = Iset.of_intervals [ (5, 25) ] in
  check "union" 30 (Iset.cardinal (Iset.union a b));
  check "inter" 10 (Iset.cardinal (Iset.inter a b));
  checkb "inter mem 8" true (Iset.mem 8 (Iset.inter a b));
  checkb "inter not mem 12" false (Iset.mem 12 (Iset.inter a b))

let t_equal () =
  let a = Iset.of_intervals [ (0, 3); (3, 6) ] in
  let b = Iset.of_intervals [ (0, 6) ] in
  checkb "coalesced equal" true (Iset.equal a b)

(* property tests against the naive model *)

let ranges_gen =
  QCheck2.Gen.(
    list_size (int_range 0 60)
      (pair (int_range (-50) 200) (int_range 1 15)))

let model_of ranges =
  List.fold_left
    (fun m (lo, len) ->
      List.fold_left (fun m x -> SI.add x m) m
        (List.init len (fun i -> lo + i)))
    SI.empty ranges

let iset_of ranges =
  List.fold_left
    (fun s (lo, len) -> Iset.add_range lo (lo + len) s)
    Iset.empty ranges

let prop_cardinal =
  QCheck2.Test.make ~name:"iset cardinal matches naive set" ~count:300
    ranges_gen (fun ranges ->
      Iset.cardinal (iset_of ranges) = SI.cardinal (model_of ranges))

let prop_mem =
  QCheck2.Test.make ~name:"iset membership matches naive set" ~count:200
    ranges_gen (fun ranges ->
      let s = iset_of ranges and m = model_of ranges in
      List.for_all
        (fun x -> Iset.mem x s = SI.mem x m)
        (List.init 260 (fun i -> i - 30)))

let prop_union =
  QCheck2.Test.make ~name:"iset union matches naive union" ~count:200
    QCheck2.Gen.(pair ranges_gen ranges_gen)
    (fun (r1, r2) ->
      Iset.cardinal (Iset.union (iset_of r1) (iset_of r2))
      = SI.cardinal (SI.union (model_of r1) (model_of r2)))

let prop_inter =
  QCheck2.Test.make ~name:"iset inter matches naive inter" ~count:200
    QCheck2.Gen.(pair ranges_gen ranges_gen)
    (fun (r1, r2) ->
      Iset.cardinal (Iset.inter (iset_of r1) (iset_of r2))
      = SI.cardinal (SI.inter (model_of r1) (model_of r2)))

let prop_intervals_disjoint =
  QCheck2.Test.make ~name:"iset intervals are sorted and disjoint" ~count:200
    ranges_gen (fun ranges ->
      let ivs = Iset.intervals (iset_of ranges) in
      let rec ok = function
        | (lo1, hi1) :: ((lo2, _) :: _ as rest) ->
            lo1 < hi1 && hi1 < lo2 && ok rest
        | [ (lo, hi) ] -> lo < hi
        | [] -> true
      in
      ok ivs)

let tests =
  [
    Alcotest.test_case "empty" `Quick t_empty;
    Alcotest.test_case "singleton" `Quick t_singleton;
    Alcotest.test_case "coalesce" `Quick t_coalesce;
    Alcotest.test_case "overlap absorb (regression)" `Quick t_overlap_absorb;
    Alcotest.test_case "ranges" `Quick t_ranges;
    Alcotest.test_case "empty range" `Quick t_empty_range;
    Alcotest.test_case "union inter" `Quick t_union_inter;
    Alcotest.test_case "equal" `Quick t_equal;
    QCheck_alcotest.to_alcotest prop_cardinal;
    QCheck_alcotest.to_alcotest prop_mem;
    QCheck_alcotest.to_alcotest prop_union;
    QCheck_alcotest.to_alcotest prop_inter;
    QCheck_alcotest.to_alcotest prop_intervals_disjoint;
  ]
