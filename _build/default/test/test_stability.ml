(* Input-dependence study tests (the paper's future-work question). *)

open Foray_core

let th nexec nloc = Filter.{ nexec; nloc }

let t_deterministic_program_stable () =
  (* a program that ignores mc_rand yields identical models for any seed *)
  let prog = Minic.Parser.program Foray_suite.Figures.fig4a in
  let rep = Stability.study ~thresholds:(th 2 2) ~seeds:[ 1; 2; 3 ] prog in
  Alcotest.(check int) "runs" 3 rep.runs;
  Alcotest.(check int) "all stable" (List.length rep.refs) rep.stable;
  Alcotest.(check int) "none input-dependent" 0 rep.input_dependent

let t_offset_program_detected () =
  (* fig7b gathers through mc_rand offsets: the partial ref stays (its
     coefficients are input-independent) but the report must still be
     computed across different bases without crashing *)
  let prog = Minic.Parser.program Foray_suite.Figures.fig7b in
  let rep = Stability.study ~thresholds:(th 10 5) ~seeds:[ 1; 9; 77 ] prog in
  Alcotest.(check bool) "has refs" true (rep.refs <> []);
  List.iter
    (fun (r : Stability.ref_stability) ->
      Alcotest.(check bool) "seen everywhere or flagged" true
        (r.seen_in = 3 || r.classification = Stability.Input_dependent))
    rep.refs

let t_input_dependent_flagged () =
  (* trip counts driven by mc_rand: coefficient stays, trips differ *)
  let src =
    "int A[400]; int main() { int i; int n; n = 50 + mc_rand(50); for (i = \
     0; i < n; i++) { A[i] = i; } return 0; }"
  in
  let prog = Minic.Parser.program src in
  let rep = Stability.study ~thresholds:(th 20 10) ~seeds:[ 1; 2; 3; 4 ] prog in
  Alcotest.(check int) "one ref" 1 (List.length rep.refs);
  Alcotest.(check int) "classified trip-varying" 1 rep.trip_varies

let t_structural_change_flagged () =
  (* stride chosen by input: coefficients differ across runs *)
  let src =
    "int A[600]; int main() { int i; int s; s = 1 + mc_rand(3); for (i = 0; \
     i < 60; i++) { A[s * i] = i; } return 0; }"
  in
  let prog = Minic.Parser.program src in
  let rep = Stability.study ~seeds:[ 1; 2; 3; 4; 5 ] prog in
  (* either the stride differed in some pair of runs (input-dependent) or
     every seed drew the same stride (then stable); with 5 seeds of an
     LCG the former is what happens *)
  Alcotest.(check int) "flagged" 1 rep.input_dependent

let t_needs_two_seeds () =
  let prog = Minic.Parser.program Foray_suite.Figures.fig4a in
  Alcotest.check_raises "one seed rejected"
    (Invalid_argument "Stability.study: need >= 2 seeds") (fun () ->
      ignore (Stability.study ~seeds:[ 1 ] prog))

let t_suite_mostly_stable () =
  (* the adpcm benchmark is input-independent end to end *)
  let b = Option.get (Foray_suite.Suite.find "adpcm") in
  let rep =
    Stability.study ~seeds:[ 1; 42 ] (Minic.Parser.program b.source)
  in
  Alcotest.(check int) "adpcm fully stable" (List.length rep.refs) rep.stable

let tests =
  [
    Alcotest.test_case "deterministic program stable" `Quick
      t_deterministic_program_stable;
    Alcotest.test_case "offset program analyzed" `Quick
      t_offset_program_detected;
    Alcotest.test_case "trip variation flagged" `Quick
      t_input_dependent_flagged;
    Alcotest.test_case "structural change flagged" `Quick
      t_structural_change_flagged;
    Alcotest.test_case "needs two seeds" `Quick t_needs_two_seeds;
    Alcotest.test_case "adpcm stable" `Slow t_suite_mostly_stable;
  ]
