(* Filter (Step 4) and FORAY model construction/emission tests. *)

open Foray_core
module Event = Foray_trace.Event

let ck loop kind = Event.Checkpoint { loop; kind }
let acc ?(write = false) site addr =
  Event.Access { site; addr; write; sys = false; width = 4 }

let loop lid trip body_of =
  [ ck lid Event.Loop_enter ]
  @ List.concat
      (List.init trip (fun i ->
           (ck lid Event.Body_enter :: body_of i) @ [ ck lid Event.Body_exit ]))
  @ [ ck lid Event.Loop_exit ]

let tree_of events =
  let t = Looptree.create () in
  List.iter (Looptree.sink t) events;
  t

let th nexec nloc = Filter.{ nexec; nloc }

let t_filter_nexec () =
  (* 30 execs over 30 locations passes; 5 execs fails nexec *)
  let t = tree_of (loop 1 30 (fun i -> [ acc 7 (4 * i) ])) in
  Alcotest.(check int) "passes" 1
    (List.length (Filter.survivors (th 20 10) t));
  let t5 = tree_of (loop 1 5 (fun i -> [ acc 7 (4 * i) ])) in
  Alcotest.(check int) "too few execs" 0
    (List.length (Filter.survivors (th 20 10) t5));
  Alcotest.(check int) "relaxed passes" 1
    (List.length (Filter.survivors (th 2 2) t5))

let t_filter_nloc () =
  (* many executions of few locations: reused scalar-like ref *)
  let t = tree_of (loop 1 40 (fun i -> [ acc 7 (4 * (i mod 3)) ])) in
  (* address pattern is irregular (mod) so it is also non-analyzable, but
     nloc alone must reject a 3-location register-like ref *)
  Alcotest.(check int) "few locations rejected" 0
    (List.length (Filter.survivors (th 20 10) t))

let t_filter_no_iterator () =
  let t = tree_of (loop 1 40 (fun _ -> [ acc 7 1000 ])) in
  Alcotest.(check int) "constant ref rejected even with execs" 0
    (List.length (Filter.survivors (th 20 1) t))

let t_default_thresholds () =
  Alcotest.(check int) "paper Nexec" 20 Filter.default.nexec;
  Alcotest.(check int) "paper Nloc" 10 Filter.default.nloc

let mk_model ?(thresholds = th 2 2) ?(loop_kinds = []) events =
  Model.of_tree ~thresholds ~loop_kinds (tree_of events)

let t_model_counts () =
  let m =
    mk_model
      (loop 1 3 (fun i ->
           [ acc 7 (4 * i) ]
           @ loop 2 4 (fun j -> [ acc 8 (1000 + (4 * j) + (16 * i)) ])))
  in
  Alcotest.(check int) "loops" 2 (Model.n_loops m);
  Alcotest.(check int) "refs" 2 (Model.n_refs m);
  Alcotest.(check int) "accesses" (3 + 12) (Model.accesses m);
  Alcotest.(check (list int)) "sites" [ 7; 8 ] m.sites

let t_model_prunes_empty () =
  (* a loop whose refs are filtered disappears from the model *)
  let m =
    mk_model ~thresholds:(th 5 5)
      (loop 1 10 (fun i -> [ acc 7 (4 * i) ])
      @ loop 2 2 (fun i -> [ acc 8 (4 * i) ]))
  in
  Alcotest.(check int) "only the surviving nest" 1 (Model.n_loops m);
  Alcotest.(check int) "one ref" 1 (Model.n_refs m)

let t_model_expr_rendering () =
  let m =
    mk_model
      (loop 1 2 (fun i -> loop 2 3 (fun j -> [ acc 9 (50 + (4 * j) + (100 * i)) ])))
  in
  match Model.all_refs m with
  | [ (chain, r) ] ->
      Alcotest.(check string) "expression" "50 + 4*i2 + 100*i1"
        (Model.expr_of_ref r);
      Alcotest.(check (list int)) "chain outermost first" [ 1; 2 ]
        (List.map (fun (l : Model.mloop) -> l.lid) chain);
      Alcotest.(check string) "array name" "A9" (Model.array_name r.site)
  | _ -> Alcotest.fail "expected one ref"

let t_model_to_c_parses () =
  (* emitted FORAY model is valid MiniC and passes sema *)
  let m =
    mk_model
      (loop 1 3 (fun i ->
           [ acc 7 (4 * i) ]
           @ loop 2 4 (fun j -> [ acc 8 (1000 + (4 * j) + (16 * i)) ])))
  in
  let src = Model.to_c m in
  let prog = Minic.Parser.program src in
  Minic.Sema.check_exn prog;
  Alcotest.(check bool) "mentions A7" true
    (let sub = "A7[" in
     let n = String.length sub and l = String.length src in
     let rec go i = i + n <= l && (String.sub src i n = sub || go (i + 1)) in
     go 0)

let t_model_partial_annotation () =
  let bases = [| 100; 9000; 500 |] in
  let m =
    mk_model
      (loop 1 3 (fun i -> loop 2 4 (fun j -> [ acc 9 (bases.(i) + (4 * j)) ])))
  in
  match Model.all_refs m with
  | [ (_, r) ] ->
      Alcotest.(check bool) "partial" true r.partial;
      Alcotest.(check int) "m" 1 r.m;
      Alcotest.(check int) "depth" 2 r.depth;
      let src = Model.to_c m in
      Alcotest.(check bool) "partial comment emitted" true
        (let sub = "partial" in
         let n = String.length sub and l = String.length src in
         let rec go i = i + n <= l && (String.sub src i n = sub || go (i + 1)) in
         go 0)
  | l -> Alcotest.failf "expected one ref, got %d" (List.length l)

let t_model_loop_kinds () =
  let m =
    mk_model
      ~loop_kinds:[ (1, "while") ]
      (loop 1 3 (fun i -> [ acc 7 (4 * i) ]))
  in
  match m.loops with
  | [ l ] -> Alcotest.(check (option string)) "kind" (Some "while") l.kind
  | _ -> Alcotest.fail "one loop expected"

let t_zero_coeff_dropped () =
  (* iterator with zero coefficient is not emitted in the expression *)
  let m =
    mk_model
      (loop 1 3 (fun _i -> loop 2 4 (fun j -> [ acc 9 (50 + (4 * j)) ])))
  in
  match Model.all_refs m with
  | [ (_, r) ] ->
      Alcotest.(check string) "only inner term" "50 + 4*i2"
        (Model.expr_of_ref r)
  | _ -> Alcotest.fail "expected one ref"

let tests =
  [
    Alcotest.test_case "filter nexec" `Quick t_filter_nexec;
    Alcotest.test_case "filter nloc" `Quick t_filter_nloc;
    Alcotest.test_case "filter needs an iterator" `Quick t_filter_no_iterator;
    Alcotest.test_case "paper default thresholds" `Quick t_default_thresholds;
    Alcotest.test_case "model counts" `Quick t_model_counts;
    Alcotest.test_case "model prunes empty loops" `Quick t_model_prunes_empty;
    Alcotest.test_case "model expression rendering" `Quick
      t_model_expr_rendering;
    Alcotest.test_case "model emits valid MiniC" `Quick t_model_to_c_parses;
    Alcotest.test_case "partial annotation" `Quick t_model_partial_annotation;
    Alcotest.test_case "loop kinds" `Quick t_model_loop_kinds;
    Alcotest.test_case "zero coefficients dropped" `Quick t_zero_coeff_dropped;
  ]
