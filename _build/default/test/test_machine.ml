(* Memory and layout tests for the simulated machine. *)

open Minic_machine

let t_mem_bytes () =
  let m = Memory.create () in
  Alcotest.(check int) "uninitialized reads 0" 0 (Memory.read_byte m 12345);
  Memory.write_byte m 12345 0xAB;
  Alcotest.(check int) "byte round-trip" 0xAB (Memory.read_byte m 12345);
  Memory.write_byte m 12345 0x1FF;
  Alcotest.(check int) "byte truncates" 0xFF (Memory.read_byte m 12345)

let t_mem_words () =
  let m = Memory.create () in
  Memory.write m 1000 4 0x12345678;
  Alcotest.(check int) "little endian low byte" 0x78 (Memory.read_byte m 1000);
  Alcotest.(check int) "little endian high byte" 0x12 (Memory.read_byte m 1003);
  Alcotest.(check int) "word round-trip" 0x12345678 (Memory.read m 1000 4)

let t_mem_sign_extension () =
  let m = Memory.create () in
  Memory.write m 0 4 (-1);
  Alcotest.(check int) "int -1 round-trips" (-1) (Memory.read m 0 4);
  Memory.write m 10 1 (-5);
  Alcotest.(check int) "char -5 round-trips" (-5) (Memory.read m 10 1);
  Memory.write m 20 1 200;
  Alcotest.(check int) "char 200 reads as -56" (-56) (Memory.read m 20 1)

let t_mem_cross_page () =
  let m = Memory.create () in
  (* 4 KiB pages: write a word straddling the boundary *)
  Memory.write m 4094 4 0x0A0B0C0D;
  Alcotest.(check int) "cross-page round-trip" 0x0A0B0C0D (Memory.read m 4094 4);
  Alcotest.(check bool) "two pages materialized" true (Memory.pages m >= 2)

let t_layout_segments () =
  let l = Layout.create () in
  let g1 = Layout.alloc_global l ~size:10 ~align:4 in
  let g2 = Layout.alloc_global l ~size:4 ~align:4 in
  Alcotest.(check int) "globals start at base" Layout.global_base g1;
  Alcotest.(check int) "second global aligned" (Layout.global_base + 12) g2;
  let h1 = Layout.alloc_heap l ~size:100 in
  Alcotest.(check int) "heap base" Layout.heap_base h1;
  let s1 = Layout.alloc_stack l ~size:4 ~align:4 in
  Alcotest.(check bool) "stack grows down" true (s1 < Layout.stack_base);
  Alcotest.(check int) "stack aligned" 0 (s1 mod 4)

let t_layout_restore () =
  let l = Layout.create () in
  let saved = Layout.sp l in
  let _ = Layout.alloc_stack l ~size:64 ~align:4 in
  Alcotest.(check bool) "sp moved" true (Layout.sp l < saved);
  Layout.restore_sp l saved;
  Alcotest.(check int) "sp restored" saved (Layout.sp l)

let t_segment_of () =
  Alcotest.(check string) "global" "global" (Layout.segment_of (Layout.global_base + 5));
  Alcotest.(check string) "heap" "heap" (Layout.segment_of (Layout.heap_base + 5));
  Alcotest.(check string) "stack" "stack" (Layout.segment_of (Layout.stack_base - 5));
  Alcotest.(check string) "unmapped" "unmapped" (Layout.segment_of 0)

let t_layout_oom () =
  let l = Layout.create () in
  Alcotest.(check bool) "stack overflow raises" true
    (try
       ignore (Layout.alloc_stack l ~size:0x2000_0000 ~align:4);
       false
     with Layout.Out_of_memory _ -> true)

let tests =
  [
    Alcotest.test_case "memory bytes" `Quick t_mem_bytes;
    Alcotest.test_case "memory words little-endian" `Quick t_mem_words;
    Alcotest.test_case "memory sign extension" `Quick t_mem_sign_extension;
    Alcotest.test_case "memory cross-page" `Quick t_mem_cross_page;
    Alcotest.test_case "layout segments" `Quick t_layout_segments;
    Alcotest.test_case "layout sp restore" `Quick t_layout_restore;
    Alcotest.test_case "segment naming" `Quick t_segment_of;
    Alcotest.test_case "layout out-of-memory" `Quick t_layout_oom;
  ]
