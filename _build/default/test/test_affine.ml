(* Algorithm 3 tests: incremental affine inference, unit cases for every
   step of Figure 8 plus randomized oracles. *)

open Foray_core

(* Drive a solver over a synthetic iteration space. [trips] are outermost
   first; [addr_of] receives the iterator vector innermost first. *)
let drive ~trips ~addr_of =
  let depth = List.length trips in
  let aff = Affine.create ~site:1 ~depth in
  let rec go iters_outer = function
    | [] ->
        (* the innermost loop was pushed last, so the head is innermost *)
        let inner_first = Array.of_list iters_outer in
        Affine.observe aff ~iters:inner_first ~addr:(addr_of inner_first)
    | trip :: rest ->
        for i = 0 to trip - 1 do
          go (i :: iters_outer) rest
        done
  in
  go [] trips;
  aff

let t_constant_ref () =
  let aff = drive ~trips:[ 5 ] ~addr_of:(fun _ -> 1000) in
  Alcotest.(check bool) "analyzable" true (Affine.analyzable aff);
  Alcotest.(check int) "const" 1000 (Affine.const aff);
  Alcotest.(check bool) "no iterator" false (Affine.has_iterator aff);
  Alcotest.(check (list int)) "zero coeff" [ 0 ] (Affine.included_terms aff)

let t_simple_stride () =
  let aff = drive ~trips:[ 10 ] ~addr_of:(fun it -> 500 + (4 * it.(0))) in
  Alcotest.(check bool) "analyzable" true (Affine.analyzable aff);
  Alcotest.(check int) "execs" 10 (Affine.execs aff);
  Alcotest.(check int) "const" 500 (Affine.const aff);
  Alcotest.(check (list int)) "coefficient" [ 4 ] (Affine.included_terms aff);
  Alcotest.(check int) "no demotion" 1 (Affine.m aff);
  Alcotest.(check int) "no mispredictions" 0 (Affine.mispredictions aff)

let t_figure4_coefficients () =
  (* the paper's worked example: inner stride 1, outer stride 103 *)
  let aff =
    drive ~trips:[ 2; 3 ] ~addr_of:(fun it -> 100 + it.(0) + (103 * it.(1)))
  in
  Alcotest.(check bool) "analyzable" true (Affine.analyzable aff);
  Alcotest.(check (list int)) "1*inner + 103*outer" [ 1; 103 ]
    (Affine.included_terms aff);
  Alcotest.(check bool) "full affine" false (Affine.partial aff)

let t_negative_coefficient () =
  let aff = drive ~trips:[ 6 ] ~addr_of:(fun it -> 900 - (8 * it.(0))) in
  Alcotest.(check (list int)) "negative stride" [ -8 ]
    (Affine.included_terms aff)

let t_partial_demotion () =
  (* Figure 7: the base jumps arbitrarily with the outer iterator *)
  let bases = [| 1000; 5000; 2000; 40000 |] in
  let aff =
    drive ~trips:[ 4; 5 ]
      ~addr_of:(fun it -> bases.(it.(1)) + (4 * it.(0)))
  in
  Alcotest.(check bool) "analyzable" true (Affine.analyzable aff);
  Alcotest.(check bool) "partial" true (Affine.partial aff);
  Alcotest.(check int) "covers the inner loop" 1 (Affine.m aff);
  Alcotest.(check (list int)) "inner coefficient survives" [ 4 ]
    (Affine.included_terms aff);
  Alcotest.(check bool) "still counts as iterator ref" true
    (Affine.has_iterator aff)

let t_partial_two_inner () =
  (* base jumps with the outermost of three loops; inner two stay affine *)
  let bases = [| 0; 7777; 3333 |] in
  let aff =
    drive ~trips:[ 3; 4; 5 ]
      ~addr_of:(fun it -> bases.(it.(2)) + (4 * it.(0)) + (100 * it.(1)))
  in
  Alcotest.(check bool) "partial" true (Affine.partial aff);
  Alcotest.(check int) "m = 2" 2 (Affine.m aff);
  Alcotest.(check (list int)) "two inner coefficients" [ 4; 100 ]
    (Affine.included_terms aff)

let t_phase_shifted_reference () =
  (* a reference first executing at iteration 1 (e.g. the odd arm of a
     switch) must still be recognized as fully affine: the constant is
     re-based when the coefficient is solved (Step 3 extension) *)
  let aff = Affine.create ~site:1 ~depth:1 in
  for i = 0 to 20 do
    if i mod 2 = 1 then Affine.observe aff ~iters:[| i |] ~addr:(1000 + (4 * i))
  done;
  Alcotest.(check bool) "analyzable" true (Affine.analyzable aff);
  Alcotest.(check int) "no demotion" 1 (Affine.m aff);
  Alcotest.(check (list int)) "coefficient" [ 4 ] (Affine.included_terms aff);
  Alcotest.(check int) "no mispredictions" 0 (Affine.mispredictions aff);
  Alcotest.(check int) "constant re-based to the origin" 1000
    (Affine.const aff)

let t_random_addresses_purged () =
  let rng = Foray_util.Prng.create 11 in
  let aff =
    drive ~trips:[ 50 ] ~addr_of:(fun _ -> Foray_util.Prng.int rng 100000)
  in
  (* either the division fails (non-analyzable) or demotion strips all
     iterators; both exclude the ref from the model *)
  Alcotest.(check bool) "not a model candidate" false (Affine.has_iterator aff)

let t_h2_non_analyzable () =
  (* two unknown-coefficient iterators changing at once: execute the ref
     only when both iterators move together *)
  let aff = Affine.create ~site:1 ~depth:2 in
  Affine.observe aff ~iters:[| 0; 0 |] ~addr:100;
  Affine.observe aff ~iters:[| 1; 1 |] ~addr:142;
  Alcotest.(check bool) "H=2 marks non-analyzable" false
    (Affine.analyzable aff)

let t_non_integer_coefficient () =
  (* address delta not divisible by the iterator delta *)
  let aff = Affine.create ~site:1 ~depth:1 in
  Affine.observe aff ~iters:[| 0 |] ~addr:100;
  Affine.observe aff ~iters:[| 2 |] ~addr:103;
  Alcotest.(check bool) "non-exact solve rejected" false
    (Affine.analyzable aff)

let t_depth_zero () =
  let aff = Affine.create ~site:9 ~depth:0 in
  Affine.observe aff ~iters:[||] ~addr:500;
  Affine.observe aff ~iters:[||] ~addr:500;
  Alcotest.(check bool) "constant ok" true (Affine.analyzable aff);
  Alcotest.(check bool) "never an iterator ref" false (Affine.has_iterator aff)

let t_iters_length_mismatch () =
  let aff = Affine.create ~site:1 ~depth:2 in
  Alcotest.check_raises "length checked"
    (Invalid_argument "Affine.observe: iterator vector length mismatch")
    (fun () -> Affine.observe aff ~iters:[| 1 |] ~addr:0)

let t_stats_continue_after_failure () =
  let aff = Affine.create ~site:1 ~depth:2 in
  Affine.observe aff ~iters:[| 0; 0 |] ~addr:100;
  Affine.observe aff ~iters:[| 1; 1 |] ~addr:142;
  Affine.observe aff ~iters:[| 2; 2 |] ~addr:999;
  Alcotest.(check int) "execs keep counting" 3 (Affine.execs aff)

(* --- randomized oracles ---------------------------------------------- *)

let gen_case =
  QCheck2.Gen.(
    let* depth = int_range 1 4 in
    let* trips = list_repeat depth (int_range 2 5) in
    let* coeffs = list_repeat depth (int_range (-16) 16) in
    let* base = int_range 0 100000 in
    return (trips, Array.of_list coeffs, base))

let prop_full_affine_recovered =
  QCheck2.Test.make ~name:"algorithm 3 recovers exact affine functions"
    ~count:300 gen_case (fun (trips, coeffs, base) ->
      let aff =
        drive ~trips ~addr_of:(fun it ->
            let a = ref base in
            Array.iteri (fun i v -> a := !a + (coeffs.(i) * v)) it;
            !a)
      in
      Affine.analyzable aff
      && (not (Affine.partial aff))
      && Affine.mispredictions aff = 0
      && Affine.const aff = base
      && List.for_all2
           (fun got want -> got = want)
           (Affine.included_terms aff)
           (Array.to_list coeffs))

let prop_prediction_matches =
  QCheck2.Test.make ~name:"predict equals actual for affine streams"
    ~count:200 gen_case (fun (trips, coeffs, base) ->
      let addr_of it =
        let a = ref base in
        Array.iteri (fun i v -> a := !a + (coeffs.(i) * v)) it;
        !a
      in
      let aff = drive ~trips ~addr_of in
      (* after training, predictions must be exact on the whole space *)
      let depth = List.length trips in
      let ok = ref true in
      let rec go iters_outer = function
        | [] ->
            let it = Array.of_list iters_outer in
            if Affine.predict aff ~iters:it <> addr_of it then ok := false
        | trip :: rest ->
            for i = 0 to trip - 1 do
              go (i :: iters_outer) rest
            done
      in
      go [] trips;
      ignore depth;
      !ok)

let prop_partial_inner_exact =
  QCheck2.Test.make
    ~name:"partial demotion keeps exact inner coefficients" ~count:200
    QCheck2.Gen.(
      let* inner_trip = int_range 3 6 in
      let* outer_trip = int_range 3 6 in
      let* coeff = oneofl [ 1; 2; 4; 8; -4 ] in
      let* bases = list_repeat outer_trip (int_range 0 1_000_000) in
      return (inner_trip, outer_trip, coeff, Array.of_list bases))
    (fun (inner_trip, outer_trip, coeff, bases) ->
      let aff =
        drive
          ~trips:[ outer_trip; inner_trip ]
          ~addr_of:(fun it -> bases.(it.(1)) + (coeff * it.(0)))
      in
      (* with random bases, either demoted to the inner loop (typical) or,
         if the bases happen to be affine themselves, fully solved *)
      Affine.analyzable aff
      &&
      if Affine.partial aff then
        Affine.m aff <= 1
        && (Affine.m aff = 0 || Affine.included_terms aff = [ coeff ])
      else true)

let tests =
  [
    Alcotest.test_case "constant reference" `Quick t_constant_ref;
    Alcotest.test_case "simple stride" `Quick t_simple_stride;
    Alcotest.test_case "figure 4 coefficients" `Quick t_figure4_coefficients;
    Alcotest.test_case "negative coefficient" `Quick t_negative_coefficient;
    Alcotest.test_case "partial demotion (figure 7)" `Quick t_partial_demotion;
    Alcotest.test_case "partial with two inner loops" `Quick t_partial_two_inner;
    Alcotest.test_case "phase-shifted reference" `Quick
      t_phase_shifted_reference;
    Alcotest.test_case "random addresses purged" `Quick t_random_addresses_purged;
    Alcotest.test_case "H>1 non-analyzable" `Quick t_h2_non_analyzable;
    Alcotest.test_case "non-integer coefficient" `Quick t_non_integer_coefficient;
    Alcotest.test_case "depth zero" `Quick t_depth_zero;
    Alcotest.test_case "iterator vector length" `Quick t_iters_length_mismatch;
    Alcotest.test_case "stats continue after failure" `Quick
      t_stats_continue_after_failure;
    QCheck_alcotest.to_alcotest prop_full_affine_recovered;
    QCheck_alcotest.to_alcotest prop_prediction_matches;
    QCheck_alcotest.to_alcotest prop_partial_inner_exact;
  ]
