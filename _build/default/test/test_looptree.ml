(* Algorithm 2 tests: loop-tree reconstruction from synthetic traces. *)

open Foray_core
module Event = Foray_trace.Event

let ck loop kind = Event.Checkpoint { loop; kind }
let acc ?(write = false) site addr =
  Event.Access { site; addr; write; sys = false; width = 4 }

let walk events =
  let t = Looptree.create () in
  List.iter (Looptree.sink t) events;
  t

(* a loop that runs [trip] times around [body_of i] *)
let loop lid trip body_of =
  [ ck lid Event.Loop_enter ]
  @ List.concat
      (List.init trip (fun i ->
           (ck lid Event.Body_enter :: body_of i) @ [ ck lid Event.Body_exit ]))
  @ [ ck lid Event.Loop_exit ]

let t_single_loop () =
  let t = walk (loop 7 3 (fun i -> [ acc 42 (100 + (4 * i)) ])) in
  Alcotest.(check int) "one node" 1 (Looptree.n_nodes t);
  match Looptree.nodes t with
  | [ n ] ->
      Alcotest.(check int) "lid" 7 n.lid;
      Alcotest.(check int) "depth" 1 n.depth;
      Alcotest.(check int) "entries" 1 n.entries;
      Alcotest.(check int) "trip max" 3 n.trip_max;
      Alcotest.(check int) "trip min" 3 n.trip_min;
      Alcotest.(check int) "one ref" 1 (List.length n.refs);
      let r = List.hd n.refs in
      Alcotest.(check (list int)) "stride" [ 4 ]
        (Affine.included_terms r.aff)
  | _ -> Alcotest.fail "expected exactly one node"

let t_nested () =
  let t =
    walk
      (loop 1 2 (fun i ->
           loop 2 3 (fun j -> [ acc 9 (1000 + (4 * j) + (100 * i)) ])))
  in
  Alcotest.(check int) "two nodes" 2 (Looptree.n_nodes t);
  let inner =
    List.find (fun (n : Looptree.node) -> n.lid = 2) (Looptree.nodes t)
  in
  Alcotest.(check int) "inner depth" 2 inner.depth;
  Alcotest.(check int) "inner entries" 2 inner.entries;
  Alcotest.(check (list int)) "path" [ 1; 2 ] (Looptree.path inner);
  let r = List.hd inner.refs in
  Alcotest.(check (list int)) "coefficients innermost first" [ 4; 100 ]
    (Affine.included_terms r.aff)

let t_sequential_loops () =
  let t =
    walk
      (loop 1 2 (fun i -> [ acc 5 (4 * i) ])
      @ loop 2 3 (fun i -> [ acc 6 (1000 + (8 * i)) ]))
  in
  Alcotest.(check int) "two top-level nodes" 2 (Looptree.n_nodes t);
  List.iter
    (fun (n : Looptree.node) ->
      Alcotest.(check int) ("depth of " ^ string_of_int n.lid) 1 n.depth)
    (Looptree.nodes t)

let t_context_split () =
  (* the same static loop under two different parents becomes two nodes:
     the "inlining" behaviour of Section 4 *)
  let inner_ctx i = loop 9 2 (fun j -> [ acc 3 (100 + (4 * j) + (50 * i)) ]) in
  let t = walk (loop 1 2 inner_ctx @ loop 2 2 inner_ctx) in
  let nines =
    List.filter (fun (n : Looptree.node) -> n.lid = 9) (Looptree.nodes t)
  in
  Alcotest.(check int) "loop 9 materialized twice" 2 (List.length nines);
  Alcotest.(check bool) "distinct parents" true
    (List.length (List.sort_uniq compare (List.map Looptree.path nines)) = 2)

let t_same_context_merged () =
  (* two entries through the same context reuse one node *)
  let t =
    walk
      (loop 1 1 (fun _ ->
           loop 9 2 (fun j -> [ acc 3 (4 * j) ])
           @ loop 9 2 (fun j -> [ acc 3 (4 * j) ])))
  in
  let nines =
    List.filter (fun (n : Looptree.node) -> n.lid = 9) (Looptree.nodes t)
  in
  Alcotest.(check int) "merged node" 1 (List.length nines);
  Alcotest.(check int) "entered twice" 2 (List.hd nines).entries

let t_variable_trips () =
  let t =
    walk
      (List.concat
         (List.init 3 (fun k ->
              loop 4 (k + 1) (fun i -> [ acc 2 (4 * i) ]))))
  in
  let n = List.hd (Looptree.nodes t) in
  Alcotest.(check int) "min trip" 1 n.trip_min;
  Alcotest.(check int) "max trip" 3 n.trip_max;
  Alcotest.(check int) "total" 6 n.trip_total;
  Alcotest.(check int) "entries" 3 n.entries

let t_break_robustness () =
  (* break skips body_exit and jumps straight to loop_exit *)
  let events =
    [ ck 1 Event.Loop_enter;
      ck 1 Event.Body_enter; acc 5 100; ck 1 Event.Body_exit;
      ck 1 Event.Body_enter; acc 5 104;
      (* break here: no body_exit *)
      ck 1 Event.Loop_exit;
      (* a later loop must still attach at the root *)
      ck 2 Event.Loop_enter;
      ck 2 Event.Body_enter; acc 6 200; ck 2 Event.Body_exit;
      ck 2 Event.Loop_exit ]
  in
  let t = walk events in
  let n2 = List.find (fun (n : Looptree.node) -> n.lid = 2) (Looptree.nodes t) in
  Alcotest.(check int) "loop 2 at depth 1" 1 n2.depth

let t_return_robustness () =
  (* return from inside a nested loop: the next checkpoint of the outer
     context pops the abandoned nodes *)
  let events =
    [ ck 1 Event.Loop_enter;
      ck 1 Event.Body_enter;
      ck 2 Event.Loop_enter;
      ck 2 Event.Body_enter; acc 5 100;
      (* return: loop 2's exits never arrive *)
      ck 1 Event.Body_exit;
      ck 1 Event.Body_enter;
      ck 2 Event.Loop_enter;
      ck 2 Event.Body_enter; acc 5 104; ck 2 Event.Body_exit;
      ck 2 Event.Loop_exit;
      ck 1 Event.Body_exit;
      ck 1 Event.Loop_exit ]
  in
  let t = walk events in
  Alcotest.(check int) "two nodes despite missing exits" 2
    (Looptree.n_nodes t);
  let n2 = List.find (fun (n : Looptree.node) -> n.lid = 2) (Looptree.nodes t) in
  Alcotest.(check int) "loop 2 entered twice" 2 n2.entries

let t_refs_keyed_per_node () =
  (* one site in two loops = two reference states *)
  let t =
    walk
      (loop 1 2 (fun i -> [ acc 7 (4 * i) ])
      @ loop 2 2 (fun i -> [ acc 7 (1000 + (8 * i)) ]))
  in
  let refs = Looptree.refs t in
  Alcotest.(check int) "two states for one site" 2
    (List.length
       (List.filter (fun (_, (r : Looptree.refinfo)) -> Affine.site r.aff = 7) refs))

let t_footprint_and_rw () =
  let t =
    walk (loop 1 3 (fun i -> [ acc 7 (4 * i); acc ~write:true 8 (4 * i) ]))
  in
  let find site =
    snd
      (List.find
         (fun (_, (r : Looptree.refinfo)) -> Affine.site r.aff = site)
         (Looptree.refs t))
  in
  let r7 = find 7 and r8 = find 8 in
  Alcotest.(check int) "reads" 3 r7.reads;
  Alcotest.(check int) "writes" 0 r7.writes;
  Alcotest.(check int) "writes of store" 3 r8.writes;
  Alcotest.(check int) "footprint bytes" 12
    (Foray_util.Iset.cardinal r7.footprint);
  Alcotest.(check int) "distinct locations" 3
    (Foray_util.Iset.cardinal r7.starts)

let tests =
  [
    Alcotest.test_case "single loop" `Quick t_single_loop;
    Alcotest.test_case "nested loops" `Quick t_nested;
    Alcotest.test_case "sequential loops" `Quick t_sequential_loops;
    Alcotest.test_case "context split (inlining)" `Quick t_context_split;
    Alcotest.test_case "same context merged" `Quick t_same_context_merged;
    Alcotest.test_case "variable trip counts" `Quick t_variable_trips;
    Alcotest.test_case "break robustness" `Quick t_break_robustness;
    Alcotest.test_case "return robustness" `Quick t_return_robustness;
    Alcotest.test_case "refs keyed per node" `Quick t_refs_keyed_per_node;
    Alcotest.test_case "footprint and read/write counts" `Quick
      t_footprint_and_rw;
  ]
