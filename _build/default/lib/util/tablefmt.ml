type align = Left | Right

type line = Row of string list | Sep

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable lines : line list; (* reversed *)
}

let default_aligns n = List.init n (fun i -> if i = 0 then Left else Right)

let create ?aligns ~title headers =
  let n = List.length headers in
  let aligns =
    match aligns with
    | Some a when List.length a = n -> a
    | Some _ -> invalid_arg "Tablefmt.create: aligns length mismatch"
    | None -> default_aligns n
  in
  { title; headers; aligns; lines = [] }

let row t cells =
  let n = List.length t.headers in
  let k = List.length cells in
  if k > n then invalid_arg "Tablefmt.row: too many cells";
  let cells = cells @ List.init (n - k) (fun _ -> "") in
  t.lines <- Row cells :: t.lines

let separator t = t.lines <- Sep :: t.lines

let render t =
  let lines = List.rev t.lines in
  let widths =
    List.fold_left
      (fun ws line ->
        match line with
        | Sep -> ws
        | Row cells -> List.map2 (fun w c -> max w (String.length c)) ws cells)
      (List.map String.length t.headers)
      lines
  in
  let pad align w s =
    let d = w - String.length s in
    if d <= 0 then s
    else
      match align with
      | Left -> s ^ String.make d ' '
      | Right -> String.make d ' ' ^ s
  in
  let buf = Buffer.create 256 in
  let rule () =
    List.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let render_row align_row cells =
    List.iteri
      (fun i c ->
        let w = List.nth widths i in
        let a = if align_row then List.nth t.aligns i else Left in
        Buffer.add_string buf ("| " ^ pad a w c ^ " "))
      cells;
    Buffer.add_string buf "|\n"
  in
  Buffer.add_string buf (t.title ^ "\n");
  rule ();
  render_row false t.headers;
  rule ();
  List.iter
    (function Sep -> rule () | Row cells -> render_row true cells)
    lines;
  rule ();
  Buffer.contents buf

let pctf p =
  if p = 0.0 then "0%"
  else if p < 1.0 then Printf.sprintf "%.1f%%" p
  else Printf.sprintf "%.0f%%" p
