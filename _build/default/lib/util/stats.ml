type t = {
  mutable count : int;
  mutable total : int;
  mutable min : int;
  mutable max : int;
}

let create () = { count = 0; total = 0; min = max_int; max = min_int }

let observe t x =
  t.count <- t.count + 1;
  t.total <- t.total + x;
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.count
let total t = t.total

let min t =
  if t.count = 0 then invalid_arg "Stats.min: empty" else t.min

let max t =
  if t.count = 0 then invalid_arg "Stats.max: empty" else t.max

let mean t = if t.count = 0 then 0.0 else float_of_int t.total /. float_of_int t.count
let percent part whole =
  if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let human n =
  let f = float_of_int n in
  if n >= 10_000_000 then Printf.sprintf "%.0fM" (f /. 1e6)
  else if n >= 1_000_000 then Printf.sprintf "%.1fM" (f /. 1e6)
  else if n >= 100_000 then Printf.sprintf "%.0fk" (f /. 1e3)
  else string_of_int n
