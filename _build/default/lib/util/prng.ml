type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64, truncated to OCaml's 63-bit int, kept non-negative. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  next t mod bound

let range t lo hi =
  if hi < lo then invalid_arg "Prng.range: hi < lo";
  lo + int t (hi - lo + 1)

let bool t = next t land 1 = 1

let pick t l =
  match l with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth l (int t (List.length l))
