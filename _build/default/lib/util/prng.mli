(** Small deterministic pseudo-random generator (splitmix64).

    Used by workload generators and property tests that must be reproducible
    independently of the global [Random] state. *)

type t

(** [create seed] makes a generator; equal seeds yield equal streams. *)
val create : int -> t

(** Next raw 62-bit non-negative value. *)
val next : t -> int

(** [int t bound] draws uniformly from [\[0, bound)]. [bound] must be > 0. *)
val int : t -> int -> int

(** [range t lo hi] draws uniformly from [\[lo, hi\]] inclusive. *)
val range : t -> int -> int -> int

(** [bool t] draws a fair boolean. *)
val bool : t -> bool

(** [pick t l] draws a uniformly random element of the non-empty list [l]. *)
val pick : t -> 'a list -> 'a
