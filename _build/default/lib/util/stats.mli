(** Streaming summary statistics over integer observations. *)

type t

(** A fresh accumulator with no observations. *)
val create : unit -> t

(** [observe t x] folds one observation into the accumulator. *)
val observe : t -> int -> unit

(** Number of observations so far. *)
val count : t -> int

(** Sum of all observations. *)
val total : t -> int

(** Smallest observation. Raises [Invalid_argument] when empty. *)
val min : t -> int

(** Largest observation. Raises [Invalid_argument] when empty. *)
val max : t -> int

(** Arithmetic mean; 0.0 when empty. *)
val mean : t -> float

(** [percent part whole] is [100 * part / whole] as a float, 0 when
    [whole = 0]. Shared formatting helper for the report tables. *)
val percent : int -> int -> float

(** [human n] renders a count compactly, e.g. [8.3M], [123625], [43M],
    matching the style of the paper's Table III. *)
val human : int -> string
