(* Sorted disjoint half-open intervals keyed by their lower bound.
   Invariant: for consecutive bindings (lo1, hi1) (lo2, hi2) in key order,
   hi1 < lo2 (adjacent intervals are coalesced). *)

module M = Map.Make (Int)

type t = int M.t (* lo -> hi, interval [lo, hi) *)

let empty = M.empty
let is_empty = M.is_empty

(* Find the interval containing or immediately preceding [x]. *)
let pred_interval x s =
  match M.find_last_opt (fun lo -> lo <= x) s with
  | Some (lo, hi) -> Some (lo, hi)
  | None -> None

let mem x s =
  match pred_interval x s with
  | Some (_, hi) -> x < hi
  | None -> false

let add_range lo hi s =
  if hi <= lo then s
  else begin
    (* Absorb any interval that overlaps or is adjacent to [lo, hi). The
       predecessor may extend beyond hi, so its upper bound matters too. *)
    let lo, hi, s =
      match pred_interval lo s with
      | Some (plo, phi) when phi >= lo ->
          (min plo lo, max hi phi, M.remove plo s)
      | _ -> (lo, hi, s)
    in
    let rec absorb hi s =
      match M.find_first_opt (fun l -> l >= lo) s with
      | Some (nlo, nhi) when nlo <= hi ->
          absorb (max hi nhi) (M.remove nlo s)
      | _ -> (hi, s)
    in
    let hi, s = absorb hi s in
    M.add lo hi s
  end

let add x s = add_range x (x + 1) s
let singleton x = add x empty
let cardinal s = M.fold (fun lo hi acc -> acc + (hi - lo)) s 0
let union a b = M.fold (fun lo hi acc -> add_range lo hi acc) b a

let inter a b =
  M.fold
    (fun lo hi acc ->
      (* Clip every interval of [a] against [b]. *)
      let rec clip x acc =
        if x >= hi then acc
        else
          match M.find_last_opt (fun l -> l <= x) b with
          | Some (_, bhi) when x < bhi ->
              let stop = min hi bhi in
              clip stop (add_range x stop acc)
          | _ -> (
              match M.find_first_opt (fun l -> l > x) b with
              | Some (blo, _) when blo < hi -> clip blo acc
              | _ -> acc)
      in
      clip lo acc)
    a empty

let min_elt s = fst (M.min_binding s)
let max_elt s = snd (M.max_binding s) - 1
let intervals s = M.bindings s
let of_intervals l = List.fold_left (fun s (lo, hi) -> add_range lo hi s) empty l
let span s = if is_empty s then 0 else max_elt s - min_elt s + 1
let equal a b = M.equal Int.equal a b

let pp fmt s =
  let pp_iv fmt (lo, hi) = Format.fprintf fmt "[%d,%d)" lo hi in
  Format.fprintf fmt "{%a}" (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_iv)
    (intervals s)
