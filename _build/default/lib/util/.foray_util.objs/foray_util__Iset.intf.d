lib/util/iset.mli: Format
