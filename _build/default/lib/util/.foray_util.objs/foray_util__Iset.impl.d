lib/util/iset.ml: Format Int List Map
