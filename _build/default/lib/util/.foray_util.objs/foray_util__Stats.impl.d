lib/util/stats.ml: Printf
