lib/util/tablefmt.mli:
