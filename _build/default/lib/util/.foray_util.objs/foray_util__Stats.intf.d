lib/util/stats.mli:
