lib/util/prng.mli:
