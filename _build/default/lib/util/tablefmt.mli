(** Plain-text table rendering for the experiment reports.

    Produces aligned, boxed ASCII tables in the spirit of the paper's
    Table I / II / III. *)

type align = Left | Right

type t

(** [create ~title headers] starts a table whose columns are [headers].
    Column alignment defaults to [Left] for the first column and [Right]
    for the rest, which fits "name | numbers..." tables. *)
val create : ?aligns:align list -> title:string -> string list -> t

(** [row t cells] appends a data row. Rows shorter than the header are
    padded with empty cells; longer rows raise [Invalid_argument]. *)
val row : t -> string list -> unit

(** [separator t] appends a horizontal rule (used before summary rows). *)
val separator : t -> unit

(** [render t] lays the table out as a string, including the title. *)
val render : t -> string

(** [pctf p] formats a percentage with the paper's conventions: one
    significant decimal below 1%%, integer otherwise (e.g. "0.2%%", "27%%"). *)
val pctf : float -> string
