(** Sets of integers represented as sorted, disjoint, half-open intervals.

    Used to track the memory footprint of a reference (the set of distinct
    byte addresses it touches) in space proportional to the number of
    contiguous runs rather than the number of accesses. *)

type t

(** The empty set. *)
val empty : t

(** [is_empty s] is [true] iff [s] contains no element. *)
val is_empty : t -> bool

(** [singleton x] is the set containing exactly [x]. *)
val singleton : int -> t

(** [add x s] is [s] with the point [x] added. *)
val add : int -> t -> t

(** [add_range lo hi s] adds the half-open interval [\[lo, hi)] to [s].
    Returns [s] unchanged when [hi <= lo]. *)
val add_range : int -> int -> t -> t

(** [mem x s] is [true] iff [x] is an element of [s]. *)
val mem : int -> t -> bool

(** [cardinal s] is the number of integers in [s]. *)
val cardinal : t -> int

(** [union a b] is the set union of [a] and [b]. *)
val union : t -> t -> t

(** [inter a b] is the set intersection of [a] and [b]. *)
val inter : t -> t -> t

(** [min_elt s] is the smallest element. Raises [Not_found] on empty sets. *)
val min_elt : t -> int

(** [max_elt s] is the largest element. Raises [Not_found] on empty sets. *)
val max_elt : t -> int

(** [intervals s] lists the maximal disjoint intervals of [s] as [(lo, hi)]
    half-open pairs, in increasing order. *)
val intervals : t -> (int * int) list

(** [of_intervals l] builds a set from arbitrary (possibly overlapping,
    unordered) half-open intervals. *)
val of_intervals : (int * int) list -> t

(** [span s] is [max_elt s - min_elt s + 1], i.e. the size of the smallest
    contiguous region covering [s]; 0 for the empty set. *)
val span : t -> int

(** [equal a b] is structural set equality. *)
val equal : t -> t -> bool

(** [pp fmt s] prints [s] as a list of intervals, e.g. [{[0,4) [8,12)}]. *)
val pp : Format.formatter -> t -> unit
