(** Phase II output: the FORAY model rewritten to use scratch-pad buffers
    (step 4 of the Figure 3 flow — "modify source code to reflect buffer
    configurations").

    For every chosen buffer the emitted program declares a buffer array,
    fills it (via [memcpy]) in the body of the loop the buffer lives under,
    redirects the reference's accesses to the buffer with a rebased index
    expression, and copies written buffers back. The result is valid MiniC
    text a designer would back-annotate into the legacy code (Phase III,
    manual by design in the paper). *)

(** [apply model selection] renders the transformed model. References
    without a chosen buffer are emitted unchanged. The selection must come
    from {e unfused} candidates ({!Reuse.candidates} with [fuse] false):
    fused groups index fusion classes, not model references. *)
val apply : Foray_core.Model.t -> Dse.selection -> string

(** Name of the buffer array generated for a candidate. *)
val buffer_name : Reuse.candidate -> string
