let main_access = 3.57

(* Per-access SPM energy by capacity (powers of two), nJ. The growth rate
   mirrors the CACTI-derived numbers in Banakar et al. *)
let table =
  [ (256, 0.09); (512, 0.11); (1024, 0.15); (2048, 0.19); (4096, 0.26);
    (8192, 0.36); (16384, 0.51); (32768, 0.73); (65536, 1.04) ]

let spm_access bytes =
  let rec find = function
    | [] -> snd (List.nth table (List.length table - 1))
    | (cap, e) :: rest -> if bytes <= cap then e else find rest
  in
  find table

let transfer_word size = main_access +. spm_access size
let baseline accesses = float_of_int accesses *. main_access

(* Cache access energy: roughly 2.5x the same-size SPM at direct-mapped,
   growing ~18% per extra way (tag comparators + output muxing), the
   relation reported by Banakar et al. from CACTI. *)
let cache_access ~bytes ~assoc =
  let base = 2.5 *. spm_access bytes in
  base *. (1.0 +. (0.18 *. float_of_int (max 0 (assoc - 1))))

let line_transfer ~line_bytes =
  float_of_int ((line_bytes + 3) / 4) *. main_access
