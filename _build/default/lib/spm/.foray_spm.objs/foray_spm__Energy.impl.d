lib/spm/energy.ml: List
