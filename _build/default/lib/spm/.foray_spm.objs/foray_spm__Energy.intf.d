lib/spm/energy.mli:
