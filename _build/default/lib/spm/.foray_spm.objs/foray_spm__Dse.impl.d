lib/spm/dse.ml: Array Energy Format List Reuse
