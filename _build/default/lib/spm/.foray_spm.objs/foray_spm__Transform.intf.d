lib/spm/transform.mli: Dse Foray_core Reuse
