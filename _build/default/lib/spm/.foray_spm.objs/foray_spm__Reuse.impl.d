lib/spm/reuse.ml: Energy Foray_core Format Hashtbl List Model Option
