lib/spm/transform.ml: Buffer Dse Foray_core Hashtbl List Model Printf Reuse String
