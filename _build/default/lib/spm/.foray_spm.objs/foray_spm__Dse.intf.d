lib/spm/dse.mli: Foray_core Format Reuse
