lib/spm/reuse.mli: Foray_core Format
