open Foray_core

let buffer_name (c : Reuse.candidate) =
  Printf.sprintf "B%x_l%d" c.site c.level

(* Terms of the index expression split into covered (buffered, inner) and
   outer iterators. *)
let split_terms (r : Model.mref) ~covered =
  List.partition (fun (_, lid) -> List.mem lid covered) r.terms

type plan = {
  cand : Reuse.candidate;
  access_line : string;  (** replaces the reference *)
  fill_stmt : string;
  wb_stmt : string option;
  fill_loop : Model.mloop option;  (** body of this loop; [None] = before
                                       the outermost loop of the nest *)
  nest_head : Model.mloop;  (** outermost loop of the ref's nest *)
}

let plan_of ~chain ~(r : Model.mref) (c : Reuse.candidate) =
  let inner_first = List.rev chain in
  let covered =
    List.filteri (fun i _ -> i < c.level) inner_first
    |> List.map (fun (m : Model.mloop) -> m.lid)
  in
  let cov_terms, out_terms = split_terms r ~covered in
  let trip_of lid =
    match List.find_opt (fun (m : Model.mloop) -> m.lid = lid) chain with
    | Some m -> m.trip
    | None -> 1
  in
  (* negative coefficients reach their minimum at the last iteration *)
  let min_cov =
    List.fold_left
      (fun acc (co, lid) ->
        if co < 0 then acc + (co * (trip_of lid - 1)) else acc)
      0 cov_terms
  in
  let render const terms =
    String.concat " + "
      (string_of_int const
      :: List.map (fun (co, lid) -> Printf.sprintf "%d*i%d" co lid) terms)
  in
  let base = render (r.const + min_cov) out_terms in
  let idx = render (-min_cov) cov_terms in
  let name = buffer_name c in
  let arr = Model.array_name r.site in
  {
    cand = c;
    access_line = Printf.sprintf "%s[%s];" name idx;
    fill_stmt = Printf.sprintf "memcpy(%s, &%s[%s], %d);" name arr base c.size;
    wb_stmt =
      (if c.writeback then
         Some (Printf.sprintf "memcpy(&%s[%s], %s, %d);" arr base name c.size)
       else None);
    fill_loop =
      (if c.lid = 0 then None
       else List.find_opt (fun (m : Model.mloop) -> m.lid = c.lid) chain);
    nest_head = List.hd chain;
  }

let apply (model : Model.t) (sel : Dse.selection) =
  let chosen_for =
    List.map (fun (c : Reuse.candidate) -> (c.group, c)) sel.chosen
  in
  (* Pass 1: pair references (in Model.all_refs group order) with plans. *)
  let plans = Hashtbl.create 16 in
  List.iteri
    (fun i (chain, r) ->
      match List.assoc_opt i chosen_for with
      | Some c -> Hashtbl.add plans i (plan_of ~chain ~r c)
      | None -> ())
    (Model.all_refs model);
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "/* FORAY model with scratch-pad buffers (Phase II output) */\n";
  List.iter
    (fun site ->
      Buffer.add_string buf
        (Printf.sprintf "char %s[1];\n" (Model.array_name site)))
    model.sites;
  Hashtbl.iter
    (fun _ p ->
      Buffer.add_string buf
        (Printf.sprintf "char %s[%d];\n" (buffer_name p.cand) p.cand.size))
    plans;
  Buffer.add_string buf "int main() {\n";
  let all_plans = Hashtbl.fold (fun _ p acc -> p :: acc) plans [] in
  (* Pass 2: walk the tree in the same order, replacing references and
     inserting fills/write-backs at their loops. *)
  let counter = ref (-1) in
  let rec emit indent (l : Model.mloop) =
    let pad = String.make (2 * indent) ' ' in
    (* fills that happen once, before this whole nest *)
    List.iter
      (fun p ->
        if p.fill_loop = None && p.nest_head == l then begin
          Buffer.add_string buf (pad ^ p.fill_stmt ^ "\n")
        end)
      all_plans;
    Buffer.add_string buf
      (Printf.sprintf "%sfor (int i%d = 0; i%d < %d; i%d++) {\n" pad l.lid
         l.lid l.trip l.lid);
    (* per-iteration fills living in this loop's body *)
    List.iter
      (fun p ->
        match p.fill_loop with
        | Some fl when fl == l ->
            Buffer.add_string buf
              (Printf.sprintf "%s  /* %d fills of %d words */\n" pad
                 p.cand.fills p.cand.words_per_fill);
            Buffer.add_string buf (pad ^ "  " ^ p.fill_stmt ^ "\n")
        | _ -> ())
      all_plans;
    List.iter
      (fun (r : Model.mref) ->
        incr counter;
        match Hashtbl.find_opt plans !counter with
        | Some p -> Buffer.add_string buf (pad ^ "  " ^ p.access_line ^ "\n")
        | None ->
            Buffer.add_string buf
              (Printf.sprintf "%s  %s[%s];\n" pad (Model.array_name r.site)
                 (Model.expr_of_ref r)))
      l.refs;
    List.iter (emit (indent + 1)) l.subs;
    (* write-backs at the end of the fill loop's body *)
    List.iter
      (fun p ->
        match (p.wb_stmt, p.fill_loop) with
        | Some wb, Some fl when fl == l ->
            Buffer.add_string buf (pad ^ "  " ^ wb ^ "\n")
        | _ -> ())
      all_plans;
    Buffer.add_string buf (pad ^ "}\n");
    (* write-backs of whole-nest buffers, after the nest *)
    List.iter
      (fun p ->
        match (p.wb_stmt, p.fill_loop) with
        | Some wb, None when p.nest_head == l ->
            Buffer.add_string buf (pad ^ wb ^ "\n")
        | _ -> ())
      all_plans
  in
  List.iter (emit 1) model.loops;
  Buffer.add_string buf "  return 0;\n}\n";
  Buffer.contents buf
