(** Energy model of the memory subsystem.

    Per-access energies follow the shape of Banakar et al. (CODES 2002),
    the reference the paper cites for SPM energy advantages: scratch-pad
    access energy grows slowly with SPM size and is an order of magnitude
    below an off-chip main-memory access. Absolute values are in
    nanojoules; only the ratios matter for reproducing who-wins results. *)

(** Energy of one main-memory access (nJ). *)
val main_access : float

(** [spm_access bytes] is the energy of one access to a scratch pad of the
    given capacity (nJ); capacities are rounded up to the next power of two
    between 256 B and 64 KiB. *)
val spm_access : int -> float

(** Energy to move one 4-byte word between main memory and SPM (one main
    access plus one SPM access). *)
val transfer_word : int -> float

(** [baseline accesses] is the energy of serving all accesses from main
    memory. *)
val baseline : int -> float

(** [cache_access ~bytes ~assoc] is the energy of one access to a
    set-associative cache of the given capacity (nJ). Caches pay for tag
    lookup and way multiplexing, so this sits well above {!spm_access} of
    the same capacity — the Banakar et al. observation that motivates
    scratch pads in the first place. *)
val cache_access : bytes:int -> assoc:int -> float

(** Energy of refilling one cache line of [line_bytes] from main memory
    (or writing a dirty line back). *)
val line_transfer : line_bytes:int -> float
