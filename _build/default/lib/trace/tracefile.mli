(** Trace files: persisting the profile for offline analysis.

    The paper's flow stores the (typically large) trace on disk between the
    simulator and the analyzer, unless the online mode is used. Two
    on-disk formats:

    - {b Text}: one {!Event.to_line} record per line — the human-readable
      Figure 4(c) format;
    - {b Binary}: a ["FORAYTR1"] magic followed by tag-byte +
      LEB128-varint records, roughly 4-6x smaller than text.

    Readers auto-detect the format from the magic. *)

type format = Text | Binary

(** [save ~format path events] writes a whole trace. *)
val save : format:format -> string -> Event.event list -> unit

(** [sink_to_file ~format path] opens a streaming writer. The returned
    sink appends events; call the close function when done (also flushes).
    This is how the simulator writes traces without materializing them. *)
val sink_to_file : format:format -> string -> Event.sink * (unit -> unit)

(** [load path] reads a whole trace, auto-detecting the format.
    @raise Failure on malformed content. *)
val load : string -> Event.event list

(** [fold path f init] streams the file through [f] without building a
    list — constant space for arbitrarily large traces. *)
val fold : string -> ('a -> Event.event -> 'a) -> 'a -> 'a

(** [iter path f] is [fold] for side effects; [f] is a sink, so an
    analyzer can be fed directly from a file. *)
val iter : string -> Event.sink -> unit
