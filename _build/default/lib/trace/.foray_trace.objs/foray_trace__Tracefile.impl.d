lib/trace/tracefile.ml: Buffer Char Event Fun In_channel List Out_channel Printf String
