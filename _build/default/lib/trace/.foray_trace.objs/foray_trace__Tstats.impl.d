lib/trace/tstats.ml: Event Foray_util Hashtbl Iset List
