lib/trace/event.ml: Format List Printf String
