lib/trace/tracefile.mli: Event
