lib/trace/tstats.mli: Event Foray_util
