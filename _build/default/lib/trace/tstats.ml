open Foray_util

type site_info = {
  site : int;
  accesses : int;
  reads : int;
  writes : int;
  footprint : Iset.t;
  sys : bool;
}

type cell = {
  mutable accesses : int;
  mutable reads : int;
  mutable writes : int;
  mutable footprint : Iset.t;
  mutable sys : bool;
}

type t = (int, cell) Hashtbl.t

let create () : t = Hashtbl.create 256

let sink (t : t) : Event.sink = function
  | Event.Checkpoint _ -> ()
  | Event.Access { site; addr; write; sys; width } ->
      let cell =
        match Hashtbl.find_opt t site with
        | Some c -> c
        | None ->
            let c =
              { accesses = 0; reads = 0; writes = 0; footprint = Iset.empty; sys }
            in
            Hashtbl.add t site c;
            c
      in
      cell.accesses <- cell.accesses + 1;
      if write then cell.writes <- cell.writes + 1 else cell.reads <- cell.reads + 1;
      cell.footprint <- Iset.add_range addr (addr + width) cell.footprint;
      if sys then cell.sys <- true

let sites (t : t) =
  Hashtbl.fold
    (fun site (c : cell) acc ->
      {
        site;
        accesses = c.accesses;
        reads = c.reads;
        writes = c.writes;
        footprint = c.footprint;
        sys = c.sys;
      }
      :: acc)
    t []
  |> List.sort (fun a b -> compare a.site b.site)

let n_sites t = Hashtbl.length t

let total_accesses t =
  Hashtbl.fold (fun _ (c : cell) acc -> acc + c.accesses) t 0

let total_footprint t =
  Iset.cardinal
    (Hashtbl.fold (fun _ (c : cell) acc -> Iset.union acc c.footprint) t Iset.empty)

let group t ~classify =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (info : site_info) ->
      let label = classify info in
      let n, a, fp =
        match Hashtbl.find_opt tbl label with
        | Some x -> x
        | None -> (0, 0, Iset.empty)
      in
      Hashtbl.replace tbl label
        (n + 1, a + info.accesses, Iset.union fp info.footprint))
    (sites t);
  Hashtbl.fold (fun k (n, a, fp) acc -> (k, (n, a, Iset.cardinal fp)) :: acc) tbl []

let footprint_of t pred =
  let fp =
    List.fold_left
      (fun acc (info : site_info) ->
        if pred info then Foray_util.Iset.union acc info.footprint else acc)
      Foray_util.Iset.empty (sites t)
  in
  Foray_util.Iset.cardinal fp
