type ckind = Loop_enter | Body_enter | Body_exit | Loop_exit

type access = {
  site : int;
  addr : int;
  write : bool;
  sys : bool;
  width : int;
}

type event =
  | Checkpoint of { loop : int; kind : ckind }
  | Access of access

type sink = event -> unit

let null_sink : sink = fun _ -> ()
let tee a b : sink = fun e -> a e; b e

let collector () =
  let acc = ref [] in
  let sink e = acc := e :: !acc in
  (sink, fun () -> List.rev !acc)

let string_of_ckind = function
  | Loop_enter -> "loop_enter"
  | Body_enter -> "body_enter"
  | Body_exit -> "body_exit"
  | Loop_exit -> "loop_exit"

let ckind_of_string = function
  | "loop_enter" -> Loop_enter
  | "body_enter" -> Body_enter
  | "body_exit" -> Body_exit
  | "loop_exit" -> Loop_exit
  | s -> failwith ("Event.ckind_of_string: " ^ s)

let to_line = function
  | Checkpoint { loop; kind } ->
      Printf.sprintf "Checkpoint: %d %s" loop (string_of_ckind kind)
  | Access { site; addr; write; sys; width } ->
      Printf.sprintf "Instr: %x addr: %x %s %d%s" site addr
        (if write then "wr" else "rd")
        width
        (if sys then " sys" else "")

let of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "Checkpoint:"; loop; kind ] ->
      Checkpoint { loop = int_of_string loop; kind = ckind_of_string kind }
  | "Instr:" :: site :: "addr:" :: addr :: dir :: width :: rest ->
      let write =
        match dir with
        | "wr" -> true
        | "rd" -> false
        | _ -> failwith ("Event.of_line: bad direction " ^ dir)
      in
      let sys =
        match rest with
        | [] -> false
        | [ "sys" ] -> true
        | _ -> failwith ("Event.of_line: trailing junk in " ^ line)
      in
      Access
        {
          site = int_of_string ("0x" ^ site);
          addr = int_of_string ("0x" ^ addr);
          write;
          sys;
          width = int_of_string width;
        }
  | _ -> failwith ("Event.of_line: cannot parse " ^ line)

let to_string events = String.concat "\n" (List.map to_line events) ^ "\n"

let of_string s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map of_line

let equal a b = a = b
let pp fmt e = Format.pp_print_string fmt (to_line e)
