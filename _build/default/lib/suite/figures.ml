let fig1 =
  {|
// Figure 1 of the paper: excerpts from MiBench jpeg, made runnable.
int num_components = 3;
int last_bitpos[256];
int *last_bitpos_ptr;
int result[64];
int workspace = 7;

int main() {
  int ci;
  int coefi;
  last_bitpos_ptr = last_bitpos;
  for (ci = 0; ci < num_components; ci++) {
    for (coefi = 0; coefi < 64; coefi++) {
      *last_bitpos_ptr++ = -1;
    }
  }
  int currow = 0;
  int numrows = 16;
  int rowsperchunk = 16;
  while (currow < numrows) {
    int i;
    for (i = rowsperchunk; i > 0; i--) {
      result[currow++] = workspace;
    }
  }
  return 0;
}
|}

let fig4a =
  {|
// Figure 4(a) of the paper.
char q[10000];
char *ptr;

int main() {
  int i;
  int t1 = 98;
  ptr = q;
  while (t1 < 100) {
    t1++;
    ptr += 100;
    for (i = 40; i > 37; i--) {
      *ptr++ = i * i % 256;
    }
  }
  return 0;
}
|}

let fig7a =
  {|
// Figure 7, first case: foo's local array lives at a different stack
// address depending on the call path, so no single affine function
// covers all calls; the inner loops are still (partially) affine.
int tmp;

int foo() {
  int ret = 0;
  int A[100];
  int i;
  int j;
  for (i = 0; i < 10; i++) {
    for (j = 0; j < 10; j++) {
      A[j + 10 * i] = i + j;
      ret += A[j + 10 * i];
    }
  }
  return ret;
}

int deeper(int d) {
  // extra frame changes foo's stack placement
  int pad[16];
  pad[d % 16] = d;
  return foo();
}

int main() {
  int x;
  int y;
  for (x = 0; x < 10; x++) {
    for (y = 0; y < 10; y++) {
      if ((x + y) % 2 == 0) {
        tmp += foo();
      } else {
        tmp += deeper(y);
      }
    }
  }
  return 0;
}
|}

let fig7b =
  {|
// Figure 7, second case: data-dependent offset parameter.
int A[2000];
int lines[10];
int tmp;

int foo(int offset) {
  int ret = 0;
  int i;
  int j;
  for (i = 0; i < 10; i++) {
    for (j = 0; j < 10; j++) {
      ret += A[j + 10 * i + offset];
    }
  }
  return ret;
}

int main() {
  int x;
  for (x = 0; x < 10; x++) {
    lines[x] = mc_rand(1000);
  }
  for (x = 0; x < 10; x++) {
    tmp += foo(lines[x]);
  }
  return 0;
}
|}

let fig9 =
  {|
// Figure 9: one function, two call sites, two access patterns.
int A[1000];
int tmp;

int foo(int offset) {
  int ret = 0;
  int i;
  for (i = 0; i < 10; i++) {
    ret += A[i + offset];
  }
  return ret;
}

int main() {
  int x;
  int y;
  for (x = 0; x < 10; x++) {
    tmp += foo(10 * x);
  }
  for (y = 0; y < 20; y++) {
    tmp += foo(2 * y);
  }
  return 0;
}
|}

let all =
  [ ("fig1", fig1); ("fig4a", fig4a); ("fig7a", fig7a); ("fig7b", fig7b);
    ("fig9", fig9) ]
