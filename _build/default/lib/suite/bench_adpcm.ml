(* Synthetic analogue of the MiBench adpcm encoder: the classic IMA ADPCM
   step coder. Exactly two loops — one [for] (table setup) and one [while]
   (the sample walk), matching Table I's adpcm row (50%/50%) — and the
   model captures essentially one pointer-walk reference that is not in
   FORAY form in the source (Table II: 100%). *)

let source =
  {|
// ---- adpcm_s: synthetic IMA-ADPCM-like coder ----------------------------
int stepsize[89];
int inbuf[2048];
char outbuf[2048];
int predicted;
int index;

int main() {
  int i;
  int *inp;
  char *outp;
  int n;
  int diff;
  int delta;
  int step;

  // step table: affine init through a pointer (the single for loop);
  // the write is not in FORAY form in the source
  int *sp;
  sp = stepsize;
  for (i = 0; i < 89; i++) {
    *sp++ = 7 + i * i / 4 + i * 3;
  }

  // deterministic input is folded into the same loop, as the original
  // does its setup in one pass
  i = 0;
  predicted = 0;
  index = 0;
  inp = inbuf;
  outp = outbuf;
  n = 2048;
  while (n > 0) {
    // synthesize the next sample in place, then encode it
    *inp = ((n * 53) % 4096) - 2048;
    diff = *inp - predicted;
    step = stepsize[index];
    delta = 0;
    if (diff < 0) {
      delta = 8;
      diff = -diff;
    }
    if (diff >= step) {
      delta += 4;
      diff -= step;
    }
    if (diff >= step / 2) {
      delta += 2;
      diff -= step / 2;
    }
    if (diff >= step / 4) {
      delta += 1;
    }
    predicted += (step * (delta & 7)) / 4 - (delta & 8) * step / 8;
    index += (delta & 7) - 2;
    if (index < 0) {
      index = 0;
    }
    if (index > 88) {
      index = 88;
    }
    *outp++ = delta;
    inp++;
    n--;
  }

  print_int(predicted);
  print_int(index);
  return 0;
}
|}
