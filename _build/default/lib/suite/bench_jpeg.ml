(* Synthetic analogue of MiBench jpeg (cjpeg): block-based image
   compression. Mirrors the access patterns the paper highlights in
   Figure 1: pointer-walk initialization, while-driven row chunking, DCT
   blocks addressed through data-dependent base pointers, zigzag
   (table-indexed, non-affine) scans and Huffman statistics. Loop-kind mix
   tracks Table I (jpeg: 65% for / 34% while / 1% do). *)

let source =
  {|
// ---- jpeg_s: synthetic JPEG-like encoder -------------------------------
// image: 3 components of 48x48 pixels; 8x8 DCT blocks; integer DCT.

int WIDTH = 48;
int HEIGHT = 48;

char input_rgb[6912];      // 48*48*3 interleaved
char gray[2304];           // 48*48 component plane
int  coef[2304];           // coefficient plane
int  qtab[64];             // quantization table
int  zz[64];               // zigzag order
int  huff_count[512];      // histogram of symbol stats
int  huff_lut[2048];       // "system-like" big lookup table
int  last_bitpos[192];     // as in Figure 1
int  bitbuf[4096];         // emitted bit positions
int  result_rows[64];      // row workspace table, as in Figure 1
int  out2[1024];           // downsampled bit positions
int  workspace = 7;

char *rowptr;
int  *last_bitpos_ptr;
int  nbits;

// clear the coefficient plane: affine, statically analyzable
int clear_coef() {
  int i;
  for (i = 0; i < 2304; i++) {
    coef[i] = 0;
  }
  return 0;
}

// decimate the bit buffer: affine reads and writes, statically analyzable
int downsample_bits() {
  int i;
  for (i = 0; i < 1024; i++) {
    out2[i] = bitbuf[2 * i];
  }
  return 0;
}

// age the symbol statistics: affine update, statically analyzable
int age_stats() {
  int i;
  for (i = 0; i < 512; i++) {
    huff_count[i] = huff_count[i] / 2;
  }
  return 0;
}

// bias the coefficient plane: affine read-modify-write, static
int coef_bias() {
  int i;
  for (i = 0; i < 2304; i++) {
    coef[i] = coef[i] + qtab[i % 64] / 16;
  }
  return 0;
}

// fold the two bitplane halves: affine reads/writes, static
int fold_bitbuf() {
  int i;
  for (i = 0; i < 2048; i++) {
    bitbuf[i] = bitbuf[i] + bitbuf[i + 2048] / 2;
  }
  return 0;
}

// quantization table: affine init, statically analyzable
int init_qtab() {
  int i;
  for (i = 0; i < 64; i++) {
    qtab[i] = 16 + i / 4;
  }
  return 0;
}

// zigzag order: irregular values, affine *writes*
int init_zigzag() {
  int i;
  int v;
  v = 0;
  for (i = 0; i < 64; i++) {
    v = (v + 17) % 64;
    zz[i] = v;
  }
  return 0;
}

// big LUT init through a pointer walk (not in FORAY form statically)
int init_lut() {
  int *p;
  int k;
  p = huff_lut;
  k = 0;
  while (k < 2048) {
    *p++ = (k * 7) % 256;
    k++;
  }
  return 0;
}

// Figure-1 style: nested for loops walking a pointer
int reset_bitpos() {
  int ci;
  int coefi;
  last_bitpos_ptr = last_bitpos;
  for (ci = 0; ci < 3; ci++) {
    for (coefi = 0; coefi < 64; coefi++) {
      *last_bitpos_ptr++ = -1;
    }
  }
  return 0;
}

// RGB -> gray for one component plane: pointer walk over interleaved
// input, stride 3; not statically analyzable
int color_convert(int comp) {
  char *src;
  char *dst;
  int n;
  src = input_rgb + comp;
  dst = gray;
  n = WIDTH * HEIGHT;
  while (n > 0) {
    *dst++ = *src;
    src += 3;
    n--;
  }
  return 0;
}

// forward DCT on one 8x8 block given a data-dependent base offset;
// the block offset makes these refs partially affine only
int fwd_dct_block(int base) {
  int i;
  int j;
  int acc;
  for (i = 0; i < 8; i++) {
    acc = 0;
    for (j = 0; j < 8; j++) {
      acc += gray[base + 48 * i + j] * (8 - j);
    }
    for (j = 0; j < 8; j++) {
      coef[base + 48 * i + j] = acc - 4 * gray[base + 48 * i + j];
    }
  }
  return 0;
}

// quantize one block via pointer walk with row stride
int quantize_block(int base) {
  int i;
  int j;
  int *c;
  for (i = 0; i < 8; i++) {
    c = coef + base + 48 * i;
    j = 0;
    while (j < 8) {
      *c = *c / qtab[8 * i + j];
      c++;
      j++;
    }
  }
  return 0;
}

// zigzag scan: data-dependent gather (never affine), plus Huffman stats
int entropy_stats(int base) {
  int k;
  int sym;
  for (k = 0; k < 64; k++) {
    sym = coef[base + zz[k]] & 255;
    huff_count[(sym + k) & 511] += 1;
  }
  return 0;
}

// bit emission: while loop writing positions, Figure-1 flavor
int emit_bits(int blockno) {
  int pos;
  int stop;
  pos = blockno * 48;
  stop = pos + 40;
  while (pos < stop) {
    bitbuf[pos & 4095] = huff_lut[(pos * 13) & 2047];
    pos++;
  }
  nbits += 40;
  return 0;
}

// row chunk administration, straight from Figure 1
int prepare_rows() {
  int currow;
  int numrows;
  int rowsperchunk;
  currow = 0;
  numrows = 64;
  rowsperchunk = 16;
  while (currow < numrows) {
    int i;
    for (i = rowsperchunk; i > 0; i--) {
      result_rows[currow++] = workspace;
    }
  }
  return 0;
}

// sharpen one image row selected data-dependently: the row base makes
// these references partially affine (Figure 7 situation)
int sharpen_row(int row) {
  int x;
  int v;
  for (x = 1; x < 47; x++) {
    v = 2 * gray[48 * row + x] - gray[48 * row + x - 1];
    gray[48 * row + x] = (v + gray[48 * row + x + 1]) / 2;
  }
  return 0;
}

// restart-marker scan over the bit buffer: while loop, dynamic-only
int marker_scan() {
  int *b;
  int n;
  int found;
  b = bitbuf;
  n = 2048;
  found = 0;
  while (n > 0) {
    if ((*b & 255) == 217) {
      found++;
    }
    b++;
    n--;
  }
  return found;
}

// DC prediction across blocks: affine pass, static
int dc_predict() {
  int b;
  for (b = 1; b < 36; b++) {
    coef[64 * b % 2304] = coef[64 * b % 2304] - coef[64 * (b - 1) % 2304];
  }
  return 0;
}

// checksum with a do loop (jpeg has a token share of do loops)
int checksum() {
  int s;
  int i;
  s = 0;
  i = 0;
  do {
    s = (s + coef[i * 37 % 2304]) & 65535;
    i++;
  } while (i < 64);
  return s;
}

int main() {
  int comp;
  int by;
  int bx;
  int blockno;
  int frame;

  // deterministic pseudo-input
  int n;
  char *p;
  p = input_rgb;
  n = 0;
  while (n < 6912) {
    *p++ = (n * 31 + 7) % 256;
    n++;
  }

  init_qtab();
  init_zigzag();
  init_lut();
  prepare_rows();

  for (frame = 0; frame < 3; frame++) {
    clear_coef();
    reset_bitpos();
    for (comp = 0; comp < 3; comp++) {
      color_convert(comp);
      blockno = 0;
      for (by = 0; by < 6; by++) {
        for (bx = 0; bx < 6; bx++) {
          int base;
          base = 384 * by + 8 * bx;
          fwd_dct_block(base);
          quantize_block(base);
          entropy_stats(base);
          emit_bits(blockno);
          blockno++;
        }
      }
    }
    coef_bias();
    fold_bitbuf();
    // sharpen an input-selected row before the next frame (Figure 7:
    // one call per iteration, data-dependent base -> partial affine)
    sharpen_row(mc_rand(46) + 1);
    marker_scan();
    dc_predict();
    downsample_bits();
    age_stats();
    // stripe copy through the system library
    memcpy(gray, input_rgb, 2304);
  }

  print_int(checksum());
  print_int(nbits);
  return 0;
}
|}
