(* Synthetic analogue of MiBench susan (smallest-univalue-segment image
   recognition): brightness LUT, 2D smoothing over row pointers and a
   USAN corner response. Few loops with very high trip counts, so the
   FORAY-captured references dominate dynamic accesses (susan shows 66% of
   accesses in the model in Table III). Mix: 79% for / 21% while. *)

let source =
  {|
// ---- susan_s: synthetic SUSAN-like image recognizer ---------------------
// 64x64 8-bit image, 3x3 smoothing, USAN response with brightness LUT.

char img[4096];            // input image
int  blockvar[8][8];       // per-block variance map (2-D array)
char smooth[4096];         // smoothed image
int  response[4096];       // corner response
char lut[516];             // brightness similarity LUT
int  corners;
int  hist[64];

// similarity LUT: affine init, statically analyzable
int setup_lut() {
  int k;
  for (k = 0; k < 516; k++) {
    lut[k] = 100 / (1 + abs(k - 258) / 8);
  }
  return 0;
}

// 3x3 box smoothing; row base pointers make the inner refs dynamic-only
int smoothing() {
  int y;
  int x;
  int dy;
  int dx;
  int sum;
  char *row;
  char *out;
  for (y = 1; y < 63; y++) {
    out = smooth + 64 * y + 1;
    for (x = 1; x < 63; x++) {
      sum = 0;
      for (dy = 0; dy < 3; dy++) {
        row = img + 64 * (y + dy - 1) + x - 1;
        for (dx = 0; dx < 3; dx++) {
          sum += *row++;
        }
      }
      *out++ = sum / 9;
    }
  }
  return 0;
}

// USAN response: affine over the image, LUT gathers are data dependent
int usan() {
  int y;
  int x;
  int c;
  int n;
  int *rp;
  for (y = 1; y < 63; y++) {
    rp = response + 64 * y + 1;
    for (x = 1; x < 63; x++) {
      c = smooth[64 * y + x];
      n = 0;
      n += lut[258 + smooth[64 * y + x - 1] - c];
      n += lut[258 + smooth[64 * y + x + 1] - c];
      n += lut[258 + smooth[64 * (y - 1) + x] - c];
      n += lut[258 + smooth[64 * (y + 1) + x] - c];
      *rp++ = n;
    }
  }
  return 0;
}

// non-max suppression scan through a pointer walk
int find_corners() {
  int *r;
  int n;
  int found;
  r = response;
  n = 4096;
  found = 0;
  while (n > 0) {
    if (*r > 250) {
      found++;
    }
    r++;
    n--;
  }
  return found;
}

// brightness histogram: pointer walk with data-dependent increment target
int histogram() {
  char *p;
  int n;
  p = smooth;
  n = 4096;
  while (n > 0) {
    hist[(*p & 255) / 4] += 1;
    p++;
    n--;
  }
  return 0;
}

// per-block brightness variance over a 2-D map: affine, static
int block_variance() {
  int by;
  int bx;
  int y;
  int x;
  int s;
  int v;
  for (by = 0; by < 8; by++) {
    for (bx = 0; bx < 8; bx++) {
      s = 0;
      for (y = 0; y < 8; y++) {
        char *rp;
        rp = smooth + 64 * (8 * by + y) + 8 * bx;
        for (x = 0; x < 8; x++) {
          v = *rp++;
          s += v * v / 64;
        }
      }
      blockvar[by][bx] = s / 64;
    }
  }
  return 0;
}

// directional edge thinning: affine double loop, static
int edge_thin() {
  int y;
  int x;
  for (y = 1; y < 63; y++) {
    for (x = 1; x < 63; x++) {
      if (response[64 * y + x] < response[64 * y + x - 1]) {
        response[64 * y + x] = 0;
      }
    }
  }
  return 0;
}

int main() {
  int i;
  int pass;

  for (i = 0; i < 4096; i++) {
    img[i] = (i * 29 + (i / 64) * 3) % 256;
  }

  setup_lut();
  for (pass = 0; pass < 2; pass++) {
    smoothing();
    usan();
    block_variance();
    edge_thin();
    corners = find_corners();
    histogram();
  }

  print_int(corners);
  print_int(hist[2]);
  print_int(blockvar[3][4]);
  return 0;
}
|}
