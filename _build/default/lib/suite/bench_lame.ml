(* Synthetic analogue of MiBench lame (MP3 encoder): fixed-point subband
   analysis, windowed MDCT, psychoacoustic masking with data-dependent
   band offsets, and an iterative quantization (rate) loop. lame is the
   most for-heavy benchmark of Table I (83% for / 8% while / 9% do) and
   contributes the largest reference population to Table II. *)

let source =
  {|
// ---- lame_s: synthetic MP3-like encoder --------------------------------
// 4 granules of 576 PCM samples; 32 subbands x 18 samples; fixed point.

int pcm[2304];            // input ring (4 granules)
int subband[576];         // 32x18 subband samples
int window_tab[512];      // analysis window
int mdct_out[576];
int mdct_prev[576];
int bark_off[32];         // data-dependent band offsets
int energy[64];
int mask[64];
int quant[576];
int bits_tab[1024];       // "system-like" LUT
int scalefac[32];
int granule_bits;
int total_bits;
int reservoir[64];        // bit reservoir accounting
int res_level;
int side[576];            // mid/side stereo workspace
int mid[576];
int huff_region[4];       // region boundaries for table selection
int frame_out[1024];      // packed frame bits
int out_ptr;
int sfb_width[24];        // scalefactor band widths
int xr_abs[576];

// window table: affine, statically analyzable
int init_window() {
  int i;
  for (i = 0; i < 512; i++) {
    window_tab[i] = 128 - abs(i - 256) / 4;
  }
  return 0;
}

// bit-count LUT via pointer walk (dynamic-only)
int init_bits_tab() {
  int *p;
  int k;
  p = bits_tab;
  k = 0;
  while (k < 1024) {
    *p++ = 1 + (k * 3) % 15;
    k++;
  }
  return 0;
}

// data-dependent bark band offsets
int init_bark() {
  int b;
  for (b = 0; b < 32; b++) {
    bark_off[b] = mc_rand(512);
  }
  return 0;
}

// polyphase subband analysis for one granule at a data-dependent base:
// refs inside are partially affine (base changes per call)
int subband_analysis(int base) {
  int sb;
  int k;
  int acc;
  for (sb = 0; sb < 32; sb++) {
    acc = 0;
    for (k = 0; k < 16; k++) {
      acc += pcm[base + 16 * sb + k] * window_tab[16 * sb % 512 + k];
    }
    for (k = 0; k < 18; k++) {
      subband[18 * sb + k] = (acc + pcm[base + 18 * sb % 560 + k]) / 2;
    }
  }
  return 0;
}

// windowed MDCT: fully affine over its own loops, statically analyzable
int mdct() {
  int sb;
  int k;
  int s;
  for (sb = 0; sb < 32; sb++) {
    for (k = 0; k < 18; k++) {
      s = subband[18 * sb + k] * window_tab[8 * k] / 64
        + mdct_prev[18 * sb + k] * window_tab[8 * k + 4] / 64;
      mdct_out[18 * sb + k] = s;
      mdct_prev[18 * sb + k] = subband[18 * sb + k];
    }
  }
  return 0;
}

// psychoacoustic energy per band: gathers via bark_off (data dependent)
int psy_model() {
  int b;
  int k;
  int e;
  for (b = 0; b < 32; b++) {
    e = 0;
    for (k = 0; k < 8; k++) {
      e += abs(mdct_out[(bark_off[b] + k) % 576]);
    }
    energy[b] = e;
    energy[b + 32] = e / 2;
  }
  // spreading: do-loops over neighbours (lame's do share)
  b = 1;
  do {
    mask[b] = mc_max(energy[b - 1] / 4, energy[b] / 2);
    b++;
  } while (b < 63);
  b = 62;
  do {
    mask[b] = mc_max(mask[b], mask[b + 1] / 2);
    b--;
  } while (b > 0);
  return 0;
}

// scalefactor estimation: affine pass over bands
int scalefactors() {
  int sb;
  for (sb = 0; sb < 32; sb++) {
    scalefac[sb] = 1 + mask[sb * 2 % 63] / 256;
  }
  return 0;
}

// quantize with a given step; returns bits used (affine refs over quant,
// data-dependent LUT lookups for bit counting)
int quantize_granule(int step) {
  int i;
  int q;
  int bits;
  bits = 0;
  for (i = 0; i < 576; i++) {
    q = mdct_out[i] / (step + scalefac[i / 18]);
    quant[i] = q;
    bits += bits_tab[abs(q) & 1023];
  }
  return bits;
}

// iterative rate loop: do-while until the granule fits
int rate_loop() {
  int step;
  int bits;
  step = 1;
  do {
    bits = quantize_granule(step);
    step = step * 2;
  } while (bits > 3000 && step < 64);
  granule_bits = bits;
  return bits;
}

// bitstream accounting via pointer scan of quant
int count_zero_runs() {
  int *p;
  int n;
  int runs;
  p = quant;
  n = 576;
  runs = 0;
  while (n > 0) {
    if (*p == 0) {
      runs++;
    }
    p++;
    n--;
  }
  return runs;
}

// scalefactor band widths: affine init, static
int init_sfb() {
  int i;
  for (i = 0; i < 24; i++) {
    sfb_width[i] = 4 + i * 2 - (i % 3);
  }
  return 0;
}

// bit reservoir bookkeeping: affine over a small table, static
int init_reservoir() {
  int i;
  for (i = 0; i < 64; i++) {
    reservoir[i] = 0;
  }
  res_level = 0;
  return 0;
}

// mid/side stereo: two affine passes, static
int stereo_ms() {
  int i;
  for (i = 0; i < 576; i++) {
    mid[i] = (mdct_out[i] + subband[i]) / 2;
  }
  for (i = 0; i < 576; i++) {
    side[i] = (mdct_out[i] - subband[i]) / 2;
  }
  return 0;
}

// absolute spectrum for the rate loop: affine, static
int abs_spectrum() {
  int i;
  for (i = 0; i < 576; i++) {
    xr_abs[i] = abs(mdct_out[i]);
  }
  return 0;
}

// Huffman region split: for scan with data-dependent boundaries; the
// writes to huff_region are small-array and filtered, the scan of
// xr_abs is affine
int region_split() {
  int i;
  int acc;
  int region;
  acc = 0;
  region = 0;
  for (i = 0; i < 576; i++) {
    acc += xr_abs[i];
    if (acc > 4000 && region < 3) {
      huff_region[region] = i;
      region++;
      acc = 0;
    }
  }
  return region;
}

// Huffman table choice per region: switch dispatch, LUT gathers
int table_for_region(int r) {
  int t;
  switch (r & 3) {
  case 0:
    t = bits_tab[(huff_region[0] * 5) & 1023];
    break;
  case 1:
    t = bits_tab[(huff_region[1] * 7) & 1023];
    break;
  case 2:
    t = bits_tab[(huff_region[2] * 11) & 1023];
    break;
  default:
    t = 1;
    break;
  }
  return t;
}

// frame packing through an output pointer (dynamic-only refs)
int pack_granule(int gno) {
  int i;
  int *op;
  op = frame_out + gno * 200;
  for (i = 0; i < 96; i++) {
    *op++ = quant[6 * i] & 255;
  }
  for (i = 0; i < 32; i++) {
    *op++ = scalefac[i];
  }
  out_ptr += 128;
  return 0;
}

// reservoir update after each granule: small do loop (lame's do share)
int reservoir_update(int bits) {
  int i;
  i = 0;
  do {
    reservoir[(res_level + i) & 63] = bits & 255;
    i++;
  } while (i < 4);
  res_level = (res_level + bits / 100) & 63;
  return 0;
}

int main() {
  int g;
  int i;
  int runs;

  // deterministic pseudo-PCM
  for (i = 0; i < 2304; i++) {
    pcm[i] = (i * 97 + 13) % 2048 - 1024;
  }

  init_window();
  init_bits_tab();
  init_bark();
  init_sfb();
  init_reservoir();

  runs = 0;
  for (g = 0; g < 4; g++) {
    subband_analysis(576 * g);
    mdct();
    stereo_ms();
    psy_model();
    scalefactors();
    abs_spectrum();
    region_split();
    total_bits += table_for_region(g);
    rate_loop();
    pack_granule(g);
    reservoir_update(granule_bits);
    runs += count_zero_runs();
    total_bits += granule_bits;
    // frame header copy through the system library
    memcpy(mdct_prev, mdct_out, 256);
  }

  print_int(total_bits);
  print_int(runs);
  print_int(out_ptr);
  return 0;
}
|}
