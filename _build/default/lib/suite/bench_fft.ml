(* Synthetic analogue of MiBench fft: fixed-point Fourier transform over
   256 points. Written the way the original is: pure [for] loops and
   direct array indexing, so every model reference is already in FORAY
   form (Table II reports 0% for fft). Twiddle gathers (iterator products)
   and bit-reversal permutations are data dependent and fall out of the
   model at Step 4, and staging copies go through the system library —
   matching fft's tiny model share of accesses in Table III. *)

let source =
  {|
// ---- fft_s: synthetic fixed-point Fourier transform ---------------------
int N = 256;
int xr[256];
int xi[256];
int yr[256];
int yi[256];
int costab[256];
int sintab[256];
int rev[256];
int spectrum[128];
int band_ar;
int band_ai;

// quarter-wave symmetric tables, statically analyzable affine writes
int init_tables() {
  int i;
  int v;
  for (i = 0; i < 64; i++) {
    v = 4096 - i * 64 + i * i / 8;
    costab[i] = v;
    costab[127 - i] = -v;
    costab[128 + i] = -v;
    costab[255 - i] = v;
    sintab[i + 64] = v;
    sintab[191 - i] = v;
    sintab[192 + i] = -v;
    sintab[63 - i] = -v;
  }
  return 0;
}

// bit reversal table: affine writes, value computed in registers
int init_rev() {
  int i;
  int b;
  int r;
  for (i = 0; i < 256; i++) {
    r = 0;
    for (b = 0; b < 8; b++) {
      r = r * 2 + (i >> b & 1);
    }
    rev[i] = r;
  }
  return 0;
}

// permutation: rev[i] read is affine; x[rev[i]] gathers are data
// dependent and get purged from the model
int bit_reverse() {
  int i;
  for (i = 0; i < 256; i++) {
    yr[i] = xr[rev[i]];
    yi[i] = xi[rev[i]];
  }
  return 0;
}

// one DFT band accumulation: sequential refs are affine; the twiddle
// index advances by k per step (iterator product, purged from the model)
int dft_band(int k) {
  int n;
  int ar;
  int ai;
  int ph;
  ar = 0;
  ai = 0;
  ph = 0;
  for (n = 0; n < 256; n++) {
    ar += yr[n] * costab[ph] / 4096 - yi[n] * sintab[ph] / 4096;
    ai += yr[n] * sintab[ph] / 4096 + yi[n] * costab[ph] / 4096;
    ph = (ph + k) & 255;
  }
  band_ar = ar;
  band_ai = ai;
  return 0;
}

int power_spectrum() {
  int k;
  for (k = 0; k < 128; k++) {
    spectrum[k] = (xr[k] * xr[k] + xi[k] * xi[k]) / 4096;
  }
  return 0;
}

// pre-transform windowing: affine, static
int apply_window() {
  int i;
  for (i = 0; i < 256; i++) {
    xr[i] = xr[i] * (4096 - abs(costab[i]) / 2) / 4096;
  }
  return 0;
}

// log-magnitude approximation: nested for loops over bit positions,
// affine and static (fft stays a pure-for benchmark)
int magnitude_db() {
  int k;
  int b;
  int d;
  for (k = 0; k < 128; k++) {
    d = 0;
    for (b = 0; b < 20; b++) {
      if (spectrum[k] >> b >= 1) {
        d = 3 * b;
      }
    }
    spectrum[k] = d;
  }
  return 0;
}

int main() {
  int i;
  int k;
  int s;

  for (i = 0; i < 256; i++) {
    xr[i] = (i % 32) * 128 - 2048;
    xi[i] = 0;
  }

  init_tables();
  apply_window();
  init_rev();
  bit_reverse();

  for (k = 0; k < 128; k++) {
    dft_band(k);
    xr[k] = band_ar;
    xi[k] = band_ai;
  }
  power_spectrum();
  magnitude_db();

  // staging copies through the system library (fft's dominant accesses
  // in the paper come from library code)
  memcpy(yr, xr, 1024);
  memcpy(yi, xi, 1024);
  memset(xi, 0, 1024);

  s = 0;
  for (k = 0; k < 128; k++) {
    s = (s + spectrum[k]) & 1048575;
  }
  print_int(s);
  return 0;
}
|}
