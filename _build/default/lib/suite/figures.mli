(** The paper's running examples as MiniC sources.

    Each value is a complete program the pipeline can run; the
    corresponding benches reproduce Figures 2, 4, 7 and 9. *)

(** Figure 1: the two MiBench jpeg excerpts (pointer-walk double [for] and
    a [while]/[for] chunked row loop), wrapped into a runnable program.
    FORAY-GEN turns these into the two loop nests of Figure 2. *)
val fig1 : string

(** Figure 4(a): the [while]/[for] pointer walk whose annotated form,
    trace and FORAY model the paper shows in Figures 4(b)-(d). *)
val fig4a : string

(** Figure 7, first case: a function with a local array, reached through
    two different call depths, so the array's base address changes between
    calls — only a partial affine expression exists. *)
val fig7a : string

(** Figure 7, second case: a global array indexed with a data-dependent
    [offset] parameter — partial affine over the function's own loops. *)
val fig7b : string

(** Figure 9: one function called from two loops with different access
    strides; FORAY-GEN materializes its loop twice and the hint engine
    suggests duplicating the function. *)
val fig9 : string

(** All figures with names, for the CLI. *)
val all : (string * string) list
