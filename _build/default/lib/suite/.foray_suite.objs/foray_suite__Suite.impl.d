lib/suite/suite.ml: Bench_adpcm Bench_fft Bench_gsm Bench_jpeg Bench_lame Bench_susan List Minic String
