lib/suite/generator.ml: Buffer Foray_util List Printf
