lib/suite/bench_jpeg.ml:
