lib/suite/bench_gsm.ml:
