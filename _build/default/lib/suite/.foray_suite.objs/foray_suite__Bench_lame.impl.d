lib/suite/bench_lame.ml:
