lib/suite/bench_adpcm.ml:
