lib/suite/bench_susan.ml:
