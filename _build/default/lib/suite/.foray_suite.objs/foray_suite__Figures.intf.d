lib/suite/figures.mli:
