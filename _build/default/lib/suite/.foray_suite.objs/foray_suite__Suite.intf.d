lib/suite/suite.mli: Minic
