lib/suite/generator.mli:
