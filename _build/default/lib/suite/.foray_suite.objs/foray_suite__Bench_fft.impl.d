lib/suite/bench_fft.ml:
