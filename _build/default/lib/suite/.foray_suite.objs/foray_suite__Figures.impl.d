lib/suite/figures.ml:
