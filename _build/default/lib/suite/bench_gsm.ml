(* Synthetic analogue of the MiBench gsm encoder (GSM 06.10 full rate):
   per-frame preprocessing, autocorrelation, reflection-coefficient
   quantization through pointer walks, long-term-prediction lag search and
   RPE grid selection with data-dependent offsets. gsm shows one of the
   highest shares of pointer-expressed references in Table II (74% of its
   model references are not in FORAY form in the source). *)

let source =
  {|
// ---- gsm_s: synthetic GSM-like speech encoder ---------------------------
// 8 frames x 160 samples, fixed point.

int pcm[1280];           // input speech
int frame[160];          // current frame, preprocessed
int prev_frame[160];
int acf[9];              // autocorrelation
int refl[8];             // reflection coefficients
int larc[8];             // coded LAR values
int lar_tab[64];         // quantizer table
int d_signal[200];       // short-term residual + history
int ltp_gain;
int ltp_lag;
int rpe_bits;
int out_bits[512];
int out_count;
int weighted[160];       // weighting filter output
int xmc[52];             // quantized RPE pulses
int dequant[160];        // decoder feedback path

// quantizer table: affine, static
int init_lar_tab() {
  int i;
  for (i = 0; i < 64; i++) {
    lar_tab[i] = -2048 + i * 64;
  }
  return 0;
}

// preprocessing: offset compensation via pointer walk (dynamic-only)
int preprocess(int base) {
  int *src;
  int *dst;
  int n;
  int z;
  src = pcm + base;
  dst = frame;
  z = 0;
  n = 160;
  while (n > 0) {
    z = (*src + z * 3 / 4);
    *dst++ = z / 2;
    src++;
    n--;
  }
  return 0;
}

// autocorrelation: like the real gsm code, walks sample pointers
int autocorrelation() {
  int k;
  int i;
  int acc;
  int *sp;
  for (k = 0; k < 9; k++) {
    acc = 0;
    sp = frame + k;
    for (i = k; i < 160; i++) {
      acc += *sp * *(sp - k) / 1024;
      sp++;
    }
    acf[k] = acc;
  }
  return 0;
}

// Schur recursion (simplified): affine over small arrays, static
int reflection() {
  int i;
  for (i = 0; i < 8; i++) {
    if (acf[0] + i != 0) {
      refl[i] = acf[i + 1] * 256 / (acf[0] + i + 1);
    } else {
      refl[i] = 0;
    }
  }
  return 0;
}

// LAR coding: table search through a pointer (dynamic-only)
int code_lars() {
  int i;
  int *t;
  int v;
  int idx;
  for (i = 0; i < 8; i++) {
    v = refl[i];
    t = lar_tab;
    idx = 0;
    while (idx < 63 && *t < v) {
      t++;
      idx++;
    }
    larc[i] = idx;
  }
  return 0;
}

// short-term filtering into the residual buffer: pointer walk with
// history offset (dynamic-only)
int short_term_filter() {
  int *d;
  int i;
  d = d_signal + 40;
  for (i = 0; i < 160; i++) {
    *d++ = frame[i] - refl[i & 7] * frame[(i + 1) & 159] / 1024;
  }
  return 0;
}

// LTP: search best lag 40..119; cross-correlation refs affine in (k,lag)
int ltp_search() {
  int lag;
  int k;
  int acc;
  int best;
  int bestlag;
  best = -1;
  bestlag = 40;
  for (lag = 40; lag < 120; lag++) {
    acc = 0;
    for (k = 0; k < 40; k++) {
      acc += d_signal[40 + k] * d_signal[40 + k - lag / 4] / 256;
    }
    if (acc > best) {
      best = acc;
      bestlag = lag;
    }
  }
  ltp_lag = bestlag;
  ltp_gain = best / 64;
  return 0;
}

// RPE: pick the best of 4 decimation grids; grid offset is data
// dependent, so the gathered refs are only partially affine
int rpe_grid(int off) {
  int i;
  int e;
  e = 0;
  for (i = 0; i < 13; i++) {
    e += abs(d_signal[40 + 4 * i + off]);
  }
  return e;
}

int rpe_select() {
  int g;
  int e;
  int best;
  int bestg;
  best = -1;
  bestg = 0;
  for (g = 0; g < 4; g++) {
    e = rpe_grid(g);
    if (e > best) {
      best = e;
      bestg = g;
    }
  }
  rpe_bits = bestg;
  return 0;
}

// pack results through an output pointer (dynamic-only refs)
int pack_frame(int fno) {
  int i;
  int *ob;
  ob = out_bits + fno * 16;
  for (i = 0; i < 8; i++) {
    *ob++ = larc[i];
  }
  *ob++ = ltp_lag;
  *ob++ = ltp_gain;
  *ob = rpe_bits;
  out_count += 11;
  return 0;
}

// impulse-response weighting: affine FIR over the residual, static
int weighting_filter() {
  int i;
  for (i = 0; i < 152; i++) {
    weighted[i] =
      (d_signal[40 + i] * 8 + d_signal[41 + i] * 4 + d_signal[42 + i] * 2) / 16;
  }
  return 0;
}

// RPE pulse quantization: switch-coded levels, pointer output
int rpe_quantize(int off) {
  int i;
  int v;
  int *xp;
  xp = xmc;
  for (i = 0; i < 13; i++) {
    v = weighted[4 * i + off] / 512;
    switch (v & 3) {
    case 0:
      *xp = 0;
      break;
    case 1:
    case 2:
      *xp = v;
      break;
    default:
      *xp = 3;
      break;
    }
    xp++;
  }
  return 0;
}

// decoder feedback: reconstruct the residual (affine, static)
int feedback() {
  int i;
  for (i = 0; i < 52; i++) {
    dequant[3 * i % 160] = xmc[i % 52] * 512;
  }
  return 0;
}

int main() {
  int i;
  int fno;
  int s;

  int *pp;
  pp = pcm;
  for (i = 0; i < 1280; i++) {
    *pp++ = ((i * 37) % 512) - 256 + (i % 7) * 8;
  }

  init_lar_tab();
  for (fno = 0; fno < 8; fno++) {
    preprocess(fno * 160);
    autocorrelation();
    reflection();
    code_lars();
    short_term_filter();
    ltp_search();
    weighting_filter();
    rpe_select();
    rpe_quantize(rpe_bits);
    feedback();
    pack_frame(fno);
    // frame history maintenance through the system library
    memcpy(prev_frame, frame, 640);
  }

  s = 0;
  for (i = 0; i < 128; i++) {
    s = (s + out_bits[i]) & 65535;
  }
  print_int(s);
  print_int(out_count);
  return 0;
}
|}
