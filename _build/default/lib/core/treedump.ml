let render ?(loop_kinds = []) ?(show_all = false) tree =
  let buf = Buffer.create 1024 in
  let kind lid =
    match List.assoc_opt lid loop_kinds with
    | Some k -> k ^ " "
    | None -> ""
  in
  let ref_line indent (r : Looptree.refinfo) =
    let aff = r.aff in
    if show_all || Affine.has_iterator aff then begin
      let state =
        if not (Affine.analyzable aff) then "non-analyzable"
        else begin
          let terms =
            List.mapi
              (fun i c -> Printf.sprintf "%d*it%d" c (i + 1))
              (Affine.included_terms aff)
            |> List.filter (fun s -> not (String.length s > 0 && s.[0] = '0'))
          in
          let expr =
            String.concat " + " (string_of_int (Affine.const aff) :: terms)
          in
          if Affine.partial aff then
            Printf.sprintf "partial[%d/%d] %s" (Affine.m aff)
              (Affine.depth aff) expr
          else expr
        end
      in
      Buffer.add_string buf
        (Printf.sprintf "%sref %x: %s  (%d execs, %d locs, %dr/%dw)\n" indent
           (Affine.site aff) state (Affine.execs aff)
           (Foray_util.Iset.cardinal r.starts)
           r.reads r.writes)
    end
  in
  let rec node indent (n : Looptree.node) =
    Buffer.add_string buf
      (Printf.sprintf "%s%sloop %d: %d entr%s, trips %d..%d\n" indent
         (kind n.lid) n.lid n.entries
         (if n.entries = 1 then "y" else "ies")
         (if n.trip_min = max_int then 0 else n.trip_min)
         n.trip_max);
    List.iter (ref_line (indent ^ "  ")) n.refs;
    List.iter (node (indent ^ "  ")) n.children
  in
  let root = Looptree.root tree in
  Buffer.add_string buf
    (Printf.sprintf "program (%d loop nodes)\n" (Looptree.n_nodes tree));
  List.iter (ref_line "  ") root.refs;
  List.iter (node "  ") root.children;
  Buffer.contents buf
