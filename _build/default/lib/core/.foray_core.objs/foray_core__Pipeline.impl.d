lib/core/pipeline.ml: Filter Foray_instrument Foray_trace Hints List Looptree Minic Minic_sim Model
