lib/core/model.ml: Affine Buffer Filter Foray_util Hashtbl List Looptree Printf String
