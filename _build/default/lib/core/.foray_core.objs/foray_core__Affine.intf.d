lib/core/affine.mli:
