lib/core/model.mli: Filter Looptree
