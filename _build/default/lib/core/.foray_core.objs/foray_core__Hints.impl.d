lib/core/hints.ml: Affine Hashtbl List Looptree Option Printf String
