lib/core/filter.ml: Affine Foray_util List Looptree
