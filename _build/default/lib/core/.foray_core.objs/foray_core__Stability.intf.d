lib/core/stability.mli: Filter Minic
