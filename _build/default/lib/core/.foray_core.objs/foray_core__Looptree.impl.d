lib/core/looptree.ml: Affine Array Foray_trace Foray_util Hashtbl List
