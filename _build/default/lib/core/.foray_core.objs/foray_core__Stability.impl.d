lib/core/stability.ml: Buffer Filter Hashtbl List Minic_sim Model Option Pipeline Printf String
