lib/core/hints.mli: Looptree
