lib/core/filter.mli: Looptree
