lib/core/affine.ml: Array List
