lib/core/treedump.ml: Affine Buffer Foray_util List Looptree Printf String
