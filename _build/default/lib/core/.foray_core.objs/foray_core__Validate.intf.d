lib/core/validate.mli: Foray_trace Model
