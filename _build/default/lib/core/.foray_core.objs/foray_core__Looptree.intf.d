lib/core/looptree.mli: Affine Foray_trace Foray_util
