lib/core/treedump.mli: Looptree
