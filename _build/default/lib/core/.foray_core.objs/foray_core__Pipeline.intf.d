lib/core/pipeline.mli: Filter Foray_trace Hints Looptree Minic Minic_sim Model
