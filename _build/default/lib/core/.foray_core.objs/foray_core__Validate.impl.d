lib/core/validate.ml: Foray_trace Hashtbl List Model String
