(** Human-readable rendering of the reconstructed dynamic loop tree —
    the data structure behind Algorithm 2, as a designer would inspect it
    when deciding what to back-annotate (Phase III is manual in the paper,
    so readable analysis output matters). *)

(** [render ?loop_kinds ?show_all tree] draws the tree with one line per
    loop node (kind, trips, entries) and per reference (site, expression
    state, executions, locations). With [show_all] false (default) only
    references with at least one iterator are listed, hiding scalar
    noise. *)
val render :
  ?loop_kinds:(int * string) list ->
  ?show_all:bool ->
  Looptree.t ->
  string
