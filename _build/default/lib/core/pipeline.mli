(** The end-to-end FORAY-GEN flow (Algorithm 1).

    [Source -> parse -> sema -> annotate (Step 1) -> simulate (Step 2,
    online analysis = Steps 3.1/3.2) -> purge (Step 4) -> FORAY model],
    with trace statistics collected on the side for Table III.

    The analysis consumes the simulator's event stream directly (online
    mode); {!run_offline} instead materializes the trace and replays it,
    which the tests use to show both modes agree. *)

type result = {
  program : Minic.Ast.program;  (** the pristine parse *)
  instrumented : Minic.Ast.program;
  tree : Looptree.t;
  model : Model.t;
  tstats : Foray_trace.Tstats.t;  (** per-site totals over the whole trace *)
  sim : Minic_sim.Interp.result;
  loop_kinds : (int * string) list;  (** loop id -> for/while/do *)
  func_of_loop : int -> string option;
  thresholds : Filter.thresholds;
}

(** [run ?config ?thresholds prog] executes the full flow on a parsed
    program.
    @raise Failure when semantic checking fails.
    @raise Minic_sim.Interp.Runtime_error when simulation fails. *)
val run :
  ?config:Minic_sim.Interp.config ->
  ?thresholds:Filter.thresholds ->
  Minic.Ast.program ->
  result

(** [run_source ?config ?thresholds src] parses and runs. *)
val run_source :
  ?config:Minic_sim.Interp.config ->
  ?thresholds:Filter.thresholds ->
  string ->
  result

(** Offline variant: simulate to a stored trace, then analyze the trace.
    Returns the result and the trace. *)
val run_offline :
  ?config:Minic_sim.Interp.config ->
  ?thresholds:Filter.thresholds ->
  Minic.Ast.program ->
  result * Foray_trace.Event.event list

(** Duplication hints for the analyzed program (Figure 9). *)
val hints : result -> Hints.hint list

(** Map each loop id to the name of the function containing it. *)
val loop_functions : Minic.Ast.program -> (int * string) list
