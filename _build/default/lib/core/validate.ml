module Event = Foray_trace.Event

type ref_report = {
  site : int;
  path : int list;
  checked : int;
  exact : int;
  rebases : int;
}

type report = { refs : ref_report list; covered : int; uncovered : int }

let accuracy r = if r.checked = 0 then 1.0 else float_of_int r.exact /. float_of_int r.checked

let overall rep =
  let checked = List.fold_left (fun a r -> a + r.checked) 0 rep.refs in
  let exact = List.fold_left (fun a r -> a + r.exact) 0 rep.refs in
  if checked = 0 then 1.0 else float_of_int exact /. float_of_int checked

(* Mutable prediction state per model reference. *)
type cell = {
  mref : Model.mref;
  rpath : int list;
  mutable const : int;  (** re-based constant for partial refs *)
  mutable seen : bool;
  mutable checked : int;
  mutable exact : int;
  mutable rebases : int;
}

type walker = {
  table : (string, cell) Hashtbl.t;  (** key: path + site *)
  mutable stack : (int * int ref) list;  (** (lid, iter), innermost first *)
  mutable covered : int;
  mutable uncovered : int;
}

let key path site =
  String.concat ">" (List.map string_of_int path) ^ "@" ^ string_of_int site

let build (model : Model.t) =
  let table = Hashtbl.create 64 in
  List.iter
    (fun (chain, (mref : Model.mref)) ->
      let path = List.map (fun (l : Model.mloop) -> l.lid) chain in
      Hashtbl.replace table (key path mref.site)
        { mref; rpath = path; const = mref.const; seen = false; checked = 0;
          exact = 0; rebases = 0 })
    (Model.all_refs model);
  { table; stack = []; covered = 0; uncovered = 0 }

let on_event w = function
  | Event.Checkpoint { loop; kind } -> (
      match kind with
      | Event.Loop_enter -> w.stack <- (loop, ref (-1)) :: w.stack
      | Event.Body_enter ->
          if List.exists (fun (l, _) -> l = loop) w.stack then begin
            (* pop abandoned levels, as in Algorithm 2 *)
            let rec pop = function
              | (l, it) :: rest when l = loop ->
                  incr it;
                  (l, it) :: rest
              | _ :: rest -> pop rest
              | [] -> assert false
            in
            w.stack <- pop w.stack
          end
          else w.stack <- (loop, ref 0) :: w.stack
      | Event.Body_exit ->
          if List.exists (fun (l, _) -> l = loop) w.stack then begin
            let rec pop = function
              | (l, _) :: _ as s when l = loop -> s
              | _ :: rest -> pop rest
              | [] -> assert false
            in
            w.stack <- pop w.stack
          end
      | Event.Loop_exit ->
          if List.exists (fun (l, _) -> l = loop) w.stack then begin
            let rec pop = function
              | (l, _) :: rest when l = loop -> rest
              | _ :: rest -> pop rest
              | [] -> assert false
            in
            w.stack <- pop w.stack
          end)
  | Event.Access { site; addr; _ } -> (
      let path = List.rev_map fst w.stack in
      match Hashtbl.find_opt w.table (key path site) with
      | None -> w.uncovered <- w.uncovered + 1
      | Some cell ->
          w.covered <- w.covered + 1;
          (* iterator value for a loop id, innermost occurrence first *)
          let iter_of lid =
            match List.find_opt (fun (l, _) -> l = lid) w.stack with
            | Some (_, it) -> !it
            | None -> 0
          in
          let predicted =
            List.fold_left
              (fun acc (c, lid) -> acc + (c * iter_of lid))
              cell.const cell.mref.terms
          in
          if not cell.seen then begin
            (* align the constant with the first sighting in this run;
               full affine refs keep it for the whole run *)
            cell.seen <- true;
            if predicted <> addr then cell.const <- cell.const + (addr - predicted)
          end;
          let predicted =
            List.fold_left
              (fun acc (c, lid) -> acc + (c * iter_of lid))
              cell.const cell.mref.terms
          in
          cell.checked <- cell.checked + 1;
          if predicted = addr then cell.exact <- cell.exact + 1
          else begin
            cell.rebases <- cell.rebases + 1;
            cell.const <- cell.const + (addr - predicted)
          end)

let finish w =
  let refs =
    Hashtbl.fold
      (fun _ c acc ->
        {
          site = c.mref.site;
          path = c.rpath;
          checked = c.checked;
          exact = c.exact;
          rebases = c.rebases;
        }
        :: acc)
      w.table []
    |> List.sort compare
  in
  { refs; covered = w.covered; uncovered = w.uncovered }

let sink model =
  let w = build model in
  ((fun e -> on_event w e), fun () -> finish w)

let replay model events =
  let s, get = sink model in
  List.iter s events;
  get ()
