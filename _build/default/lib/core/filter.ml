type thresholds = { nexec : int; nloc : int }

let default = { nexec = 20; nloc = 10 }

let keep th (r : Looptree.refinfo) =
  Affine.analyzable r.aff
  && Affine.has_iterator r.aff
  && Affine.execs r.aff >= th.nexec
  && Foray_util.Iset.cardinal r.starts >= th.nloc

let survivors th tree =
  List.filter (fun (_, r) -> keep th r) (Looptree.refs tree)
