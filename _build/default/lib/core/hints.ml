type hint = {
  lid : int;
  func : string option;
  contexts : int list list;
  distinct_patterns : bool;
}

(* Signature of a node's captured access patterns: the multiset of
   (site, coefficients) of its analyzable references. *)
let pattern_sig (n : Looptree.node) =
  n.Looptree.refs
  |> List.filter (fun (r : Looptree.refinfo) -> Affine.analyzable r.aff)
  |> List.map (fun (r : Looptree.refinfo) ->
         (Affine.site r.aff, Affine.included_terms r.aff))
  |> List.sort compare

let duplication_hints ?(func_of_loop = fun _ -> None) tree =
  let by_lid = Hashtbl.create 32 in
  List.iter
    (fun (n : Looptree.node) ->
      let prev = Option.value (Hashtbl.find_opt by_lid n.lid) ~default:[] in
      Hashtbl.replace by_lid n.lid (n :: prev))
    (Looptree.nodes tree);
  Hashtbl.fold
    (fun lid nodes acc ->
      match nodes with
      | [] | [ _ ] -> acc
      | nodes ->
          let sigs = List.map pattern_sig nodes in
          let distinct_patterns =
            List.exists (fun s -> s <> List.hd sigs) (List.tl sigs)
          in
          {
            lid;
            func = func_of_loop lid;
            contexts = List.map Looptree.path (List.rev nodes);
            distinct_patterns;
          }
          :: acc)
    by_lid []
  |> List.sort (fun a b -> compare a.lid b.lid)

let to_string hints =
  if hints = [] then "no duplication hints\n"
  else
    String.concat ""
      (List.map
         (fun h ->
           let where =
             match h.func with
             | Some f -> Printf.sprintf "loop %d (in %s)" h.lid f
             | None -> Printf.sprintf "loop %d" h.lid
           in
           Printf.sprintf
             "%s appears in %d contexts%s: consider duplicating the enclosing \
              function\n  contexts: %s\n"
             where
             (List.length h.contexts)
             (if h.distinct_patterns then " with DIFFERENT access patterns"
              else " (same access pattern)")
             (String.concat "; "
                (List.map
                   (fun p ->
                     "[" ^ String.concat ">" (List.map string_of_int p) ^ "]")
                   h.contexts)))
         hints)
