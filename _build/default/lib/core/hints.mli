(** Inter-function optimization hints (§4, "Inter-function optimizations").

    The FORAY model has no function hierarchy: a loop reached through two
    different dynamic contexts appears twice. When that happens the access
    patterns in the two copies may differ, and the paper suggests
    duplicating (specializing) the enclosing function so each call site can
    be optimized separately — Figure 9's example. *)

type hint = {
  lid : int;  (** the loop that was dynamically inlined in several places *)
  func : string option;  (** enclosing function, when known *)
  contexts : int list list;  (** loop-id path of each distinct context *)
  distinct_patterns : bool;
      (** true when at least two contexts captured references whose index
          expressions differ — the strong signal of Figure 9 *)
}

(** [duplication_hints ?func_of_loop tree] finds loops materialized under
    more than one dynamic context. *)
val duplication_hints :
  ?func_of_loop:(int -> string option) -> Looptree.t -> hint list

(** Renders hints for the CLI / examples. *)
val to_string : hint list -> string
