(** FORAY model validation: replay a trace against an extracted model and
    measure how well each captured reference's affine expression predicts
    the actual addresses.

    Full affine references predict every access exactly by construction;
    partial references mispredict once per outer-context change (the
    constant term is re-based on each miss, exactly like Algorithm 3's
    Step 6). The per-reference accuracy is therefore a direct measure of
    how much behaviour the model abstracts away — the paper's stated
    future-work question about model fidelity. *)

type ref_report = {
  site : int;
  path : int list;  (** loop-id path identifying the context *)
  checked : int;  (** accesses attributed to this model reference *)
  exact : int;  (** predicted address equaled the actual address *)
  rebases : int;  (** constant-term corrections (partial refs) *)
}

type report = {
  refs : ref_report list;
  covered : int;  (** accesses that matched a model reference *)
  uncovered : int;  (** accesses outside the model *)
}

(** [accuracy r] is [exact / checked] in [0,1] (1.0 when never checked). *)
val accuracy : ref_report -> float

(** Overall exact-prediction ratio over covered accesses. *)
val overall : report -> float

(** [replay model events] walks the trace once. *)
val replay : Model.t -> Foray_trace.Event.event list -> report

(** A sink-based variant for online validation; call the returned function
    after the run to obtain the report. *)
val sink : Model.t -> Foray_trace.Event.sink * (unit -> report)
