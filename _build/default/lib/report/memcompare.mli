(** Cache vs. scratch-pad energy comparison for one benchmark.

    This quantifies the paper's premise (Section 1, via Banakar et al.):
    an SPM managed with FORAY-model buffers serves the hot references at
    SPM energy while everything else goes to main memory, whereas a cache
    of the same capacity pays tag+way energy on {e every} access plus line
    traffic on misses. Both consume exactly the same profile trace. *)

type result = {
  name : string;
  accesses : int;  (** total trace accesses *)
  cache_hit_rate : float;
  cache_energy : float;  (** nJ: cache accesses + miss/writeback traffic *)
  spm_energy : float;
      (** nJ: chosen-buffer accesses and fills at SPM cost, the remaining
          accesses from main memory *)
  main_energy : float;  (** nJ: everything from main memory *)
  spm_buffers : int;  (** buffers chosen at this capacity *)
}

(** [run ?cache_config bench ~capacity] simulates the benchmark once and
    evaluates the three organizations at the given on-chip capacity
    (bytes). The cache config's size is overridden by [capacity]. *)
val run :
  ?cache_config:Foray_cachesim.Cache.config ->
  Foray_suite.Suite.bench ->
  capacity:int ->
  result

(** Table over the whole suite at one capacity. *)
val table : capacity:int -> result list -> string
