lib/report/report.mli: Foray_core Foray_suite
