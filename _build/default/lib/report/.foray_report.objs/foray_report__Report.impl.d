lib/report/report.ml: Foray_core Foray_static Foray_suite Foray_trace Foray_util List Option Printf
