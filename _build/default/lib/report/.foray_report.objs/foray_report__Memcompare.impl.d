lib/report/memcompare.ml: Foray_cachesim Foray_core Foray_instrument Foray_spm Foray_suite Foray_trace Foray_util List Minic Minic_sim Printf
