lib/report/memcompare.mli: Foray_cachesim Foray_suite
