(** Hand-written lexer for MiniC source text. *)

type token =
  | INT_LIT of int
  | IDENT of string
  | KW of string  (** one of the reserved words *)
  | PUNCT of string  (** operator or punctuation, longest-match *)
  | EOF

(** A token paired with its 1-based source line (for error messages). *)
type spanned = { tok : token; line : int }

exception Error of string * int  (** message, line *)

(** [tokenize src] lexes the whole input. Handles decimal, hex ([0x..]) and
    character ([​'c'], with [\n \t \0 \\ \'] escapes) literals, line ([//])
    and block ([/* */]) comments.
    @raise Error on malformed input. *)
val tokenize : string -> spanned list

(** The reserved words of MiniC. *)
val keywords : string list
