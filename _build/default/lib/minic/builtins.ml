type t = { name : string; arity : int; sys : bool }

let all =
  [
    { name = "malloc"; arity = 1; sys = false };
    { name = "memset"; arity = 3; sys = true };
    { name = "memcpy"; arity = 3; sys = true };
    { name = "abs"; arity = 1; sys = false };
    { name = "mc_min"; arity = 2; sys = false };
    { name = "mc_max"; arity = 2; sys = false };
    { name = "mc_rand"; arity = 1; sys = false };
    { name = "print_int"; arity = 1; sys = false };
  ]

let find name = List.find_opt (fun b -> b.name = name) all
