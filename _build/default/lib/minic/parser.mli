(** Recursive-descent parser for MiniC.

    Assigns fresh, program-unique ids to every expression ([eid]) and
    statement ([sid]) node; loop statement ids double as loop ids for
    instrumentation and reporting.

    Grammar notes:
    - C operator precedence and associativity;
    - [for (int i = 0; ...; ...)] is accepted and desugared into a block
      containing the declaration followed by the loop, so FORAY model output
      is itself parseable MiniC;
    - [sizeof(type)] is folded to an integer literal at parse time;
    - [__checkpoint(id, kind);] statements are accepted so instrumented
      programs round-trip through the printer. *)

exception Error of string * int  (** message, source line *)

(** [program src] parses a full translation unit. *)
val program : string -> Ast.program

(** [expr src] parses a single expression (testing convenience). *)
val expr : string -> Ast.expr
