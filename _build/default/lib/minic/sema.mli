(** Light semantic checking of MiniC programs.

    Catches the mistakes that would otherwise surface as confusing runtime
    failures in the simulator: use of undeclared variables, unknown
    functions, wrong call arity, [void] variables, non-positive array
    dimensions, [break]/[continue] outside loops, duplicate definitions,
    assignment to non-lvalues, and a missing [main]. *)

type error = { msg : string; where : string }
(** [where] names the enclosing function, or ["<global>"]. *)

val pp_error : Format.formatter -> error -> unit

(** [check prog] returns all problems found ([Ok ()] when none). *)
val check : Ast.program -> (unit, error list) result

(** [check_exn prog] raises [Failure] with a readable message on errors. *)
val check_exn : Ast.program -> unit
