type token =
  | INT_LIT of int
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

type spanned = { tok : token; line : int }

exception Error of string * int

let keywords =
  [ "int"; "char"; "void"; "if"; "else"; "for"; "while"; "do";
    "return"; "break"; "continue"; "sizeof"; "switch"; "case"; "default" ]

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

(* Multi-character operators, longest first so greedy matching works. *)
let puncts =
  [ "<<="; ">>="; "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||";
    "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^="; "++"; "--";
    "+"; "-"; "*"; "/"; "%"; "<"; ">"; "="; "!"; "~"; "&"; "|"; "^";
    "("; ")"; "{"; "}"; "["; "]"; ";"; ","; "?"; ":" ]

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let toks = ref [] in
  let emit tok = toks := { tok; line = !line } :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (incr line; incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then raise (Error ("unterminated block comment", !line))
    end
    else if is_digit c then begin
      let start = !i in
      if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        i := !i + 2;
        while !i < n && is_hex src.[!i] do incr i done;
        let s = String.sub src start (!i - start) in
        emit (INT_LIT (int_of_string s))
      end
      else begin
        while !i < n && is_digit src.[!i] do incr i done;
        emit (INT_LIT (int_of_string (String.sub src start (!i - start))))
      end
    end
    else if is_alpha c then begin
      let start = !i in
      while !i < n && is_alnum src.[!i] do incr i done;
      let s = String.sub src start (!i - start) in
      if List.mem s keywords then emit (KW s) else emit (IDENT s)
    end
    else if c = '\'' then begin
      (* character literal -> integer token *)
      let v, len =
        match (peek 1, peek 2, peek 3) with
        | Some '\\', Some e, Some '\'' ->
            let v =
              match e with
              | 'n' -> 10 | 't' -> 9 | '0' -> 0 | 'r' -> 13
              | '\\' -> 92 | '\'' -> 39
              | _ -> raise (Error ("bad escape in char literal", !line))
            in
            (v, 4)
        | Some ch, Some '\'', _ when ch <> '\\' -> (Char.code ch, 3)
        | _ -> raise (Error ("malformed char literal", !line))
      in
      emit (INT_LIT v);
      i := !i + len
    end
    else begin
      match
        List.find_opt
          (fun p ->
            let l = String.length p in
            !i + l <= n && String.sub src !i l = p)
          puncts
      with
      | Some p ->
          emit (PUNCT p);
          i := !i + String.length p
      | None -> raise (Error (Printf.sprintf "unexpected character %C" c, !line))
    end
  done;
  emit EOF;
  List.rev !toks
