open Ast

(* Precedence levels; larger binds tighter. Matches the parser's grammar. *)
let prec_assign = 1
let prec_cond = 2
let prec_binary_base = 3 (* Lor *)
let prec_unary = 13
let prec_postfix = 14
let prec_primary = 15

let binop_prec = function
  | Lor -> prec_binary_base
  | Land -> prec_binary_base + 1
  | Bor -> prec_binary_base + 2
  | Bxor -> prec_binary_base + 3
  | Band -> prec_binary_base + 4
  | Eq | Ne -> prec_binary_base + 5
  | Lt | Gt | Le | Ge -> prec_binary_base + 6
  | Shl | Shr -> prec_binary_base + 7
  | Add | Sub -> prec_binary_base + 8
  | Mul | Div | Mod -> prec_binary_base + 9

(* Base type and pointer stars of a declarator; arrays handled separately. *)
let rec split_ptrs t =
  match t with
  | Tptr t' ->
      let base, stars = split_ptrs t' in
      (base, stars + 1)
  | _ -> (t, 0)

let rec split_arrays t =
  match t with
  | Tarr (t', n) ->
      let base, dims = split_arrays t' in
      (base, n :: dims)
  | _ -> (t, [])

let base_ty_name = function
  | Tint -> "int"
  | Tchar -> "char"
  | Tvoid -> "void"
  | Tptr _ | Tarr _ -> invalid_arg "Pretty.base_ty_name"

let declarator t name =
  let inner, dims = split_arrays t in
  let base, stars = split_ptrs inner in
  Printf.sprintf "%s %s%s%s" (base_ty_name base) (String.make stars '*') name
    (String.concat "" (List.map (fun n -> Printf.sprintf "[%d]" n) dims))

let cast_ty t =
  let base, stars = split_ptrs t in
  Printf.sprintf "%s%s" (base_ty_name base) (String.make stars '*')

let rec pr buf e req =
  (* Prints [e] assuming the context requires precedence >= req; adds
     parentheses when e's own precedence is lower. *)
  let self = expr_prec e in
  if self < req then begin
    Buffer.add_char buf '(';
    pr_naked buf e;
    Buffer.add_char buf ')'
  end
  else pr_naked buf e

and expr_prec e =
  match e.e with
  | Int n -> if n < 0 then prec_unary else prec_primary
  | Var _ -> prec_primary
  | Call _ -> prec_postfix
  | Index _ | Incr (false, _) | Decr (false, _) -> prec_postfix
  | Un _ | Deref _ | Addr _ | Incr (true, _) | Decr (true, _) | Cast _ ->
      prec_unary
  | Bin (op, _, _) -> binop_prec op
  | Cond _ -> prec_cond
  | Assign _ | OpAssign _ -> prec_assign

and pr_naked buf e =
  match e.e with
  | Int n ->
      if n < 0 then Buffer.add_string buf (Printf.sprintf "(%d)" n)
      else Buffer.add_string buf (string_of_int n)
  | Var v -> Buffer.add_string buf v
  | Bin (op, a, b) ->
      let p = binop_prec op in
      pr buf a p;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_binop op);
      Buffer.add_char buf ' ';
      pr buf b (p + 1)
  | Un (op, a) ->
      Buffer.add_string buf (string_of_unop op);
      pr_unary_operand buf op a
  | Assign (l, r) ->
      pr buf l prec_cond;
      Buffer.add_string buf " = ";
      pr buf r prec_assign
  | OpAssign (op, l, r) ->
      pr buf l prec_cond;
      Buffer.add_string buf (Printf.sprintf " %s= " (string_of_binop op));
      pr buf r prec_assign
  | Incr (true, a) ->
      Buffer.add_string buf "++";
      pr buf a prec_unary
  | Decr (true, a) ->
      Buffer.add_string buf "--";
      pr buf a prec_unary
  | Incr (false, a) ->
      pr buf a prec_postfix;
      Buffer.add_string buf "++"
  | Decr (false, a) ->
      pr buf a prec_postfix;
      Buffer.add_string buf "--"
  | Index (a, i) ->
      pr buf a prec_postfix;
      Buffer.add_char buf '[';
      pr buf i prec_assign;
      Buffer.add_char buf ']'
  | Deref a ->
      Buffer.add_char buf '*';
      pr buf a prec_unary
  | Addr a ->
      Buffer.add_char buf '&';
      (* avoid "&&" when the operand is itself an address-of *)
      (match a.e with
      | Addr _ ->
          Buffer.add_char buf '(';
          pr_naked buf a;
          Buffer.add_char buf ')'
      | _ -> pr buf a prec_unary)
  | Call (f, args) ->
      Buffer.add_string buf f;
      Buffer.add_char buf '(';
      List.iteri
        (fun i a ->
          if i > 0 then Buffer.add_string buf ", ";
          pr buf a prec_assign)
        args;
      Buffer.add_char buf ')'
  | Cond (c, a, b) ->
      pr buf c (prec_cond + 1);
      Buffer.add_string buf " ? ";
      pr buf a prec_assign;
      Buffer.add_string buf " : ";
      pr buf b prec_cond
  | Cast (t, a) ->
      Buffer.add_char buf '(';
      Buffer.add_string buf (cast_ty t);
      Buffer.add_char buf ')';
      pr buf a prec_unary

and pr_unary_operand buf op a =
  (* Avoid "--x" when printing -(-c) and friends. *)
  let risky =
    match (op, a.e) with
    | Neg, (Un (Neg, _) | Decr (true, _) | Int _) ->
        (match a.e with Int n -> n < 0 | _ -> true)
    | _ -> false
  in
  if risky then begin
    Buffer.add_char buf '(';
    pr_naked buf a;
    Buffer.add_char buf ')'
  end
  else pr buf a prec_unary

let expr e =
  let buf = Buffer.create 64 in
  pr buf e prec_assign;
  Buffer.contents buf

let pr_init = function
  | Iexpr e -> expr e
  | Ilist l -> "{" ^ String.concat ", " (List.map string_of_int l) ^ "}"

let rec pr_stmt buf indent st =
  let pad = String.make (2 * indent) ' ' in
  let line s = Buffer.add_string buf (pad ^ s ^ "\n") in
  match st.s with
  | Sexpr e -> line (expr e ^ ";")
  | Sdecl (t, name, init) ->
      let head = declarator t name in
      (match init with
      | None -> line (head ^ ";")
      | Some i -> line (head ^ " = " ^ pr_init i ^ ";"))
  | Sif (c, a, b) ->
      line (Printf.sprintf "if (%s) {" (expr c));
      List.iter (pr_stmt buf (indent + 1)) a;
      if b = [] then line "}"
      else begin
        line "} else {";
        List.iter (pr_stmt buf (indent + 1)) b;
        line "}"
      end
  | Sfor (init, cond, step, b) ->
      let o = function None -> "" | Some e -> expr e in
      line
        (Printf.sprintf "for (%s; %s; %s) {" (o init) (o cond) (o step));
      List.iter (pr_stmt buf (indent + 1)) b;
      line "}"
  | Swhile (c, b) ->
      line (Printf.sprintf "while (%s) {" (expr c));
      List.iter (pr_stmt buf (indent + 1)) b;
      line "}"
  | Sdo (b, c) ->
      line "do {";
      List.iter (pr_stmt buf (indent + 1)) b;
      line (Printf.sprintf "} while (%s);" (expr c))
  | Sreturn None -> line "return;"
  | Sreturn (Some e) -> line (Printf.sprintf "return %s;" (expr e))
  | Sbreak -> line "break;"
  | Scontinue -> line "continue;"
  | Sblock b ->
      line "{";
      List.iter (pr_stmt buf (indent + 1)) b;
      line "}"
  | Sswitch (scrut, cases) ->
      line (Printf.sprintf "switch (%s) {" (expr scrut));
      List.iter
        (fun (c : switch_case) ->
          List.iter
            (fun l ->
              match l with
              | Lcase v ->
                  Buffer.add_string buf
                    (Printf.sprintf "%scase %d:\n" pad v)
              | Ldefault -> Buffer.add_string buf (pad ^ "default:\n"))
            c.labels;
          List.iter (pr_stmt buf (indent + 1)) c.body)
        cases;
      line "}"
  | Scheckpoint (id, k) ->
      line (Printf.sprintf "__checkpoint(%d, %s);" id (string_of_ckind k))

let stmt ?(indent = 0) st =
  let buf = Buffer.create 128 in
  pr_stmt buf indent st;
  Buffer.contents buf

let program p =
  let buf = Buffer.create 1024 in
  List.iter
    (fun g ->
      match g with
      | Gvar (t, name, init) ->
          let head = declarator t name in
          (match init with
          | None -> Buffer.add_string buf (head ^ ";\n")
          | Some i -> Buffer.add_string buf (head ^ " = " ^ pr_init i ^ ";\n"))
      | Gfunc f ->
          let params =
            String.concat ", "
              (List.map (fun (t, n) -> declarator t n) f.params)
          in
          Buffer.add_string buf
            (Printf.sprintf "%s(%s) {\n" (declarator f.ret f.fname) params);
          List.iter (pr_stmt buf 1) f.body;
          Buffer.add_string buf "}\n")
    p.globals;
  Buffer.contents buf
