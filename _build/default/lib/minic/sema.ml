open Ast

type error = { msg : string; where : string }

let pp_error fmt e = Format.fprintf fmt "%s: %s" e.where e.msg

module SS = Set.Make (String)

type env = {
  mutable errors : error list;
  mutable scopes : SS.t list; (* innermost first *)
  funcs : (string, func) Hashtbl.t;
  mutable where : string;
  mutable loop_depth : int;
}

let err env msg = env.errors <- { msg; where = env.where } :: env.errors

let declared env name = List.exists (fun s -> SS.mem name s) env.scopes

let declare env name =
  match env.scopes with
  | [] -> assert false
  | s :: rest ->
      if SS.mem name s then
        err env (Printf.sprintf "duplicate declaration of %S in this scope" name);
      env.scopes <- SS.add name s :: rest

let push_scope env = env.scopes <- SS.empty :: env.scopes
let pop_scope env = env.scopes <- List.tl env.scopes

let rec is_lvalue e =
  match e.e with
  | Var _ | Index _ | Deref _ -> true
  | Cast (_, e') -> is_lvalue e'
  | _ -> false

let rec check_ty env t =
  match t with
  | Tvoid -> err env "variable of type void"
  | Tint | Tchar -> ()
  | Tptr _ -> ()
  | Tarr (t', n) ->
      if n <= 0 then err env (Printf.sprintf "non-positive array dimension %d" n);
      check_ty env t'

let rec check_expr env e =
  match e.e with
  | Int _ -> ()
  | Var v -> if not (declared env v) then err env (Printf.sprintf "undeclared variable %S" v)
  | Bin (_, a, b) ->
      check_expr env a;
      check_expr env b
  | Un (_, a) -> check_expr env a
  | Assign (l, r) | OpAssign (_, l, r) ->
      if not (is_lvalue l) then err env "assignment to non-lvalue";
      check_expr env l;
      check_expr env r
  | Incr (_, l) | Decr (_, l) ->
      if not (is_lvalue l) then err env "increment of non-lvalue";
      check_expr env l
  | Index (a, i) ->
      check_expr env a;
      check_expr env i
  | Deref a -> check_expr env a
  | Addr a ->
      if not (is_lvalue a) then err env "address of non-lvalue";
      check_expr env a
  | Call (f, args) -> (
      List.iter (check_expr env) args;
      let arity =
        match Hashtbl.find_opt env.funcs f with
        | Some fn -> Some (List.length fn.params)
        | None -> (
            match Builtins.find f with
            | Some b -> Some b.arity
            | None ->
                err env (Printf.sprintf "call to unknown function %S" f);
                None)
      in
      match arity with
      | Some n when n <> List.length args ->
          err env
            (Printf.sprintf "function %S expects %d argument(s), got %d" f n
               (List.length args))
      | _ -> ())
  | Cond (c, a, b) ->
      check_expr env c;
      check_expr env a;
      check_expr env b
  | Cast (t, a) ->
      (match t with Tarr _ -> err env "cast to array type" | _ -> ());
      check_expr env a

let rec check_stmt env st =
  match st.s with
  | Sexpr e -> check_expr env e
  | Sdecl (t, name, init) ->
      check_ty env t;
      (match init with
      | Some (Iexpr e) -> check_expr env e
      | Some (Ilist l) -> (
          match t with
          | Tarr (_, n) ->
              if List.length l > n then
                err env
                  (Printf.sprintf "initializer for %S has %d elements, array has %d"
                     name (List.length l) n)
          | _ -> err env (Printf.sprintf "list initializer for non-array %S" name))
      | None -> ());
      declare env name
  | Sif (c, a, b) ->
      check_expr env c;
      check_block env a;
      check_block env b
  | Sfor (i, c, s, b) ->
      Option.iter (check_expr env) i;
      Option.iter (check_expr env) c;
      Option.iter (check_expr env) s;
      env.loop_depth <- env.loop_depth + 1;
      check_block env b;
      env.loop_depth <- env.loop_depth - 1
  | Swhile (c, b) ->
      check_expr env c;
      env.loop_depth <- env.loop_depth + 1;
      check_block env b;
      env.loop_depth <- env.loop_depth - 1
  | Sdo (b, c) ->
      env.loop_depth <- env.loop_depth + 1;
      check_block env b;
      env.loop_depth <- env.loop_depth - 1;
      check_expr env c
  | Sreturn e -> Option.iter (check_expr env) e
  | Sbreak -> if env.loop_depth = 0 then err env "break outside loop"
  | Scontinue -> if env.loop_depth = 0 then err env "continue outside loop"
  | Sblock b -> check_block env b
  | Sswitch (scrut, cases) ->
      check_expr env scrut;
      let defaults = ref 0 in
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (c : switch_case) ->
          List.iter
            (fun l ->
              match l with
              | Ldefault -> incr defaults
              | Lcase v ->
                  if Hashtbl.mem seen v then
                    err env (Printf.sprintf "duplicate case %d" v)
                  else Hashtbl.add seen v ())
            c.labels;
          (* break inside a switch is legal: it exits the switch *)
          env.loop_depth <- env.loop_depth + 1;
          check_block env c.body;
          env.loop_depth <- env.loop_depth - 1)
        cases;
      if !defaults > 1 then err env "multiple default labels"
  | Scheckpoint _ -> ()

and check_block env b =
  push_scope env;
  List.iter (check_stmt env) b;
  pop_scope env

let check prog =
  let funcs = Hashtbl.create 16 in
  let env =
    { errors = []; scopes = [ SS.empty ]; funcs; where = "<global>"; loop_depth = 0 }
  in
  (* First pass: collect globals and functions (forward references allowed). *)
  List.iter
    (fun g ->
      match g with
      | Gvar (t, name, init) ->
          check_ty env t;
          (match init with
          | Some (Ilist l) -> (
              match t with
              | Tarr (_, n) ->
                  if List.length l > n then
                    err env (Printf.sprintf "initializer too long for %S" name)
              | _ -> err env (Printf.sprintf "list initializer for non-array %S" name))
          | _ -> ());
          declare env name
      | Gfunc f ->
          if Hashtbl.mem funcs f.fname then
            err env (Printf.sprintf "duplicate function %S" f.fname)
          else if Builtins.find f.fname <> None then
            err env (Printf.sprintf "function %S shadows a builtin" f.fname)
          else Hashtbl.add funcs f.fname f)
    prog.globals;
  (* Global initializer expressions may only use earlier globals; we accept
     any global reference for simplicity. *)
  List.iter
    (fun g ->
      match g with
      | Gvar (_, name, Some (Iexpr e)) ->
          env.where <- "<global " ^ name ^ ">";
          check_expr env e
      | _ -> ())
    prog.globals;
  (* Second pass: function bodies. *)
  List.iter
    (fun g ->
      match g with
      | Gvar _ -> ()
      | Gfunc f ->
          env.where <- f.fname;
          push_scope env;
          List.iter
            (fun (t, name) ->
              check_ty env t;
              declare env name)
            f.params;
          check_block env f.body;
          pop_scope env)
    prog.globals;
  env.where <- "<global>";
  if not (Hashtbl.mem funcs "main") then err env "program has no main function";
  match env.errors with [] -> Ok () | l -> Error (List.rev l)

let check_exn prog =
  match check prog with
  | Ok () -> ()
  | Error errs ->
      let msg =
        String.concat "; "
          (List.map (fun e -> Format.asprintf "%a" pp_error e) errs)
      in
      failwith ("Sema: " ^ msg)
