(** Pretty-printer for MiniC.

    The output is valid MiniC: for every program [p],
    [Parser.program (Pretty.program p)] succeeds and is structurally equal
    to [p] up to node ids ([Ast.equal_program]). This property is enforced
    by the round-trip tests. *)

(** Renders a full program. *)
val program : Ast.program -> string

(** Renders one expression (no trailing newline). *)
val expr : Ast.expr -> string

(** Renders one statement at the given indentation depth. *)
val stmt : ?indent:int -> Ast.stmt -> string

(** Renders a declaration head such as [int *p\[10\]] for a name and type. *)
val declarator : Ast.ty -> string -> string
