open Ast

exception Error of string * int

type state = {
  toks : Lexer.spanned array;
  mutable pos : int;
  mutable next_eid : int;
  mutable next_sid : int;
}

let mk_state src =
  { toks = Array.of_list (Lexer.tokenize src); pos = 0; next_eid = 1; next_sid = 1 }

let cur st = st.toks.(st.pos)
let line st = (cur st).line
let fail st msg = raise (Error (msg, line st))
let advance st = st.pos <- st.pos + 1

let fresh_eid st =
  let id = st.next_eid in
  st.next_eid <- id + 1;
  id

let fresh_sid st =
  let id = st.next_sid in
  st.next_sid <- id + 1;
  id

let mke st e = { e; eid = fresh_eid st }
let mks st s = { s; sid = fresh_sid st }

let peek_tok st = (cur st).tok
let peek2_tok st =
  if st.pos + 1 < Array.length st.toks then Some st.toks.(st.pos + 1).tok
  else None

let eat_punct st p =
  match peek_tok st with
  | Lexer.PUNCT q when q = p -> advance st
  | _ -> fail st (Printf.sprintf "expected %S" p)

let eat_kw st k =
  match peek_tok st with
  | Lexer.KW q when q = k -> advance st
  | _ -> fail st (Printf.sprintf "expected keyword %S" k)

let is_punct st p = match peek_tok st with Lexer.PUNCT q -> q = p | _ -> false
let is_kw st k = match peek_tok st with Lexer.KW q -> q = k | _ -> false
let is_type_kw st = is_kw st "int" || is_kw st "char" || is_kw st "void"

let ident st =
  match peek_tok st with
  | Lexer.IDENT s ->
      advance st;
      s
  | _ -> fail st "expected identifier"

(* base type plus pointer stars: "int **" *)
let base_type st =
  let t =
    if is_kw st "int" then (advance st; Tint)
    else if is_kw st "char" then (advance st; Tchar)
    else if is_kw st "void" then (advance st; Tvoid)
    else fail st "expected type"
  in
  let rec stars t = if is_punct st "*" then (advance st; stars (Tptr t)) else t in
  stars t

(* array dimensions after a declarator name: x[2][3] *)
let rec array_dims st t =
  if is_punct st "[" then begin
    advance st;
    let n =
      match peek_tok st with
      | Lexer.INT_LIT n ->
          advance st;
          n
      | _ -> fail st "expected array dimension"
    in
    eat_punct st "]";
    Tarr (array_dims st t, n)
  end
  else t

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let binop_of_punct = function
  | "+" -> Some Add | "-" -> Some Sub | "*" -> Some Mul | "/" -> Some Div
  | "%" -> Some Mod | "<<" -> Some Shl | ">>" -> Some Shr
  | "&" -> Some Band | "|" -> Some Bor | "^" -> Some Bxor
  | "<" -> Some Lt | ">" -> Some Gt | "<=" -> Some Le | ">=" -> Some Ge
  | "==" -> Some Eq | "!=" -> Some Ne | "&&" -> Some Land | "||" -> Some Lor
  | _ -> None

(* Binary precedence levels, loosest first. *)
let levels =
  [ [ Lor ]; [ Land ]; [ Bor ]; [ Bxor ]; [ Band ]; [ Eq; Ne ];
    [ Lt; Gt; Le; Ge ]; [ Shl; Shr ]; [ Add; Sub ]; [ Mul; Div; Mod ] ]

let opassign_of_punct = function
  | "+=" -> Some Add | "-=" -> Some Sub | "*=" -> Some Mul | "/=" -> Some Div
  | "%=" -> Some Mod | "&=" -> Some Band | "|=" -> Some Bor | "^=" -> Some Bxor
  | "<<=" -> Some Shl | ">>=" -> Some Shr
  | _ -> None

let rec expr st = assignment st

and assignment st =
  let lhs = conditional st in
  match peek_tok st with
  | Lexer.PUNCT "=" ->
      advance st;
      let rhs = assignment st in
      mke st (Assign (lhs, rhs))
  | Lexer.PUNCT p -> (
      match opassign_of_punct p with
      | Some op ->
          advance st;
          let rhs = assignment st in
          mke st (OpAssign (op, lhs, rhs))
      | None -> lhs)
  | _ -> lhs

and conditional st =
  let c = binary st 0 in
  if is_punct st "?" then begin
    advance st;
    let a = assignment st in
    eat_punct st ":";
    let b = conditional st in
    mke st (Cond (c, a, b))
  end
  else c

and binary st lvl =
  if lvl >= List.length levels then unary st
  else begin
    let ops = List.nth levels lvl in
    let lhs = ref (binary st (lvl + 1)) in
    let continue = ref true in
    while !continue do
      match peek_tok st with
      | Lexer.PUNCT p -> (
          match binop_of_punct p with
          | Some op when List.mem op ops ->
              advance st;
              let rhs = binary st (lvl + 1) in
              lhs := mke st (Bin (op, !lhs, rhs))
          | _ -> continue := false)
      | _ -> continue := false
    done;
    !lhs
  end

and unary st =
  match peek_tok st with
  | Lexer.PUNCT "-" -> (
      advance st;
      (* fold negation of literals so "-5" round-trips as Int (-5) *)
      match unary st with
      | { e = Int n; _ } -> mke st (Int (-n))
      | e -> mke st (Un (Neg, e)))
  | Lexer.PUNCT "!" ->
      advance st;
      mke st (Un (Lnot, unary st))
  | Lexer.PUNCT "~" ->
      advance st;
      mke st (Un (Bnot, unary st))
  | Lexer.PUNCT "*" ->
      advance st;
      mke st (Deref (unary st))
  | Lexer.PUNCT "&" ->
      advance st;
      mke st (Addr (unary st))
  | Lexer.PUNCT "++" ->
      advance st;
      mke st (Incr (true, unary st))
  | Lexer.PUNCT "--" ->
      advance st;
      mke st (Decr (true, unary st))
  | Lexer.KW "sizeof" ->
      advance st;
      eat_punct st "(";
      let t = base_type st in
      let t = array_dims st t in
      eat_punct st ")";
      mke st (Int (sizeof t))
  | Lexer.PUNCT "(" when is_cast st -> (
      advance st;
      let t = base_type st in
      eat_punct st ")";
      mke st (Cast (t, unary st)))
  | _ -> postfix st

and is_cast st =
  (* "(" followed by a type keyword is a cast. *)
  match peek2_tok st with
  | Some (Lexer.KW k) -> List.mem k [ "int"; "char"; "void" ]
  | _ -> false

and postfix st =
  let e = ref (primary st) in
  let continue = ref true in
  while !continue do
    if is_punct st "[" then begin
      advance st;
      let i = expr st in
      eat_punct st "]";
      e := mke st (Index (!e, i))
    end
    else if is_punct st "++" then begin
      advance st;
      e := mke st (Incr (false, !e))
    end
    else if is_punct st "--" then begin
      advance st;
      e := mke st (Decr (false, !e))
    end
    else continue := false
  done;
  !e

and primary st =
  match peek_tok st with
  | Lexer.INT_LIT n ->
      advance st;
      mke st (Int n)
  | Lexer.IDENT name -> (
      advance st;
      if is_punct st "(" then begin
        advance st;
        let args = ref [] in
        if not (is_punct st ")") then begin
          args := [ assignment st ];
          while is_punct st "," do
            advance st;
            args := assignment st :: !args
          done
        end;
        eat_punct st ")";
        mke st (Call (name, List.rev !args))
      end
      else mke st (Var name))
  | Lexer.PUNCT "(" ->
      advance st;
      let e = expr st in
      eat_punct st ")";
      e
  | _ -> fail st "expected expression"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let initializer_ st =
  if is_punct st "{" then begin
    advance st;
    let items = ref [] in
    let int_item () =
      match peek_tok st with
      | Lexer.INT_LIT n ->
          advance st;
          n
      | Lexer.PUNCT "-" -> (
          advance st;
          match peek_tok st with
          | Lexer.INT_LIT n ->
              advance st;
              -n
          | _ -> fail st "expected integer in initializer list")
      | _ -> fail st "expected integer in initializer list"
    in
    if not (is_punct st "}") then begin
      items := [ int_item () ];
      while is_punct st "," do
        advance st;
        items := int_item () :: !items
      done
    end;
    eat_punct st "}";
    Ilist (List.rev !items)
  end
  else Iexpr (expr st)

let rec statement st : stmt list =
  (* Returns a list because declarations with comma-separated declarators
     and for-loops with declaration initializers expand to several
     statements. *)
  if is_type_kw st then decl_stmt st
  else if is_kw st "if" then begin
    advance st;
    eat_punct st "(";
    let c = expr st in
    eat_punct st ")";
    let a = body st in
    let b = if is_kw st "else" then (advance st; body st) else [] in
    [ mks st (Sif (c, a, b)) ]
  end
  else if is_kw st "for" then begin
    advance st;
    eat_punct st "(";
    let pre, init =
      if is_punct st ";" then (advance st; ([], None))
      else if is_type_kw st then begin
        (* for (int i = 0; ...) : desugar to { int i = 0; for (; ...) } *)
        let decls = decl_stmt st in
        (decls, None)
      end
      else begin
        let e = expr st in
        eat_punct st ";";
        ([], Some e)
      end
    in
    let cond = if is_punct st ";" then None else Some (expr st) in
    eat_punct st ";";
    let step = if is_punct st ")" then None else Some (expr st) in
    eat_punct st ")";
    let b = body st in
    let loop = mks st (Sfor (init, cond, step, b)) in
    if pre = [] then [ loop ] else [ mks st (Sblock (pre @ [ loop ])) ]
  end
  else if is_kw st "while" then begin
    advance st;
    eat_punct st "(";
    let c = expr st in
    eat_punct st ")";
    let b = body st in
    [ mks st (Swhile (c, b)) ]
  end
  else if is_kw st "do" then begin
    advance st;
    let b = body st in
    eat_kw st "while";
    eat_punct st "(";
    let c = expr st in
    eat_punct st ")";
    eat_punct st ";";
    [ mks st (Sdo (b, c)) ]
  end
  else if is_kw st "switch" then begin
    advance st;
    eat_punct st "(";
    let scrut = expr st in
    eat_punct st ")";
    eat_punct st "{";
    let cases = ref [] in
    while not (is_punct st "}") do
      let labels = ref [] in
      let more_labels () = is_kw st "case" || is_kw st "default" in
      if not (more_labels ()) then fail st "expected case or default label";
      while more_labels () do
        if is_kw st "case" then begin
          advance st;
          let v =
            match peek_tok st with
            | Lexer.INT_LIT n ->
                advance st;
                n
            | Lexer.PUNCT "-" -> (
                advance st;
                match peek_tok st with
                | Lexer.INT_LIT n ->
                    advance st;
                    -n
                | _ -> fail st "expected case value")
            | _ -> fail st "expected case value"
          in
          labels := Lcase v :: !labels
        end
        else begin
          advance st;
          labels := Ldefault :: !labels
        end;
        eat_punct st ":"
      done;
      let body = ref [] in
      while (not (is_punct st "}")) && not (more_labels ()) do
        body := List.rev_append (statement st) !body
      done;
      cases := { labels = List.rev !labels; body = List.rev !body } :: !cases
    done;
    eat_punct st "}";
    [ mks st (Sswitch (scrut, List.rev !cases)) ]
  end
  else if is_kw st "return" then begin
    advance st;
    let e = if is_punct st ";" then None else Some (expr st) in
    eat_punct st ";";
    [ mks st (Sreturn e) ]
  end
  else if is_kw st "break" then begin
    advance st;
    eat_punct st ";";
    [ mks st Sbreak ]
  end
  else if is_kw st "continue" then begin
    advance st;
    eat_punct st ";";
    [ mks st Scontinue ]
  end
  else if is_punct st "{" then [ mks st (Sblock (block st)) ]
  else if is_punct st ";" then (advance st; [])
  else begin
    match peek_tok st with
    | Lexer.IDENT "__checkpoint" ->
        advance st;
        eat_punct st "(";
        let id =
          match peek_tok st with
          | Lexer.INT_LIT n -> advance st; n
          | _ -> fail st "expected checkpoint id"
        in
        eat_punct st ",";
        let kind =
          match peek_tok st with
          | Lexer.IDENT "loop_enter" -> advance st; Loop_enter
          | Lexer.IDENT "body_enter" -> advance st; Body_enter
          | Lexer.IDENT "body_exit" -> advance st; Body_exit
          | Lexer.IDENT "loop_exit" -> advance st; Loop_exit
          | _ -> fail st "expected checkpoint kind"
        in
        eat_punct st ")";
        eat_punct st ";";
        [ mks st (Scheckpoint (id, kind)) ]
    | _ ->
        let e = expr st in
        eat_punct st ";";
        [ mks st (Sexpr e) ]
  end

and decl_stmt st =
  let base = base_type st in
  let one () =
    (* each declarator may add its own stars: int *p, q[10]; *)
    let rec stars t = if is_punct st "*" then (advance st; stars (Tptr t)) else t in
    let t = stars base in
    let name = ident st in
    let t = array_dims st t in
    let init = if is_punct st "=" then (advance st; Some (initializer_ st)) else None in
    mks st (Sdecl (t, name, init))
  in
  let ds = ref [ one () ] in
  while is_punct st "," do
    advance st;
    ds := one () :: !ds
  done;
  eat_punct st ";";
  List.rev !ds

and body st : block =
  (* A loop or branch body: either a braced block or a single statement. *)
  if is_punct st "{" then block st else statement st

and block st : block =
  eat_punct st "{";
  let stmts = ref [] in
  while not (is_punct st "}") do
    stmts := List.rev_append (statement st) !stmts
  done;
  eat_punct st "}";
  List.rev !stmts

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let global st =
  let base = base_type st in
  let rec stars t = if is_punct st "*" then (advance st; stars (Tptr t)) else t in
  let t = stars base in
  let name = ident st in
  if is_punct st "(" then begin
    advance st;
    let params = ref [] in
    if not (is_punct st ")") then begin
      let one () =
        let pt = base_type st in
        let pname = ident st in
        let pt = array_dims st pt in
        (* array parameters decay to pointers, like C *)
        let pt = match pt with Tarr (e, _) -> Tptr e | t -> t in
        (pt, pname)
      in
      params := [ one () ];
      while is_punct st "," do
        advance st;
        params := one () :: !params
      done
    end;
    eat_punct st ")";
    let b = block st in
    [ Gfunc { fname = name; ret = t; params = List.rev !params; body = b } ]
  end
  else begin
    let one t name =
      let t = array_dims st t in
      let init = if is_punct st "=" then (advance st; Some (initializer_ st)) else None in
      Gvar (t, name, init)
    in
    let gs = ref [ one t name ] in
    while is_punct st "," do
      advance st;
      let t = stars base in
      let name = ident st in
      gs := one t name :: !gs
    done;
    eat_punct st ";";
    List.rev !gs
  end

let program src =
  let st = mk_state src in
  let globals = ref [] in
  while peek_tok st <> Lexer.EOF do
    globals := List.rev_append (global st) !globals
  done;
  { globals = List.rev !globals }

let expr src =
  let st = mk_state src in
  let e = expr st in
  (match peek_tok st with
  | Lexer.EOF -> ()
  | _ -> fail st "trailing tokens after expression");
  e

(* Re-raise lexer errors as parser errors for a single exception surface. *)
let program src =
  try program src with Lexer.Error (m, l) -> raise (Error ("lexer: " ^ m, l))

let expr src =
  try expr src with Lexer.Error (m, l) -> raise (Error ("lexer: " ^ m, l))
