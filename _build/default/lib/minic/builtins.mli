(** Built-in functions of the MiniC runtime.

    [memset]/[memcpy] model system-library routines: the memory traffic they
    generate is tagged as "system" in the profile trace, reproducing the
    paper's Table III category "In system calls". *)

type t = {
  name : string;
  arity : int;
  sys : bool;  (** memory accesses performed inside count as system-library *)
}

(** All builtins: [malloc], [memset], [memcpy], [abs], [mc_min], [mc_max],
    [mc_rand], [print_int]. *)
val all : t list

(** Lookup by name. *)
val find : string -> t option
