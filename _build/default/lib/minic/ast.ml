type ty =
  | Tvoid
  | Tint
  | Tchar
  | Tptr of ty
  | Tarr of ty * int

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr | Band | Bor | Bxor
  | Lt | Gt | Le | Ge | Eq | Ne
  | Land | Lor

type unop = Neg | Lnot | Bnot

type ckind = Loop_enter | Body_enter | Body_exit | Loop_exit

type expr = { e : expr_desc; eid : int }

and expr_desc =
  | Int of int
  | Var of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Assign of expr * expr
  | OpAssign of binop * expr * expr
  | Incr of bool * expr
  | Decr of bool * expr
  | Index of expr * expr
  | Deref of expr
  | Addr of expr
  | Call of string * expr list
  | Cond of expr * expr * expr
  | Cast of ty * expr

type stmt = { s : stmt_desc; sid : int }

and stmt_desc =
  | Sexpr of expr
  | Sdecl of ty * string * init option
  | Sif of expr * block * block
  | Sfor of expr option * expr option * expr option * block
  | Swhile of expr * block
  | Sdo of block * expr
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of block
  | Sswitch of expr * switch_case list
  | Scheckpoint of int * ckind

and switch_case = { labels : case_label list; body : block }

and case_label = Lcase of int | Ldefault

and block = stmt list

and init = Iexpr of expr | Ilist of int list

type func = {
  fname : string;
  ret : ty;
  params : (ty * string) list;
  body : block;
}

type global =
  | Gvar of ty * string * init option
  | Gfunc of func

type program = { globals : global list }

let rec sizeof = function
  | Tvoid -> invalid_arg "Ast.sizeof: void has no size"
  | Tint -> 4
  | Tchar -> 1
  | Tptr _ -> 4
  | Tarr (t, n) -> n * sizeof t

let elem_ty = function
  | Tptr t | Tarr (t, _) -> Some t
  | _ -> None

let is_loop s =
  match s.s with Sfor _ | Swhile _ | Sdo _ -> true | _ -> false

let loop_kind s =
  match s.s with
  | Sfor _ -> "for"
  | Swhile _ -> "while"
  | Sdo _ -> "do"
  | _ -> invalid_arg "Ast.loop_kind: not a loop"

let rec iter_stmt f st =
  f st;
  match st.s with
  | Sif (_, a, b) ->
      List.iter (iter_stmt f) a;
      List.iter (iter_stmt f) b
  | Sfor (_, _, _, b) | Swhile (_, b) | Sdo (b, _) | Sblock b ->
      List.iter (iter_stmt f) b
  | Sswitch (_, cases) ->
      List.iter
        (fun (c : switch_case) -> List.iter (iter_stmt f) c.body)
        cases
  | Sexpr _ | Sdecl _ | Sreturn _ | Sbreak | Scontinue | Scheckpoint _ -> ()

let iter_stmts f prog =
  List.iter
    (function
      | Gvar _ -> ()
      | Gfunc fn -> List.iter (iter_stmt f) fn.body)
    prog.globals

let rec iter_expr f e =
  f e;
  match e.e with
  | Int _ | Var _ -> ()
  | Bin (_, a, b) | Assign (a, b) | OpAssign (_, a, b) | Index (a, b) ->
      iter_expr f a;
      iter_expr f b
  | Un (_, a) | Incr (_, a) | Decr (_, a) | Deref a | Addr a | Cast (_, a) ->
      iter_expr f a
  | Call (_, args) -> List.iter (iter_expr f) args
  | Cond (c, a, b) ->
      iter_expr f c;
      iter_expr f a;
      iter_expr f b

let exprs_of_stmt st =
  match st.s with
  | Sexpr e -> [ e ]
  | Sdecl (_, _, Some (Iexpr e)) -> [ e ]
  | Sdecl _ -> []
  | Sif (c, _, _) -> [ c ]
  | Sfor (a, b, c, _) -> List.filter_map Fun.id [ a; b; c ]
  | Swhile (c, _) | Sdo (_, c) -> [ c ]
  | Sreturn (Some e) -> [ e ]
  | Sswitch (e, _) -> [ e ]
  | Sreturn None | Sbreak | Scontinue | Sblock _ | Scheckpoint _ -> []

let iter_exprs f prog =
  iter_stmts (fun st -> List.iter (iter_expr f) (exprs_of_stmt st)) prog

let loops prog =
  let acc = ref [] in
  iter_stmts (fun st -> if is_loop st then acc := st :: !acc) prog;
  List.rev !acc

let find_func prog name =
  List.find_map
    (function Gfunc f when f.fname = name -> Some f | _ -> None)
    prog.globals

(* Structural equality ignoring eid/sid. *)
let rec equal_expr a b =
  match (a.e, b.e) with
  | Int x, Int y -> x = y
  | Var x, Var y -> String.equal x y
  | Bin (o1, a1, b1), Bin (o2, a2, b2) ->
      o1 = o2 && equal_expr a1 a2 && equal_expr b1 b2
  | Un (o1, a1), Un (o2, a2) -> o1 = o2 && equal_expr a1 a2
  | Assign (a1, b1), Assign (a2, b2) -> equal_expr a1 a2 && equal_expr b1 b2
  | OpAssign (o1, a1, b1), OpAssign (o2, a2, b2) ->
      o1 = o2 && equal_expr a1 a2 && equal_expr b1 b2
  | Incr (p1, a1), Incr (p2, a2) | Decr (p1, a1), Decr (p2, a2) ->
      p1 = p2 && equal_expr a1 a2
  | Index (a1, b1), Index (a2, b2) -> equal_expr a1 a2 && equal_expr b1 b2
  | Deref a1, Deref a2 | Addr a1, Addr a2 -> equal_expr a1 a2
  | Call (f1, l1), Call (f2, l2) ->
      String.equal f1 f2
      && List.length l1 = List.length l2
      && List.for_all2 equal_expr l1 l2
  | Cond (c1, a1, b1), Cond (c2, a2, b2) ->
      equal_expr c1 c2 && equal_expr a1 a2 && equal_expr b1 b2
  | Cast (t1, a1), Cast (t2, a2) -> t1 = t2 && equal_expr a1 a2
  | _, _ -> false

let equal_expr_opt a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> equal_expr a b
  | _ -> false

let equal_init a b =
  match (a, b) with
  | Iexpr a, Iexpr b -> equal_expr a b
  | Ilist a, Ilist b -> a = b
  | _ -> false

let equal_init_opt a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> equal_init a b
  | _ -> false

let rec equal_stmt a b =
  match (a.s, b.s) with
  | Sexpr e1, Sexpr e2 -> equal_expr e1 e2
  | Sdecl (t1, n1, i1), Sdecl (t2, n2, i2) ->
      t1 = t2 && String.equal n1 n2 && equal_init_opt i1 i2
  | Sif (c1, a1, b1), Sif (c2, a2, b2) ->
      equal_expr c1 c2 && equal_block a1 a2 && equal_block b1 b2
  | Sfor (a1, b1, c1, bd1), Sfor (a2, b2, c2, bd2) ->
      equal_expr_opt a1 a2 && equal_expr_opt b1 b2 && equal_expr_opt c1 c2
      && equal_block bd1 bd2
  | Swhile (c1, b1), Swhile (c2, b2) -> equal_expr c1 c2 && equal_block b1 b2
  | Sdo (b1, c1), Sdo (b2, c2) -> equal_block b1 b2 && equal_expr c1 c2
  | Sreturn e1, Sreturn e2 -> equal_expr_opt e1 e2
  | Sbreak, Sbreak | Scontinue, Scontinue -> true
  | Sblock b1, Sblock b2 -> equal_block b1 b2
  | Sswitch (e1, c1), Sswitch (e2, c2) ->
      equal_expr e1 e2
      && List.length c1 = List.length c2
      && List.for_all2
           (fun a b -> a.labels = b.labels && equal_block a.body b.body)
           c1 c2
  | Scheckpoint (i1, k1), Scheckpoint (i2, k2) -> i1 = i2 && k1 = k2
  | _, _ -> false

and equal_block a b =
  List.length a = List.length b && List.for_all2 equal_stmt a b

let equal_func a b =
  String.equal a.fname b.fname
  && a.ret = b.ret && a.params = b.params
  && equal_block a.body b.body

let equal_global a b =
  match (a, b) with
  | Gvar (t1, n1, i1), Gvar (t2, n2, i2) ->
      t1 = t2 && String.equal n1 n2 && equal_init_opt i1 i2
  | Gfunc f1, Gfunc f2 -> equal_func f1 f2
  | _ -> false

let equal_program a b =
  List.length a.globals = List.length b.globals
  && List.for_all2 equal_global a.globals b.globals

let rec pp_ty fmt = function
  | Tvoid -> Format.pp_print_string fmt "void"
  | Tint -> Format.pp_print_string fmt "int"
  | Tchar -> Format.pp_print_string fmt "char"
  | Tptr t -> Format.fprintf fmt "%a*" pp_ty t
  | Tarr (t, n) -> Format.fprintf fmt "%a[%d]" pp_ty t n

let string_of_binop = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Shl -> "<<" | Shr -> ">>" | Band -> "&" | Bor -> "|" | Bxor -> "^"
  | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | Land -> "&&" | Lor -> "||"

let string_of_unop = function Neg -> "-" | Lnot -> "!" | Bnot -> "~"

let string_of_ckind = function
  | Loop_enter -> "loop_enter"
  | Body_enter -> "body_enter"
  | Body_exit -> "body_exit"
  | Loop_exit -> "loop_exit"
