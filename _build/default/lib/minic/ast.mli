(** Abstract syntax of MiniC, the C subset FORAY-GEN consumes.

    MiniC covers the constructs that matter for memory-behaviour analysis:
    [for]/[while]/[do] loops, functions, globals and locals, 1-/2-D arrays,
    pointers with C-style scaled arithmetic, and the usual expression
    operators.

    Every expression node carries a unique id ([eid]) assigned by the parser;
    ids of memory-touching expressions play the role of the "instruction
    address" recorded in the profile trace (cf. Figure 4(c) of the paper).
    Every statement node carries a unique id ([sid]); loop statement ids
    identify loops in checkpoints, Table I counts and the static baseline. *)

(** Object types. Array dimensions are element counts. *)
type ty =
  | Tvoid
  | Tint  (** 4 bytes *)
  | Tchar  (** 1 byte *)
  | Tptr of ty
  | Tarr of ty * int

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr | Band | Bor | Bxor
  | Lt | Gt | Le | Ge | Eq | Ne
  | Land | Lor

type unop = Neg | Lnot | Bnot

(** Checkpoint kinds inserted by the instrumentation pass (Step 1 of
    Algorithm 1). [Loop_enter] precedes the loop statement, [Body_enter]
    opens each iteration, [Body_exit] closes it, [Loop_exit] follows the
    loop. *)
type ckind = Loop_enter | Body_enter | Body_exit | Loop_exit

type expr = { e : expr_desc; eid : int }

and expr_desc =
  | Int of int  (** integer literal (also used for char literals) *)
  | Var of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Assign of expr * expr  (** [lhs = rhs]; lhs must be an lvalue *)
  | OpAssign of binop * expr * expr  (** [lhs op= rhs] *)
  | Incr of bool * expr  (** [(pre, lv)]: [++lv] when [pre], else [lv++] *)
  | Decr of bool * expr
  | Index of expr * expr  (** [a\[i\]] *)
  | Deref of expr  (** [*p] *)
  | Addr of expr  (** [&lv] *)
  | Call of string * expr list
  | Cond of expr * expr * expr  (** [c ? a : b] *)
  | Cast of ty * expr

type stmt = { s : stmt_desc; sid : int }

and stmt_desc =
  | Sexpr of expr
  | Sdecl of ty * string * init option
  | Sif of expr * block * block
  | Sfor of expr option * expr option * expr option * block
      (** [for (init; cond; step) body]; the statement id is the loop id *)
  | Swhile of expr * block
  | Sdo of block * expr  (** [do body while (cond);] *)
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of block
  | Sswitch of expr * switch_case list
      (** C [switch] with fallthrough; [break] leaves the switch *)
  | Scheckpoint of int * ckind
      (** instrumentation marker; the int is the loop (statement) id *)

and switch_case = {
  labels : case_label list;  (** the labels stacked on this group *)
  body : block;
}

and case_label = Lcase of int | Ldefault

and block = stmt list

and init = Iexpr of expr | Ilist of int list  (** array initializer *)

type func = {
  fname : string;
  ret : ty;
  params : (ty * string) list;
  body : block;
}

type global =
  | Gvar of ty * string * init option
  | Gfunc of func

type program = { globals : global list }

(** {1 Type helpers} *)

(** Byte size of an object of type [t]. Pointers are 4 bytes (32-bit
    simulated machine). Raises [Invalid_argument] on [Tvoid]. *)
val sizeof : ty -> int

(** The element type a value of type [t] points at / indexes to.
    [None] when [t] is not a pointer or array. *)
val elem_ty : ty -> ty option

(** [is_loop s] is true for [Sfor]/[Swhile]/[Sdo]. *)
val is_loop : stmt -> bool

(** Human-readable kind of a loop statement: ["for"], ["while"] or ["do"].
    Raises [Invalid_argument] on non-loops. *)
val loop_kind : stmt -> string

(** {1 Traversal} *)

(** [iter_stmts f prog] applies [f] to every statement in the program,
    pre-order, including statements nested in loop and branch bodies. *)
val iter_stmts : (stmt -> unit) -> program -> unit

(** [iter_exprs f prog] applies [f] to every expression node, pre-order. *)
val iter_exprs : (expr -> unit) -> program -> unit

(** All loops of the program in pre-order. *)
val loops : program -> stmt list

(** Looks up a function by name. *)
val find_func : program -> string -> func option

(** {1 Structural equality modulo node ids}

    The parser assigns fresh ids on every parse, so printing a program and
    re-parsing it yields equal structure but different ids. These
    comparisons are what the round-trip property tests use. *)

val equal_expr : expr -> expr -> bool
val equal_stmt : stmt -> stmt -> bool
val equal_program : program -> program -> bool

(** {1 Pretty-printing of small pieces} *)

val pp_ty : Format.formatter -> ty -> unit
val string_of_binop : binop -> string
val string_of_unop : unop -> string
val string_of_ckind : ckind -> string
