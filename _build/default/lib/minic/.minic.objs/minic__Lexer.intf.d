lib/minic/lexer.mli:
