lib/minic/builtins.mli:
