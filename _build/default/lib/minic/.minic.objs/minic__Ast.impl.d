lib/minic/ast.ml: Format Fun List String
