lib/minic/sema.mli: Ast Format
