lib/minic/lexer.ml: Char List Printf String
