lib/minic/sema.ml: Ast Builtins Format Hashtbl List Option Printf Set String
