lib/sim/interp.mli: Foray_trace Minic
