lib/sim/interp.ml: Foray_trace Hashtbl List Minic Minic_machine Option Printf
