let page_bits = 12
let page_size = 1 lsl page_bits

type t = (int, Bytes.t) Hashtbl.t

let create () : t = Hashtbl.create 64

let page (m : t) a =
  let key = a asr page_bits in
  match Hashtbl.find_opt m key with
  | Some p -> p
  | None ->
      let p = Bytes.make page_size '\000' in
      Hashtbl.add m key p;
      p

let read_byte m a = Char.code (Bytes.get (page m a) (a land (page_size - 1)))

let write_byte m a v =
  Bytes.set (page m a) (a land (page_size - 1)) (Char.chr (v land 0xff))

let sign_extend w v =
  match w with
  | 1 -> if v land 0x80 <> 0 then v - 0x100 else v
  | 4 -> if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v
  | _ -> v

let read m a w =
  let v = ref 0 in
  for i = w - 1 downto 0 do
    v := (!v lsl 8) lor read_byte m (a + i)
  done;
  sign_extend w !v

let write m a w v =
  for i = 0 to w - 1 do
    write_byte m (a + i) ((v lsr (8 * i)) land 0xff)
  done

let pages (m : t) = Hashtbl.length m
