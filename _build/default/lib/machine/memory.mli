(** Sparse byte-addressable memory of the simulated 32-bit machine.

    Backed by a hash table of 4 KiB pages so footprints far apart (globals
    vs stack vs heap) stay cheap. Uninitialized bytes read as zero, which is
    convenient for zero-initialized global segments. *)

type t

val create : unit -> t

(** [read_byte m a] is the byte at address [a] (0 when never written). *)
val read_byte : t -> int -> int

(** [write_byte m a v] stores [v land 0xff] at [a]. *)
val write_byte : t -> int -> int -> unit

(** [read m a w] reads a [w]-byte little-endian value ([w] in 1..8),
    sign-extended for widths 1 and 4 to match C [char]/[int] semantics. *)
val read : t -> int -> int -> int

(** [write m a w v] stores the low [w] bytes of [v] little-endian. *)
val write : t -> int -> int -> int -> unit

(** Number of 4 KiB pages materialized (for space diagnostics). *)
val pages : t -> int
