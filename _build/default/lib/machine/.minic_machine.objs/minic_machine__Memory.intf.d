lib/machine/memory.mli:
