lib/machine/layout.ml:
