lib/machine/layout.mli:
