type t = {
  mutable gptr : int;
  mutable hptr : int;
  mutable sptr : int;
}

let global_base = 0x1000_0000
let heap_base = 0x4000_0000
let stack_base = 0x7fff_f000

(* Segment capacity limits; generous for simulated workloads. *)
let global_limit = 0x2000_0000
let heap_limit = 0x6000_0000
let stack_limit = 0x7000_0000

exception Out_of_memory of string

let create () = { gptr = global_base; hptr = heap_base; sptr = stack_base }

let align_up a n = (a + n - 1) / n * n

let alloc_global t ~size ~align =
  let base = align_up t.gptr align in
  if base + size > global_limit then raise (Out_of_memory "global segment");
  t.gptr <- base + size;
  base

let alloc_heap t ~size =
  let base = align_up t.hptr 8 in
  if base + size > heap_limit then raise (Out_of_memory "heap");
  t.hptr <- base + size;
  base

let alloc_stack t ~size ~align =
  let base = t.sptr - size in
  let base = base - (base mod align + align) mod align in
  if base < stack_limit then raise (Out_of_memory "stack");
  t.sptr <- base;
  base

let sp t = t.sptr
let restore_sp t saved = t.sptr <- saved

let segment_of addr =
  if addr >= global_base && addr < global_limit then "global"
  else if addr >= heap_base && addr < heap_limit then "heap"
  else if addr >= stack_limit && addr < stack_base then "stack"
  else "unmapped"
