(** Address-space layout of the simulated machine.

    Three classic segments of a 32-bit embedded process:
    - globals grow up from [global_base] (0x1000_0000),
    - the heap grows up from [heap_base] (0x4000_0000),
    - the stack grows down from [stack_base] (0x7fff_f000),

    matching the address magnitudes visible in the paper's Figure 4(c)
    (stack addresses around 0x7fff_xxxx, code around 0x0040_xxxx). *)

type t

val global_base : int
val heap_base : int
val stack_base : int

exception Out_of_memory of string

val create : unit -> t

(** [alloc_global t ~size ~align] reserves [size] bytes in the global
    segment and returns the base address. *)
val alloc_global : t -> size:int -> align:int -> int

(** [alloc_heap t ~size] models [malloc]; 8-byte aligned. *)
val alloc_heap : t -> size:int -> int

(** [alloc_stack t ~size ~align] pushes [size] bytes onto the stack and
    returns the (lowest) address of the new object. *)
val alloc_stack : t -> size:int -> align:int -> int

(** Current stack pointer (for saving across calls). *)
val sp : t -> int

(** [restore_sp t saved] pops the stack back to a previously saved pointer. *)
val restore_sp : t -> int -> unit

(** [segment_of t addr] names the segment an address falls in:
    ["global"], ["heap"], ["stack"] or ["unmapped"]. *)
val segment_of : int -> string
