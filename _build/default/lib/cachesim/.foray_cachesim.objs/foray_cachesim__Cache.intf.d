lib/cachesim/cache.mli: Foray_trace
