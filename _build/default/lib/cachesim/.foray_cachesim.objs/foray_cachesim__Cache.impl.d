lib/cachesim/cache.ml: Array Foray_trace
