lib/instrument/annotate.mli: Minic
