lib/instrument/annotate.ml: List Minic
