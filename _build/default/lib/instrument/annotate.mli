(** Step 1 of Algorithm 1: checkpoint annotation.

    Wraps every loop of the program with checkpoint markers, reproducing the
    paper's Figure 4(b):

    {v
    { __checkpoint(L, loop_enter);
      while (cond) {
        __checkpoint(L, body_enter);
        ...original body...
        __checkpoint(L, body_exit);
      }
      __checkpoint(L, loop_exit);
    }
    v}

    where [L] is the loop's statement id. [loop_exit] (our addition over the
    paper's three checkpoint kinds) makes the trace analyzer robust to
    [break]: the marker after the loop still executes when the body is left
    early. Checkpoint statements are ordinary MiniC statements, so an
    instrumented program prints, parses and simulates like any other. *)

(** [program p] returns an instrumented copy of [p]. Already-present
    checkpoints are preserved (instrumentation is not idempotent; apply it
    to pristine programs). Statement ids of inserted checkpoints are fresh
    negative numbers so they never collide with parser-assigned ids. *)
val program : Minic.Ast.program -> Minic.Ast.program

(** [loop_table p] maps each loop id of the pristine program to its loop
    kind ("for" / "while" / "do"), for Table I style reporting. *)
val loop_table : Minic.Ast.program -> (int * string) list
