open Minic.Ast

type result = {
  canonical_loops : int list;
  total_loops : int list;
  analyzable_refs : int list;
}

(* --- iterator recognition ------------------------------------------- *)

(* The candidate iterator of a for-loop step expression. *)
let step_iterator (step : expr option) =
  match step with
  | Some { e = Incr (_, { e = Var v; _ }); _ }
  | Some { e = Decr (_, { e = Var v; _ }); _ } ->
      Some v
  | Some { e = OpAssign ((Add | Sub), { e = Var v; _ }, delta); _ } -> (
      match Static_affine.const_of_expr delta with
      | Some c when c <> 0 -> Some v
      | _ -> None)
  | Some
      {
        e =
          Assign
            ( { e = Var v; _ },
              { e = Bin ((Add | Sub), { e = Var v'; _ }, delta); _ } );
        _;
      }
    when v = v' -> (
      match Static_affine.const_of_expr delta with
      | Some c when c <> 0 -> Some v
      | _ -> None)
  | _ -> None

(* Does the condition compare the iterator against a loop-invariant bound?
   We accept bounds that are constants or variables other than the iterator
   (invariance of the bound variable is checked by the no-write rule over
   the body). *)
let cond_uses_iterator v (cond : expr option) =
  match cond with
  | Some { e = Bin ((Lt | Le | Gt | Ge | Ne), { e = Var v'; _ }, bound); _ }
    when v' = v ->
      let rec simple (b : expr) =
        match b.e with
        | Int _ -> true
        | Var w -> w <> v
        | Bin ((Add | Sub | Mul | Shl | Shr | Div), a, c) -> simple a && simple c
        | Un (Neg, a) -> simple a
        | _ -> false
      in
      simple bound
  | _ -> false

(* Is variable [v] written or address-taken anywhere in this statement
   list (loop body)? *)
let modifies_var v body =
  let found = ref false in
  let check_expr e =
    let rec go (e : expr) =
      (match e.e with
      | Assign ({ e = Var w; _ }, _)
      | OpAssign (_, { e = Var w; _ }, _)
      | Incr (_, { e = Var w; _ })
      | Decr (_, { e = Var w; _ })
      | Addr { e = Var w; _ } ->
          if w = v then found := true
      | _ -> ());
      match e.e with
      | Int _ | Var _ -> ()
      | Bin (_, a, b) | Assign (a, b) | OpAssign (_, a, b) | Index (a, b) ->
          go a; go b
      | Un (_, a) | Incr (_, a) | Decr (_, a) | Deref a | Addr a | Cast (_, a) ->
          go a
      | Call (_, args) -> List.iter go args
      | Cond (c, a, b) -> go c; go a; go b
    in
    go e
  in
  let rec go_stmt st =
    (match st.s with
    | Sexpr e -> check_expr e
    | Sdecl (_, _, Some (Iexpr e)) -> check_expr e
    | Sdecl _ -> ()
    | Sif (c, a, b) ->
        check_expr c;
        List.iter go_stmt a;
        List.iter go_stmt b
    | Sfor (i, c, s, b) ->
        Option.iter check_expr i;
        Option.iter check_expr c;
        Option.iter check_expr s;
        List.iter go_stmt b
    | Swhile (c, b) ->
        check_expr c;
        List.iter go_stmt b
    | Sdo (b, c) ->
        List.iter go_stmt b;
        check_expr c
    | Sreturn (Some e) -> check_expr e
    | Sreturn None | Sbreak | Scontinue | Scheckpoint _ -> ()
    | Sswitch (scrut, cases) ->
        check_expr scrut;
        List.iter (fun (c : switch_case) -> List.iter go_stmt c.body) cases
    | Sblock b -> List.iter go_stmt b);
    ()
  in
  List.iter go_stmt body;
  !found

(* --- analysis proper ------------------------------------------------- *)

type env = {
  mutable arrays : string list list;  (* scope stack of declared arrays *)
  mutable iters : (string * int) list;  (* canonical iterator -> loop id *)
  mutable all_canonical : bool;  (* every enclosing loop canonical so far *)
  mutable canonical_loops : int list;
  mutable total_loops : int list;
  mutable analyzable : int list;
}

let is_array env name = List.exists (List.mem name) env.arrays

(* Collect the statically analyzable references inside an expression.
   Outer-to-inner index chains: A[i][j] is Index (Index (Var A, i), j);
   the outermost Index's eid is the trace site. *)
let rec scan_expr ?(in_base = false) env (e : expr) =
  (match e.e with
  | Index _ when env.all_canonical && not in_base -> (
      match index_chain e with
      | Some (base, idxs) when is_array env base ->
          let iters = List.map fst env.iters in
          if
            List.for_all
              (fun i -> Static_affine.of_expr ~iters i <> None)
              idxs
          then env.analyzable <- e.eid :: env.analyzable
      | _ -> ())
  | _ -> ());
  (* recurse into children, including index subexpressions; the base of
     an index chain is an address computation, not a memory access *)
  match e.e with
  | Int _ | Var _ -> ()
  | Index (a, b) ->
      scan_expr ~in_base:true env a;
      scan_expr env b
  | Bin (_, a, b) | Assign (a, b) | OpAssign (_, a, b) ->
      scan_expr env a;
      scan_expr env b
  | Un (_, a) | Incr (_, a) | Decr (_, a) | Deref a | Addr a | Cast (_, a) ->
      scan_expr env a
  | Call (_, args) -> List.iter (scan_expr env) args
  | Cond (c, a, b) ->
      scan_expr env c;
      scan_expr env a;
      scan_expr env b

and index_chain (e : expr) =
  (* Some (base_var, [outermost_index; ...]) for chains rooted at a Var. *)
  match e.e with
  | Index (base, idx) -> (
      match base.e with
      | Var v -> Some (v, [ idx ])
      | Index _ ->
          Option.map (fun (v, l) -> (v, l @ [ idx ])) (index_chain base)
      | _ -> None)
  | _ -> None

let rec scan_stmt env st =
  match st.s with
  | Sexpr e -> scan_expr env e
  | Sdecl (ty, name, init) ->
      (match init with Some (Iexpr e) -> scan_expr env e | _ -> ());
      (match ty with
      | Tarr _ -> (
          match env.arrays with
          | scope :: rest -> env.arrays <- (name :: scope) :: rest
          | [] -> assert false)
      | _ -> ())
  | Sif (c, a, b) ->
      scan_expr env c;
      scan_block env a;
      scan_block env b
  | Sfor (init, cond, step, body) -> (
      env.total_loops <- st.sid :: env.total_loops;
      Option.iter (scan_expr env) init;
      Option.iter (scan_expr env) cond;
      Option.iter (scan_expr env) step;
      let canonical_iter =
        match step_iterator step with
        | Some v
          when cond_uses_iterator v cond && not (modifies_var v body) ->
            Some v
        | _ -> None
      in
      match canonical_iter with
      | Some v ->
          env.canonical_loops <- st.sid :: env.canonical_loops;
          let saved = (env.iters, env.all_canonical) in
          env.iters <- (v, st.sid) :: env.iters;
          scan_block env body;
          let it, ac = saved in
          env.iters <- it;
          env.all_canonical <- ac
      | None ->
          let saved = env.all_canonical in
          env.all_canonical <- false;
          scan_block env body;
          env.all_canonical <- saved)
  | Swhile (c, body) ->
      env.total_loops <- st.sid :: env.total_loops;
      scan_expr env c;
      let saved = env.all_canonical in
      env.all_canonical <- false;
      scan_block env body;
      env.all_canonical <- saved
  | Sdo (body, c) ->
      env.total_loops <- st.sid :: env.total_loops;
      let saved = env.all_canonical in
      env.all_canonical <- false;
      scan_block env body;
      env.all_canonical <- saved;
      scan_expr env c
  | Sreturn (Some e) -> scan_expr env e
  | Sreturn None | Sbreak | Scontinue | Scheckpoint _ -> ()
  | Sblock b -> scan_block env b
  | Sswitch (scrut, cases) ->
      scan_expr env scrut;
      List.iter (fun (c : switch_case) -> scan_block env c.body) cases

and scan_block env b =
  env.arrays <- [] :: env.arrays;
  List.iter (scan_stmt env) b;
  env.arrays <- List.tl env.arrays

let analyze (prog : program) =
  let env =
    {
      arrays = [ [] ];
      iters = [];
      all_canonical = true;
      canonical_loops = [];
      total_loops = [];
      analyzable = [];
    }
  in
  (* global arrays are visible everywhere *)
  List.iter
    (function
      | Gvar (Tarr _, name, _) -> (
          match env.arrays with
          | scope :: rest -> env.arrays <- (name :: scope) :: rest
          | [] -> assert false)
      | _ -> ())
    prog.globals;
  List.iter
    (function
      | Gvar _ -> ()
      | Gfunc f ->
          env.iters <- [];
          env.all_canonical <- true;
          scan_block env f.body)
    prog.globals;
  {
    canonical_loops = List.sort_uniq compare env.canonical_loops;
    total_loops = List.sort_uniq compare env.total_loops;
    analyzable_refs = List.sort_uniq compare env.analyzable;
  }

let loop_canonical (r : result) lid = List.mem lid r.canonical_loops
let ref_analyzable (r : result) eid = List.mem eid r.analyzable_refs
