(** Symbolic affine analysis of MiniC index expressions.

    Decides whether an expression is an affine function
    [const + Σ ci * vi] of a given set of iterator variables, and extracts
    the coefficients. This is the expression engine of the static baseline
    analyzer (the class of analysis the SPM techniques the paper cites can
    perform on source code). *)

type aff = {
  const : int;
  coeffs : (string * int) list;  (** iterator -> coefficient; no zeros *)
}

(** [of_expr ~iters e] is [Some aff] when [e] is affine in the variables of
    [iters] with all other leaves being integer literals; [None] otherwise.
    Handles [+], [-], unary minus, multiplication with a constant side,
    left shift by a constant, and parenthesization (implicit in the AST). *)
val of_expr : iters:string list -> Minic.Ast.expr -> aff option

(** Purely constant expressions (affine with no iterators). *)
val const_of_expr : Minic.Ast.expr -> int option

val equal : aff -> aff -> bool
val pp : Format.formatter -> aff -> unit
