(** The static baseline: source-level FORAY-form recognition.

    Models what the compile-time SPM analyses the paper cites
    ([5][6][7]) can see {e without} FORAY-GEN:

    - a loop is {e canonical} when it is a [for] loop with a recognizable
      integer iterator: condition [i < e], [i <= e], [i > e] or [i >= e]
      against a loop-invariant bound, step [i++], [i--], [i += c] or
      [i -= c] with constant [c], and [i] not otherwise written (nor
      address-taken) in the body;
    - a reference is {e statically analyzable} when it indexes a declared
      array (not a pointer) with index expressions affine in the canonical
      iterators of all its enclosing loops, and every enclosing loop in the
      function is canonical.

    Pointer walks, [while]/[do] loops and data-dependent offsets — the
    patterns of Figure 1 — all fail these tests, which is exactly the gap
    FORAY-GEN closes. The analysis is intra-procedural, like the cited
    techniques. *)

type result = {
  canonical_loops : int list;  (** loop ids in canonical for form *)
  total_loops : int list;  (** all loop ids *)
  analyzable_refs : int list;
      (** expression ids of statically analyzable array references; these
          are the same ids the simulator uses as trace sites *)
}

val analyze : Minic.Ast.program -> result

(** [loop_canonical r lid] and [ref_analyzable r eid] are membership
    tests over {!result}. *)
val loop_canonical : result -> int -> bool

val ref_analyzable : result -> int -> bool
