lib/staticana/baseline.ml: List Minic Option Static_affine
