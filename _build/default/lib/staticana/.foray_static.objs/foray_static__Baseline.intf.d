lib/staticana/baseline.mli: Minic
