lib/staticana/static_affine.mli: Format Minic
