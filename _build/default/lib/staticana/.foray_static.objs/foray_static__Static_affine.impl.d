lib/staticana/static_affine.ml: Format List Minic Option String
