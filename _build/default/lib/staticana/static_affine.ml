open Minic.Ast

type aff = { const : int; coeffs : (string * int) list }

let norm coeffs =
  coeffs
  |> List.filter (fun (_, c) -> c <> 0)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let add a b =
  let merged =
    List.fold_left
      (fun acc (v, c) ->
        match List.assoc_opt v acc with
        | Some c0 -> (v, c0 + c) :: List.remove_assoc v acc
        | None -> (v, c) :: acc)
      a.coeffs b.coeffs
  in
  { const = a.const + b.const; coeffs = norm merged }

let scale k a =
  { const = k * a.const; coeffs = norm (List.map (fun (v, c) -> (v, k * c)) a.coeffs) }

let rec of_expr ~iters (e : expr) : aff option =
  match e.e with
  | Int n -> Some { const = n; coeffs = [] }
  | Var v when List.mem v iters -> Some { const = 0; coeffs = [ (v, 1) ] }
  | Var _ -> None
  | Un (Neg, a) -> Option.map (scale (-1)) (of_expr ~iters a)
  | Bin (Add, a, b) -> (
      match (of_expr ~iters a, of_expr ~iters b) with
      | Some x, Some y -> Some (add x y)
      | _ -> None)
  | Bin (Sub, a, b) -> (
      match (of_expr ~iters a, of_expr ~iters b) with
      | Some x, Some y -> Some (add x (scale (-1) y))
      | _ -> None)
  | Bin (Mul, a, b) -> (
      match (of_expr ~iters a, of_expr ~iters b) with
      | Some x, Some y when y.coeffs = [] -> Some (scale y.const x)
      | Some x, Some y when x.coeffs = [] -> Some (scale x.const y)
      | _ -> None)
  | Bin (Shl, a, b) -> (
      match (of_expr ~iters a, of_expr ~iters b) with
      | Some x, Some y when y.coeffs = [] && y.const >= 0 && y.const < 31 ->
          Some (scale (1 lsl y.const) x)
      | _ -> None)
  | Cast ((Tint | Tchar), a) -> of_expr ~iters a
  | _ -> None

let const_of_expr e =
  match of_expr ~iters:[] e with
  | Some { const; coeffs = [] } -> Some const
  | _ -> None

let equal a b = a.const = b.const && norm a.coeffs = norm b.coeffs

let pp fmt a =
  Format.fprintf fmt "%d" a.const;
  List.iter (fun (v, c) -> Format.fprintf fmt " + %d*%s" c v) a.coeffs
