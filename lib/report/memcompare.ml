module Cache = Foray_cachesim.Cache
module Energy = Foray_spm.Energy
module Tablefmt = Foray_util.Tablefmt

type result = {
  name : string;
  accesses : int;
  cache_hit_rate : float;
  cache_energy : float;
  spm_energy : float;
  main_energy : float;
  spm_buffers : int;
}

let run ?(cache_config = Cache.default_config) (b : Foray_suite.Suite.bench)
    ~capacity =
  Foray_obs.Span.with_span ~cat:"report" "memcompare.run"
    ~args:[ ("bench", b.name); ("capacity", string_of_int capacity) ]
  @@ fun () ->
  let cache_config = { cache_config with Cache.size_bytes = capacity } in
  let cache = Cache.create cache_config in
  let prog = Minic.Parser.program b.source in
  Minic.Sema.check_exn prog;
  let instrumented = Foray_instrument.Annotate.program prog in
  (* one simulation feeds the FORAY analysis and the cache *)
  let tree = Foray_core.Looptree.create () in
  let tstats = Foray_trace.Tstats.create () in
  let sink =
    Foray_trace.Event.tee
      (Foray_trace.Event.tee (Foray_core.Looptree.sink tree)
         (Foray_trace.Tstats.sink tstats))
      (Cache.sink cache)
  in
  (* Named scalars live in registers on a real compiled target, so they
     are excluded from the memory-organization comparison: both the cache
     and the SPM see array/pointer traffic only. *)
  let config =
    { Minic_sim.Interp.default_config with trace_scalars = false }
  in
  let _ = Minic_sim.Interp.run ~config instrumented ~sink in
  let model = Foray_core.Model.of_tree tree in
  let total = Foray_trace.Tstats.total_accesses tstats in
  (* cache organization *)
  let cs = Cache.stats cache in
  Cache.flush_metrics ~label:(Printf.sprintf "%dB" capacity) cache;
  let line = cache_config.Cache.line_bytes in
  (* line transfers are per-line traffic: fills + dirty write-backs *)
  let cache_energy =
    (float_of_int cs.accesses
    *. Energy.cache_access ~bytes:capacity ~assoc:cache_config.Cache.assoc)
    +. (float_of_int (cs.line_fills + cs.writebacks) *. Energy.line_transfer ~line_bytes:line)
  in
  (* SPM organization: optimal buffers at this capacity, rest from main *)
  let cands = Foray_spm.Reuse.candidates model in
  let sel = Foray_spm.Dse.select_optimal cands ~spm_bytes:capacity in
  let served =
    List.fold_left (fun a (c : Foray_spm.Reuse.candidate) -> a + c.accesses)
      0 sel.chosen
  in
  let spm_energy =
    List.fold_left
      (fun a c -> a +. Foray_spm.Reuse.energy c ~spm_bytes:capacity)
      0.0 sel.chosen
    +. Energy.baseline (total - served)
  in
  {
    name = b.name;
    accesses = total;
    cache_hit_rate = Cache.hit_rate cache;
    cache_energy;
    spm_energy;
    main_energy = Energy.baseline total;
    spm_buffers = List.length sel.chosen;
  }

let table ~capacity results =
  let t =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "Memory energy, %d-byte on-chip budget (nJ; lower is better)"
           capacity)
      [ "Benchmark"; "accesses"; "all-main"; "cache"; "hit%"; "SPM"; "bufs";
        "SPM vs cache" ]
  in
  List.iter
    (fun r ->
      Tablefmt.row t
        [
          r.name;
          Foray_util.Stats.human r.accesses;
          Printf.sprintf "%.0f" r.main_energy;
          Printf.sprintf "%.0f" r.cache_energy;
          Printf.sprintf "%.0f%%" (100.0 *. r.cache_hit_rate);
          Printf.sprintf "%.0f" r.spm_energy;
          string_of_int r.spm_buffers;
          (if r.spm_energy < r.cache_energy then
             Printf.sprintf "SPM wins %.1fx" (r.cache_energy /. r.spm_energy)
           else
             Printf.sprintf "cache wins %.1fx" (r.spm_energy /. r.cache_energy));
        ])
    results;
  Tablefmt.render t
