module Pipeline = Foray_core.Pipeline
module Model = Foray_core.Model
module Baseline = Foray_static.Baseline
module Tstats = Foray_trace.Tstats
module Stats = Foray_util.Stats
module Tablefmt = Foray_util.Tablefmt

type bench_report = {
  name : string;
  lines : int;
  loops_total : int;
  loops_for : int;
  loops_while : int;
  loops_do : int;
  model_loops : int;
  model_refs : int;
  loops_not_foray : int;
  refs_not_foray : int;
  refs_total : int;
  accesses_total : int;
  footprint_total : int;
  model_sites : int;
  model_accesses : int;
  model_footprint : int;
  sys_sites : int;
  sys_accesses : int;
  sys_footprint : int;
  other_footprint : int;
  hints : int;
}

(* Model loops and refs against the static baseline. *)
let rec fold_model_loops f acc (l : Model.mloop) =
  let acc = f acc l in
  List.fold_left (fold_model_loops f) acc l.subs

let report ?thresholds (b : Foray_suite.Suite.bench) =
  Foray_obs.Span.with_span ~cat:"report" "report.bench"
    ~args:[ ("bench", b.name) ]
  @@ fun () ->
  let r =
    match Pipeline.run_source ?thresholds b.source with
    | Ok o -> o.Pipeline.result
    | Error e -> Foray_core.Error.raise_error e
  in
  let static = Baseline.analyze r.program in
  (* Table I: loops that executed (distinct source loops seen in the tree) *)
  let executed_lids =
    List.sort_uniq compare
      (List.map (fun (n : Foray_core.Looptree.node) -> n.lid)
         (Foray_core.Looptree.nodes r.tree))
  in
  let kind_of lid = List.assoc_opt lid r.loop_kinds in
  let count k =
    List.length (List.filter (fun l -> kind_of l = Some k) executed_lids)
  in
  (* Table II *)
  let model_loops = Model.n_loops r.model in
  let model_refs = Model.n_refs r.model in
  let loops_not_foray =
    List.fold_left
      (fold_model_loops (fun acc (l : Model.mloop) ->
           if Baseline.loop_canonical static l.lid then acc else acc + 1))
      0 r.model.loops
  in
  let refs_not_foray =
    List.length
      (List.filter
         (fun (_, (mr : Model.mref)) ->
           not (Baseline.ref_analyzable static mr.site))
         (Model.all_refs r.model))
  in
  (* Table III *)
  let in_model site = List.mem site r.model.sites in
  let classify (s : Tstats.site_info) =
    if in_model s.site then `Model else if s.sys then `Sys else `Other
  in
  let groups = Tstats.group r.tstats ~classify in
  let get k = Option.value (List.assoc_opt k groups) ~default:(0, 0, 0) in
  let m_n, m_a, m_f = get `Model in
  let s_n, s_a, s_f = get `Sys in
  let _, _, o_f = get `Other in
  {
    name = b.name;
    lines = Foray_suite.Suite.lines b;
    loops_total = List.length executed_lids;
    loops_for = count "for";
    loops_while = count "while";
    loops_do = count "do";
    model_loops;
    model_refs;
    loops_not_foray;
    refs_not_foray;
    refs_total = Tstats.n_sites r.tstats;
    accesses_total = Tstats.total_accesses r.tstats;
    footprint_total = Tstats.total_footprint r.tstats;
    model_sites = m_n;
    model_accesses = m_a;
    model_footprint = m_f;
    sys_sites = s_n;
    sys_accesses = s_a;
    sys_footprint = s_f;
    other_footprint = o_f;
    hints = List.length (Pipeline.hints r);
  }

let report_all ?thresholds ?(jobs = 1) () =
  Foray_util.Parallel.map ~jobs (fun b -> report ?thresholds b)
    Foray_suite.Suite.all

let pct = Stats.percent

let table1 reports =
  let t =
    Tablefmt.create
      ~title:"Table I. Benchmark complexity and loop distribution"
      [ "Benchmark"; "Lines"; "Loops"; "for"; "while"; "do" ]
  in
  List.iter
    (fun r ->
      Tablefmt.row t
        [
          r.name;
          string_of_int r.lines;
          string_of_int r.loops_total;
          Tablefmt.pctf (pct r.loops_for r.loops_total);
          Tablefmt.pctf (pct r.loops_while r.loops_total);
          Tablefmt.pctf (pct r.loops_do r.loops_total);
        ])
    reports;
  Tablefmt.render t

let table2 reports =
  let t =
    Tablefmt.create
      ~title:
        "Table II. Loops and references converted into FORAY form \
         (counts = in model; %% = not in FORAY form in the source)"
      [ "Benchmark"; "Loops"; "Refs"; "Loops not FORAY"; "Refs not FORAY" ]
  in
  List.iter
    (fun r ->
      Tablefmt.row t
        [
          r.name;
          string_of_int r.model_loops;
          string_of_int r.model_refs;
          Tablefmt.pctf (pct r.loops_not_foray r.model_loops);
          Tablefmt.pctf (pct r.refs_not_foray r.model_refs);
        ])
    reports;
  Tablefmt.render t

let table3 reports =
  let t =
    Tablefmt.create
      ~title:
        "Table III. Memory behavior of the FORAY models \
         (percentages of the totals)"
      [
        "Benchmark"; "Refs"; "Accesses"; "Footprint"; "mRef"; "mAcc"; "mFp";
        "sRef"; "sAcc"; "sFp"; "oFp";
      ]
  in
  List.iter
    (fun r ->
      Tablefmt.row t
        [
          r.name;
          string_of_int r.refs_total;
          Stats.human r.accesses_total;
          string_of_int r.footprint_total;
          Tablefmt.pctf (pct r.model_sites r.refs_total);
          Tablefmt.pctf (pct r.model_accesses r.accesses_total);
          Tablefmt.pctf (pct r.model_footprint r.footprint_total);
          Tablefmt.pctf (pct r.sys_sites r.refs_total);
          Tablefmt.pctf (pct r.sys_accesses r.accesses_total);
          Tablefmt.pctf (pct r.sys_footprint r.footprint_total);
          Tablefmt.pctf (pct r.other_footprint r.footprint_total);
        ])
    reports;
  Tablefmt.render t

let headline reports =
  let t =
    Tablefmt.create
      ~title:
        "Headline: references analyzable with FORAY-GEN vs. static analysis \
         alone"
      [ "Benchmark"; "FORAY-GEN"; "Static only"; "Increase" ]
  in
  let ratios =
    List.filter_map
      (fun r ->
        let static_only = r.model_refs - r.refs_not_foray in
        Tablefmt.row t
          [
            r.name;
            string_of_int r.model_refs;
            string_of_int static_only;
            (if static_only = 0 then "inf"
             else
               Printf.sprintf "%.2fx"
                 (float_of_int r.model_refs /. float_of_int static_only));
          ];
        if static_only = 0 then None
        else Some (float_of_int r.model_refs /. float_of_int static_only))
      reports
  in
  let avg =
    if ratios = [] then 0.0
    else List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios)
  in
  Tablefmt.separator t;
  Tablefmt.row t
    [ "average"; ""; ""; Printf.sprintf "%.2fx (finite rows)" avg ];
  Tablefmt.render t
