module Affine = Foray_core.Affine
module Filter = Foray_core.Filter
module Looptree = Foray_core.Looptree
module Model = Foray_core.Model
module Pipeline = Foray_core.Pipeline
module Provenance = Foray_core.Provenance
module Tablefmt = Foray_util.Tablefmt

type ref_story = {
  uid : int;
  site : int;
  path : int list;
  depth : int;
  kept : bool;
  reason : Provenance.purge_reason option;
  expr : string;
  execs : int;
  locations : int;
  mispredictions : int;
  events : Provenance.event list;
}

type t = {
  name : string;
  thresholds : Filter.thresholds;
  refs : ref_story list;
  model_c : string;
}

let rec path_of (n : Looptree.node) acc =
  match n.Looptree.parent with
  | None -> acc
  | Some p -> path_of p (n.Looptree.lid :: acc)

let derivation_line events =
  let solved = ref [] and mis = ref 0 in
  List.iter
    (fun e ->
      match e with
      | Provenance.Coeff_solved { exec; iter; coeff; _ } ->
          if not (List.exists (fun (i, _, _) -> i = iter) !solved) then
            solved := (iter, coeff, exec) :: !solved
      | Provenance.Mispredicted _ -> incr mis
      | _ -> ())
    events;
  if !solved = [] && !mis = 0 then None
  else
    let coeffs =
      List.sort compare !solved
      |> List.map (fun (i, c, e) ->
             Printf.sprintf "C%d=%d @exec %d" (i + 1) c e)
    in
    let mis_part =
      Printf.sprintf "%d misprediction%s" !mis (if !mis = 1 then "" else "s")
    in
    Some (String.concat "; " (coeffs @ [ mis_part ]))

let story_of_ref thresholds ((node, r) : Looptree.node * Looptree.refinfo) =
  let aff = r.Looptree.aff in
  let uid = Affine.uid aff in
  let events =
    match Provenance.story uid with Some s -> s.events | None -> []
  in
  let kept, reason = Filter.verdict thresholds r in
  let expr = Model.expr_of_ref (Model.mref_of_info node r) in
  {
    uid;
    site = Affine.site aff;
    path = path_of node [];
    depth = Affine.depth aff;
    kept;
    reason;
    expr;
    execs = Affine.execs aff;
    locations = Foray_util.Iset.cardinal r.Looptree.starts;
    mispredictions = Affine.mispredictions aff;
    events;
  }

let run_source ?(name = "program") ?(thresholds = Filter.default) src =
  let was = Provenance.enabled () in
  Provenance.reset ();
  Provenance.set_enabled true;
  let restore () = Provenance.set_enabled was in
  let r =
    match Pipeline.run_source ~thresholds src with
    | Ok o -> o.Pipeline.result
    | Error e ->
        restore ();
        Foray_core.Error.raise_error e
    | exception e ->
        restore ();
        raise e
  in
  let refs =
    List.map (story_of_ref thresholds) (Looptree.refs r.tree)
    |> List.sort (fun a b -> compare (a.site, a.uid) (b.site, b.uid))
  in
  (* Derivation notes for the annotated model, keyed by what [mref_of_info]
     reproduces for the surviving references. *)
  let derivs = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if s.kept then
        match derivation_line s.events with
        | Some d -> Hashtbl.replace derivs (s.site, s.expr) d
        | None -> ())
    refs;
  let deriv (mr : Model.mref) =
    Hashtbl.find_opt derivs (mr.Model.site, Model.expr_of_ref mr)
  in
  let model_c = Model.to_c ~deriv r.model in
  restore ();
  { name; thresholds; refs; model_c }

(* --- text rendering ---------------------------------------------------- *)

let verdict_string s =
  if s.kept then "KEPT"
  else
    Printf.sprintf "PURGED (%s)"
      (match s.reason with
      | Some r -> Provenance.reason_to_string r
      | None -> "unspecified")

let path_string path =
  if path = [] then "-"
  else String.concat " > " (List.map string_of_int path)

let summary_table t =
  let tab =
    Tablefmt.create ~title:"Step-4 purge summary" [ "Verdict"; "References" ]
  in
  let kept = List.length (List.filter (fun s -> s.kept) t.refs) in
  Tablefmt.row tab [ "kept"; string_of_int kept ];
  List.iter
    (fun reason ->
      let n =
        List.length
          (List.filter (fun s -> (not s.kept) && s.reason = Some reason) t.refs)
      in
      Tablefmt.row tab
        [ "purged: " ^ Provenance.reason_to_string reason; string_of_int n ])
    Provenance.all_reasons;
  Tablefmt.separator tab;
  Tablefmt.row tab [ "total"; string_of_int (List.length t.refs) ];
  Tablefmt.render tab

let select ?site t =
  match site with
  | None -> t.refs
  | Some s -> List.filter (fun r -> r.site = s) t.refs

let render ?site t =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "foraygen explain: %s (Nexec=%d, Nloc=%d)\n\n" t.name
    t.thresholds.Filter.nexec t.thresholds.Filter.nloc;
  let chosen = select ?site t in
  (match (site, chosen) with
  | Some s, [] ->
      out "no reference with site %#x; known sites: %s\n" s
        (String.concat ", "
           (List.sort_uniq compare
              (List.map (fun r -> Printf.sprintf "%#x" r.site) t.refs)))
  | _ -> ());
  List.iter
    (fun s ->
      out "reference %s (site %#x), loops [%s], depth %d - %s\n"
        (Model.array_name s.site) s.site (path_string s.path) s.depth
        (verdict_string s);
      out "  expr: %s\n" s.expr;
      out "  execs %d, locations %d, mispredictions %d\n" s.execs s.locations
        s.mispredictions;
      (match derivation_line s.events with
      | Some d -> out "  derivation: %s\n" d
      | None -> ());
      List.iter
        (fun e -> out "    %s\n" (Provenance.event_to_string e))
        s.events;
      out "\n")
    chosen;
  if site = None then begin
    Buffer.add_string buf (summary_table t);
    out "\nFORAY model with derivations:\n%s" t.model_c
  end;
  Buffer.contents buf

(* --- JSON --------------------------------------------------------------- *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_json ?site t =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\"program\": ";
  add_json_string buf t.name;
  out ", \"thresholds\": {\"nexec\": %d, \"nloc\": %d}, \"refs\": ["
    t.thresholds.Filter.nexec t.thresholds.Filter.nloc;
  let chosen = select ?site t in
  List.iteri
    (fun i s ->
      if i > 0 then out ", ";
      out
        "{\"uid\": %d, \"site\": \"%#x\", \"path\": [%s], \"depth\": %d, \
         \"kept\": %b, \"reason\": %s, \"expr\": "
        s.uid s.site
        (String.concat ", " (List.map string_of_int s.path))
        s.depth s.kept
        (match s.reason with
        | Some r -> Printf.sprintf "\"%s\"" (Provenance.reason_to_string r)
        | None -> "null");
      add_json_string buf s.expr;
      out ", \"execs\": %d, \"locations\": %d, \"mispredictions\": %d, \
           \"events\": ["
        s.execs s.locations s.mispredictions;
      List.iteri
        (fun j e ->
          if j > 0 then out ", ";
          out "{\"label\": \"%s\", \"exec\": %s, \"text\": "
            (Provenance.event_label e)
            (match Provenance.event_exec e with
            | Some n -> string_of_int n
            | None -> "null");
          add_json_string buf (Provenance.event_to_string e);
          out "}")
        s.events;
      out "]}")
    chosen;
  let kept = List.length (List.filter (fun s -> s.kept) t.refs) in
  out "], \"summary\": {\"kept\": %d, \"purged\": {" kept;
  List.iteri
    (fun i reason ->
      if i > 0 then out ", ";
      out "\"%s\": %d"
        (Provenance.reason_to_string reason)
        (List.length
           (List.filter
              (fun s -> (not s.kept) && s.reason = Some reason)
              t.refs)))
    Provenance.all_reasons;
  out "}}}";
  Buffer.contents buf
