(** Rendering {!Foray_core.Provenance} stories: the [foraygen explain]
    back end.

    Runs the pipeline with provenance recording on, pairs every tracked
    reference with its loop-tree context and Step-4 verdict, and renders
    per-reference inference timelines (the paper's Figure 4 walkthrough,
    automated), a purge summary table, and the FORAY model annotated with
    one-line derivations. *)

(** One reference's recorded life, joined with its tree context. *)
type ref_story = {
  uid : int;  (** {!Foray_core.Affine.uid} of the tracker *)
  site : int;
  path : int list;  (** enclosing loop ids, outermost first *)
  depth : int;
  kept : bool;
  reason : Foray_core.Provenance.purge_reason option;  (** when purged *)
  expr : string;  (** rendered (partial) affine expression *)
  execs : int;
  locations : int;  (** distinct start addresses *)
  mispredictions : int;
  events : Foray_core.Provenance.event list;
}

type t = {
  name : string;  (** program name, for headings *)
  thresholds : Foray_core.Filter.thresholds;
  refs : ref_story list;  (** sorted by (site, uid) *)
  model_c : string;  (** {!Foray_core.Model.to_c} with derivation notes *)
}

(** [run_source ~name ~thresholds src] parses and runs [src] through the
    pipeline with provenance recording enabled (the previous enabled state
    and any previously recorded stories are restored afterwards). *)
val run_source :
  ?name:string -> ?thresholds:Foray_core.Filter.thresholds -> string -> t

(** [derivation_line events] compresses a story into one line, e.g.
    ["C1=1 @exec 1; C2=103 @exec 103; 0 mispredictions"]. [None] when the
    story holds no inference step. *)
val derivation_line : Foray_core.Provenance.event list -> string option

(** [render ?site t] lays out the report: one timeline per reference
    (restricted to [site] when given), the purge summary table, and —
    when no [site] filter is active — the annotated model. Unknown [site]
    values render a note listing the sites that do exist. *)
val render : ?site:int -> t -> string

(** Machine-readable form of the same data (stable key order). *)
val to_json : ?site:int -> t -> string
