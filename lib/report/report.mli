(** Experiment driver: computes and renders the paper's evaluation tables.

    - {b Table I}: benchmark complexity and loop-kind distribution;
    - {b Table II}: loops/references representable in FORAY form, and the
      share of them not in FORAY form in the original source (i.e. beyond
      the reach of purely static SPM analyses);
    - {b Table III}: memory behaviour of the FORAY model — references,
      accesses and footprint captured by the model vs. system-library vs.
      other traffic.

    Percentages follow the paper's definitions; see EXPERIMENTS.md for the
    paper-vs-measured comparison. *)

type bench_report = {
  name : string;
  lines : int;
  (* Table I: loops that executed at least once, by original kind *)
  loops_total : int;
  loops_for : int;
  loops_while : int;
  loops_do : int;
  (* Table II *)
  model_loops : int;  (** loop nodes in the FORAY model (inlined contexts) *)
  model_refs : int;  (** references in the FORAY model *)
  loops_not_foray : int;  (** model loops whose source loop is not a
                              canonical [for] *)
  refs_not_foray : int;  (** model references not statically analyzable *)
  (* Table III *)
  refs_total : int;
  accesses_total : int;
  footprint_total : int;
  model_sites : int;
  model_accesses : int;
  model_footprint : int;
  sys_sites : int;
  sys_accesses : int;
  sys_footprint : int;
  other_footprint : int;
  (* extras *)
  hints : int;  (** duplication hints (Figure 9 analysis) *)
}

(** Runs the full pipeline + static baseline on one benchmark. *)
val report :
  ?thresholds:Foray_core.Filter.thresholds ->
  Foray_suite.Suite.bench ->
  bench_report

(** Runs every suite benchmark. [jobs] (default 1) fans the runs out over
    a {!Foray_util.Parallel} domain pool; results keep suite order, so the
    rendered tables are identical for any [jobs]. *)
val report_all :
  ?thresholds:Foray_core.Filter.thresholds ->
  ?jobs:int ->
  unit ->
  bench_report list

val table1 : bench_report list -> string
val table2 : bench_report list -> string
val table3 : bench_report list -> string

(** The headline claim: ratio of FORAY-GEN-analyzable references to
    statically-analyzable references, per benchmark and averaged (the paper
    reports a 2x average increase). *)
val headline : bench_report list -> string
