open Minic.Ast
module Event = Foray_trace.Event
module Memory = Minic_machine.Memory
module Layout = Minic_machine.Layout
module Resolve = Minic.Resolve
module Obs = Foray_obs.Obs
module Span = Foray_obs.Span

(* Hot-loop statistics accumulate in plain [ctx] fields (an int store, no
   branch on the metrics switch) and are flushed as aggregates once per
   [run] — the interpreter costs the same whether collection is on or
   off. *)
let m_steps = Obs.counter "interp.steps"
let m_accesses = Obs.counter "interp.accesses"
let m_resolved_lookups = Obs.counter "interp.resolved_lookups"
let m_chain_lookups = Obs.counter "interp.chain_lookups"
let m_calls = Obs.counter "interp.calls"
let m_malloc_bytes = Obs.counter "interp.malloc_bytes"
let m_max_frame_depth = Obs.gauge "interp.max_frame_depth"
let m_runs = Obs.counter "interp.runs"

exception Runtime_error of string
exception Runtime_error_at of { msg : string; step : int }

let () =
  Printexc.register_printer (function
    | Runtime_error_at { msg; step } ->
        Some (Printf.sprintf "Interp.Runtime_error_at(%S, step %d)" msg step)
    | _ -> None)

let error fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

type value = Vint of int | Vptr of { addr : int; elem : ty }

type config = {
  trace_scalars : bool;
  max_steps : int;
  deadline_ms : int option;
  max_trace_events : int option;
  rand_seed : int;
  resolve : bool;
}

let default_config =
  { trace_scalars = true; max_steps = 200_000_000; deadline_ms = None;
    max_trace_events = None; rand_seed = 42; resolve = true }

type budget_stop = { budget : string; limit : int; spent : int }
type stop = Completed | Stopped of budget_stop

(* Clean budget unwinding: not an error, so distinct from Runtime_error.
   Caught only in [run]; the frame-restore handlers along the way unwind
   normally. *)
exception Budget_hit of budget_stop

type result = {
  ret : int;
  output : int list;
  steps : int;
  accesses : int;
  stopped : stop;
}

let site_memset = 0x0e00_0001
let site_memcpy_rd = 0x0e00_0002
let site_memcpy_wr = 0x0e00_0003
let site_ilist sid = 0x0f00_0000 + sid

(* Control-flow signals. *)
exception Brk
exception Cont
exception Ret of value

type var = { vaddr : int; vty : ty }

(* Two frame representations share one record. With a resolution table
   (the fast path) a frame is a flat [int array] of slot addresses, -1
   while unallocated, and [prev_slots] restores the caller's array on
   return; [scopes]/[slots_tbl] stay empty. Without one (the reference
   path, [config.resolve = false]) names are looked up through the
   hashtable scope chain exactly as before. *)
type frame = {
  mutable scopes : (string, var) Hashtbl.t list;  (* reference path only *)
  slots_tbl : (int, int) Hashtbl.t option;  (* decl sid -> stack address *)
  prev_slots : int array;  (* fast path: caller's slot frame *)
  saved_sp : int;
}

type ctx = {
  cfg : config;
  res : Resolve.t option;  (* fast path when [Some] *)
  mem : Memory.t;
  layout : Layout.t;
  globals : (string, var) Hashtbl.t;
  global_addrs : int array;  (* fast path, indexed like [Resolve.Rglobal] *)
  funcs : (string, func) Hashtbl.t;
  sink : Event.sink;
  max_events : int;  (* trace-event budget; max_int when unlimited *)
  deadline : float;  (* absolute wall-clock cutoff; infinity when none *)
  started : float;  (* run start, for deadline accounting *)
  mutable events : int;  (* sink events emitted (accesses + checkpoints) *)
  mutable cur_slots : int array;  (* fast path: current frame's slots *)
  mutable frames : frame list;  (* current first; empty during global init *)
  mutable steps : int;
  mutable accesses : int;
  mutable resolved_lookups : int;  (* Var lvalues through the slot table *)
  mutable chain_lookups : int;  (* Var lvalues through the scope chain *)
  mutable calls : int;
  mutable malloc_bytes : int;
  mutable frame_depth : int;
  mutable max_frame_depth : int;
  mutable rand_state : int;
  mutable output : int list;  (* reversed *)
  tracing : bool;  (* Span.enabled, cached once per run *)
  mutable loop_spans : (int * Span.span) list;  (* open loop-execution spans *)
}

let ckind_of_ast = function
  | Loop_enter -> Event.Loop_enter
  | Body_enter -> Event.Body_enter
  | Body_exit -> Event.Body_exit
  | Loop_exit -> Event.Loop_exit

let check_event_budget ctx =
  if ctx.events > ctx.max_events then
    raise
      (Budget_hit
         { budget = "max_trace_events"; limit = ctx.max_events;
           spent = ctx.events })

let emit_access ctx ~site ~addr ~write ~sys ~width =
  ctx.accesses <- ctx.accesses + 1;
  ctx.events <- ctx.events + 1;
  check_event_budget ctx;
  ctx.sink (Event.Access { site; addr; write; sys; width })

(* ------------------------------------------------------------------ *)
(* Variables                                                          *)
(* ------------------------------------------------------------------ *)

let find_var ctx name =
  let rec in_scopes = function
    | [] -> None
    | s :: rest -> (
        match Hashtbl.find_opt s name with
        | Some v -> Some v
        | None -> in_scopes rest)
  in
  let local =
    match ctx.frames with
    | [] -> None
    | f :: _ -> in_scopes f.scopes
  in
  match local with
  | Some v -> v
  | None -> (
      match Hashtbl.find_opt ctx.globals name with
      | Some v -> v
      | None -> error "undefined variable %s" name)

let align_of ty = match ty with Tchar -> 1 | Tarr _ -> 4 | _ -> 4

(* ------------------------------------------------------------------ *)
(* Values                                                             *)
(* ------------------------------------------------------------------ *)

let as_int = function
  | Vint n -> n
  | Vptr { addr; _ } -> addr

let truthy v = as_int v <> 0

let width_of ty =
  match ty with
  | Tarr _ -> error "loading a whole array"
  | Tvoid -> error "loading void"
  | t -> sizeof t

(* Load a value of static type [ty] from [addr]. *)
let load_raw ctx addr ty =
  let w = width_of ty in
  let v = Memory.read ctx.mem addr w in
  match ty with
  | Tptr e -> Vptr { addr = v land 0xffff_ffff; elem = e }
  | _ -> Vint v

let store_raw ctx addr ty v =
  let w = width_of ty in
  Memory.write ctx.mem addr w (as_int v)

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                              *)
(* ------------------------------------------------------------------ *)

(* An lvalue: address, static type, and whether it is a named variable
   (the trace_scalars switch only gates named scalars). *)
type lval = { laddr : int; lty : ty; lnamed : bool }

let scaled_add p n =
  match p with
  | Vptr { addr; elem } -> Vptr { addr = addr + (n * sizeof elem); elem }
  | Vint _ -> error "pointer arithmetic on non-pointer"

let rec eval ctx (e : expr) : value =
  match e.e with
  | Int n -> Vint n
  | Var _ | Index _ | Deref _ -> (
      (* rvalue use of an lvalue: resolve, decay arrays, else load *)
      let lv = lvalue ctx e in
      match lv.lty with
      | Tarr (elt, _) -> Vptr { addr = lv.laddr; elem = elt }
      | ty ->
          let v = load_raw ctx lv.laddr ty in
          if (not lv.lnamed) || ctx.cfg.trace_scalars then
            emit_access ctx ~site:e.eid ~addr:lv.laddr ~write:false ~sys:false
              ~width:(width_of ty);
          v)
  | Bin (Land, a, b) -> if truthy (eval ctx a) then Vint (if truthy (eval ctx b) then 1 else 0) else Vint 0
  | Bin (Lor, a, b) -> if truthy (eval ctx a) then Vint 1 else Vint (if truthy (eval ctx b) then 1 else 0)
  | Bin (op, a, b) -> binop op (eval ctx a) (eval ctx b)
  | Un (Neg, a) -> Vint (-as_int (eval ctx a))
  | Un (Lnot, a) -> Vint (if truthy (eval ctx a) then 0 else 1)
  | Un (Bnot, a) -> Vint (lnot (as_int (eval ctx a)))
  | Assign (l, r) ->
      let v = eval ctx r in
      let lv = lvalue ctx l in
      let v = coerce lv.lty v in
      store_raw ctx lv.laddr lv.lty v;
      if (not lv.lnamed) || ctx.cfg.trace_scalars then
        emit_access ctx ~site:l.eid ~addr:lv.laddr ~write:true ~sys:false
          ~width:(width_of lv.lty);
      v
  | OpAssign (op, l, r) ->
      let rv = eval ctx r in
      let lv = lvalue ctx l in
      let old = load_raw ctx lv.laddr lv.lty in
      let traced = (not lv.lnamed) || ctx.cfg.trace_scalars in
      if traced then
        emit_access ctx ~site:l.eid ~addr:lv.laddr ~write:false ~sys:false
          ~width:(width_of lv.lty);
      let v = coerce lv.lty (binop op old rv) in
      store_raw ctx lv.laddr lv.lty v;
      if traced then
        emit_access ctx ~site:l.eid ~addr:lv.laddr ~write:true ~sys:false
          ~width:(width_of lv.lty);
      v
  | Incr (pre, l) -> incdec ctx pre l 1
  | Decr (pre, l) -> incdec ctx pre l (-1)
  | Addr a ->
      let lv = lvalue ctx a in
      let elem = match lv.lty with Tarr (t, _) -> t | t -> t in
      (* &arr yields the array's first element address, like C decay *)
      Vptr { addr = lv.laddr; elem }
  | Call (f, args) -> call_catch ctx f args e.eid
  | Cond (c, a, b) -> if truthy (eval ctx c) then eval ctx a else eval ctx b
  | Cast (t, a) -> (
      let v = eval ctx a in
      match (t, v) with
      | Tptr e, v -> Vptr { addr = as_int v land 0xffff_ffff; elem = e }
      | Tint, v -> Vint (as_int v)
      | Tchar, v ->
          let x = as_int v land 0xff in
          Vint (if x land 0x80 <> 0 then x - 0x100 else x)
      | Tvoid, v -> v
      | Tarr _, _ -> error "invalid cast to array type")

and coerce ty v =
  match (ty, v) with
  | Tchar, Vint n ->
      let x = n land 0xff in
      Vint (if x land 0x80 <> 0 then x - 0x100 else x)
  | _, v -> v

and incdec ctx pre l delta =
  let lv = lvalue ctx l in
  let old = load_raw ctx lv.laddr lv.lty in
  let traced = (not lv.lnamed) || ctx.cfg.trace_scalars in
  if traced then
    emit_access ctx ~site:l.eid ~addr:lv.laddr ~write:false ~sys:false
      ~width:(width_of lv.lty);
  let nv =
    match old with
    | Vptr { addr; elem } -> Vptr { addr = addr + (delta * sizeof elem); elem }
    | Vint n -> coerce lv.lty (Vint (n + delta))
  in
  store_raw ctx lv.laddr lv.lty nv;
  if traced then
    emit_access ctx ~site:l.eid ~addr:lv.laddr ~write:true ~sys:false
      ~width:(width_of lv.lty);
  if pre then nv else old

and binop op a b =
  match (op, a, b) with
  | Add, Vptr _, Vint n -> scaled_add a n
  | Add, Vint n, Vptr _ -> scaled_add b n
  | Sub, Vptr _, Vint n -> scaled_add a (-n)
  | Sub, Vptr { addr = x; elem }, Vptr { addr = y; elem = _ } ->
      Vint ((x - y) / sizeof elem)
  | _, _, _ -> (
      let x = as_int a and y = as_int b in
      match op with
      | Add -> Vint (x + y)
      | Sub -> Vint (x - y)
      | Mul -> Vint (x * y)
      | Div -> if y = 0 then error "division by zero" else Vint (x / y)
      | Mod -> if y = 0 then error "modulo by zero" else Vint (x mod y)
      | Shl -> Vint (x lsl (y land 63))
      | Shr -> Vint (x asr (y land 63))
      | Band -> Vint (x land y)
      | Bor -> Vint (x lor y)
      | Bxor -> Vint (x lxor y)
      | Lt -> Vint (if x < y then 1 else 0)
      | Gt -> Vint (if x > y then 1 else 0)
      | Le -> Vint (if x <= y then 1 else 0)
      | Ge -> Vint (if x >= y then 1 else 0)
      | Eq -> Vint (if x = y then 1 else 0)
      | Ne -> Vint (if x <> y then 1 else 0)
      | Land | Lor -> assert false (* short-circuited in eval *))

and lvalue ctx (e : expr) : lval =
  match e.e with
  | Var name -> (
      match ctx.res with
      | Some r -> (
          ctx.resolved_lookups <- ctx.resolved_lookups + 1;
          match r.Resolve.vars.(e.eid) with
          | Resolve.Rslot (i, ty) ->
              { laddr = ctx.cur_slots.(i); lty = ty; lnamed = true }
          | Resolve.Rglobal (i, ty) ->
              { laddr = ctx.global_addrs.(i); lty = ty; lnamed = true }
          | Resolve.Runbound n -> error "undefined variable %s" n
          | Resolve.Rnone -> error "undefined variable %s" name)
      | None ->
          ctx.chain_lookups <- ctx.chain_lookups + 1;
          let v = find_var ctx name in
          { laddr = v.vaddr; lty = v.vty; lnamed = true })
  | Index (base, idx) -> (
      let b = eval ctx base in
      let i = as_int (eval ctx idx) in
      match b with
      | Vptr { addr; elem } ->
          { laddr = addr + (i * sizeof elem); lty = elem; lnamed = false }
      | Vint _ -> error "indexing a non-pointer")
  | Deref p -> (
      match eval ctx p with
      | Vptr { addr; elem } -> { laddr = addr; lty = elem; lnamed = false }
      | Vint addr ->
          (* int used as address after casts; treat as char* *)
          { laddr = addr; lty = Tchar; lnamed = false })
  | Cast (t, a) -> (
      let lv = lvalue ctx a in
      match t with
      | Tptr e -> { lv with lty = Tptr e }
      | t -> { lv with lty = t })
  | _ -> error "expression is not an lvalue"

(* ------------------------------------------------------------------ *)
(* Builtins                                                           *)
(* ------------------------------------------------------------------ *)

and call_builtin ctx name args =
  let int_arg i = as_int (List.nth args i) in
  match name with
  | "malloc" ->
      let size = int_arg 0 in
      if size < 0 then error "malloc of negative size";
      ctx.malloc_bytes <- ctx.malloc_bytes + size;
      Vptr { addr = Layout.alloc_heap ctx.layout ~size; elem = Tchar }
  | "memset" -> (
      match args with
      | [ Vptr { addr; _ }; v; n ] ->
          let v = as_int v and n = as_int n in
          if n < 0 then error "memset with negative size";
          for i = 0 to n - 1 do
            Memory.write_byte ctx.mem (addr + i) v;
            emit_access ctx ~site:site_memset ~addr:(addr + i) ~write:true
              ~sys:true ~width:1
          done;
          Vptr { addr; elem = Tchar }
      | _ -> error "memset expects a pointer first argument")
  | "memcpy" -> (
      match args with
      | [ Vptr { addr = d; _ }; Vptr { addr = s; _ }; n ] ->
          let n = as_int n in
          if n < 0 then error "memcpy with negative size";
          for i = 0 to n - 1 do
            let b = Memory.read_byte ctx.mem (s + i) in
            emit_access ctx ~site:site_memcpy_rd ~addr:(s + i) ~write:false
              ~sys:true ~width:1;
            Memory.write_byte ctx.mem (d + i) b;
            emit_access ctx ~site:site_memcpy_wr ~addr:(d + i) ~write:true
              ~sys:true ~width:1
          done;
          Vptr { addr = d; elem = Tchar }
      | _ -> error "memcpy expects pointer arguments")
  | "abs" -> Vint (abs (int_arg 0))
  | "mc_min" -> Vint (min (int_arg 0) (int_arg 1))
  | "mc_max" -> Vint (max (int_arg 0) (int_arg 1))
  | "mc_rand" ->
      let bound = int_arg 0 in
      if bound <= 0 then error "mc_rand with non-positive bound";
      ctx.rand_state <- ((ctx.rand_state * 1103515245) + 12345) land 0x3fff_ffff;
      Vint (ctx.rand_state mod bound)
  | "print_int" ->
      ctx.output <- int_arg 0 :: ctx.output;
      Vint 0
  | _ -> error "unknown function %s" name

(* ------------------------------------------------------------------ *)
(* Calls and statements                                               *)
(* ------------------------------------------------------------------ *)

and call ctx fname args call_site =
  let argv = List.map (eval ctx) args in
  match Hashtbl.find_opt ctx.funcs fname with
  | None -> call_builtin ctx fname argv
  | Some f ->
      if List.length argv <> List.length f.params then
        error "arity mismatch calling %s" fname;
      let fast = ctx.res <> None in
      let frame =
        {
          scopes = (if fast then [] else [ Hashtbl.create 8 ]);
          slots_tbl = (if fast then None else Some (Hashtbl.create 8));
          prev_slots = ctx.cur_slots;
          saved_sp = Layout.sp ctx.layout;
        }
      in
      let slots =
        match ctx.res with
        | Some r ->
            let n =
              match Hashtbl.find_opt r.Resolve.fun_nslots f.fname with
              | Some n -> n
              | None -> List.length f.params
            in
            Array.make (max n 1) (-1)
        | None -> ctx.cur_slots
      in
      (* Store arguments into the callee frame ("placing arguments to the
         stack"); these stores are real memory traffic. *)
      let slot = ref 0 in
      List.iter2
        (fun (pty, pname) v ->
          let size = sizeof pty in
          let addr = Layout.alloc_stack ctx.layout ~size ~align:(align_of pty) in
          (if fast then begin
             slots.(!slot) <- addr;
             incr slot
           end
           else
             match List.nth_opt frame.scopes 0 with
             | Some scope ->
                 Hashtbl.replace scope pname { vaddr = addr; vty = pty }
             | None -> assert false);
          store_raw ctx addr pty (coerce pty v);
          if ctx.cfg.trace_scalars then
            emit_access ctx ~site:call_site ~addr ~write:true ~sys:false
              ~width:(width_of pty))
        f.params argv;
      ctx.frames <- frame :: ctx.frames;
      ctx.cur_slots <- slots;
      ctx.calls <- ctx.calls + 1;
      ctx.frame_depth <- ctx.frame_depth + 1;
      if ctx.frame_depth > ctx.max_frame_depth then
        ctx.max_frame_depth <- ctx.frame_depth;
      let finish () =
        ctx.frames <- List.tl ctx.frames;
        ctx.frame_depth <- ctx.frame_depth - 1;
        ctx.cur_slots <- frame.prev_slots;
        Layout.restore_sp ctx.layout frame.saved_sp
      in
      let res =
        try
          exec_block ctx f.body;
          Vint 0
        with
        | Ret v ->
            finish ();
            raise (Ret v)
        | exn ->
            finish ();
            raise exn
      in
      finish ();
      res

and call_catch ctx fname args site =
  try call ctx fname args site with Ret v -> v

and exec_block ctx stmts =
  (* Fast path: names are pre-resolved to frame slots, so no dynamic scope
     needs to be pushed — the single biggest saving of the resolver, since
     the reference path allocates a hashtable per loop-body iteration. *)
  if ctx.res <> None then List.iter (exec_stmt ctx) stmts
  else begin
    let frame = List.hd ctx.frames in
    let scope = Hashtbl.create 4 in
    frame.scopes <- scope :: frame.scopes;
    let pop () = frame.scopes <- List.tl frame.scopes in
    (try List.iter (exec_stmt ctx) stmts
     with exn ->
       pop ();
       raise exn);
    pop ()
  end

and tick ctx =
  ctx.steps <- ctx.steps + 1;
  if ctx.steps > ctx.cfg.max_steps then
    raise
      (Budget_hit
         { budget = "max_steps"; limit = ctx.cfg.max_steps; spent = ctx.steps });
  (* Wall-clock deadline: a gettimeofday every 4096 steps is invisible in
     the profile yet bounds overshoot to a few microseconds of work. An
     already-expired deadline is caught at run admission (see [run]), so
     the first periodic check firing only at step 4096 cannot leak a
     "clean" result past a spent budget. *)
  if ctx.steps land 4095 = 0 && ctx.deadline < infinity then begin
    let now = Unix.gettimeofday () in
    if now > ctx.deadline then
      raise
        (Budget_hit
           {
             budget = "deadline_ms";
             limit = Option.value ctx.cfg.deadline_ms ~default:0;
             spent = int_of_float ((now -. ctx.started) *. 1000.0);
           })
  end

and exec_stmt ctx st =
  tick ctx;
  match st.s with
  | Sexpr e -> ignore (eval_full ctx e)
  | Sdecl (ty, name, init) -> exec_decl ctx st.sid ty name init
  | Sif (c, a, b) ->
      if truthy (eval_full ctx c) then exec_block ctx a else exec_block ctx b
  | Sfor (init, cond, step, body) ->
      (match init with None -> () | Some e -> ignore (eval_full ctx e));
      let continue_loop = ref true in
      while !continue_loop do
        tick ctx;
        let go =
          match cond with None -> true | Some c -> truthy (eval_full ctx c)
        in
        if not go then continue_loop := false
        else begin
          (try exec_block ctx body with
          | Brk ->
              continue_loop := false
          | Cont -> ());
          if !continue_loop then
            match step with None -> () | Some e -> ignore (eval_full ctx e)
        end
      done
  | Swhile (c, body) ->
      let continue_loop = ref true in
      while !continue_loop do
        tick ctx;
        if truthy (eval_full ctx c) then begin
          try exec_block ctx body with
          | Brk -> continue_loop := false
          | Cont -> ()
        end
        else continue_loop := false
      done
  | Sdo (body, c) ->
      let continue_loop = ref true in
      while !continue_loop do
        tick ctx;
        (try exec_block ctx body with
        | Brk -> continue_loop := false
        | Cont -> ());
        if !continue_loop && not (truthy (eval_full ctx c)) then
          continue_loop := false
      done
  | Sreturn None -> raise (Ret (Vint 0))
  | Sreturn (Some e) -> raise (Ret (eval_full ctx e))
  | Sbreak -> raise Brk
  | Scontinue -> raise Cont
  | Sblock b -> exec_block ctx b
  | Sswitch (scrut, cases) -> (
      let v = as_int (eval_full ctx scrut) in
      (* first group whose labels match, else the default group *)
      let matches (c : switch_case) =
        List.exists (function Lcase x -> x = v | Ldefault -> false) c.labels
      in
      let is_default (c : switch_case) = List.mem Ldefault c.labels in
      let rec from = function
        | [] -> []
        | c :: rest when matches c -> c :: rest
        | _ :: rest -> from rest
      in
      let selected =
        match from cases with
        | [] -> (
            let rec from_default = function
              | [] -> []
              | c :: rest when is_default c -> c :: rest
              | _ :: rest -> from_default rest
            in
            from_default cases)
        | l -> l
      in
      (* fallthrough across groups until break *)
      try List.iter (fun (c : switch_case) -> exec_block ctx c.body) selected
      with Brk -> ())
  | Scheckpoint (loop, kind) ->
      if ctx.tracing then trace_checkpoint ctx loop kind;
      ctx.events <- ctx.events + 1;
      check_event_budget ctx;
      ctx.sink (Event.Checkpoint { loop; kind = ckind_of_ast kind })

(* One span per loop execution (Loop_enter .. Loop_exit). Early function
   returns can skip a Loop_exit checkpoint, so closing pops every span
   opened since the matching enter; stray exits are ignored. *)
and trace_checkpoint ctx loop kind =
  match kind with
  | Loop_enter ->
      let s = Span.enter ~cat:"loop" (Printf.sprintf "loop%d" loop) in
      ctx.loop_spans <- (loop, s) :: ctx.loop_spans
  | Loop_exit ->
      if List.mem_assoc loop ctx.loop_spans then begin
        let rec pop = function
          | (lid, s) :: rest ->
              Span.leave s;
              if lid = loop then rest else pop rest
          | [] -> []
        in
        ctx.loop_spans <- pop ctx.loop_spans
      end
  | Body_enter | Body_exit -> ()

and eval_full ctx e = try eval ctx e with Ret v -> v

and exec_decl ctx sid ty name init =
  let addr =
    match ctx.res with
    | Some r ->
        let slot = r.Resolve.decl_slots.(sid) in
        let a = ctx.cur_slots.(slot) in
        if a >= 0 then a
        else begin
          let a =
            Layout.alloc_stack ctx.layout ~size:(sizeof ty)
              ~align:(align_of ty)
          in
          ctx.cur_slots.(slot) <- a;
          a
        end
    | None -> (
        let frame = List.hd ctx.frames in
        let slots_tbl = Option.get frame.slots_tbl in
        let addr =
          match Hashtbl.find_opt slots_tbl sid with
          | Some a -> a
          | None ->
              let a =
                Layout.alloc_stack ctx.layout ~size:(sizeof ty)
                  ~align:(align_of ty)
              in
              Hashtbl.add slots_tbl sid a;
              a
        in
        (match frame.scopes with
        | scope :: _ -> Hashtbl.replace scope name { vaddr = addr; vty = ty }
        | [] -> assert false);
        addr)
  in
  match init with
  | None -> ()
  | Some (Iexpr e) ->
      let v = eval_full ctx e in
      store_raw ctx addr ty (coerce ty v);
      if ctx.cfg.trace_scalars then
        emit_access ctx ~site:e.eid ~addr ~write:true ~sys:false
          ~width:(width_of ty)
  | Some (Ilist vals) -> init_array ctx (site_ilist sid) addr ty vals

and init_array ctx site addr ty vals =
  match ty with
  | Tarr (elt, n) ->
      let w = sizeof elt in
      (match elt with
      | Tarr _ -> error "initializer lists only support 1-D arrays"
      | _ -> ());
      for i = 0 to n - 1 do
        let v = match List.nth_opt vals i with Some v -> v | None -> 0 in
        Memory.write ctx.mem (addr + (i * w)) w v;
        emit_access ctx ~site ~addr:(addr + (i * w)) ~write:true ~sys:false
          ~width:w
      done
  | _ -> error "initializer list for a non-array"

(* ------------------------------------------------------------------ *)
(* Program setup and entry                                            *)
(* ------------------------------------------------------------------ *)

let run ?(config = default_config) (prog : program) ~sink =
  let tracing = Span.enabled () in
  let res =
    if config.resolve then
      Span.with_span ~cat:"interp" "interp.resolve" (fun () ->
          Resolve.program prog)
    else None
  in
  let n_globals = match res with Some r -> r.Resolve.n_globals | None -> 0 in
  let started = Unix.gettimeofday () in
  let ctx =
    {
      cfg = config;
      res;
      mem = Memory.create ();
      layout = Layout.create ();
      globals = Hashtbl.create 32;
      global_addrs = Array.make (max n_globals 1) 0;
      funcs = Hashtbl.create 16;
      sink;
      max_events =
        (match config.max_trace_events with Some n -> n | None -> max_int);
      deadline =
        (match config.deadline_ms with
        | Some ms -> started +. (float_of_int ms /. 1000.0)
        | None -> infinity);
      started;
      events = 0;
      cur_slots = [||];
      frames = [];
      steps = 0;
      accesses = 0;
      resolved_lookups = 0;
      chain_lookups = 0;
      calls = 0;
      malloc_bytes = 0;
      frame_depth = 0;
      max_frame_depth = 0;
      rand_state = config.rand_seed land 0x3fff_ffff;
      output = [];
      tracing;
      loop_spans = [];
    }
  in
  (* Allocate globals first so initializers may reference earlier ones. *)
  let gi = ref 0 in
  List.iter
    (function
      | Gvar (ty, name, _) ->
          let addr =
            Layout.alloc_global ctx.layout ~size:(sizeof ty)
              ~align:(align_of ty)
          in
          Hashtbl.replace ctx.globals name { vaddr = addr; vty = ty };
          if !gi < n_globals then ctx.global_addrs.(!gi) <- addr;
          incr gi
      | Gfunc f -> Hashtbl.replace ctx.funcs f.fname f)
    prog.globals;
  (* Run global initializers through a silent copy of the context: startup
     writes are not program memory traffic in the paper's traces. The copy
     shares [mem], [layout] and the symbol tables; its counters are
     discarded. *)
  let silent = { ctx with sink = Event.null_sink } in
  List.iter
    (function
      | Gvar (ty, name, Some init) -> (
          let v = Hashtbl.find ctx.globals name in
          match init with
          | Iexpr e -> store_raw silent v.vaddr ty (coerce ty (eval_full silent e))
          | Ilist vals -> (
              match ty with
              | Tarr (elt, n) ->
                  let w = sizeof elt in
                  for i = 0 to n - 1 do
                    let x =
                      match List.nth_opt vals i with Some x -> x | None -> 0
                    in
                    Memory.write ctx.mem (v.vaddr + (i * w)) w x
                  done
              | _ -> error "list initializer for non-array global %s" name))
      | _ -> ())
    prog.globals;
  ctx.accesses <- 0;
  (* silent ctx shares the mutable counters record? No: record copy; reset. *)
  let drain_spans () =
    List.iter (fun (_, s) -> Span.leave s) ctx.loop_spans;
    ctx.loop_spans <- []
  in
  let stopped = ref Completed in
  let ret =
    let span = if tracing then Span.enter ~cat:"interp" "interp.run" else Span.null in
    Fun.protect
      ~finally:(fun () ->
        if tracing then begin
          drain_spans ();
          Span.leave span
        end)
      (fun () ->
        try
          (* Admission check: a request can arrive with its wall-clock
             deadline already spent (trivially possible under daemon
             queuing). The periodic check in [tick] first fires at step
             4096, so without this gate an expired deadline would still
             execute up to 4095 steps and report a clean completion. *)
          if ctx.deadline < infinity && Unix.gettimeofday () >= ctx.deadline
          then
            raise
              (Budget_hit
                 {
                   budget = "deadline_ms";
                   limit = Option.value config.deadline_ms ~default:0;
                   spent =
                     int_of_float
                       ((Unix.gettimeofday () -. started) *. 1000.0);
                 });
          match Hashtbl.find_opt ctx.funcs "main" with
          | None -> error "program has no main"
          | Some _ ->
              let call_eid = 0 in
              as_int (call_catch ctx "main" [] call_eid)
        with
        | Budget_hit b ->
            (* A budget stop is a clean, partial run: everything already
               pushed into the sink is a valid trace prefix. *)
            stopped := Stopped b;
            0
        | Runtime_error msg ->
            raise (Runtime_error_at { msg; step = ctx.steps }))
  in
  if Obs.enabled () then begin
    Obs.incr m_runs;
    Obs.add m_steps ctx.steps;
    Obs.add m_accesses ctx.accesses;
    Obs.add m_resolved_lookups ctx.resolved_lookups;
    Obs.add m_chain_lookups ctx.chain_lookups;
    Obs.add m_calls ctx.calls;
    Obs.add m_malloc_bytes ctx.malloc_bytes;
    Obs.set_max m_max_frame_depth ctx.max_frame_depth;
    Obs.event "interp.run"
      ~fields:
        [
          ("steps", string_of_int ctx.steps);
          ("accesses", string_of_int ctx.accesses);
          ("ret", string_of_int ret);
        ]
  end;
  { ret; output = List.rev ctx.output; steps = ctx.steps;
    accesses = ctx.accesses; stopped = !stopped }

let run_to_trace ?(config = default_config) prog =
  let sink, get = Event.collector () in
  let res = run ~config prog ~sink in
  (res, get ())
