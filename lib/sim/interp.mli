(** The "instruction-set simulator" of Step 2 of Algorithm 1.

    Interprets a MiniC program over a simulated 32-bit address space and
    pushes one {!Foray_trace.Event.event} into the given sink for every
    memory access and every executed checkpoint — the same record stream the
    paper obtains from a modified SimpleScalar. Because consumers are sinks,
    the FORAY-GEN analysis can run online during simulation with no stored
    trace (constant space, §4 of the paper).

    Machine model:
    - [int] and pointers are 4 bytes, [char] is 1 byte, little-endian;
    - every named variable lives in memory (globals segment or stack frame),
      as in unoptimized embedded compilation; reads/writes of named scalars
      emit events unless [trace_scalars] is off;
    - array-element and pointer-dereference traffic is always traced;
    - pointer arithmetic is scaled by the element size, as in C;
    - function parameters are stored to the callee frame on call (the
      paper's "placing arguments to the stack"), with events;
    - [memset]/[memcpy] builtin traffic is tagged [sys], modelling system
      libraries (Table III's middle category). *)

exception Runtime_error of string

(** What {!run} actually raises on dynamic errors: the message plus the
    statement count at failure, so the pipeline's typed taxonomy can
    report where the simulation died. ({!Runtime_error} is still the
    internal raise form and what third-party builtins may throw.) *)
exception Runtime_error_at of { msg : string; step : int }

type value = Vint of int | Vptr of { addr : int; elem : Minic.Ast.ty }

type config = {
  trace_scalars : bool;  (** emit events for named scalar accesses *)
  max_steps : int;
      (** statement budget; exhausting it stops the run cleanly with
          [Stopped] (it is NOT an error: the events already emitted are a
          valid trace prefix and the analyzers finish on them) *)
  deadline_ms : int option;
      (** wall-clock budget for one [run], checked once at admission
          (before any statement executes, so an already-expired deadline
          stops at step 0) and then every few thousand steps;
          [None] = unlimited *)
  max_trace_events : int option;
      (** budget on events pushed into the sink (accesses + checkpoints);
          [None] = unlimited *)
  rand_seed : int;  (** seed of the [mc_rand] builtin *)
  resolve : bool;
      (** pre-resolve identifiers to frame slots ({!Minic.Resolve}) and
          index flat [int array] frames instead of walking hashtable scope
          chains. Default [true]; [false] keeps the original string-lookup
          path (the observable behaviour — results and event streams — is
          identical, only speed differs). *)
}

val default_config : config

(** Which budget stopped the run, how much was allowed and how much was
    spent when it tripped (for [deadline_ms] both are milliseconds). *)
type budget_stop = { budget : string; limit : int; spent : int }

type stop = Completed | Stopped of budget_stop

type result = {
  ret : int;  (** [main]'s return value (0 when it returns void) *)
  output : int list;  (** values passed to [print_int], in order *)
  steps : int;  (** statements executed *)
  accesses : int;  (** memory-access events emitted *)
  stopped : stop;
      (** [Completed], or the budget that cleanly cut the run short *)
}

(** [run ?config prog ~sink] executes [main]. The program should have passed
    {!Minic.Sema.check}. Exhausting a budget is a clean stop, not an error.
    @raise Runtime_error_at on dynamic errors (division by zero, unknown
    function, bad pointer operations). *)
val run : ?config:config -> Minic.Ast.program -> sink:Foray_trace.Event.sink -> result

(** Convenience: run and also return the full event list. *)
val run_to_trace :
  ?config:config -> Minic.Ast.program -> result * Foray_trace.Event.event list

(** {1 Synthetic site ids}

    Real reference sites are expression node ids. Traffic not tied to a
    source expression gets reserved ids well above any node id: *)

val site_memset : int
val site_memcpy_rd : int
val site_memcpy_wr : int

(** Site used for the implicit stores of a declaration's initializer list;
    derived from the statement id. *)
val site_ilist : int -> int
