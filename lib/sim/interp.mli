(** The "instruction-set simulator" of Step 2 of Algorithm 1.

    Interprets a MiniC program over a simulated 32-bit address space and
    pushes one {!Foray_trace.Event.event} into the given sink for every
    memory access and every executed checkpoint — the same record stream the
    paper obtains from a modified SimpleScalar. Because consumers are sinks,
    the FORAY-GEN analysis can run online during simulation with no stored
    trace (constant space, §4 of the paper).

    Machine model:
    - [int] and pointers are 4 bytes, [char] is 1 byte, little-endian;
    - every named variable lives in memory (globals segment or stack frame),
      as in unoptimized embedded compilation; reads/writes of named scalars
      emit events unless [trace_scalars] is off;
    - array-element and pointer-dereference traffic is always traced;
    - pointer arithmetic is scaled by the element size, as in C;
    - function parameters are stored to the callee frame on call (the
      paper's "placing arguments to the stack"), with events;
    - [memset]/[memcpy] builtin traffic is tagged [sys], modelling system
      libraries (Table III's middle category). *)

exception Runtime_error of string

type value = Vint of int | Vptr of { addr : int; elem : Minic.Ast.ty }

type config = {
  trace_scalars : bool;  (** emit events for named scalar accesses *)
  max_steps : int;  (** statement budget; exceeded -> [Runtime_error] *)
  rand_seed : int;  (** seed of the [mc_rand] builtin *)
  resolve : bool;
      (** pre-resolve identifiers to frame slots ({!Minic.Resolve}) and
          index flat [int array] frames instead of walking hashtable scope
          chains. Default [true]; [false] keeps the original string-lookup
          path (the observable behaviour — results and event streams — is
          identical, only speed differs). *)
}

val default_config : config

type result = {
  ret : int;  (** [main]'s return value (0 when it returns void) *)
  output : int list;  (** values passed to [print_int], in order *)
  steps : int;  (** statements executed *)
  accesses : int;  (** memory-access events emitted *)
}

(** [run ?config prog ~sink] executes [main]. The program should have passed
    {!Minic.Sema.check}.
    @raise Runtime_error on dynamic errors (division by zero, step-limit,
    unknown function, bad pointer operations). *)
val run : ?config:config -> Minic.Ast.program -> sink:Foray_trace.Event.sink -> result

(** Convenience: run and also return the full event list. *)
val run_to_trace :
  ?config:config -> Minic.Ast.program -> result * Foray_trace.Event.event list

(** {1 Synthetic site ids}

    Real reference sites are expression node ids. Traffic not tied to a
    source expression gets reserved ids well above any node id: *)

val site_memset : int
val site_memcpy_rd : int
val site_memcpy_wr : int

(** Site used for the implicit stores of a declaration's initializer list;
    derived from the statement id. *)
val site_ilist : int -> int
