type bench = { name : string; description : string; source : string }

let all =
  [
    {
      name = "jpeg";
      description = "block image compression (synthetic cjpeg analogue)";
      source = Bench_jpeg.source;
    };
    {
      name = "lame";
      description = "MP3 encoding (synthetic lame analogue)";
      source = Bench_lame.source;
    };
    {
      name = "susan";
      description = "image recognition (synthetic susan analogue)";
      source = Bench_susan.source;
    };
    {
      name = "fft";
      description = "fixed-point Fourier transform (synthetic fft analogue)";
      source = Bench_fft.source;
    };
    {
      name = "gsm";
      description = "GSM speech encoding (synthetic gsm analogue)";
      source = Bench_gsm.source;
    };
    {
      name = "adpcm";
      description = "IMA ADPCM coding (synthetic adpcm analogue)";
      source = Bench_adpcm.source;
    };
  ]

let find name = List.find_opt (fun b -> b.name = name) all
let names = List.map (fun b -> b.name) all

let load name_or_path =
  match find name_or_path with
  | Some b -> Ok b.source
  | None -> (
      match List.assoc_opt name_or_path Figures.all with
      | Some src -> Ok src
      | None ->
          if Sys.file_exists name_or_path then begin
            let ic = open_in_bin name_or_path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                Ok (really_input_string ic (in_channel_length ic)))
          end
          else
            Error (Foray_core.Error.Not_found_program { name = name_or_path }))
let program b = Minic.Parser.program b.source

let lines b =
  String.split_on_char '\n' b.source
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
