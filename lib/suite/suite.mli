(** The benchmark suite: six synthetic MiniC analogues of the MiBench
    programs the paper evaluates (jpeg, lame, susan, fft, gsm, adpcm).

    Real MiBench C sources cannot be compiled or profiled in this
    environment, so each program was rebuilt at reduced scale with the same
    structural properties the evaluation depends on: the Table I loop-kind
    mix, the pointer/while/data-dependent access styles that defeat static
    analysis, system-library traffic, and reuse patterns for the SPM
    phase. See DESIGN.md for the substitution rationale. *)

type bench = {
  name : string;
  description : string;
  source : string;  (** complete MiniC program *)
}

(** The six benchmarks, in the paper's order:
    jpeg, lame, susan, fft, gsm, adpcm. *)
val all : bench list

(** Lookup by name (the paper's names, e.g. ["jpeg"]). *)
val find : string -> bench option

(** Names of all benchmarks, in order. *)
val names : string list

(** [load name_or_path] resolves a program argument the way every
    [foraygen] subcommand does: a benchmark name, then a figure name
    ({!Figures.all}), then a path to a MiniC source file. Returns the
    source text, or [Not_found_program] when the name matches nothing. *)
val load : string -> (string, Foray_core.Error.t) result

(** Parsed program of a benchmark. *)
val program : bench -> Minic.Ast.program

(** Number of source lines (for Table I). *)
val lines : bench -> int
