open Minic.Ast

(* Fresh negative statement ids for inserted nodes. Atomic so concurrent
   pipeline runs (Foray_util.Parallel) never hand out colliding ids. *)
let counter = Atomic.make 0

let fresh_sid () = -(Atomic.fetch_and_add counter 1) - 1

let ck loop kind = { s = Scheckpoint (loop, kind); sid = fresh_sid () }
let blk stmts = { s = Sblock stmts; sid = fresh_sid () }

let rec instr_stmt st =
  match st.s with
  | Sfor (i, c, s, body) ->
      let lid = st.sid in
      let body' = (ck lid Body_enter :: instr_block body) @ [ ck lid Body_exit ] in
      blk
        [ ck lid Loop_enter;
          { st with s = Sfor (i, c, s, body') };
          ck lid Loop_exit ]
  | Swhile (c, body) ->
      let lid = st.sid in
      let body' = (ck lid Body_enter :: instr_block body) @ [ ck lid Body_exit ] in
      blk
        [ ck lid Loop_enter;
          { st with s = Swhile (c, body') };
          ck lid Loop_exit ]
  | Sdo (body, c) ->
      let lid = st.sid in
      let body' = (ck lid Body_enter :: instr_block body) @ [ ck lid Body_exit ] in
      blk
        [ ck lid Loop_enter;
          { st with s = Sdo (body', c) };
          ck lid Loop_exit ]
  | Sif (c, a, b) -> { st with s = Sif (c, instr_block a, instr_block b) }
  | Sswitch (scrut, cases) ->
      { st with
        s =
          Sswitch
            ( scrut,
              List.map
                (fun (c : switch_case) -> { c with body = instr_block c.body })
                cases ) }
  | Sblock b -> { st with s = Sblock (instr_block b) }
  | Sexpr _ | Sdecl _ | Sreturn _ | Sbreak | Scontinue | Scheckpoint _ -> st

and instr_block b = List.map instr_stmt b

let program p =
  {
    globals =
      List.map
        (function
          | Gvar _ as g -> g
          | Gfunc f -> Gfunc { f with body = instr_block f.body })
        p.globals;
  }

let loop_table p =
  List.map (fun st -> (st.sid, loop_kind st)) (loops p)
