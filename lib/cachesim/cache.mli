(** Set-associative cache simulator.

    The paper's premise (via Banakar et al., CODES 2002) is that scratch
    pads beat caches on energy and predictability for embedded workloads.
    This simulator makes that comparison concrete: it consumes the same
    profile-event stream as FORAY-GEN and reports hits, misses and
    write-backs, which the energy model turns into a cache-vs-SPM energy
    table (see [bench/main.exe]).

    Write-allocate, write-back, with LRU or FIFO replacement. Accesses that
    straddle a line boundary touch both lines, but still count as one
    access and one hit-or-miss, so [hits + misses = accesses] always
    holds; per-line fill traffic is reported separately as [line_fills]
    (what the energy model charges line transfers for). *)

type policy = Lru | Fifo

type config = {
  size_bytes : int;  (** total capacity; must be a power of two *)
  line_bytes : int;  (** line size; power of two, >= 4 *)
  assoc : int;  (** ways per set; [size/line] must be divisible by it *)
  policy : policy;
}

(** A classic embedded L1: 2 KiB, 16-byte lines, 4-way LRU. *)
val default_config : config

type stats = {
  accesses : int;
  hits : int;  (** accesses whose every touched line was resident *)
  misses : int;  (** accesses with at least one non-resident line *)
  line_fills : int;  (** lines brought in from the next level *)
  evictions : int;
  writebacks : int;  (** dirty evictions *)
}

type t

(** @raise Invalid_argument on malformed geometry. *)
val create : config -> t

(** [access t ~addr ~width ~write] simulates one access; returns [true] on
    a (full) hit. *)
val access : t -> addr:int -> width:int -> write:bool -> bool

val stats : t -> stats
val config : t -> config

(** Hit ratio in [0,1]; 0 on an empty run. *)
val hit_rate : t -> float

(** A sink that feeds every trace access into the cache (checkpoints are
    ignored). *)
val sink : t -> Foray_trace.Event.sink

(** [lines t] is the number of lines the cache holds. *)
val lines : t -> int

(** [flush_metrics ?label t] adds the current stats to the global
    {!Foray_obs.Obs} registry as [cachesim.*{cache=label}] counters
    (default label ["l1"]). No-op while collection is disabled. *)
val flush_metrics : ?label:string -> t -> unit
