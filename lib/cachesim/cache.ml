module Obs = Foray_obs.Obs

type policy = Lru | Fifo

type config = {
  size_bytes : int;
  line_bytes : int;
  assoc : int;
  policy : policy;
}

let default_config =
  { size_bytes = 2048; line_bytes = 16; assoc = 4; policy = Lru }

type stats = {
  accesses : int;
  hits : int;
  misses : int;
  line_fills : int;
  evictions : int;
  writebacks : int;
}

(* One way: tag plus bookkeeping. [stamp] orders victims: last-use time for
   LRU, fill time for FIFO. *)
type way = { mutable tag : int; mutable valid : bool; mutable dirty : bool;
             mutable stamp : int }

type t = {
  cfg : config;
  sets : way array array;
  set_bits : int;
  line_bits : int;
  mutable clock : int;
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable line_fills : int;
  mutable evictions : int;
  mutable writebacks : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go k n = if n = 1 then k else go (k + 1) (n lsr 1) in
  go 0 n

let create cfg =
  if not (is_pow2 cfg.size_bytes) then
    invalid_arg "Cache.create: size must be a power of two";
  if not (is_pow2 cfg.line_bytes) || cfg.line_bytes < 4 then
    invalid_arg "Cache.create: line size must be a power of two >= 4";
  let lines = cfg.size_bytes / cfg.line_bytes in
  if cfg.assoc <= 0 || lines mod cfg.assoc <> 0 then
    invalid_arg "Cache.create: associativity must divide the line count";
  let nsets = lines / cfg.assoc in
  if not (is_pow2 nsets) then
    invalid_arg "Cache.create: set count must be a power of two";
  {
    cfg;
    sets =
      Array.init nsets (fun _ ->
          Array.init cfg.assoc (fun _ ->
              { tag = 0; valid = false; dirty = false; stamp = 0 }));
    set_bits = log2 nsets;
    line_bits = log2 cfg.line_bytes;
    clock = 0;
    accesses = 0;
    hits = 0;
    misses = 0;
    line_fills = 0;
    evictions = 0;
    writebacks = 0;
  }

let lines t = t.cfg.size_bytes / t.cfg.line_bytes

let access_line t line write =
  t.clock <- t.clock + 1;
  let set_idx = line land ((1 lsl t.set_bits) - 1) in
  let tag = line lsr t.set_bits in
  let set = t.sets.(set_idx) in
  match
    Array.fold_left
      (fun acc w -> if w.valid && w.tag = tag then Some w else acc)
      None set
  with
  | Some w ->
      if write then w.dirty <- true;
      if t.cfg.policy = Lru then w.stamp <- t.clock;
      true
  | None ->
      t.line_fills <- t.line_fills + 1;
      (* victim: invalid way if any, else smallest stamp *)
      let victim =
        let inv = Array.fold_left (fun acc w -> if (not w.valid) && acc = None then Some w else acc) None set in
        match inv with
        | Some w -> w
        | None ->
            Array.fold_left
              (fun best w -> if w.stamp < best.stamp then w else best)
              set.(0) set
      in
      if victim.valid then begin
        t.evictions <- t.evictions + 1;
        if victim.dirty then t.writebacks <- t.writebacks + 1
      end;
      victim.tag <- tag;
      victim.valid <- true;
      victim.dirty <- write;
      victim.stamp <- t.clock;
      false

(* One access is one hit or one miss, whatever its width: an access that
   straddles a line boundary and misses either line counts as a single
   miss (the per-line traffic is still visible as [line_fills]). This
   keeps the invariant [hits + misses = accesses] that [hit_rate] and the
   energy model rely on. *)
let access t ~addr ~width ~write =
  t.accesses <- t.accesses + 1;
  let first = addr lsr t.line_bits in
  let last = (addr + width - 1) lsr t.line_bits in
  let hit = ref true in
  for line = first to last do
    if not (access_line t line write) then hit := false
  done;
  if !hit then t.hits <- t.hits + 1 else t.misses <- t.misses + 1;
  !hit

let stats t =
  {
    accesses = t.accesses;
    hits = t.hits;
    misses = t.misses;
    line_fills = t.line_fills;
    evictions = t.evictions;
    writebacks = t.writebacks;
  }

let config t = t.cfg

let hit_rate t =
  if t.accesses = 0 then 0.0
  else float_of_int t.hits /. float_of_int t.accesses

let flush_metrics ?(label = "l1") t =
  if Obs.enabled () then begin
    let labels = [ ("cache", label) ] in
    Obs.add (Obs.counter ~labels "cachesim.accesses") t.accesses;
    Obs.add (Obs.counter ~labels "cachesim.hits") t.hits;
    Obs.add (Obs.counter ~labels "cachesim.misses") t.misses;
    Obs.add (Obs.counter ~labels "cachesim.line_fills") t.line_fills;
    Obs.add (Obs.counter ~labels "cachesim.evictions") t.evictions;
    Obs.add (Obs.counter ~labels "cachesim.writebacks") t.writebacks
  end;
  if Foray_obs.Span.enabled () then
    Foray_obs.Span.instant ~cat:"cachesim" "cachesim.flush"
      ~args:
        [
          ("cache", label);
          ("accesses", string_of_int t.accesses);
          ("hits", string_of_int t.hits);
          ("misses", string_of_int t.misses);
        ]

let sink t : Foray_trace.Event.sink = function
  | Foray_trace.Event.Checkpoint _ -> ()
  | Foray_trace.Event.Access { addr; width; write; _ } ->
      ignore (access t ~addr ~width ~write)
