(** Compile-time name resolution for the simulator's hot path.

    The interpreter historically resolved every [Var] occurrence by walking
    a chain of [(string, var) Hashtbl.t] scopes — a string hash plus a list
    walk on the single most frequent operation of the whole system. This
    pass does that walk once, statically, and annotates every identifier
    occurrence (keyed by its expression id) with its storage class:

    - [Rglobal (i, ty)]: the [i]-th global variable, in declaration order —
      the simulator resolves [i] through a flat address array;
    - [Rslot (i, ty)]: slot [i] of the enclosing function's frame — the
      simulator resolves [i] through a per-call [int array];
    - [Runbound name]: no declaration in scope; the simulator raises the
      same runtime error the dynamic lookup would have raised.

    Resolution mirrors the interpreter's dynamic scoping exactly,
    including its two quirks: a declaration's name is in scope inside its
    own initializer (the slot is bound before the initializer runs), and
    global initializers may reference any global, even a later one
    (allocation of all globals precedes initialization). *)

type entry =
  | Rnone  (** expression is not an identifier occurrence *)
  | Rglobal of int * Ast.ty
  | Rslot of int * Ast.ty
  | Runbound of string

type t = {
  vars : entry array;  (** indexed by expression id *)
  decl_slots : int array;
      (** indexed by statement id; frame slot of an [Sdecl], -1 otherwise *)
  fun_nslots : (string, int) Hashtbl.t;
      (** function name -> frame slot count (parameters occupy slots
          [0 .. n_params-1], declarations follow) *)
  n_globals : int;
}

(** [program p] resolves every identifier of [p]. Returns [None] when the
    program's expression or statement ids are unsuitable for dense array
    indexing (negative — hand-built ASTs only; parser output always
    qualifies), in which case the simulator falls back to dynamic lookup. *)
val program : Ast.program -> t option
