open Ast

type entry =
  | Rnone
  | Rglobal of int * Ast.ty
  | Rslot of int * Ast.ty
  | Runbound of string

type t = {
  vars : entry array;
  decl_slots : int array;
  fun_nslots : (string, int) Hashtbl.t;
  n_globals : int;
}

(* Bounds of the id spaces. Instrumentation gives inserted statements
   negative ids, but those are never declarations, so only [Sdecl] ids and
   expression ids must be dense non-negative. *)

let rec expr_ids f (e : expr) =
  f e.eid;
  match e.e with
  | Int _ | Var _ -> ()
  | Bin (_, a, b) | Assign (a, b) | OpAssign (_, a, b) | Index (a, b) ->
      expr_ids f a;
      expr_ids f b
  | Un (_, a) | Incr (_, a) | Decr (_, a) | Deref a | Addr a | Cast (_, a) ->
      expr_ids f a
  | Call (_, args) -> List.iter (expr_ids f) args
  | Cond (c, a, b) ->
      expr_ids f c;
      expr_ids f a;
      expr_ids f b

let stmt_exprs st =
  match st.s with
  | Sexpr e -> [ e ]
  | Sdecl (_, _, Some (Iexpr e)) -> [ e ]
  | Sdecl _ -> []
  | Sif (c, _, _) -> [ c ]
  | Sfor (a, b, c, _) -> List.filter_map Fun.id [ a; b; c ]
  | Swhile (c, _) | Sdo (_, c) -> [ c ]
  | Sreturn (Some e) -> [ e ]
  | Sswitch (e, _) -> [ e ]
  | Sreturn None | Sbreak | Scontinue | Sblock _ | Scheckpoint _ -> []

(* Scan the whole program — function bodies and global initializers — for
   the maximal expression id, the maximal declaration id, and any negative
   id that would rule out dense indexing. *)
let scan prog =
  let max_eid = ref 0 and max_sid = ref 0 and ok = ref true in
  let on_eid id =
    if id < 0 then ok := false else if id > !max_eid then max_eid := id
  in
  let rec on_stmt st =
    (match st.s with
    | Sdecl _ ->
        if st.sid < 0 then ok := false
        else if st.sid > !max_sid then max_sid := st.sid
    | _ -> ());
    List.iter (expr_ids on_eid) (stmt_exprs st);
    match st.s with
    | Sif (_, a, b) ->
        List.iter on_stmt a;
        List.iter on_stmt b
    | Sfor (_, _, _, b) | Swhile (_, b) | Sdo (b, _) | Sblock b ->
        List.iter on_stmt b
    | Sswitch (_, cases) ->
        List.iter (fun (c : switch_case) -> List.iter on_stmt c.body) cases
    | Sexpr _ | Sdecl _ | Sreturn _ | Sbreak | Scontinue | Scheckpoint _ -> ()
  in
  List.iter
    (function
      | Gvar (_, _, Some (Iexpr e)) -> expr_ids on_eid e
      | Gvar _ -> ()
      | Gfunc f -> List.iter on_stmt f.body)
    prog.globals;
  if !ok then Some (!max_eid, !max_sid) else None

(* Scopes are tiny (a handful of names); association lists prepended on
   declaration give the same innermost-first, latest-wins shadowing as the
   interpreter's hashtable chain. *)
type env = {
  t : t;
  globals : (string, entry) Hashtbl.t;
  mutable scopes : (string * entry) list list; (* innermost first *)
  mutable next_slot : int;
}

let lookup env name =
  let rec in_scopes = function
    | [] -> None
    | s :: rest -> (
        match List.assoc_opt name s with
        | Some _ as r -> r
        | None -> in_scopes rest)
  in
  match in_scopes env.scopes with
  | Some e -> e
  | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some e -> e
      | None -> Runbound name)

let bind env name e =
  match env.scopes with
  | s :: rest -> env.scopes <- ((name, e) :: s) :: rest
  | [] -> assert false

let rec resolve_expr env (e : expr) =
  (match e.e with
  | Var name -> env.t.vars.(e.eid) <- lookup env name
  | _ -> ());
  match e.e with
  | Int _ | Var _ -> ()
  | Bin (_, a, b) | Assign (a, b) | OpAssign (_, a, b) | Index (a, b) ->
      resolve_expr env a;
      resolve_expr env b
  | Un (_, a) | Incr (_, a) | Decr (_, a) | Deref a | Addr a | Cast (_, a) ->
      resolve_expr env a
  | Call (_, args) -> List.iter (resolve_expr env) args
  | Cond (c, a, b) ->
      resolve_expr env c;
      resolve_expr env a;
      resolve_expr env b

let rec resolve_stmt env st =
  match st.s with
  | Sexpr e -> resolve_expr env e
  | Sdecl (ty, name, init) ->
      let slot = env.next_slot in
      env.next_slot <- slot + 1;
      env.t.decl_slots.(st.sid) <- slot;
      (* The name is bound before the initializer is resolved: the
         interpreter enters the variable into scope before evaluating its
         initializer, so [int x = x + 1;] reads the fresh slot. *)
      bind env name (Rslot (slot, ty));
      (match init with
      | Some (Iexpr e) -> resolve_expr env e
      | Some (Ilist _) | None -> ())
  | Sif (c, a, b) ->
      resolve_expr env c;
      resolve_block env a;
      resolve_block env b
  | Sfor (i, c, s, b) ->
      Option.iter (resolve_expr env) i;
      Option.iter (resolve_expr env) c;
      Option.iter (resolve_expr env) s;
      resolve_block env b
  | Swhile (c, b) ->
      resolve_expr env c;
      resolve_block env b
  | Sdo (b, c) ->
      resolve_block env b;
      resolve_expr env c
  | Sreturn e -> Option.iter (resolve_expr env) e
  | Sbreak | Scontinue | Scheckpoint _ -> ()
  | Sblock b -> resolve_block env b
  | Sswitch (e, cases) ->
      resolve_expr env e;
      List.iter (fun (c : switch_case) -> resolve_block env c.body) cases

and resolve_block env b =
  env.scopes <- [] :: env.scopes;
  List.iter (resolve_stmt env) b;
  env.scopes <- List.tl env.scopes

let program prog =
  match scan prog with
  | None -> None
  | Some (max_eid, max_sid) ->
      let t =
        {
          vars = Array.make (max_eid + 1) Rnone;
          decl_slots = Array.make (max_sid + 1) (-1);
          fun_nslots = Hashtbl.create 16;
          n_globals = 0;
        }
      in
      let globals = Hashtbl.create 32 in
      (* All globals are allocated before any initializer runs, so every
         initializer sees the full global table. *)
      let n_globals =
        List.fold_left
          (fun i g ->
            match g with
            | Gvar (ty, name, _) ->
                Hashtbl.replace globals name (Rglobal (i, ty));
                i + 1
            | Gfunc _ -> i)
          0 prog.globals
      in
      let t = { t with n_globals } in
      let env = { t; globals; scopes = []; next_slot = 0 } in
      List.iter
        (function
          | Gvar (_, _, Some (Iexpr e)) -> resolve_expr env e
          | Gvar _ -> ()
          | Gfunc f ->
              env.next_slot <- 0;
              let params =
                List.map
                  (fun (ty, name) ->
                    let slot = env.next_slot in
                    env.next_slot <- slot + 1;
                    (name, Rslot (slot, ty)))
                  f.params
              in
              env.scopes <- [ List.rev params ];
              resolve_block env f.body;
              env.scopes <- [];
              Hashtbl.replace t.fun_nslots f.fname env.next_slot)
        prog.globals;
      Some t
