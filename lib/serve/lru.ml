type 'a node = {
  n_key : string;
  n_value : 'a;
  n_bytes : int;
  mutable n_prev : 'a node option;  (* toward most-recent *)
  mutable n_next : 'a node option;  (* toward least-recent *)
}

type 'a t = {
  lru_max : int;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* most recently used *)
  mutable tail : 'a node option;  (* least recently used *)
  mutable total : int;
}

let create ~max_bytes =
  if max_bytes < 0 then invalid_arg "Lru.create: negative max_bytes";
  { lru_max = max_bytes; tbl = Hashtbl.create 64; head = None; tail = None;
    total = 0 }

let unlink t node =
  (match node.n_prev with
  | Some p -> p.n_next <- node.n_next
  | None -> t.head <- node.n_next);
  (match node.n_next with
  | Some nx -> nx.n_prev <- node.n_prev
  | None -> t.tail <- node.n_prev);
  node.n_prev <- None;
  node.n_next <- None

let push_front t node =
  node.n_next <- t.head;
  node.n_prev <- None;
  (match t.head with Some h -> h.n_prev <- Some node | None -> ());
  t.head <- Some node;
  if t.tail = None then t.tail <- Some node

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some node ->
      unlink t node;
      push_front t node;
      Some node.n_value

let drop t node =
  unlink t node;
  Hashtbl.remove t.tbl node.n_key;
  t.total <- t.total - node.n_bytes

let add t ~key ~bytes v =
  if t.lru_max = 0 || bytes > t.lru_max then 0
  else begin
    (match Hashtbl.find_opt t.tbl key with
    | Some old -> drop t old
    | None -> ());
    let node =
      { n_key = key; n_value = v; n_bytes = bytes; n_prev = None;
        n_next = None }
    in
    Hashtbl.replace t.tbl key node;
    push_front t node;
    t.total <- t.total + bytes;
    let evicted = ref 0 in
    while t.total > t.lru_max do
      match t.tail with
      | Some victim ->
          drop t victim;
          incr evicted
      | None -> assert false (* total > 0 implies a tail *)
    done;
    !evicted
  end

let entries t = Hashtbl.length t.tbl
let bytes t = t.total
let max_bytes t = t.lru_max
