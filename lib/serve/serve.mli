(** [forayd]: a long-running FORAY-GEN analysis service.

    The daemon listens on a Unix-domain socket and speaks a
    newline-delimited JSON protocol: each request is one JSON object on
    one line, each response one JSON object on one line, many requests per
    connection. Connections are handled by lightweight threads (so the
    daemon always stays responsive to cheap requests) while the actual
    simulate-and-analyze work is dispatched onto a persistent
    {!Foray_util.Parallel.pool} of domains.

    {b Operations} (the ["op"] field):
    - ["analyze"] — run the full pipeline on a program (["program"] name
      or inline ["source"]) or on a stored trace file (["trace"] path,
      optionally ["shards"]/["jobs"]/["strict"]); returns the FORAY model
      plus run statistics.
    - ["extract"] — like [analyze] on a program, but the response carries
      only the model (the CLI [extract] analogue).
    - ["spm"] — Phase II buffer selection (the CLI [spm] analogue): run
      the pipeline, derive buffer candidates and solve the placement for
      one capacity (["spm_bytes"]) or a sweep (["sizes"] array; default
      256..16384). The model is addressed by ["program"], inline
      ["source"], or ["digest"] — the source digest an earlier
      analyze/extract/spm of this daemon reported (unknown digests are
      [E_NOT_FOUND]). ["strategy"] is ["optimal"] (default), ["greedy"]
      or ["stochastic"] ({!Foray_spm.Dse.solve}); the stochastic knobs
      are ["seed"], ["budget_proposals"], ["restarts"], and the
      request's ["deadline_ms"] doubles as the anytime cutoff. The
      response carries a ["results"] array (one selection per size, with
      a ["search"] statistics object under the stochastic strategy),
      cached by model key x spm configuration.
    - ["verify"] — per-reference model-replay verification (the CLI
      [verify] analogue, {!Foray_verify.Verify}): extract the model, then
      replay the recorded access stream against it and render a verdict
      per reference — [proved], or [diverges] with the first-divergence
      counterexample. The model is addressed like [spm] (["program"],
      inline ["source"], a remembered ["digest"], or a stored ["trace"]
      path, with ["shards"]/["jobs"]/["strict"] honoured for traces); the
      response carries the {!Foray_verify.Verify.report_to_json} object
      as the ["verify"] field, cached by model key (or trace digest x
      thresholds).
    - ["metrics"] — the process metrics registry
      ({!Foray_obs.Obs.to_json}) plus a ["window"] object (the
      {!Foray_obs.Window} 10s/60s/300s sliding stats) and a ["slow"]
      array (the last requests over the [--slow-ms] threshold). Runtime
      gauges ([runtime.gc.*], [serve.pool.*],
      [serve.connections.active]) are sampled at this scrape.
    - ["metrics_text"] — the same registry rendered as Prometheus /
      OpenMetrics text ({!Foray_obs.Obs.to_openmetrics}, window gauges
      included), returned as the ["text"] string field.
    - ["ping"] — liveness probe.
    - ["shutdown"] — reply, then stop accepting, drain connections, join
      the pool and remove the socket.

    Analyze/extract accept per-request budgets ["max_steps"],
    ["deadline_ms"], ["max_trace_events"] (enforced by the
    {!Minic_sim.Interp.config} machinery; exhaustion degrades the result,
    it does not fail it), Step-4 thresholds ["nexec"]/["nloc"],
    ["trace_scalars"], and ["cache": false] to bypass the model cache.

    {b Request telemetry.} Every request is assigned a [rid] (echoed in
    the response and in all telemetry). ["trace": true] on
    analyze/extract returns the request's reconstructed span tree inline
    as the ["trace"] field — a synthetic ["request"] root whose
    [dur_us] is the same latency the response's ["ms"] field and the
    access log report, with the pool task's spans as children. With
    [config.access_log] set, each request appends one JSONL line (ts,
    rid, op, source digest, cache hit/miss, degradations, steps,
    latency); requests at or over [config.slow_ms] additionally log
    their full span breakdown and are remembered for the [metrics] op's
    ["slow"] array. Every request also lands in the sliding
    {!Foray_obs.Window}.

    {b Failure taxonomy.} Every failure maps onto {!Foray_core.Error.t}
    and is returned as [{"status": "error", "error": {...}}] with the same
    [E_*] codes and JSON shape as the CLI; recoverable shortfalls come
    back as [{"status": "ok", "degraded": [...]}] with the pipeline's
    degradation provenance. Protocol violations (bad JSON, unknown op,
    mistyped field) are [E_BAD_REQUEST].

    {b Model cache.} Results are cached in a byte-bounded {!Lru} keyed by
    {!Foray_core.Pipeline.model_key} (source digest × analysis config), so
    repeat traffic is served from memory without re-simulating. [spm]
    responses share the cache under keys extending the model key with the
    spm configuration (sizes, strategy, seed, budget, restarts,
    deadline), and sources are remembered by digest so [spm] requests can
    readdress analyzed models. Degraded results are never cached.
    Hits/misses/evictions are counted under [serve.cache.*]. *)

type config = {
  socket_path : string;
  jobs : int;  (** worker domains of the analysis pool *)
  cache_bytes : int;  (** model-cache bound; [0] disables caching *)
  max_steps_cap : int option;
      (** server-side ceiling clamped onto every request's [max_steps] *)
  access_log : string option;
      (** append one JSONL line per request to this path *)
  slow_ms : int option;
      (** requests at/over this latency log their span breakdown and are
          kept for the [metrics] op's ["slow"] array *)
}

(** [jobs = Parallel.default_jobs ()], 64 MiB cache, no step cap, no
    access log, no slow threshold. *)
val default_config : socket_path:string -> config

type server

(** [start config] binds the socket (replacing a stale file), spawns the
    pool and an acceptor domain, and returns immediately. Metrics
    collection ({!Foray_obs.Obs.set_enabled}) and span tracing
    ({!Foray_obs.Span.set_enabled}) are switched on so the [serve.*]
    counters, the [metrics]/[metrics_text] ops and per-request traces
    are live. *)
val start : config -> server

(** Block until the server has fully stopped (shutdown request received,
    connections drained, pool joined, socket removed). *)
val wait : server -> unit

(** [run config] is [wait (start config)]: the blocking form behind
    [foraygen serve]. *)
val run : config -> unit

(** The bound socket path. *)
val socket_path : server -> string

(** A fresh short path under the temp directory, safe for
    [sun_path]-length limits. *)
val temp_socket_path : unit -> string

(** {1 Client side} *)

module Client : sig
  type t

  val connect : string -> t

  (** [request t line] sends one request line and blocks for the response
      line. @raise Failure if the server hangs up mid-request. *)
  val request : t -> string -> string

  (** [rpc t fields] builds a one-line JSON object from
      [(key, literal-value)] pairs (values must already be valid JSON
      literals, e.g. ["\"jpeg\""] or ["20"]), sends it, and parses the
      response. *)
  val rpc : t -> (string * string) list -> Json.t

  val close : t -> unit

  (** Connect, send [{"op": "shutdown"}], await the reply, close. *)
  val shutdown : string -> unit
end

(** {1 Load generator}

    Drives a running daemon with [clients] concurrent connections (one
    domain each) issuing [requests] analyze/extract requests per client
    over [programs] round-robin, after timing one cold and one warm
    [analyze] of [cold_program]. The cold/warm pair is issued first, so
    on a fresh daemon [br_cold_ms] is a true miss and [br_warm_ms] a
    cache hit of the same key. Latencies are measured per request at the
    client; hit/miss counts are the {e soak-only delta} of the daemon's
    cache counters (snapshot before, read after), so back-to-back soaks
    against one daemon report honest hit rates. The daemon's own
    10s-window rps/percentiles are read post-soak. *)

type bench_result = {
  br_clients : int;
  br_requests : int;  (** total requests across all clients (soak only) *)
  br_wall_s : float;
  br_rps : float;
  br_p50_ms : float;
  br_p99_ms : float;
  br_hits : int;  (** soak-only delta *)
  br_misses : int;  (** soak-only delta *)
  br_hit_rate : float;  (** hits / (hits + misses) over the soak *)
  br_cold_ms : float;
  br_warm_ms : float;
  br_warm_speedup : float;  (** cold / warm *)
  br_win_rps : float;  (** daemon 10s window, read post-soak *)
  br_win_p50_ms : int;
  br_win_p99_ms : int;
}

val bench :
  socket:string ->
  clients:int ->
  requests:int ->
  programs:string list ->
  cold_program:string ->
  bench_result

val bench_result_to_string : bench_result -> string

(** The [serve] record of [BENCH_pipeline.json]. *)
val bench_result_to_json : bench_result -> string
