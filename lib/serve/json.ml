type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of int * string

let fail pos msg = raise (Bad (pos, msg))

(* UTF-8 encode one code point (for \uXXXX escapes). Surrogate pairs are
   combined by the caller. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail !pos (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail !pos (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail !pos "truncated \\u escape";
    let v = int_of_string_opt ("0x" ^ String.sub s !pos 4) in
    match v with
    | Some v ->
        pos := !pos + 4;
        v
    | None -> fail !pos "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail !pos "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'u' ->
                 advance ();
                 let cp = hex4 () in
                 let cp =
                   (* high surrogate: consume the paired low surrogate *)
                   if cp >= 0xD800 && cp <= 0xDBFF && !pos + 6 <= n
                      && s.[!pos] = '\\'
                      && s.[!pos + 1] = 'u'
                   then begin
                     pos := !pos + 2;
                     let lo = hex4 () in
                     if lo >= 0xDC00 && lo <= 0xDFFF then
                       0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                     else fail !pos "unpaired surrogate"
                   end
                   else cp
                 in
                 add_utf8 buf cp
             | c -> fail !pos (Printf.sprintf "bad escape '\\%c'" c));
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '+' | '-' ->
          is_float := true;
          true
      | _ -> false
    do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail start "bad number"
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> fail start "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail !pos "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail !pos "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail !pos (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail !pos "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Bad (p, msg) -> Error (Printf.sprintf "%s at byte %d" msg p)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let str_field key j =
  match member key j with
  | None | Some Null -> Ok None
  | Some (Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" key)

let int_field key j =
  match member key j with
  | None | Some Null -> Ok None
  | Some (Int i) -> Ok (Some i)
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" key)

let bool_field key j =
  match member key j with
  | None | Some Null -> Ok None
  | Some (Bool b) -> Ok (Some b)
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" key)
