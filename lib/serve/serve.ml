module Ferr = Foray_core.Error
module Pipeline = Foray_core.Pipeline
module Filter = Foray_core.Filter
module Model = Foray_core.Model
module Obs = Foray_obs.Obs
module Parallel = Foray_util.Parallel
module Interp = Minic_sim.Interp

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)

let m_requests op = Obs.counter ~labels:[ ("op", op) ] "serve.requests"
let m_errors = lazy (Obs.counter "serve.errors")
let m_connections = lazy (Obs.counter "serve.connections")
let m_cache_hits = lazy (Obs.counter "serve.cache.hits")
let m_cache_misses = lazy (Obs.counter "serve.cache.misses")
let m_cache_evictions = lazy (Obs.counter "serve.cache.evictions")
let m_cache_entries = lazy (Obs.gauge "serve.cache.entries")
let m_cache_bytes = lazy (Obs.gauge "serve.cache.bytes")

let m_request_ms =
  lazy
    (Obs.histogram
       ~bounds:[ 1; 2; 5; 10; 20; 50; 100; 200; 500; 1000; 2000; 5000 ]
       "serve.request_ms")

(* ------------------------------------------------------------------ *)
(* Configuration and server state                                     *)

type config = {
  socket_path : string;
  jobs : int;
  cache_bytes : int;
  max_steps_cap : int option;
}

let default_config ~socket_path =
  {
    socket_path;
    jobs = Parallel.default_jobs ();
    cache_bytes = 64 * 1024 * 1024;
    max_steps_cap = None;
  }

(* The cached product of one analysis: everything both [analyze] and
   [extract] responses need, so the two ops share cache entries and a
   cached response is byte-identical to the uncached one. *)
type payload = {
  mp_model : string;
  mp_n_refs : int;
  mp_n_loops : int;
  mp_steps : int;
  mp_accesses : int;
  mp_events : int;
}

type server = {
  s_cfg : config;
  s_fd : Unix.file_descr;
  s_pool : Parallel.pool;
  s_cache : payload Lru.t;
  s_cache_mutex : Mutex.t;
  s_stop : bool Atomic.t;
  s_conn_mutex : Mutex.t;
  s_conn_cond : Condition.t;
  mutable s_active : int;
  mutable s_acceptor : unit Domain.t option;
}

let socket_path srv = srv.s_cfg.socket_path

let temp_counter = Atomic.make 0

let temp_socket_path () =
  (* sun_path is ~108 bytes; keep the name short and under the temp dir. *)
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "forayd-%d-%d.sock" (Unix.getpid ())
       (Atomic.fetch_and_add temp_counter 1))

(* ------------------------------------------------------------------ *)
(* Line-oriented socket IO                                            *)

(* A hand-rolled buffered reader over [Unix.read]. Channels
   ([in_channel]/[out_channel] pairs over one fd) are avoided on purpose:
   closing either channel closes the shared fd, and with connection
   threads racing a shutdown drain that invites double-close/fd-reuse
   bugs. *)
type reader = {
  r_fd : Unix.file_descr;
  r_chunk : bytes;
  mutable r_pending : string;
  mutable r_eof : bool;
}

let make_reader fd =
  { r_fd = fd; r_chunk = Bytes.create 8192; r_pending = ""; r_eof = false }

let rec read_line r =
  match String.index_opt r.r_pending '\n' with
  | Some i ->
      let line = String.sub r.r_pending 0 i in
      r.r_pending <-
        String.sub r.r_pending (i + 1) (String.length r.r_pending - i - 1);
      Some line
  | None ->
      if r.r_eof then
        if r.r_pending = "" then None
        else begin
          (* final line without a trailing newline *)
          let line = r.r_pending in
          r.r_pending <- "";
          Some line
        end
      else begin
        let n = Unix.read r.r_fd r.r_chunk 0 (Bytes.length r.r_chunk) in
        if n = 0 then r.r_eof <- true
        else r.r_pending <- r.r_pending ^ Bytes.sub_string r.r_chunk 0 n;
        read_line r
      end

let write_line fd line =
  let data = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length data in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd data !off (len - !off)
  done

(* ------------------------------------------------------------------ *)
(* Request handling                                                   *)

let render_id j =
  match Json.member "id" j with
  | Some (Json.Int i) -> string_of_int i
  | Some (Json.Str s) -> Printf.sprintf "\"%s\"" (Ferr.json_escape s)
  | _ -> "null"

let render_error ~id e =
  Obs.incr (Lazy.force m_errors);
  Printf.sprintf "{\"id\": %s, \"status\": \"error\", \"error\": %s}" id
    (Ferr.to_json e)

let render_ok ~id ~op ~cached ~degraded p =
  let buf = Buffer.create (String.length p.mp_model + 256) in
  Printf.bprintf buf
    "{\"id\": %s, \"status\": \"ok\", \"op\": \"%s\", \"cached\": %b, \
     \"model\": \"%s\""
    id op cached
    (Ferr.json_escape p.mp_model);
  if op <> "extract" then
    Printf.bprintf buf
      ", \"n_refs\": %d, \"n_loops\": %d, \"steps\": %d, \"accesses\": %d, \
       \"events\": %d"
      p.mp_n_refs p.mp_n_loops p.mp_steps p.mp_accesses p.mp_events;
  Printf.bprintf buf ", \"degraded\": [%s]}"
    (String.concat ", " (List.map Pipeline.degradation_to_json degraded));
  Buffer.contents buf

let cache_find srv key =
  Mutex.lock srv.s_cache_mutex;
  let hit = Lru.find srv.s_cache key in
  Mutex.unlock srv.s_cache_mutex;
  (match hit with
  | Some _ -> Obs.incr (Lazy.force m_cache_hits)
  | None -> Obs.incr (Lazy.force m_cache_misses));
  hit

let cache_add srv key p =
  let bytes = String.length p.mp_model + String.length key + 128 in
  Mutex.lock srv.s_cache_mutex;
  let evicted = Lru.add srv.s_cache ~key ~bytes p in
  let entries = Lru.entries srv.s_cache and total = Lru.bytes srv.s_cache in
  Mutex.unlock srv.s_cache_mutex;
  Obs.add (Lazy.force m_cache_evictions) evicted;
  Obs.set (Lazy.force m_cache_entries) entries;
  Obs.set (Lazy.force m_cache_bytes) total

(* [finish_degraded]'s strict arm, daemon-side: the first shortfall as the
   typed error the CLI would have exited with. *)
let error_of_degradation = function
  | Pipeline.Degraded_budget { budget; limit; spent; _ } ->
      Ferr.Budget_exceeded { budget; limit; spent }
  | Pipeline.Degraded_corrupt { offset; kind; salvaged; _ } ->
      Ferr.Trace_corrupt { offset; kind; events_salvaged = salvaged }

type request = {
  rq_op : string;
  rq_program : string option;
  rq_source : string option;
  rq_trace : string option;
  rq_config : Interp.config;
  rq_thresholds : Filter.thresholds;
  rq_cache : bool;
  rq_strict : bool;
  rq_shards : int;
  rq_jobs : int option;
}

let parse_request srv j op =
  let ( let* ) = Result.bind in
  let field f k =
    Result.map_error (fun msg -> Ferr.Bad_request { msg }) (f k j)
  in
  let* program = field Json.str_field "program" in
  let* source = field Json.str_field "source" in
  let* trace = field Json.str_field "trace" in
  let* max_steps = field Json.int_field "max_steps" in
  let* deadline_ms = field Json.int_field "deadline_ms" in
  let* max_trace_events = field Json.int_field "max_trace_events" in
  let* nexec = field Json.int_field "nexec" in
  let* nloc = field Json.int_field "nloc" in
  let* trace_scalars = field Json.bool_field "trace_scalars" in
  let* use_cache = field Json.bool_field "cache" in
  let* strict = field Json.bool_field "strict" in
  let* shards = field Json.int_field "shards" in
  let* jobs = field Json.int_field "jobs" in
  let base = Interp.default_config in
  let max_steps =
    let requested = Option.value max_steps ~default:base.Interp.max_steps in
    match srv.s_cfg.max_steps_cap with
    | Some cap -> min requested cap
    | None -> requested
  in
  let config =
    {
      base with
      Interp.trace_scalars =
        Option.value trace_scalars ~default:base.Interp.trace_scalars;
      max_steps;
      deadline_ms =
        (match deadline_ms with Some _ -> deadline_ms | None -> base.Interp.deadline_ms);
      max_trace_events =
        (match max_trace_events with
        | Some _ -> max_trace_events
        | None -> base.Interp.max_trace_events);
    }
  in
  let thresholds =
    {
      Filter.nexec = Option.value nexec ~default:Filter.default.Filter.nexec;
      nloc = Option.value nloc ~default:Filter.default.Filter.nloc;
    }
  in
  Ok
    {
      rq_op = op;
      rq_program = program;
      rq_source = source;
      rq_trace = trace;
      rq_config = config;
      rq_thresholds = thresholds;
      rq_cache = Option.value use_cache ~default:true;
      rq_strict = Option.value strict ~default:false;
      rq_shards = Option.value shards ~default:1;
      rq_jobs = jobs;
    }

let payload_of_outcome (r : Pipeline.result) =
  {
    mp_model = Model.to_c r.Pipeline.model;
    mp_n_refs = Model.n_refs r.Pipeline.model;
    mp_n_loops = Model.n_loops r.Pipeline.model;
    mp_steps = r.Pipeline.sim.Interp.steps;
    mp_accesses = r.Pipeline.sim.Interp.accesses;
    mp_events = Foray_trace.Tstats.total_accesses r.Pipeline.tstats;
  }

(* Analyze a program source: cache lookup, then the full pipeline on the
   domain pool. Only complete (non-degraded) outcomes enter the cache, so
   a hit can always claim [degraded: []]. *)
let analyze_source srv rq src =
  let key = Pipeline.model_key ~config:rq.rq_config ~thresholds:rq.rq_thresholds src in
  match if rq.rq_cache then cache_find srv key else None with
  | Some p -> Ok (p, true, [])
  | None -> (
      let outcome =
        Parallel.await
          (Parallel.async srv.s_pool (fun () ->
               Pipeline.run_source ~config:rq.rq_config
                 ~thresholds:rq.rq_thresholds src))
      in
      match outcome with
      | Error e -> Error e
      | Ok { Pipeline.degraded = d :: _; _ } when rq.rq_strict ->
          Error (error_of_degradation d)
      | Ok { Pipeline.result = r; degraded } ->
          let p = payload_of_outcome r in
          if rq.rq_cache && degraded = [] then cache_add srv key p;
          Ok (p, false, degraded))

(* Analyze a stored trace file (Steps 3-4 only): keyed by content digest
   plus the Step-4 thresholds — the only knobs that change the model of a
   stored trace (shard count is bit-identical by construction). *)
let analyze_trace srv rq path =
  if not (Sys.file_exists path) then
    Error (Ferr.Not_found_program { name = path })
  else
    match Digest.file path with
    | exception Sys_error _ -> Error (Ferr.Not_found_program { name = path })
    | digest -> (
        let key =
          Printf.sprintf "trace:%s:%d:%d" (Digest.to_hex digest)
            rq.rq_thresholds.Filter.nexec rq.rq_thresholds.Filter.nloc
        in
        match if rq.rq_cache then cache_find srv key else None with
        | Some p -> Ok (p, true, [])
        | None -> (
            let res =
              Parallel.await
                (Parallel.async srv.s_pool (fun () ->
                     Pipeline.analyze_trace ~strict:rq.rq_strict
                       ~shards:rq.rq_shards ?jobs:rq.rq_jobs path))
            in
            match res with
            | Error { Foray_trace.Tracefile.offset; kind; events_before } ->
                Error
                  (Ferr.Trace_corrupt
                     { offset; kind; events_salvaged = events_before })
            | Ok ((tree, tstats), salvage) ->
                let model =
                  Model.of_tree ~thresholds:rq.rq_thresholds tree
                in
                let open Foray_trace.Tracefile in
                let degraded =
                  if salvage.resyncs = 0 && not salvage.truncated_tail then []
                  else
                    [
                      Pipeline.Degraded_corrupt
                        {
                          offset =
                            (match salvage.first_errors with
                            | (off, _) :: _ -> off
                            | [] -> -1);
                          kind =
                            (match salvage.first_errors with
                            | (_, k) :: _ -> k
                            | [] -> "unknown");
                          salvaged = salvage.events;
                          resyncs = salvage.resyncs;
                          bytes_skipped = salvage.bytes_skipped;
                        };
                    ]
                in
                let p =
                  {
                    mp_model = Model.to_c model;
                    mp_n_refs = Model.n_refs model;
                    mp_n_loops = Model.n_loops model;
                    mp_steps = 0;
                    mp_accesses =
                      Foray_trace.Tstats.total_accesses tstats;
                    mp_events = salvage.events;
                  }
                in
                if rq.rq_cache && degraded = [] then cache_add srv key p;
                Ok (p, false, degraded)))

let handle_analyze srv j ~id ~op =
  match
    let ( let* ) = Result.bind in
    let* rq = parse_request srv j op in
    match rq.rq_trace with
    | Some path -> analyze_trace srv rq path
    | None -> (
        let* src =
          match (rq.rq_source, rq.rq_program) with
          | Some s, _ -> Ok s
          | None, Some name -> Foray_suite.Suite.load name
          | None, None ->
              Error
                (Ferr.Bad_request
                   {
                     msg =
                       Printf.sprintf
                         "%s needs \"program\", \"source\" or \"trace\"" op;
                   })
        in
        analyze_source srv rq src)
  with
  | Ok (p, cached, degraded) -> render_ok ~id ~op ~cached ~degraded p
  | Error e -> render_error ~id e

(* One request line in, one response line out. Returns the response and
   whether the connection (or the whole server) should wind down. *)
let handle_line srv line =
  match Json.parse line with
  | Error msg ->
      (render_error ~id:"null" (Ferr.Bad_request { msg }), false)
  | Ok j -> (
      let id = render_id j in
      match Json.str_field "op" j with
      | Error msg -> (render_error ~id (Ferr.Bad_request { msg }), false)
      | Ok None ->
          (render_error ~id (Ferr.Bad_request { msg = "missing \"op\"" }), false)
      | Ok (Some op) -> (
          Obs.incr (m_requests op);
          match op with
          | "ping" ->
              ( Printf.sprintf "{\"id\": %s, \"status\": \"ok\", \"op\": \"ping\"}" id,
                false )
          | "metrics" ->
              ( Printf.sprintf
                  "{\"id\": %s, \"status\": \"ok\", \"op\": \"metrics\", \
                   \"metrics\": %s}"
                  id (Obs.to_json ()),
                false )
          | "shutdown" ->
              Atomic.set srv.s_stop true;
              ( Printf.sprintf
                  "{\"id\": %s, \"status\": \"ok\", \"op\": \"shutdown\"}" id,
                true )
          | "analyze" | "extract" -> (
              match handle_analyze srv j ~id ~op with
              | resp -> (resp, false)
              | exception e -> (
                  (* a worker exception that escaped the taxonomy must
                     never kill the daemon — or poison other clients *)
                  match Ferr.of_exn e with
                  | Some fe -> (render_error ~id fe, false)
                  | None ->
                      ( render_error ~id
                          (Ferr.Runtime
                             {
                               loc = "serve";
                               step = -1;
                               msg = Printexc.to_string e;
                             }),
                        false )))
          | other ->
              ( render_error ~id
                  (Ferr.Bad_request
                     { msg = Printf.sprintf "unknown op %S" other }),
                false )))

(* Wake the acceptor blocked in [Unix.accept]: connect to ourselves and
   hang up. Done after every shutdown reply, by the connection thread. *)
let poke srv =
  match Unix.socket PF_UNIX SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.connect fd (ADDR_UNIX srv.s_cfg.socket_path)
       with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let serve_connection srv fd =
  let reader = make_reader fd in
  let rec loop () =
    match read_line reader with
    | None -> ()
    | Some line when String.trim line = "" -> loop ()
    | Some line ->
        let t0 = Unix.gettimeofday () in
        let resp, wind_down = handle_line srv line in
        Obs.observe
          (Lazy.force m_request_ms)
          (int_of_float ((Unix.gettimeofday () -. t0) *. 1000.0));
        write_line fd resp;
        if wind_down then poke srv else loop ()
  in
  (* a client hanging up mid-request or mid-response is its own problem *)
  try loop () with Unix.Unix_error _ -> ()

let accept_loop srv =
  let rec loop () =
    if Atomic.get srv.s_stop then ()
    else
      match Unix.accept srv.s_fd with
      | exception Unix.Unix_error (EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> if Atomic.get srv.s_stop then () else ()
      | cfd, _ ->
          if Atomic.get srv.s_stop then (
            (try Unix.close cfd with Unix.Unix_error _ -> ()))
          else begin
            Obs.incr (Lazy.force m_connections);
            Mutex.lock srv.s_conn_mutex;
            srv.s_active <- srv.s_active + 1;
            Mutex.unlock srv.s_conn_mutex;
            ignore
              (Thread.create
                 (fun () ->
                   Fun.protect
                     ~finally:(fun () ->
                       (try Unix.close cfd with Unix.Unix_error _ -> ());
                       Mutex.lock srv.s_conn_mutex;
                       srv.s_active <- srv.s_active - 1;
                       Condition.broadcast srv.s_conn_cond;
                       Mutex.unlock srv.s_conn_mutex)
                     (fun () -> serve_connection srv cfd))
                 ());
            loop ()
          end
  in
  loop ();
  (* drain in-flight connections before tearing anything down *)
  Mutex.lock srv.s_conn_mutex;
  while srv.s_active > 0 do
    Condition.wait srv.s_conn_cond srv.s_conn_mutex
  done;
  Mutex.unlock srv.s_conn_mutex;
  Parallel.shutdown_pool srv.s_pool;
  (try Unix.close srv.s_fd with Unix.Unix_error _ -> ());
  try Unix.unlink srv.s_cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ()

let remove_stale path =
  match Unix.lstat path with
  | exception Unix.Unix_error (ENOENT, _, _) -> ()
  | { Unix.st_kind = S_SOCK; _ } -> Unix.unlink path
  | _ ->
      Ferr.raise_error
        (Ferr.Bad_request
           { msg = Printf.sprintf "%s exists and is not a socket" path })

let start cfg =
  if cfg.jobs < 1 then invalid_arg "Serve.start: jobs must be >= 1";
  Obs.set_enabled true;
  (* a client vanishing mid-response must be an EPIPE error, not a kill *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  remove_stale cfg.socket_path;
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  (match Unix.bind fd (ADDR_UNIX cfg.socket_path) with
  | () -> ()
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e);
  Unix.listen fd 64;
  let srv =
    {
      s_cfg = cfg;
      s_fd = fd;
      s_pool = Parallel.create_pool ~jobs:cfg.jobs ();
      s_cache = Lru.create ~max_bytes:cfg.cache_bytes;
      s_cache_mutex = Mutex.create ();
      s_stop = Atomic.make false;
      s_conn_mutex = Mutex.create ();
      s_conn_cond = Condition.create ();
      s_active = 0;
      s_acceptor = None;
    }
  in
  srv.s_acceptor <- Some (Domain.spawn (fun () -> accept_loop srv));
  srv

let wait srv =
  match srv.s_acceptor with Some d -> Domain.join d | None -> ()

let run cfg = wait (start cfg)

(* ------------------------------------------------------------------ *)
(* Client                                                             *)

module Client = struct
  type t = { c_fd : Unix.file_descr; c_reader : reader }

  let connect path =
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    (match Unix.connect fd (ADDR_UNIX path) with
    | () -> ()
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e);
    { c_fd = fd; c_reader = make_reader fd }

  let request t line =
    write_line t.c_fd line;
    match read_line t.c_reader with
    | Some resp -> resp
    | None -> failwith "Serve.Client.request: server closed the connection"

  let rpc t fields =
    let line =
      "{"
      ^ String.concat ", "
          (List.map
             (fun (k, v) -> Printf.sprintf "\"%s\": %s" (Ferr.json_escape k) v)
             fields)
      ^ "}"
    in
    match Json.parse (request t line) with
    | Ok j -> j
    | Error msg -> failwith ("Serve.Client.rpc: bad response JSON: " ^ msg)

  let close t = try Unix.close t.c_fd with Unix.Unix_error _ -> ()

  let shutdown path =
    let t = connect path in
    Fun.protect
      ~finally:(fun () -> close t)
      (fun () -> ignore (request t "{\"op\": \"shutdown\"}"))
end

(* ------------------------------------------------------------------ *)
(* Load generator                                                     *)

type bench_result = {
  br_clients : int;
  br_requests : int;
  br_wall_s : float;
  br_rps : float;
  br_p50_ms : float;
  br_p99_ms : float;
  br_hits : int;
  br_misses : int;
  br_hit_rate : float;
  br_cold_ms : float;
  br_warm_ms : float;
  br_warm_speedup : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (float_of_int n *. p)))

let timed_request client line =
  let t0 = Unix.gettimeofday () in
  let resp = Client.request client line in
  let dt = (Unix.gettimeofday () -. t0) *. 1000.0 in
  (resp, dt)

let analyze_line prog =
  Printf.sprintf "{\"op\": \"analyze\", \"program\": \"%s\"}"
    (Ferr.json_escape prog)

let extract_line prog =
  Printf.sprintf "{\"op\": \"extract\", \"program\": \"%s\"}"
    (Ferr.json_escape prog)

let metric_value j name =
  match Json.member "metrics" j with
  | Some m -> (
      match Json.member "counters" m with
      | Some c -> (
          match Json.member name c with Some (Json.Int i) -> i | _ -> 0)
      | None -> 0)
  | None -> 0

let bench ~socket ~clients ~requests ~programs ~cold_program =
  if programs = [] then invalid_arg "Serve.bench: programs must be non-empty";
  let progs = Array.of_list programs in
  (* cold/warm probe first: on a fresh daemon the first analyze of
     [cold_program] is a guaranteed miss, the immediate repeat a hit *)
  let cold_ms, warm_ms =
    let c = Client.connect socket in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        let _, cold = timed_request c (analyze_line cold_program) in
        let _, warm = timed_request c (analyze_line cold_program) in
        (cold, warm))
  in
  (* soak: [clients] domains, each its own connection, alternating
     analyze/extract over the program mix *)
  let t0 = Unix.gettimeofday () in
  let per_client =
    Parallel.map ~jobs:clients
      (fun ci ->
        let c = Client.connect socket in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            List.init requests (fun i ->
                let prog = progs.((ci + i) mod Array.length progs) in
                let line =
                  if i mod 2 = 0 then analyze_line prog else extract_line prog
                in
                let resp, dt = timed_request c line in
                (match Json.parse resp with
                | Ok _ -> ()
                | Error msg ->
                    failwith ("serve-bench: malformed response: " ^ msg));
                dt)))
      (List.init clients Fun.id)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let lat = Array.of_list (List.concat per_client) in
  Array.sort compare lat;
  let total = Array.length lat in
  (* cache totals over the daemon's lifetime, via the metrics op *)
  let hits, misses =
    let c = Client.connect socket in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        let j = Client.rpc c [ ("op", "\"metrics\"") ] in
        (metric_value j "serve.cache.hits", metric_value j "serve.cache.misses"))
  in
  {
    br_clients = clients;
    br_requests = total;
    br_wall_s = wall_s;
    br_rps = (if wall_s > 0.0 then float_of_int total /. wall_s else 0.0);
    br_p50_ms = percentile lat 0.50;
    br_p99_ms = percentile lat 0.99;
    br_hits = hits;
    br_misses = misses;
    br_hit_rate =
      (let denom = hits + misses in
       if denom = 0 then 0.0 else float_of_int hits /. float_of_int denom);
    br_cold_ms = cold_ms;
    br_warm_ms = warm_ms;
    br_warm_speedup = (if warm_ms > 0.0 then cold_ms /. warm_ms else 0.0);
  }

let bench_result_to_string r =
  Printf.sprintf
    "serve: %d clients, %d requests in %.2fs = %.1f req/s\n\
     latency: p50 %.2fms  p99 %.2fms\n\
     cache: %d hits / %d misses (%.1f%% hit rate)\n\
     cold %.2fms -> warm %.2fms (%.1fx)\n"
    r.br_clients r.br_requests r.br_wall_s r.br_rps r.br_p50_ms r.br_p99_ms
    r.br_hits r.br_misses (100.0 *. r.br_hit_rate) r.br_cold_ms r.br_warm_ms
    r.br_warm_speedup

let bench_result_to_json r =
  Printf.sprintf
    "{\"clients\": %d, \"requests\": %d, \"wall_s\": %.6f, \"rps\": %.2f, \
     \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"cache_hits\": %d, \
     \"cache_misses\": %d, \"hit_rate\": %.4f, \"cold_ms\": %.3f, \
     \"warm_ms\": %.3f, \"warm_speedup\": %.2f}"
    r.br_clients r.br_requests r.br_wall_s r.br_rps r.br_p50_ms r.br_p99_ms
    r.br_hits r.br_misses r.br_hit_rate r.br_cold_ms r.br_warm_ms
    r.br_warm_speedup
