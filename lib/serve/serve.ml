module Ferr = Foray_core.Error
module Pipeline = Foray_core.Pipeline
module Filter = Foray_core.Filter
module Model = Foray_core.Model
module Obs = Foray_obs.Obs
module Span = Foray_obs.Span
module Window = Foray_obs.Window
module Parallel = Foray_util.Parallel
module Interp = Minic_sim.Interp

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)

let m_requests op = Obs.counter ~labels:[ ("op", op) ] "serve.requests"
let m_errors = lazy (Obs.counter "serve.errors")
let m_connections = lazy (Obs.counter "serve.connections")
let m_cache_hits = lazy (Obs.counter "serve.cache.hits")
let m_cache_misses = lazy (Obs.counter "serve.cache.misses")
let m_cache_evictions = lazy (Obs.counter "serve.cache.evictions")
let m_cache_entries = lazy (Obs.gauge "serve.cache.entries")
let m_cache_bytes = lazy (Obs.gauge "serve.cache.bytes")

let m_request_ms =
  lazy
    (Obs.histogram
       ~bounds:[ 1; 2; 5; 10; 20; 50; 100; 200; 500; 1000; 2000; 5000 ]
       "serve.request_ms")

(* Runtime gauges, sampled at scrape time (the metrics / metrics_text
   ops) rather than continuously — a scrape sees the state it asked
   about, and an idle daemon costs nothing. *)
let m_gc_major_words = lazy (Obs.gauge "runtime.gc.major_words")
let m_gc_compactions = lazy (Obs.gauge "runtime.gc.compactions")
let m_gc_heap_words = lazy (Obs.gauge "runtime.gc.heap_words")
let m_pool_pending = lazy (Obs.gauge "serve.pool.pending")
let m_pool_busy = lazy (Obs.gauge "serve.pool.busy")
let m_conn_active = lazy (Obs.gauge "serve.connections.active")
let m_slow_requests = lazy (Obs.counter "serve.slow_requests")

(* ------------------------------------------------------------------ *)
(* Configuration and server state                                     *)

type config = {
  socket_path : string;
  jobs : int;
  cache_bytes : int;
  max_steps_cap : int option;
  access_log : string option;
  slow_ms : int option;
}

let default_config ~socket_path =
  {
    socket_path;
    jobs = Parallel.default_jobs ();
    cache_bytes = 64 * 1024 * 1024;
    max_steps_cap = None;
    access_log = None;
    slow_ms = None;
  }

(* The cached product of one analysis: everything both [analyze] and
   [extract] responses need, so the two ops share cache entries and a
   cached response is byte-identical to the uncached one. *)
type payload = {
  mp_model : string;
  mp_n_refs : int;
  mp_n_loops : int;
  mp_steps : int;
  mp_accesses : int;
  mp_events : int;
}

(* One slot of the daemon cache. Model payloads, pre-rendered [spm]
   result arrays, pre-rendered [verify] reports and raw sources (so
   [spm]/[verify] requests can address a model by the digest an earlier
   analyze reported) share the one byte-bounded LRU; key prefixes keep
   the namespaces disjoint. *)
type entry =
  | Model of payload
  | Spm of string (* rendered "results" JSON array *)
  | Verify of string (* rendered verification report object *)
  | Source of string

let entry_bytes key = function
  | Model p -> String.length p.mp_model + String.length key + 128
  | Spm s | Verify s | Source s -> String.length s + String.length key + 128

(* Remembered for [top] and the [metrics] op: the last few requests that
   crossed the slow threshold. *)
type slow_entry = {
  sl_rid : int;
  sl_op : string;
  sl_ms : float;
  sl_ts : float; (* epoch seconds at completion *)
}

let slow_keep = 16

type server = {
  s_cfg : config;
  s_fd : Unix.file_descr;
  s_pool : Parallel.pool;
  s_cache : entry Lru.t;
  s_cache_mutex : Mutex.t;
  s_stop : bool Atomic.t;
  s_conn_mutex : Mutex.t;
  s_conn_cond : Condition.t;
  mutable s_active : int;
  mutable s_acceptor : unit Domain.t option;
  s_window : Window.t;
  s_rid : int Atomic.t;
  s_log : out_channel option;
  s_log_mutex : Mutex.t;
  s_slow : slow_entry Queue.t; (* newest at the back, <= slow_keep *)
  s_slow_mutex : Mutex.t;
}

let socket_path srv = srv.s_cfg.socket_path

let temp_counter = Atomic.make 0

let temp_socket_path () =
  (* sun_path is ~108 bytes; keep the name short and under the temp dir. *)
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "forayd-%d-%d.sock" (Unix.getpid ())
       (Atomic.fetch_and_add temp_counter 1))

(* ------------------------------------------------------------------ *)
(* Line-oriented socket IO                                            *)

(* A hand-rolled buffered reader over [Unix.read]. Channels
   ([in_channel]/[out_channel] pairs over one fd) are avoided on purpose:
   closing either channel closes the shared fd, and with connection
   threads racing a shutdown drain that invites double-close/fd-reuse
   bugs. *)
type reader = {
  r_fd : Unix.file_descr;
  r_chunk : bytes;
  mutable r_pending : string;
  mutable r_eof : bool;
}

let make_reader fd =
  { r_fd = fd; r_chunk = Bytes.create 8192; r_pending = ""; r_eof = false }

let rec read_line r =
  match String.index_opt r.r_pending '\n' with
  | Some i ->
      let line = String.sub r.r_pending 0 i in
      r.r_pending <-
        String.sub r.r_pending (i + 1) (String.length r.r_pending - i - 1);
      Some line
  | None ->
      if r.r_eof then
        if r.r_pending = "" then None
        else begin
          (* final line without a trailing newline *)
          let line = r.r_pending in
          r.r_pending <- "";
          Some line
        end
      else begin
        let n = Unix.read r.r_fd r.r_chunk 0 (Bytes.length r.r_chunk) in
        if n = 0 then r.r_eof <- true
        else r.r_pending <- r.r_pending ^ Bytes.sub_string r.r_chunk 0 n;
        read_line r
      end

let write_line fd line =
  let data = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length data in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd data !off (len - !off)
  done

(* ------------------------------------------------------------------ *)
(* Request handling                                                   *)

let render_id j =
  match Json.member "id" j with
  | Some (Json.Int i) -> string_of_int i
  | Some (Json.Str s) -> Printf.sprintf "\"%s\"" (Ferr.json_escape s)
  | _ -> "null"

(* The window of one request's pool task: the worker domain's span tid
   and the [t0, t1] interval (µs since the span epoch) its spans lie in. *)
type span_window = { sw_tid : int; sw_t0 : float; sw_t1 : float }

(* The inline trace of a request: a synthetic "request" root whose
   duration is the connection-measured latency (the same number the
   access log reports), with the pool task's reconstructed span forest as
   children. Cache hits never touched the pool, so their tree is just the
   root. *)
let trace_tree ~rid ~op ~dt_ms sw =
  let children, cut =
    match sw with
    | None -> ([], 0)
    | Some { sw_tid; sw_t0; sw_t1 } ->
        Span.collect ~tid:sw_tid ~t0:sw_t0 ~t1:sw_t1 ()
  in
  let args =
    [ ("rid", string_of_int rid); ("op", op) ]
    @ if cut > 0 then [ ("spans_cut", string_of_int cut) ] else []
  in
  {
    Span.n_name = "request";
    n_cat = "serve";
    n_ts_us = (match sw with Some s -> s.sw_t0 | None -> 0.0);
    n_dur_us = dt_ms *. 1000.0;
    n_args = args;
    n_children = children;
  }

let render_error ~id ~rid ~dt_ms e =
  Printf.sprintf
    "{\"id\": %s, \"rid\": %d, \"status\": \"error\", \"error\": %s, \
     \"ms\": %.3f}"
    id rid (Ferr.to_json e) dt_ms

let render_ok ~id ~rid ~op ~cached ~degraded ~dt_ms ~trace p =
  let buf = Buffer.create (String.length p.mp_model + 256) in
  Printf.bprintf buf
    "{\"id\": %s, \"rid\": %d, \"status\": \"ok\", \"op\": \"%s\", \
     \"cached\": %b, \"model\": \"%s\""
    id rid op cached
    (Ferr.json_escape p.mp_model);
  if op <> "extract" then
    Printf.bprintf buf
      ", \"n_refs\": %d, \"n_loops\": %d, \"steps\": %d, \"accesses\": %d, \
       \"events\": %d"
      p.mp_n_refs p.mp_n_loops p.mp_steps p.mp_accesses p.mp_events;
  Printf.bprintf buf ", \"degraded\": [%s]"
    (String.concat ", " (List.map Pipeline.degradation_to_json degraded));
  (match trace with
  | None -> ()
  | Some node ->
      Printf.bprintf buf ", \"trace\": %s" (Span.node_to_json node));
  Printf.bprintf buf ", \"ms\": %.3f}" dt_ms;
  Buffer.contents buf

let cache_find srv key =
  Mutex.lock srv.s_cache_mutex;
  let hit = Lru.find srv.s_cache key in
  Mutex.unlock srv.s_cache_mutex;
  (match hit with
  | Some _ -> Obs.incr (Lazy.force m_cache_hits)
  | None -> Obs.incr (Lazy.force m_cache_misses));
  hit

let cache_find_model srv key =
  match cache_find srv key with Some (Model p) -> Some p | _ -> None

let cache_find_spm srv key =
  match cache_find srv key with Some (Spm s) -> Some s | _ -> None

let cache_find_verify srv key =
  match cache_find srv key with Some (Verify s) -> Some s | _ -> None

(* a [Source] probe is bookkeeping, not client-visible caching — don't
   skew the hit/miss counters with it *)
let cache_find_source srv key =
  Mutex.lock srv.s_cache_mutex;
  let hit = Lru.find srv.s_cache key in
  Mutex.unlock srv.s_cache_mutex;
  match hit with Some (Source s) -> Some s | _ -> None

let cache_add srv key e =
  let bytes = entry_bytes key e in
  Mutex.lock srv.s_cache_mutex;
  let evicted = Lru.add srv.s_cache ~key ~bytes e in
  let entries = Lru.entries srv.s_cache and total = Lru.bytes srv.s_cache in
  Mutex.unlock srv.s_cache_mutex;
  Obs.add (Lazy.force m_cache_evictions) evicted;
  Obs.set (Lazy.force m_cache_entries) entries;
  Obs.set (Lazy.force m_cache_bytes) total

(* [finish_degraded]'s strict arm, daemon-side: the first shortfall as the
   typed error the CLI would have exited with. *)
let error_of_degradation = function
  | Pipeline.Degraded_budget { budget; limit; spent; _ } ->
      Ferr.Budget_exceeded { budget; limit; spent }
  | Pipeline.Degraded_corrupt { offset; kind; salvaged; _ } ->
      Ferr.Trace_corrupt { offset; kind; events_salvaged = salvaged }

type request = {
  rq_op : string;
  rq_program : string option;
  rq_source : string option;
  rq_trace : string option;
  rq_want_trace : bool; (* "trace": true — inline span tree in response *)
  rq_config : Interp.config;
  rq_thresholds : Filter.thresholds;
  rq_cache : bool;
  rq_strict : bool;
  rq_shards : int;
  rq_jobs : int option;
}

let parse_request srv j op =
  let ( let* ) = Result.bind in
  let field f k =
    Result.map_error (fun msg -> Ferr.Bad_request { msg }) (f k j)
  in
  let* program = field Json.str_field "program" in
  let* source = field Json.str_field "source" in
  (* "trace" is overloaded by JSON type: a string is a stored-trace path
     (analyze this file), a bool asks for the request's own span tree
     inline in the response. *)
  let* trace, want_trace =
    match Json.member "trace" j with
    | None | Some Json.Null -> Ok (None, false)
    | Some (Json.Str s) -> Ok (Some s, false)
    | Some (Json.Bool b) -> Ok (None, b)
    | Some _ ->
        Error
          (Ferr.Bad_request
             { msg = "field \"trace\": expected a string path or a bool" })
  in
  let* max_steps = field Json.int_field "max_steps" in
  let* deadline_ms = field Json.int_field "deadline_ms" in
  let* max_trace_events = field Json.int_field "max_trace_events" in
  let* nexec = field Json.int_field "nexec" in
  let* nloc = field Json.int_field "nloc" in
  let* trace_scalars = field Json.bool_field "trace_scalars" in
  let* use_cache = field Json.bool_field "cache" in
  let* strict = field Json.bool_field "strict" in
  let* shards = field Json.int_field "shards" in
  let* jobs = field Json.int_field "jobs" in
  let base = Interp.default_config in
  let max_steps =
    let requested = Option.value max_steps ~default:base.Interp.max_steps in
    match srv.s_cfg.max_steps_cap with
    | Some cap -> min requested cap
    | None -> requested
  in
  let config =
    {
      base with
      Interp.trace_scalars =
        Option.value trace_scalars ~default:base.Interp.trace_scalars;
      max_steps;
      deadline_ms =
        (match deadline_ms with Some _ -> deadline_ms | None -> base.Interp.deadline_ms);
      max_trace_events =
        (match max_trace_events with
        | Some _ -> max_trace_events
        | None -> base.Interp.max_trace_events);
    }
  in
  let thresholds =
    {
      Filter.nexec = Option.value nexec ~default:Filter.default.Filter.nexec;
      nloc = Option.value nloc ~default:Filter.default.Filter.nloc;
    }
  in
  Ok
    {
      rq_op = op;
      rq_program = program;
      rq_source = source;
      rq_trace = trace;
      rq_want_trace = want_trace;
      rq_config = config;
      rq_thresholds = thresholds;
      rq_cache = Option.value use_cache ~default:true;
      rq_strict = Option.value strict ~default:false;
      rq_shards = Option.value shards ~default:1;
      rq_jobs = jobs;
    }

let payload_of_outcome (r : Pipeline.result) =
  {
    mp_model = Model.to_c r.Pipeline.model;
    mp_n_refs = Model.n_refs r.Pipeline.model;
    mp_n_loops = Model.n_loops r.Pipeline.model;
    mp_steps = r.Pipeline.sim.Interp.steps;
    mp_accesses = r.Pipeline.sim.Interp.accesses;
    mp_events = Foray_trace.Tstats.total_accesses r.Pipeline.tstats;
  }

(* Run [f] on the domain pool inside a rid-tagged span, capturing the
   worker's tid and time window. A pool worker executes one task at a
   time, so every completed span on that tid within [t0, t1] belongs to
   this request — which is what lets [Span.collect] cut the request's
   tree out of the process-global ring without per-request plumbing. *)
let pool_run srv ~rid ~op f =
  Parallel.await
    (Parallel.async srv.s_pool (fun () ->
         let tid = Span.current_tid () in
         let t0 = Span.now_us () in
         let v =
           Span.with_span ~cat:"serve"
             ~args:[ ("rid", string_of_int rid); ("op", op) ]
             "serve.request" f
         in
         let t1 = Span.now_us () in
         (v, { sw_tid = tid; sw_t0 = t0; sw_t1 = t1 })))

(* Analyze a program source: cache lookup, then the full pipeline on the
   domain pool. Only complete (non-degraded) outcomes enter the cache, so
   a hit can always claim [degraded: []]. *)
let analyze_source srv rq ~rid src =
  let digest = Digest.to_hex (Digest.string src) in
  (* remember the source under its digest so later [spm] requests can
     address this model without resending the program text *)
  if rq.rq_cache then cache_add srv ("src:" ^ digest) (Source src);
  let key = Pipeline.model_key ~config:rq.rq_config ~thresholds:rq.rq_thresholds src in
  match if rq.rq_cache then cache_find_model srv key else None with
  | Some p -> Ok (p, true, [], digest, None)
  | None -> (
      let outcome, sw =
        pool_run srv ~rid ~op:rq.rq_op (fun () ->
            Pipeline.run_source ~config:rq.rq_config
              ~thresholds:rq.rq_thresholds src)
      in
      match outcome with
      | Error e -> Error e
      | Ok { Pipeline.degraded = d :: _; _ } when rq.rq_strict ->
          Error (error_of_degradation d)
      | Ok { Pipeline.result = r; degraded } ->
          let p = payload_of_outcome r in
          if rq.rq_cache && degraded = [] then cache_add srv key (Model p);
          Ok (p, false, degraded, digest, Some sw))

(* Analyze a stored trace file (Steps 3-4 only): keyed by content digest
   plus the Step-4 thresholds — the only knobs that change the model of a
   stored trace (shard count is bit-identical by construction). *)
let analyze_trace srv rq ~rid path =
  if not (Sys.file_exists path) then
    Error (Ferr.Not_found_program { name = path })
  else
    match Digest.file path with
    | exception Sys_error _ -> Error (Ferr.Not_found_program { name = path })
    | digest -> (
        let digest_hex = Digest.to_hex digest in
        let key =
          Printf.sprintf "trace:%s:%d:%d" digest_hex
            rq.rq_thresholds.Filter.nexec rq.rq_thresholds.Filter.nloc
        in
        match if rq.rq_cache then cache_find_model srv key else None with
        | Some p -> Ok (p, true, [], digest_hex, None)
        | None -> (
            let res, sw =
              pool_run srv ~rid ~op:rq.rq_op (fun () ->
                  Pipeline.analyze_trace ~strict:rq.rq_strict
                    ~shards:rq.rq_shards ?jobs:rq.rq_jobs path)
            in
            match res with
            | Error { Foray_trace.Tracefile.offset; kind; events_before } ->
                Error
                  (Ferr.Trace_corrupt
                     { offset; kind; events_salvaged = events_before })
            | Ok ((tree, tstats), salvage) ->
                let model =
                  Model.of_tree ~thresholds:rq.rq_thresholds tree
                in
                let open Foray_trace.Tracefile in
                let degraded =
                  if salvage.resyncs = 0 && not salvage.truncated_tail then []
                  else
                    [
                      Pipeline.Degraded_corrupt
                        {
                          offset =
                            (match salvage.first_errors with
                            | (off, _) :: _ -> off
                            | [] -> -1);
                          kind =
                            (match salvage.first_errors with
                            | (_, k) :: _ -> k
                            | [] -> "unknown");
                          salvaged = salvage.events;
                          resyncs = salvage.resyncs;
                          bytes_skipped = salvage.bytes_skipped;
                        };
                    ]
                in
                let p =
                  {
                    mp_model = Model.to_c model;
                    mp_n_refs = Model.n_refs model;
                    mp_n_loops = Model.n_loops model;
                    mp_steps = 0;
                    mp_accesses =
                      Foray_trace.Tstats.total_accesses tstats;
                    mp_events = salvage.events;
                  }
                in
                if rq.rq_cache && degraded = [] then
                  cache_add srv key (Model p);
                Ok (p, false, degraded, digest_hex, Some sw)))

let handle_analyze srv j ~rid ~op =
  let ( let* ) = Result.bind in
  let* rq = parse_request srv j op in
  let* p, cached, degraded, digest, sw =
    match rq.rq_trace with
    | Some path -> analyze_trace srv rq ~rid path
    | None -> (
        let* src =
          match (rq.rq_source, rq.rq_program) with
          | Some s, _ -> Ok s
          | None, Some name -> Foray_suite.Suite.load name
          | None, None ->
              Error
                (Ferr.Bad_request
                   {
                     msg =
                       Printf.sprintf
                         "%s needs \"program\", \"source\" or \"trace\"" op;
                   })
        in
        analyze_source srv rq ~rid src)
  in
  Ok (rq, p, cached, degraded, digest, sw)

(* ------------------------------------------------------------------ *)
(* The spm op: Phase II buffer selection served from the model cache  *)

let spm_results_json sols =
  let sol_json (size, (sol : Foray_spm.Dse.solution)) =
    let sel = sol.Foray_spm.Dse.selection in
    let buf = Buffer.create 160 in
    Printf.bprintf buf
      "{\"spm_bytes\": %d, \"buffers\": %d, \"used_bytes\": %d, \
       \"energy_base_nj\": %.3f, \"energy_opt_nj\": %.3f, \"saving_pct\": \
       %.3f"
      size (List.length sel.chosen) sel.used_bytes sel.energy_base
      sel.energy_opt sel.saving_pct;
    (match sol.Foray_spm.Dse.search with
    | None -> ()
    | Some st ->
        Printf.bprintf buf
          ", \"search\": {\"proposals\": %d, \"accepted\": %d, \
           \"improved\": %d, \"restarts\": %d, \"stopped\": \"%s\"}"
          st.Foray_spm.Stochastic.proposals st.accepted st.improved
          st.restarts
          (Foray_spm.Stochastic.stop_name st.stopped));
    Buffer.add_char buf '}';
    Buffer.contents buf
  in
  "[" ^ String.concat ", " (List.map sol_json sols) ^ "]"

(* The part of the cache key that captures the spm configuration: equal
   keys must imply equal (deterministic) results, so everything that
   steers the search is in — including the deadline, which is the one
   machine-dependent knob. *)
let spm_config_key ~sizes ~strategy_s cfg =
  Printf.sprintf "%s:%s:%d:%d:%d:%s"
    (String.concat "," (List.map string_of_int sizes))
    strategy_s cfg.Foray_spm.Stochastic.seed cfg.Foray_spm.Stochastic.budget
    cfg.Foray_spm.Stochastic.restarts
    (match cfg.Foray_spm.Stochastic.deadline_ms with
    | Some ms -> string_of_int ms
    | None -> "-")

let handle_spm srv j ~rid =
  let ( let* ) = Result.bind in
  let* rq = parse_request srv j "spm" in
  let field f k =
    Result.map_error (fun msg -> Ferr.Bad_request { msg }) (f k j)
  in
  let* strategy_s = field Json.str_field "strategy" in
  let strategy_s = Option.value strategy_s ~default:"optimal" in
  let* seed = field Json.int_field "seed" in
  let* budget = field Json.int_field "budget_proposals" in
  let* restarts = field Json.int_field "restarts" in
  let* spm_bytes = field Json.int_field "spm_bytes" in
  let* digest_rq = field Json.str_field "digest" in
  let* sizes_rq =
    match Json.member "sizes" j with
    | None | Some Json.Null -> Ok None
    | Some (Json.Arr l) -> (
        match
          List.map (function Json.Int i when i > 0 -> i | _ -> raise Exit) l
        with
        | sizes -> Ok (Some sizes)
        | exception Exit ->
            Error
              (Ferr.Bad_request
                 { msg = "field \"sizes\": expected positive integers" }))
    | Some _ ->
        Error
          (Ferr.Bad_request
             { msg = "field \"sizes\": expected an array of integers" })
  in
  let* sizes =
    match (spm_bytes, sizes_rq) with
    | Some b, _ when b > 0 -> Ok [ b ]
    | Some _, _ ->
        Error (Ferr.Bad_request { msg = "field \"spm_bytes\": must be > 0" })
    | None, Some [] ->
        Error (Ferr.Bad_request { msg = "field \"sizes\": must be non-empty" })
    | None, Some l -> Ok l
    | None, None -> Ok Foray_spm.Dse.default_sizes
  in
  let cfg =
    {
      Foray_spm.Stochastic.default_config with
      seed = Option.value seed ~default:Foray_spm.Stochastic.default_config.seed;
      budget =
        Option.value budget
          ~default:Foray_spm.Stochastic.default_config.budget;
      restarts =
        Option.value restarts
          ~default:Foray_spm.Stochastic.default_config.restarts;
      (* the request's deadline_ms budget doubles as the search's anytime
         cutoff; the ensemble stays serial — the pool's domains belong to
         concurrent requests *)
      deadline_ms = rq.rq_config.Interp.deadline_ms;
      jobs = 1;
    }
  in
  let* strategy =
    match strategy_s with
    | "optimal" -> Ok Foray_spm.Dse.Optimal
    | "greedy" -> Ok Foray_spm.Dse.Greedy
    | "stochastic" -> Ok (Foray_spm.Dse.Stochastic cfg)
    | s ->
        Error
          (Ferr.Bad_request
             {
               msg =
                 Printf.sprintf
                   "field \"strategy\": unknown strategy %S (expected \
                    optimal, greedy or stochastic)"
                   s;
             })
  in
  let* src =
    match (rq.rq_source, rq.rq_program, digest_rq) with
    | Some s, _, _ -> Ok s
    | None, Some name, _ -> Foray_suite.Suite.load name
    | None, None, Some d -> (
        match cache_find_source srv ("src:" ^ d) with
        | Some s -> Ok s
        | None -> Error (Ferr.Not_found_program { name = "digest:" ^ d }))
    | None, None, None ->
        Error
          (Ferr.Bad_request
             { msg = "spm needs \"program\", \"source\" or \"digest\"" })
  in
  let digest = Digest.to_hex (Digest.string src) in
  if rq.rq_cache then cache_add srv ("src:" ^ digest) (Source src);
  let model_key =
    Pipeline.model_key ~config:rq.rq_config ~thresholds:rq.rq_thresholds src
  in
  let key =
    Printf.sprintf "spm:%s:%s" model_key
      (spm_config_key ~sizes ~strategy_s cfg)
  in
  match if rq.rq_cache then cache_find_spm srv key else None with
  | Some body -> Ok (rq, strategy_s, body, true, [], digest, None)
  | None -> (
      let outcome, sw =
        pool_run srv ~rid ~op:"spm" (fun () ->
            match
              Pipeline.run_source ~config:rq.rq_config
                ~thresholds:rq.rq_thresholds src
            with
            | Error e -> Error e
            | Ok o ->
                let cands =
                  Foray_spm.Reuse.candidates o.Pipeline.result.Pipeline.model
                in
                let sols =
                  List.map
                    (fun s ->
                      (s, Foray_spm.Dse.solve ~strategy cands ~spm_bytes:s))
                    sizes
                in
                Ok (spm_results_json sols, o.Pipeline.degraded))
      in
      match outcome with
      | Error e -> Error e
      | Ok (_, (d :: _)) when rq.rq_strict -> Error (error_of_degradation d)
      | Ok (body, degraded) ->
          if rq.rq_cache && degraded = [] then cache_add srv key (Spm body);
          Ok (rq, strategy_s, body, false, degraded, digest, Some sw))

let render_spm ~id ~rid ~strategy_s ~cached ~degraded ~digest ~dt_ms ~trace
    body =
  let buf = Buffer.create (String.length body + 256) in
  Printf.bprintf buf
    "{\"id\": %s, \"rid\": %d, \"status\": \"ok\", \"op\": \"spm\", \
     \"cached\": %b, \"digest\": \"%s\", \"strategy\": \"%s\", \"results\": \
     %s"
    id rid cached (Ferr.json_escape digest)
    (Ferr.json_escape strategy_s)
    body;
  Printf.bprintf buf ", \"degraded\": [%s]"
    (String.concat ", " (List.map Pipeline.degradation_to_json degraded));
  (match trace with
  | None -> ()
  | Some node -> Printf.bprintf buf ", \"trace\": %s" (Span.node_to_json node));
  Printf.bprintf buf ", \"ms\": %.3f}" dt_ms;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The verify op: per-reference model-replay verdicts                 *)

let corruption_error { Foray_trace.Tracefile.offset; kind; events_before } =
  Ferr.Trace_corrupt { offset; kind; events_salvaged = events_before }

let salvage_degradations (salvage : Foray_trace.Tracefile.salvage) =
  if salvage.resyncs = 0 && not salvage.truncated_tail then []
  else
    [
      Pipeline.Degraded_corrupt
        {
          offset =
            (match salvage.first_errors with (off, _) :: _ -> off | [] -> -1);
          kind =
            (match salvage.first_errors with
            | (_, k) :: _ -> k
            | [] -> "unknown");
          salvaged = salvage.events;
          resyncs = salvage.resyncs;
          bytes_skipped = salvage.bytes_skipped;
        };
    ]

(* Verify a stored trace file: extract the model from it (Steps 3-4,
   optionally sharded), then replay the same event stream against the
   model. Cached by content digest x Step-4 thresholds, like
   [analyze_trace]. *)
let verify_trace srv rq ~rid path =
  if not (Sys.file_exists path) then
    Error (Ferr.Not_found_program { name = path })
  else
    match Digest.file path with
    | exception Sys_error _ -> Error (Ferr.Not_found_program { name = path })
    | digest -> (
        let digest_hex = Digest.to_hex digest in
        let key =
          Printf.sprintf "verify:trace:%s:%d:%d" digest_hex
            rq.rq_thresholds.Filter.nexec rq.rq_thresholds.Filter.nloc
        in
        match if rq.rq_cache then cache_find_verify srv key else None with
        | Some body -> Ok (body, true, [], digest_hex, None)
        | None -> (
            let res, sw =
              pool_run srv ~rid ~op:"verify" (fun () ->
                  match
                    Pipeline.analyze_trace ~strict:rq.rq_strict
                      ~shards:rq.rq_shards ?jobs:rq.rq_jobs path
                  with
                  | Error c -> Error (corruption_error c)
                  | Ok ((tree, _), salvage) -> (
                      let model =
                        Model.of_tree ~thresholds:rq.rq_thresholds tree
                      in
                      match Foray_trace.Tracefile.read_events path with
                      | Error c -> Error (corruption_error c)
                      | Ok (events, _) ->
                          let vsink, finish = Foray_verify.Verify.sink model in
                          Array.iter vsink events;
                          Ok
                            ( Foray_verify.Verify.report_to_json (finish ()),
                              salvage_degradations salvage )))
            in
            match res with
            | Error e -> Error e
            | Ok (_, d :: _) when rq.rq_strict ->
                Error (error_of_degradation d)
            | Ok (body, degraded) ->
                if rq.rq_cache && degraded = [] then
                  cache_add srv key (Verify body);
                Ok (body, false, degraded, digest_hex, Some sw)))

let handle_verify srv j ~rid =
  let ( let* ) = Result.bind in
  let* rq = parse_request srv j "verify" in
  match rq.rq_trace with
  | Some path ->
      let* body, cached, degraded, digest, sw = verify_trace srv rq ~rid path in
      Ok (rq, body, cached, degraded, digest, sw)
  | None ->
      let field f k =
        Result.map_error (fun msg -> Ferr.Bad_request { msg }) (f k j)
      in
      let* digest_rq = field Json.str_field "digest" in
      let* src =
        match (rq.rq_source, rq.rq_program, digest_rq) with
        | Some s, _, _ -> Ok s
        | None, Some name, _ -> Foray_suite.Suite.load name
        | None, None, Some d -> (
            match cache_find_source srv ("src:" ^ d) with
            | Some s -> Ok s
            | None -> Error (Ferr.Not_found_program { name = "digest:" ^ d }))
        | None, None, None ->
            Error
              (Ferr.Bad_request
                 {
                   msg =
                     "verify needs \"program\", \"source\", \"digest\" or \
                      \"trace\"";
                 })
      in
      let digest = Digest.to_hex (Digest.string src) in
      if rq.rq_cache then cache_add srv ("src:" ^ digest) (Source src);
      let key =
        "verify:"
        ^ Pipeline.model_key ~config:rq.rq_config ~thresholds:rq.rq_thresholds
            src
      in
      (match if rq.rq_cache then cache_find_verify srv key else None with
      | Some body -> Ok (rq, body, true, [], digest, None)
      | None -> (
          let outcome, sw =
            pool_run srv ~rid ~op:"verify" (fun () ->
                let prog = Minic.Parser.program src in
                match
                  Pipeline.run_offline ~config:rq.rq_config
                    ~thresholds:rq.rq_thresholds prog
                with
                | Error e -> Error e
                | Ok (o, events) ->
                    let rep =
                      Foray_verify.Verify.verify
                        o.Pipeline.result.Pipeline.model events
                    in
                    Ok
                      ( Foray_verify.Verify.report_to_json rep,
                        o.Pipeline.degraded ))
          in
          match outcome with
          | Error e -> Error e
          | Ok (_, d :: _) when rq.rq_strict -> Error (error_of_degradation d)
          | Ok (body, degraded) ->
              if rq.rq_cache && degraded = [] then
                cache_add srv key (Verify body);
              Ok (rq, body, false, degraded, digest, Some sw)))

let render_verify ~id ~rid ~cached ~degraded ~digest ~dt_ms ~trace body =
  let buf = Buffer.create (String.length body + 256) in
  Printf.bprintf buf
    "{\"id\": %s, \"rid\": %d, \"status\": \"ok\", \"op\": \"verify\", \
     \"cached\": %b, \"digest\": \"%s\", \"verify\": %s"
    id rid cached (Ferr.json_escape digest) body;
  Printf.bprintf buf ", \"degraded\": [%s]"
    (String.concat ", " (List.map Pipeline.degradation_to_json degraded));
  (match trace with
  | None -> ()
  | Some node -> Printf.bprintf buf ", \"trace\": %s" (Span.node_to_json node));
  Printf.bprintf buf ", \"ms\": %.3f}" dt_ms;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Per-request accounting: runtime gauges, window, access log, slow   *)

let sample_runtime_gauges srv =
  let g = Gc.quick_stat () in
  Obs.set (Lazy.force m_gc_major_words) (int_of_float g.Gc.major_words);
  Obs.set (Lazy.force m_gc_compactions) g.Gc.compactions;
  Obs.set (Lazy.force m_gc_heap_words) g.Gc.heap_words;
  Obs.set (Lazy.force m_pool_pending) (Parallel.pool_pending srv.s_pool);
  Obs.set (Lazy.force m_pool_busy) (Parallel.pool_busy srv.s_pool);
  Mutex.lock srv.s_conn_mutex;
  let active = srv.s_active in
  Mutex.unlock srv.s_conn_mutex;
  Obs.set (Lazy.force m_conn_active) active

let slow_to_json e =
  Printf.sprintf "{\"rid\": %d, \"op\": \"%s\", \"ms\": %.3f, \"ts\": %.3f}"
    e.sl_rid (Ferr.json_escape e.sl_op) e.sl_ms e.sl_ts

let slow_snapshot srv =
  Mutex.lock srv.s_slow_mutex;
  let l = List.of_seq (Queue.to_seq srv.s_slow) in
  Mutex.unlock srv.s_slow_mutex;
  l

let slow_push srv e =
  Mutex.lock srv.s_slow_mutex;
  Queue.push e srv.s_slow;
  while Queue.length srv.s_slow > slow_keep do
    ignore (Queue.pop srv.s_slow)
  done;
  Mutex.unlock srv.s_slow_mutex

(* One JSONL access-log line per request. Absent fields are omitted, not
   nulled, so lines stay grep-friendly; [spans] (the full breakdown) only
   appears on slow requests. *)
let log_request srv ~rid ~op ~dt_ms ~digest ~cached ~err ~degraded ~steps
    ~slow_spans =
  match srv.s_log with
  | None -> ()
  | Some oc ->
      let buf = Buffer.create 256 in
      Printf.bprintf buf
        "{\"ts\": %.3f, \"rid\": %d, \"op\": \"%s\", \"status\": \"%s\""
        (Unix.gettimeofday ()) rid (Ferr.json_escape op)
        (match err with None -> "ok" | Some _ -> "error");
      (match err with
      | Some code -> Printf.bprintf buf ", \"error\": \"%s\"" code
      | None -> ());
      (match digest with
      | Some d ->
          Printf.bprintf buf ", \"digest\": \"%s\"" (Ferr.json_escape d)
      | None -> ());
      (match cached with
      | Some b -> Printf.bprintf buf ", \"cached\": %b" b
      | None -> ());
      if degraded <> [] then
        Printf.bprintf buf ", \"degraded\": [%s]"
          (String.concat ", "
             (List.map Pipeline.degradation_to_json degraded));
      if steps > 0 then Printf.bprintf buf ", \"steps\": %d" steps;
      Printf.bprintf buf ", \"ms\": %.3f" dt_ms;
      (match slow_spans with
      | Some node ->
          Printf.bprintf buf ", \"slow\": true, \"spans\": %s"
            (Span.node_to_json node)
      | None -> ());
      Buffer.add_char buf '}';
      Mutex.lock srv.s_log_mutex;
      output_string oc (Buffer.contents buf);
      output_char oc '\n';
      flush oc;
      Mutex.unlock srv.s_log_mutex

(* What one dispatched request hands back to the accounting wrapper: a
   response renderer (latency-parameterized, so the reported [ms], the
   access-log latency and an inline trace root all quote the same
   number) plus everything the window/log need. *)
type handled = {
  h_render : dt_ms:float -> string;
  h_wind_down : bool;
  h_op : string;
  h_kind : Window.kind;
  h_digest : string option;
  h_cached : bool option;
  h_degraded : Pipeline.degradation list;
  h_steps : int;
  h_err : string option; (* stable E_* code *)
  h_sw : span_window option;
}

let dispatch srv ~rid line =
  let mk ?(wind = false) ?(kind = Window.Uncached) ?(digest = None)
      ?(cached = None) ?(degraded = []) ?(steps = 0) ?(err = None)
      ?(sw = None) ~op render =
    {
      h_render = render;
      h_wind_down = wind;
      h_op = op;
      h_kind = kind;
      h_digest = digest;
      h_cached = cached;
      h_degraded = degraded;
      h_steps = steps;
      h_err = err;
      h_sw = sw;
    }
  in
  let error ~id ~op e =
    Obs.incr (Lazy.force m_errors);
    mk ~op ~kind:Window.Error ~err:(Some (Ferr.code e)) (fun ~dt_ms ->
        render_error ~id ~rid ~dt_ms e)
  in
  match Json.parse line with
  | Error msg -> error ~id:"null" ~op:"parse" (Ferr.Bad_request { msg })
  | Ok j -> (
      let id = render_id j in
      match Json.str_field "op" j with
      | Error msg -> error ~id ~op:"parse" (Ferr.Bad_request { msg })
      | Ok None ->
          error ~id ~op:"parse" (Ferr.Bad_request { msg = "missing \"op\"" })
      | Ok (Some op) -> (
          Obs.incr (m_requests op);
          match op with
          | "ping" ->
              mk ~op (fun ~dt_ms ->
                  Printf.sprintf
                    "{\"id\": %s, \"rid\": %d, \"status\": \"ok\", \"op\": \
                     \"ping\", \"ms\": %.3f}"
                    id rid dt_ms)
          | "metrics" ->
              sample_runtime_gauges srv;
              let metrics = Obs.to_json () in
              let window = Window.all_to_json srv.s_window in
              let slow =
                String.concat ", "
                  (List.map slow_to_json (slow_snapshot srv))
              in
              mk ~op (fun ~dt_ms ->
                  Printf.sprintf
                    "{\"id\": %s, \"rid\": %d, \"status\": \"ok\", \"op\": \
                     \"metrics\", \"metrics\": %s, \"window\": %s, \"slow\": \
                     [%s], \"ms\": %.3f}"
                    id rid metrics window slow dt_ms)
          | "metrics_text" ->
              sample_runtime_gauges srv;
              let text =
                Obs.to_openmetrics
                  ~extra:(Window.to_openmetrics srv.s_window)
                  ()
              in
              mk ~op (fun ~dt_ms ->
                  Printf.sprintf
                    "{\"id\": %s, \"rid\": %d, \"status\": \"ok\", \"op\": \
                     \"metrics_text\", \"text\": \"%s\", \"ms\": %.3f}"
                    id rid (Ferr.json_escape text) dt_ms)
          | "shutdown" ->
              Atomic.set srv.s_stop true;
              mk ~op ~wind:true (fun ~dt_ms ->
                  Printf.sprintf
                    "{\"id\": %s, \"rid\": %d, \"status\": \"ok\", \"op\": \
                     \"shutdown\", \"ms\": %.3f}"
                    id rid dt_ms)
          | "spm" -> (
              match handle_spm srv j ~rid with
              | Ok (rq, strategy_s, body, cached, degraded, digest, sw) ->
                  let kind =
                    if cached then Window.Hit
                    else if rq.rq_cache then Window.Miss
                    else Window.Uncached
                  in
                  mk ~op ~kind ~digest:(Some digest) ~cached:(Some cached)
                    ~degraded ~sw (fun ~dt_ms ->
                      let trace =
                        if rq.rq_want_trace then
                          Some (trace_tree ~rid ~op ~dt_ms sw)
                        else None
                      in
                      render_spm ~id ~rid ~strategy_s ~cached ~degraded
                        ~digest ~dt_ms ~trace body)
              | Error e -> error ~id ~op e
              | exception e -> (
                  match Ferr.of_exn e with
                  | Some fe -> error ~id ~op fe
                  | None ->
                      error ~id ~op
                        (Ferr.Runtime
                           {
                             loc = "serve";
                             step = -1;
                             msg = Printexc.to_string e;
                           })))
          | "verify" -> (
              match handle_verify srv j ~rid with
              | Ok (rq, body, cached, degraded, digest, sw) ->
                  let kind =
                    if cached then Window.Hit
                    else if rq.rq_cache then Window.Miss
                    else Window.Uncached
                  in
                  mk ~op ~kind ~digest:(Some digest) ~cached:(Some cached)
                    ~degraded ~sw (fun ~dt_ms ->
                      let trace =
                        if rq.rq_want_trace then
                          Some (trace_tree ~rid ~op ~dt_ms sw)
                        else None
                      in
                      render_verify ~id ~rid ~cached ~degraded ~digest ~dt_ms
                        ~trace body)
              | Error e -> error ~id ~op e
              | exception e -> (
                  match Ferr.of_exn e with
                  | Some fe -> error ~id ~op fe
                  | None ->
                      error ~id ~op
                        (Ferr.Runtime
                           {
                             loc = "serve";
                             step = -1;
                             msg = Printexc.to_string e;
                           })))
          | "analyze" | "extract" -> (
              match handle_analyze srv j ~rid ~op with
              | Ok (rq, p, cached, degraded, digest, sw) ->
                  let kind =
                    if cached then Window.Hit
                    else if rq.rq_cache then Window.Miss
                    else Window.Uncached
                  in
                  mk ~op ~kind ~digest:(Some digest) ~cached:(Some cached)
                    ~degraded ~steps:p.mp_steps ~sw (fun ~dt_ms ->
                      let trace =
                        if rq.rq_want_trace then
                          Some (trace_tree ~rid ~op ~dt_ms sw)
                        else None
                      in
                      render_ok ~id ~rid ~op ~cached ~degraded ~dt_ms ~trace
                        p)
              | Error e -> error ~id ~op e
              | exception e -> (
                  (* a worker exception that escaped the taxonomy must
                     never kill the daemon — or poison other clients *)
                  match Ferr.of_exn e with
                  | Some fe -> error ~id ~op fe
                  | None ->
                      error ~id ~op
                        (Ferr.Runtime
                           {
                             loc = "serve";
                             step = -1;
                             msg = Printexc.to_string e;
                           })))
          | other ->
              error ~id ~op:other
                (Ferr.Bad_request
                   { msg = Printf.sprintf "unknown op %S" other })))

(* One request line in, one response line out. Returns the response and
   whether the connection (or the whole server) should wind down. *)
let handle_line srv line =
  let rid = Atomic.fetch_and_add srv.s_rid 1 in
  let t0 = Unix.gettimeofday () in
  let h = dispatch srv ~rid line in
  let dt_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  Obs.observe (Lazy.force m_request_ms) (int_of_float dt_ms);
  Window.record srv.s_window h.h_kind (int_of_float dt_ms);
  let slow_spans =
    match srv.s_cfg.slow_ms with
    | Some thr when dt_ms >= float_of_int thr ->
        Obs.incr (Lazy.force m_slow_requests);
        slow_push srv
          {
            sl_rid = rid;
            sl_op = h.h_op;
            sl_ms = dt_ms;
            sl_ts = Unix.gettimeofday ();
          };
        Some (trace_tree ~rid ~op:h.h_op ~dt_ms h.h_sw)
    | _ -> None
  in
  log_request srv ~rid ~op:h.h_op ~dt_ms ~digest:h.h_digest ~cached:h.h_cached
    ~err:h.h_err ~degraded:h.h_degraded ~steps:h.h_steps ~slow_spans;
  (h.h_render ~dt_ms, h.h_wind_down)

(* Wake the acceptor blocked in [Unix.accept]: connect to ourselves and
   hang up. Done after every shutdown reply, by the connection thread. *)
let poke srv =
  match Unix.socket PF_UNIX SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.connect fd (ADDR_UNIX srv.s_cfg.socket_path)
       with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let serve_connection srv fd =
  let reader = make_reader fd in
  let rec loop () =
    match read_line reader with
    | None -> ()
    | Some line when String.trim line = "" -> loop ()
    | Some line ->
        let resp, wind_down = handle_line srv line in
        write_line fd resp;
        if wind_down then poke srv else loop ()
  in
  (* a client hanging up mid-request or mid-response is its own problem *)
  try loop () with Unix.Unix_error _ -> ()

let accept_loop srv =
  let rec loop () =
    if Atomic.get srv.s_stop then ()
    else
      match Unix.accept srv.s_fd with
      | exception Unix.Unix_error (EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> if Atomic.get srv.s_stop then () else ()
      | cfd, _ ->
          if Atomic.get srv.s_stop then (
            (try Unix.close cfd with Unix.Unix_error _ -> ()))
          else begin
            Obs.incr (Lazy.force m_connections);
            Mutex.lock srv.s_conn_mutex;
            srv.s_active <- srv.s_active + 1;
            Mutex.unlock srv.s_conn_mutex;
            ignore
              (Thread.create
                 (fun () ->
                   Fun.protect
                     ~finally:(fun () ->
                       (try Unix.close cfd with Unix.Unix_error _ -> ());
                       Mutex.lock srv.s_conn_mutex;
                       srv.s_active <- srv.s_active - 1;
                       Condition.broadcast srv.s_conn_cond;
                       Mutex.unlock srv.s_conn_mutex)
                     (fun () -> serve_connection srv cfd))
                 ());
            loop ()
          end
  in
  loop ();
  (* drain in-flight connections before tearing anything down *)
  Mutex.lock srv.s_conn_mutex;
  while srv.s_active > 0 do
    Condition.wait srv.s_conn_cond srv.s_conn_mutex
  done;
  Mutex.unlock srv.s_conn_mutex;
  Parallel.shutdown_pool srv.s_pool;
  (match srv.s_log with
  | Some oc -> ( try close_out oc with Sys_error _ -> ())
  | None -> ());
  (try Unix.close srv.s_fd with Unix.Unix_error _ -> ());
  try Unix.unlink srv.s_cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ()

let remove_stale path =
  match Unix.lstat path with
  | exception Unix.Unix_error (ENOENT, _, _) -> ()
  | { Unix.st_kind = S_SOCK; _ } -> Unix.unlink path
  | _ ->
      Ferr.raise_error
        (Ferr.Bad_request
           { msg = Printf.sprintf "%s exists and is not a socket" path })

let start cfg =
  if cfg.jobs < 1 then invalid_arg "Serve.start: jobs must be >= 1";
  Obs.set_enabled true;
  (* spans feed the per-request trees ("trace": true, --slow-ms); the
     ring overwrites its oldest entries, so leaving this on is bounded *)
  Span.set_enabled true;
  (* a client vanishing mid-response must be an EPIPE error, not a kill *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  remove_stale cfg.socket_path;
  let log =
    match cfg.access_log with
    | None -> None
    | Some path ->
        Some (open_out_gen [ Open_append; Open_creat ] 0o644 path)
  in
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  (match Unix.bind fd (ADDR_UNIX cfg.socket_path) with
  | () -> ()
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (match log with
      | Some oc -> ( try close_out oc with Sys_error _ -> ())
      | None -> ());
      raise e);
  Unix.listen fd 64;
  let srv =
    {
      s_cfg = cfg;
      s_fd = fd;
      s_pool = Parallel.create_pool ~jobs:cfg.jobs ();
      s_cache = Lru.create ~max_bytes:cfg.cache_bytes;
      s_cache_mutex = Mutex.create ();
      s_stop = Atomic.make false;
      s_conn_mutex = Mutex.create ();
      s_conn_cond = Condition.create ();
      s_active = 0;
      s_acceptor = None;
      s_window = Window.create ();
      s_rid = Atomic.make 1;
      s_log = log;
      s_log_mutex = Mutex.create ();
      s_slow = Queue.create ();
      s_slow_mutex = Mutex.create ();
    }
  in
  srv.s_acceptor <- Some (Domain.spawn (fun () -> accept_loop srv));
  srv

let wait srv =
  match srv.s_acceptor with Some d -> Domain.join d | None -> ()

let run cfg = wait (start cfg)

(* ------------------------------------------------------------------ *)
(* Client                                                             *)

module Client = struct
  type t = { c_fd : Unix.file_descr; c_reader : reader }

  let connect path =
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    (match Unix.connect fd (ADDR_UNIX path) with
    | () -> ()
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e);
    { c_fd = fd; c_reader = make_reader fd }

  let request t line =
    write_line t.c_fd line;
    match read_line t.c_reader with
    | Some resp -> resp
    | None -> failwith "Serve.Client.request: server closed the connection"

  let rpc t fields =
    let line =
      "{"
      ^ String.concat ", "
          (List.map
             (fun (k, v) -> Printf.sprintf "\"%s\": %s" (Ferr.json_escape k) v)
             fields)
      ^ "}"
    in
    match Json.parse (request t line) with
    | Ok j -> j
    | Error msg -> failwith ("Serve.Client.rpc: bad response JSON: " ^ msg)

  let close t = try Unix.close t.c_fd with Unix.Unix_error _ -> ()

  let shutdown path =
    let t = connect path in
    Fun.protect
      ~finally:(fun () -> close t)
      (fun () -> ignore (request t "{\"op\": \"shutdown\"}"))
end

(* ------------------------------------------------------------------ *)
(* Load generator                                                     *)

type bench_result = {
  br_clients : int;
  br_requests : int;
  br_wall_s : float;
  br_rps : float;
  br_p50_ms : float;
  br_p99_ms : float;
  br_hits : int; (* soak-only delta, not lifetime totals *)
  br_misses : int;
  br_hit_rate : float;
  br_cold_ms : float;
  br_warm_ms : float;
  br_warm_speedup : float;
  br_win_rps : float; (* daemon-side 10s window, read post-soak *)
  br_win_p50_ms : int;
  br_win_p99_ms : int;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (float_of_int n *. p)))

let timed_request client line =
  let t0 = Unix.gettimeofday () in
  let resp = Client.request client line in
  let dt = (Unix.gettimeofday () -. t0) *. 1000.0 in
  (resp, dt)

let analyze_line prog =
  Printf.sprintf "{\"op\": \"analyze\", \"program\": \"%s\"}"
    (Ferr.json_escape prog)

let extract_line prog =
  Printf.sprintf "{\"op\": \"extract\", \"program\": \"%s\"}"
    (Ferr.json_escape prog)

let metric_value j name =
  match Json.member "metrics" j with
  | Some m -> (
      match Json.member "counters" m with
      | Some c -> (
          match Json.member name c with Some (Json.Int i) -> i | _ -> 0)
      | None -> 0)
  | None -> 0

let bench ~socket ~clients ~requests ~programs ~cold_program =
  if programs = [] then invalid_arg "Serve.bench: programs must be non-empty";
  let progs = Array.of_list programs in
  (* cold/warm probe first: on a fresh daemon the first analyze of
     [cold_program] is a guaranteed miss, the immediate repeat a hit *)
  let cold_ms, warm_ms =
    let c = Client.connect socket in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        let _, cold = timed_request c (analyze_line cold_program) in
        let _, warm = timed_request c (analyze_line cold_program) in
        (cold, warm))
  in
  (* snapshot the cache counters now: the daemon may have served earlier
     soaks (or the probe above), and only the soak's own delta is an
     honest hit rate *)
  let hits0, misses0 =
    let c = Client.connect socket in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        let j = Client.rpc c [ ("op", "\"metrics\"") ] in
        (metric_value j "serve.cache.hits", metric_value j "serve.cache.misses"))
  in
  (* soak: [clients] domains, each its own connection, alternating
     analyze/extract over the program mix *)
  let t0 = Unix.gettimeofday () in
  let per_client =
    Parallel.map ~jobs:clients
      (fun ci ->
        let c = Client.connect socket in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            List.init requests (fun i ->
                let prog = progs.((ci + i) mod Array.length progs) in
                let line =
                  if i mod 2 = 0 then analyze_line prog else extract_line prog
                in
                let resp, dt = timed_request c line in
                (match Json.parse resp with
                | Ok _ -> ()
                | Error msg ->
                    failwith ("serve-bench: malformed response: " ^ msg));
                dt)))
      (List.init clients Fun.id)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let lat = Array.of_list (List.concat per_client) in
  Array.sort compare lat;
  let total = Array.length lat in
  (* post-soak: cache counters again (delta = the soak's own traffic) and
     the daemon's live 10s window *)
  let hits, misses, win_rps, win_p50, win_p99 =
    let c = Client.connect socket in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        let j = Client.rpc c [ ("op", "\"metrics\"") ] in
        let w10 =
          match Json.member "window" j with
          | Some w -> Json.member "10s" w
          | None -> None
        in
        let wf name =
          match Option.bind w10 (Json.member name) with
          | Some (Json.Float f) -> f
          | Some (Json.Int i) -> float_of_int i
          | _ -> 0.0
        in
        let wi name =
          match Option.bind w10 (Json.member name) with
          | Some (Json.Int i) -> i
          | _ -> 0
        in
        ( metric_value j "serve.cache.hits" - hits0,
          metric_value j "serve.cache.misses" - misses0,
          wf "rps",
          wi "p50_ms",
          wi "p99_ms" ))
  in
  {
    br_clients = clients;
    br_requests = total;
    br_wall_s = wall_s;
    br_rps = (if wall_s > 0.0 then float_of_int total /. wall_s else 0.0);
    br_p50_ms = percentile lat 0.50;
    br_p99_ms = percentile lat 0.99;
    br_hits = hits;
    br_misses = misses;
    br_hit_rate =
      (let denom = hits + misses in
       if denom = 0 then 0.0 else float_of_int hits /. float_of_int denom);
    br_cold_ms = cold_ms;
    br_warm_ms = warm_ms;
    br_warm_speedup = (if warm_ms > 0.0 then cold_ms /. warm_ms else 0.0);
    br_win_rps = win_rps;
    br_win_p50_ms = win_p50;
    br_win_p99_ms = win_p99;
  }

let bench_result_to_string r =
  Printf.sprintf
    "serve: %d clients, %d requests in %.2fs = %.1f req/s\n\
     latency: p50 %.2fms  p99 %.2fms\n\
     cache (soak delta): %d hits / %d misses (%.1f%% hit rate)\n\
     cold %.2fms -> warm %.2fms (%.1fx)\n\
     daemon 10s window: %.1f rps  p50 %dms  p99 %dms\n"
    r.br_clients r.br_requests r.br_wall_s r.br_rps r.br_p50_ms r.br_p99_ms
    r.br_hits r.br_misses (100.0 *. r.br_hit_rate) r.br_cold_ms r.br_warm_ms
    r.br_warm_speedup r.br_win_rps r.br_win_p50_ms r.br_win_p99_ms

let bench_result_to_json r =
  Printf.sprintf
    "{\"clients\": %d, \"requests\": %d, \"wall_s\": %.6f, \"rps\": %.2f, \
     \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"cache_hits\": %d, \
     \"cache_misses\": %d, \"hit_rate\": %.4f, \"cold_ms\": %.3f, \
     \"warm_ms\": %.3f, \"warm_speedup\": %.2f, \"win10_rps\": %.2f, \
     \"win10_p50_ms\": %d, \"win10_p99_ms\": %d}"
    r.br_clients r.br_requests r.br_wall_s r.br_rps r.br_p50_ms r.br_p99_ms
    r.br_hits r.br_misses r.br_hit_rate r.br_cold_ms r.br_warm_ms
    r.br_warm_speedup r.br_win_rps r.br_win_p50_ms r.br_win_p99_ms
