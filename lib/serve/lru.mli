(** A byte-bounded LRU map, the shape of the daemon's model cache.

    Entries carry an explicit byte cost; insertions that push the total
    over [max_bytes] evict least-recently-used entries until the bound
    holds again. {!find} counts as a use. O(1) find/add via a hash table
    over intrusive doubly-linked nodes.

    {b Not thread-safe} — the daemon serializes access behind its own
    mutex (contention is one hash lookup, never the analysis itself). *)

type 'a t

(** [create ~max_bytes] with [max_bytes >= 0]; [0] disables caching
    entirely (every [add] is a no-op). *)
val create : max_bytes:int -> 'a t

(** [find t key] returns the entry and marks it most-recently used. *)
val find : 'a t -> string -> 'a option

(** [add t ~key ~bytes v] inserts or replaces, then evicts from the LRU
    end until the byte bound holds; returns how many entries were evicted
    (the replaced entry, if any, is not counted). An entry larger than
    [max_bytes] on its own is not inserted at all — it would only flush
    the whole cache to hold a single unshareable result. *)
val add : 'a t -> key:string -> bytes:int -> 'a -> int

(** Current number of entries. *)
val entries : 'a t -> int

(** Current total byte cost. *)
val bytes : 'a t -> int

(** The configured bound. *)
val max_bytes : 'a t -> int
