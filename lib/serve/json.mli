(** A minimal JSON reader for the [forayd] wire protocol.

    The daemon's requests are single-line JSON objects with scalar fields,
    so this is a small recursive-descent parser over the full JSON grammar
    (objects, arrays, strings with escapes, numbers, booleans, null) with
    no dependencies — the response side stays on the hand-rolled emitters
    the rest of the codebase already uses ({!Foray_core.Error.json_escape}).

    Numbers without a fractional part or exponent parse as [Int]; anything
    else as [Float]. Duplicate object keys keep their first occurrence
    (lookup order of {!member}). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** [parse s] reads one JSON value spanning all of [s] (surrounding
    whitespace allowed); trailing garbage is an error. The error string
    names the byte offset. *)
val parse : string -> (t, string) result

(** First binding of [key] in an object; [None] on missing key or
    non-object. *)
val member : string -> t -> t option

(** {1 Schema accessors}

    [None] when the field is absent or [Null]; [Error] strings name the
    field when it is present with the wrong type — the daemon turns these
    into [E_BAD_REQUEST]. *)

val str_field : string -> t -> (string option, string) result

val int_field : string -> t -> (int option, string) result

val bool_field : string -> t -> (bool option, string) result
