type thresholds = { nexec : int; nloc : int }

let default = { nexec = 20; nloc = 10 }

let keep th (r : Looptree.refinfo) =
  Affine.analyzable r.aff
  && Affine.has_iterator r.aff
  && Affine.execs r.aff >= th.nexec
  && Foray_util.Iset.cardinal r.starts >= th.nloc

(* The purge tests in the order Step 4 applies them; the first failing
   test names the reason. *)
let verdict th (r : Looptree.refinfo) =
  if keep th r then (true, None)
  else
    ( false,
      Some
        (if not (Affine.analyzable r.aff) then Provenance.Unanalyzable
         else if not (Affine.has_iterator r.aff) then Provenance.No_iterator
         else if Affine.execs r.aff < th.nexec then Provenance.Below_nexec
         else Provenance.Below_nloc) )

let survivors th tree =
  List.filter (fun (_, r) -> keep th r) (Looptree.refs tree)
