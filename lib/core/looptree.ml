module Event = Foray_trace.Event
module Iset = Foray_util.Iset
module Obs = Foray_obs.Obs

type node = {
  uid : int;
  lid : int;
  depth : int;
  parent : node option;
  mutable children : node list;
  mutable refs : refinfo list;
  mutable iter : int;
  mutable entries : int;
  mutable trip_min : int;
  mutable trip_max : int;
  mutable trip_total : int;
}

and refinfo = {
  aff : Affine.t;
  mutable footprint : Iset.t;
  mutable starts : Iset.t;
  mutable reads : int;
  mutable writes : int;
  mutable sys : bool;
  mutable width_max : int;
}

type t = {
  root : node;
  mutable cur : node;
  mutable next_uid : int;
  (* (node uid, site) -> reference; (node uid, lid) -> child node *)
  ref_tbl : (int * int, refinfo) Hashtbl.t;
  node_tbl : (int * int, node) Hashtbl.t;
  mutable n_nodes : int;
  mutable max_depth : int;
  mutable mismatches : int;  (* checkpoints that found no matching node *)
}

let mk_node ~uid ~lid ~depth ~parent =
  {
    uid;
    lid;
    depth;
    parent;
    children = [];
    refs = [];
    iter = -1;
    entries = 0;
    trip_min = max_int;
    trip_max = 0;
    trip_total = 0;
  }

let create () =
  let root = mk_node ~uid:0 ~lid:0 ~depth:0 ~parent:None in
  {
    root;
    cur = root;
    next_uid = 1;
    ref_tbl = Hashtbl.create 256;
    node_tbl = Hashtbl.create 64;
    n_nodes = 0;
    max_depth = 0;
    mismatches = 0;
  }

let record_trip n =
  (* iter+1 is the trip count of this entry (-1 -> body never ran). *)
  let trip = n.iter + 1 in
  if trip < n.trip_min then n.trip_min <- trip;
  if trip > n.trip_max then n.trip_max <- trip;
  n.trip_total <- n.trip_total + trip

let rec pop_to t lid =
  (* Pop abandoned nodes until the current node's lid matches or the root
     is reached (checkpoint of a loop we never saw entered). *)
  if t.cur.lid <> lid then
    match t.cur.parent with
    | Some p ->
        record_trip t.cur;
        t.cur <- p;
        pop_to t lid
    | None -> ()

let enter t lid =
  let key = (t.cur.uid, lid) in
  let n =
    match Hashtbl.find_opt t.node_tbl key with
    | Some n -> n
    | None ->
        let n =
          mk_node ~uid:t.next_uid ~lid ~depth:(t.cur.depth + 1)
            ~parent:(Some t.cur)
        in
        t.next_uid <- t.next_uid + 1;
        t.cur.children <- t.cur.children @ [ n ];
        Hashtbl.add t.node_tbl key n;
        t.n_nodes <- t.n_nodes + 1;
        if n.depth > t.max_depth then t.max_depth <- n.depth;
        n
  in
  n.iter <- -1;
  n.entries <- n.entries + 1;
  t.cur <- n

let iter_vector node =
  (* Iterator values innermost-first along the path to the root. *)
  let v = Array.make node.depth 0 in
  let rec fill n i =
    match n.parent with
    | None -> ()
    | Some p ->
        v.(i) <- n.iter;
        fill p (i + 1)
  in
  fill node 0;
  v

let observe_access t (a : Event.access) =
  let node = t.cur in
  let key = (node.uid, a.site) in
  let info =
    match Hashtbl.find_opt t.ref_tbl key with
    | Some r -> r
    | None ->
        let r =
          {
            aff = Affine.create ~site:a.site ~depth:node.depth;
            footprint = Iset.empty;
            starts = Iset.empty;
            reads = 0;
            writes = 0;
            sys = a.sys;
            width_max = a.width;
          }
        in
        Hashtbl.add t.ref_tbl key r;
        node.refs <- node.refs @ [ r ];
        r
  in
  Affine.observe info.aff ~iters:(iter_vector node) ~addr:a.addr;
  info.footprint <- Iset.add_range a.addr (a.addr + a.width) info.footprint;
  info.starts <- Iset.add a.addr info.starts;
  if a.write then info.writes <- info.writes + 1 else info.reads <- info.reads + 1;
  if a.sys then info.sys <- true;
  if a.width > info.width_max then info.width_max <- a.width

let sink t : Event.sink = function
  | Event.Access a -> observe_access t a
  | Event.Checkpoint { loop; kind } -> (
      match kind with
      | Event.Loop_enter -> enter t loop
      | Event.Body_enter ->
          pop_to t loop;
          if t.cur.lid = loop then t.cur.iter <- t.cur.iter + 1
          else begin
            (* defensive: body without a preceding enter *)
            t.mismatches <- t.mismatches + 1;
            enter t loop
          end
      | Event.Body_exit ->
          pop_to t loop;
          if t.cur.lid <> loop then t.mismatches <- t.mismatches + 1
      | Event.Loop_exit ->
          pop_to t loop;
          if t.cur.lid = loop then begin
            record_trip t.cur;
            match t.cur.parent with
            | Some p -> t.cur <- p
            | None -> ()
          end
          else t.mismatches <- t.mismatches + 1)

let root t = t.root

let nodes t =
  let acc = ref [] in
  let rec go n =
    if n.uid <> 0 then acc := n :: !acc;
    List.iter go n.children
  in
  go t.root;
  List.rev !acc

let refs t =
  List.concat_map
    (fun n -> List.map (fun r -> (n, r)) n.refs)
    (t.root :: nodes t)

let rec path n =
  match n.parent with None -> [] | Some p -> path p @ [ n.lid ]

let n_nodes t = t.n_nodes
let max_depth t = t.max_depth
let mismatches t = t.mismatches

let m_nodes = Obs.gauge "looptree.nodes"
let m_depth = Obs.gauge "looptree.max_depth"
let m_mismatches = Obs.counter "looptree.checkpoint_mismatches"

let flush_metrics t =
  if Obs.enabled () then begin
    Obs.set_max m_nodes t.n_nodes;
    Obs.set_max m_depth t.max_depth;
    Obs.add m_mismatches t.mismatches
  end
