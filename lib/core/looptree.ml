module Event = Foray_trace.Event
module Iset = Foray_util.Iset
module Obs = Foray_obs.Obs

type node = {
  mutable uid : int;
  lid : int;
  depth : int;
  mutable parent : node option;
  mutable children : node list;
  mutable refs : refinfo list;
  mutable iter : int;
  mutable entries : int;
  mutable trip_min : int;
  mutable trip_max : int;
  mutable trip_total : int;
}

and refinfo = {
  aff : Affine.t;
  mutable footprint : Iset.t;
  mutable starts : Iset.t;
  mutable reads : int;
  mutable writes : int;
  mutable sys : bool;
  mutable width_max : int;
}

type t = {
  root : node;
  mutable cur : node;
  mutable next_uid : int;
  (* (node uid, site) -> reference; (node uid, lid) -> child node *)
  ref_tbl : (int * int, refinfo) Hashtbl.t;
  node_tbl : (int * int, node) Hashtbl.t;
  mutable n_nodes : int;
  mutable max_depth : int;
  mutable mismatches : int;  (* checkpoints that found no matching node *)
  mergeable : bool;  (* refs use Affine.create_logged; tree supports merge *)
  mutable merged : bool;  (* consumed by merge; walking it again is a bug *)
}

let mk_node ~uid ~lid ~depth ~parent =
  {
    uid;
    lid;
    depth;
    parent;
    children = [];
    refs = [];
    iter = -1;
    entries = 0;
    trip_min = max_int;
    trip_max = 0;
    trip_total = 0;
  }

let create ?(mergeable = false) () =
  let root = mk_node ~uid:0 ~lid:0 ~depth:0 ~parent:None in
  {
    root;
    cur = root;
    next_uid = 1;
    ref_tbl = Hashtbl.create 256;
    node_tbl = Hashtbl.create 64;
    n_nodes = 0;
    max_depth = 0;
    mismatches = 0;
    mergeable;
    merged = false;
  }

let mergeable t = t.mergeable

let record_trip n =
  (* iter+1 is the trip count of this entry (-1 -> body never ran). *)
  let trip = n.iter + 1 in
  if trip < n.trip_min then n.trip_min <- trip;
  if trip > n.trip_max then n.trip_max <- trip;
  n.trip_total <- n.trip_total + trip

let rec pop_to t lid =
  (* Pop abandoned nodes until the current node's lid matches or the root
     is reached (checkpoint of a loop we never saw entered). *)
  if t.cur.lid <> lid then
    match t.cur.parent with
    | Some p ->
        record_trip t.cur;
        t.cur <- p;
        pop_to t lid
    | None -> ()

let enter t lid =
  let key = (t.cur.uid, lid) in
  let n =
    match Hashtbl.find_opt t.node_tbl key with
    | Some n -> n
    | None ->
        let n =
          mk_node ~uid:t.next_uid ~lid ~depth:(t.cur.depth + 1)
            ~parent:(Some t.cur)
        in
        t.next_uid <- t.next_uid + 1;
        t.cur.children <- t.cur.children @ [ n ];
        Hashtbl.add t.node_tbl key n;
        t.n_nodes <- t.n_nodes + 1;
        if n.depth > t.max_depth then t.max_depth <- n.depth;
        n
  in
  n.iter <- -1;
  n.entries <- n.entries + 1;
  t.cur <- n

let iter_vector node =
  (* Iterator values innermost-first along the path to the root. *)
  let v = Array.make node.depth 0 in
  let rec fill n i =
    match n.parent with
    | None -> ()
    | Some p ->
        v.(i) <- n.iter;
        fill p (i + 1)
  in
  fill node 0;
  v

let observe_access t (a : Event.access) =
  let node = t.cur in
  let key = (node.uid, a.site) in
  let info =
    match Hashtbl.find_opt t.ref_tbl key with
    | Some r -> r
    | None ->
        let mk = if t.mergeable then Affine.create_logged else Affine.create in
        let r =
          {
            aff = mk ~site:a.site ~depth:node.depth;
            footprint = Iset.empty;
            starts = Iset.empty;
            reads = 0;
            writes = 0;
            sys = a.sys;
            width_max = a.width;
          }
        in
        Hashtbl.add t.ref_tbl key r;
        node.refs <- node.refs @ [ r ];
        r
  in
  Affine.observe info.aff ~iters:(iter_vector node) ~addr:a.addr;
  info.footprint <- Iset.add_range a.addr (a.addr + a.width) info.footprint;
  info.starts <- Iset.add a.addr info.starts;
  if a.write then info.writes <- info.writes + 1 else info.reads <- info.reads + 1;
  if a.sys then info.sys <- true;
  if a.width > info.width_max then info.width_max <- a.width

let sink t : Event.sink = function
  | _ when t.merged -> invalid_arg "Looptree.sink: tree was consumed by merge"
  | Event.Access a -> observe_access t a
  | Event.Checkpoint { loop; kind } -> (
      match kind with
      | Event.Loop_enter -> enter t loop
      | Event.Body_enter ->
          pop_to t loop;
          if t.cur.lid = loop then t.cur.iter <- t.cur.iter + 1
          else begin
            (* defensive: body without a preceding enter *)
            t.mismatches <- t.mismatches + 1;
            enter t loop
          end
      | Event.Body_exit ->
          pop_to t loop;
          if t.cur.lid <> loop then t.mismatches <- t.mismatches + 1
      | Event.Loop_exit ->
          pop_to t loop;
          if t.cur.lid = loop then begin
            record_trip t.cur;
            match t.cur.parent with
            | Some p -> t.cur <- p
            | None -> ()
          end
          else t.mismatches <- t.mismatches + 1)

(* --- sharded analysis: context restore, merge, finalize ---------------- *)

let restore_context t ctx =
  if not t.mergeable then
    invalid_arg "Looptree.restore_context: not a mergeable tree";
  if t.cur != t.root || t.n_nodes > 0 then
    invalid_arg "Looptree.restore_context: walker already started";
  List.iter
    (fun (lid, iter) ->
      enter t lid;
      (* The Loop_enter that opened this node ran in an earlier shard,
         which owns the entry count; here the node is only scaffolding to
         put the walker back on the sequential walker's stack. *)
      t.cur.entries <- t.cur.entries - 1;
      t.cur.iter <- iter)
    ctx

let rec renumber t n =
  n.uid <- t.next_uid;
  t.next_uid <- t.next_uid + 1;
  List.iter (renumber t) n.children

(* Children keep first-encountered order under a left fold over shards:
   both lists are already in first-encounter order within their shard, the
   left shard comes first in trace order, and anything the right shard saw
   that the left also saw merges into the left's slot. Same for refs. *)
let rec merge_node t dst src =
  dst.entries <- dst.entries + src.entries;
  dst.trip_total <- dst.trip_total + src.trip_total;
  if src.trip_min < dst.trip_min then dst.trip_min <- src.trip_min;
  if src.trip_max > dst.trip_max then dst.trip_max <- src.trip_max;
  dst.iter <- src.iter;
  List.iter
    (fun (rs : refinfo) ->
      let site = Affine.site rs.aff in
      match List.find_opt (fun r -> Affine.site r.aff = site) dst.refs with
      | Some rd ->
          ignore (Affine.merge rd.aff rs.aff : Affine.t);
          rd.footprint <- Iset.union rd.footprint rs.footprint;
          rd.starts <- Iset.union rd.starts rs.starts;
          rd.reads <- rd.reads + rs.reads;
          rd.writes <- rd.writes + rs.writes;
          rd.sys <- rd.sys || rs.sys;
          if rs.width_max > rd.width_max then rd.width_max <- rs.width_max
      | None -> dst.refs <- dst.refs @ [ rs ])
    src.refs;
  List.iter
    (fun cs ->
      match List.find_opt (fun c -> c.lid = cs.lid) dst.children with
      | Some cd -> merge_node t cd cs
      | None ->
          cs.parent <- Some dst;
          renumber t cs;
          dst.children <- dst.children @ [ cs ])
    src.children

let merge a b =
  if not (a.mergeable && b.mergeable) then
    invalid_arg "Looptree.merge: trees must be created with ~mergeable:true";
  merge_node a a.root b.root;
  a.mismatches <- a.mismatches + b.mismatches;
  b.merged <- true;
  (* The walker tables describe a single shard's stack; after a merge the
     tree is a read-only result, so drop them and refuse further events. *)
  a.merged <- true;
  Hashtbl.reset a.node_tbl;
  Hashtbl.reset a.ref_tbl;
  a.n_nodes <- 0;
  a.max_depth <- 0;
  let rec shape n =
    if n.uid <> 0 then begin
      a.n_nodes <- a.n_nodes + 1;
      if n.depth > a.max_depth then a.max_depth <- n.depth
    end;
    List.iter shape n.children
  in
  shape a.root;
  a

(* Tree-wise reduction: adjacent pairs merge concurrently — each merge
   touches only its own two trees — halving the list per round, so the
   critical path is log2(shards) merges instead of a left fold's
   shards-1. Pairing adjacent shards preserves trace order, and merge
   associativity (tested) makes the result identical to the fold. *)
let rec merge_all ?(jobs = 1) = function
  | [] -> create ~mergeable:true ()
  | [ t ] -> t
  | ts ->
      let rec pair = function
        | a :: b :: rest -> (fun () -> merge a b) :: pair rest
        | [ a ] -> [ (fun () -> a) ]
        | [] -> []
      in
      merge_all ~jobs (Foray_util.Parallel.run ~jobs (pair ts))

let rec all_affs acc n =
  let acc = List.fold_left (fun acc r -> r.aff :: acc) acc n.refs in
  List.fold_left all_affs acc n.children

let finalize ?(jobs = 1) t =
  let affs = Array.of_list (all_affs [] t.root) in
  let n = Array.length affs in
  if jobs <= 1 || n <= 1 then Array.iter Affine.force affs
  else
    (* Round-robin partition: each ref is forced by exactly one worker, so
       no Affine state is touched concurrently (Provenance, the only shared
       structure a fold writes, is mutex-protected). *)
    Foray_util.Parallel.run ~jobs
      (List.init (min jobs n) (fun k () ->
           let i = ref k in
           while !i < n do
             Affine.force affs.(!i);
             i := !i + jobs
           done))
    |> ignore

let root t = t.root

let nodes t =
  let acc = ref [] in
  let rec go n =
    if n.uid <> 0 then acc := n :: !acc;
    List.iter go n.children
  in
  go t.root;
  List.rev !acc

let refs t =
  List.concat_map
    (fun n -> List.map (fun r -> (n, r)) n.refs)
    (t.root :: nodes t)

let rec path n =
  match n.parent with None -> [] | Some p -> path p @ [ n.lid ]

let n_nodes t = t.n_nodes
let max_depth t = t.max_depth
let mismatches t = t.mismatches

let m_nodes = Obs.gauge "looptree.nodes"
let m_depth = Obs.gauge "looptree.max_depth"
let m_mismatches = Obs.counter "looptree.checkpoint_mismatches"

let flush_metrics t =
  if Obs.enabled () then begin
    Obs.set_max m_nodes t.n_nodes;
    Obs.set_max m_depth t.max_depth;
    Obs.add m_mismatches t.mismatches
  end
