(** The FORAY model: a program of [for] loops and array references with
    (partial) affine index expressions, extracted from a profile trace.

    This is the output of FORAY-GEN (Phase I of the design flow) and the
    input of the SPM analyses (Phase II). Index expressions are in bytes
    and constants are absolute simulated addresses, exactly as in the
    paper's Figures 2 and 4(d). *)

type mref = {
  site : int;  (** static reference id; names the array [A<site-hex>] *)
  const : int;  (** constant term (absolute base address) *)
  terms : (int * int) list;
      (** (coefficient, loop id) for each included iterator, innermost
          first; zero coefficients are dropped *)
  partial : bool;  (** true when the expression covers only the innermost
                       [m < n] iterators and the base varies with the rest *)
  depth : int;  (** loop nest level n *)
  m : int;  (** iterators covered by the expression *)
  execs : int;
  footprint : int;  (** distinct bytes touched *)
  locations : int;  (** distinct start addresses *)
  reads : int;
  writes : int;
  width : int;  (** access width in bytes *)
}

type mloop = {
  lid : int;
  kind : string option;  (** "for"/"while"/"do" of the original loop *)
  trip : int;  (** maximum observed trip count *)
  trip_min : int;
  entries : int;  (** times the loop was entered *)
  refs : mref list;
  subs : mloop list;
}

type t = {
  loops : mloop list;  (** top-level model loops *)
  sites : int list;  (** distinct sites captured, ascending *)
}

(** [of_tree ~thresholds ~loop_kinds tree] filters references (Step 4) and
    prunes loop nodes whose subtree captured nothing. [loop_kinds] maps
    original loop ids to "for"/"while"/"do" (from
    {!Foray_instrument.Annotate.loop_table}).

    When {!Provenance.enabled}, every reference in [tree] — purged or
    kept — gets a closing {!Provenance.Verdict} event recorded against
    its {!Affine.uid} story, so [foraygen explain] can report the Step-4
    outcome. *)
val of_tree :
  ?thresholds:Filter.thresholds ->
  ?loop_kinds:(int * string) list ->
  Looptree.t ->
  t

(** [mref_of_info node ref] converts one surviving loop-tree reference to
    its model form (coefficients paired with loop ids along [node]'s
    path). Exposed so {!module:Foray_report} can rebuild the model view of
    a reference when rendering provenance timelines. *)
val mref_of_info : Looptree.node -> Looptree.refinfo -> mref

(** Total loops in the model (nested included). *)
val n_loops : t -> int

(** Total references in the model (a site reached through two contexts
    counts twice, mirroring the paper's inlined accounting). *)
val n_refs : t -> int

(** Sum of [execs] over model references. *)
val accesses : t -> int

(** All references, paired with their enclosing loop chain (outermost
    first). *)
val all_refs : t -> (mloop list * mref) list

(** [to_c model] renders the model as a compilable MiniC program in the
    style of Figure 4(d): one [char A<site>\[\]] declaration per captured
    site and a [main] of perfectly nested [for] loops whose bodies are the
    array references. Partial references carry a comment noting that their
    base varies with the outer loops. [deriv], when given, maps a
    reference to an optional one-line derivation note (typically from its
    {!Provenance} story) emitted as a comment under the access. *)
val to_c : ?deriv:(mref -> string option) -> t -> string

(** Renders one reference's index expression, e.g.
    ["2147440948 + 1*i15 + 103*i12"]. *)
val expr_of_ref : mref -> string

(** [to_c_exec model] renders an {e executable} variant of the model: each
    captured array is re-based to offset 0 and declared with exactly the
    bytes the model touches, so the program runs on the simulator. Running
    FORAY-GEN on this output recovers the same affine coefficients — the
    model is a fixpoint of the extraction (see the fixpoint test). *)
val to_c_exec : t -> string

(** Array name for a site, e.g. ["A4002a0"]. *)
val array_name : int -> string
