(** Step 4 of Algorithm 1: purge uninteresting memory references.

    A reference survives when it
    - has a (partial) affine index expression including at least one
      iterator with a nonzero coefficient (regular access pattern),
    - executed at least [nexec] times, and
    - addressed at least [nloc] distinct memory locations.

    The paper uses [nexec = 20], [nloc = 10] to drop small arrays (better
    handled by whole-object placement techniques) and references without
    reuse. *)

type thresholds = { nexec : int; nloc : int }

(** The paper's values: [{ nexec = 20; nloc = 10 }]. *)
val default : thresholds

(** [keep th ref] decides survival of one reference. *)
val keep : thresholds -> Looptree.refinfo -> bool

(** [verdict th ref] is [keep] plus, for purged references, the first
    failing test as a {!Provenance.purge_reason}. *)
val verdict :
  thresholds -> Looptree.refinfo -> bool * Provenance.purge_reason option

(** [survivors th tree] lists surviving references with their nodes. *)
val survivors :
  thresholds -> Looptree.t -> (Looptree.node * Looptree.refinfo) list
