type classification = Stable | Trip_varies | Input_dependent

type ref_stability = {
  site : int;
  path : int list;
  classification : classification;
  seen_in : int;
}

type report = {
  runs : int;
  refs : ref_stability list;
  stable : int;
  trip_varies : int;
  input_dependent : int;
}

(* Identity of a reference across runs: its loop-id path plus site.
   Signature of its behaviour: coefficients, partiality and trips. *)
type sighting = {
  terms : (int * int) list;
  partial : bool;
  trips : int list;
}

let sightings_of model =
  List.map
    (fun (chain, (mr : Model.mref)) ->
      let path = List.map (fun (l : Model.mloop) -> l.lid) chain in
      ( (path, mr.site),
        { terms = mr.terms; partial = mr.partial;
          trips = List.map (fun (l : Model.mloop) -> l.trip) chain } ))
    (Model.all_refs model)

let study ?(thresholds = Filter.default) ?(jobs = 1) ~seeds prog =
  if List.length seeds < 2 then invalid_arg "Stability.study: need >= 2 seeds";
  let models =
    Foray_util.Parallel.map ~jobs
      (fun seed ->
        let config = { Minic_sim.Interp.default_config with rand_seed = seed } in
        match Pipeline.run ~config ~thresholds prog with
        | Ok o -> o.Pipeline.result.model
        | Error e -> Error.raise_error e)
      seeds
  in
  let runs = List.length models in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun model ->
      List.iter
        (fun (key, s) ->
          let prev = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
          Hashtbl.replace tbl key (s :: prev))
        (sightings_of model))
    models;
  let refs =
    Hashtbl.fold
      (fun (path, site) sightings acc ->
        let seen_in = List.length sightings in
        let first = List.hd sightings in
        let classification =
          if seen_in < runs then Input_dependent
          else if
            List.for_all
              (fun s -> s.terms = first.terms && s.partial = first.partial)
              sightings
          then
            if List.for_all (fun s -> s.trips = first.trips) sightings then
              Stable
            else Trip_varies
          else Input_dependent
        in
        { site; path; classification; seen_in } :: acc)
      tbl []
    |> List.sort compare
  in
  let count c = List.length (List.filter (fun r -> r.classification = c) refs) in
  {
    runs;
    refs;
    stable = count Stable;
    trip_varies = count Trip_varies;
    input_dependent = count Input_dependent;
  }

let to_string rep =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "%d reference(s) across %d runs: %d stable, %d trip-varying, %d \
     input-dependent\n"
    (List.length rep.refs) rep.runs rep.stable rep.trip_varies
    rep.input_dependent;
  List.iter
    (fun r ->
      if r.classification <> Stable then
        Printf.bprintf b "  site %x at [%s]: %s (seen in %d/%d runs)\n" r.site
          (String.concat ">" (List.map string_of_int r.path))
          (match r.classification with
          | Stable -> "stable"
          | Trip_varies -> "trip counts vary"
          | Input_dependent -> "input-dependent")
          r.seen_in rep.runs)
    rep.refs;
  Buffer.contents b
