module Iset = Foray_util.Iset
module Obs = Foray_obs.Obs

(* Per-extraction inference outcome: one promoted/demoted verdict per
   (site, tree position) reference, with the demotion reason split the way
   Step 4 applies its tests, plus the rank (included-iterator count)
   distribution of partial expressions. *)
let m_refs_seen = Obs.counter "infer.refs_seen"
let m_promoted = Obs.counter "infer.promoted"
let m_demoted = Obs.counter "infer.demoted"
let m_dem_unanalyzable = Obs.counter ~labels:[ ("reason", "unanalyzable") ] "infer.demoted_by"
let m_dem_no_iterator = Obs.counter ~labels:[ ("reason", "no_iterator") ] "infer.demoted_by"
let m_dem_nexec = Obs.counter ~labels:[ ("reason", "below_nexec") ] "infer.demoted_by"
let m_dem_nloc = Obs.counter ~labels:[ ("reason", "below_nloc") ] "infer.demoted_by"
let m_mispredictions = Obs.counter "infer.mispredictions"
let m_partial = Obs.counter "infer.partial_refs"
let m_rank = Obs.histogram ~bounds:[ 0; 1; 2; 3; 4; 6; 8 ] "infer.partial_rank"

let reason_counter = function
  | Provenance.Unanalyzable -> m_dem_unanalyzable
  | Provenance.No_iterator -> m_dem_no_iterator
  | Provenance.Below_nexec -> m_dem_nexec
  | Provenance.Below_nloc -> m_dem_nloc

let flush_inference_obs thresholds tree =
  List.iter
    (fun ((_ : Looptree.node), (r : Looptree.refinfo)) ->
      let aff = r.aff in
      Obs.incr m_refs_seen;
      Obs.add m_mispredictions (Affine.mispredictions aff);
      match Filter.verdict thresholds r with
      | true, _ ->
          Obs.incr m_promoted;
          if Affine.partial aff then begin
            Obs.incr m_partial;
            Obs.observe m_rank (Affine.m aff)
          end
      | false, reason ->
          Obs.incr m_demoted;
          Obs.incr
            (reason_counter
               (Option.value reason ~default:Provenance.Below_nloc)))
    (Looptree.refs tree)

(* Close every story with its Step-4 verdict; re-filtering the same tree
   (e.g. a threshold ablation) replaces earlier verdicts. *)
let flush_provenance thresholds tree =
  List.iter
    (fun ((_ : Looptree.node), (r : Looptree.refinfo)) ->
      let kept, reason = Filter.verdict thresholds r in
      Provenance.record (Affine.uid r.aff)
        (Provenance.Verdict { kept; reason }))
    (Looptree.refs tree)

type mref = {
  site : int;
  const : int;
  terms : (int * int) list;
  partial : bool;
  depth : int;
  m : int;
  execs : int;
  footprint : int;
  locations : int;
  reads : int;
  writes : int;
  width : int;
}

type mloop = {
  lid : int;
  kind : string option;
  trip : int;
  trip_min : int;
  entries : int;
  refs : mref list;
  subs : mloop list;
}

type t = { loops : mloop list; sites : int list }

let mref_of_info (node : Looptree.node) (r : Looptree.refinfo) =
  let aff = r.aff in
  (* Loop ids along the path, innermost first, to pair with coefficients. *)
  let rec lids n acc =
    match n.Looptree.parent with
    | None -> acc
    | Some p -> lids p (acc @ [ n.Looptree.lid ])
  in
  let lid_by_level = lids node [] in
  let included = Affine.included_terms aff in
  let terms =
    List.filteri (fun i _ -> i < Affine.m aff) lid_by_level
    |> List.map2 (fun c lid -> (c, lid)) included
    |> List.filter (fun (c, _) -> c <> 0)
  in
  {
    site = Affine.site aff;
    const = Affine.const aff;
    terms;
    partial = Affine.partial aff;
    depth = Affine.depth aff;
    m = Affine.m aff;
    execs = Affine.execs aff;
    footprint = Iset.cardinal r.footprint;
    locations = Iset.cardinal r.starts;
    reads = r.reads;
    writes = r.writes;
    width = r.width_max;
  }

let of_tree ?(thresholds = Filter.default) ?(loop_kinds = []) tree =
  if Obs.enabled () then flush_inference_obs thresholds tree;
  if Provenance.enabled () then flush_provenance thresholds tree;
  let kind_of lid = List.assoc_opt lid loop_kinds in
  let sites = Hashtbl.create 64 in
  (* Build the pruned loop forest: keep nodes whose subtree has survivors. *)
  let rec build (n : Looptree.node) : mloop option =
    let refs =
      List.filter (Filter.keep thresholds) n.Looptree.refs
      |> List.map (mref_of_info n)
    in
    let subs = List.filter_map build n.Looptree.children in
    if refs = [] && subs = [] then None
    else begin
      List.iter (fun r -> Hashtbl.replace sites r.site ()) refs;
      Some
        {
          lid = n.Looptree.lid;
          kind = kind_of n.Looptree.lid;
          trip = (if n.Looptree.trip_max > 0 then n.Looptree.trip_max else n.Looptree.iter + 1);
          trip_min =
            (if n.Looptree.trip_min = max_int then n.Looptree.iter + 1
             else n.Looptree.trip_min);
          entries = n.Looptree.entries;
          refs;
          subs;
        }
    end
  in
  let loops = List.filter_map build (Looptree.root tree).Looptree.children in
  (* references directly at the root (outside any loop) can never pass the
     has-iterator filter, so the forest covers everything. *)
  let sites = Hashtbl.fold (fun s () acc -> s :: acc) sites [] in
  { loops; sites = List.sort compare sites }

let rec loops_in l = 1 + List.fold_left (fun a s -> a + loops_in s) 0 l.subs
let n_loops t = List.fold_left (fun a l -> a + loops_in l) 0 t.loops

let rec refs_in l =
  List.length l.refs + List.fold_left (fun a s -> a + refs_in s) 0 l.subs

let n_refs t = List.fold_left (fun a l -> a + refs_in l) 0 t.loops

let rec accesses_in l =
  List.fold_left (fun a (r : mref) -> a + r.execs) 0 l.refs
  + List.fold_left (fun a s -> a + accesses_in s) 0 l.subs

let accesses t = List.fold_left (fun a l -> a + accesses_in l) 0 t.loops

let all_refs t =
  let rec go chain l =
    let chain = chain @ [ l ] in
    List.map (fun r -> (chain, r)) l.refs
    @ List.concat_map (go chain) l.subs
  in
  List.concat_map (go []) t.loops

let array_name site = Printf.sprintf "A%x" site

let expr_of_ref r =
  let terms =
    List.map (fun (c, lid) -> Printf.sprintf "%d*i%d" c lid) r.terms
  in
  String.concat " + " (string_of_int r.const :: terms)

let to_c ?deriv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "/* FORAY model extracted by FORAY-GEN */\n";
  List.iter
    (fun site ->
      Buffer.add_string buf (Printf.sprintf "char %s[1];\n" (array_name site)))
    t.sites;
  Buffer.add_string buf "int main() {\n";
  let rec emit indent l =
    let pad = String.make (2 * indent) ' ' in
    let trip_note =
      if l.trip_min <> l.trip then
        Printf.sprintf " /* trips %d..%d over %d entries */" l.trip_min l.trip
          l.entries
      else ""
    in
    Buffer.add_string buf
      (Printf.sprintf "%sfor (int i%d = 0; i%d < %d; i%d++) {%s\n" pad l.lid
         l.lid l.trip l.lid trip_note);
    List.iter
      (fun r ->
        let note =
          if r.partial then
            Printf.sprintf " /* partial: base varies with %d outer loop(s) */"
              (r.depth - r.m)
          else ""
        in
        Buffer.add_string buf
          (Printf.sprintf "%s  %s[%s];%s\n" pad (array_name r.site)
             (expr_of_ref r) note);
        match deriv with
        | Some f -> (
            match f r with
            | Some d -> Buffer.add_string buf
                          (Printf.sprintf "%s  /* %s */\n" pad d)
            | None -> ())
        | None -> ())
      l.refs;
    List.iter (emit (indent + 1)) l.subs;
    Buffer.add_string buf (pad ^ "}\n")
  in
  List.iter (emit 1) t.loops;
  Buffer.add_string buf "  return 0;\n}\n";
  Buffer.contents buf

(* Executable emission: re-base every site's references to a zero-origin
   array sized to the touched span. *)
let to_c_exec t =
  let refs = all_refs t in
  (* per site: minimum and maximum address the expressions can produce *)
  let bounds = Hashtbl.create 16 in
  List.iter
    (fun (chain, r) ->
      let trip_of lid =
        match List.find_opt (fun (l : mloop) -> l.lid = lid) chain with
        | Some l -> max 1 l.trip
        | None -> 1
      in
      let lo, hi =
        List.fold_left
          (fun (lo, hi) (c, lid) ->
            let span = c * (trip_of lid - 1) in
            if c < 0 then (lo + span, hi) else (lo, hi + span))
          (r.const, r.const + r.width)
          r.terms
      in
      let lo', hi' =
        match Hashtbl.find_opt bounds r.site with
        | Some (a, b) -> (min a lo, max b hi)
        | None -> (lo, hi)
      in
      Hashtbl.replace bounds r.site (lo', hi'))
    refs;
  let base site = fst (Hashtbl.find bounds site) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "/* executable FORAY model (arrays re-based to 0) */\n";
  List.iter
    (fun site ->
      match Hashtbl.find_opt bounds site with
      | Some (lo, hi) ->
          Buffer.add_string buf
            (Printf.sprintf "char %s[%d];\n" (array_name site) (max 1 (hi - lo)))
      | None -> ())
    t.sites;
  Buffer.add_string buf "int main() {\n";
  let rec emit indent l =
    let pad = String.make (2 * indent) ' ' in
    Buffer.add_string buf
      (Printf.sprintf "%sfor (int i%d = 0; i%d < %d; i%d++) {\n" pad l.lid
         l.lid (max 1 l.trip) l.lid);
    List.iter
      (fun r ->
        let rebased = { r with const = r.const - base r.site } in
        Buffer.add_string buf
          (Printf.sprintf "%s  %s[%s];\n" pad (array_name r.site)
             (expr_of_ref rebased)))
      l.refs;
    List.iter (emit (indent + 1)) l.subs;
    Buffer.add_string buf (pad ^ "}\n")
  in
  List.iter (emit 1) t.loops;
  Buffer.add_string buf "  return 0;\n}\n";
  Buffer.contents buf
