type coeff = Unknown | Known of int

let next_uid = Atomic.make 1

(* Raw observation log used by the mergeable (sharded) representation:
   [depth + 1] ints per observation — the iterator vector, then the
   address — in a chain of Bigarray arena segments. Merging states
   concatenates logs; the Algorithm-3 fold replays them lazily (see
   [force]), so a merged state is bit-identical to the sequential
   walker's state on the same stream: every coefficient solve,
   misprediction and demotion happens in trace order, whatever the shard
   boundaries were.

   Why Bigarray segments instead of one growable int array: segment
   capacities are whole multiples of the observation stride, so merge is
   a pointer splice — O(segments), no byte copied — where the flat array
   re-blitted every log on every merge; and the buffers live outside the
   OCaml heap, so multi-million-event logs neither get scanned by the GC
   nor copied when a worker domain's results reach the merging domain. *)

module BA1 = Bigarray.Array1

type seg = {
  sbuf : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
  mutable slen : int; (* ints used; always a whole number of observations *)
}

(* Shared zero-capacity tail placeholder: never written, because the
   first append finds it full and installs a fresh segment. *)
let empty_seg = { sbuf = BA1.create Bigarray.int Bigarray.c_layout 0; slen = 0 }

type oblog = {
  mutable closed : seg list; (* filled segments, newest first *)
  mutable tail : seg; (* currently filling *)
  mutable nobs : int; (* observations across all segments *)
}

type t = {
  uid : int;
  site : int;
  depth : int;
  mutable const : int;
  coeffs : coeff array; (* index 0 = innermost iterator *)
  mutable m : int; (* iterators included in the (partial) expression *)
  prev_iters : int array; (* ITP *)
  mutable prev_addr : int; (* INDP *)
  s : bool array; (* sticky: unchanged during some misprediction *)
  mutable execs : int;
  mutable analyzable : bool;
  mutable mispredictions : int;
  log : oblog option; (* Some: mergeable mode; None: eager fold *)
  mutable folded : int; (* observations of [log] already folded (Algorithm 3) *)
}

let make ~log ~site ~depth =
  let uid = Atomic.fetch_and_add next_uid 1 in
  if Provenance.enabled () then Provenance.register ~uid ~site ~depth;
  {
    uid;
    site;
    depth;
    const = 0;
    coeffs = Array.make depth Unknown;
    m = depth;
    prev_iters = Array.make depth 0;
    prev_addr = 0;
    s = Array.make depth false;
    execs = 0;
    analyzable = true;
    mispredictions = 0;
    log = (if log then Some { closed = []; tail = empty_seg; nobs = 0 } else None);
    folded = 0;
  }

let create ~site ~depth = make ~log:false ~site ~depth
let create_logged ~site ~depth = make ~log:true ~site ~depth

let uid t = t.uid
let site t = t.site
let depth t = t.depth

let predict_raw t ~iters =
  let acc = ref t.const in
  for i = 0 to t.depth - 1 do
    match t.coeffs.(i) with
    | Known c -> acc := !acc + (c * iters.(i))
    | Unknown -> ()
  done;
  !acc

let finish t ~iters ~addr =
  Array.blit iters 0 t.prev_iters 0 t.depth;
  t.prev_addr <- addr;
  t.execs <- t.execs + 1

let fold_observe t ~iters ~addr =
  let prov = Provenance.enabled () in
  if not t.analyzable then finish t ~iters ~addr
  else if t.execs = 0 then begin
    (* Step 1 of Figure 8: first sighting. *)
    t.const <- addr;
    t.m <- t.depth;
    if prov then
      Provenance.record t.uid (Provenance.First_sighting { exec = 0; addr });
    finish t ~iters ~addr
  end
  else begin
    (* Step 2: iterators with unknown coefficients that changed. *)
    let h = ref 0 and k = ref (-1) in
    for i = 0 to t.depth - 1 do
      if t.coeffs.(i) = Unknown && iters.(i) <> t.prev_iters.(i) then begin
        incr h;
        k := i
      end
    done;
    if !h = 1 then begin
      (* Step 3: solve for the single newly-determined coefficient. *)
      let adj = ref 0 in
      for i = 0 to t.depth - 1 do
        match t.coeffs.(i) with
        | Known c when iters.(i) <> t.prev_iters.(i) ->
            adj := !adj + (c * (iters.(i) - t.prev_iters.(i)))
        | _ -> ()
      done;
      let num = addr - !adj - t.prev_addr in
      let den = iters.(!k) - t.prev_iters.(!k) in
      if num mod den <> 0 then begin
        t.analyzable <- false;
        if prov then
          Provenance.record t.uid
            (Provenance.Non_integer
               { exec = t.execs; iter = !k; d_addr = num; d_iter = den })
      end
      else begin
        t.coeffs.(!k) <- Known (num / den);
        (* Re-base the constant so the expression is consistent with the
           previous observation. Without this, a reference whose first
           execution happens at a nonzero iteration (e.g. the odd-phase arm
           of a switch) carries a systematic offset, mispredicts once, and
           Step 6 demotes it permanently. The paper's examples all start at
           iteration 0, where this is a no-op. *)
        let contrib = ref 0 in
        for i = 0 to t.depth - 1 do
          match t.coeffs.(i) with
          | Known c -> contrib := !contrib + (c * t.prev_iters.(i))
          | Unknown -> ()
        done;
        t.const <- t.prev_addr - !contrib;
        if prov then
          Provenance.record t.uid
            (Provenance.Coeff_solved
               { exec = t.execs; iter = !k; coeff = num / den; d_addr = num;
                 d_iter = den; const = t.const })
      end
    end
    else if !h > 1 then begin
      (* Step 4: several unknowns changed together; give up. *)
      t.analyzable <- false;
      if prov then begin
        let changed = ref [] in
        for i = t.depth - 1 downto 0 do
          if t.coeffs.(i) = Unknown && iters.(i) <> t.prev_iters.(i) then
            changed := i :: !changed
        done;
        Provenance.record t.uid
          (Provenance.Ambiguous { exec = t.execs; changed = !changed })
      end
    end;
    if t.analyzable then begin
      (* Step 5: predict; Step 6: re-base on misprediction. *)
      let indc = predict_raw t ~iters in
      if indc <> addr then begin
        t.mispredictions <- t.mispredictions + 1;
        for i = 0 to t.depth - 1 do
          if iters.(i) = t.prev_iters.(i) then t.s.(i) <- true
        done;
        t.const <- t.const + (addr - indc);
        (* m = largest index (1-based) with S=0, minus one; i.e. the count
           of iterators strictly inside the outermost always-changing one. *)
        let m = ref 0 in
        for i = 0 to t.depth - 1 do
          if not t.s.(i) then m := i
        done;
        t.m <- (if Array.exists not t.s then !m else 0);
        if prov then
          Provenance.record t.uid
            (Provenance.Mispredicted
               { exec = t.execs; predicted = indc; actual = addr;
                 sticky = Array.copy t.s; m = t.m; const = t.const })
      end
    end;
    finish t ~iters ~addr
  end

(* --- mergeable (log) mode --------------------------------------------- *)

let stride t = t.depth + 1

let log_append l t iters addr =
  let n = stride t in
  let tail = l.tail in
  if tail.slen + n > BA1.dim tail.sbuf then begin
    if tail.slen > 0 then l.closed <- tail :: l.closed;
    (* doubling growth, capped at 1M observations per segment; capacities
       are whole multiples of the stride so no observation ever spans two
       segments *)
    let obs_cap = min 1_048_576 (max 256 (2 * (BA1.dim tail.sbuf / n))) in
    l.tail <- { sbuf = BA1.create Bigarray.int Bigarray.c_layout (obs_cap * n);
                slen = 0 }
  end;
  let tail = l.tail in
  let base = tail.slen in
  (* in bounds: [base + n <= dim] established just above *)
  for i = 0 to t.depth - 1 do
    BA1.unsafe_set tail.sbuf (base + i) (Array.unsafe_get iters i)
  done;
  BA1.unsafe_set tail.sbuf (base + t.depth) addr;
  tail.slen <- base + n;
  l.nobs <- l.nobs + 1

(* Oldest first — trace order. *)
let segs_in_order l =
  List.rev (if l.tail.slen > 0 then l.tail :: l.closed else l.closed)

let force t =
  match t.log with
  | None -> ()
  | Some l ->
      if t.folded < l.nobs then begin
        let n = stride t in
        let d = t.depth in
        let iters = Array.make d 0 in
        let segs = Array.of_list (segs_in_order l) in
        let nsegs = Array.length segs in
        (* locate the segment holding the first pending observation *)
        let si = ref 0 and before = ref 0 in
        while
          !si < nsegs && !before + (segs.(!si).slen / n) <= t.folded
        do
          before := !before + (segs.(!si).slen / n);
          incr si
        done;
        let off = ref ((t.folded - !before) * n) in
        (* replay in trace order while the solver is still live *)
        while t.analyzable && !si < nsegs do
          let seg = segs.(!si) in
          let buf = seg.sbuf in
          while t.analyzable && !off < seg.slen do
            for i = 0 to d - 1 do
              iters.(i) <- BA1.unsafe_get buf (!off + i)
            done;
            fold_observe t ~iters ~addr:(BA1.unsafe_get buf (!off + d));
            t.folded <- t.folded + 1;
            off := !off + n
          done;
          if !off >= seg.slen then begin
            incr si;
            off := 0
          end
        done;
        (* A dead solver's fold is pure bookkeeping — [fold_observe] then
           only records prev_iters/prev_addr and counts the execution —
           so the remaining observations collapse to an exec count plus
           the last observation, skipping the per-entry replay. *)
        if t.folded < l.nobs then begin
          let last = segs.(nsegs - 1) in
          let base = last.slen - n in
          for i = 0 to d - 1 do
            iters.(i) <- BA1.unsafe_get last.sbuf (base + i)
          done;
          t.execs <- t.execs + (l.nobs - t.folded - 1);
          fold_observe t ~iters ~addr:(BA1.unsafe_get last.sbuf (base + d));
          t.folded <- l.nobs
        end
      end

let pending t = match t.log with None -> 0 | Some l -> l.nobs - t.folded

let observe t ~iters ~addr =
  if Array.length iters <> t.depth then
    invalid_arg "Affine.observe: iterator vector length mismatch";
  match t.log with
  | None -> fold_observe t ~iters ~addr
  | Some l -> log_append l t iters addr

let log_concat la lb =
  (* Pointer splice, O(segments): [lb]'s observations strictly follow
     [la]'s in trace order, and [closed] is newest-first, so [lb]'s
     segments go in front. Nothing is copied. [lb] is consumed. *)
  let b_segs = if lb.tail.slen > 0 then lb.tail :: lb.closed else lb.closed in
  let a_segs = if la.tail.slen > 0 then la.tail :: la.closed else la.closed in
  la.closed <- b_segs @ a_segs;
  la.tail <- empty_seg;
  la.nobs <- la.nobs + lb.nobs;
  lb.closed <- [];
  lb.tail <- empty_seg;
  lb.nobs <- 0

let merge a b =
  (match (a.log, b.log) with
  | Some _, Some _ -> ()
  | _ -> invalid_arg "Affine.merge: both states must be in log mode");
  if a.site <> b.site || a.depth <> b.depth then
    invalid_arg "Affine.merge: site/depth mismatch";
  let la = Option.get a.log and lb = Option.get b.log in
  (* Concatenate observation streams in shard order; the result is always
     [a], so callers may keep aliases to it. [a]'s folded prefix stays
     valid — [b]'s observations strictly follow it — whereas [b]'s own
     fold (if any) used the wrong prefix and is discarded with [b]. *)
  if lb.nobs > 0 then log_concat la lb;
  a

(* --- inspection (forces pending log entries first) --------------------- *)

let execs t = force t; t.execs
let analyzable t = force t; t.analyzable
let const t = force t; t.const
let coeffs t = force t; Array.copy t.coeffs
let m t = force t; t.m
let partial t = force t; t.m < t.depth
let mispredictions t = force t; t.mispredictions

let predict t ~iters = force t; predict_raw t ~iters

let included_terms t =
  force t;
  List.init t.m (fun i ->
      match t.coeffs.(i) with Known c -> c | Unknown -> 0)

let has_iterator t =
  analyzable t
  && List.exists (fun c -> c <> 0) (included_terms t)
