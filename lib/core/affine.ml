type coeff = Unknown | Known of int

let next_uid = Atomic.make 1

type t = {
  uid : int;
  site : int;
  depth : int;
  mutable const : int;
  coeffs : coeff array; (* index 0 = innermost iterator *)
  mutable m : int; (* iterators included in the (partial) expression *)
  prev_iters : int array; (* ITP *)
  mutable prev_addr : int; (* INDP *)
  s : bool array; (* sticky: unchanged during some misprediction *)
  mutable execs : int;
  mutable analyzable : bool;
  mutable mispredictions : int;
}

let create ~site ~depth =
  let uid = Atomic.fetch_and_add next_uid 1 in
  if Provenance.enabled () then Provenance.register ~uid ~site ~depth;
  {
    uid;
    site;
    depth;
    const = 0;
    coeffs = Array.make depth Unknown;
    m = depth;
    prev_iters = Array.make depth 0;
    prev_addr = 0;
    s = Array.make depth false;
    execs = 0;
    analyzable = true;
    mispredictions = 0;
  }

let uid t = t.uid
let site t = t.site
let depth t = t.depth
let execs t = t.execs
let analyzable t = t.analyzable
let const t = t.const
let coeffs t = Array.copy t.coeffs
let m t = t.m
let partial t = t.m < t.depth
let mispredictions t = t.mispredictions

let predict t ~iters =
  let acc = ref t.const in
  for i = 0 to t.depth - 1 do
    match t.coeffs.(i) with
    | Known c -> acc := !acc + (c * iters.(i))
    | Unknown -> ()
  done;
  !acc

let finish t ~iters ~addr =
  Array.blit iters 0 t.prev_iters 0 t.depth;
  t.prev_addr <- addr;
  t.execs <- t.execs + 1

let observe t ~iters ~addr =
  if Array.length iters <> t.depth then
    invalid_arg "Affine.observe: iterator vector length mismatch";
  let prov = Provenance.enabled () in
  if not t.analyzable then finish t ~iters ~addr
  else if t.execs = 0 then begin
    (* Step 1 of Figure 8: first sighting. *)
    t.const <- addr;
    t.m <- t.depth;
    if prov then
      Provenance.record t.uid (Provenance.First_sighting { exec = 0; addr });
    finish t ~iters ~addr
  end
  else begin
    (* Step 2: iterators with unknown coefficients that changed. *)
    let h = ref 0 and k = ref (-1) in
    for i = 0 to t.depth - 1 do
      if t.coeffs.(i) = Unknown && iters.(i) <> t.prev_iters.(i) then begin
        incr h;
        k := i
      end
    done;
    if !h = 1 then begin
      (* Step 3: solve for the single newly-determined coefficient. *)
      let adj = ref 0 in
      for i = 0 to t.depth - 1 do
        match t.coeffs.(i) with
        | Known c when iters.(i) <> t.prev_iters.(i) ->
            adj := !adj + (c * (iters.(i) - t.prev_iters.(i)))
        | _ -> ()
      done;
      let num = addr - !adj - t.prev_addr in
      let den = iters.(!k) - t.prev_iters.(!k) in
      if num mod den <> 0 then begin
        t.analyzable <- false;
        if prov then
          Provenance.record t.uid
            (Provenance.Non_integer
               { exec = t.execs; iter = !k; d_addr = num; d_iter = den })
      end
      else begin
        t.coeffs.(!k) <- Known (num / den);
        (* Re-base the constant so the expression is consistent with the
           previous observation. Without this, a reference whose first
           execution happens at a nonzero iteration (e.g. the odd-phase arm
           of a switch) carries a systematic offset, mispredicts once, and
           Step 6 demotes it permanently. The paper's examples all start at
           iteration 0, where this is a no-op. *)
        let contrib = ref 0 in
        for i = 0 to t.depth - 1 do
          match t.coeffs.(i) with
          | Known c -> contrib := !contrib + (c * t.prev_iters.(i))
          | Unknown -> ()
        done;
        t.const <- t.prev_addr - !contrib;
        if prov then
          Provenance.record t.uid
            (Provenance.Coeff_solved
               { exec = t.execs; iter = !k; coeff = num / den; d_addr = num;
                 d_iter = den; const = t.const })
      end
    end
    else if !h > 1 then begin
      (* Step 4: several unknowns changed together; give up. *)
      t.analyzable <- false;
      if prov then begin
        let changed = ref [] in
        for i = t.depth - 1 downto 0 do
          if t.coeffs.(i) = Unknown && iters.(i) <> t.prev_iters.(i) then
            changed := i :: !changed
        done;
        Provenance.record t.uid
          (Provenance.Ambiguous { exec = t.execs; changed = !changed })
      end
    end;
    if t.analyzable then begin
      (* Step 5: predict; Step 6: re-base on misprediction. *)
      let indc = predict t ~iters in
      if indc <> addr then begin
        t.mispredictions <- t.mispredictions + 1;
        for i = 0 to t.depth - 1 do
          if iters.(i) = t.prev_iters.(i) then t.s.(i) <- true
        done;
        t.const <- t.const + (addr - indc);
        (* m = largest index (1-based) with S=0, minus one; i.e. the count
           of iterators strictly inside the outermost always-changing one. *)
        let m = ref 0 in
        for i = 0 to t.depth - 1 do
          if not t.s.(i) then m := i
        done;
        t.m <- (if Array.exists not t.s then !m else 0);
        if prov then
          Provenance.record t.uid
            (Provenance.Mispredicted
               { exec = t.execs; predicted = indc; actual = addr;
                 sticky = Array.copy t.s; m = t.m; const = t.const })
      end
    end;
    finish t ~iters ~addr
  end

let included_terms t =
  List.init t.m (fun i ->
      match t.coeffs.(i) with Known c -> c | Unknown -> 0)

let has_iterator t =
  t.analyzable
  && List.exists (fun c -> c <> 0) (included_terms t)
