module Ast = Minic.Ast
module Interp = Minic_sim.Interp
module Event = Foray_trace.Event
module Tstats = Foray_trace.Tstats
module Annotate = Foray_instrument.Annotate
module Obs = Foray_obs.Obs
module Span = Foray_obs.Span

let t_simulate = Obs.timer "pipeline.simulate"
let t_analyze = Obs.timer "pipeline.analyze"

type result = {
  program : Ast.program;
  instrumented : Ast.program;
  tree : Looptree.t;
  model : Model.t;
  tstats : Tstats.t;
  sim : Interp.result;
  loop_kinds : (int * string) list;
  func_of_loop : int -> string option;
  thresholds : Filter.thresholds;
}

let loop_functions (prog : Ast.program) =
  List.concat_map
    (function
      | Ast.Gvar _ -> []
      | Ast.Gfunc f ->
          let acc = ref [] in
          let rec go st =
            if Ast.is_loop st then acc := (st.Ast.sid, f.fname) :: !acc;
            match st.Ast.s with
            | Ast.Sif (_, a, b) ->
                List.iter go a;
                List.iter go b
            | Ast.Sfor (_, _, _, b) | Ast.Swhile (_, b) | Ast.Sdo (b, _)
            | Ast.Sblock b ->
                List.iter go b
            | Ast.Sswitch (_, cases) ->
                List.iter
                  (fun (c : Ast.switch_case) -> List.iter go c.body)
                  cases
            | _ -> ()
          in
          List.iter go f.body;
          List.rev !acc)
    prog.Ast.globals

let finish ~thresholds ~program ~instrumented ~loop_kinds tree tstats sim =
  Looptree.flush_metrics tree;
  let model =
    Span.with_span ~cat:"pipeline" "pipeline.analyze" (fun () ->
        Obs.time t_analyze (fun () ->
            Model.of_tree ~thresholds ~loop_kinds tree))
  in
  let funcs = loop_functions program in
  {
    program;
    instrumented;
    tree;
    model;
    tstats;
    sim;
    loop_kinds;
    func_of_loop = (fun lid -> List.assoc_opt lid funcs);
    thresholds;
  }

let run ?(config = Interp.default_config) ?(thresholds = Filter.default) prog =
  Span.with_span ~cat:"pipeline" "pipeline.sema" (fun () ->
      Minic.Sema.check_exn prog);
  let instrumented, loop_kinds =
    Span.with_span ~cat:"pipeline" "pipeline.annotate" (fun () ->
        (Annotate.program prog, Annotate.loop_table prog))
  in
  let tree = Looptree.create () in
  let tstats = Tstats.create () in
  let sink = Event.tee (Looptree.sink tree) (Tstats.sink tstats) in
  let sim =
    Span.with_span ~cat:"pipeline" "pipeline.simulate" (fun () ->
        Obs.time t_simulate (fun () -> Interp.run ~config instrumented ~sink))
  in
  finish ~thresholds ~program:prog ~instrumented ~loop_kinds tree tstats sim

let run_source ?config ?thresholds src =
  let prog =
    Span.with_span ~cat:"pipeline" "pipeline.parse" (fun () ->
        Minic.Parser.program src)
  in
  run ?config ?thresholds prog

let run_offline ?(config = Interp.default_config)
    ?(thresholds = Filter.default) prog =
  Span.with_span ~cat:"pipeline" "pipeline.sema" (fun () ->
      Minic.Sema.check_exn prog);
  let instrumented, loop_kinds =
    Span.with_span ~cat:"pipeline" "pipeline.annotate" (fun () ->
        (Annotate.program prog, Annotate.loop_table prog))
  in
  let sim, trace =
    Span.with_span ~cat:"pipeline" "pipeline.simulate" (fun () ->
        Obs.time t_simulate (fun () -> Interp.run_to_trace ~config instrumented))
  in
  (* Replay the stored trace through the analyzers. *)
  let tree = Looptree.create () in
  let tstats = Tstats.create () in
  let sink = Event.tee (Looptree.sink tree) (Tstats.sink tstats) in
  Span.with_span ~cat:"pipeline" "pipeline.replay" (fun () ->
      List.iter sink trace);
  ( finish ~thresholds ~program:prog ~instrumented ~loop_kinds tree tstats sim,
    trace )

let hints r = Hints.duplication_hints ~func_of_loop:r.func_of_loop r.tree
