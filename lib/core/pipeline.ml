module Ast = Minic.Ast
module Interp = Minic_sim.Interp
module Event = Foray_trace.Event
module Tstats = Foray_trace.Tstats
module Tracefile = Foray_trace.Tracefile
module Annotate = Foray_instrument.Annotate
module Obs = Foray_obs.Obs
module Span = Foray_obs.Span

let t_simulate = Obs.timer "pipeline.simulate"
let t_analyze = Obs.timer "pipeline.analyze"
let t_shard_merge = Obs.timer "pipeline.shard_merge"
let m_shards = Obs.counter "pipeline.shards_analyzed"

type result = {
  program : Ast.program;
  instrumented : Ast.program;
  tree : Looptree.t;
  model : Model.t;
  tstats : Tstats.t;
  sim : Interp.result;
  loop_kinds : (int * string) list;
  func_of_loop : int -> string option;
  thresholds : Filter.thresholds;
}

type degradation =
  | Degraded_budget of {
      budget : string;
      limit : int;
      spent : int;
      events_seen : int;
    }
  | Degraded_corrupt of {
      offset : int;
      kind : string;
      salvaged : int;
      resyncs : int;
      bytes_skipped : int;
    }

let degradation_to_string = function
  | Degraded_budget { budget; limit; spent; events_seen } ->
      Printf.sprintf
        "degraded: budget %s exhausted (spent %d of %d); model covers the %d \
         access(es) seen"
        budget spent limit events_seen
  | Degraded_corrupt { offset; kind; salvaged; resyncs; bytes_skipped } ->
      Printf.sprintf
        "degraded: corrupt trace (first damage at byte %d: %s); salvaged %d \
         event(s) across %d resync(s), %d byte(s) skipped"
        offset kind salvaged resyncs bytes_skipped

let degradation_to_json = function
  | Degraded_budget { budget; limit; spent; events_seen } ->
      Printf.sprintf
        "{\"degraded\": \"budget\", \"budget\": \"%s\", \"limit\": %d, \
         \"spent\": %d, \"events_seen\": %d}"
        budget limit spent events_seen
  | Degraded_corrupt { offset; kind; salvaged; resyncs; bytes_skipped } ->
      Printf.sprintf
        "{\"degraded\": \"corrupt\", \"offset\": %d, \"kind\": \"%s\", \
         \"salvaged\": %d, \"resyncs\": %d, \"bytes_skipped\": %d}"
        offset (Error.json_escape kind) salvaged resyncs bytes_skipped

type outcome = { result : result; degraded : degradation list }

let loop_functions (prog : Ast.program) =
  List.concat_map
    (function
      | Ast.Gvar _ -> []
      | Ast.Gfunc f ->
          let acc = ref [] in
          let rec go st =
            if Ast.is_loop st then acc := (st.Ast.sid, f.fname) :: !acc;
            match st.Ast.s with
            | Ast.Sif (_, a, b) ->
                List.iter go a;
                List.iter go b
            | Ast.Sfor (_, _, _, b) | Ast.Swhile (_, b) | Ast.Sdo (b, _)
            | Ast.Sblock b ->
                List.iter go b
            | Ast.Sswitch (_, cases) ->
                List.iter
                  (fun (c : Ast.switch_case) -> List.iter go c.body)
                  cases
            | _ -> ()
          in
          List.iter go f.body;
          List.rev !acc)
    prog.Ast.globals

let finish ~thresholds ~program ~instrumented ~loop_kinds tree tstats sim =
  Looptree.flush_metrics tree;
  let model =
    Span.with_span ~cat:"pipeline" "pipeline.analyze" (fun () ->
        Obs.time t_analyze (fun () ->
            Model.of_tree ~thresholds ~loop_kinds tree))
  in
  (* One table lookup per query instead of a linear scan of the
     association list: hint generation calls [func_of_loop] for every
     loop in the tree. *)
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun (lid, fname) ->
      if not (Hashtbl.mem funcs lid) then Hashtbl.add funcs lid fname)
    (loop_functions program);
  {
    program;
    instrumented;
    tree;
    model;
    tstats;
    sim;
    loop_kinds;
    func_of_loop = (fun lid -> Hashtbl.find_opt funcs lid);
    thresholds;
  }

let sema_error errs =
  let msg =
    String.concat "; "
      (List.map (fun e -> Format.asprintf "%a" Minic.Sema.pp_error e) errs)
  in
  Error.Sema { msg }

let budget_degradations (sim : Interp.result) =
  match sim.Interp.stopped with
  | Interp.Completed -> []
  | Interp.Stopped { budget; limit; spent } ->
      [ Degraded_budget { budget; limit; spent; events_seen = sim.accesses } ]

let run ?(config = Interp.default_config) ?(thresholds = Filter.default) prog =
  match
    Span.with_span ~cat:"pipeline" "pipeline.sema" (fun () ->
        Minic.Sema.check prog)
  with
  | Error errs -> Error (sema_error errs)
  | Ok () -> (
      let instrumented, loop_kinds =
        Span.with_span ~cat:"pipeline" "pipeline.annotate" (fun () ->
            (Annotate.program prog, Annotate.loop_table prog))
      in
      let tree = Looptree.create () in
      let tstats = Tstats.create () in
      let sink = Event.tee (Looptree.sink tree) (Tstats.sink tstats) in
      match
        Span.with_span ~cat:"pipeline" "pipeline.simulate" (fun () ->
            Obs.time t_simulate (fun () -> Interp.run ~config instrumented ~sink))
      with
      | exception Interp.Runtime_error_at { msg; step } ->
          Error (Error.Runtime { loc = "simulate"; step; msg })
      | sim ->
          let result =
            finish ~thresholds ~program:prog ~instrumented ~loop_kinds tree
              tstats sim
          in
          Ok { result; degraded = budget_degradations sim })

let run_source ?config ?thresholds src =
  match
    Span.with_span ~cat:"pipeline" "pipeline.parse" (fun () ->
        Minic.Parser.program src)
  with
  | exception Minic.Parser.Error (msg, line) -> Error (Error.Parse { msg; line })
  | exception Minic.Lexer.Error (msg, line) -> Error (Error.Parse { msg; line })
  | prog -> run ?config ?thresholds prog

(* --- sharded trace analysis -------------------------------------------- *)

(* Shard results reduce tree-wise on the pool (log2 rounds of pairwise
   merges — and with arena logs each merge is a pointer splice, not a
   copy); Tstats are a few dozen scalars, so a left fold is free. *)
let merge_parts ~jobs parts =
  let tree, tstats =
    Span.with_span ~cat:"pipeline" "pipeline.shard_merge" (fun () ->
        Obs.time t_shard_merge (fun () ->
            let tree = Looptree.merge_all ~jobs (List.map fst parts) in
            let tstats =
              match List.map snd parts with
              | [] -> Tstats.create ()
              | first :: rest -> List.fold_left Tstats.merge first rest
            in
            (tree, tstats)))
  in
  Span.with_span ~cat:"pipeline" "pipeline.shard_finalize" (fun () ->
      Looptree.finalize ~jobs tree);
  (tree, tstats)

let analyze_shards ~shards:n ~jobs events =
  let cuts = Tracefile.shards ~n events in
  let parts =
    Foray_util.Parallel.map ~jobs
      (fun (s : Tracefile.shard) ->
        Span.with_span ~cat:"pipeline" "shard.analyze"
          ~args:
            [ ("shard", string_of_int s.s_index);
              ("events", string_of_int s.s_len) ]
        @@ fun () ->
        let tree = Looptree.create ~mergeable:true () in
        Looptree.restore_context tree s.s_context;
        let tstats = Tstats.create () in
        let sink = Event.tee (Looptree.sink tree) (Tstats.sink tstats) in
        for i = s.s_start to s.s_start + s.s_len - 1 do
          sink events.(i)
        done;
        (* The first shard is the true trace prefix, so its Algorithm-3
           folds are already on the sequential walker's path — run them
           now, overlapped with the other shards' walks, leaving that much
           less replay after the merge. Later shards must stay raw: their
           folds would start from the wrong prefix and be discarded. *)
        if s.s_index = 0 then Looptree.finalize tree;
        Obs.incr m_shards;
        (tree, tstats))
      cuts
  in
  merge_parts ~jobs parts

let analyze_events ?(shards = 1) ?jobs events =
  if shards <= 1 then begin
    let tree = Looptree.create () in
    let tstats = Tstats.create () in
    let sink = Event.tee (Looptree.sink tree) (Tstats.sink tstats) in
    Array.iter sink events;
    (tree, tstats)
  end
  else
    (* Never spawn more domains than the hardware offers: extra domains
       only add minor-GC synchronization, they cannot add parallelism. *)
    let jobs =
      match jobs with
      | Some j -> j
      | None -> min shards (Foray_util.Parallel.default_jobs ())
    in
    analyze_shards ~shards ~jobs events

(* Zero-copy variant: shard workers decode their mmap'd frame windows
   straight into the tree sinks — no [Event.event array] is ever built. *)
let analyze_mapped ?(shards = 1) ?jobs m =
  if shards <= 1 || Tracefile.mapped_events m = 0 then begin
    let tree = Looptree.create () in
    let tstats = Tstats.create () in
    Tracefile.iter_mapped m
      (Event.tee (Looptree.sink tree) (Tstats.sink tstats));
    (tree, tstats)
  end
  else begin
    let jobs =
      match jobs with
      | Some j -> j
      | None -> min shards (Foray_util.Parallel.default_jobs ())
    in
    let cuts = Tracefile.frame_shards ~n:shards m in
    let parts =
      Foray_util.Parallel.map ~jobs
        (fun (fs : Tracefile.fshard) ->
          Span.with_span ~cat:"pipeline" "shard.analyze"
            ~args:
              [ ("shard", string_of_int fs.fs_index);
                ("events", string_of_int fs.fs_events) ]
          @@ fun () ->
          let tree = Looptree.create ~mergeable:true () in
          Looptree.restore_context tree fs.fs_context;
          let tstats = Tstats.create () in
          let sink = Event.tee (Looptree.sink tree) (Tstats.sink tstats) in
          Tracefile.iter_fshard m fs sink;
          if fs.fs_index = 0 then Looptree.finalize tree;
          Obs.incr m_shards;
          (tree, tstats))
        cuts
    in
    merge_parts ~jobs parts
  end

(* Analyze a trace file end to end, picking the fastest correct path: a
   FORAYTR2 file goes through the mapped reader (and its frame-index
   sharder); anything else — or a v2 file whose frames turn out damaged —
   falls back to the salvaging event-array reader. The fallback rebuilds
   fresh trees, so events a failing mapped pass already delivered are
   never double-counted. *)
let analyze_trace ?(strict = false) ?(shards = 1) ?jobs path =
  let from_events () =
    match Tracefile.read_events ~strict path with
    | Error _ as e -> e
    | Ok (events, salvage) ->
        Ok (analyze_events ~shards ?jobs events, salvage)
  in
  if Tracefile.is_binary2 path then
    match
      let m = Tracefile.map path in
      (analyze_mapped ~shards ?jobs m, Tracefile.mapped_events m)
    with
    | r, n -> Ok (r, Tracefile.clean_salvage n)
    | exception Tracefile.Corrupt _ -> from_events ()
  else from_events ()

let run_offline ?(config = Interp.default_config)
    ?(thresholds = Filter.default) ?(shards = 1) ?jobs prog =
  match
    Span.with_span ~cat:"pipeline" "pipeline.sema" (fun () ->
        Minic.Sema.check prog)
  with
  | Error errs -> Error (sema_error errs)
  | Ok () -> (
      let instrumented, loop_kinds =
        Span.with_span ~cat:"pipeline" "pipeline.annotate" (fun () ->
            (Annotate.program prog, Annotate.loop_table prog))
      in
      match
        Span.with_span ~cat:"pipeline" "pipeline.simulate" (fun () ->
            Obs.time t_simulate (fun () ->
                Interp.run_to_trace ~config instrumented))
      with
      | exception Interp.Runtime_error_at { msg; step } ->
          Error (Error.Runtime { loc = "simulate"; step; msg })
      | sim, trace ->
          (* Replay the stored trace through the analyzers — sequentially,
             or sharded across a domain pool when [shards > 1]. *)
          let tree, tstats =
            Span.with_span ~cat:"pipeline" "pipeline.replay" (fun () ->
                if shards <= 1 then begin
                  let tree = Looptree.create () in
                  let tstats = Tstats.create () in
                  let sink =
                    Event.tee (Looptree.sink tree) (Tstats.sink tstats)
                  in
                  List.iter sink trace;
                  (tree, tstats)
                end
                else analyze_events ~shards ?jobs (Array.of_list trace))
          in
          let result =
            finish ~thresholds ~program:prog ~instrumented ~loop_kinds tree
              tstats sim
          in
          Ok ({ result; degraded = budget_degradations sim }, trace))

let hints r = Hints.duplication_hints ~func_of_loop:r.func_of_loop r.tree

(* Every config field that can change the extracted model is folded into
   the key; [deadline_ms] is deliberately left out because it is a
   wall-clock bound, not a model parameter — two runs that both complete
   under different deadlines produce identical models, and degraded
   (budget-stopped) results must never be cached anyway. *)
let model_key ?(config = Interp.default_config)
    ?(thresholds = Filter.default) src =
  let descr =
    Printf.sprintf
      "scalars=%b steps=%d events=%s seed=%d nexec=%d nloc=%d"
      config.Interp.trace_scalars config.Interp.max_steps
      (match config.Interp.max_trace_events with
      | Some n -> string_of_int n
      | None -> "-")
      config.Interp.rand_seed thresholds.Filter.nexec thresholds.Filter.nloc
  in
  Digest.to_hex (Digest.string src) ^ ":" ^ Digest.to_hex (Digest.string descr)
