(** The closed error taxonomy of the FORAY-GEN pipeline.

    Every way the flow can fail is one constructor of {!t}, with a stable
    machine-readable code, a process exit code, and both human-readable and
    JSON renderings. Downstream drivers (bench harness, batch scripts, a
    future daemon mode) triage failures by {!code} / {!exit_code} without
    parsing prose.

    The contract (documented in README "Exit and error codes"):

    {v
    code             exit  meaning
    E_PARSE            10  source could not be lexed/parsed
    E_SEMA             11  semantic checking rejected the program
    E_RUNTIME          12  simulation failed (division by zero, ...)
    E_TRACE_CORRUPT    13  trace file unusable / corrupt under --strict
    E_BUDGET           14  a resource budget was exhausted (strict mode)
    E_NOT_FOUND        15  program name is no benchmark, figure or file
    E_BAD_REQUEST      16  malformed daemon request (bad JSON, unknown op)
    v}

    Exit code 0 is success and 3 is "succeeded, but degraded" (partial
    model after salvage or a budget stop) — see {!Pipeline.degradation}. *)

type t =
  | Parse of { msg : string; line : int }  (** [line] 0 when unknown *)
  | Sema of { msg : string }
  | Runtime of { loc : string; step : int; msg : string }
      (** [loc] names the pipeline stage; [step] is the simulator statement
          count at failure, -1 when unknown. *)
  | Trace_corrupt of { offset : int; kind : string; events_salvaged : int }
      (** First unrecoverable corruption: byte [offset] into the file,
          [kind] of damage, and how many events decoded before it. *)
  | Budget_exceeded of { budget : string; limit : int; spent : int }
      (** [budget] is ["max_steps"], ["deadline_ms"] or
          ["max_trace_events"]. Only an error in strict mode; the default
          pipeline turns budget exhaustion into a degraded outcome. *)
  | Not_found_program of { name : string }
  | Bad_request of { msg : string }
      (** A [forayd] protocol violation: request not valid JSON, not an
          object, missing/mistyped fields, or an unknown [op]. Never
          produced by the batch pipeline itself. *)

(** Stable machine-readable code, e.g. ["E_PARSE"]. *)
val code : t -> string

(** Documented process exit code (see table above). *)
val exit_code : t -> int

(** One-line human-readable rendering. *)
val to_string : t -> string

(** One JSON object: [{"error": code, "exit": n, "message": ..., ...}]
    plus per-constructor detail fields. *)
val to_json : t -> string

(** Escape a string for embedding in a JSON string literal (shared by the
    other hand-rolled JSON emitters in this codebase). *)
val json_escape : string -> string

(** The taxonomy as an exception, for the [*_exn] compatibility wrappers.
    A printer is registered. *)
exception Error of t

(** [raise_error e] raises {!Error}. *)
val raise_error : t -> 'a

(** Map the exceptions legacy layers still throw ([Minic.Parser.Error],
    [Minic.Lexer.Error], sema [Failure], simulator runtime errors,
    [Foray_trace.Tracefile.Corrupt]) onto the taxonomy. [None] for
    exceptions that are none of ours (asserts, Stack_overflow, ...), which
    must keep propagating. *)
val of_exn : exn -> t option

(** [catch f] runs [f] and converts any exception {!of_exn} recognizes
    into [Error]; unrecognized exceptions propagate. *)
val catch : (unit -> 'a) -> ('a, t) result
