(** Algorithm 3: incremental identification of (partial) affine index
    expressions for one memory reference.

    A reference at loop nest level [n] is modelled as

    {v addr = CONST + C1*iter1 + C2*iter2 + ... + Cn*itern v}

    with [iter1] the innermost iterator. Coefficients start UNKNOWN and are
    solved one at a time: when exactly one unknown-coefficient iterator
    changed between two consecutive executions, the address delta determines
    that coefficient. Every execution the predicted address is checked; on a
    misprediction the constant term is re-based and the reference is demoted
    to a {e partial} affine expression

    {v addr = const(iter_{m+1}..iter_n) + C1*iter1 + ... + Cm*iterm v}

    over the innermost [m] iterators, where [m] is derived from the sticky
    set of iterators that were ever unchanged during a misprediction
    (Step 6 of the paper's Figure 8). References where several unknown
    coefficients change at once are marked non-analyzable (Step 4 of
    Figure 8).

    Divergence from the paper: when the coefficient equation has no exact
    integer solution the reference is marked non-analyzable immediately
    (the paper's pseudocode would store a truncated quotient and rely on
    later mispredictions); this is strictly more conservative. *)

type coeff = Unknown | Known of int

type t

(** [create ~site ~depth] starts tracking a reference with [depth] enclosing
    loops ([depth] may be 0; such references can never be affine in an
    iterator and are filtered later). Observations fold through Algorithm 3
    eagerly — the historical representation, nothing extra allocated. *)
val create : site:int -> depth:int -> t

(** [create_logged ~site ~depth] is the {e mergeable} representation used
    by sharded trace analysis: observations are recorded as a raw
    [(iters, addr)] log and the Algorithm-3 fold is deferred until the
    state is first inspected (or {!force}d). Logged states form a monoid
    under {!merge} with a fresh state as identity, and the deferred fold
    guarantees the merged state is {e bit-identical} to the sequential
    walker's: demoted coefficients cannot be resurrected by merge order
    because merge never reconciles two folded states — it concatenates
    their observation streams and replays Algorithm 3, demotions included,
    in trace order. *)
val create_logged : site:int -> depth:int -> t

(** {1 Merging (sharded analysis)} *)

(** [merge a b] combines two logged states of the same reference, where
    [b] observed the trace segment {e following} [a]'s. The result is
    always [a] (its log absorbs [b]'s; [b] is consumed and must not be
    used again). Associative; a state with no observations is an
    identity.
    @raise Invalid_argument if either state is not in log mode or the
    site/depth disagree. *)
val merge : t -> t -> t

(** [force t] folds any observations still pending in the log through
    Algorithm 3. Idempotent; a no-op for eager-mode states. Every
    inspection function below forces implicitly, so calling this is only
    useful to choose {e when} the fold happens (e.g. in parallel across
    references, see {!Looptree.finalize}). *)
val force : t -> unit

(** Number of logged observations not yet folded (0 in eager mode). *)
val pending : t -> int

(** [observe t ~iters ~addr] folds one execution. [iters.(0)] is the
    innermost loop's current iteration count; the array length must equal
    [depth]. Safe to call after the reference became non-analyzable (only
    statistics are updated then). *)
val observe : t -> iters:int array -> addr:int -> unit

(** {1 Inspection} *)

val site : t -> int
val depth : t -> int

(** Process-unique tracker id, assigned at {!create}; the key of this
    reference's {!Provenance} story. *)
val uid : t -> int

(** Number of executions observed. *)
val execs : t -> int

(** False once the reference was marked non-analyzable. *)
val analyzable : t -> bool

(** Current constant term (the last re-based value). *)
val const : t -> int

(** Coefficients [C1..Cn], innermost first. *)
val coeffs : t -> coeff array

(** Number [m] of innermost iterators covered by the (partial) affine
    expression; equals [depth] when the expression is full. *)
val m : t -> int

(** True when [m < depth] (at least one misprediction demoted it). *)
val partial : t -> bool

(** Mispredictions seen (0 for exactly-affine references). *)
val mispredictions : t -> int

(** The coefficients of the included iterators (innermost first): for
    [i < m], [Known c] entries; [Unknown] coefficients inside the window
    are reported as 0 (their iterator never changed, so any value fits). *)
val included_terms : t -> int list

(** [has_iterator t] is true when the (partial) expression includes at
    least one iterator with a nonzero coefficient — the first condition of
    the Step 4 purge. *)
val has_iterator : t -> bool

(** [predict t ~iters] evaluates the current expression (for testing). *)
val predict : t -> iters:int array -> int
