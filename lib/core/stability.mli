(** Input-dependence of FORAY models — the paper's stated future work
    ("study the interdependency of the FORAY models on the input data set
    used for profiling").

    A FORAY model is extracted from one profiling run; a reference is only
    trustworthy for optimization if its affine shape survives across
    inputs. This module extracts models under several inputs (here: seeds
    of the simulator's [mc_rand] builtin, the only input source of the
    workloads) and classifies each reference:

    - {e stable}: present in every model with identical coefficients and
      trip counts — safe for static SPM placement;
    - {e coefficient-stable}: same coefficients, different trip counts —
      buffers are safe, sizes need the worst case;
    - {e input-dependent}: present in only some models or with different
      coefficients — needs guarding. *)

type classification = Stable | Trip_varies | Input_dependent

type ref_stability = {
  site : int;
  path : int list;
  classification : classification;
  seen_in : int;  (** number of runs whose model contains this reference *)
}

type report = {
  runs : int;
  refs : ref_stability list;
  stable : int;
  trip_varies : int;
  input_dependent : int;
}

(** [study ?thresholds ?jobs ~seeds prog] extracts one model per seed and
    compares them. At least two seeds required. [jobs] (default 1) runs
    the per-seed profiling pipelines on a {!Foray_util.Parallel} pool; the
    report does not depend on [jobs]. *)
val study :
  ?thresholds:Filter.thresholds ->
  ?jobs:int ->
  seeds:int list ->
  Minic.Ast.program ->
  report

val to_string : report -> string
