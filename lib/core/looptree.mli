(** Algorithm 2: reconstruction of the dynamic loop/reference structure of a
    program from its profile trace.

    The structure is a tree of loop nodes under a synthetic root. A node is
    identified by its loop id {e and} its position: the same static loop
    reached through two different dynamic contexts (e.g. a function called
    from two different loops) yields two distinct nodes — this is how
    functions "appear to be inlined" in the FORAY model and where the
    inter-function duplication hints come from (§4 of the paper).

    Each loop node maintains its current iteration counter; each memory
    reference observed while a node is current is attached to that node and
    fed, together with the current iterator vector of the enclosing nodes
    (innermost first), to its {!Affine} solver. The walker is a trace
    {e sink}, so analysis runs online during simulation: no trace is stored
    and space is proportional to the tree, not the trace (§4). *)

type node = {
  uid : int;  (** unique node stamp; 0 for the root *)
  lid : int;  (** loop id; 0 for the root *)
  depth : int;  (** 0 for the root *)
  parent : node option;
  mutable children : node list;  (** in first-encountered order *)
  mutable refs : refinfo list;  (** references attached to this node *)
  mutable iter : int;  (** current iteration counter *)
  mutable entries : int;  (** times this loop was entered *)
  mutable trip_min : int;
  mutable trip_max : int;
  mutable trip_total : int;
}

and refinfo = {
  aff : Affine.t;
  mutable footprint : Foray_util.Iset.t;  (** distinct bytes touched *)
  mutable starts : Foray_util.Iset.t;  (** distinct start addresses *)
  mutable reads : int;
  mutable writes : int;
  mutable sys : bool;
  mutable width_max : int;
}

type t

(** A fresh walker. *)
val create : unit -> t

(** The event sink implementing Algorithm 2 (plus Algorithm 3 per access).
    Robust to missing [body_exit]/[loop_exit] checkpoints from [break],
    [continue] or [return]: any checkpoint for a loop below the current
    position pops abandoned nodes. *)
val sink : t -> Foray_trace.Event.sink

(** The root node (inspect after the trace has been consumed). *)
val root : t -> node

(** All loop nodes, pre-order. *)
val nodes : t -> node list

(** All references across nodes, each with its owning node. *)
val refs : t -> (node * refinfo) list

(** The loop-id path from the root (exclusive) down to a node. *)
val path : node -> int list

(** Number of loop nodes (excluding the root). *)
val n_nodes : t -> int

(** Deepest nesting level seen (0 for an empty tree). *)
val max_depth : t -> int

(** Checkpoints whose loop id matched no live node — a body or exit for a
    loop the walker never saw entered. A well-formed instrumented trace
    has zero; nonzero means the producer lost or reordered checkpoint
    events. *)
val mismatches : t -> int

(** Publish this tree's shape into the {!Foray_obs.Obs} registry
    ([looptree.nodes], [looptree.max_depth] gauges via max-merge, and the
    [looptree.checkpoint_mismatches] counter). No-op while collection is
    disabled. *)
val flush_metrics : t -> unit
