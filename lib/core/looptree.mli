(** Algorithm 2: reconstruction of the dynamic loop/reference structure of a
    program from its profile trace.

    The structure is a tree of loop nodes under a synthetic root. A node is
    identified by its loop id {e and} its position: the same static loop
    reached through two different dynamic contexts (e.g. a function called
    from two different loops) yields two distinct nodes — this is how
    functions "appear to be inlined" in the FORAY model and where the
    inter-function duplication hints come from (§4 of the paper).

    Each loop node maintains its current iteration counter; each memory
    reference observed while a node is current is attached to that node and
    fed, together with the current iterator vector of the enclosing nodes
    (innermost first), to its {!Affine} solver. The walker is a trace
    {e sink}, so analysis runs online during simulation: no trace is stored
    and space is proportional to the tree, not the trace (§4). *)

type node = {
  mutable uid : int;  (** unique node stamp; 0 for the root *)
  lid : int;  (** loop id; 0 for the root *)
  depth : int;  (** 0 for the root *)
  mutable parent : node option;
  mutable children : node list;  (** in first-encountered order *)
  mutable refs : refinfo list;  (** references attached to this node *)
  mutable iter : int;  (** current iteration counter *)
  mutable entries : int;  (** times this loop was entered *)
  mutable trip_min : int;
  mutable trip_max : int;
  mutable trip_total : int;
}

and refinfo = {
  aff : Affine.t;
  mutable footprint : Foray_util.Iset.t;  (** distinct bytes touched *)
  mutable starts : Foray_util.Iset.t;  (** distinct start addresses *)
  mutable reads : int;
  mutable writes : int;
  mutable sys : bool;
  mutable width_max : int;
}

type t

(** A fresh walker. With [~mergeable:true] the tree participates in
    sharded analysis: references use {!Affine.create_logged} (so their
    Algorithm-3 fold is deferred and mergeable) and the tree supports
    {!restore_context} and {!merge}. Default [false]: the historical
    eager single-pass walker. *)
val create : ?mergeable:bool -> unit -> t

(** Whether this tree was created with [~mergeable:true]. *)
val mergeable : t -> bool

(** The event sink implementing Algorithm 2 (plus Algorithm 3 per access).
    Robust to missing [body_exit]/[loop_exit] checkpoints from [break],
    [continue] or [return]: any checkpoint for a loop below the current
    position pops abandoned nodes. *)
val sink : t -> Foray_trace.Event.sink

(** The root node (inspect after the trace has been consumed). *)
val root : t -> node

(** All loop nodes, pre-order. *)
val nodes : t -> node list

(** All references across nodes, each with its owning node. *)
val refs : t -> (node * refinfo) list

(** The loop-id path from the root (exclusive) down to a node. *)
val path : node -> int list

(** Number of loop nodes (excluding the root). *)
val n_nodes : t -> int

(** Deepest nesting level seen (0 for an empty tree). *)
val max_depth : t -> int

(** Checkpoints whose loop id matched no live node — a body or exit for a
    loop the walker never saw entered. A well-formed instrumented trace
    has zero; nonzero means the producer lost or reordered checkpoint
    events. *)
val mismatches : t -> int

(** {1 Sharded analysis}

    A stored trace can be cut at any checkpoint into context-complete
    shards ({!Foray_trace.Tracefile.shards}); each shard is walked by its
    own mergeable tree whose starting stack is rebuilt with
    {!restore_context}, and the per-shard trees are folded with {!merge}.
    Because mergeable references log raw observations instead of folding
    them, the merged tree replays every Algorithm-3 fold in trace order
    ({!finalize}) and is therefore {e bit-identical} to the sequential
    walker's result, whatever the shard boundaries were. *)

(** [restore_context t ctx] puts a fresh mergeable walker on the loop
    stack described by [ctx] — [(lid, iter)] pairs, outermost first, as
    produced by {!Foray_trace.Tracefile.shards}. The stack nodes are
    created with [entries = 0] (the [Loop_enter] that opened them belongs
    to an earlier shard) and their iteration counters restored, so the
    walker behaves exactly like the sequential walker resumed at the cut.
    @raise Invalid_argument if [t] is not mergeable or already walked. *)
val restore_context : t -> (int * int) list -> unit

(** [merge a b] folds shard [b]'s tree into shard [a]'s, where [b] walked
    the trace segment {e following} [a]'s. Nodes are unified by their
    loop-id path from the root: entries, trip totals and mismatches are
    summed, trip bounds widened, per-site references merged
    ({!Affine.merge} for the solver state; footprints and start sets
    unioned, read/write counters summed) and nodes or references only one
    side saw are adopted, preserving first-encounter order. Returns [a];
    both arguments are consumed ([b] entirely, and [a]'s walker state is
    dropped — feeding more events into either raises). Associative, with
    a fresh mergeable tree as identity.
    @raise Invalid_argument unless both trees are mergeable. *)
val merge : t -> t -> t

(** [merge_all ~jobs ts] reduces shard trees (in shard order) to one tree
    by merging adjacent pairs concurrently on the domain pool — a
    log2-depth reduction with the same result as a left fold of {!merge}
    (which is associative). Every input tree is consumed; an empty list
    yields a fresh mergeable tree. *)
val merge_all : ?jobs:int -> t list -> t

(** [finalize ~jobs t] forces the deferred Algorithm-3 folds of every
    reference in the tree, [jobs] at a time on a domain pool (references
    are partitioned, so each solver state stays single-domain). Implicit
    forcing on first inspection makes this optional — calling it merely
    decides {e when} (and with how much parallelism) the replay happens.
    Safe on eager trees (no-op). *)
val finalize : ?jobs:int -> t -> unit

(** Publish this tree's shape into the {!Foray_obs.Obs} registry
    ([looptree.nodes], [looptree.max_depth] gauges via max-merge, and the
    [looptree.checkpoint_mismatches] counter). No-op while collection is
    disabled. *)
val flush_metrics : t -> unit
