(** The end-to-end FORAY-GEN flow (Algorithm 1).

    [Source -> parse -> sema -> annotate (Step 1) -> simulate (Step 2,
    online analysis = Steps 3.1/3.2) -> purge (Step 4) -> FORAY model],
    with trace statistics collected on the side for Table III.

    The flow is {e total}: {!run}, {!run_source} and {!run_offline} return
    every failure as a typed {!Error.t} and every recoverable shortfall as
    a {!degradation} attached to a still-useful partial result — mirroring
    the paper's own tolerance of partial affine forms. Budget exhaustion
    in the simulator ({!Minic_sim.Interp.config} [max_steps],
    [deadline_ms], [max_trace_events]) stops simulation cleanly and the
    analyzers finish on the events seen so far.

    The analysis consumes the simulator's event stream directly (online
    mode); {!run_offline} instead materializes the trace and replays it,
    which the tests use to show both modes agree. *)

type result = {
  program : Minic.Ast.program;  (** the pristine parse *)
  instrumented : Minic.Ast.program;
  tree : Looptree.t;
  model : Model.t;
  tstats : Foray_trace.Tstats.t;  (** per-site totals over the whole trace *)
  sim : Minic_sim.Interp.result;
  loop_kinds : (int * string) list;  (** loop id -> for/while/do *)
  func_of_loop : int -> string option;
  thresholds : Filter.thresholds;
}

(** Ways a successful run can be less than complete. The model is still
    valid over the events that were seen; these records say what was
    missed and how much. *)
type degradation =
  | Degraded_budget of {
      budget : string;  (** "max_steps" | "deadline_ms" | "max_trace_events" *)
      limit : int;
      spent : int;
      events_seen : int;  (** accesses the analyzers did consume *)
    }
  | Degraded_corrupt of {
      offset : int;  (** byte offset of the first corrupt region *)
      kind : string;
      salvaged : int;  (** events recovered and analyzed *)
      resyncs : int;
      bytes_skipped : int;
    }

val degradation_to_string : degradation -> string

(** JSON object mirroring {!degradation_to_string}. *)
val degradation_to_json : degradation -> string

type outcome = { result : result; degraded : degradation list }

(** [run ?config ?thresholds prog] executes the full flow on a parsed
    program. Total: semantic and runtime failures come back as
    [Error]; budget exhaustion yields [Ok] with [Degraded_budget]. *)
val run :
  ?config:Minic_sim.Interp.config ->
  ?thresholds:Filter.thresholds ->
  Minic.Ast.program ->
  (outcome, Error.t) Stdlib.result

(** [run_source ?config ?thresholds src] parses and runs; lexer and parser
    failures become [Error (Parse _)]. *)
val run_source :
  ?config:Minic_sim.Interp.config ->
  ?thresholds:Filter.thresholds ->
  string ->
  (outcome, Error.t) Stdlib.result

(** Offline variant: simulate to a stored trace, then analyze the trace.
    Returns the outcome and the trace. *)
val run_offline :
  ?config:Minic_sim.Interp.config ->
  ?thresholds:Filter.thresholds ->
  Minic.Ast.program ->
  (outcome * Foray_trace.Event.event list, Error.t) Stdlib.result

(** {1 Compatibility wrappers}

    Kept for one release so downstream code can migrate to the typed API
    at its own pace; they raise {!Error.Error} where the typed API returns
    [Error], and silently discard degradation records. New code should
    call {!run} / {!run_source} / {!run_offline}. *)

val run_exn :
  ?config:Minic_sim.Interp.config ->
  ?thresholds:Filter.thresholds ->
  Minic.Ast.program ->
  result

val run_source_exn :
  ?config:Minic_sim.Interp.config ->
  ?thresholds:Filter.thresholds ->
  string ->
  result

val run_offline_exn :
  ?config:Minic_sim.Interp.config ->
  ?thresholds:Filter.thresholds ->
  Minic.Ast.program ->
  result * Foray_trace.Event.event list

(** Duplication hints for the analyzed program (Figure 9). *)
val hints : result -> Hints.hint list

(** Map each loop id to the name of the function containing it. *)
val loop_functions : Minic.Ast.program -> (int * string) list
