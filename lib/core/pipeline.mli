(** The end-to-end FORAY-GEN flow (Algorithm 1).

    [Source -> parse -> sema -> annotate (Step 1) -> simulate (Step 2,
    online analysis = Steps 3.1/3.2) -> purge (Step 4) -> FORAY model],
    with trace statistics collected on the side for Table III.

    The flow is {e total}: {!run}, {!run_source} and {!run_offline} return
    every failure as a typed {!Error.t} and every recoverable shortfall as
    a {!degradation} attached to a still-useful partial result — mirroring
    the paper's own tolerance of partial affine forms. Budget exhaustion
    in the simulator ({!Minic_sim.Interp.config} [max_steps],
    [deadline_ms], [max_trace_events]) stops simulation cleanly and the
    analyzers finish on the events seen so far.

    The analysis consumes the simulator's event stream directly (online
    mode); {!run_offline} instead materializes the trace and replays it,
    which the tests use to show both modes agree. *)

type result = {
  program : Minic.Ast.program;  (** the pristine parse *)
  instrumented : Minic.Ast.program;
  tree : Looptree.t;
  model : Model.t;
  tstats : Foray_trace.Tstats.t;  (** per-site totals over the whole trace *)
  sim : Minic_sim.Interp.result;
  loop_kinds : (int * string) list;  (** loop id -> for/while/do *)
  func_of_loop : int -> string option;
  thresholds : Filter.thresholds;
}

(** Ways a successful run can be less than complete. The model is still
    valid over the events that were seen; these records say what was
    missed and how much. *)
type degradation =
  | Degraded_budget of {
      budget : string;  (** "max_steps" | "deadline_ms" | "max_trace_events" *)
      limit : int;
      spent : int;
      events_seen : int;  (** accesses the analyzers did consume *)
    }
  | Degraded_corrupt of {
      offset : int;  (** byte offset of the first corrupt region *)
      kind : string;
      salvaged : int;  (** events recovered and analyzed *)
      resyncs : int;
      bytes_skipped : int;
    }

val degradation_to_string : degradation -> string

(** JSON object mirroring {!degradation_to_string}. *)
val degradation_to_json : degradation -> string

type outcome = { result : result; degraded : degradation list }

(** [run ?config ?thresholds prog] executes the full flow on a parsed
    program. Total: semantic and runtime failures come back as
    [Error]; budget exhaustion yields [Ok] with [Degraded_budget]. *)
val run :
  ?config:Minic_sim.Interp.config ->
  ?thresholds:Filter.thresholds ->
  Minic.Ast.program ->
  (outcome, Error.t) Stdlib.result

(** [run_source ?config ?thresholds src] parses and runs; lexer and parser
    failures become [Error (Parse _)]. *)
val run_source :
  ?config:Minic_sim.Interp.config ->
  ?thresholds:Filter.thresholds ->
  string ->
  (outcome, Error.t) Stdlib.result

(** Offline variant: simulate to a stored trace, then analyze the trace —
    sequentially by default, or cut into [shards] checkpoint-aligned
    shards analyzed on [jobs] domains ([jobs] defaults to [shards] capped at the domain count) and
    merged; see {!analyze_events}. Returns the outcome and the trace. *)
val run_offline :
  ?config:Minic_sim.Interp.config ->
  ?thresholds:Filter.thresholds ->
  ?shards:int ->
  ?jobs:int ->
  Minic.Ast.program ->
  (outcome * Foray_trace.Event.event list, Error.t) Stdlib.result

(** {1 Sharded trace analysis}

    [analyze_events ~shards ~jobs events] runs Algorithms 2–3 and the
    trace statistics over a stored event stream. With [shards <= 1]
    (default) this is the plain sequential walk. With [shards = n > 1]
    the stream is cut by {!Foray_trace.Tracefile.shards} into at most [n]
    context-complete chunks, each analyzed by its own mergeable walker on
    a [jobs]-wide domain pool (default: [shards] capped at the available domain count), and the per-shard
    states folded with [Looptree.merge] / [Tstats.merge]; the deferred
    Algorithm-3 folds are then replayed in trace order
    ([Looptree.finalize]), which makes the result {e bit-identical} to the
    sequential walk — the differential suite in [test/test_shard.ml]
    checks exactly this. Per-shard work is traced under [shard.analyze]
    spans; merging under the [pipeline.shard_merge] timer and the
    [pipeline.shards_analyzed] counter. *)
val analyze_events :
  ?shards:int ->
  ?jobs:int ->
  Foray_trace.Event.event array ->
  Looptree.t * Foray_trace.Tstats.t

(** [analyze_mapped ~shards ~jobs m] is {!analyze_events} for a mapped
    FORAYTR2 file: shard cut points come from the frame index
    ({!Foray_trace.Tracefile.frame_shards}) and each worker decodes its
    mmap'd frame window directly into its walker — no event array is ever
    materialized. Bit-identical to the sequential walk, like
    {!analyze_events}.
    @raise Foray_trace.Tracefile.Corrupt if a frame body is damaged. *)
val analyze_mapped :
  ?shards:int ->
  ?jobs:int ->
  Foray_trace.Tracefile.mapped ->
  Looptree.t * Foray_trace.Tstats.t

(** [analyze_trace ?strict ?shards ?jobs path] analyzes a trace file end
    to end by the fastest correct path: FORAYTR2 files go through
    {!analyze_mapped} (clean salvage on success); other formats — and v2
    files whose frames turn out damaged — go through the salvaging
    event-array reader and {!analyze_events}, rebuilding fresh state so
    nothing is double-counted. Never raises: salvage statistics or (under
    [~strict]) the first corruption come back as values. *)
val analyze_trace :
  ?strict:bool ->
  ?shards:int ->
  ?jobs:int ->
  string ->
  ( (Looptree.t * Foray_trace.Tstats.t) * Foray_trace.Tracefile.salvage,
    Foray_trace.Tracefile.corruption )
  Stdlib.result

(** Duplication hints for the analyzed program (Figure 9). *)
val hints : result -> Hints.hint list

(** [model_key ?config ?thresholds src] is a stable cache key over
    [(source digest, analysis config)]: equal keys guarantee {!run_source}
    produces byte-identical models. Every model-determining config field
    participates ([trace_scalars], [max_steps], [max_trace_events],
    [rand_seed], the Step-4 thresholds); [deadline_ms] does not, because a
    wall-clock bound never changes a run that completes — callers caching
    by this key must simply refuse to cache degraded outcomes. The daemon
    ([Foray_serve]) keys its model cache with exactly this. *)
val model_key :
  ?config:Minic_sim.Interp.config ->
  ?thresholds:Filter.thresholds ->
  string ->
  string

(** Map each loop id to the name of the function containing it. *)
val loop_functions : Minic.Ast.program -> (int * string) list
