(** Inference provenance: the recorded lifecycle of every {!Affine.t}.

    Algorithm 3 reaches its verdict about a memory reference through a
    sequence of irreversible steps — a first sighting fixes the constant,
    each single-iterator change solves one coefficient, a misprediction
    grows the sticky set and demotes the expression to a partial rank, a
    simultaneous multi-iterator change (or a non-integer coefficient
    equation) marks it non-analyzable, and Step 4 finally purges it for
    one of three reasons. The paper's Figure 4 walkthrough narrates this
    by hand for one reference; this module records it for all of them, so
    [foraygen explain] can answer "why did reference X end up like this?"

    Recording follows the {!Obs} zero-cost discipline: while
    {!enabled} is [false] (the default) nothing is allocated or stored —
    {!Affine.observe} pays one atomic load per call. Each tracked
    reference is keyed by its {!Affine.uid}; the registry is
    mutex-protected, so {!Foray_util.Parallel} workers may run pipelines
    concurrently. *)

(** {1 Enabling} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** Forget every recorded story. *)
val reset : unit -> unit

(** {1 Events} *)

(** Why Step 4 dropped a reference (tested in this order). *)
type purge_reason =
  | Unanalyzable  (** marked non-analyzable during inference *)
  | No_iterator  (** no included iterator with a nonzero coefficient *)
  | Below_nexec  (** executed fewer than [Nexec] times *)
  | Below_nloc  (** touched fewer than [Nloc] distinct locations *)

(** One lifecycle step. [exec] is the 0-based index of the execution that
    triggered the event; iterator indices are 0-based, innermost first
    (iterator [i] is the paper's [iter_{i+1}]). *)
type event =
  | First_sighting of { exec : int; addr : int }
      (** Step 1: the constant term is initialized to the first address. *)
  | Coeff_solved of {
      exec : int;
      iter : int;  (** the single unknown-coefficient iterator that moved *)
      coeff : int;  (** the solved coefficient *)
      d_addr : int;  (** address delta attributed to this iterator *)
      d_iter : int;  (** iterator delta that produced it *)
      const : int;  (** constant term after re-basing *)
    }  (** Step 3: [coeff = d_addr / d_iter]. *)
  | Non_integer of { exec : int; iter : int; d_addr : int; d_iter : int }
      (** The coefficient equation had no integer solution; the reference
          is marked non-analyzable (divergence noted in {!Affine}). *)
  | Ambiguous of { exec : int; changed : int list }
      (** Fig. 8 Step 4: several unknown-coefficient iterators changed at
          once; the reference is marked non-analyzable. *)
  | Mispredicted of {
      exec : int;
      predicted : int;
      actual : int;
      sticky : bool array;  (** snapshot of the sticky set after update *)
      m : int;  (** rank after demotion *)
      const : int;  (** constant term after re-basing *)
    }  (** Steps 5–6: wrong prediction, demotion to a partial rank. *)
  | Verdict of { kept : bool; reason : purge_reason option }
      (** Step 4 of Algorithm 1: the filter decision. Recording a second
          verdict replaces the first (re-filtering the same tree). *)

(** {1 Recording} (no-ops while disabled) *)

(** [register ~uid ~site ~depth] opens a story for a tracked reference. *)
val register : uid:int -> site:int -> depth:int -> unit

(** [record uid e] appends [e] to the story of [uid]. Unknown [uid]s are
    ignored (their reference was created while recording was off). *)
val record : int -> event -> unit

(** {1 Inspection} *)

type story = {
  site : int;
  depth : int;
  events : event list;  (** in recording order *)
}

(** The story of one reference, if it was registered. *)
val story : int -> story option

(** All stories, sorted by registration order (uid). *)
val stories : unit -> (int * story) list

(** {1 Replay}

    Re-deriving the inference outcome from the recorded events alone; the
    property tests check this against the live {!Affine.t}. *)

type replayed = {
  r_coeffs : int option array;  (** [Some c] per solved coefficient *)
  r_m : int;  (** rank *)
  r_const : int option;  (** [None] before the first sighting *)
  r_analyzable : bool;
}

(** [replay ~depth events] folds the events of one story. *)
val replay : depth:int -> event list -> replayed

(** {1 Rendering} *)

(** Machine-friendly event tag, e.g. ["coeff_solved"]. *)
val event_label : event -> string

(** The triggering execution index, when the event has one. *)
val event_exec : event -> int option

(** One human-readable line per event (no trailing newline). *)
val event_to_string : event -> string

val reason_to_string : purge_reason -> string

(** All purge reasons, in test order (for summary tables). *)
val all_reasons : purge_reason list
