(* Stories are keyed by Affine uid in one mutex-protected table; events
   are consed in reverse and flipped on read. Recording is skipped
   entirely (no allocation) while disabled — Affine checks [enabled]
   before building event payloads. *)

let on = Atomic.make false
let enabled () = Atomic.get on
let set_enabled b = Atomic.set on b

type purge_reason = Unanalyzable | No_iterator | Below_nexec | Below_nloc

type event =
  | First_sighting of { exec : int; addr : int }
  | Coeff_solved of {
      exec : int;
      iter : int;
      coeff : int;
      d_addr : int;
      d_iter : int;
      const : int;
    }
  | Non_integer of { exec : int; iter : int; d_addr : int; d_iter : int }
  | Ambiguous of { exec : int; changed : int list }
  | Mispredicted of {
      exec : int;
      predicted : int;
      actual : int;
      sticky : bool array;
      m : int;
      const : int;
    }
  | Verdict of { kept : bool; reason : purge_reason option }

type cell = { c_site : int; c_depth : int; mutable c_events : event list }

let registry : (int, cell) Hashtbl.t = Hashtbl.create 256
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let reset () = with_lock (fun () -> Hashtbl.reset registry)

let register ~uid ~site ~depth =
  if enabled () then
    with_lock (fun () ->
        if not (Hashtbl.mem registry uid) then
          Hashtbl.add registry uid
            { c_site = site; c_depth = depth; c_events = [] })

let is_verdict = function Verdict _ -> true | _ -> false

let record uid e =
  if enabled () then
    with_lock (fun () ->
        match Hashtbl.find_opt registry uid with
        | None -> ()
        | Some c ->
            (* one verdict per story: re-filtering replaces it *)
            if is_verdict e then
              c.c_events <- List.filter (fun e -> not (is_verdict e)) c.c_events;
            c.c_events <- e :: c.c_events)

type story = { site : int; depth : int; events : event list }

let story_of_cell c =
  { site = c.c_site; depth = c.c_depth; events = List.rev c.c_events }

let story uid =
  with_lock (fun () ->
      Option.map story_of_cell (Hashtbl.find_opt registry uid))

let stories () =
  with_lock (fun () ->
      Hashtbl.fold (fun uid c acc -> (uid, story_of_cell c) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* --- replay ------------------------------------------------------------ *)

type replayed = {
  r_coeffs : int option array;
  r_m : int;
  r_const : int option;
  r_analyzable : bool;
}

let replay ~depth events =
  let coeffs = Array.make depth None in
  let m = ref depth in
  let const = ref None in
  let analyzable = ref true in
  List.iter
    (function
      | First_sighting { addr; _ } ->
          const := Some addr;
          m := depth
      | Coeff_solved { iter; coeff; const = c; _ } ->
          if iter >= 0 && iter < depth then coeffs.(iter) <- Some coeff;
          const := Some c
      | Non_integer _ | Ambiguous _ -> analyzable := false
      | Mispredicted { m = m'; const = c; _ } ->
          m := m';
          const := Some c
      | Verdict _ -> ())
    events;
  { r_coeffs = coeffs; r_m = !m; r_const = !const; r_analyzable = !analyzable }

(* --- rendering --------------------------------------------------------- *)

let reason_to_string = function
  | Unanalyzable -> "non-analyzable"
  | No_iterator -> "no-iterator"
  | Below_nexec -> "below-Nexec"
  | Below_nloc -> "below-Nloc"

let all_reasons = [ Unanalyzable; No_iterator; Below_nexec; Below_nloc ]

let event_label = function
  | First_sighting _ -> "first_sighting"
  | Coeff_solved _ -> "coeff_solved"
  | Non_integer _ -> "non_integer"
  | Ambiguous _ -> "ambiguous"
  | Mispredicted _ -> "mispredicted"
  | Verdict _ -> "verdict"

let event_exec = function
  | First_sighting { exec; _ }
  | Coeff_solved { exec; _ }
  | Non_integer { exec; _ }
  | Ambiguous { exec; _ }
  | Mispredicted { exec; _ } ->
      Some exec
  | Verdict _ -> None

let sticky_to_string s =
  String.concat ""
    (List.init (Array.length s) (fun i -> if s.(i) then "1" else "0"))

let event_to_string = function
  | First_sighting { exec; addr } ->
      Printf.sprintf "exec %d: first sighting at addr %#x; CONST := %d" exec
        addr addr
  | Coeff_solved { exec; iter; coeff; d_addr; d_iter; const } ->
      Printf.sprintf
        "exec %d: C%d solved from iterator %d: daddr=%d over diter=%d gives \
         C%d=%d (const rebased to %d)"
        exec (iter + 1) (iter + 1) d_addr d_iter (iter + 1) coeff const
  | Non_integer { exec; iter; d_addr; d_iter } ->
      Printf.sprintf
        "exec %d: no integer coefficient for iterator %d (daddr=%d, \
         diter=%d); marked non-analyzable"
        exec (iter + 1) d_addr d_iter
  | Ambiguous { exec; changed } ->
      Printf.sprintf
        "exec %d: %d unknown-coefficient iterators changed together (%s); \
         marked non-analyzable (Fig. 8 step 4)"
        exec
        (List.length changed)
        (String.concat ","
           (List.map (fun i -> Printf.sprintf "i%d" (i + 1)) changed))
  | Mispredicted { exec; predicted; actual; sticky; m; const } ->
      Printf.sprintf
        "exec %d: mispredicted (predicted %d, actual %d); sticky=%s; \
         demoted to m=%d, const rebased to %d"
        exec predicted actual (sticky_to_string sticky) m const
  | Verdict { kept = true; _ } -> "verdict: kept in the FORAY model"
  | Verdict { kept = false; reason } ->
      Printf.sprintf "verdict: purged (%s)"
        (match reason with
        | Some r -> reason_to_string r
        | None -> "unspecified")
