type t =
  | Parse of { msg : string; line : int }
  | Sema of { msg : string }
  | Runtime of { loc : string; step : int; msg : string }
  | Trace_corrupt of { offset : int; kind : string; events_salvaged : int }
  | Budget_exceeded of { budget : string; limit : int; spent : int }
  | Not_found_program of { name : string }
  | Bad_request of { msg : string }

let code = function
  | Parse _ -> "E_PARSE"
  | Sema _ -> "E_SEMA"
  | Runtime _ -> "E_RUNTIME"
  | Trace_corrupt _ -> "E_TRACE_CORRUPT"
  | Budget_exceeded _ -> "E_BUDGET"
  | Not_found_program _ -> "E_NOT_FOUND"
  | Bad_request _ -> "E_BAD_REQUEST"

let exit_code = function
  | Parse _ -> 10
  | Sema _ -> 11
  | Runtime _ -> 12
  | Trace_corrupt _ -> 13
  | Budget_exceeded _ -> 14
  | Not_found_program _ -> 15
  | Bad_request _ -> 16

let to_string = function
  | Parse { msg; line } ->
      if line > 0 then Printf.sprintf "parse error at line %d: %s" line msg
      else Printf.sprintf "parse error: %s" msg
  | Sema { msg } -> Printf.sprintf "semantic error: %s" msg
  | Runtime { loc; step; msg } ->
      if step >= 0 then
        Printf.sprintf "runtime error in %s at step %d: %s" loc step msg
      else Printf.sprintf "runtime error in %s: %s" loc msg
  | Trace_corrupt { offset; kind; events_salvaged } ->
      Printf.sprintf
        "corrupt trace at byte %d (%s); %d event(s) salvaged before it"
        offset kind events_salvaged
  | Budget_exceeded { budget; limit; spent } ->
      Printf.sprintf "budget %s exceeded: spent %d of %d" budget spent limit
  | Not_found_program { name } ->
      Printf.sprintf "unknown program %S (not a benchmark, figure or file)"
        name
  | Bad_request { msg } -> Printf.sprintf "bad request: %s" msg

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json e =
  let detail =
    match e with
    | Parse { line; _ } -> Printf.sprintf ", \"line\": %d" line
    | Sema _ -> ""
    | Runtime { loc; step; _ } ->
        Printf.sprintf ", \"loc\": \"%s\", \"step\": %d" (json_escape loc)
          step
    | Trace_corrupt { offset; kind; events_salvaged } ->
        Printf.sprintf
          ", \"offset\": %d, \"kind\": \"%s\", \"events_salvaged\": %d"
          offset (json_escape kind) events_salvaged
    | Budget_exceeded { budget; limit; spent } ->
        Printf.sprintf ", \"budget\": \"%s\", \"limit\": %d, \"spent\": %d"
          (json_escape budget) limit spent
    | Not_found_program { name } ->
        Printf.sprintf ", \"name\": \"%s\"" (json_escape name)
    | Bad_request _ -> ""
  in
  Printf.sprintf "{\"error\": \"%s\", \"exit\": %d, \"message\": \"%s\"%s}"
    (code e) (exit_code e)
    (json_escape (to_string e))
    detail

exception Error of t

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Foray_core.Error(%s: %s)" (code e) (to_string e))
    | _ -> None)

let raise_error e = raise (Error e)

(* "Sema: msg" is the prefix Minic.Sema.check_exn uses. *)
let sema_prefix = "Sema: "

let of_exn = function
  | Error e -> Some e
  | Minic.Parser.Error (msg, line) | Minic.Lexer.Error (msg, line) ->
      Some (Parse { msg; line })
  | Failure msg
    when String.length msg >= String.length sema_prefix
         && String.sub msg 0 (String.length sema_prefix) = sema_prefix ->
      Some
        (Sema
           {
             msg =
               String.sub msg (String.length sema_prefix)
                 (String.length msg - String.length sema_prefix);
           })
  | Minic_sim.Interp.Runtime_error msg ->
      Some (Runtime { loc = "simulate"; step = -1; msg })
  | Minic_sim.Interp.Runtime_error_at { msg; step } ->
      Some (Runtime { loc = "simulate"; step; msg })
  | Foray_trace.Tracefile.Corrupt msg ->
      Some (Trace_corrupt { offset = -1; kind = msg; events_salvaged = 0 })
  | _ -> None

let catch f =
  match f () with
  | v -> Ok v
  | exception exn -> (
      match of_exn exn with Some e -> Error e | None -> raise exn)
