(** Random MiniC workload generator with planted ground truth.

    Generates programs made of loop nests accessing arrays through six
    styles — direct affine indexing, [for]-loop pointer walks,
    [while]-loop pointer walks, [switch]-dispatched walks whose arms
    alternate by iteration parity, [switch] arms with C fallthrough, and
    [do/while] walks — while recording, for every planted reference, the
    byte-level affine coefficients (innermost first) the access stream
    obeys. The end-to-end property tests assert that FORAY-GEN recovers
    exactly these coefficients, whatever the surface syntax, and the
    differential verification campaign replays the extracted models
    against the same programs. All generated nests satisfy the paper's
    Step 4 thresholds (>= 20 executions, >= 10 locations). *)

type style =
  | Direct
  | Ptr_for
  | Ptr_while
  | Switch_walk
  | Switch_fall  (** [case 0] falls through into [default] *)
  | Do_while

type planted = {
  array : string;  (** the global array this nest touches *)
  style : style;
  trips : int list;  (** outermost first *)
  terms : int list;  (** expected nonzero byte coefficients, innermost
                         first — what {!Foray_core.Model.mref.terms} must
                         show *)
}

type t = {
  source : string;  (** complete MiniC program *)
  planted : planted list;
}

(** [generate ~seed ~nests] builds a program with [nests] independent loop
    nests (1..8). Deterministic in [seed]. *)
val generate : seed:int -> nests:int -> t
