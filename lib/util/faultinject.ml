type kind =
  | Bit_flip
  | Truncate
  | Duplicate_span
  | Insert_garbage
  | Zero_span
  | Stall

let all = [ Bit_flip; Truncate; Duplicate_span; Insert_garbage; Zero_span; Stall ]

let name = function
  | Bit_flip -> "bit-flip"
  | Truncate -> "truncate"
  | Duplicate_span -> "duplicate-span"
  | Insert_garbage -> "insert-garbage"
  | Zero_span -> "zero-span"
  | Stall -> "stall"

let of_name s = List.find_opt (fun k -> name k = s) all

(* Spans are kept short relative to the input so a mutant is damaged, not
   unrecognizable: salvage has something to resynchronize onto. *)
let span_at prng len =
  let start = Prng.int prng len in
  let max_len = min 32 (len - start) in
  (start, 1 + Prng.int prng max_len)

let apply prng kind s =
  let len = String.length s in
  if len = 0 then s
  else
    match kind with
    | Stall -> s
    | Bit_flip ->
        let b = Bytes.of_string s in
        let i = Prng.int prng len in
        let bit = Prng.int prng 8 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
        Bytes.to_string b
    | Truncate ->
        (* Keep at least one byte gone; possibly everything. *)
        String.sub s 0 (Prng.int prng len)
    | Duplicate_span ->
        let start, n = span_at prng len in
        let span = String.sub s start n in
        let at = Prng.int prng (len + 1) in
        String.sub s 0 at ^ span ^ String.sub s at (len - at)
    | Insert_garbage ->
        let n = 1 + Prng.int prng 16 in
        let garbage =
          String.init n (fun _ -> Char.chr (Prng.int prng 256))
        in
        let at = Prng.int prng (len + 1) in
        String.sub s 0 at ^ garbage ^ String.sub s at (len - at)
    | Zero_span ->
        let start, n = span_at prng len in
        let b = Bytes.of_string s in
        Bytes.fill b start n '\000';
        Bytes.to_string b

type verdict = Clean | Degraded | Typed_failure | Escaped of string

type report = {
  runs : int;
  clean : int;
  degraded : int;
  typed : int;
  escaped : (int * kind * string) list;
  per_kind : (kind * int) list;
}

let campaign ~seed ~runs ~bytes ~run =
  let prng = Prng.create seed in
  let kinds = Array.of_list all in
  let clean = ref 0 and degraded = ref 0 and typed = ref 0 in
  let escaped = ref [] in
  let per_kind = Hashtbl.create 8 in
  for i = 0 to runs - 1 do
    let kind = kinds.(i mod Array.length kinds) in
    Hashtbl.replace per_kind kind
      (1 + Option.value ~default:0 (Hashtbl.find_opt per_kind kind));
    let mutant = apply prng kind bytes in
    let verdict =
      try run kind mutant with exn -> Escaped (Printexc.to_string exn)
    in
    match verdict with
    | Clean -> incr clean
    | Degraded -> incr degraded
    | Typed_failure -> incr typed
    | Escaped e -> escaped := (i, kind, e) :: !escaped
  done;
  {
    runs;
    clean = !clean;
    degraded = !degraded;
    typed = !typed;
    escaped = List.rev !escaped;
    per_kind =
      List.filter_map
        (fun k ->
          Option.map (fun n -> (k, n)) (Hashtbl.find_opt per_kind k))
        all;
  }

let report_to_string r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%d run(s): %d clean, %d degraded, %d typed failure(s), %d escaped\n"
       r.runs r.clean r.degraded r.typed (List.length r.escaped));
  List.iter
    (fun (k, n) ->
      Buffer.add_string b (Printf.sprintf "  %-16s %d mutation(s)\n" (name k) n))
    r.per_kind;
  List.iter
    (fun (i, k, e) ->
      Buffer.add_string b
        (Printf.sprintf "  ESCAPED run %d (%s): %s\n" i (name k) e))
    r.escaped;
  Buffer.contents b
