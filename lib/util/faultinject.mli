(** Deterministic fault injection for robustness testing.

    Mutates raw byte strings (trace files, usually) in reproducible ways so
    a campaign can assert that every consumer of damaged input returns a
    typed error or a degraded-but-valid result — never an escaped
    exception. All randomness comes from {!Prng}, so a failing case is
    re-runnable from its seed alone.

    This module is deliberately ignorant of trace formats and pipelines:
    it only knows bytes and a caller-supplied [run] callback, which keeps
    it reusable from any layer without dependency cycles. *)

(** One kind of damage. [Stall] leaves the bytes intact — it models a
    wedged producer, and callers are expected to run it under a tight
    resource budget instead. *)
type kind =
  | Bit_flip  (** flip one random bit *)
  | Truncate  (** drop a random-length tail *)
  | Duplicate_span  (** splice a copy of a random span back in *)
  | Insert_garbage  (** insert 1-16 random bytes at a random offset *)
  | Zero_span  (** overwrite a random span with zero bytes *)
  | Stall  (** identity mutation; exercise budgets, not parsing *)

(** All kinds, in campaign round-robin order. *)
val all : kind list

val name : kind -> string
val of_name : string -> kind option

(** [apply prng kind bytes] returns the mutated copy. Total for every
    input including the empty string (where most kinds degenerate to the
    identity). *)
val apply : Prng.t -> kind -> string -> string

(** What one mutated input did to the system under test, as judged by the
    campaign's [run] callback. *)
type verdict =
  | Clean  (** consumed fully, nothing lost *)
  | Degraded  (** partial result with an honest account of the damage *)
  | Typed_failure  (** rejected with a typed, documented error *)
  | Escaped of string  (** an exception crossed the API boundary: a bug *)

type report = {
  runs : int;
  clean : int;
  degraded : int;
  typed : int;
  escaped : (int * kind * string) list;
      (** (run index, kind, exception) for every escape *)
  per_kind : (kind * int) list;  (** mutations attempted per kind *)
}

(** [campaign ~seed ~runs ~bytes ~run] mutates [bytes] [runs] times,
    cycling through {!all} kinds, and feeds each mutant to [run]. Any
    exception [run] lets through is recorded as {!Escaped} — the campaign
    itself never raises. Deterministic in [seed]. *)
val campaign :
  seed:int -> runs:int -> bytes:string -> run:(kind -> string -> verdict) ->
  report

(** Multi-line human-readable rendering of a report. *)
val report_to_string : report -> string
