module Obs = Foray_obs.Obs
module Span = Foray_obs.Span

let default_jobs () = Domain.recommended_domain_count ()

type 'b outcome = Pending | Done of 'b | Failed of exn

let map ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let nworkers = min jobs n in
    (* Per-worker load statistics, flushed once after the pool joins:
       pool-idle time is the gap between the pool's aggregate wall clock
       and the summed busy time, i.e. what a better schedule could still
       reclaim. Only sampled when collection is on. *)
    let obs = Obs.enabled () in
    let tracing = Span.enabled () in
    let tasks_done = Array.make nworkers 0 in
    let busy = Array.make nworkers 0.0 in
    let rec worker w =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let t0 = if obs then Obs.now () else 0.0 in
        let span =
          if tracing then
            Span.enter ~cat:"parallel"
              ~args:[ ("worker", string_of_int w) ]
              (Printf.sprintf "task%d" i)
          else Span.null
        in
        (results.(i) <-
           (match f input.(i) with v -> Done v | exception e -> Failed e));
        if tracing then Span.leave span;
        if obs then begin
          tasks_done.(w) <- tasks_done.(w) + 1;
          busy.(w) <- busy.(w) +. (Obs.now () -. t0)
        end;
        worker w
      end
    in
    let wall0 = if obs then Obs.now () else 0.0 in
    let spawned =
      Array.init (nworkers - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
    in
    worker 0;
    Array.iter Domain.join spawned;
    if obs then begin
      let wall = Obs.now () -. wall0 in
      Array.iteri
        (fun w c ->
          Obs.add
            (Obs.counter ~labels:[ ("domain", string_of_int w) ] "parallel.tasks")
            c)
        tasks_done;
      let total_busy = Array.fold_left ( +. ) 0.0 busy in
      Obs.add_time (Obs.timer "parallel.busy") total_busy;
      Obs.add_time (Obs.timer "parallel.idle")
        (Float.max 0.0 ((wall *. float_of_int nworkers) -. total_busy))
    end;
    (* Every slot is filled once all domains joined; re-raise the earliest
       failure so error behaviour is deterministic too. *)
    Array.iter (function Failed e -> raise e | _ -> ()) results;
    Array.to_list
      (Array.map
         (function Done v -> v | Pending | Failed _ -> assert false)
         results)
  end

let run ?jobs tasks = map ?jobs (fun task -> task ()) tasks
