module Obs = Foray_obs.Obs
module Span = Foray_obs.Span

let default_jobs () = Domain.recommended_domain_count ()

(* A failure keeps the backtrace captured in the worker domain, so the
   re-raise in the caller points at the failing task's frames, not at the
   pool plumbing. *)
type 'b outcome =
  | Pending
  | Done of 'b
  | Failed of exn * Printexc.raw_backtrace

let map ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let nworkers = min jobs n in
    (* Per-worker load statistics, flushed once after the pool joins:
       pool-idle time is the gap between the pool's aggregate wall clock
       and the summed busy time, i.e. what a better schedule could still
       reclaim. Only sampled when collection is on. *)
    let obs = Obs.enabled () in
    let tracing = Span.enabled () in
    let tasks_done = Array.make nworkers 0 in
    let busy = Array.make nworkers 0.0 in
    let rec worker w =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let t0 = if obs then Obs.now () else 0.0 in
        let span =
          if tracing then
            Span.enter ~cat:"parallel"
              ~args:[ ("worker", string_of_int w) ]
              (Printf.sprintf "task%d" i)
          else Span.null
        in
        (results.(i) <-
           (match f input.(i) with
           | v -> Done v
           | exception e -> Failed (e, Printexc.get_raw_backtrace ())));
        if tracing then Span.leave span;
        if obs then begin
          tasks_done.(w) <- tasks_done.(w) + 1;
          busy.(w) <- busy.(w) +. (Obs.now () -. t0)
        end;
        worker w
      end
    in
    let wall0 = if obs then Obs.now () else 0.0 in
    let spawned =
      Array.init (nworkers - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
    in
    worker 0;
    Array.iter Domain.join spawned;
    if obs then begin
      let wall = Obs.now () -. wall0 in
      Array.iteri
        (fun w c ->
          Obs.add
            (Obs.counter ~labels:[ ("domain", string_of_int w) ] "parallel.tasks")
            c)
        tasks_done;
      let total_busy = Array.fold_left ( +. ) 0.0 busy in
      Obs.add_time (Obs.timer "parallel.busy") total_busy;
      Obs.add_time (Obs.timer "parallel.idle")
        (Float.max 0.0 ((wall *. float_of_int nworkers) -. total_busy))
    end;
    (* Every slot is filled once all domains joined; re-raise the earliest
       failure so error behaviour is deterministic too, with the original
       backtrace reattached. *)
    Array.iter
      (function
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt | _ -> ())
      results;
    Array.to_list
      (Array.map
         (function Done v -> v | Pending | Failed _ -> assert false)
         results)
  end

let run ?jobs tasks = map ?jobs (fun task -> task ()) tasks

(* ------------------------------------------------------------------ *)
(* Persistent pool                                                    *)
(* ------------------------------------------------------------------ *)

(* [map] spins domains up and down per call, which is the right shape for
   batch fan-out but not for a long-running service: the daemon wants a
   pool that outlives any one request. Workers block on a condition
   variable; submitters may be any domain or systhread. *)

type 'a future_state =
  | F_pending
  | F_done of 'a
  | F_failed of exn * Printexc.raw_backtrace

type 'a future = {
  f_mutex : Mutex.t;
  f_cond : Condition.t;
  mutable f_state : 'a future_state;
}

type pool = {
  p_mutex : Mutex.t;
  p_nonempty : Condition.t;
  p_queue : (unit -> unit) Queue.t;
  mutable p_stopping : bool;
  mutable p_workers : unit Domain.t array;
  p_jobs : int;
  p_busy : int Atomic.t; (* workers currently inside a task *)
}

let m_pool_tasks = lazy (Obs.counter "parallel.pool.tasks")

let pool_worker p =
  let rec loop () =
    Mutex.lock p.p_mutex;
    while Queue.is_empty p.p_queue && not p.p_stopping do
      Condition.wait p.p_nonempty p.p_mutex
    done;
    if Queue.is_empty p.p_queue then Mutex.unlock p.p_mutex
      (* stopping and drained: exit *)
    else begin
      let task = Queue.pop p.p_queue in
      Mutex.unlock p.p_mutex;
      Atomic.incr p.p_busy;
      Fun.protect ~finally:(fun () -> Atomic.decr p.p_busy) task;
      if Obs.enabled () then Obs.incr (Lazy.force m_pool_tasks);
      loop ()
    end
  in
  loop ()

let create_pool ?jobs () =
  let jobs =
    max 1 (match jobs with Some j -> j | None -> default_jobs ())
  in
  let p =
    {
      p_mutex = Mutex.create ();
      p_nonempty = Condition.create ();
      p_queue = Queue.create ();
      p_stopping = false;
      p_workers = [||];
      p_jobs = jobs;
      p_busy = Atomic.make 0;
    }
  in
  p.p_workers <- Array.init jobs (fun _ -> Domain.spawn (fun () -> pool_worker p));
  p

let pool_jobs p = p.p_jobs
let pool_busy p = Atomic.get p.p_busy

let pool_pending p =
  Mutex.lock p.p_mutex;
  let n = Queue.length p.p_queue in
  Mutex.unlock p.p_mutex;
  n

let async p f =
  let fut =
    { f_mutex = Mutex.create (); f_cond = Condition.create ();
      f_state = F_pending }
  in
  let task () =
    let state =
      match f () with
      | v -> F_done v
      | exception e -> F_failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock fut.f_mutex;
    fut.f_state <- state;
    Condition.broadcast fut.f_cond;
    Mutex.unlock fut.f_mutex
  in
  Mutex.lock p.p_mutex;
  if p.p_stopping then begin
    Mutex.unlock p.p_mutex;
    invalid_arg "Parallel.async: pool is shut down"
  end;
  Queue.push task p.p_queue;
  Condition.signal p.p_nonempty;
  Mutex.unlock p.p_mutex;
  fut

let await fut =
  Mutex.lock fut.f_mutex;
  while (match fut.f_state with F_pending -> true | _ -> false) do
    Condition.wait fut.f_cond fut.f_mutex
  done;
  let state = fut.f_state in
  Mutex.unlock fut.f_mutex;
  match state with
  | F_done v -> v
  | F_failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | F_pending -> assert false

let shutdown_pool p =
  Mutex.lock p.p_mutex;
  p.p_stopping <- true;
  Condition.broadcast p.p_nonempty;
  Mutex.unlock p.p_mutex;
  Array.iter Domain.join p.p_workers
