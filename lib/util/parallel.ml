let default_jobs () = Domain.recommended_domain_count ()

type 'b outcome = Pending | Done of 'b | Failed of exn

let map ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (results.(i) <-
           (match f input.(i) with v -> Done v | exception e -> Failed e));
        worker ()
      end
    in
    let spawned =
      Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    (* Every slot is filled once all domains joined; re-raise the earliest
       failure so error behaviour is deterministic too. *)
    Array.iter (function Failed e -> raise e | _ -> ()) results;
    Array.to_list
      (Array.map
         (function Done v -> v | Pending | Failed _ -> assert false)
         results)
  end

let run ?jobs tasks = map ?jobs (fun task -> task ()) tasks
