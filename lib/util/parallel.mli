(** A small domain pool for fanning out independent experiment runs.

    The benchmark suite, the ablations and the CLI verbs all map an
    expensive pure-ish function (parse + simulate + analyze) over an
    independent list of inputs. [map] distributes those tasks over OCaml 5
    domains while keeping the contract callers rely on:

    - {b deterministic ordering}: the result list matches the input list
      element-for-element, whatever order tasks finished in, so rendered
      tables are byte-identical to a serial run;
    - {b serial fallback}: [jobs <= 1] (or a single task) runs everything
      in the calling domain with no spawns at all — exactly the historical
      behaviour;
    - {b exception propagation}: if tasks raise, the exception of the
      earliest-indexed failing task is re-raised in the caller after all
      domains joined (no orphan domains, no lost results), {e with the
      backtrace captured in the worker domain reattached}
      ([Printexc.raise_with_backtrace]), so the trace names the failing
      task's frames rather than the pool plumbing.

    Tasks are pulled from a shared atomic counter, so uneven task costs
    (jpeg simulates an order of magnitude longer than adpcm) balance
    automatically across the pool. *)

(** [Domain.recommended_domain_count ()], the default pool width. *)
val default_jobs : unit -> int

(** [map ~jobs f xs] is [List.map f xs] computed by up to [jobs] domains
    (the calling domain included). [jobs] defaults to {!default_jobs}. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [run ~jobs tasks] forces a list of thunks, pool semantics as {!map}. *)
val run : ?jobs:int -> (unit -> 'a) list -> 'a list

(** {1 Persistent pool}

    {!map} spins domains up and down per call — right for batch fan-out,
    wrong for a long-running service. A {!pool} keeps [jobs] worker
    domains alive, blocking on a queue; {!async} may be called from any
    domain or systhread (the [forayd] daemon submits from its
    per-connection threads), and tasks run in whatever worker frees up
    first. Counted under the [parallel.pool.tasks] metric. *)

type pool

(** A deferred task result; {!await} blocks until it is available. *)
type 'a future

(** [create_pool ~jobs ()] spawns [max 1 jobs] worker domains
    ([jobs] defaults to {!default_jobs}). *)
val create_pool : ?jobs:int -> unit -> pool

(** Worker-domain count of the pool. *)
val pool_jobs : pool -> int

(** Workers currently executing a task (instantaneous; [0..pool_jobs]).
    Feeds the daemon's [foray_pool_busy] gauge. *)
val pool_busy : pool -> int

(** Tasks queued but not yet picked up by a worker (instantaneous).
    Feeds the daemon's [foray_pool_pending] gauge. *)
val pool_pending : pool -> int

(** [async pool f] queues [f] and returns immediately. The task's
    exception (if any) is captured with its backtrace and re-raised by
    {!await}. @raise Invalid_argument on a pool already shut down. *)
val async : pool -> (unit -> 'a) -> 'a future

(** [await fut] blocks until the task finished; returns its value or
    re-raises its exception with the original backtrace. Never call from
    inside a task running on the same single-worker pool — the task would
    wait on itself. *)
val await : 'a future -> 'a

(** Drain the queue, then join and release every worker. Idempotent in
    effect; subsequent {!async} calls raise. *)
val shutdown_pool : pool -> unit
