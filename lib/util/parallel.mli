(** A small domain pool for fanning out independent experiment runs.

    The benchmark suite, the ablations and the CLI verbs all map an
    expensive pure-ish function (parse + simulate + analyze) over an
    independent list of inputs. [map] distributes those tasks over OCaml 5
    domains while keeping the contract callers rely on:

    - {b deterministic ordering}: the result list matches the input list
      element-for-element, whatever order tasks finished in, so rendered
      tables are byte-identical to a serial run;
    - {b serial fallback}: [jobs <= 1] (or a single task) runs everything
      in the calling domain with no spawns at all — exactly the historical
      behaviour;
    - {b exception propagation}: if tasks raise, the exception of the
      earliest-indexed failing task is re-raised in the caller after all
      domains joined (no orphan domains, no lost results).

    Tasks are pulled from a shared atomic counter, so uneven task costs
    (jpeg simulates an order of magnitude longer than adpcm) balance
    automatically across the pool. *)

(** [Domain.recommended_domain_count ()], the default pool width. *)
val default_jobs : unit -> int

(** [map ~jobs f xs] is [List.map f xs] computed by up to [jobs] domains
    (the calling domain included). [jobs] defaults to {!default_jobs}. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [run ~jobs tasks] forces a list of thunks, pool semantics as {!map}. *)
val run : ?jobs:int -> (unit -> 'a) list -> 'a list
