type style =
  | Direct
  | Ptr_for
  | Ptr_while
  | Switch_walk
  | Switch_fall
  | Do_while

type planted = {
  array : string;
  style : style;
  trips : int list;
  terms : int list;
}

type t = { source : string; planted : planted list }

let bprintf = Printf.bprintf

(* One nest. Depth 1 or 2; the inner trip is large enough to satisfy the
   Step 4 thresholds on its own. Returns (declarations, code, planted
   records — one per reference the nest creates). *)
let gen_nest rng k =
  let arr = Printf.sprintf "G%d" k in
  let iv d = Printf.sprintf "i%d_%d" k d in
  let style =
    Prng.pick rng
      [ Direct; Ptr_for; Ptr_while; Switch_walk; Switch_fall; Do_while ]
  in
  let depth = Prng.range rng 1 2 in
  (* single loops must clear Nexec=20 on their own *)
  let t_inner =
    if depth = 1 then Prng.range rng 21 30 else Prng.range rng 12 20
  in
  let t_outer = Prng.range rng 2 5 in
  let trips = if depth = 1 then [ t_inner ] else [ t_outer; t_inner ] in
  match style with
  | Direct ->
      let c1 = Prng.range rng 1 3 in
      let c2 = if depth = 2 then Prng.range rng 0 4 else 0 in
      let off = Prng.range rng 0 7 in
      let size = (c1 * (t_inner - 1)) + (c2 * (t_outer - 1)) + off + 1 in
      let decl = Printf.sprintf "int %s[%d];\n" arr size in
      let buf = Buffer.create 256 in
      let index =
        if depth = 2 then
          Printf.sprintf "%d * %s + %d * %s + %d" c1 (iv 0) c2 (iv 1) off
        else Printf.sprintf "%d * %s + %d" c1 (iv 0) off
      in
      if depth = 2 then begin
        bprintf buf "  for (%s = 0; %s < %d; %s++) {\n" (iv 1) (iv 1) t_outer (iv 1);
        bprintf buf "    for (%s = 0; %s < %d; %s++) {\n" (iv 0) (iv 0) t_inner (iv 0);
        bprintf buf "      %s[%s] = %s + %s;\n" arr index (iv 0) (iv 1);
        bprintf buf "    }\n  }\n"
      end
      else begin
        bprintf buf "  for (%s = 0; %s < %d; %s++) {\n" (iv 0) (iv 0) t_inner (iv 0);
        bprintf buf "    %s[%s] = %s;\n" arr index (iv 0);
        bprintf buf "  }\n"
      end;
      let terms =
        List.filter (fun c -> c <> 0)
          (if depth = 2 then [ 4 * c1; 4 * c2 ] else [ 4 * c1 ])
      in
      (decl, Buffer.contents buf, [ { array = arr; style; trips; terms } ])
  | Ptr_for ->
      (* pointer walk with an element stride inside, and a gap skip per
         outer iteration *)
      let stride = Prng.range rng 1 3 in
      let gap = if depth = 2 then Prng.range rng 0 5 else 0 in
      let per_outer = stride * t_inner in
      let size = (t_outer * (per_outer + gap)) + 1 in
      let decl = Printf.sprintf "int %s[%d];\n" arr size in
      let p = Printf.sprintf "p%d" k in
      let buf = Buffer.create 256 in
      bprintf buf "  %s = %s;\n" p arr;
      if depth = 2 then begin
        bprintf buf "  for (%s = 0; %s < %d; %s++) {\n" (iv 1) (iv 1) t_outer (iv 1);
        bprintf buf "    for (%s = 0; %s < %d; %s++) {\n" (iv 0) (iv 0) t_inner (iv 0);
        bprintf buf "      *%s = %s;\n" p (iv 0);
        bprintf buf "      %s += %d;\n" p stride;
        bprintf buf "    }\n";
        if gap > 0 then bprintf buf "    %s += %d;\n" p gap;
        bprintf buf "  }\n"
      end
      else begin
        bprintf buf "  for (%s = 0; %s < %d; %s++) {\n" (iv 0) (iv 0) t_inner (iv 0);
        bprintf buf "    *%s = %s;\n" p (iv 0);
        bprintf buf "    %s += %d;\n" p stride;
        bprintf buf "  }\n"
      end;
      let terms =
        if depth = 2 then [ 4 * stride; 4 * (per_outer + gap) ]
        else [ 4 * stride ]
      in
      (decl, Buffer.contents buf, [ { array = arr; style; trips; terms } ])
  | Ptr_while ->
      (* a while-loop walk (never in FORAY form statically), optionally
         under an outer for *)
      let stride = Prng.range rng 1 2 in
      let per_outer = stride * t_inner in
      let size = (t_outer * per_outer) + 1 in
      let decl = Printf.sprintf "int %s[%d];\n" arr size in
      let p = Printf.sprintf "p%d" k in
      let n = Printf.sprintf "n%d" k in
      let buf = Buffer.create 256 in
      bprintf buf "  %s = %s;\n" p arr;
      if depth = 2 then begin
        bprintf buf "  for (%s = 0; %s < %d; %s++) {\n" (iv 1) (iv 1) t_outer (iv 1);
        bprintf buf "    %s = %d;\n" n t_inner;
        bprintf buf "    while (%s > 0) {\n" n;
        bprintf buf "      *%s = %s;\n" p n;
        bprintf buf "      %s += %d;\n" p stride;
        bprintf buf "      %s--;\n" n;
        bprintf buf "    }\n  }\n"
      end
      else begin
        bprintf buf "  %s = %d;\n" n t_inner;
        bprintf buf "  while (%s > 0) {\n" n;
        bprintf buf "    *%s = %s;\n" p n;
        bprintf buf "    %s += %d;\n" p stride;
        bprintf buf "    %s--;\n" n;
        bprintf buf "  }\n"
      end;
      let terms =
        if depth = 2 then [ 4 * stride; 4 * per_outer ] else [ 4 * stride ]
      in
      (decl, Buffer.contents buf, [ { array = arr; style; trips; terms } ])
  | Switch_walk ->
      (* a single loop whose switch arms alternate by parity; each arm is
         a distinct reference advancing 2*stride elements per own
         execution, i.e. the same byte coefficient as the walk itself *)
      let stride = Prng.range rng 1 2 in
      let t = 2 * Prng.range rng 21 26 in
      let size = (stride * t) + 1 in
      let decl = Printf.sprintf "int %s[%d];\n" arr size in
      let p = Printf.sprintf "p%d" k in
      let buf = Buffer.create 256 in
      bprintf buf "  %s = %s;\n" p arr;
      bprintf buf "  for (%s = 0; %s < %d; %s++) {\n" (iv 0) (iv 0) t (iv 0);
      bprintf buf "    switch (%s & 1) {\n" (iv 0);
      bprintf buf "    case 0:\n      *%s = %s;\n      break;\n" p (iv 0);
      bprintf buf "    default:\n      *%s = 0 - %s;\n      break;\n" p (iv 0);
      bprintf buf "    }\n";
      bprintf buf "    %s += %d;\n" p stride;
      bprintf buf "  }\n";
      let planted_arm =
        { array = arr; style; trips = [ t ]; terms = [ 4 * stride ] }
      in
      (decl, Buffer.contents buf, [ planted_arm; planted_arm ])
  | Switch_fall ->
      (* a single loop whose switch falls through: the [case 0] arm runs
         on even iterations only and drops into [default], which runs on
         every iteration. Both pointers advance once per loop iteration,
         so the fallthrough arm's access stream is still exactly affine in
         the loop iterator — consecutive executions are two iterations and
         two strides apart, the same byte-per-iteration slope. *)
      let ps = Prng.range rng 1 2 in
      let qs = Prng.range rng 1 2 in
      let t = 2 * Prng.range rng 21 26 in
      let brr = Printf.sprintf "H%d" k in
      let decl =
        Printf.sprintf "int %s[%d];\nint %s[%d];\n" arr ((ps * t) + 1) brr
          ((qs * t) + 1)
      in
      let p = Printf.sprintf "p%d" k in
      let q = Printf.sprintf "q%d" k in
      let buf = Buffer.create 256 in
      bprintf buf "  %s = %s;\n" p arr;
      bprintf buf "  %s = %s;\n" q brr;
      bprintf buf "  for (%s = 0; %s < %d; %s++) {\n" (iv 0) (iv 0) t (iv 0);
      bprintf buf "    switch (%s & 1) {\n" (iv 0);
      bprintf buf "    case 0:\n      *%s = %s;\n" p (iv 0);
      bprintf buf "    default:\n      *%s = 0 - %s;\n      break;\n" q (iv 0);
      bprintf buf "    }\n";
      bprintf buf "    %s += %d;\n" p ps;
      bprintf buf "    %s += %d;\n" q qs;
      bprintf buf "  }\n";
      ( decl,
        Buffer.contents buf,
        [
          { array = arr; style; trips = [ t ]; terms = [ 4 * ps ] };
          { array = brr; style; trips = [ t ]; terms = [ 4 * qs ] };
        ] )
  | Do_while ->
      (* a do/while pointer walk (body-first, so the trip count equals the
         counter bound), optionally under an outer for with a gap skip *)
      let stride = Prng.range rng 1 3 in
      let gap = if depth = 2 then Prng.range rng 0 5 else 0 in
      let per_outer = (stride * t_inner) + gap in
      let size =
        if depth = 2 then (t_outer * per_outer) + 1
        else (stride * t_inner) + 1
      in
      let decl = Printf.sprintf "int %s[%d];\n" arr size in
      let p = Printf.sprintf "p%d" k in
      let n = Printf.sprintf "n%d" k in
      let buf = Buffer.create 256 in
      bprintf buf "  %s = %s;\n" p arr;
      if depth = 2 then begin
        bprintf buf "  for (%s = 0; %s < %d; %s++) {\n" (iv 1) (iv 1) t_outer (iv 1);
        bprintf buf "    %s = 0;\n" n;
        bprintf buf "    do {\n";
        bprintf buf "      *%s = %s;\n" p n;
        bprintf buf "      %s += %d;\n" p stride;
        bprintf buf "      %s++;\n" n;
        bprintf buf "    } while (%s < %d);\n" n t_inner;
        if gap > 0 then bprintf buf "    %s += %d;\n" p gap;
        bprintf buf "  }\n"
      end
      else begin
        bprintf buf "  %s = 0;\n" n;
        bprintf buf "  do {\n";
        bprintf buf "    *%s = %s;\n" p n;
        bprintf buf "    %s += %d;\n" p stride;
        bprintf buf "    %s++;\n" n;
        bprintf buf "  } while (%s < %d);\n" n t_inner
      end;
      let terms =
        if depth = 2 then [ 4 * stride; 4 * per_outer ] else [ 4 * stride ]
      in
      (decl, Buffer.contents buf, [ { array = arr; style; trips; terms } ])

let generate ~seed ~nests =
  if nests < 1 || nests > 8 then invalid_arg "Progen.generate: 1..8 nests";
  let rng = Prng.create seed in
  let parts = List.init nests (fun k -> gen_nest rng k) in
  let buf = Buffer.create 1024 in
  List.iter (fun (decl, _, _) -> Buffer.add_string buf decl) parts;
  Buffer.add_string buf "int main() {\n";
  (* declare all iterator / pointer / counter locals up front *)
  List.iteri
    (fun k (_, _, ps) ->
      let (p : planted) = List.hd ps in
      let depth = List.length p.trips in
      for d = 0 to depth - 1 do
        bprintf buf "  int i%d_%d;\n" k d
      done;
      match p.style with
      | Direct -> ()
      | Ptr_for | Switch_walk -> bprintf buf "  int *p%d;\n" k
      | Switch_fall -> bprintf buf "  int *p%d;\n  int *q%d;\n" k k
      | Ptr_while | Do_while -> bprintf buf "  int *p%d;\n  int n%d;\n" k k)
    parts;
  List.iter (fun (_, code, _) -> Buffer.add_string buf code) parts;
  Buffer.add_string buf "  return 0;\n}\n";
  {
    source = Buffer.contents buf;
    planted = List.concat_map (fun (_, _, ps) -> ps) parts;
  }
