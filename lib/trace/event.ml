type ckind = Loop_enter | Body_enter | Body_exit | Loop_exit

type access = {
  site : int;
  addr : int;
  write : bool;
  sys : bool;
  width : int;
}

type event =
  | Checkpoint of { loop : int; kind : ckind }
  | Access of access

type sink = event -> unit

let null_sink : sink = fun _ -> ()
let tee a b : sink = fun e -> a e; b e

let collector () =
  let acc = ref [] in
  let sink e = acc := e :: !acc in
  (sink, fun () -> List.rev !acc)

let string_of_ckind = function
  | Loop_enter -> "loop_enter"
  | Body_enter -> "body_enter"
  | Body_exit -> "body_exit"
  | Loop_exit -> "loop_exit"

let ckind_of_string = function
  | "loop_enter" -> Ok Loop_enter
  | "body_enter" -> Ok Body_enter
  | "body_exit" -> Ok Body_exit
  | "loop_exit" -> Ok Loop_exit
  | s -> Error ("unknown checkpoint kind " ^ s)

let to_line = function
  | Checkpoint { loop; kind } ->
      Printf.sprintf "Checkpoint: %d %s" loop (string_of_ckind kind)
  | Access { site; addr; write; sys; width } ->
      Printf.sprintf "Instr: %x addr: %x %s %d%s" site addr
        (if write then "wr" else "rd")
        width
        (if sys then " sys" else "")

(* [result]-based parsing: the parser reports what is wrong, the caller
   (in practice only {!Tracefile}) decides whether a bad record is fatal
   or a resynchronization point. *)

let ( let* ) = Result.bind

let int_field what s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "bad %s %S" what s)

let of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "Checkpoint:"; loop; kind ] ->
      let* loop = int_field "loop id" loop in
      let* kind = ckind_of_string kind in
      Ok (Checkpoint { loop; kind })
  | "Instr:" :: site :: "addr:" :: addr :: dir :: width :: rest ->
      let* write =
        match dir with
        | "wr" -> Ok true
        | "rd" -> Ok false
        | _ -> Error ("bad direction " ^ dir)
      in
      let* sys =
        match rest with
        | [] -> Ok false
        | [ "sys" ] -> Ok true
        | _ -> Error ("trailing junk after " ^ dir ^ " record")
      in
      let* site = int_field "site" ("0x" ^ site) in
      let* addr = int_field "address" ("0x" ^ addr) in
      let* width = int_field "width" width in
      Ok (Access { site; addr; write; sys; width })
  | _ -> Error "not a trace record"

let to_string events = String.concat "\n" (List.map to_line events) ^ "\n"

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.trim l <> "")
  in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
        match of_line l with
        | Ok e -> go (e :: acc) (lineno + 1) rest
        | Error msg -> Error (Printf.sprintf "record %d: %s" lineno msg))
  in
  go [] 1 lines

let equal a b = a = b
let pp fmt e = Format.pp_print_string fmt (to_line e)
