(** Profile trace events (Step 2 of Algorithm 1).

    A trace is the sequence of records the instruction-set simulator writes:
    one record per memory access — the static reference id (the simulated
    "instruction address"), the accessed address, direction and width — and
    one record per executed checkpoint. This mirrors Figure 4(c) of the
    paper, extended with access width, a system-library flag and explicit
    loop-exit checkpoints.

    The trace module is independent of the MiniC front end so that the
    analyzer can consume traces from any producer. *)

(** Checkpoint kinds. [Loop_enter] precedes a loop, [Body_enter] opens an
    iteration, [Body_exit] closes it, [Loop_exit] follows the loop. *)
type ckind = Loop_enter | Body_enter | Body_exit | Loop_exit

type access = {
  site : int;  (** static reference id ("instruction address") *)
  addr : int;  (** accessed byte address *)
  write : bool;
  sys : bool;  (** performed inside a system-library routine *)
  width : int;  (** bytes touched, starting at [addr] *)
}

type event =
  | Checkpoint of { loop : int; kind : ckind }
  | Access of access

(** A consumer of events. The simulator pushes events into sinks, so the
    whole FORAY-GEN analysis can run online without storing the trace
    (constant space, as in §4 of the paper). *)
type sink = event -> unit

(** A sink that discards everything. *)
val null_sink : sink

(** [tee a b] duplicates every event into both sinks. *)
val tee : sink -> sink -> sink

(** [collector ()] is a sink plus a function returning everything seen so
    far, in order. *)
val collector : unit -> sink * (unit -> event list)

(** {1 Text serialization (Figure 4(c) style)} *)

(** One line per event, e.g.
    ["Checkpoint: 12 loop_enter"] and
    ["Instr: 4002a0 addr: 7fff5934 wr 1"] (hex site and address, [rd]/[wr],
    width, optional trailing [sys]). *)
val to_line : event -> string

(** Parses one line. Never raises: a malformed line is [Error reason].
    Only {!Tracefile} decides whether that is fatal (strict mode) or a
    resynchronization point (salvage mode). *)
val of_line : string -> (event, string) result

(** Renders a whole trace. *)
val to_string : event list -> string

(** Parses a whole trace (blank lines ignored). [Error] names the first
    malformed record (1-based) and why. *)
val of_string : string -> (event list, string) result

val string_of_ckind : ckind -> string
val ckind_of_string : string -> (ckind, string) result
val equal : event -> event -> bool
val pp : Format.formatter -> event -> unit
