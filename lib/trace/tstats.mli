(** Per-reference aggregation over a trace.

    Collects, for every static reference (site), its access count, its byte
    footprint and whether it is a system-library reference. This is the raw
    material for the paper's Table III (references / accesses / footprint
    split into FORAY-model, system-call and other categories). *)

type site_info = {
  site : int;
  accesses : int;
  reads : int;
  writes : int;
  footprint : Foray_util.Iset.t;  (** distinct bytes touched *)
  sys : bool;
}

type t

(** Fresh accumulator. *)
val create : unit -> t

(** A sink that folds access events into the accumulator (checkpoints are
    ignored). *)
val sink : t -> Event.sink

(** [merge a b] adds [b]'s sites into [a] (counters summed, footprints
    unioned) and returns [a]; [b] must not be used afterwards (its cells
    may be shared). Used to combine per-shard accumulators — order
    independent, a fresh accumulator is an identity. *)
val merge : t -> t -> t

(** All sites observed, in increasing site order. *)
val sites : t -> site_info list

(** Number of distinct sites. *)
val n_sites : t -> int

(** Total access count across sites. *)
val total_accesses : t -> int

(** Union footprint in bytes across all sites. *)
val total_footprint : t -> int

(** [group t ~classify] partitions sites by the label [classify] returns and
    gives [(n_sites, accesses, footprint_bytes)] per label, where footprint
    is the cardinality of the union of the group's footprints. *)
val group :
  t -> classify:(site_info -> 'a) -> ('a * (int * int * int)) list

(** Footprint (bytes) of the union over a subset of sites. *)
val footprint_of : t -> (site_info -> bool) -> int
