let tokens line =
  String.split_on_char ' ' (String.trim line)
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let hex_of s =
  let s =
    if String.length s > 2 && (String.sub s 0 2 = "0x" || String.sub s 0 2 = "0X")
    then String.sub s 2 (String.length s - 2)
    else s
  in
  int_of_string_opt ("0x" ^ s)

let kind_of = function
  | "r" | "rd" | "read" | "R" -> Some false
  | "w" | "wr" | "write" | "W" -> Some true
  | _ -> None

let parse_line line =
  match tokens line with
  | [] -> Ok None
  | t :: _ when String.length t > 0 && t.[0] = '#' -> Ok None
  | [ loop; ck ] -> (
      match (int_of_string_opt loop, Event.ckind_of_string ck) with
      | Some loop, Ok kind -> Ok (Some (Event.Checkpoint { loop; kind }))
      | None, _ -> Error (Printf.sprintf "bad loop id %S" loop)
      | _, Error e -> Error e)
  | site :: addr :: kind :: rest -> (
      match (hex_of site, hex_of addr, kind_of kind) with
      | Some site, Some addr, Some write -> (
          let width, rest =
            match rest with
            | w :: more when int_of_string_opt w <> None ->
                (int_of_string w, more)
            | _ -> (4, rest)
          in
          match rest with
          | [] ->
              Ok (Some (Event.Access { site; addr; write; sys = false; width }))
          | [ "sys" ] ->
              Ok (Some (Event.Access { site; addr; write; sys = true; width }))
          | junk :: _ -> Error (Printf.sprintf "trailing token %S" junk))
      | None, _, _ -> Error (Printf.sprintf "bad hex site %S" site)
      | _, None, _ -> Error (Printf.sprintf "bad hex address %S" addr)
      | _, _, None -> Error (Printf.sprintf "bad access kind %S" kind))
  | [ only ] -> Error (Printf.sprintf "lone token %S" only)

let max_first_errors = 5

let read ?(strict = false) path =
  In_channel.with_open_text path (fun ic ->
      let events = ref [] and n = ref 0 in
      let offset = ref 0 in
      let resyncs = ref 0 and bytes_skipped = ref 0 in
      let first_errors = ref [] and in_bad_run = ref false in
      let corrupt = ref None in
      (try
         while !corrupt = None do
           match In_channel.input_line ic with
           | None -> raise Exit
           | Some line ->
               let here = !offset in
               offset := !offset + String.length line + 1;
               (match parse_line line with
               | Ok None -> in_bad_run := false
               | Ok (Some e) ->
                   in_bad_run := false;
                   events := e :: !events;
                   incr n
               | Error kind ->
                   if strict then
                     corrupt :=
                       Some
                         { Tracefile.offset = here; kind; events_before = !n }
                   else begin
                     if not !in_bad_run then incr resyncs;
                     in_bad_run := true;
                     bytes_skipped := !bytes_skipped + String.length line + 1;
                     if List.length !first_errors < max_first_errors then
                       first_errors := (here, kind) :: !first_errors
                   end)
         done
       with Exit -> ());
      match !corrupt with
      | Some c -> Error c
      | None ->
          let arr = Array.of_list (List.rev !events) in
          Ok
            ( arr,
              {
                Tracefile.events = !n;
                resyncs = !resyncs;
                bytes_skipped = !bytes_skipped;
                truncated_tail = false;
                first_errors = List.rev !first_errors;
              } ))
