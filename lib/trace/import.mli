(** Importing foreign simulator address logs (ROADMAP item 4a).

    The paper's profiles come from an instruction-set simulator that logs
    one memory access per line — {e site address kind} — rather than this
    repository's own {!Event} text format. This adapter parses such logs
    into the pipeline's event stream with the same salvage-mode contract
    as {!Tracefile.read}: malformed lines are resynchronization points in
    the default mode and a typed {!Tracefile.corruption} under [~strict].

    {b Line grammar} (whitespace separated; blank lines and [#] comments
    ignored):

    - [<site> <addr> <kind> \[<width>\] \[sys\]] — one access. [site] and
      [addr] are hexadecimal (optional [0x] prefix); [kind] is
      [r]/[rd]/[read] or [w]/[wr]/[write]; [width] defaults to 4 bytes;
      a trailing [sys] marks a system-library access.
    - [<loop> <ckind>] — one checkpoint. [loop] is decimal; [ckind] is
      [loop_enter], [body_enter], [body_exit] or [loop_exit]. Logs
      without checkpoint lines still import, but Algorithm 2 then sees a
      loop-free stream and Step 4 purges everything — the paper's own
      requirement that the simulator emit the instrumented checkpoints. *)

(** [parse_line s] classifies one log line. [Ok None] for blank/comment
    lines; [Error reason] for malformed ones (never raises). *)
val parse_line : string -> (Event.event option, string) result

(** [read ?strict path] parses a whole log file. Salvage mode (default)
    skips malformed lines, counting each skipped run as a resync with its
    byte offset and reason sampled into
    {!Tracefile.salvage.first_errors}; [~strict:true] stops at the first
    malformed line and returns it as a {!Tracefile.corruption}. *)
val read :
  ?strict:bool ->
  string ->
  (Event.event array * Tracefile.salvage, Tracefile.corruption) result
