open Foray_util

type site_info = {
  site : int;
  accesses : int;
  reads : int;
  writes : int;
  footprint : Iset.t;
  sys : bool;
}

type cell = {
  mutable accesses : int;
  mutable reads : int;
  mutable writes : int;
  mutable footprint : Iset.t;
  mutable sys : bool;
}

(* [total] is the union footprint over all sites, maintained incrementally
   in the sink (one O(log n) add_range per event) so [total_footprint] does
   not have to union every per-site set on each call. *)
type t = { cells : (int, cell) Hashtbl.t; mutable total : Iset.t }

let create () = { cells = Hashtbl.create 256; total = Iset.empty }

let sink (t : t) : Event.sink = function
  | Event.Checkpoint _ -> ()
  | Event.Access { site; addr; write; sys; width } ->
      let cell =
        match Hashtbl.find_opt t.cells site with
        | Some c -> c
        | None ->
            let c =
              { accesses = 0; reads = 0; writes = 0; footprint = Iset.empty; sys }
            in
            Hashtbl.add t.cells site c;
            c
      in
      cell.accesses <- cell.accesses + 1;
      if write then cell.writes <- cell.writes + 1 else cell.reads <- cell.reads + 1;
      cell.footprint <- Iset.add_range addr (addr + width) cell.footprint;
      t.total <- Iset.add_range addr (addr + width) t.total;
      if sys then cell.sys <- true

let merge (a : t) (b : t) =
  Hashtbl.iter
    (fun site (cb : cell) ->
      match Hashtbl.find_opt a.cells site with
      | Some ca ->
          ca.accesses <- ca.accesses + cb.accesses;
          ca.reads <- ca.reads + cb.reads;
          ca.writes <- ca.writes + cb.writes;
          ca.footprint <- Iset.union ca.footprint cb.footprint;
          ca.sys <- ca.sys || cb.sys
      | None -> Hashtbl.add a.cells site cb)
    b.cells;
  a.total <- Iset.union a.total b.total;
  a

let sites (t : t) =
  Hashtbl.fold
    (fun site (c : cell) acc ->
      {
        site;
        accesses = c.accesses;
        reads = c.reads;
        writes = c.writes;
        footprint = c.footprint;
        sys = c.sys;
      }
      :: acc)
    t.cells []
  |> List.sort (fun a b -> compare a.site b.site)

let n_sites t = Hashtbl.length t.cells

let total_accesses t =
  Hashtbl.fold (fun _ (c : cell) acc -> acc + c.accesses) t.cells 0

let total_footprint t = Iset.cardinal t.total

let group t ~classify =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (info : site_info) ->
      let label = classify info in
      let n, a, fp =
        match Hashtbl.find_opt tbl label with
        | Some x -> x
        | None -> (0, 0, Iset.empty)
      in
      Hashtbl.replace tbl label
        (n + 1, a + info.accesses, Iset.union fp info.footprint))
    (sites t);
  Hashtbl.fold (fun k (n, a, fp) acc -> (k, (n, a, Iset.cardinal fp)) :: acc) tbl []

let footprint_of t pred =
  let fp =
    List.fold_left
      (fun acc (info : site_info) ->
        if pred info then Foray_util.Iset.union acc info.footprint else acc)
      Foray_util.Iset.empty (sites t)
  in
  Foray_util.Iset.cardinal fp
