(** Trace files: persisting the profile for offline analysis.

    The paper's flow stores the (typically large) trace on disk between the
    simulator and the analyzer, unless the online mode is used. Two
    on-disk formats:

    - {b Text}: one {!Event.to_line} record per line — the human-readable
      Figure 4(c) format;
    - {b Binary}: a ["FORAYTR1"] magic followed by tag-byte +
      LEB128-varint records, roughly 4-6x smaller than text.

    Readers auto-detect the format from the magic and raise {!Corrupt} on
    malformed or truncated content — a binary stream may only end at a
    record boundary, so a file chopped mid-record fails loudly instead of
    silently losing its tail.

    When {!Foray_obs.Obs} collection is enabled, readers and writers
    report [trace.events_written], [trace.bytes_written], [trace.flushes]
    and [trace.events_read]. *)

type format = Text | Binary

(** Malformed trace content: bad record tag or checkpoint kind, a varint
    longer than 9 bytes, a binary stream truncated mid-record, or an
    unparseable text line. *)
exception Corrupt of string

(** [save ~format path events] writes a whole trace. The file is closed
    (buffered complete records flushed) even if serialization raises. *)
val save : format:format -> string -> Event.event list -> unit

(** [sink_to_file ~format path] opens a streaming writer. The returned
    sink appends events; call the close function when done (also flushes;
    idempotent). If the sink itself raises mid-event, it flushes the
    complete records buffered so far, closes the channel and re-raises —
    the channel is never leaked. Prefer {!with_sink} when the event
    producer may raise. *)
val sink_to_file : format:format -> string -> Event.sink * (unit -> unit)

(** [with_sink ~format path k] passes a streaming sink to [k] and
    guarantees flush-and-close on any exit, including exceptions raised by
    the event producer. *)
val with_sink : format:format -> string -> (Event.sink -> 'a) -> 'a

(** [load path] reads a whole trace, auto-detecting the format.
    @raise Corrupt on malformed content. *)
val load : string -> Event.event list

(** [fold path f init] streams the file through [f] without building a
    list — constant space for arbitrarily large traces.
    @raise Corrupt on malformed content. *)
val fold : string -> ('a -> Event.event -> 'a) -> 'a -> 'a

(** [iter path f] is [fold] for side effects; [f] is a sink, so an
    analyzer can be fed directly from a file. *)
val iter : string -> Event.sink -> unit

(** {1 Salvaging reader}

    {!load}/{!fold}/{!iter} are fail-fast. {!read} instead recovers what
    it can: on a corrupt record it scans forward to the next decodable
    record, counts the gap, and keeps feeding the sink — so a damaged
    trace still yields a best-effort partial model. This module is the
    only place that decides corrupt-handling policy; {!Event.of_line}
    merely reports. *)

(** First unrecoverable corruption in strict mode: byte [offset], damage
    [kind], events decoded before it. *)
type corruption = { offset : int; kind : string; events_before : int }

type salvage = {
  events : int;  (** events delivered to the sink *)
  resyncs : int;  (** corrupt regions skipped over *)
  bytes_skipped : int;
  truncated_tail : bool;  (** a corrupt region ran to end-of-file *)
  first_errors : (int * string) list;  (** first few (offset, kind) *)
}

(** A fully intact read: [events] delivered, nothing skipped. *)
val clean_salvage : int -> salvage

(** [read ?strict path sink] streams [path] (format auto-detected) into
    [sink]. Default salvage mode always returns [Ok]; [~strict:true]
    stops at the first corrupt record and returns it as a value — this
    API never raises {!Corrupt}. *)
val read : ?strict:bool -> string -> Event.sink -> (salvage, corruption) result

(** One-line summary of salvage statistics. *)
val salvage_to_string : salvage -> string

(** [read_events ?strict path] materializes the (salvaged) event stream of
    [path] as an array, for random access — the form {!shards} partitions.
    Same salvage policy as {!read}. *)
val read_events :
  ?strict:bool -> string -> (Event.event array * salvage, corruption) result

(** {1 Sharding}

    A stored trace can be analyzed in parallel by cutting it into
    context-complete chunks: each shard knows the loop stack the
    sequential analyzer would have at its first event, so a fresh
    {!Foray_core.Looptree} walker (see [Looptree.restore_context]) resumes
    exactly where the previous shard stops. Cuts are checkpoint-aligned —
    a shard never starts in the middle of an access burst — and computed
    by a single linear pre-pass that replays only the checkpoint stack. *)

type shard = {
  s_index : int;  (** 0-based shard number, in trace order *)
  s_start : int;  (** index of the shard's first event *)
  s_len : int;  (** number of events in the shard *)
  s_context : (int * int) list;
      (** [(lid, iter)] loop stack at [s_start], outermost first: the
          loops entered before this shard and still open, with their
          current iteration counters (-1: entered, body not yet begun) *)
}

(** [shards ~n events] cuts a trace into at most [n] contiguous shards
    covering it exactly ([s_start = 0] for the first; consecutive;
    [s_len]s sum to the length). Every shard after the first begins at a
    checkpoint event at-or-after its balanced boundary [i*total/n], so a
    trace with few checkpoints yields fewer (larger) shards; [n = 1] or
    an empty trace yields a single shard. Analyzing the shards
    independently and merging ([Looptree.merge], [Tstats.merge]) is
    bit-equivalent to the sequential pass.
    @raise Invalid_argument if [n < 1]. *)
val shards : n:int -> Event.event array -> shard list
