(** Trace files: persisting the profile for offline analysis.

    The paper's flow stores the (typically large) trace on disk between the
    simulator and the analyzer, unless the online mode is used. Three
    on-disk formats:

    - {b Text}: one {!Event.to_line} record per line — the human-readable
      Figure 4(c) format;
    - {b Binary}: a ["FORAYTR1"] magic followed by tag-byte +
      LEB128-varint records, roughly 4-6x smaller than text;
    - {b Binary2}: a ["FORAYTR2"] magic followed by fixed-header batch
      frames — per-frame site dictionaries, one-byte record heads and
      zigzag-delta-encoded addresses — built for zero-copy reading: the
      whole file is [Unix.map_file]'d and decoded straight out of the
      mapping ({!map}/{!iter_mapped}), and the frame index doubles as a
      shard cutter ({!frame_shards}) that never materializes an event
      array.

    Readers auto-detect the format from the magic and raise {!Corrupt} on
    malformed or truncated content — a binary stream may only end at a
    record boundary, so a file chopped mid-record fails loudly instead of
    silently losing its tail.

    When {!Foray_obs.Obs} collection is enabled, readers and writers
    report [trace.events_written], [trace.bytes_written], [trace.flushes],
    [trace.events_read], and for the v2 format [trace.frames_written],
    [trace.frames_read] and [trace.bytes_mapped]. *)

type format = Text | Binary | Binary2

(** Malformed trace content: bad record tag or checkpoint kind, a varint
    longer than 9 bytes, a binary stream truncated mid-record, a damaged
    v2 frame header, or an unparseable text line. *)
exception Corrupt of string

(** [save ~format path events] writes a whole trace. The file is closed
    (buffered complete records flushed) even if serialization raises.
    [?frame_events] sets the v2 frame-flush target (default 8192 events;
    ignored by the other formats) — frames flush early at the first
    checkpoint past the target, so smaller values force more
    checkpoint-aligned cut points for testing. *)
val save : ?frame_events:int -> format:format -> string -> Event.event list -> unit

(** [sink_to_file ~format path] opens a streaming writer. The returned
    sink appends events; call the close function when done (also flushes;
    idempotent). If the sink itself raises mid-event, it flushes the
    complete records buffered so far, closes the channel and re-raises —
    the channel is never leaked. Prefer {!with_sink} when the event
    producer may raise. *)
val sink_to_file :
  ?frame_events:int -> format:format -> string -> Event.sink * (unit -> unit)

(** [with_sink ~format path k] passes a streaming sink to [k] and
    guarantees flush-and-close on any exit, including exceptions raised by
    the event producer. *)
val with_sink :
  ?frame_events:int -> format:format -> string -> (Event.sink -> 'a) -> 'a

(** [load path] reads a whole trace, auto-detecting the format.
    @raise Corrupt on malformed content. *)
val load : string -> Event.event list

(** [fold path f init] streams the file through [f] without building a
    list — constant space for arbitrarily large traces. A v2 file is
    decoded through the zero-copy mapped reader.
    @raise Corrupt on malformed content. *)
val fold : string -> ('a -> Event.event -> 'a) -> 'a -> 'a

(** [iter path f] is [fold] for side effects; [f] is a sink, so an
    analyzer can be fed directly from a file. *)
val iter : string -> Event.sink -> unit

(** {1 Zero-copy mapped reader (v2)}

    A FORAYTR2 file decodes fastest through the mapping: {!map} validates
    every frame window against the file length once, and {!decode_frame}'s
    hot varint loop then runs on unchecked byte loads bounded by those
    windows. Nothing is copied — events are synthesized straight off the
    page cache into the sink. *)

(** An open mapping plus its validated frame index. The mapping lives
    until the value is collected; it is safe to share read-only across
    domains, so shard workers decode disjoint frame windows in parallel. *)
type mapped

(** [map path] maps a FORAYTR2 file and builds its frame index, checking
    every frame header, context and dictionary. Reports
    [trace.bytes_mapped].
    @raise Corrupt if [path] is not a well-formed FORAYTR2 file. *)
val map : string -> mapped

(** Total events in the mapping (sum of frame headers). *)
val mapped_events : mapped -> int

(** [iter_mapped m sink] decodes every frame in order — the sequential
    read. Reports [trace.frames_read]/[trace.events_read] per frame.
    @raise Corrupt if a frame body contradicts its validated header. *)
val iter_mapped : mapped -> Event.sink -> unit

(** [is_binary2 path] sniffs for the FORAYTR2 magic; total — unreadable
    or short files are simply [false]. *)
val is_binary2 : string -> bool

(** A shard of whole frames: decode with {!iter_fshard} after restoring
    [fs_context] (same form as {!shard}[.s_context]). *)
type fshard = {
  fs_index : int;  (** 0-based shard number, in trace order *)
  fs_frame : int;  (** index of the shard's first frame *)
  fs_frames : int;  (** number of frames in the shard *)
  fs_events : int;  (** events across those frames *)
  fs_context : (int * int) list;
      (** loop stack at the shard's first event, outermost first *)
}

(** [frame_shards ~n m] cuts the mapping into at most [n] contiguous
    frame runs covering it exactly, using only the frame index — no event
    decode. Every shard after the first starts at a cuttable frame (one
    whose first record is a checkpoint) at-or-after its balanced boundary,
    so like {!shards} a checkpoint-poor trace yields fewer shards.
    Analyzing the shards independently and merging is bit-equivalent to
    {!iter_mapped}.
    @raise Invalid_argument if [n < 1]. *)
val frame_shards : n:int -> mapped -> fshard list

(** [iter_fshard m fs sink] decodes one shard's frames into [sink]. *)
val iter_fshard : mapped -> fshard -> Event.sink -> unit

(** {1 Salvaging reader}

    {!load}/{!fold}/{!iter} are fail-fast. {!read} instead recovers what
    it can: on a corrupt record it scans forward to the next decodable
    record — for v2, to the next frame marker — counts the gap, and keeps
    feeding the sink — so a damaged trace still yields a best-effort
    partial model. This module is the only place that decides
    corrupt-handling policy; {!Event.of_line} merely reports. *)

(** First unrecoverable corruption in strict mode: byte [offset], damage
    [kind], events decoded before it. *)
type corruption = { offset : int; kind : string; events_before : int }

type salvage = {
  events : int;  (** events delivered to the sink *)
  resyncs : int;  (** corrupt regions skipped over *)
  bytes_skipped : int;
  truncated_tail : bool;  (** a corrupt region ran to end-of-file *)
  first_errors : (int * string) list;  (** first few (offset, kind) *)
}

(** A fully intact read: [events] delivered, nothing skipped. *)
val clean_salvage : int -> salvage

(** [read ?strict path sink] streams [path] (format auto-detected) into
    [sink]. Default salvage mode always returns [Ok]; [~strict:true]
    stops at the first corrupt record and returns it as a value — this
    API never raises {!Corrupt}. *)
val read : ?strict:bool -> string -> Event.sink -> (salvage, corruption) result

(** One-line summary of salvage statistics. *)
val salvage_to_string : salvage -> string

(** [read_events ?strict path] materializes the (salvaged) event stream of
    [path] as an array, for random access — the form {!shards} partitions.
    Same salvage policy as {!read}. *)
val read_events :
  ?strict:bool -> string -> (Event.event array * salvage, corruption) result

(** {1 Sharding}

    A stored trace can be analyzed in parallel by cutting it into
    context-complete chunks: each shard knows the loop stack the
    sequential analyzer would have at its first event, so a fresh
    {!Foray_core.Looptree} walker (see [Looptree.restore_context]) resumes
    exactly where the previous shard stops. Cuts are checkpoint-aligned —
    a shard never starts in the middle of an access burst — and computed
    by a single linear pre-pass that replays only the checkpoint stack.
    For v2 files prefer {!frame_shards}, which gets the same guarantee
    from the frame index without decoding events. *)

type shard = {
  s_index : int;  (** 0-based shard number, in trace order *)
  s_start : int;  (** index of the shard's first event *)
  s_len : int;  (** number of events in the shard *)
  s_context : (int * int) list;
      (** [(lid, iter)] loop stack at [s_start], outermost first: the
          loops entered before this shard and still open, with their
          current iteration counters (-1: entered, body not yet begun) *)
}

(** [shards ~n events] cuts a trace into at most [n] contiguous shards
    covering it exactly ([s_start = 0] for the first; consecutive;
    [s_len]s sum to the length). Every shard after the first begins at a
    checkpoint event at-or-after its balanced boundary [i*total/n], so a
    trace with few checkpoints yields fewer (larger) shards; [n = 1] or
    an empty trace yields a single shard. Analyzing the shards
    independently and merging ([Looptree.merge], [Tstats.merge]) is
    bit-equivalent to the sequential pass.
    @raise Invalid_argument if [n < 1]. *)
val shards : n:int -> Event.event array -> shard list
