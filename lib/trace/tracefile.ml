module Obs = Foray_obs.Obs
module Span = Foray_obs.Span

type format = Text | Binary

exception Corrupt of string

let () =
  Printexc.register_printer (function
    | Corrupt msg -> Some (Printf.sprintf "Tracefile.Corrupt(%S)" msg)
    | _ -> None)

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let magic = "FORAYTR1"

(* metrics: stream-level totals; zero-cost unless Obs collection is on *)
let m_events_written = Obs.counter "trace.events_written"
let m_bytes_written = Obs.counter "trace.bytes_written"
let m_flushes = Obs.counter "trace.flushes"
let m_events_read = Obs.counter "trace.events_read"

(* --- varints --------------------------------------------------------- *)

let write_varint buf n =
  if n < 0 then invalid_arg "Tracefile: negative varint";
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

exception Eof

let read_byte ic =
  match In_channel.input_char ic with
  | Some c -> Char.code c
  | None -> raise Eof

(* Nine 7-bit groups (shift 56) already cover every value [write_varint]
   can produce from a non-negative 63-bit int; a tenth continuation byte
   would shift by 63, where [lsl] is unspecified, so it can only come from
   corrupted input. *)
let rec varint_rest ic shift acc =
  let b = read_byte ic in
  let acc = acc lor ((b land 0x7f) lsl shift) in
  if b land 0x80 = 0 then acc
  else if shift >= 56 then corrupt "varint longer than 9 bytes"
  else varint_rest ic (shift + 7) acc

let read_varint ic =
  let b = read_byte ic in
  let acc = b land 0x7f in
  if b land 0x80 = 0 then acc else varint_rest ic 7 acc

(* --- binary records -------------------------------------------------- *)

(* tags: 0 = checkpoint, 1 = read, 2 = write; access flags bit0 = sys *)

let ckind_code = function
  | Event.Loop_enter -> 0
  | Event.Body_enter -> 1
  | Event.Body_exit -> 2
  | Event.Loop_exit -> 3

let ckind_of_code = function
  | 0 -> Event.Loop_enter
  | 1 -> Event.Body_enter
  | 2 -> Event.Body_exit
  | 3 -> Event.Loop_exit
  | n -> corrupt "bad checkpoint kind %d" n

let encode buf = function
  | Event.Checkpoint { loop; kind } ->
      write_varint buf 0;
      write_varint buf (ckind_code kind);
      write_varint buf loop
  | Event.Access { site; addr; write; sys; width } ->
      write_varint buf (if write then 2 else 1);
      write_varint buf (if sys then 1 else 0);
      write_varint buf site;
      write_varint buf addr;
      write_varint buf width

let decode_body ic tag =
  match tag with
  | 0 ->
      let kind = ckind_of_code (read_varint ic) in
      let loop = read_varint ic in
      Event.Checkpoint { loop; kind }
  | 1 | 2 ->
      let sys = read_varint ic = 1 in
      let site = read_varint ic in
      let addr = read_varint ic in
      let width = read_varint ic in
      Event.Access { site; addr; write = tag = 2; sys; width }
  | n -> corrupt "bad record tag %d" n

(* [None] only at a clean record boundary; Eof anywhere inside a record is
   data loss and must not decode as a short-but-successful stream. *)
let decode_opt ic =
  match In_channel.input_char ic with
  | None -> None
  | Some c ->
      let e =
        try
          let b = Char.code c in
          let tag = if b land 0x80 = 0 then b else varint_rest ic 7 (b land 0x7f) in
          decode_body ic tag
        with Eof -> corrupt "binary trace truncated mid-record"
      in
      Some e

(* --- writers ---------------------------------------------------------- *)

(* Events accumulate in one persistent buffer that is blitted to the
   channel only when it passes [chunk] bytes — no per-event string
   allocation and no per-event channel call. [close] flushes the tail. *)
let chunk = 64 * 1024

let sink_to_file ~format path =
  let oc = Out_channel.open_bin path in
  let closed = ref false in
  let close_channel () =
    if not !closed then begin
      closed := true;
      Out_channel.close oc
    end
  in
  (try
     match format with
     | Binary -> Out_channel.output_string oc magic
     | Text -> ()
   with e ->
     close_channel ();
     raise e);
  let buf = Buffer.create (2 * chunk) in
  let flush () =
    Obs.add m_bytes_written (Buffer.length buf);
    Obs.incr m_flushes;
    if Span.enabled () then
      Span.instant ~cat:"trace" "trace.flush"
        ~args:[ ("bytes", string_of_int (Buffer.length buf)) ];
    Buffer.output_buffer oc buf;
    Buffer.clear buf
  in
  let sink e =
    if !closed then invalid_arg "Tracefile: sink used after close";
    (* If encoding or the channel write fails mid-event, flush the whole
       records buffered so far (dropping the partial one) and release the
       channel instead of leaking it. *)
    let mark = Buffer.length buf in
    try
      (match format with
      | Text ->
          Buffer.add_string buf (Event.to_line e);
          Buffer.add_char buf '\n'
      | Binary -> encode buf e);
      Obs.incr m_events_written;
      if Buffer.length buf >= chunk then flush ()
    with ex ->
      Buffer.truncate buf mark;
      (try flush () with _ -> ());
      close_channel ();
      raise ex
  in
  ( sink,
    fun () ->
      if not !closed then begin
        (try flush ()
         with e ->
           close_channel ();
           raise e);
        close_channel ()
      end )

let save ~format path events =
  let sink, close = sink_to_file ~format path in
  Fun.protect ~finally:close (fun () -> List.iter sink events)

let with_sink ~format path k =
  let sink, close = sink_to_file ~format path in
  Fun.protect ~finally:close (fun () -> k sink)

(* --- readers ---------------------------------------------------------- *)

let with_reader path k =
  let ic = In_channel.open_bin path in
  Fun.protect ~finally:(fun () -> In_channel.close ic) (fun () ->
      match In_channel.really_input_string ic (String.length magic) with
      | Some head when head = magic -> k (`Binary ic)
      | _ ->
          In_channel.seek ic 0L;
          k (`Text ic))

let fold path f init =
  Span.with_span ~cat:"trace" "trace.read"
    ~args:[ ("path", Filename.basename path) ]
  @@ fun () ->
  with_reader path (function
    | `Binary ic ->
        let acc = ref init in
        let continue = ref true in
        while !continue do
          match decode_opt ic with
          | None -> continue := false
          | Some e ->
              Obs.incr m_events_read;
              acc := f !acc e
        done;
        !acc
    | `Text ic ->
        let acc = ref init in
        let lineno = ref 0 in
        let continue = ref true in
        while !continue do
          match In_channel.input_line ic with
          | None -> continue := false
          | Some line ->
              Stdlib.incr lineno;
              if String.trim line <> "" then begin
                let e =
                  match Event.of_line line with
                  | Ok e -> e
                  | Error msg -> corrupt "line %d: %s" !lineno msg
                in
                Obs.incr m_events_read;
                acc := f !acc e
              end
        done;
        !acc)

let iter path (sink : Event.sink) = fold path (fun () e -> sink e) ()

let load path = List.rev (fold path (fun acc e -> e :: acc) [])

(* --- salvaging reader -------------------------------------------------- *)

(* The readers above are fail-fast: the first malformed record raises
   {!Corrupt}. [read] instead treats a trace as evidence to be recovered:
   on a bad record it scans forward to the next byte position where a
   record decodes again, counts the gap, and keeps going — the analyzers
   downstream already tolerate partial information (partial affine forms,
   threshold purging), so a damaged trace yields a best-effort model
   instead of nothing. [~strict:true] restores fail-fast behaviour but as
   a typed value, never an exception. *)

type corruption = { offset : int; kind : string; events_before : int }

type salvage = {
  events : int;
  resyncs : int;
  bytes_skipped : int;
  truncated_tail : bool;
  first_errors : (int * string) list;
}

let clean_salvage events =
  {
    events;
    resyncs = 0;
    bytes_skipped = 0;
    truncated_tail = false;
    first_errors = [];
  }

let max_recorded_errors = 8

(* String-based binary record decoder, so resynchronization can retry at
   an arbitrary byte offset (the channel decoder above cannot rewind). *)

let decode_varint_at s pos =
  let len = String.length s in
  let rec go p shift acc =
    if p >= len then Error "varint truncated"
    else
      let b = Char.code s.[p] in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then Ok (acc, p + 1)
      else if shift >= 56 then Error "varint longer than 9 bytes"
      else go (p + 1) (shift + 7) acc
  in
  go pos 0 0

let decode_event_at s pos =
  let ( let* ) = Result.bind in
  let* tag, pos = decode_varint_at s pos in
  match tag with
  | 0 ->
      let* kind, pos = decode_varint_at s pos in
      let* kind =
        match kind with
        | 0 -> Ok Event.Loop_enter
        | 1 -> Ok Event.Body_enter
        | 2 -> Ok Event.Body_exit
        | 3 -> Ok Event.Loop_exit
        | n -> Error (Printf.sprintf "bad checkpoint kind %d" n)
      in
      let* loop, pos = decode_varint_at s pos in
      Ok (Event.Checkpoint { loop; kind }, pos)
  | 1 | 2 ->
      let* sys, pos = decode_varint_at s pos in
      let* site, pos = decode_varint_at s pos in
      let* addr, pos = decode_varint_at s pos in
      let* width, pos = decode_varint_at s pos in
      Ok
        ( Event.Access { site; addr; write = tag = 2; sys = sys = 1; width },
          pos )
  | n -> Error (Printf.sprintf "bad record tag %d" n)

let read_all path =
  let ic = In_channel.open_bin path in
  Fun.protect
    ~finally:(fun () -> In_channel.close ic)
    (fun () -> In_channel.input_all ic)

let read_binary_salvage ~strict s (sink : Event.sink) =
  let len = String.length s in
  let pos = ref (String.length magic) in
  let events = ref 0 in
  let resyncs = ref 0 in
  let skipped = ref 0 in
  let truncated = ref false in
  let errors = ref [] in
  let stop = ref None in
  while !stop = None && !pos < len do
    match decode_event_at s !pos with
    | Ok (e, next) ->
        sink e;
        Obs.incr m_events_read;
        incr events;
        pos := next
    | Error kind ->
        if strict then
          stop := Some { offset = !pos; kind; events_before = !events }
        else begin
          if List.length !errors < max_recorded_errors then
            errors := (!pos, kind) :: !errors;
          let gap_start = !pos in
          Stdlib.incr pos;
          let continue = ref true in
          while !continue && !pos < len do
            match decode_event_at s !pos with
            | Ok _ -> continue := false
            | Error _ -> Stdlib.incr pos
          done;
          if !pos >= len then truncated := true;
          Stdlib.incr resyncs;
          skipped := !skipped + (!pos - gap_start)
        end
  done;
  match !stop with
  | Some c -> Error c
  | None ->
      Ok
        {
          events = !events;
          resyncs = !resyncs;
          bytes_skipped = !skipped;
          truncated_tail = !truncated;
          first_errors = List.rev !errors;
        }

let read_text_salvage ~strict s (sink : Event.sink) =
  let events = ref 0 in
  let resyncs = ref 0 in
  let skipped = ref 0 in
  let errors = ref [] in
  let stop = ref None in
  let in_gap = ref false in
  let offset = ref 0 in
  let lines = String.split_on_char '\n' s in
  List.iter
    (fun line ->
      let line_off = !offset in
      offset := !offset + String.length line + 1;
      if !stop = None && String.trim line <> "" then
        match Event.of_line line with
        | Ok e ->
            in_gap := false;
            sink e;
            Obs.incr m_events_read;
            incr events
        | Error kind ->
            if strict then
              stop := Some { offset = line_off; kind; events_before = !events }
            else begin
              if List.length !errors < max_recorded_errors then
                errors := (line_off, kind) :: !errors;
              if not !in_gap then Stdlib.incr resyncs;
              in_gap := true;
              skipped := !skipped + String.length line + 1
            end)
    lines;
  match !stop with
  | Some c -> Error c
  | None ->
      Ok
        {
          events = !events;
          resyncs = !resyncs;
          bytes_skipped = !skipped;
          truncated_tail = false;
          first_errors = List.rev !errors;
        }

let read ?(strict = false) path (sink : Event.sink) =
  Span.with_span ~cat:"trace" "trace.read_salvage"
    ~args:[ ("path", Filename.basename path) ]
  @@ fun () ->
  let s = read_all path in
  if
    String.length s >= String.length magic
    && String.sub s 0 (String.length magic) = magic
  then read_binary_salvage ~strict s sink
  else read_text_salvage ~strict s sink

let salvage_to_string (s : salvage) =
  Printf.sprintf
    "%d event(s) salvaged, %d resync(s), %d byte(s) skipped%s" s.events
    s.resyncs s.bytes_skipped
    (if s.truncated_tail then ", truncated tail" else "")

let read_events ?strict path =
  let sink, events = Event.collector () in
  match read ?strict path sink with
  | Ok salvage -> Ok (Array.of_list (events ()), salvage)
  | Error _ as e -> e

(* --- sharding ----------------------------------------------------------- *)

type shard = {
  s_index : int;
  s_start : int;
  s_len : int;
  s_context : (int * int) list;
}

let shards ~n events =
  if n < 1 then invalid_arg "Tracefile.shards: n must be >= 1";
  let total = Array.length events in
  (* A mini-walker mirroring Looptree.sink's stack transitions exactly —
     including the defensive mismatch paths for break/continue/return and
     malformed checkpoints — so the context captured at a cut puts a fresh
     walker in precisely the state the sequential walker had there. The
     stack is innermost-first; the bottom element is the root sentinel
     (lid 0), which like the root node can match but never pops. *)
  let stack = ref [ (0, -1) ] in
  let pop_to loop =
    let rec go = function
      | [ _ ] as bottom -> bottom
      | ((l, _) :: _) as s when l = loop -> s
      | _ :: tl -> go tl
      | [] -> assert false
    in
    stack := go !stack
  in
  let apply = function
    | Event.Access _ -> ()
    | Event.Checkpoint { loop; kind } -> (
        match kind with
        | Event.Loop_enter -> stack := (loop, -1) :: !stack
        | Event.Body_enter -> (
            pop_to loop;
            match !stack with
            | (l, it) :: tl when l = loop -> stack := (l, it + 1) :: tl
            | s -> stack := (loop, -1) :: s)
        | Event.Body_exit -> pop_to loop
        | Event.Loop_exit -> (
            pop_to loop;
            match !stack with
            | (l, _) :: (_ :: _ as tl) when l = loop -> stack := tl
            | _ -> ()))
  in
  let cuts = ref [] (* (start index, context), newest first *) in
  let next = ref 1 in
  for idx = 0 to total - 1 do
    (if !next < n && idx > 0 && idx >= !next * total / n then
       match events.(idx) with
       | Event.Checkpoint _ ->
           (* Outermost first, sentinel dropped. *)
           let ctx =
             match List.rev !stack with _ :: outer -> outer | [] -> []
           in
           cuts := (idx, ctx) :: !cuts;
           (* One cut satisfies every boundary target passed so far; a
              checkpoint-poor trace therefore yields fewer shards. *)
           while !next < n && idx >= !next * total / n do
             incr next
           done
       | Event.Access _ -> ());
    apply events.(idx)
  done;
  let starts = Array.of_list ((0, []) :: List.rev !cuts) in
  Array.to_list
    (Array.mapi
       (fun i (s_start, s_context) ->
         let stop =
           if i + 1 < Array.length starts then fst starts.(i + 1) else total
         in
         { s_index = i; s_start; s_len = stop - s_start; s_context })
       starts)
