type format = Text | Binary

let magic = "FORAYTR1"

(* --- varints --------------------------------------------------------- *)

let write_varint buf n =
  if n < 0 then invalid_arg "Tracefile: negative varint";
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

exception Eof

let read_byte ic =
  match In_channel.input_char ic with
  | Some c -> Char.code c
  | None -> raise Eof

let read_varint ic =
  let rec go shift acc =
    let b = read_byte ic in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

(* --- binary records -------------------------------------------------- *)

(* tags: 0 = checkpoint, 1 = read, 2 = write; access flags bit0 = sys *)

let ckind_code = function
  | Event.Loop_enter -> 0
  | Event.Body_enter -> 1
  | Event.Body_exit -> 2
  | Event.Loop_exit -> 3

let ckind_of_code = function
  | 0 -> Event.Loop_enter
  | 1 -> Event.Body_enter
  | 2 -> Event.Body_exit
  | 3 -> Event.Loop_exit
  | n -> failwith (Printf.sprintf "Tracefile: bad checkpoint kind %d" n)

let encode buf = function
  | Event.Checkpoint { loop; kind } ->
      write_varint buf 0;
      write_varint buf (ckind_code kind);
      write_varint buf loop
  | Event.Access { site; addr; write; sys; width } ->
      write_varint buf (if write then 2 else 1);
      write_varint buf (if sys then 1 else 0);
      write_varint buf site;
      write_varint buf addr;
      write_varint buf width

let decode ic =
  let tag = read_varint ic in
  match tag with
  | 0 ->
      let kind = ckind_of_code (read_varint ic) in
      let loop = read_varint ic in
      Event.Checkpoint { loop; kind }
  | 1 | 2 ->
      let sys = read_varint ic = 1 in
      let site = read_varint ic in
      let addr = read_varint ic in
      let width = read_varint ic in
      Event.Access { site; addr; write = tag = 2; sys; width }
  | n -> failwith (Printf.sprintf "Tracefile: bad record tag %d" n)

(* --- writers ---------------------------------------------------------- *)

(* Events accumulate in one persistent buffer that is blitted to the
   channel only when it passes [chunk] bytes — no per-event string
   allocation and no per-event channel call. [close] flushes the tail. *)
let chunk = 64 * 1024

let sink_to_file ~format path =
  let oc = Out_channel.open_bin path in
  (match format with
  | Binary -> Out_channel.output_string oc magic
  | Text -> ());
  let buf = Buffer.create (2 * chunk) in
  let flush () =
    Buffer.output_buffer oc buf;
    Buffer.clear buf
  in
  let sink e =
    (match format with
    | Text ->
        Buffer.add_string buf (Event.to_line e);
        Buffer.add_char buf '\n'
    | Binary -> encode buf e);
    if Buffer.length buf >= chunk then flush ()
  in
  ( sink,
    fun () ->
      flush ();
      Out_channel.close oc )

let save ~format path events =
  let sink, close = sink_to_file ~format path in
  List.iter sink events;
  close ()

(* --- readers ---------------------------------------------------------- *)

let with_reader path k =
  let ic = In_channel.open_bin path in
  Fun.protect ~finally:(fun () -> In_channel.close ic) (fun () ->
      match In_channel.really_input_string ic (String.length magic) with
      | Some head when head = magic -> k (`Binary ic)
      | _ ->
          In_channel.seek ic 0L;
          k (`Text ic))

let fold path f init =
  with_reader path (function
    | `Binary ic ->
        let acc = ref init in
        (try
           while true do
             acc := f !acc (decode ic)
           done
         with Eof -> ());
        !acc
    | `Text ic ->
        let acc = ref init in
        let continue = ref true in
        while !continue do
          match In_channel.input_line ic with
          | None -> continue := false
          | Some line ->
              if String.trim line <> "" then acc := f !acc (Event.of_line line)
        done;
        !acc)

let iter path (sink : Event.sink) = fold path (fun () e -> sink e) ()

let load path = List.rev (fold path (fun acc e -> e :: acc) [])
