module Obs = Foray_obs.Obs
module Span = Foray_obs.Span

type format = Text | Binary | Binary2

exception Corrupt of string

let () =
  Printexc.register_printer (function
    | Corrupt msg -> Some (Printf.sprintf "Tracefile.Corrupt(%S)" msg)
    | _ -> None)

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let magic = "FORAYTR1"
let magic2 = "FORAYTR2"

(* Each FORAYTR2 frame opens with its own 4-byte marker so a salvaging
   reader can resynchronize on frame boundaries; 0xf7 keeps it out of
   7-bit varint payload bytes most of the time. *)
let frame_magic = "\xf7FR2"

let default_frame_events = 8192

(* metrics: stream-level totals; zero-cost unless Obs collection is on *)
let m_events_written = Obs.counter "trace.events_written"
let m_bytes_written = Obs.counter "trace.bytes_written"
let m_flushes = Obs.counter "trace.flushes"
let m_events_read = Obs.counter "trace.events_read"
let m_frames_written = Obs.counter "trace.frames_written"
let m_frames_read = Obs.counter "trace.frames_read"
let m_bytes_mapped = Obs.counter "trace.bytes_mapped"

(* --- varints --------------------------------------------------------- *)

let write_varint buf n =
  if n < 0 then invalid_arg "Tracefile: negative varint";
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

exception Eof

let read_byte ic =
  match In_channel.input_char ic with
  | Some c -> Char.code c
  | None -> raise Eof

(* Nine 7-bit groups (shift 56) already cover every value [write_varint]
   can produce from a non-negative 63-bit int; a tenth continuation byte
   would shift by 63, where [lsl] is unspecified, so it can only come from
   corrupted input. *)
let rec varint_rest ic shift acc =
  let b = read_byte ic in
  let acc = acc lor ((b land 0x7f) lsl shift) in
  if b land 0x80 = 0 then acc
  else if shift >= 56 then corrupt "varint longer than 9 bytes"
  else varint_rest ic (shift + 7) acc

let read_varint ic =
  let b = read_byte ic in
  let acc = b land 0x7f in
  if b land 0x80 = 0 then acc else varint_rest ic 7 acc

(* Address deltas are signed; zigzag folds the sign into bit 0 so small
   negative strides stay one byte. *)
let zigzag d = (d lsl 1) lxor (d asr 62)
let unzigzag v = (v lsr 1) lxor (-(v land 1))

let add_u32 buf n =
  Buffer.add_char buf (Char.unsafe_chr (n land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((n lsr 24) land 0xff))

(* --- binary records (v1) --------------------------------------------- *)

(* tags: 0 = checkpoint, 1 = read, 2 = write; access flags bit0 = sys *)

let ckind_code = function
  | Event.Loop_enter -> 0
  | Event.Body_enter -> 1
  | Event.Body_exit -> 2
  | Event.Loop_exit -> 3

let ckind_of_code = function
  | 0 -> Event.Loop_enter
  | 1 -> Event.Body_enter
  | 2 -> Event.Body_exit
  | 3 -> Event.Loop_exit
  | n -> corrupt "bad checkpoint kind %d" n

let encode buf = function
  | Event.Checkpoint { loop; kind } ->
      write_varint buf 0;
      write_varint buf (ckind_code kind);
      write_varint buf loop
  | Event.Access { site; addr; write; sys; width } ->
      write_varint buf (if write then 2 else 1);
      write_varint buf (if sys then 1 else 0);
      write_varint buf site;
      write_varint buf addr;
      write_varint buf width

let decode_body ic tag =
  match tag with
  | 0 ->
      let kind = ckind_of_code (read_varint ic) in
      let loop = read_varint ic in
      Event.Checkpoint { loop; kind }
  | 1 | 2 ->
      let sys = read_varint ic = 1 in
      let site = read_varint ic in
      let addr = read_varint ic in
      let width = read_varint ic in
      Event.Access { site; addr; write = tag = 2; sys; width }
  | n -> corrupt "bad record tag %d" n

(* [None] only at a clean record boundary; Eof anywhere inside a record is
   data loss and must not decode as a short-but-successful stream. *)
let decode_opt ic =
  match In_channel.input_char ic with
  | None -> None
  | Some c ->
      let e =
        try
          let b = Char.code c in
          let tag = if b land 0x80 = 0 then b else varint_rest ic 7 (b land 0x7f) in
          decode_body ic tag
        with Eof -> corrupt "binary trace truncated mid-record"
      in
      Some e

(* --- cut walker -------------------------------------------------------- *)

(* A mini-walker mirroring Looptree.sink's stack transitions exactly —
   including the defensive mismatch paths for break/continue/return and
   malformed checkpoints — so a context captured at any point puts a fresh
   walker in precisely the state the sequential walker had there. The
   stack is innermost-first; the bottom element is the root sentinel
   (lid 0), which like the root node can match but never pops. Shared by
   the v1 array sharder and the v2 frame encoder, which stamps each
   frame with the walker state before its first event. *)

type cutwalker = { mutable cw_stack : (int * int) list }

let cutwalker () = { cw_stack = [ (0, -1) ] }

(* Outermost first, sentinel dropped — the [restore_context] form. *)
let cutwalker_context w =
  match List.rev w.cw_stack with _ :: outer -> outer | [] -> []

let cutwalker_step w = function
  | Event.Access _ -> ()
  | Event.Checkpoint { loop; kind } -> (
      let pop_to loop =
        let rec go = function
          | [ _ ] as bottom -> bottom
          | ((l, _) :: _) as s when l = loop -> s
          | _ :: tl -> go tl
          | [] -> assert false
        in
        w.cw_stack <- go w.cw_stack
      in
      match kind with
      | Event.Loop_enter -> w.cw_stack <- (loop, -1) :: w.cw_stack
      | Event.Body_enter -> (
          pop_to loop;
          match w.cw_stack with
          | (l, it) :: tl when l = loop -> w.cw_stack <- (l, it + 1) :: tl
          | s -> w.cw_stack <- (loop, -1) :: s)
      | Event.Body_exit -> pop_to loop
      | Event.Loop_exit -> (
          pop_to loop;
          match w.cw_stack with
          | (l, _) :: (_ :: _ as tl) when l = loop -> w.cw_stack <- tl
          | _ -> ()))

(* --- writers ---------------------------------------------------------- *)

(* Events accumulate in one persistent buffer that is blitted to the
   channel only when it passes [chunk] bytes — no per-event string
   allocation and no per-event channel call. [close] flushes the tail. *)
let chunk = 64 * 1024

let sink_to_file ?(frame_events = default_frame_events) ~format path =
  if frame_events < 1 then invalid_arg "Tracefile: frame_events must be >= 1";
  let oc = Out_channel.open_bin path in
  let closed = ref false in
  let close_channel () =
    if not !closed then begin
      closed := true;
      Out_channel.close oc
    end
  in
  (try
     match format with
     | Binary -> Out_channel.output_string oc magic
     | Binary2 -> Out_channel.output_string oc magic2
     | Text -> ()
   with e ->
     close_channel ();
     raise e);
  let buf = Buffer.create (2 * chunk) in
  let flush () =
    Obs.add m_bytes_written (Buffer.length buf);
    Obs.incr m_flushes;
    if Span.enabled () then
      Span.instant ~cat:"trace" "trace.flush"
        ~args:[ ("bytes", string_of_int (Buffer.length buf)) ];
    Buffer.output_buffer oc buf;
    Buffer.clear buf
  in
  match format with
  | Text | Binary ->
      let sink e =
        if !closed then invalid_arg "Tracefile: sink used after close";
        (* If encoding or the channel write fails mid-event, flush the whole
           records buffered so far (dropping the partial one) and release the
           channel instead of leaking it. *)
        let mark = Buffer.length buf in
        try
          (match format with
          | Text ->
              Buffer.add_string buf (Event.to_line e);
              Buffer.add_char buf '\n'
          | Binary | Binary2 -> encode buf e);
          Obs.incr m_events_written;
          if Buffer.length buf >= chunk then flush ()
        with ex ->
          Buffer.truncate buf mark;
          (try flush () with _ -> ());
          close_channel ();
          raise ex
      in
      ( sink,
        fun () ->
          if not !closed then begin
            (try flush ()
             with e ->
               close_channel ();
               raise e);
            close_channel ()
          end )
  | Binary2 ->
      (* Frame encoder. Records, the per-frame site dictionary and the
         per-site previous addresses build up incrementally (dictionary
         indices are assigned in insertion order, so record bytes can be
         emitted the moment an event arrives); the fixed-width header is
         known only at flush time, when counts are final. A frame flushes
         early on a checkpoint once it holds [frame_events] events — that
         frame boundary is then checkpoint-aligned and usable as a shard
         cut — and unconditionally at 4x that size so checkpoint-free
         access bursts cannot grow a frame without bound. *)
      let walker = cutwalker () in
      let records = Buffer.create chunk in
      let dict = Buffer.create 256 in
      let tbl = Hashtbl.create 64 in
      let prev = ref (Array.make 16 0) in
      let nsites = ref 0 in
      let nevents = ref 0 in
      let first_ck = ref false in
      let ctx = ref [] in
      let hard_limit = 4 * frame_events in
      let site_index site =
        match Hashtbl.find_opt tbl site with
        | Some i -> i
        | None ->
            let i = !nsites in
            Hashtbl.replace tbl site i;
            if i >= Array.length !prev then begin
              let a = Array.make (2 * Array.length !prev) 0 in
              Array.blit !prev 0 a 0 (Array.length !prev);
              prev := a
            end;
            !prev.(i) <- 0;
            nsites := i + 1;
            write_varint dict site;
            i
      in
      let flush_frame () =
        if !nevents > 0 then begin
          let cbuf = Buffer.create 64 in
          let n_ctx = List.length !ctx in
          List.iter
            (fun (lid, it) ->
              write_varint cbuf lid;
              write_varint cbuf (it + 1))
            !ctx;
          let body_len =
            Buffer.length cbuf + Buffer.length dict + Buffer.length records
          in
          Buffer.add_string buf frame_magic;
          add_u32 buf body_len;
          add_u32 buf !nevents;
          add_u32 buf n_ctx;
          add_u32 buf !nsites;
          add_u32 buf (if !first_ck then 1 else 0);
          Buffer.add_buffer buf cbuf;
          Buffer.add_buffer buf dict;
          Buffer.add_buffer buf records;
          Obs.incr m_frames_written;
          Buffer.clear records;
          Buffer.clear dict;
          Hashtbl.reset tbl;
          nsites := 0;
          nevents := 0;
          first_ck := false;
          ctx := [];
          if Buffer.length buf >= chunk then flush ()
        end
      in
      let encode2 = function
        | Event.Checkpoint { loop; kind } ->
            if loop < 0 then invalid_arg "Tracefile: negative loop id";
            let k = ckind_code kind in
            if loop < 15 then
              Buffer.add_char records (Char.chr ((loop lsl 4) lor (k lsl 2)))
            else begin
              Buffer.add_char records (Char.chr ((15 lsl 4) lor (k lsl 2)));
              write_varint records loop
            end
        | Event.Access { site; addr; write; sys; width } ->
            if site < 0 then invalid_arg "Tracefile: negative site";
            if addr < 0 then invalid_arg "Tracefile: negative address";
            if width < 0 then invalid_arg "Tracefile: negative width";
            let tag = if write then 2 else 1 in
            let wcode = match width with 1 -> 1 | 4 -> 2 | 8 -> 3 | _ -> 0 in
            let si = site_index site in
            let d = addr - !prev.(si) in
            let z = zigzag d in
            if z < 0 then invalid_arg "Tracefile: address delta overflow";
            (* validation done — nothing below can raise, so a failing
               event never leaves half a record in the frame *)
            let sfield = if si < 7 then si else 7 in
            let head =
              tag lor (if sys then 4 else 0) lor (wcode lsl 3) lor (sfield lsl 5)
            in
            Buffer.add_char records (Char.chr head);
            if wcode = 0 then write_varint records width;
            if sfield = 7 then write_varint records si;
            !prev.(si) <- addr;
            write_varint records z
      in
      let sink e =
        if !closed then invalid_arg "Tracefile: sink used after close";
        (match e with
        | Event.Checkpoint _ when !nevents >= frame_events -> flush_frame ()
        | _ when !nevents >= hard_limit -> flush_frame ()
        | _ -> ());
        try
          if !nevents = 0 then begin
            ctx := cutwalker_context walker;
            first_ck := (match e with Event.Checkpoint _ -> true | _ -> false)
          end;
          encode2 e;
          nevents := !nevents + 1;
          Obs.incr m_events_written;
          cutwalker_step walker e
        with ex ->
          (try
             flush_frame ();
             flush ()
           with _ -> ());
          close_channel ();
          raise ex
      in
      ( sink,
        fun () ->
          if not !closed then begin
            (try
               flush_frame ();
               flush ()
             with e ->
               close_channel ();
               raise e);
            close_channel ()
          end )

let save ?frame_events ~format path events =
  let sink, close = sink_to_file ?frame_events ~format path in
  Fun.protect ~finally:close (fun () -> List.iter sink events)

let with_sink ?frame_events ~format path k =
  let sink, close = sink_to_file ?frame_events ~format path in
  Fun.protect ~finally:close (fun () -> k sink)

(* --- zero-copy mapped reader (v2) -------------------------------------- *)

type v2_frame = {
  f_payload : int;
  f_end : int;
  f_events : int;
  f_before : int;
  f_ctx : (int * int) list;
  f_sites : int array;
  f_cuttable : bool;
}

type mapped = {
  m_buf : (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t;
  m_frames : v2_frame array;
  m_events : int;
}

let mapped_events m = m.m_events

(* Safe-access varint used by the (cold) frame-index pass. *)
let bva buf pos limit =
  let rec go p shift acc =
    if p >= limit then corrupt "v2 frame: truncated varint"
    else
      let b = Char.code (Bigarray.Array1.get buf p) in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then (acc, p + 1)
      else if shift >= 56 then corrupt "varint longer than 9 bytes"
      else go (p + 1) (shift + 7) acc
  in
  go pos 0 0

let get_u32 buf pos =
  Char.code (Bigarray.Array1.get buf pos)
  lor (Char.code (Bigarray.Array1.get buf (pos + 1)) lsl 8)
  lor (Char.code (Bigarray.Array1.get buf (pos + 2)) lsl 16)
  lor (Char.code (Bigarray.Array1.get buf (pos + 3)) lsl 24)

let frame_magic_at buf pos =
  Bigarray.Array1.get buf pos = '\xf7'
  && Bigarray.Array1.get buf (pos + 1) = 'F'
  && Bigarray.Array1.get buf (pos + 2) = 'R'
  && Bigarray.Array1.get buf (pos + 3) = '2'

(* One linear pass over the headers builds the frame index: every frame
   window is validated against the mapped length here, which is what lets
   the per-record decode below use unchecked byte access — its cursor can
   never leave [f_payload, f_end) without tripping a bounds test against
   an already-trusted limit. *)
let map path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let size =
    match (Unix.fstat fd).Unix.st_size with
    | s -> s
    | exception e ->
        Unix.close fd;
        raise e
  in
  if size < String.length magic2 then begin
    Unix.close fd;
    corrupt "not a FORAYTR2 file (too short)"
  end;
  let g =
    match Unix.map_file fd Bigarray.char Bigarray.c_layout false [| size |] with
    | g ->
        Unix.close fd;
        g
    | exception e ->
        Unix.close fd;
        raise e
  in
  let buf = Bigarray.array1_of_genarray g in
  let head = String.init (String.length magic2) (Bigarray.Array1.get buf) in
  if head <> magic2 then corrupt "not a FORAYTR2 file (bad magic)";
  Obs.add m_bytes_mapped size;
  let frames = ref [] in
  let before = ref 0 in
  let pos = ref (String.length magic2) in
  while !pos < size do
    let p = !pos in
    if p + 24 > size then corrupt "truncated frame header at byte %d" p;
    if not (frame_magic_at buf p) then corrupt "bad frame magic at byte %d" p;
    let body_len = get_u32 buf (p + 4) in
    let n_events = get_u32 buf (p + 8) in
    let n_ctx = get_u32 buf (p + 12) in
    let n_sites = get_u32 buf (p + 16) in
    let flags = get_u32 buf (p + 20) in
    let fend = p + 24 + body_len in
    if fend > size then corrupt "frame at byte %d truncated (%d body bytes)" p body_len;
    if n_ctx * 2 > body_len then corrupt "frame at byte %d: oversized context" p;
    if n_sites > body_len then corrupt "frame at byte %d: oversized dictionary" p;
    if n_events > body_len then corrupt "frame at byte %d: oversized event count" p;
    let q = ref (p + 24) in
    let ctx = ref [] in
    for _ = 1 to n_ctx do
      let lid, q1 = bva buf !q fend in
      let it1, q2 = bva buf q1 fend in
      ctx := (lid, it1 - 1) :: !ctx;
      q := q2
    done;
    let sites = Array.make (max n_sites 1) 0 in
    for i = 0 to n_sites - 1 do
      let site, q1 = bva buf !q fend in
      sites.(i) <- site;
      q := q1
    done;
    frames :=
      {
        f_payload = !q;
        f_end = fend;
        f_events = n_events;
        f_before = !before;
        f_ctx = List.rev !ctx;
        f_sites = (if n_sites = 0 then [||] else sites);
        f_cuttable = flags land 1 = 1;
      }
      :: !frames;
    before := !before + n_events;
    pos := fend
  done;
  {
    m_buf = buf;
    m_frames = Array.of_list (List.rev !frames);
    m_events = !before;
  }

let decode_frame m f (sink : Event.sink) =
  let buf = m.m_buf in
  let limit = f.f_end in
  let sites = f.f_sites in
  let nsites = Array.length sites in
  let prev = Array.make (if nsites = 0 then 1 else nsites) 0 in
  let pos = ref f.f_payload in
  (* Unchecked byte access is bounded: every read first tests the cursor
     against [limit], which [map] proved lies inside the mapping. *)
  let rec varint_slow p shift acc =
    if p >= limit then corrupt "v2 frame: truncated varint"
    else begin
      let b = Char.code (Bigarray.Array1.unsafe_get buf p) in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then begin
        pos := p + 1;
        acc
      end
      else if shift >= 56 then corrupt "varint longer than 9 bytes"
      else varint_slow (p + 1) (shift + 7) acc
    end
  in
  let varint () =
    let p = !pos in
    if p >= limit then corrupt "v2 frame: truncated varint"
    else begin
      let b = Char.code (Bigarray.Array1.unsafe_get buf p) in
      if b < 0x80 then begin
        pos := p + 1;
        b
      end
      else varint_slow (p + 1) 7 (b land 0x7f)
    end
  in
  let count = ref 0 in
  while !pos < limit do
    let head = Char.code (Bigarray.Array1.unsafe_get buf !pos) in
    incr pos;
    let tag = head land 3 in
    if tag = 0 then begin
      let kind = ckind_of_code ((head lsr 2) land 3) in
      let loop = (head lsr 4) land 0xf in
      let loop = if loop = 15 then varint () else loop in
      incr count;
      sink (Event.Checkpoint { loop; kind })
    end
    else if tag = 3 then corrupt "v2 frame: bad record tag"
    else begin
      let sys = head land 4 <> 0 in
      let width =
        match (head lsr 3) land 3 with 0 -> varint () | 1 -> 1 | 2 -> 4 | _ -> 8
      in
      let si = (head lsr 5) land 7 in
      let si = if si = 7 then varint () else si in
      if si >= nsites then
        corrupt "v2 frame: site index %d outside dictionary of %d" si nsites;
      let delta = unzigzag (varint ()) in
      let addr = Array.unsafe_get prev si + delta in
      if addr < 0 then corrupt "v2 frame: negative address";
      Array.unsafe_set prev si addr;
      incr count;
      sink
        (Event.Access
           { site = Array.unsafe_get sites si; addr; write = tag = 2; sys; width })
    end
  done;
  if !count <> f.f_events then
    corrupt "v2 frame: %d record(s) decoded, header claims %d" !count f.f_events;
  Obs.incr m_frames_read;
  Obs.add m_events_read f.f_events

let iter_mapped m (sink : Event.sink) =
  Array.iter (fun f -> decode_frame m f sink) m.m_frames

(* --- frame-index sharding (v2) ----------------------------------------- *)

type fshard = {
  fs_index : int;
  fs_frame : int;
  fs_frames : int;
  fs_events : int;
  fs_context : (int * int) list;
}

let frame_shards ~n m =
  if n < 1 then invalid_arg "Tracefile.frame_shards: n must be >= 1";
  let total = m.m_events in
  let nf = Array.length m.m_frames in
  let cuts = ref [] in
  let next = ref 1 in
  for j = 1 to nf - 1 do
    let f = m.m_frames.(j) in
    if !next < n && f.f_cuttable && f.f_before >= !next * total / n then begin
      cuts := j :: !cuts;
      while !next < n && f.f_before >= !next * total / n do
        incr next
      done
    end
  done;
  let starts = Array.of_list (0 :: List.rev !cuts) in
  let events_before j = if j < nf then m.m_frames.(j).f_before else total in
  Array.to_list
    (Array.mapi
       (fun i s ->
         let stop =
           if i + 1 < Array.length starts then starts.(i + 1) else nf
         in
         {
           fs_index = i;
           fs_frame = s;
           fs_frames = stop - s;
           fs_events = events_before stop - events_before s;
           fs_context = (if s < nf then m.m_frames.(s).f_ctx else []);
         })
       starts)

let iter_fshard m fs (sink : Event.sink) =
  for j = fs.fs_frame to fs.fs_frame + fs.fs_frames - 1 do
    decode_frame m m.m_frames.(j) sink
  done

(* --- readers ---------------------------------------------------------- *)

let is_binary2 path =
  match In_channel.open_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> In_channel.close ic)
        (fun () ->
          match In_channel.really_input_string ic (String.length magic2) with
          | Some head -> head = magic2
          | None -> false)

let with_reader path k =
  let ic = In_channel.open_bin path in
  Fun.protect ~finally:(fun () -> In_channel.close ic) (fun () ->
      match In_channel.really_input_string ic (String.length magic) with
      | Some head when head = magic -> k (`Binary ic)
      | Some head when head = magic2 -> k `Binary2
      | _ ->
          In_channel.seek ic 0L;
          k (`Text ic))

let fold path f init =
  Span.with_span ~cat:"trace" "trace.read"
    ~args:[ ("path", Filename.basename path) ]
  @@ fun () ->
  with_reader path (function
    | `Binary2 ->
        let m = map path in
        let acc = ref init in
        iter_mapped m (fun e -> acc := f !acc e);
        !acc
    | `Binary ic ->
        let acc = ref init in
        let continue = ref true in
        while !continue do
          match decode_opt ic with
          | None -> continue := false
          | Some e ->
              Obs.incr m_events_read;
              acc := f !acc e
        done;
        !acc
    | `Text ic ->
        let acc = ref init in
        let lineno = ref 0 in
        let continue = ref true in
        while !continue do
          match In_channel.input_line ic with
          | None -> continue := false
          | Some line ->
              Stdlib.incr lineno;
              if String.trim line <> "" then begin
                let e =
                  match Event.of_line line with
                  | Ok e -> e
                  | Error msg -> corrupt "line %d: %s" !lineno msg
                in
                Obs.incr m_events_read;
                acc := f !acc e
              end
        done;
        !acc)

let iter path (sink : Event.sink) = fold path (fun () e -> sink e) ()

let load path = List.rev (fold path (fun acc e -> e :: acc) [])

(* --- salvaging reader -------------------------------------------------- *)

(* The readers above are fail-fast: the first malformed record raises
   {!Corrupt}. [read] instead treats a trace as evidence to be recovered:
   on a bad record it scans forward to the next byte position where a
   record decodes again (for v2, to the next frame marker), counts the
   gap, and keeps going — the analyzers downstream already tolerate
   partial information (partial affine forms, threshold purging), so a
   damaged trace yields a best-effort model instead of nothing.
   [~strict:true] restores fail-fast behaviour but as a typed value, never
   an exception. *)

type corruption = { offset : int; kind : string; events_before : int }

type salvage = {
  events : int;
  resyncs : int;
  bytes_skipped : int;
  truncated_tail : bool;
  first_errors : (int * string) list;
}

let clean_salvage events =
  {
    events;
    resyncs = 0;
    bytes_skipped = 0;
    truncated_tail = false;
    first_errors = [];
  }

let max_recorded_errors = 8

(* String-based binary record decoder, so resynchronization can retry at
   an arbitrary byte offset (the channel decoder above cannot rewind). *)

let decode_varint_at s pos =
  let len = String.length s in
  let rec go p shift acc =
    if p >= len then Error "varint truncated"
    else
      let b = Char.code (String.unsafe_get s p) in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then Ok (acc, p + 1)
      else if shift >= 56 then Error "varint longer than 9 bytes"
      else go (p + 1) (shift + 7) acc
  in
  go pos 0 0

let decode_event_at s pos =
  let ( let* ) = Result.bind in
  let* tag, pos = decode_varint_at s pos in
  match tag with
  | 0 ->
      let* kind, pos = decode_varint_at s pos in
      let* kind =
        match kind with
        | 0 -> Ok Event.Loop_enter
        | 1 -> Ok Event.Body_enter
        | 2 -> Ok Event.Body_exit
        | 3 -> Ok Event.Loop_exit
        | n -> Error (Printf.sprintf "bad checkpoint kind %d" n)
      in
      let* loop, pos = decode_varint_at s pos in
      Ok (Event.Checkpoint { loop; kind }, pos)
  | 1 | 2 ->
      let* sys, pos = decode_varint_at s pos in
      let* site, pos = decode_varint_at s pos in
      let* addr, pos = decode_varint_at s pos in
      let* width, pos = decode_varint_at s pos in
      Ok
        ( Event.Access { site; addr; write = tag = 2; sys = sys = 1; width },
          pos )
  | n -> Error (Printf.sprintf "bad record tag %d" n)

let read_all path =
  let ic = In_channel.open_bin path in
  Fun.protect
    ~finally:(fun () -> In_channel.close ic)
    (fun () -> In_channel.input_all ic)

let read_binary_salvage ~strict s (sink : Event.sink) =
  let len = String.length s in
  let pos = ref (String.length magic) in
  let events = ref 0 in
  let resyncs = ref 0 in
  let skipped = ref 0 in
  let truncated = ref false in
  let errors = ref [] in
  let stop = ref None in
  while !stop = None && !pos < len do
    match decode_event_at s !pos with
    | Ok (e, next) ->
        sink e;
        Obs.incr m_events_read;
        incr events;
        pos := next
    | Error kind ->
        if strict then
          stop := Some { offset = !pos; kind; events_before = !events }
        else begin
          if List.length !errors < max_recorded_errors then
            errors := (!pos, kind) :: !errors;
          let gap_start = !pos in
          Stdlib.incr pos;
          let continue = ref true in
          while !continue && !pos < len do
            match decode_event_at s !pos with
            | Ok _ -> continue := false
            | Error _ -> Stdlib.incr pos
          done;
          if !pos >= len then truncated := true;
          Stdlib.incr resyncs;
          skipped := !skipped + (!pos - gap_start)
        end
  done;
  match !stop with
  | Some c -> Error c
  | None ->
      Ok
        {
          events = !events;
          resyncs = !resyncs;
          bytes_skipped = !skipped;
          truncated_tail = !truncated;
          first_errors = List.rev !errors;
        }

(* --- v2 salvage: frame-by-frame with frame-marker resync --------------- *)

exception Fail2 of int * string

let fail2 off fmt = Printf.ksprintf (fun s -> raise (Fail2 (off, s))) fmt

let get_u32_s s pos =
  Char.code (String.unsafe_get s pos)
  lor (Char.code (String.unsafe_get s (pos + 1)) lsl 8)
  lor (Char.code (String.unsafe_get s (pos + 2)) lsl 16)
  lor (Char.code (String.unsafe_get s (pos + 3)) lsl 24)

let rec find_frame_magic s from =
  let len = String.length s in
  if from >= len then None
  else
    match String.index_from_opt s from '\xf7' with
    | None -> None
    | Some i ->
        if
          i + 4 <= len
          && s.[i + 1] = 'F'
          && s.[i + 2] = 'R'
          && s.[i + 3] = '2'
        then Some i
        else find_frame_magic s (i + 1)

(* Decode one frame at [pos], delivering events as they decode (a frame
   that dies halfway still contributed its prefix — salvage counts what
   reached the sink). Returns the frame end; raises {!Fail2} on damage.
   Every allocation is bounded by the validated [body_len], so a hostile
   header cannot make salvage blow up before the decode loop trips. *)
let salvage_v2_frame s pos (sink : Event.sink) events =
  let len = String.length s in
  if pos + 24 > len then fail2 pos "truncated frame header";
  if
    not
      (String.unsafe_get s pos = '\xf7'
      && s.[pos + 1] = 'F'
      && s.[pos + 2] = 'R'
      && s.[pos + 3] = '2')
  then fail2 pos "bad frame magic";
  let body_len = get_u32_s s (pos + 4) in
  let n_events = get_u32_s s (pos + 8) in
  let n_ctx = get_u32_s s (pos + 12) in
  let n_sites = get_u32_s s (pos + 16) in
  let fend = pos + 24 + body_len in
  if fend > len then fail2 pos "frame body truncated";
  if n_ctx * 2 > body_len then fail2 pos "oversized context";
  if n_sites > body_len then fail2 pos "oversized dictionary";
  if n_events > body_len then fail2 pos "oversized event count";
  let p = ref (pos + 24) in
  let varint () =
    let rec go q shift acc =
      if q >= fend then fail2 !p "varint truncated"
      else
        let b = Char.code (String.unsafe_get s q) in
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b land 0x80 = 0 then begin
          p := q + 1;
          acc
        end
        else if shift >= 56 then fail2 !p "varint longer than 9 bytes"
        else go (q + 1) (shift + 7) acc
    in
    go !p 0 0
  in
  for _ = 1 to n_ctx do
    ignore (varint ());
    ignore (varint ())
  done;
  let sites = Array.make (max n_sites 1) 0 in
  for i = 0 to n_sites - 1 do
    sites.(i) <- varint ()
  done;
  let prev = Array.make (max n_sites 1) 0 in
  let count = ref 0 in
  while !p < fend do
    let at = !p in
    let head = Char.code (String.unsafe_get s !p) in
    Stdlib.incr p;
    let tag = head land 3 in
    if tag = 0 then begin
      let kind =
        match (head lsr 2) land 3 with
        | 0 -> Event.Loop_enter
        | 1 -> Event.Body_enter
        | 2 -> Event.Body_exit
        | _ -> Event.Loop_exit
      in
      let loop = (head lsr 4) land 0xf in
      let loop = if loop = 15 then varint () else loop in
      sink (Event.Checkpoint { loop; kind });
      Obs.incr m_events_read;
      Stdlib.incr events;
      Stdlib.incr count
    end
    else if tag = 3 then fail2 at "bad record tag"
    else begin
      let sys = head land 4 <> 0 in
      let width =
        match (head lsr 3) land 3 with 0 -> varint () | 1 -> 1 | 2 -> 4 | _ -> 8
      in
      let si = (head lsr 5) land 7 in
      let si = if si = 7 then varint () else si in
      if si >= n_sites then fail2 at "site index outside dictionary";
      let delta = unzigzag (varint ()) in
      let addr = prev.(si) + delta in
      if addr < 0 then fail2 at "negative address";
      prev.(si) <- addr;
      sink
        (Event.Access { site = sites.(si); addr; write = tag = 2; sys; width });
      Obs.incr m_events_read;
      Stdlib.incr events;
      Stdlib.incr count
    end
  done;
  if !count <> n_events then
    fail2 pos "frame claims %d event(s), decoded %d" n_events !count;
  fend

let read_binary2_salvage ~strict s (sink : Event.sink) =
  let len = String.length s in
  let pos = ref (String.length magic2) in
  let events = ref 0 in
  let resyncs = ref 0 in
  let skipped = ref 0 in
  let truncated = ref false in
  let errors = ref [] in
  let stop = ref None in
  while !stop = None && !pos < len do
    match salvage_v2_frame s !pos sink events with
    | fend -> pos := fend
    | exception Fail2 (off, kind) ->
        if strict then
          stop := Some { offset = off; kind; events_before = !events }
        else begin
          if List.length !errors < max_recorded_errors then
            errors := (off, kind) :: !errors;
          (match find_frame_magic s (off + 1) with
          | Some q ->
              Stdlib.incr resyncs;
              skipped := !skipped + (q - off);
              pos := q
          | None ->
              truncated := true;
              skipped := !skipped + (len - off);
              pos := len)
        end
  done;
  match !stop with
  | Some c -> Error c
  | None ->
      Ok
        {
          events = !events;
          resyncs = !resyncs;
          bytes_skipped = !skipped;
          truncated_tail = !truncated;
          first_errors = List.rev !errors;
        }

let read_text_salvage ~strict s (sink : Event.sink) =
  let events = ref 0 in
  let resyncs = ref 0 in
  let skipped = ref 0 in
  let errors = ref [] in
  let stop = ref None in
  let in_gap = ref false in
  let offset = ref 0 in
  let lines = String.split_on_char '\n' s in
  List.iter
    (fun line ->
      let line_off = !offset in
      offset := !offset + String.length line + 1;
      if !stop = None && String.trim line <> "" then
        match Event.of_line line with
        | Ok e ->
            in_gap := false;
            sink e;
            Obs.incr m_events_read;
            incr events
        | Error kind ->
            if strict then
              stop := Some { offset = line_off; kind; events_before = !events }
            else begin
              if List.length !errors < max_recorded_errors then
                errors := (line_off, kind) :: !errors;
              if not !in_gap then Stdlib.incr resyncs;
              in_gap := true;
              skipped := !skipped + String.length line + 1
            end)
    lines;
  match !stop with
  | Some c -> Error c
  | None ->
      Ok
        {
          events = !events;
          resyncs = !resyncs;
          bytes_skipped = !skipped;
          truncated_tail = false;
          first_errors = List.rev !errors;
        }

let read ?(strict = false) path (sink : Event.sink) =
  Span.with_span ~cat:"trace" "trace.read_salvage"
    ~args:[ ("path", Filename.basename path) ]
  @@ fun () ->
  let s = read_all path in
  let has m =
    String.length s >= String.length m && String.sub s 0 (String.length m) = m
  in
  if has magic then read_binary_salvage ~strict s sink
  else if has magic2 then read_binary2_salvage ~strict s sink
  else read_text_salvage ~strict s sink

let salvage_to_string (s : salvage) =
  Printf.sprintf
    "%d event(s) salvaged, %d resync(s), %d byte(s) skipped%s" s.events
    s.resyncs s.bytes_skipped
    (if s.truncated_tail then ", truncated tail" else "")

let read_events ?strict path =
  let sink, events = Event.collector () in
  match read ?strict path sink with
  | Ok salvage -> Ok (Array.of_list (events ()), salvage)
  | Error _ as e -> e

(* --- sharding ----------------------------------------------------------- *)

type shard = {
  s_index : int;
  s_start : int;
  s_len : int;
  s_context : (int * int) list;
}

let shards ~n events =
  if n < 1 then invalid_arg "Tracefile.shards: n must be >= 1";
  let total = Array.length events in
  let w = cutwalker () in
  let cuts = ref [] (* (start index, context), newest first *) in
  let next = ref 1 in
  for idx = 0 to total - 1 do
    (if !next < n && idx > 0 && idx >= !next * total / n then
       match events.(idx) with
       | Event.Checkpoint _ ->
           cuts := (idx, cutwalker_context w) :: !cuts;
           (* One cut satisfies every boundary target passed so far; a
              checkpoint-poor trace therefore yields fewer shards. *)
           while !next < n && idx >= !next * total / n do
             incr next
           done
       | Event.Access _ -> ());
    cutwalker_step w events.(idx)
  done;
  let starts = Array.of_list ((0, []) :: List.rev !cuts) in
  Array.to_list
    (Array.mapi
       (fun i (s_start, s_context) ->
         let stop =
           if i + 1 < Array.length starts then fst starts.(i + 1) else total
         in
         { s_index = i; s_start; s_len = stop - s_start; s_context })
       starts)
