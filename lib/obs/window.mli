(** Sliding-window request aggregation for the daemon.

    Lifetime totals ({!Obs}) answer "how much work since boot"; a live
    service also needs "what is p99 {e right now}". A {!t} is a ring of
    per-second buckets: each request is recorded once (outcome kind +
    latency), and {!stats} folds the last [N] seconds into rps, error
    rate, cache hit rate and latency percentiles without touching the
    lifetime registry.

    {b Cost.} One mutex-protected bucket update per request (a handful of
    int increments) — negligible next to even a cache-hit analyze.

    {b Determinism.} Every operation takes an optional [?now] (seconds
    since the epoch, as {!Obs.now}) so tests can replay a stream at fixed
    timestamps. Latencies are quantized to the upper edge of a fixed
    bucket (see {!quantize_ms}); percentiles are exact over the quantized
    stream, which is what the qcheck oracle checks. *)

type t

(** Request outcome, as recorded per request:
    - [Hit] — served from the model cache;
    - [Miss] — full analysis, result entered the cache;
    - [Uncached] — full analysis, caching not requested or not cacheable
      (excluded from the hit-rate denominator);
    - [Error] — request failed (wire errors count; transport drops don't). *)
type kind = Hit | Miss | Uncached | Error

(** Ring capacity in seconds — also the widest supported window. *)
val capacity : int

(** The window lengths (seconds) reported by {!to_openmetrics} and the
    daemon's [metrics] op: 10, 60, 300. *)
val windows : int list

val create : unit -> t

(** Record one completed request. [ms] is the request latency in
    milliseconds (clamped to 0 if negative). *)
val record : ?now:float -> t -> kind -> int -> unit

(** [quantize_ms ms] is the latency value that {!record} effectively
    stores: the smallest bucket upper edge [>= ms], saturating at the top
    edge. Exposed so tests can build an exact percentile oracle. *)
val quantize_ms : int -> int

type stats = {
  w_seconds : int;  (** the window actually used (clamped to capacity) *)
  w_requests : int;
  w_errors : int;
  w_hits : int;
  w_misses : int;
  w_rps : float;  (** requests / window seconds *)
  w_error_rate : float;  (** errors / requests, 0 when idle *)
  w_hit_rate : float;  (** hits / (hits + misses), 0 when no cached ops *)
  w_p50_ms : int;  (** 0 when idle *)
  w_p99_ms : int;
}

(** Aggregate the last [seconds] (clamped to {!capacity}), including the
    current partial second. Percentile [p] is the quantized latency of
    the sample with 1-based rank [ceil (p * n)]. *)
val stats : ?now:float -> t -> int -> stats

(** [{"seconds": 10, "requests": ..., "rps": ..., ...}] — all {!stats}
    fields; rates with 4 decimals, rps with 2. *)
val stats_to_json : stats -> string

(** One JSON object keyed by window length: [{"10s": {...}, "60s": {...},
    "300s": {...}}]. *)
val all_to_json : ?now:float -> t -> string

(** OpenMetrics gauge families ([foray_window_rps{window="10s"} ...] and
    friends) for every window in {!windows} — rendered text meant to be
    passed as [~extra] to {!Obs.to_openmetrics}. *)
val to_openmetrics : ?now:float -> t -> string
