(* Process-global metrics registry. Values are atomic so Parallel workers
   can update them losslessly; the registry map and the (rarely-updated)
   timers sit behind one mutex. Handles cache a lookup by canonical name
   and survive [reset] by re-registering on their next update. *)

let on = Atomic.make false
let enabled () = Atomic.get on
let set_enabled b = Atomic.set on b
let now () = Unix.gettimeofday ()

(* --- canonical names -------------------------------------------------- *)

(* Label values are rendered Prometheus-style inside the canonical name;
   a raw '"', '\' or newline would make that name (and any exposition
   built from it) unparseable. The escaping below is exactly the
   OpenMetrics text-format rule, so canonical names embed directly into
   {!to_openmetrics} output. *)
let escape_label_value v =
  let plain =
    let ok = ref true in
    String.iter
      (fun c -> match c with '"' | '\\' | '\n' -> ok := false | _ -> ())
      v;
    !ok
  in
  if plain then v
  else begin
    let b = Buffer.create (String.length v + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      v;
    Buffer.contents b
  end

let canonical name labels =
  match labels with
  | [] -> name
  | labels ->
      let labels = List.sort compare labels in
      name ^ "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> k ^ "=\"" ^ escape_label_value v ^ "\"")
             labels)
      ^ "}"

(* --- metric cells ----------------------------------------------------- *)

type hcell = {
  bounds : int array; (* ascending inclusive upper edges *)
  buckets : int Atomic.t array; (* length bounds + 1 (overflow) *)
  hsum : int Atomic.t;
  hcount : int Atomic.t;
}

type tcell = { mutable tcount : int; mutable tseconds : float }

type cell =
  | Ccounter of int Atomic.t
  | Cgauge of int Atomic.t
  | Chistogram of hcell
  | Ctimer of tcell

let kind_name = function
  | Ccounter _ -> "counter"
  | Cgauge _ -> "gauge"
  | Chistogram _ -> "histogram"
  | Ctimer _ -> "timer"

let registry : (string, cell) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* Get-or-create under the lock. [fresh] builds a new cell; [same] checks
   that an existing cell is of the expected kind and extracts it. *)
let register name fresh same =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some cell -> (
          match same cell with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Obs: %s already registered as a %s" name
                   (kind_name cell)))
      | None ->
          let cell, v = fresh () in
          Hashtbl.add registry name cell;
          v)

(* A handle is the canonical name plus a cache of the underlying cell; the
   cache is invalidated by [reset] (the registry no longer holds the
   name), so updates revalidate cheaply via a generation stamp. *)
let generation = Atomic.make 0

type 'a handle = { name : string; mutable cached : ('a * int) option; find : string -> 'a }

let resolve h =
  let gen = Atomic.get generation in
  match h.cached with
  | Some (v, g) when g = gen -> v
  | _ ->
      let v = h.find h.name in
      h.cached <- Some (v, gen);
      v

type counter = int Atomic.t handle
type gauge = int Atomic.t handle
type histogram = hcell handle
type timer = tcell handle

let find_counter name =
  register name
    (fun () ->
      let v = Atomic.make 0 in
      (Ccounter v, v))
    (function Ccounter v -> Some v | _ -> None)

let find_gauge name =
  register name
    (fun () ->
      let v = Atomic.make 0 in
      (Cgauge v, v))
    (function Cgauge v -> Some v | _ -> None)

let default_bounds = [ 1; 2; 4; 8; 16; 32; 64 ]

let find_histogram bounds name =
  register name
    (fun () ->
      let bounds = Array.of_list bounds in
      let h =
        {
          bounds;
          buckets = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
          hsum = Atomic.make 0;
          hcount = Atomic.make 0;
        }
      in
      (Chistogram h, h))
    (function Chistogram h -> Some h | _ -> None)

let find_timer name =
  register name
    (fun () ->
      let t = { tcount = 0; tseconds = 0.0 } in
      (Ctimer t, t))
    (function Ctimer t -> Some t | _ -> None)

let counter ?(labels = []) name =
  { name = canonical name labels; cached = None; find = find_counter }

let gauge ?(labels = []) name =
  { name = canonical name labels; cached = None; find = find_gauge }

let histogram ?(labels = []) ?(bounds = default_bounds) name =
  if bounds = [] then invalid_arg "Obs.histogram: empty bounds";
  let rec ascending = function
    | a :: (b :: _ as rest) ->
        if a >= b then
          invalid_arg
            (Printf.sprintf
               "Obs.histogram %s: bounds must be strictly ascending (%d >= %d)"
               name a b)
        else ascending rest
    | _ -> ()
  in
  ascending bounds;
  { name = canonical name labels; cached = None; find = find_histogram bounds }

let timer ?(labels = []) name =
  { name = canonical name labels; cached = None; find = find_timer }

(* --- updates ---------------------------------------------------------- *)

let add c n = if enabled () then ignore (Atomic.fetch_and_add (resolve c) n)
let incr c = add c 1
let set g v = if enabled () then Atomic.set (resolve g) v

let set_max g v =
  if enabled () then begin
    let cell = resolve g in
    let rec go () =
      let cur = Atomic.get cell in
      if v > cur && not (Atomic.compare_and_set cell cur v) then go ()
    in
    go ()
  end

let observe h v =
  if enabled () then begin
    let h = resolve h in
    let n = Array.length h.bounds in
    let rec idx i = if i >= n || v <= h.bounds.(i) then i else idx (i + 1) in
    ignore (Atomic.fetch_and_add h.buckets.(idx 0) 1);
    ignore (Atomic.fetch_and_add h.hsum v);
    ignore (Atomic.fetch_and_add h.hcount 1)
  end

let add_time t secs =
  if enabled () then begin
    let cell = resolve t in
    with_lock (fun () ->
        cell.tcount <- cell.tcount + 1;
        cell.tseconds <- cell.tseconds +. secs)
  end

let time t f =
  if enabled () then begin
    let t0 = now () in
    let finally () = add_time t (now () -. t0) in
    Fun.protect ~finally f
  end
  else f ()

let reset () =
  with_lock (fun () -> Hashtbl.reset registry);
  Atomic.incr generation

(* --- event log -------------------------------------------------------- *)

let log_src = Logs.Src.create "foray.obs" ~doc:"FORAY-GEN pipeline events"

module Log = (val Logs.src_log log_src : Logs.LOG)

let event ?(fields = []) name =
  if enabled () then
    Log.info (fun m ->
        m "%s%s" name
          (String.concat ""
             (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) fields)))

(* --- inspection ------------------------------------------------------- *)

let sorted_bindings () =
  with_lock (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry [])
  |> List.sort compare

let value name =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Ccounter v) | Some (Cgauge v) -> Some (Atomic.get v)
      | _ -> None)

let values ?(prefix = "") () =
  List.filter_map
    (fun (k, cell) ->
      match cell with
      | (Ccounter v | Cgauge v) when String.starts_with ~prefix k ->
          Some (k, Atomic.get v)
      | _ -> None)
    (sorted_bindings ())

let timer_seconds name =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Ctimer t) -> Some t.tseconds
      | _ -> None)

let json_obj buf fields =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, emit) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "%S: " k);
      emit buf)
    fields;
  Buffer.add_char buf '}'

let to_json () =
  let bindings = sorted_bindings () in
  let pick f = List.filter_map (fun (k, c) -> f k c) bindings in
  let buf = Buffer.create 1024 in
  let ints l buf =
    json_obj buf
      (List.map (fun (k, v) -> (k, fun b -> Buffer.add_string b (string_of_int v))) l)
  in
  let counters = pick (fun k -> function Ccounter v -> Some (k, Atomic.get v) | _ -> None) in
  let gauges = pick (fun k -> function Cgauge v -> Some (k, Atomic.get v) | _ -> None) in
  let hists = pick (fun k -> function Chistogram h -> Some (k, h) | _ -> None) in
  let timers = pick (fun k -> function Ctimer t -> Some (k, t) | _ -> None) in
  json_obj buf
    [
      ("schema", fun b -> Buffer.add_string b "1");
      ("counters", ints counters);
      ("gauges", ints gauges);
      ( "histograms",
        fun b ->
          json_obj b
            (List.map
               (fun (k, h) ->
                 ( k,
                   fun b ->
                     let buckets =
                       Array.to_list
                         (Array.mapi
                            (fun i c ->
                              let le =
                                if i < Array.length h.bounds then
                                  string_of_int h.bounds.(i)
                                else "\"+inf\""
                              in
                              Printf.sprintf "{\"le\": %s, \"count\": %d}" le
                                (Atomic.get c))
                            h.buckets)
                     in
                     json_obj b
                       [
                         ( "count",
                           fun b ->
                             Buffer.add_string b
                               (string_of_int (Atomic.get h.hcount)) );
                         ( "sum",
                           fun b ->
                             Buffer.add_string b
                               (string_of_int (Atomic.get h.hsum)) );
                         ( "buckets",
                           fun b ->
                             Buffer.add_string b
                               ("[" ^ String.concat ", " buckets ^ "]") );
                       ] ))
               hists) );
      ( "timers",
        fun b ->
          json_obj b
            (List.map
               (fun (k, t) ->
                 ( k,
                   fun b ->
                     json_obj b
                       [
                         ( "count",
                           fun b -> Buffer.add_string b (string_of_int t.tcount)
                         );
                         ( "seconds",
                           fun b ->
                             Buffer.add_string b (Printf.sprintf "%.6f" t.tseconds)
                         );
                       ] ))
               timers) );
    ];
  Buffer.contents buf

(* --- OpenMetrics exposition ------------------------------------------- *)

let sanitize_metric_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

(* Split a canonical name into its base and its brace-delimited label
   block (empty when unlabeled). Label values are already escaped per the
   OpenMetrics rules (see [escape_label_value]), so the block embeds
   verbatim into exposition lines. *)
let split_canonical k =
  match String.index_opt k '{' with
  | None -> (k, "")
  | Some i -> (String.sub k 0 i, String.sub k i (String.length k - i))

(* Merge one extra label (e.g. le="8") into an existing label block. *)
let with_label labels kv =
  if labels = "" then "{" ^ kv ^ "}"
  else String.sub labels 0 (String.length labels - 1) ^ "," ^ kv ^ "}"

let to_openmetrics ?(extra = "") () =
  let bindings = sorted_bindings () in
  (* Group series into families keyed by (sanitized base, kind). Sorted
     order does not guarantee adjacency (e.g. "foo.bar" sorts between
     "foo" and "foo{..}"), so group via a map, keeping first-seen order. *)
  let groups : (string, (string * cell) list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let order = ref [] in
  List.iter
    (fun (k, cell) ->
      let base, labels = split_canonical k in
      let base = sanitize_metric_name base in
      let key = base ^ "\x00" ^ kind_name cell in
      match Hashtbl.find_opt groups key with
      | Some l -> l := (labels, cell) :: !l
      | None ->
          Hashtbl.add groups key (ref [ (labels, cell) ]);
          order := (key, base) :: !order)
    bindings;
  let buf = Buffer.create 4096 in
  List.iter
    (fun (key, base) ->
      let entries = List.rev !(Hashtbl.find groups key) in
      match entries with
      | [] -> ()
      | (_, first) :: _ -> (
          match first with
          | Ccounter _ ->
              Printf.bprintf buf "# TYPE %s counter\n" base;
              List.iter
                (fun (labels, cell) ->
                  match cell with
                  | Ccounter v ->
                      Printf.bprintf buf "%s_total%s %d\n" base labels
                        (Atomic.get v)
                  | _ -> ())
                entries
          | Cgauge _ ->
              Printf.bprintf buf "# TYPE %s gauge\n" base;
              List.iter
                (fun (labels, cell) ->
                  match cell with
                  | Cgauge v ->
                      Printf.bprintf buf "%s%s %d\n" base labels (Atomic.get v)
                  | _ -> ())
                entries
          | Chistogram _ ->
              Printf.bprintf buf "# TYPE %s histogram\n" base;
              List.iter
                (fun (labels, cell) ->
                  match cell with
                  | Chistogram h ->
                      let cum = ref 0 in
                      Array.iteri
                        (fun i c ->
                          cum := !cum + Atomic.get c;
                          let le =
                            if i < Array.length h.bounds then
                              string_of_int h.bounds.(i)
                            else "+Inf"
                          in
                          Printf.bprintf buf "%s_bucket%s %d\n" base
                            (with_label labels ("le=\"" ^ le ^ "\""))
                            !cum)
                        h.buckets;
                      Printf.bprintf buf "%s_sum%s %d\n" base labels
                        (Atomic.get h.hsum);
                      Printf.bprintf buf "%s_count%s %d\n" base labels
                        (Atomic.get h.hcount)
                  | _ -> ())
                entries
          | Ctimer _ ->
              Printf.bprintf buf "# TYPE %s summary\n" base;
              List.iter
                (fun (labels, cell) ->
                  match cell with
                  | Ctimer t ->
                      Printf.bprintf buf "%s_sum%s %.6f\n" base labels
                        t.tseconds;
                      Printf.bprintf buf "%s_count%s %d\n" base labels
                        t.tcount
                  | _ -> ())
                entries))
    (List.rev !order);
  if extra <> "" then begin
    Buffer.add_string buf extra;
    if not (String.ends_with ~suffix:"\n" extra) then Buffer.add_char buf '\n'
  end;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let to_table () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (k, cell) ->
      match cell with
      | Ccounter v ->
          Printf.bprintf buf "%-48s %12d\n" k (Atomic.get v)
      | Cgauge v ->
          Printf.bprintf buf "%-48s %12d  (gauge)\n" k (Atomic.get v)
      | Chistogram h ->
          Printf.bprintf buf "%-48s count=%d sum=%d\n" k
            (Atomic.get h.hcount) (Atomic.get h.hsum)
      | Ctimer t ->
          Printf.bprintf buf "%-48s %10.4fs over %d span(s)\n" k t.tseconds
            t.tcount)
    (sorted_bindings ());
  Buffer.contents buf
