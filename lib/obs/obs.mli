(** Pipeline-wide observability: a process-global metrics registry plus a
    structured, [Logs]-backed event log.

    The paper's value is {e measurement} — FORAY-GEN only matters if you
    can see how many references survive inference, why the rest were
    demoted, and what the simulator/analyzer cost. Every stage of the
    pipeline (interpreter, affine inference, loop-tree walker, trace I/O,
    cache simulator, domain pool) reports into this registry; the CLI
    ([foraygen --metrics], [foraygen metrics]) and the bench harness
    ([bench/main.exe --json]) dump it as JSON or a table.

    {b Zero cost when disabled.} Collection is off by default; every
    update is a single load-and-branch when {!enabled} is [false], and the
    hot interpreter loop avoids even that by accumulating locally and
    flushing aggregates once per run. Metric handles may be created
    eagerly at module-initialization time whether or not collection is on.

    {b Domain safety.} Counter/gauge/histogram updates are atomic; the
    registry and timers are mutex-protected. Updates from
    {!Foray_util.Parallel} workers are safe and lossless. *)

(** {1 Enabling} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** Forget every registered metric (handles created before a [reset] keep
    working — they re-register on next update). Meant for tests and for
    scoping a metrics dump to one CLI invocation. *)
val reset : unit -> unit

(** {1 Metric handles}

    Handles are get-or-create by canonical name: the same [name] (plus
    [labels], sorted and rendered Prometheus-style as
    [name{k="v",...}]) always yields the same underlying metric.
    Creating an existing name with a different kind raises
    [Invalid_argument]. *)

type counter
type gauge
type histogram
type timer

val counter : ?labels:(string * string) list -> string -> counter
val gauge : ?labels:(string * string) list -> string -> gauge

(** [histogram ?bounds name] — [bounds] are inclusive upper bucket edges
    (strictly ascending); an implicit overflow bucket is added. Default
    bounds [1; 2; 4; 8; 16; 32; 64]. Raises [Invalid_argument] on empty,
    unsorted or duplicate bounds. *)
val histogram :
  ?labels:(string * string) list -> ?bounds:int list -> string -> histogram

val timer : ?labels:(string * string) list -> string -> timer

(** {1 Updates} (no-ops while disabled) *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> int -> unit

(** Raise the gauge to [v] if [v] is larger (high-water mark). *)
val set_max : gauge -> int -> unit

val observe : histogram -> int -> unit

(** [add_time t secs] accumulates one observation of [secs] seconds. *)
val add_time : timer -> float -> unit

(** [time t f] runs [f ()], charging its wall-clock duration to [t]. *)
val time : timer -> (unit -> 'a) -> 'a

(** Monotonic-enough wall clock (seconds), for callers that measure
    sections themselves before calling {!add_time}. *)
val now : unit -> float

(** {1 Event log}

    [event ?fields name] emits a structured line on the ["foray.obs"]
    [Logs] source at info level, e.g.
    [pipeline.run bench=jpeg steps=1234]. Silent unless a reporter is
    installed and collection is enabled. *)

val event : ?fields:(string * string) list -> string -> unit

val log_src : Logs.src

(** {1 Inspection} *)

(** Current value of the counter or gauge with this canonical name. *)
val value : string -> int option

(** Every counter and gauge whose canonical name starts with [prefix]
    (default: all), sorted by name — how the daemon's [metrics] verb and
    the serve smoke check read the [serve.*] family in one call. *)
val values : ?prefix:string -> unit -> (string * int) list

(** Total seconds accumulated by the timer with this canonical name. *)
val timer_seconds : string -> float option

(** All metrics as a JSON object: [{"schema": 1, "counters": {...},
    "gauges": {...}, "histograms": {...}, "timers": {...}}]. Keys sorted;
    no trailing newline. *)
val to_json : unit -> string

(** Human-readable dump, one metric per line, sorted by name. *)
val to_table : unit -> string

(** The whole registry in the Prometheus / OpenMetrics text exposition
    format, terminated by [# EOF]. Metric names are sanitized
    ([.] becomes [_]); label values keep the escaping applied when the
    canonical name was built. Counters render as [name_total], gauges as
    [name], histograms as cumulative [name_bucket{le="..."}] series plus
    [name_sum]/[name_count], and timers as summaries ([name_sum] in
    seconds, [name_count]). Families appear in sorted-name order.

    [extra], when given, must be pre-rendered exposition text (e.g.
    {!Window.to_openmetrics} output); it is spliced in verbatim before
    the [# EOF] terminator. *)
val to_openmetrics : ?extra:string -> unit -> string
