(* Sliding-window request stats: a ring of per-second buckets. Each
   bucket carries outcome counts plus a fixed-bucket latency histogram;
   folding a window is a linear scan over at most [capacity] buckets.
   One mutex guards the ring — contention is one short critical section
   per request plus one per scrape. *)

type kind = Hit | Miss | Uncached | Error

let capacity = 300
let windows = [ 10; 60; 300 ]

(* Latency quantization edges (ms). Matches the spirit of the daemon's
   serve.request_ms histogram; the last edge saturates (an 8s request
   records as 5000ms) so percentiles never invent a value outside the
   scale. *)
let edges = [| 1; 2; 5; 10; 20; 50; 100; 200; 500; 1000; 2000; 5000 |]
let nedges = Array.length edges

let quantize_idx ms =
  let ms = if ms < 0 then 0 else ms in
  let rec go i = if i >= nedges - 1 || ms <= edges.(i) then i else go (i + 1) in
  go 0

let quantize_ms ms = edges.(quantize_idx ms)

type bucket = {
  mutable b_sec : int; (* epoch second this slot currently represents *)
  mutable b_requests : int;
  mutable b_errors : int;
  mutable b_hits : int;
  mutable b_misses : int;
  b_lat : int array; (* counts per quantization edge *)
}

type t = { ring : bucket array; m : Mutex.t }

let create () =
  {
    ring =
      Array.init capacity (fun _ ->
          {
            b_sec = -1;
            b_requests = 0;
            b_errors = 0;
            b_hits = 0;
            b_misses = 0;
            b_lat = Array.make nedges 0;
          });
    m = Mutex.create ();
  }

let slot t sec =
  let b = t.ring.(sec mod capacity) in
  if b.b_sec <> sec then begin
    b.b_sec <- sec;
    b.b_requests <- 0;
    b.b_errors <- 0;
    b.b_hits <- 0;
    b.b_misses <- 0;
    Array.fill b.b_lat 0 nedges 0
  end;
  b

let record ?now t kind ms =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  let sec = int_of_float now in
  Mutex.lock t.m;
  let b = slot t sec in
  b.b_requests <- b.b_requests + 1;
  (match kind with
  | Hit -> b.b_hits <- b.b_hits + 1
  | Miss -> b.b_misses <- b.b_misses + 1
  | Uncached -> ()
  | Error -> b.b_errors <- b.b_errors + 1);
  let i = quantize_idx ms in
  b.b_lat.(i) <- b.b_lat.(i) + 1;
  Mutex.unlock t.m

type stats = {
  w_seconds : int;
  w_requests : int;
  w_errors : int;
  w_hits : int;
  w_misses : int;
  w_rps : float;
  w_error_rate : float;
  w_hit_rate : float;
  w_p50_ms : int;
  w_p99_ms : int;
}

let percentile lat n p =
  if n = 0 then 0
  else begin
    let rank = int_of_float (ceil (p *. float_of_int n)) in
    let rank = if rank < 1 then 1 else rank in
    let cum = ref 0 and res = ref edges.(nedges - 1) in
    (try
       for i = 0 to nedges - 1 do
         cum := !cum + lat.(i);
         if !cum >= rank then begin
           res := edges.(i);
           raise Exit
         end
       done
     with Exit -> ());
    !res
  end

let stats ?now t seconds =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  let seconds = max 1 (min seconds capacity) in
  let sec = int_of_float now in
  let lo = sec - seconds + 1 in
  let requests = ref 0
  and errors = ref 0
  and hits = ref 0
  and misses = ref 0 in
  let lat = Array.make nedges 0 in
  Mutex.lock t.m;
  Array.iter
    (fun b ->
      if b.b_sec >= lo && b.b_sec <= sec then begin
        requests := !requests + b.b_requests;
        errors := !errors + b.b_errors;
        hits := !hits + b.b_hits;
        misses := !misses + b.b_misses;
        Array.iteri (fun i c -> lat.(i) <- lat.(i) + c) b.b_lat
      end)
    t.ring;
  Mutex.unlock t.m;
  let n = !requests in
  let cached = !hits + !misses in
  {
    w_seconds = seconds;
    w_requests = n;
    w_errors = !errors;
    w_hits = !hits;
    w_misses = !misses;
    w_rps = float_of_int n /. float_of_int seconds;
    w_error_rate =
      (if n = 0 then 0.0 else float_of_int !errors /. float_of_int n);
    w_hit_rate =
      (if cached = 0 then 0.0 else float_of_int !hits /. float_of_int cached);
    w_p50_ms = percentile lat n 0.50;
    w_p99_ms = percentile lat n 0.99;
  }

let stats_to_json s =
  Printf.sprintf
    "{\"seconds\": %d, \"requests\": %d, \"errors\": %d, \"hits\": %d, \
     \"misses\": %d, \"rps\": %.2f, \"error_rate\": %.4f, \"hit_rate\": \
     %.4f, \"p50_ms\": %d, \"p99_ms\": %d}"
    s.w_seconds s.w_requests s.w_errors s.w_hits s.w_misses s.w_rps
    s.w_error_rate s.w_hit_rate s.w_p50_ms s.w_p99_ms

let all_to_json ?now t =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  "{"
  ^ String.concat ", "
      (List.map
         (fun w ->
           Printf.sprintf "\"%ds\": %s" w (stats_to_json (stats ~now t w)))
         windows)
  ^ "}"

let to_openmetrics ?now t =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  let all = List.map (fun w -> (w, stats ~now t w)) windows in
  let buf = Buffer.create 1024 in
  let family name fmt get =
    Printf.bprintf buf "# TYPE foray_window_%s gauge\n" name;
    List.iter
      (fun (w, s) ->
        Printf.bprintf buf "foray_window_%s{window=\"%ds\"} %s\n" name w
          (Printf.sprintf fmt (get s)))
      all
  in
  let familyi name get =
    Printf.bprintf buf "# TYPE foray_window_%s gauge\n" name;
    List.iter
      (fun (w, s) ->
        Printf.bprintf buf "foray_window_%s{window=\"%ds\"} %d\n" name w
          (get s))
      all
  in
  familyi "requests" (fun s -> s.w_requests);
  family "rps" "%.2f" (fun s -> s.w_rps);
  family "error_rate" "%.4f" (fun s -> s.w_error_rate);
  family "hit_rate" "%.4f" (fun s -> s.w_hit_rate);
  familyi "p50_ms" (fun s -> s.w_p50_ms);
  familyi "p99_ms" (fun s -> s.w_p99_ms);
  Buffer.contents buf
