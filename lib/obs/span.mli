(** Hierarchical span tracing: a bounded, process-global timeline of what
    the pipeline spent its wall-clock on, loadable in Perfetto.

    Where {!Obs} answers "how many / how long in total", spans answer
    "when, in what order, nested under what": each span is one named
    interval with a category, free-form arguments and an implicit position
    in the per-domain call stack. The pipeline stages (parse, annotate,
    simulate, analyze), the interpreter's loop-checkpoint stream, trace
    file I/O, the cache simulator and every {!Foray_util.Parallel} worker
    record into the same ring, so one export shows the whole run — with
    one track per OCaml domain.

    {b Bounded memory.} Completed spans land in a fixed-capacity ring
    (default {!default_capacity}); once full, the oldest spans are
    overwritten and {!dropped} counts them. A long simulation therefore
    keeps the {e tail} of its timeline, which is what you want when a run
    is slow at the end.

    {b Zero cost when disabled.} {!enter} is a single atomic load when
    tracing is off; no allocation, no clock read. The interpreter caches
    the flag once per run, so the hot loop does not even pay the load.

    {b Exports.}
    - {!to_chrome_json}: Chrome trace-event JSON (an object with a
      [traceEvents] array of ["ph": "X"] complete events plus thread-name
      metadata). Load it in {{:https://ui.perfetto.dev}Perfetto} or
      [chrome://tracing].
    - {!to_folded}: folded-stack text ([domain0;pipeline.run;simulate 1234]
      lines, values in self-microseconds) for
      {{:https://github.com/brendangregg/FlameGraph}flamegraph.pl}.

    {b Activation.} Programmatically via {!set_enabled}, per-verb via the
    CLI's [--trace-out FILE], or for a whole process via the [FORAY_TRACE]
    environment variable (see {!setup_env}). *)

(** {1 Enabling} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** Forget all recorded spans and the drop count; the time origin of
    subsequent spans is rebased to now. *)
val reset : unit -> unit

(** 65536 completed spans (a few MB at most). *)
val default_capacity : int

(** Resize the ring (and {!reset} it). Raises [Invalid_argument] on
    non-positive capacities. *)
val set_capacity : int -> unit

(** {1 Recording} *)

(** A live span token returned by {!enter}. Tokens are affine: pass each
    one to {!leave} exactly once, on the domain that created it. *)
type span

(** The no-op token ({!enter} returns it while disabled; {!leave} ignores
    it). *)
val null : span

(** [enter ?cat ?args name] opens a span nested under the domain's current
    innermost open span. [cat] groups spans in trace viewers (defaults to
    ["foray"]). *)
val enter :
  ?cat:string -> ?args:(string * string) list -> string -> span

(** Close the span: records one completed interval into the ring. *)
val leave : span -> unit

(** [with_span ?cat ?args name f] runs [f ()] inside a span; the span is
    closed even when [f] raises. *)
val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** [instant ?cat ?args name] records a zero-duration marker on the
    current domain's track. *)
val instant : ?cat:string -> ?args:(string * string) list -> string -> unit

(** {1 Inspection} *)

(** Completed spans currently held by the ring. *)
val recorded : unit -> int

(** Spans overwritten because the ring was full. *)
val dropped : unit -> int

(** {1 Export} *)

(** Chrome trace-event JSON; see the module preamble. Deterministic given
    the ring contents; no trailing newline. *)
val to_chrome_json : unit -> string

(** Folded-stack text: one [stack value\n] line per distinct stack with
    nonzero self-time (microseconds), stacks prefixed by their domain
    track and sorted. *)
val to_folded : unit -> string

(** [write path] exports the ring to [path]: folded-stack text when
    [path] ends in [.folded], Chrome trace JSON otherwise. *)
val write : string -> unit

(** {1 Validation}

    A structural checker for the Chrome export, used by [foraygen
    tracecheck] and the test suite: the string must parse as JSON, carry a
    [traceEvents] array whose members have the required fields, and the
    ["X"] events of each track must be properly nested (any two spans on a
    track either disjoint or contained). *)

(** [validate_chrome s] returns the number of trace events on success. *)
val validate_chrome : string -> (int, string) result

(** [validate_chrome_file path] reads and validates [path]. *)
val validate_chrome_file : string -> (int, string) result

(** {1 Request-scoped collection}

    The daemon runs each request's heavy analysis as one task on a
    {!Foray_util.Parallel} pool worker. A worker domain executes a single
    task at a time, so the completed spans recorded on that domain's tid
    within the task's time window belong to exactly one request.
    {!collect} cuts that slice out of the ring and rebuilds the call
    forest, powering the daemon's ["trace": true] inline responses and
    [--slow-ms] breakdown logging. *)

(** One reconstructed span and its nested children (chronological). *)
type node = {
  n_name : string;
  n_cat : string;
  n_ts_us : float;  (** start, microseconds since the ring epoch *)
  n_dur_us : float;
  n_args : (string * string) list;
  n_children : node list;
}

(** The calling domain's tid as recorded in span entries. *)
val current_tid : unit -> int

(** Microseconds since the ring epoch — the clock span timestamps use.
    Sample before/after a pool task to bound its window for {!collect}. *)
val now_us : unit -> float

(** [collect ~tid ~t0 ~t1 ()] — the forest of completed spans recorded on
    [tid] whose intervals fall inside [[t0, t1]] (µs since epoch), oldest
    first. At most [max_nodes] (default 512) spans are kept; the second
    component counts those cut. Instants are excluded. *)
val collect :
  ?max_nodes:int -> tid:int -> t0:float -> t1:float -> unit ->
  node list * int

(** One node as a JSON object
    [{"name": ..., "cat": ..., "dur_us": ..., "args": {..}?,
    "children": [..]?}]. *)
val node_to_json : node -> string

(** {1 Environment activation}

    [setup_env ()] reads the process environment once (idempotent):

    - [FORAY_OBS=1] (or [true]) enables {!Obs} metric collection for the
      whole process; [FORAY_OBS=path.json] additionally writes the final
      {!Obs.to_json} dump to that path at exit. A per-verb [--metrics
      FILE] flag takes precedence for where the dump goes — the env var
      then only keeps collection on.
    - [FORAY_TRACE=out.json] enables span tracing and writes the Chrome
      (or, for [.folded] paths, folded-stack) export at exit. A per-verb
      [--trace-out FILE] flag takes precedence: it resets the ring and
      writes its own file; the env export still happens at exit with
      whatever the ring then holds. *)
val setup_env : unit -> unit
