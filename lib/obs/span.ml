(* Completed spans land in one process-global ring; per-domain nesting
   state (the open-span path) lives in domain-local storage, so recording
   only contends on the ring mutex once per completed span. Instants are
   zero-duration entries (e_dur < 0 marks them). *)

let on = Atomic.make false
let enabled () = Atomic.get on
let set_enabled b = Atomic.set on b

type entry = {
  e_path : string; (* "outer;inner" within the recording domain *)
  e_name : string;
  e_cat : string;
  e_tid : int;
  e_ts : float; (* microseconds since [epoch] *)
  e_dur : float; (* microseconds; negative for instants *)
  e_args : (string * string) list;
}

let dummy =
  { e_path = ""; e_name = ""; e_cat = ""; e_tid = 0; e_ts = 0.0; e_dur = 0.0;
    e_args = [] }

let default_capacity = 65536
let lock = Mutex.create ()
let ring = ref (Array.make default_capacity dummy)
let count = ref 0
let next = ref 0
let n_dropped = ref 0
let epoch = ref (Unix.gettimeofday ())

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* End timestamps of already-closed spans, keyed by path. A span left out
   of order (parent before child) would otherwise outlive its enclosing
   interval in the export; clamping the child's end to the closed
   ancestor's keeps every track well-nested. Entering a path again clears
   its stale cap. *)
let caps_key : (string, float) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let push e =
  with_lock (fun () ->
      let cap = Array.length !ring in
      !ring.(!next) <- e;
      next := (!next + 1) mod cap;
      if !count = cap then incr n_dropped else incr count)

let snapshot () =
  with_lock (fun () ->
      let cap = Array.length !ring in
      Array.init !count (fun i -> !ring.((!next - !count + i + cap) mod cap)))

let reset () =
  Hashtbl.reset (Domain.DLS.get caps_key);
  with_lock (fun () ->
      Array.fill !ring 0 (Array.length !ring) dummy;
      count := 0;
      next := 0;
      n_dropped := 0;
      epoch := Unix.gettimeofday ())

let set_capacity cap =
  if cap <= 0 then invalid_arg "Span.set_capacity: non-positive capacity";
  with_lock (fun () ->
      ring := Array.make cap dummy;
      count := 0;
      next := 0;
      n_dropped := 0)

let recorded () = with_lock (fun () -> !count)
let dropped () = with_lock (fun () -> !n_dropped)
let now_us () = (Unix.gettimeofday () -. !epoch) *. 1e6
let tid () = (Domain.self () :> int)

(* The open-span path of this domain, innermost first. Entries are full
   paths, so [leave] restores the parent by popping one frame. *)
let stack_key : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

type span =
  | Off
  | On of {
      s_name : string;
      s_cat : string;
      s_args : (string * string) list;
      s_ts : float;
      s_tid : int;
      s_path : string;
    }

let null = Off

let enter ?(cat = "foray") ?(args = []) name =
  if not (enabled ()) then Off
  else begin
    let st = Domain.DLS.get stack_key in
    let path = match !st with [] -> name | p :: _ -> p ^ ";" ^ name in
    st := path :: !st;
    Hashtbl.remove (Domain.DLS.get caps_key) path;
    On
      { s_name = name; s_cat = cat; s_args = args; s_ts = now_us ();
        s_tid = tid (); s_path = path }
  end

let leave = function
  | Off -> ()
  | On s ->
      let st = Domain.DLS.get stack_key in
      (match !st with [] -> () | _ :: rest -> st := rest);
      if enabled () then begin
        let caps = Domain.DLS.get caps_key in
        let fin = ref (now_us ()) in
        String.iteri
          (fun i c ->
            if c = ';' then
              match Hashtbl.find_opt caps (String.sub s.s_path 0 i) with
              | Some e when e < !fin -> fin := e
              | _ -> ())
          s.s_path;
        let fin = Float.max s.s_ts !fin in
        Hashtbl.replace caps s.s_path fin;
        push
          { e_path = s.s_path; e_name = s.s_name; e_cat = s.s_cat;
            e_tid = s.s_tid; e_ts = s.s_ts; e_dur = fin -. s.s_ts;
            e_args = s.s_args }
      end

let with_span ?cat ?args name f =
  let s = enter ?cat ?args name in
  Fun.protect ~finally:(fun () -> leave s) f

let instant ?(cat = "foray") ?(args = []) name =
  if enabled () then begin
    let st = Domain.DLS.get stack_key in
    let path = match !st with [] -> name | p :: _ -> p ^ ";" ^ name in
    push
      { e_path = path; e_name = name; e_cat = cat; e_tid = tid ();
        e_ts = now_us (); e_dur = -1.0; e_args = args }
  end

(* --- Chrome trace-event export ---------------------------------------- *)

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_str b s =
  Buffer.add_char b '"';
  add_escaped b s;
  Buffer.add_char b '"'

let add_args b args =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      add_str b k;
      Buffer.add_string b ": ";
      add_str b v)
    args;
  Buffer.add_char b '}'

let to_chrome_json () =
  let es = snapshot () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  let first = ref true in
  let item f =
    if !first then first := false else Buffer.add_string b ",";
    Buffer.add_string b "\n  ";
    f ()
  in
  item (fun () ->
      Buffer.add_string b
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
         \"args\": {\"name\": \"foraygen\"}}");
  let tids =
    List.sort_uniq compare (Array.to_list (Array.map (fun e -> e.e_tid) es))
  in
  List.iter
    (fun t ->
      item (fun () ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \
                \"tid\": %d, \"args\": {\"name\": \"domain%d\"}}"
               t t)))
    tids;
  Array.iter
    (fun e ->
      item (fun () ->
          Buffer.add_string b "{\"name\": ";
          add_str b e.e_name;
          Buffer.add_string b ", \"cat\": ";
          add_str b e.e_cat;
          if e.e_dur < 0.0 then
            Buffer.add_string b
              (Printf.sprintf
                 ", \"ph\": \"i\", \"s\": \"t\", \"ts\": %.3f, \"pid\": 1, \
                  \"tid\": %d"
                 e.e_ts e.e_tid)
          else
            Buffer.add_string b
              (Printf.sprintf
                 ", \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \
                  \"tid\": %d"
                 e.e_ts e.e_dur e.e_tid);
          Buffer.add_string b ", \"args\": ";
          add_args b e.e_args;
          Buffer.add_char b '}'))
    es;
  Buffer.add_string b "\n]}";
  Buffer.contents b

(* --- folded stacks ----------------------------------------------------- *)

let to_folded () =
  let es = snapshot () in
  (* inclusive microseconds per distinct stack, domain-prefixed *)
  let incl = Hashtbl.create 64 in
  Array.iter
    (fun e ->
      if e.e_dur >= 0.0 then begin
        let key = Printf.sprintf "domain%d;%s" e.e_tid e.e_path in
        let prev = try Hashtbl.find incl key with Not_found -> 0.0 in
        Hashtbl.replace incl key (prev +. e.e_dur)
      end)
    es;
  (* self time: inclusive minus the inclusive time of direct children.
     Same-stack spans never overlap (stack discipline), so this is exact
     up to clock resolution. *)
  let self = Hashtbl.copy incl in
  Hashtbl.iter
    (fun key v ->
      match String.rindex_opt key ';' with
      | None -> ()
      | Some i -> (
          let parent = String.sub key 0 i in
          match Hashtbl.find_opt self parent with
          | Some p -> Hashtbl.replace self parent (p -. v)
          | None -> ()))
    incl;
  let lines =
    Hashtbl.fold
      (fun key v acc ->
        let us = Float.round v in
        if us >= 1.0 then Printf.sprintf "%s %.0f" key us :: acc else acc)
      self []
  in
  String.concat "" (List.map (fun l -> l ^ "\n") (List.sort compare lines))

let write path =
  let data =
    if Filename.check_suffix path ".folded" then to_folded ()
    else to_chrome_json () ^ "\n"
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc data)

(* --- validation -------------------------------------------------------- *)

(* A minimal JSON reader, enough to structurally check our own export (and
   any spec-conforming trace): full value grammar, string escapes decoded
   loosely (\uXXXX becomes '?'), numbers via [float_of_string]. *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'u' ->
             if !pos + 4 > n then fail "short \\u escape";
             String.iter
               (fun h ->
                 match h with
                 | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                 | _ -> fail "bad \\u escape")
               (String.sub s !pos 4);
             pos := !pos + 4;
             Buffer.add_char b '?'
         | _ -> fail "bad escape");
        go ()
      end
      else if Char.code c < 0x20 then fail "control character in string"
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a value";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Jnum f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Jobj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Jobj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Jarr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Jarr (elements [])
        end
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

let validate_chrome str =
  match parse_json str with
  | exception Bad msg -> Error ("not valid JSON: " ^ msg)
  | Jobj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (Jarr events) -> (
          let err = ref None in
          let fail fmt =
            Printf.ksprintf (fun m -> if !err = None then err := Some m) fmt
          in
          (* collect X events per tid for the nesting check *)
          let tracks : (int, (float * float) list ref) Hashtbl.t =
            Hashtbl.create 8
          in
          List.iteri
            (fun i ev ->
              match ev with
              | Jobj f -> (
                  let str_field k =
                    match List.assoc_opt k f with
                    | Some (Jstr s) -> Some s
                    | _ -> None
                  in
                  let num_field k =
                    match List.assoc_opt k f with
                    | Some (Jnum x) -> Some x
                    | _ -> None
                  in
                  if str_field "name" = None then
                    fail "event %d: missing name" i;
                  match str_field "ph" with
                  | None -> fail "event %d: missing ph" i
                  | Some "X" -> (
                      match (num_field "ts", num_field "dur", num_field "tid")
                      with
                      | Some ts, Some dur, Some tid ->
                          if dur < 0.0 then fail "event %d: negative dur" i
                          else begin
                            let l =
                              match Hashtbl.find_opt tracks (int_of_float tid)
                              with
                              | Some l -> l
                              | None ->
                                  let l = ref [] in
                                  Hashtbl.add tracks (int_of_float tid) l;
                                  l
                            in
                            l := (ts, dur) :: !l
                          end
                      | _ -> fail "event %d: X event missing ts/dur/tid" i)
                  | Some "i" ->
                      if num_field "ts" = None then
                        fail "event %d: instant missing ts" i
                  | Some _ -> ())
              | _ -> fail "event %d: not an object" i)
            events;
          (* per-track laminar check: sorted by start (longest first on
             ties), every span fits inside the enclosing open span *)
          let eps = 0.002 in
          Hashtbl.iter
            (fun tid l ->
              let spans =
                List.sort
                  (fun (a, da) (b, db) ->
                    match compare a b with 0 -> compare db da | c -> c)
                  !l
              in
              let stack = ref [] in
              List.iter
                (fun (ts, dur) ->
                  let fin = ts +. dur in
                  let rec pop () =
                    match !stack with
                    | top :: rest when top <= ts +. eps ->
                        stack := rest;
                        pop ()
                    | _ -> ()
                  in
                  pop ();
                  (match !stack with
                  | top :: _ when fin > top +. eps ->
                      fail
                        "track %d: span at ts=%.3f overlaps its enclosing \
                         span"
                        tid ts
                  | _ -> ());
                  stack := fin :: !stack)
                spans)
            tracks;
          match !err with
          | Some m -> Error m
          | None -> Ok (List.length events))
      | _ -> Error "missing traceEvents array")
  | _ -> Error "top level is not an object"

let validate_chrome_file path =
  match
    let ic = In_channel.open_bin path in
    Fun.protect
      ~finally:(fun () -> In_channel.close ic)
      (fun () -> In_channel.input_all ic)
  with
  | exception Sys_error msg -> Error msg
  | data -> validate_chrome data

(* --- environment activation ------------------------------------------- *)

let env_done = ref false

let setup_env () =
  if not !env_done then begin
    env_done := true;
    (match Sys.getenv_opt "FORAY_OBS" with
    | None | Some "" | Some "0" | Some "false" | Some "off" -> ()
    | Some ("1" | "true" | "yes" | "on") -> Obs.set_enabled true
    | Some path ->
        Obs.set_enabled true;
        at_exit (fun () ->
            try
              let oc = open_out path in
              Fun.protect
                ~finally:(fun () -> close_out oc)
                (fun () ->
                  output_string oc (Obs.to_json ());
                  output_char oc '\n')
            with Sys_error _ -> ()));
    match Sys.getenv_opt "FORAY_TRACE" with
    | None | Some "" -> ()
    | Some path ->
        set_enabled true;
        at_exit (fun () -> try write path with Sys_error _ -> ())
  end

(* --- request-scoped collection ----------------------------------------- *)

(* The daemon hands analysis work to a Parallel pool worker; that worker
   domain runs exactly one task at a time, so every completed span on its
   tid inside the task's [t0, t1] interval belongs to that one request.
   [collect] cuts those entries out of the ring and rebuilds the call
   forest by interval containment (spans are well-nested per track by
   construction, including the out-of-order-leave clamping above). *)

type node = {
  n_name : string;
  n_cat : string;
  n_ts_us : float;
  n_dur_us : float;
  n_args : (string * string) list;
  n_children : node list;
}

let current_tid () = tid ()

let collect ?(max_nodes = 512) ~tid ~t0 ~t1 () =
  let eps = 1.0 (* microsecond slack against clock rounding *) in
  let sel =
    snapshot () |> Array.to_list
    |> List.filter (fun e ->
           e.e_tid = tid && e.e_dur >= 0.0
           && e.e_ts >= t0 -. eps
           && e.e_ts +. e.e_dur <= t1 +. eps)
  in
  (* Start ascending; ties broken longest-first so a parent precedes the
     children sharing its start timestamp. *)
  let sel =
    List.stable_sort
      (fun a b ->
        match compare a.e_ts b.e_ts with
        | 0 -> compare b.e_dur a.e_dur
        | c -> c)
      sel
  in
  let total = List.length sel in
  let sel, truncated =
    if total <= max_nodes then (sel, 0)
    else (List.filteri (fun i _ -> i < max_nodes) sel, total - max_nodes)
  in
  let module M = struct
    type m = { e : entry; mutable kids : m list }
  end in
  let open M in
  let roots = ref [] and stack = ref [] in
  List.iter
    (fun e ->
      let fin = e.e_ts +. e.e_dur in
      let contains top =
        e.e_ts >= top.e.e_ts -. eps
        && fin <= top.e.e_ts +. top.e.e_dur +. eps
      in
      let rec pop () =
        match !stack with
        | top :: rest when not (contains top) ->
            stack := rest;
            pop ()
        | _ -> ()
      in
      pop ();
      let m = { e; kids = [] } in
      (match !stack with
      | [] -> roots := m :: !roots
      | top :: _ -> top.kids <- m :: top.kids);
      stack := m :: !stack)
    sel;
  let rec freeze m =
    {
      n_name = m.e.e_name;
      n_cat = m.e.e_cat;
      n_ts_us = m.e.e_ts;
      n_dur_us = m.e.e_dur;
      n_args = m.e.e_args;
      n_children = List.rev_map freeze m.kids;
    }
  in
  (List.rev_map freeze !roots, truncated)

let rec node_to_buf b n =
  Buffer.add_string b "{\"name\": ";
  add_str b n.n_name;
  Buffer.add_string b ", \"cat\": ";
  add_str b n.n_cat;
  Buffer.add_string b (Printf.sprintf ", \"dur_us\": %.1f" n.n_dur_us);
  if n.n_args <> [] then begin
    Buffer.add_string b ", \"args\": ";
    add_args b n.n_args
  end;
  if n.n_children <> [] then begin
    Buffer.add_string b ", \"children\": [";
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string b ", ";
        node_to_buf b c)
      n.n_children;
    Buffer.add_char b ']'
  end;
  Buffer.add_char b '}'

let node_to_json n =
  let b = Buffer.create 256 in
  node_to_buf b n;
  Buffer.contents b
