let page_bits = 12
let page_size = 1 lsl page_bits

(* A one-entry page cache in front of the hashtable: the interpreter's
   accesses are strongly page-local (loop bodies stream through one array,
   scalars cluster in one stack frame), so most lookups hit [last_page]
   without touching the table. *)
type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  mutable last_key : int;
  mutable last_page : Bytes.t;
}

let create () : t =
  { pages = Hashtbl.create 64; last_key = min_int; last_page = Bytes.empty }

let page (m : t) a =
  let key = a asr page_bits in
  if key = m.last_key then m.last_page
  else begin
    let p =
      match Hashtbl.find_opt m.pages key with
      | Some p -> p
      | None ->
          let p = Bytes.make page_size '\000' in
          Hashtbl.add m.pages key p;
          p
    in
    m.last_key <- key;
    m.last_page <- p;
    p
  end

let read_byte m a = Char.code (Bytes.get (page m a) (a land (page_size - 1)))

let write_byte m a v =
  Bytes.set (page m a) (a land (page_size - 1)) (Char.chr (v land 0xff))

let sign_extend w v =
  match w with
  | 1 -> if v land 0x80 <> 0 then v - 0x100 else v
  | 4 -> if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v
  | _ -> v

(* Multi-byte accesses fetch the page once; only the rare page-straddling
   access falls back to per-byte lookups. *)

let read_slow m a w =
  let v = ref 0 in
  for i = w - 1 downto 0 do
    v := (!v lsl 8) lor read_byte m (a + i)
  done;
  sign_extend w !v

let read m a w =
  let off = a land (page_size - 1) in
  if w = 4 && off + 4 <= page_size then
    Int32.to_int (Bytes.get_int32_le (page m a) off)
  else if w = 1 then sign_extend 1 (read_byte m a)
  else read_slow m a w

let write_slow m a w v =
  for i = 0 to w - 1 do
    write_byte m (a + i) ((v lsr (8 * i)) land 0xff)
  done

let write m a w v =
  let off = a land (page_size - 1) in
  if w = 4 && off + 4 <= page_size then
    Bytes.set_int32_le (page m a) off (Int32.of_int v)
  else if w = 1 then write_byte m a v
  else write_slow m a w v

let pages (m : t) = Hashtbl.length m.pages
