(** Stochastic (MCMC / simulated-annealing) search over SPM buffer
    placements, in the greenthumb superoptimizer mold.

    {!Dse.select_optimal} enumerates the grouped knapsack exactly, which
    dies combinatorially once fusion choices multiply the configuration
    space (2 placement universes per fusable run). This module searches
    the joint space instead: a state assigns at most one buffer candidate
    to each group and a fused/unfused mode to each cluster, mutation
    kernels propose local edits, and Metropolis-Hastings acceptance over
    the {!Energy} cost model with a geometric cooling schedule steers the
    walk. Restart ensembles run on the {!Foray_util.Parallel} domain pool
    with a shared (publish-only) best-so-far; termination is anytime —
    a proposal budget plus an optional wall-clock deadline.

    {b Determinism.} For a fixed {!config.seed} the result is a pure
    function of the problem: chains derive independent streams from the
    seed and never read each other's progress, [Parallel.map] preserves
    order, and the ensemble winner is the lowest-cost chain (ties to the
    lowest index). [jobs] only changes wall-clock time, never the answer.
    The one exception is [deadline_ms], which by nature cuts chains at a
    machine-dependent point. *)

(** {1 Configuration} *)

type config = {
  seed : int;  (** PRNG seed; equal seeds give equal results *)
  budget : int;  (** total proposals, split across the ensemble *)
  deadline_ms : int option;  (** optional wall-clock cutoff *)
  restarts : int;  (** independent annealing chains, >= 1 *)
  jobs : int;  (** domains running the ensemble ([<= 1] = serial) *)
  init_temp : float option;
      (** starting temperature; default auto-scales to the largest
          single-candidate benefit magnitude *)
}

(** seed 42, budget 20000, no deadline, 4 restarts, serial. *)
val default_config : config

(** {1 Mutation kernels} *)

type kernel =
  | Swap  (** replace a group's chosen candidate with a sibling *)
  | Add  (** place a buffer in an empty group *)
  | Drop  (** evict a group's buffer *)
  | Move  (** evict one group's buffer and place one in another (moves
              capacity between groups in a single step) *)
  | Toggle_fuse  (** flip a cluster between fused and separate buffers *)

val kernel_name : kernel -> string

type kernel_stat = { proposed : int; accepted : int }

type stop = Budget | Deadline

val stop_name : stop -> string

(** {1 Problems} *)

(** A search space: groups of mutually-exclusive candidates, partitioned
    into clusters that each carry an optional fused alternative. *)
type problem

(** Plain placement space over candidate groups ({!Reuse.by_ref}); no
    fusion choices ([Toggle_fuse] never fires). *)
val of_candidates : Reuse.candidate list -> problem

(** Joint fusion x placement space from {!Reuse.fusion_space}: each
    fusable run contributes an independent binary mode on top of its
    member placements, so the configuration count grows as
    2{^ fusable runs} x placements — the regime exhaustive enumeration
    cannot reach. *)
val of_model : Foray_core.Model.t -> problem

(** All-main-memory energy (nJ) of every reference covered by the
    problem. *)
val base_energy : problem -> float

(** {1 Search} *)

type result = {
  chosen : Reuse.candidate list;  (** best placement found *)
  cost : float;  (** its energy (nJ), exact (recomputed, not drifted) *)
  base : float;  (** = {!base_energy} of the problem *)
  proposals : int;  (** proposals made across the whole ensemble *)
  chain_proposals : int;  (** proposals made by the winning chain *)
  accepted : int;
  improved : int;  (** accepted proposals that set a new chain best *)
  restarts : int;
  stopped : stop;  (** what ended the search *)
  fused_clusters : int;  (** clusters fused in the best state *)
  fusable_clusters : int;
  wall_s : float;
  kernels : (kernel * kernel_stat) list;
      (** per-kernel proposal/acceptance totals, ensemble-wide *)
  trace : (int * float) list;
      (** winning chain's anytime curve: (chain-local proposal index,
          best-so-far energy), ascending, starting at (0, initial) *)
}

(** [search ?init p ~spm_bytes cfg] anneals [cfg.restarts] chains and
    returns the best placement. Chain 0 starts from [init] when given
    (candidates are matched into the problem by group id, then by
    (site, level)), otherwise from a greedy benefit-density seed — so
    the result is never worse than greedy. Other chains start empty.
    Raises [Invalid_argument] if [cfg.budget < 0] or
    [cfg.restarts < 1]. *)
val search :
  ?init:Reuse.candidate list -> problem -> spm_bytes:int -> config -> result

(** Render the ensemble statistics (proposal counts, per-kernel
    acceptance rates, stop reason) — the search's stderr report. *)
val pp_stats : Format.formatter -> result -> unit
