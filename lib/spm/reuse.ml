open Foray_core

type candidate = {
  group : int;
  site : int;
  lid : int;
  level : int;
  size : int;
  accesses : int;
  fills : int;
  words_per_fill : int;
  writeback : bool;
  reuse_factor : float;
}

let energy c ~spm_bytes =
  let spm = Energy.spm_access spm_bytes in
  let transfers =
    float_of_int (c.fills * c.words_per_fill)
    *. Energy.transfer_word spm_bytes
    *. if c.writeback then 2.0 else 1.0
  in
  (float_of_int c.accesses *. spm) +. transfers

let benefit c ~spm_bytes =
  Energy.baseline c.accesses -. energy c ~spm_bytes

let cdiv a b = (a + b - 1) / b

let candidates_of_ref ~group (chain : Model.mloop list) (r : Model.mref) =
  (* innermost-first loops of the nest, with this ref's coefficient for
     each (0 when the iterator does not appear in the expression) *)
  let inner_first = List.rev chain in
  let coeff lid =
    match List.find_opt (fun (_, l) -> l = lid) r.terms with
    | Some (c, _) -> c
    | None -> 0
  in
  let loops =
    List.map (fun (l : Model.mloop) -> (l.lid, coeff l.lid, max l.trip 1)) inner_first
  in
  (* Only the covered window of a partial expression is bufferable. *)
  let window = List.filteri (fun i _ -> i < r.m) loops in
  let rec build k prefix rest acc =
    match rest with
    | [] -> acc
    | (lid, c, trip) :: rest' ->
        let prefix = prefix @ [ (lid, c, trip) ] in
        let k = k + 1 in
        let span =
          List.fold_left (fun s (_, c, t) -> s + (abs c * (t - 1))) 0 prefix
          + r.width
        in
        let accesses_inside =
          List.fold_left (fun p (_, _, t) -> p * t) 1 prefix
        in
        ignore accesses_inside;
        (* structural fill count: once per iteration of every loop outside
           the covered prefix (correct also for fused buffers serving
           several references per iteration) *)
        let fills =
          List.fold_left
            (fun p (l : Model.mloop) ->
              if List.exists (fun (lid, _, _) -> lid = l.lid) prefix then p
              else p * max 1 l.trip)
            1 chain
        in
        let fill_lid = match rest' with (l, _, _) :: _ -> l | [] -> 0 in
        let cand =
          {
            group;
            site = r.site;
            lid = fill_lid;
            level = k;
            size = span;
            accesses = r.execs;
            fills;
            words_per_fill = cdiv span 4;
            writeback = r.writes > 0;
            reuse_factor =
              float_of_int r.execs /. float_of_int (fills * span);
          }
        in
        build k prefix rest' (cand :: acc)
  in
  (* candidates only make sense when the ref really spans several
     locations *)
  if r.locations < 2 then []
  else build 0 [] window [] |> List.rev

(* window of addresses a ref touches while its covered loops run, with
   outer iterators frozen (identical terms => same outer contribution) *)
let window (chain : Model.mloop list) (r : Model.mref) =
  let trip_of lid =
    match List.find_opt (fun (l : Model.mloop) -> l.lid = lid) chain with
    | Some l -> max 1 l.trip
    | None -> 1
  in
  List.fold_left
    (fun (lo, hi) (c, lid) ->
      let span = c * (trip_of lid - 1) in
      if c < 0 then (lo + span, hi) else (lo, hi + span))
    (r.const, r.const + r.width)
    r.terms

(* Fuse full-affine refs of the same nest with identical terms and
   overlapping/adjacent windows into one virtual ref. *)
let fuse_refs refs =
  let key (chain, (r : Model.mref)) =
    ( List.map (fun (l : Model.mloop) -> l.lid) chain,
      List.sort compare r.terms,
      r.partial )
  in
  let classes = Hashtbl.create 16 in
  List.iter
    (fun ((_, (r : Model.mref)) as item) ->
      let k = key item in
      if r.partial then Hashtbl.add classes (k, r.site, r.const) [ item ]
      else
        let prev = Option.value (Hashtbl.find_opt classes (k, 0, 0)) ~default:[] in
        Hashtbl.replace classes (k, 0, 0) (item :: prev))
    refs;
  Hashtbl.fold
    (fun _ items acc ->
      match items with
      | [] -> acc
      | [ one ] -> [ one ] :: acc
      | many ->
          (* sort by window start; fuse overlapping/adjacent runs *)
          let sorted =
            List.sort
              (fun (c1, r1) (c2, r2) ->
                compare (fst (window c1 r1)) (fst (window c2 r2)))
              many
          in
          let runs =
            List.fold_left
              (fun runs ((chain, r) as item) ->
                let lo, _ = window chain r in
                match runs with
                (* strict overlap only: adjacency would glue refs that
                   merely touch neighbouring arrays *)
                | ((_, prev_hi) :: _ as run) :: rest when lo < prev_hi ->
                    let _, hi = window chain r in
                    ((item, max prev_hi hi) :: run) :: rest
                | _ ->
                    let _, hi = window chain r in
                    [ (item, hi) ] :: runs)
              [] sorted
          in
          List.fold_left
            (fun acc run -> List.map fst run :: acc)
            acc runs)
    classes []

(* Represent a run of fused refs as one virtual ref spanning their union. *)
let virtual_ref items =
  match items with
  | [ (chain, r) ] -> (chain, r)
  | (chain, (first : Model.mref)) :: _ ->
      let consts = List.map (fun (_, (r : Model.mref)) -> r.const) items in
      let lo = List.fold_left min max_int consts in
      let hi =
        List.fold_left
          (fun acc (_, (r : Model.mref)) -> max acc (r.const + r.width))
          0 items
      in
      let sum f = List.fold_left (fun a (_, r) -> a + f r) 0 items in
      ( chain,
        {
          first with
          const = lo;
          width = hi - lo;
          execs = sum (fun (r : Model.mref) -> r.execs);
          reads = sum (fun (r : Model.mref) -> r.reads);
          writes = sum (fun (r : Model.mref) -> r.writes);
          locations = sum (fun (r : Model.mref) -> r.locations);
        } )
  | [] -> invalid_arg "Reuse.virtual_ref: empty run"

let candidates ?(fuse = false) (model : Model.t) =
  let refs = Model.all_refs model in
  let units =
    if fuse then List.map virtual_ref (fuse_refs refs)
    else refs
  in
  units
  |> List.mapi (fun i (chain, r) -> candidates_of_ref ~group:i chain r)
  |> List.concat

type fusion_run = {
  fr_fused : candidate list;
  fr_members : candidate list list;
  fr_base : float;
}

let fusion_space (model : Model.t) =
  let runs = fuse_refs (Model.all_refs model) in
  let ctr = ref 0 in
  let fresh () =
    let g = !ctr in
    incr ctr;
    g
  in
  List.map
    (fun run ->
      let fr_members =
        List.map
          (fun (chain, r) -> candidates_of_ref ~group:(fresh ()) chain r)
          run
      in
      let fr_fused =
        match run with
        | [] | [ _ ] -> []
        | _ ->
            let chain, vr = virtual_ref run in
            candidates_of_ref ~group:(fresh ()) chain vr
      in
      let fr_base =
        List.fold_left
          (fun acc (_, (r : Model.mref)) -> acc +. Energy.baseline r.execs)
          0.0 run
      in
      { fr_fused; fr_members; fr_base })
    runs

let by_ref cands =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let prev = Option.value (Hashtbl.find_opt tbl c.group) ~default:[] in
      Hashtbl.replace tbl c.group (c :: prev))
    cands;
  Hashtbl.fold (fun group cs acc -> (group, List.rev cs) :: acc) tbl []
  |> List.sort compare

let pp fmt c =
  Format.fprintf fmt
    "site=%x level=%d size=%dB accesses=%d fills=%d reuse=%.1f%s" c.site
    c.level c.size c.accesses c.fills c.reuse_factor
    (if c.writeback then " (writeback)" else "")
