(** Design-space exploration: choosing scratch-pad buffers (step 3 of the
    Phase II flow in Figure 3).

    Each reference contributes a group of mutually-exclusive buffer
    candidates (one per covered loop level); the selector picks at most one
    candidate per group so that the total buffer size fits the SPM and the
    energy benefit is maximal — a grouped knapsack. Both an optimal dynamic
    program and the classic greedy-by-benefit-density heuristic are
    provided; the ablation bench compares them. *)

type selection = {
  spm_bytes : int;
  chosen : Reuse.candidate list;
  used_bytes : int;
  energy_base : float;  (** all candidate-reference accesses from main memory *)
  energy_opt : float;  (** after placing the chosen buffers *)
  saving_pct : float;
}

(** Optimal grouped-knapsack selection for a given SPM capacity. *)
val select_optimal : Reuse.candidate list -> spm_bytes:int -> selection

(** Greedy: candidates sorted by benefit density (benefit per byte), taken
    when they fit and their group is still free. *)
val select_greedy : Reuse.candidate list -> spm_bytes:int -> selection

(** [sweep ?sizes ?jobs model] runs optimal selection for each SPM size
    (default 256 B .. 16 KiB in powers of two). [jobs] (default 1) solves
    the per-size knapsacks on a {!Foray_util.Parallel} pool; the result
    list keeps [sizes] order regardless. *)
val sweep :
  ?sizes:int list -> ?jobs:int -> Foray_core.Model.t -> (int * selection) list

val pp_selection : Format.formatter -> selection -> unit
