(** Design-space exploration: choosing scratch-pad buffers (step 3 of the
    Phase II flow in Figure 3).

    Each reference contributes a group of mutually-exclusive buffer
    candidates (one per covered loop level); the selector picks at most one
    candidate per group so that the total buffer size fits the SPM and the
    energy benefit is maximal — a grouped knapsack. {!solve} fronts three
    strategies behind one entry point: the optimal dynamic program, the
    classic greedy-by-benefit-density heuristic, and the {!Stochastic}
    simulated-annealing search (which also scales to the joint
    fusion x placement space exhaustive enumeration cannot reach, via
    {!solve_fused}). *)

type selection = {
  spm_bytes : int;
  chosen : Reuse.candidate list;
  used_bytes : int;
  energy_base : float;  (** all candidate-reference accesses from main memory *)
  energy_opt : float;  (** after placing the chosen buffers *)
  saving_pct : float;
}

(** How {!solve} explores the placement space. *)
type strategy =
  | Optimal  (** exact grouped-knapsack dynamic program *)
  | Greedy  (** benefit-density heuristic, one pass *)
  | Stochastic of Stochastic.config
      (** annealing ensemble ({!Stochastic.search}), seeded from the
          greedy placement so it never does worse than [Greedy] *)

val strategy_name : strategy -> string

(** A solved instance: the selection plus what is known about it. *)
type solution = {
  selection : selection;
  strategy : strategy;
  optimal_energy : float option;
      (** provably optimal energy when the strategy guarantees one
          ([Optimal]); [None] for heuristic strategies *)
  search : Stochastic.result option;
      (** search trace and proposal statistics ([Stochastic] only) *)
}

(** [solve ?strategy cands ~spm_bytes] (default [Optimal]) selects
    buffers for one SPM capacity. For any placement the energy accounting
    is shared across strategies, so equal placements yield bitwise-equal
    selections. *)
val solve :
  ?strategy:strategy -> Reuse.candidate list -> spm_bytes:int -> solution

(** [solve_fused model ~spm_bytes cfg] explores the joint
    fusion x placement space ({!Stochastic.of_model}): every fusable
    reference run adds a binary fuse/keep-separate choice on top of the
    knapsack, a space only the stochastic strategy can search. The
    returned [selection.energy_base] covers {e every} reference of the
    model's fusion runs (also ones with no candidates of their own), so
    its absolute energies are not comparable with {!solve}'s — compare
    savings instead. *)
val solve_fused :
  Foray_core.Model.t -> spm_bytes:int -> Stochastic.config -> solution

(** [select_optimal cands ~spm_bytes] =
    [(solve ~strategy:Optimal cands ~spm_bytes).selection]. Thin wrapper,
    retained for one release. *)
val select_optimal : Reuse.candidate list -> spm_bytes:int -> selection

(** [select_greedy cands ~spm_bytes] =
    [(solve ~strategy:Greedy cands ~spm_bytes).selection]. Thin wrapper,
    retained for one release. *)
val select_greedy : Reuse.candidate list -> spm_bytes:int -> selection

(** The default sweep sizes: 256 B .. 16 KiB in powers of two. *)
val default_sizes : int list

(** [sweep ?strategy ?sizes ?jobs model] solves each SPM size with the
    given strategy (default [Optimal], sizes {!default_sizes}). [jobs]
    (default 1) solves the per-size instances on a {!Foray_util.Parallel}
    pool; the result list keeps [sizes] order regardless, and with a
    [Stochastic] strategy the per-size results are independent of both
    [jobs] settings. *)
val sweep :
  ?strategy:strategy ->
  ?sizes:int list ->
  ?jobs:int ->
  Foray_core.Model.t ->
  (int * solution) list

val pp_selection : Format.formatter -> selection -> unit
