(** Data-reuse analysis over a FORAY model (step 2 of the shaded Phase II
    flow in the paper's Figure 3, in the style of Issenin et al.,
    DATE 2004).

    For every model reference and every prefix of its innermost loops, a
    {e buffer candidate} is computed: a scratch-pad buffer holding the data
    the reference touches during one complete execution of those inner
    loops. The buffer is filled anew each time the next-outer loop
    advances; its profitability is the energy saved by serving accesses
    from SPM minus the cost of the fills (and write-backs for written
    data). *)

type candidate = {
  group : int;  (** identifies the (context, reference) the buffer serves;
                    candidates of one group are mutually exclusive *)
  site : int;  (** the reference the buffer serves *)
  lid : int;  (** loop whose body the buffer lives in (fill point); 0 when
                  the buffer covers the whole nest (filled once) *)
  level : int;  (** number of innermost loops the buffer covers, >= 1 *)
  size : int;  (** buffer bytes (span of addresses touched inside) *)
  accesses : int;  (** accesses served from SPM (the ref's total execs) *)
  fills : int;  (** times the buffer is (re)loaded *)
  words_per_fill : int;  (** 4-byte words moved per fill *)
  writeback : bool;  (** data is written and must be copied back *)
  reuse_factor : float;  (** accesses per buffered byte, the reuse signal *)
}

(** Energy (nJ) of adopting the candidate with an SPM of [spm_bytes]:
    SPM-served accesses plus fill (and write-back) transfers. *)
val energy : candidate -> spm_bytes:int -> float

(** Energy saved versus serving the reference from main memory (may be
    negative for unprofitable candidates). *)
val benefit : candidate -> spm_bytes:int -> float

(** All candidates of a model, one per (reference, inner-loop prefix) with
    positive potential reuse. References whose expression is partial only
    produce candidates inside their covered window, as in §4 of the
    paper.

    With [fuse] (default false), full-affine references of the same loop
    nest with identical coefficient terms and overlapping (or adjacent)
    address windows are served by one shared buffer — e.g. a stencil's
    [A\[i-1\]], [A\[i\]], [A\[i+1\]] cost one buffer, not three. Fused
    references form a single candidate group. *)
val candidates : ?fuse:bool -> Foray_core.Model.t -> candidate list

(** One fusion {e run}: a maximal set of references that could share a
    single buffer (same nest, identical coefficient terms, overlapping
    windows — the [fuse] classes of {!candidates}). The joint
    design space over "fuse this run or keep its members separate" is
    what {!Stochastic} explores; exhaustive selection cannot, because the
    per-run choice multiplies the configuration count by 2 per fusable
    run. *)
type fusion_run = {
  fr_fused : candidate list;
      (** candidates of the shared (virtual-ref) buffer; [[]] when the run
          has a single member or the union is not bufferable *)
  fr_members : candidate list list;
      (** per-member candidate groups, in run order (a member with too few
          distinct locations contributes [[]]) *)
  fr_base : float;
      (** all-main-memory energy of {e every} reference in the run —
          including ones too small to have candidates of their own, which
          a fused buffer still serves *)
}

(** The fusion design space of a model: one {!fusion_run} per fuse class
    run. Group ids are freshly numbered and disjoint across the whole
    result (members and fused buffers alike). *)
val fusion_space : Foray_core.Model.t -> fusion_run list

(** Candidates grouped by [group] (for one-buffer-per-reference
    selection). *)
val by_ref : candidate list -> (int * candidate list) list

val pp : Format.formatter -> candidate -> unit
