module Obs = Foray_obs.Obs
module Prng = Foray_util.Prng
module Parallel = Foray_util.Parallel

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)

let m_search_timer = lazy (Obs.timer "spm.stochastic.search")
let m_improvements = lazy (Obs.counter "spm.stochastic.improvements")
let m_best = lazy (Obs.gauge "spm.stochastic.best_nj")

let m_proposed kernel =
  Obs.counter ~labels:[ ("kernel", kernel) ] "spm.stochastic.proposals"

let m_accepted kernel =
  Obs.counter ~labels:[ ("kernel", kernel) ] "spm.stochastic.accepts"

(* ------------------------------------------------------------------ *)
(* Configuration                                                      *)

type config = {
  seed : int;
  budget : int;
  deadline_ms : int option;
  restarts : int;
  jobs : int;
  init_temp : float option;
}

let default_config =
  {
    seed = 42;
    budget = 20_000;
    deadline_ms = None;
    restarts = 4;
    jobs = 1;
    init_temp = None;
  }

type kernel = Swap | Add | Drop | Move | Toggle_fuse

let kernel_name = function
  | Swap -> "swap"
  | Add -> "add"
  | Drop -> "drop"
  | Move -> "move"
  | Toggle_fuse -> "toggle_fuse"

let all_kernels = [ Swap; Add; Drop; Move; Toggle_fuse ]
let n_kernels = 5

let kindex = function
  | Swap -> 0
  | Add -> 1
  | Drop -> 2
  | Move -> 3
  | Toggle_fuse -> 4

type kernel_stat = { proposed : int; accepted : int }
type stop = Budget | Deadline

let stop_name = function Budget -> "budget" | Deadline -> "deadline"

type result = {
  chosen : Reuse.candidate list;
  cost : float;
  base : float;
  proposals : int;
  chain_proposals : int;
  accepted : int;
  improved : int;
  restarts : int;
  stopped : stop;
  fused_clusters : int;
  fusable_clusters : int;
  wall_s : float;
  kernels : (kernel * kernel_stat) list;
  trace : (int * float) list;
}

(* ------------------------------------------------------------------ *)
(* Problems                                                           *)

(* A group is a set of mutually-exclusive buffer candidates (at most one
   may be placed); a cluster owns the groups of one fusion run and the
   flag choosing between its fused buffer and its separate members. A
   plain (non-fusing) problem is the degenerate case: one single-member
   cluster per group. *)

type group = { g_cands : Reuse.candidate array; g_head : float }

type cluster = {
  cl_members : int array;  (* group indices, active while not fused *)
  cl_fused : int;  (* group index active while fused; -1 = not fusable *)
  cl_base : float;  (* all-main-memory energy of every ref in the run *)
  cl_resid : float;  (* cl_base - sum of member head baselines *)
}

type problem = {
  groups : group array;
  clusters : cluster array;
  cluster_of : int array;  (* group index -> cluster index *)
  by_group_id : (int, int) Hashtbl.t;  (* candidate .group -> group index *)
}

let head_base (cs : Reuse.candidate list) =
  match cs with c :: _ -> Energy.baseline c.accesses | [] -> 0.0

let build clusters_spec =
  (* clusters_spec: (member candidate lists, fused candidate list, base) *)
  let groups = ref [] and n_groups = ref 0 in
  let add_group cs =
    let idx = !n_groups in
    incr n_groups;
    groups :=
      { g_cands = Array.of_list cs; g_head = head_base cs } :: !groups;
    idx
  in
  let clusters =
    List.filter_map
      (fun (members, fused, base) ->
        let member_idx = List.map add_group members in
        match (member_idx, fused) with
        | [], [] -> None
        | [], _ :: _ ->
            (* only the shared buffer is placeable: fold it in as the lone
               member so every cluster has a non-empty unfused mode *)
            let f = add_group fused in
            Some
              {
                cl_members = [| f |];
                cl_fused = -1;
                cl_base = base;
                cl_resid = base -. head_base fused;
              }
        | _ :: _, _ ->
            let resid =
              base
              -. List.fold_left
                   (fun acc m -> acc +. head_base m)
                   0.0 members
            in
            Some
              {
                cl_members = Array.of_list member_idx;
                cl_fused =
                  (match fused with [] -> -1 | cs -> add_group cs);
                cl_base = base;
                cl_resid = (if resid > 0.0 then resid else 0.0);
              })
      clusters_spec
  in
  let groups = Array.of_list (List.rev !groups) in
  let clusters = Array.of_list clusters in
  let cluster_of = Array.make (Array.length groups) 0 in
  Array.iteri
    (fun ci cl ->
      Array.iter (fun g -> cluster_of.(g) <- ci) cl.cl_members;
      if cl.cl_fused >= 0 then cluster_of.(cl.cl_fused) <- ci)
    clusters;
  let by_group_id = Hashtbl.create 64 in
  Array.iteri
    (fun gi g ->
      if Array.length g.g_cands > 0 then
        Hashtbl.replace by_group_id g.g_cands.(0).Reuse.group gi)
    groups;
  { groups; clusters; cluster_of; by_group_id }

let of_candidates cands =
  build
    (List.map
       (fun (_, cs) -> ([ cs ], [], head_base cs))
       (Reuse.by_ref cands))

let of_model model =
  build
    (List.map
       (fun (r : Reuse.fusion_run) ->
         ( List.filter (fun cs -> cs <> []) r.fr_members,
           r.fr_fused,
           r.fr_base ))
       (Reuse.fusion_space model))

let base_energy p =
  Array.fold_left (fun acc cl -> acc +. cl.cl_base) 0.0 p.clusters

let fusable p =
  let l = ref [] in
  Array.iteri
    (fun ci cl -> if cl.cl_fused >= 0 then l := ci :: !l)
    p.clusters;
  Array.of_list (List.rev !l)

(* ------------------------------------------------------------------ *)
(* Search state                                                       *)

type state = {
  choice : int array;  (* per group: candidate index, -1 = unplaced *)
  fused : bool array;  (* per cluster *)
  mutable used : int;
  mutable cost : float;
}

let fresh_state p =
  {
    choice = Array.make (Array.length p.groups) (-1);
    fused = Array.make (Array.length p.clusters) false;
    used = 0;
    cost = 0.0;
  }

(* Per-(group, candidate) tables at the search's SPM size, so proposal
   evaluation never recomputes the energy model. *)
type tables = { e : float array array; sz : int array array; cap : int }

let make_tables p ~spm_bytes =
  {
    e =
      Array.map
        (fun g ->
          Array.map (fun c -> Reuse.energy c ~spm_bytes) g.g_cands)
        p.groups;
    sz = Array.map (fun g -> Array.map (fun c -> c.Reuse.size) g.g_cands) p.groups;
    cap = spm_bytes;
  }

let group_cost p tb st g =
  let c = st.choice.(g) in
  if c >= 0 then tb.e.(g).(c) else p.groups.(g).g_head

let group_used tb st g =
  let c = st.choice.(g) in
  if c >= 0 then tb.sz.(g).(c) else 0

(* Energy and bytes of one cluster in the given mode. *)
let mode_cost p tb st ci ~fus =
  let cl = p.clusters.(ci) in
  if fus then
    let c = st.choice.(cl.cl_fused) in
    if c >= 0 then (tb.e.(cl.cl_fused).(c), tb.sz.(cl.cl_fused).(c))
    else (cl.cl_base, 0)
  else begin
    let cost = ref cl.cl_resid and used = ref 0 in
    Array.iter
      (fun g ->
        cost := !cost +. group_cost p tb st g;
        used := !used + group_used tb st g)
      cl.cl_members;
    (!cost, !used)
  end

let exact_cost p tb st =
  let total = ref 0.0 in
  Array.iteri
    (fun ci _ ->
      let c, _ = mode_cost p tb st ci ~fus:st.fused.(ci) in
      total := !total +. c)
    p.clusters;
  !total

let exact_used p tb st =
  let total = ref 0 in
  Array.iteri
    (fun ci _ ->
      let _, u = mode_cost p tb st ci ~fus:st.fused.(ci) in
      total := !total + u)
    p.clusters;
  !total

(* Greedy-by-benefit-density seed over the unfused groups, the classic
   heuristic the ensemble's first chain starts from (so the search result
   can never be worse than greedy). *)
let greedy_seed p tb st =
  let scored = ref [] in
  Array.iteri
    (fun gi g ->
      Array.iteri
        (fun i _ ->
          let b = g.g_head -. tb.e.(gi).(i) in
          if b > 0.0 && tb.sz.(gi).(i) <= tb.cap then
            scored :=
              (b /. float_of_int (max 1 tb.sz.(gi).(i)), gi, i) :: !scored)
        g.g_cands)
    p.groups;
  let scored =
    List.sort (fun (a, _, _) (b, _, _) -> compare b a) (List.rev !scored)
  in
  List.iter
    (fun (_, gi, i) ->
      (* groups inside fusable clusters start active (unfused mode) *)
      if st.choice.(gi) < 0 && st.used + tb.sz.(gi).(i) <= tb.cap then begin
        let cl = p.clusters.(p.cluster_of.(gi)) in
        if cl.cl_fused <> gi then begin
          st.choice.(gi) <- i;
          st.used <- st.used + tb.sz.(gi).(i)
        end
      end)
    scored

let apply_init p tb st init =
  List.iter
    (fun (c : Reuse.candidate) ->
      match Hashtbl.find_opt p.by_group_id c.group with
      | None -> ()
      | Some gi ->
          let cands = p.groups.(gi).g_cands in
          Array.iteri
            (fun i (k : Reuse.candidate) ->
              if k.level = c.level && k.site = c.site && st.choice.(gi) < 0
                 && st.used + tb.sz.(gi).(i) <= tb.cap
              then begin
                st.choice.(gi) <- i;
                st.used <- st.used + tb.sz.(gi).(i)
              end)
            cands)
    init

(* ------------------------------------------------------------------ *)
(* One annealing chain                                                *)

type chain_out = {
  co_cost : float;
  co_choice : int array;
  co_fused : bool array;
  co_proposals : int;
  co_proposed : int array;
  co_accepted : int array;
  co_improved : int;
  co_trace : (int * float) list;  (* ascending chain-local proposal idx *)
  co_stopped : stop;
}

let frand rng = float_of_int (Prng.int rng 0x4000_0000) /. 1073741824.0

(* Derive decorrelated per-chain seeds from the base seed. *)
let chain_seed seed i = (seed * 0x9e3779b1) lxor ((i + 1) * 0x85ebca6b)

let run_chain p tb ~cfg ~chain_idx ~budget ~deadline_at ~init ~shared_best ()
    =
  let rng = Prng.create (chain_seed cfg.seed chain_idx) in
  let st = fresh_state p in
  (if chain_idx = 0 then
     match init with
     | Some cs -> apply_init p tb st cs
     | None -> greedy_seed p tb st);
  st.cost <- exact_cost p tb st;
  st.used <- exact_used p tb st;
  let n_groups = Array.length p.groups in
  let n_clusters = Array.length p.clusters in
  let fusable_arr = fusable p in
  let n_fusable = Array.length fusable_arr in
  let proposed = Array.make n_kernels 0 in
  let accepted = Array.make n_kernels 0 in
  let best_cost = ref st.cost in
  let best_choice = ref (Array.copy st.choice) in
  let best_fused = ref (Array.copy st.fused) in
  let improved = ref 0 in
  let trace = ref [ (0, st.cost) ] in
  let stopped = ref Budget in
  let proposals = ref 0 in
  (* publish an improvement to the ensemble's shared best-so-far (anytime
     visibility only: chains never read it, which keeps every chain — and
     therefore the merged result — deterministic for any [jobs]) *)
  let publish cost =
    let bits = Int64.to_int (Int64.bits_of_float cost) in
    let rec cas () =
      let cur = Atomic.get shared_best in
      if cost < Int64.float_of_bits (Int64.of_int cur) then
        if not (Atomic.compare_and_set shared_best cur bits) then cas ()
    in
    cas ();
    Obs.set (Lazy.force m_best)
      (int_of_float (Int64.float_of_bits (Int64.of_int (Atomic.get shared_best))))
  in
  if n_groups > 0 && budget > 0 then begin
    (* geometric cooling across the chain's budget, scaled to the problem's
       benefit magnitudes so acceptance starts permissive and ends greedy *)
    let t0 =
      match cfg.init_temp with
      | Some t -> Float.max t 1e-9
      | None ->
          let m = ref 1.0 in
          Array.iteri
            (fun gi g ->
              Array.iteri
                (fun i _ ->
                  let d = Float.abs (g.g_head -. tb.e.(gi).(i)) in
                  if d > !m then m := d)
                g.g_cands)
            p.groups;
          0.5 *. !m
    in
    let t_end = Float.max (t0 *. 1e-4) 1e-9 in
    let alpha = (t_end /. t0) ** (1.0 /. float_of_int budget) in
    let t = ref t0 in
    let active_count ci =
      if st.fused.(ci) then 1
      else Array.length p.clusters.(ci).cl_members
    in
    let active_group ci j =
      if st.fused.(ci) then p.clusters.(ci).cl_fused
      else p.clusters.(ci).cl_members.(j)
    in
    let pick_active_group () =
      let ci = Prng.int rng n_clusters in
      active_group ci (Prng.int rng (active_count ci))
    in
    (* Kernels only apply to groups in the right state (placed/empty);
       resample a bounded number of times so proposals rarely no-op, which
       e.g. lets [Move] find the one placed buffer worth evicting. *)
    let rec pick_group_where n pred =
      let g = pick_active_group () in
      if n <= 0 || pred g then g else pick_group_where (n - 1) pred
    in
    let pick_group_where pred = pick_group_where 7 pred in
    (* A proposal: Some (delta_cost, delta_used, apply) or None when the
       sampled move is inapplicable (counted as a rejected proposal). *)
    let propose kernel =
      match kernel with
      | Swap ->
          let g =
            pick_group_where (fun g ->
                st.choice.(g) >= 0 && Array.length p.groups.(g).g_cands > 1)
          in
          let c = st.choice.(g) in
          let n = Array.length p.groups.(g).g_cands in
          if c < 0 || n < 2 then None
          else begin
            let i =
              let i = Prng.int rng (n - 1) in
              if i >= c then i + 1 else i
            in
            Some
              ( tb.e.(g).(i) -. tb.e.(g).(c),
                tb.sz.(g).(i) - tb.sz.(g).(c),
                fun () -> st.choice.(g) <- i )
          end
      | Add ->
          let g = pick_group_where (fun g -> st.choice.(g) < 0) in
          if st.choice.(g) >= 0 then None
          else begin
            let i = Prng.int rng (Array.length p.groups.(g).g_cands) in
            Some
              ( tb.e.(g).(i) -. p.groups.(g).g_head,
                tb.sz.(g).(i),
                fun () -> st.choice.(g) <- i )
          end
      | Drop ->
          let g = pick_group_where (fun g -> st.choice.(g) >= 0) in
          let c = st.choice.(g) in
          if c < 0 then None
          else
            Some
              ( p.groups.(g).g_head -. tb.e.(g).(c),
                -tb.sz.(g).(c),
                fun () -> st.choice.(g) <- -1 )
      | Move ->
          let ga = pick_group_where (fun g -> st.choice.(g) >= 0) in
          let gb =
            pick_group_where (fun g -> g <> ga && st.choice.(g) < 0)
          in
          let ca = st.choice.(ga) in
          if ga = gb || ca < 0 || st.choice.(gb) >= 0 then None
          else begin
            let i = Prng.int rng (Array.length p.groups.(gb).g_cands) in
            Some
              ( p.groups.(ga).g_head -. tb.e.(ga).(ca)
                +. tb.e.(gb).(i) -. p.groups.(gb).g_head,
                tb.sz.(gb).(i) - tb.sz.(ga).(ca),
                fun () ->
                  st.choice.(ga) <- -1;
                  st.choice.(gb) <- i )
          end
      | Toggle_fuse ->
          if n_fusable = 0 then None
          else begin
            let ci = fusable_arr.(Prng.int rng n_fusable) in
            let fus = st.fused.(ci) in
            let cur_c, cur_u = mode_cost p tb st ci ~fus in
            let new_c, new_u = mode_cost p tb st ci ~fus:(not fus) in
            Some
              ( new_c -. cur_c,
                new_u - cur_u,
                fun () -> st.fused.(ci) <- not fus )
          end
    in
    let weights =
      [| 3; 3; 2; 2; (if n_fusable > 0 then 2 else 0) |]
    in
    let w_total = Array.fold_left ( + ) 0 weights in
    let pick_kernel () =
      let r = ref (Prng.int rng w_total) in
      let k = ref Swap in
      (try
         List.iter
           (fun kernel ->
             r := !r - weights.(kindex kernel);
             if !r < 0 then begin
               k := kernel;
               raise Exit
             end)
           all_kernels
       with Exit -> ());
      !k
    in
    (try
       for k = 1 to budget do
         (match deadline_at with
         | Some at when k land 255 = 0 && Obs.now () >= at ->
             stopped := Deadline;
             raise Exit
         | _ -> ());
         proposals := k;
         t := !t *. alpha;
         let kernel = pick_kernel () in
         let ki = kindex kernel in
         proposed.(ki) <- proposed.(ki) + 1;
         match propose kernel with
         | None -> ()
         | Some (delta, d_used, apply) ->
             if
               st.used + d_used <= tb.cap
               && (delta <= 0.0 || frand rng < exp (-.delta /. !t))
             then begin
               apply ();
               st.used <- st.used + d_used;
               st.cost <- st.cost +. delta;
               accepted.(ki) <- accepted.(ki) + 1;
               if st.cost < !best_cost -. 1e-9 then begin
                 (* resync the incremental sum before recording a best, so
                    float drift can never inflate the reported result *)
                 st.cost <- exact_cost p tb st;
                 if st.cost < !best_cost -. 1e-9 then begin
                   best_cost := st.cost;
                   best_choice := Array.copy st.choice;
                   best_fused := Array.copy st.fused;
                   incr improved;
                   trace := (k, st.cost) :: !trace;
                   publish st.cost
                 end
               end
             end
       done
     with Exit -> ())
  end;
  {
    co_cost = !best_cost;
    co_choice = !best_choice;
    co_fused = !best_fused;
    co_proposals = !proposals;
    co_proposed = proposed;
    co_accepted = accepted;
    co_improved = !improved;
    co_trace = List.rev !trace;
    co_stopped = !stopped;
  }

(* ------------------------------------------------------------------ *)
(* Ensemble                                                           *)

let chosen_of p (choice : int array) (fused : bool array) =
  let out = ref [] in
  Array.iteri
    (fun ci cl ->
      let groups =
        if cl.cl_fused >= 0 && fused.(ci) then [| cl.cl_fused |]
        else cl.cl_members
      in
      Array.iter
        (fun g ->
          let c = choice.(g) in
          if c >= 0 then out := p.groups.(g).g_cands.(c) :: !out)
        groups)
    p.clusters;
  List.rev !out

let search ?init (p : problem) ~spm_bytes (cfg : config) =
  if cfg.budget < 0 then invalid_arg "Stochastic.search: budget must be >= 0";
  if cfg.restarts < 1 then
    invalid_arg "Stochastic.search: restarts must be >= 1";
  let tb = make_tables p ~spm_bytes in
  let t_start = Obs.now () in
  let deadline_at =
    Option.map
      (fun ms -> t_start +. (float_of_int ms /. 1000.0))
      cfg.deadline_ms
  in
  let shared_best =
    Atomic.make (Int64.to_int (Int64.bits_of_float infinity))
  in
  let per_chain = cfg.budget / cfg.restarts in
  let remainder = cfg.budget - (per_chain * cfg.restarts) in
  let chains =
    Obs.time (Lazy.force m_search_timer) (fun () ->
        Parallel.map ~jobs:cfg.jobs
          (fun i ->
            run_chain p tb ~cfg ~chain_idx:i
              ~budget:(per_chain + if i = 0 then remainder else 0)
              ~deadline_at ~init ~shared_best ())
          (List.init cfg.restarts Fun.id))
  in
  let winner =
    List.fold_left
      (fun acc c -> if c.co_cost < acc.co_cost then c else acc)
      (List.hd chains) (List.tl chains)
  in
  let sum f = List.fold_left (fun a c -> a + f c) 0 chains in
  let per_kernel ki =
    {
      proposed = sum (fun c -> c.co_proposed.(ki));
      accepted = sum (fun c -> c.co_accepted.(ki));
    }
  in
  let kernels = List.map (fun k -> (k, per_kernel (kindex k))) all_kernels in
  (* fold the ensemble's aggregate statistics into the process registry *)
  List.iter
    (fun (k, (s : kernel_stat)) ->
      Obs.add (m_proposed (kernel_name k)) s.proposed;
      Obs.add (m_accepted (kernel_name k)) s.accepted)
    kernels;
  Obs.add (Lazy.force m_improvements) (sum (fun c -> c.co_improved));
  let fused_clusters =
    let n = ref 0 in
    Array.iteri
      (fun ci cl ->
        if cl.cl_fused >= 0 && winner.co_fused.(ci) then incr n)
      p.clusters;
    !n
  in
  {
    chosen = chosen_of p winner.co_choice winner.co_fused;
    cost = winner.co_cost;
    base = base_energy p;
    proposals = sum (fun c -> c.co_proposals);
    chain_proposals = winner.co_proposals;
    accepted =
      sum (fun c -> Array.fold_left ( + ) 0 c.co_accepted);
    improved = sum (fun c -> c.co_improved);
    restarts = cfg.restarts;
    stopped =
      (if List.exists (fun c -> c.co_stopped = Deadline) chains then Deadline
       else Budget);
    fused_clusters;
    fusable_clusters = Array.length (fusable p);
    wall_s = Obs.now () -. t_start;
    kernels;
    trace = winner.co_trace;
  }

let pp_stats fmt r =
  let acc_pct (s : kernel_stat) =
    if s.proposed = 0 then 0.0
    else 100.0 *. float_of_int s.accepted /. float_of_int s.proposed
  in
  Format.fprintf fmt
    "stochastic: %d proposal(s) over %d chain(s), %d accepted, %d \
     improvement(s), stopped on %s, %.2fs"
    r.proposals r.restarts r.accepted r.improved (stop_name r.stopped)
    r.wall_s;
  if r.fusable_clusters > 0 then
    Format.fprintf fmt ", %d/%d cluster(s) fused" r.fused_clusters
      r.fusable_clusters;
  Format.pp_print_newline fmt ();
  List.iter
    (fun (k, s) ->
      if s.proposed > 0 then
        Format.fprintf fmt "  %-12s %8d proposed  %8d accepted (%.1f%%)@."
          (kernel_name k) s.proposed s.accepted (acc_pct s))
    r.kernels
