type selection = {
  spm_bytes : int;
  chosen : Reuse.candidate list;
  used_bytes : int;
  energy_base : float;
  energy_opt : float;
  saving_pct : float;
}

type strategy = Optimal | Greedy | Stochastic of Stochastic.config

let strategy_name = function
  | Optimal -> "optimal"
  | Greedy -> "greedy"
  | Stochastic _ -> "stochastic"

type solution = {
  selection : selection;
  strategy : strategy;
  optimal_energy : float option;
  search : Stochastic.result option;
}

(* Energy accounting over the set of candidate references: references
   without a chosen buffer stay in main memory. *)
let finalize ~spm_bytes ~all_groups chosen =
  let chosen_groups = Hashtbl.create 16 in
  List.iter
    (fun (c : Reuse.candidate) -> Hashtbl.replace chosen_groups c.group ())
    chosen;
  let base =
    List.fold_left
      (fun acc (_, cands) ->
        match cands with
        | (c : Reuse.candidate) :: _ -> acc +. Energy.baseline c.accesses
        | [] -> acc)
      0.0 all_groups
  in
  let opt =
    List.fold_left
      (fun acc (g, cands) ->
        if Hashtbl.mem chosen_groups g then acc
        else
          match cands with
          | (c : Reuse.candidate) :: _ -> acc +. Energy.baseline c.accesses
          | [] -> acc)
      0.0 all_groups
    +. List.fold_left
         (fun acc c -> acc +. Reuse.energy c ~spm_bytes)
         0.0 chosen
  in
  {
    spm_bytes;
    chosen;
    used_bytes = List.fold_left (fun a (c : Reuse.candidate) -> a + c.size) 0 chosen;
    energy_base = base;
    energy_opt = opt;
    saving_pct = (if base > 0.0 then 100.0 *. (base -. opt) /. base else 0.0);
  }

let optimal_impl cands ~spm_bytes =
  let groups = Reuse.by_ref cands in
  (* dp.(c) = best (benefit, chosen) using capacity exactly <= c *)
  let cap = spm_bytes in
  let dp = Array.make (cap + 1) (0.0, []) in
  List.iter
    (fun (_, gcands) ->
      let next = Array.copy dp in
      List.iter
        (fun (c : Reuse.candidate) ->
          let b = Reuse.benefit c ~spm_bytes in
          if b > 0.0 && c.size <= cap then
            for cc = c.size to cap do
              let prev_b, prev_l = dp.(cc - c.size) in
              let cand_b = prev_b +. b in
              if cand_b > fst next.(cc) then next.(cc) <- (cand_b, c :: prev_l)
            done)
        gcands;
      Array.blit next 0 dp 0 (cap + 1))
    groups;
  let best = Array.fold_left (fun acc x -> if fst x > fst acc then x else acc) dp.(0) dp in
  finalize ~spm_bytes ~all_groups:groups (List.rev (snd best))

let greedy_impl cands ~spm_bytes =
  let groups = Reuse.by_ref cands in
  let scored =
    List.filter_map
      (fun (c : Reuse.candidate) ->
        let b = Reuse.benefit c ~spm_bytes in
        if b > 0.0 && c.size <= spm_bytes then
          Some (b /. float_of_int (max 1 c.size), c)
        else None)
      cands
    |> List.sort (fun (a, _) (b, _) -> compare b a)
  in
  let taken = Hashtbl.create 16 in
  let chosen, _ =
    List.fold_left
      (fun (chosen, used) (_, (c : Reuse.candidate)) ->
        if Hashtbl.mem taken c.group || used + c.size > spm_bytes then
          (chosen, used)
        else begin
          Hashtbl.replace taken c.group ();
          (c :: chosen, used + c.size)
        end)
      ([], 0) scored
  in
  finalize ~spm_bytes ~all_groups:groups (List.rev chosen)

let solve ?(strategy = Optimal) cands ~spm_bytes =
  match strategy with
  | Optimal ->
      let sel = optimal_impl cands ~spm_bytes in
      {
        selection = sel;
        strategy;
        optimal_energy = Some sel.energy_opt;
        search = None;
      }
  | Greedy ->
      {
        selection = greedy_impl cands ~spm_bytes;
        strategy;
        optimal_energy = None;
        search = None;
      }
  | Stochastic cfg ->
      let groups = Reuse.by_ref cands in
      (* seed chain 0 with the greedy placement so the search dominates
         the heuristic by construction *)
      let init = (greedy_impl cands ~spm_bytes).chosen in
      let p = Stochastic.of_candidates cands in
      let r = Stochastic.search ~init p ~spm_bytes cfg in
      (* account the result through [finalize] so an identical placement
         prints bitwise-identical energies across strategies *)
      {
        selection = finalize ~spm_bytes ~all_groups:groups r.chosen;
        strategy;
        optimal_energy = None;
        search = Some r;
      }

let solve_fused model ~spm_bytes cfg =
  let p = Stochastic.of_model model in
  let r = Stochastic.search p ~spm_bytes cfg in
  let used =
    List.fold_left (fun a (c : Reuse.candidate) -> a + c.size) 0 r.chosen
  in
  {
    selection =
      {
        spm_bytes;
        chosen = r.chosen;
        used_bytes = used;
        energy_base = r.base;
        energy_opt = r.cost;
        saving_pct =
          (if r.base > 0.0 then 100.0 *. (r.base -. r.cost) /. r.base
           else 0.0);
      };
    strategy = Stochastic cfg;
    optimal_energy = None;
    search = Some r;
  }

let select_optimal cands ~spm_bytes =
  (solve ~strategy:Optimal cands ~spm_bytes).selection

let select_greedy cands ~spm_bytes =
  (solve ~strategy:Greedy cands ~spm_bytes).selection

let default_sizes = [ 256; 512; 1024; 2048; 4096; 8192; 16384 ]

let sweep ?(strategy = Optimal) ?(sizes = default_sizes) ?(jobs = 1) model =
  let cands = Reuse.candidates model in
  Foray_util.Parallel.map ~jobs
    (fun s -> (s, solve ~strategy cands ~spm_bytes:s))
    sizes

let pp_selection fmt s =
  Format.fprintf fmt
    "SPM %5dB: %d buffer(s), %dB used, energy %.1f -> %.1f nJ (%.1f%% saved)"
    s.spm_bytes (List.length s.chosen) s.used_bytes s.energy_base s.energy_opt
    s.saving_pct
