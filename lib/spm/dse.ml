type selection = {
  spm_bytes : int;
  chosen : Reuse.candidate list;
  used_bytes : int;
  energy_base : float;
  energy_opt : float;
  saving_pct : float;
}

(* Energy accounting over the set of candidate references: references
   without a chosen buffer stay in main memory. *)
let finalize ~spm_bytes ~all_groups chosen =
  let chosen_groups =
    List.map (fun (c : Reuse.candidate) -> c.group) chosen
  in
  let base =
    List.fold_left
      (fun acc (_, cands) ->
        match cands with
        | (c : Reuse.candidate) :: _ -> acc +. Energy.baseline c.accesses
        | [] -> acc)
      0.0 all_groups
  in
  let opt =
    List.fold_left
      (fun acc (g, cands) ->
        if List.mem g chosen_groups then acc
        else
          match cands with
          | (c : Reuse.candidate) :: _ -> acc +. Energy.baseline c.accesses
          | [] -> acc)
      0.0 all_groups
    +. List.fold_left
         (fun acc c -> acc +. Reuse.energy c ~spm_bytes)
         0.0 chosen
  in
  {
    spm_bytes;
    chosen;
    used_bytes = List.fold_left (fun a (c : Reuse.candidate) -> a + c.size) 0 chosen;
    energy_base = base;
    energy_opt = opt;
    saving_pct = (if base > 0.0 then 100.0 *. (base -. opt) /. base else 0.0);
  }

let select_optimal cands ~spm_bytes =
  let groups = Reuse.by_ref cands in
  (* dp.(c) = best (benefit, chosen) using capacity exactly <= c *)
  let cap = spm_bytes in
  let dp = Array.make (cap + 1) (0.0, []) in
  List.iter
    (fun (_, gcands) ->
      let next = Array.copy dp in
      List.iter
        (fun (c : Reuse.candidate) ->
          let b = Reuse.benefit c ~spm_bytes in
          if b > 0.0 && c.size <= cap then
            for cc = c.size to cap do
              let prev_b, prev_l = dp.(cc - c.size) in
              let cand_b = prev_b +. b in
              if cand_b > fst next.(cc) then next.(cc) <- (cand_b, c :: prev_l)
            done)
        gcands;
      Array.blit next 0 dp 0 (cap + 1))
    groups;
  let best = Array.fold_left (fun acc x -> if fst x > fst acc then x else acc) dp.(0) dp in
  finalize ~spm_bytes ~all_groups:groups (List.rev (snd best))

let select_greedy cands ~spm_bytes =
  let groups = Reuse.by_ref cands in
  let scored =
    List.filter_map
      (fun (c : Reuse.candidate) ->
        let b = Reuse.benefit c ~spm_bytes in
        if b > 0.0 && c.size <= spm_bytes then
          Some (b /. float_of_int (max 1 c.size), c)
        else None)
      cands
    |> List.sort (fun (a, _) (b, _) -> compare b a)
  in
  let chosen, _, _ =
    List.fold_left
      (fun (chosen, used, taken) (_, (c : Reuse.candidate)) ->
        if List.mem c.group taken || used + c.size > spm_bytes then
          (chosen, used, taken)
        else (c :: chosen, used + c.size, c.group :: taken))
      ([], 0, []) scored
  in
  finalize ~spm_bytes ~all_groups:groups (List.rev chosen)

let default_sizes = [ 256; 512; 1024; 2048; 4096; 8192; 16384 ]

let sweep ?(sizes = default_sizes) ?(jobs = 1) model =
  let cands = Reuse.candidates model in
  Foray_util.Parallel.map ~jobs
    (fun s -> (s, select_optimal cands ~spm_bytes:s))
    sizes

let pp_selection fmt s =
  Format.fprintf fmt
    "SPM %5dB: %d buffer(s), %dB used, energy %.1f -> %.1f nJ (%.1f%% saved)"
    s.spm_bytes (List.length s.chosen) s.used_bytes s.energy_base s.energy_opt
    s.saving_pct
