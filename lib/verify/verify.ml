module Model = Foray_core.Model
module Event = Foray_trace.Event

type counterexample = {
  cx_site : int;
  cx_path : int list;
  cx_iters : (int * int) list;
  cx_base : int;
  cx_predicted : int;
  cx_actual : int;
  cx_exec : int;
  cx_event : int;
}

type verdict = Proved | Diverges of counterexample

type ref_verdict = {
  mref : Model.mref;
  path : int list;
  checked : int;
  rebases : int;
  verdict : verdict;
}

type report = {
  refs : ref_verdict list;
  covered : int;
  uncovered : int;
  events : int;
}

let proved rep =
  List.length (List.filter (fun r -> r.verdict = Proved) rep.refs)

let diverged rep = List.length rep.refs - proved rep

let unseen rep =
  List.length
    (List.filter (fun r -> r.verdict = Proved && r.checked = 0) rep.refs)

let all_proved rep = List.for_all (fun r -> r.verdict = Proved) rep.refs

let first_divergence rep =
  List.find_map
    (fun r -> match r.verdict with Diverges cx -> Some (r, cx) | Proved -> None)
    rep.refs

(* ------------------------------------------------------------------ *)
(* The walker                                                         *)

(* Mutable verification state per model reference. *)
type cell = {
  c_mref : Model.mref;
  c_rpath : int list;
  mutable c_base : int;  (** constant in effect (re-based for partials) *)
  mutable c_seen : bool;
  mutable c_checked : int;
  mutable c_rebases : int;
  mutable c_excl : int list;  (** excluded-iterator values at previous exec *)
  mutable c_cx : counterexample option;  (** first divergence *)
}

type walker = {
  table : (string, cell) Hashtbl.t;  (** key: path + site *)
  mutable stack : (int * int ref) list;  (** (lid, iter), innermost first *)
  mutable covered : int;
  mutable uncovered : int;
  mutable events : int;
}

let key path site =
  String.concat ">" (List.map string_of_int path) ^ "@" ^ string_of_int site

let build (model : Model.t) =
  let table = Hashtbl.create 64 in
  List.iter
    (fun (chain, (mref : Model.mref)) ->
      let path = List.map (fun (l : Model.mloop) -> l.lid) chain in
      Hashtbl.replace table (key path mref.site)
        {
          c_mref = mref;
          c_rpath = path;
          c_base = mref.const;
          c_seen = false;
          c_checked = 0;
          c_rebases = 0;
          c_excl = [];
          c_cx = None;
        })
    (Model.all_refs model);
  { table; stack = []; covered = 0; uncovered = 0; events = 0 }

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t

(* Evaluate [base + sum c*i] with iterator values looked up by loop id,
   innermost occurrence first — the same discipline Algorithm 3 and
   [Validate] use. *)
let eval_terms terms base iter_of =
  List.fold_left (fun acc (c, lid) -> acc + (c * iter_of lid)) base terms

let on_event w = function
  | Event.Checkpoint { loop; kind } -> (
      match kind with
      | Event.Loop_enter -> w.stack <- (loop, ref (-1)) :: w.stack
      | Event.Body_enter ->
          if List.exists (fun (l, _) -> l = loop) w.stack then begin
            (* pop abandoned levels, as in Algorithm 2 *)
            let rec pop = function
              | (l, it) :: rest when l = loop ->
                  incr it;
                  (l, it) :: rest
              | _ :: rest -> pop rest
              | [] -> assert false
            in
            w.stack <- pop w.stack
          end
          else w.stack <- (loop, ref 0) :: w.stack
      | Event.Body_exit ->
          if List.exists (fun (l, _) -> l = loop) w.stack then begin
            let rec pop = function
              | (l, _) :: _ as s when l = loop -> s
              | _ :: rest -> pop rest
              | [] -> assert false
            in
            w.stack <- pop w.stack
          end
      | Event.Loop_exit ->
          if List.exists (fun (l, _) -> l = loop) w.stack then begin
            let rec pop = function
              | (l, _) :: rest when l = loop -> rest
              | _ :: rest -> pop rest
              | [] -> assert false
            in
            w.stack <- pop w.stack
          end)
  | Event.Access { site; addr; _ } ->
      let path = List.rev_map fst w.stack in
      (match Hashtbl.find_opt w.table (key path site) with
      | None -> w.uncovered <- w.uncovered + 1
      | Some cell ->
          w.covered <- w.covered + 1;
          let iter_of lid =
            match List.find_opt (fun (l, _) -> l = lid) w.stack with
            | Some (_, it) -> !it
            | None -> 0
          in
          (* the stack matched this reference's full path, so the
             innermost-first iteration vector is the stack itself and the
             excluded iterators are the positions at or beyond [m] *)
          let excl =
            drop cell.c_mref.Model.m
              (List.map (fun (_, it) -> !it) w.stack)
          in
          if not cell.c_seen then begin
            cell.c_seen <- true;
            (* partial references: establish the base at first sighting
               (their constant only describes the last extraction span);
               full affine references keep the model's absolute constant *)
            if cell.c_mref.Model.partial then begin
              let predicted =
                eval_terms cell.c_mref.Model.terms cell.c_base iter_of
              in
              cell.c_base <- cell.c_base + (addr - predicted)
            end
          end;
          let predicted =
            eval_terms cell.c_mref.Model.terms cell.c_base iter_of
          in
          if predicted <> addr then begin
            if cell.c_mref.Model.partial && excl <> cell.c_excl then begin
              (* an excluded iterator moved: the documented legitimate
                 re-base point of a partial reference *)
              cell.c_rebases <- cell.c_rebases + 1;
              cell.c_base <- cell.c_base + (addr - predicted)
            end
            else begin
              (* divergence: the affine window failed on its own ground *)
              if cell.c_cx = None then
                cell.c_cx <-
                  Some
                    {
                      cx_site = site;
                      cx_path = cell.c_rpath;
                      cx_iters = List.map (fun (l, it) -> (l, !it)) w.stack;
                      cx_base = cell.c_base;
                      cx_predicted = predicted;
                      cx_actual = addr;
                      cx_exec = cell.c_checked;
                      cx_event = w.events;
                    };
              (* keep partial bases tracking the stream so later
                 executions are still checked against something
                 meaningful; full refs stay on the absolute constant *)
              if cell.c_mref.Model.partial then
                cell.c_base <- cell.c_base + (addr - predicted)
            end
          end;
          cell.c_checked <- cell.c_checked + 1;
          cell.c_excl <- excl);
      w.events <- w.events + 1

let finish w =
  let refs =
    Hashtbl.fold
      (fun _ c acc ->
        {
          mref = c.c_mref;
          path = c.c_rpath;
          checked = c.c_checked;
          rebases = c.c_rebases;
          verdict =
            (match c.c_cx with None -> Proved | Some cx -> Diverges cx);
        }
        :: acc)
      w.table []
    |> List.sort (fun a b ->
           compare (a.path, a.mref.Model.site) (b.path, b.mref.Model.site))
  in
  { refs; covered = w.covered; uncovered = w.uncovered; events = w.events }

let sink model =
  let w = build model in
  ((fun e -> on_event w e), fun () -> finish w)

let verify model events =
  let s, get = sink model in
  List.iter s events;
  get ()

(* ------------------------------------------------------------------ *)
(* Counterexample re-simulation                                       *)

let predict_at (mref : Model.mref) ~base ~iters =
  let iter_of lid =
    match List.find_opt (fun (l, _) -> l = lid) iters with
    | Some (_, v) -> v
    | None -> 0
  in
  eval_terms mref.Model.terms base iter_of

let faithful (mref : Model.mref) cx =
  let again = predict_at mref ~base:cx.cx_base ~iters:cx.cx_iters in
  again = cx.cx_predicted && again <> cx.cx_actual

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)

let verdict_name = function Proved -> "proved" | Diverges _ -> "diverges"

let path_to_string path =
  "[" ^ String.concat ">" (List.map string_of_int path) ^ "]"

let iters_to_string iters =
  String.concat " "
    (List.map (fun (l, v) -> Printf.sprintf "i%d=%d" l v) iters)

let counterexample_to_string cx =
  Printf.sprintf
    "exec #%d (event #%d) at %s %s: predicted %d, actual %d (delta %+d), \
     base %d"
    cx.cx_exec cx.cx_event (path_to_string cx.cx_path)
    (iters_to_string cx.cx_iters)
    cx.cx_predicted cx.cx_actual
    (cx.cx_actual - cx.cx_predicted)
    cx.cx_base

let counterexample_to_json cx =
  Printf.sprintf
    "{\"site\": %d, \"path\": [%s], \"iters\": [%s], \"base\": %d, \
     \"predicted\": %d, \"actual\": %d, \"exec\": %d, \"event\": %d}"
    cx.cx_site
    (String.concat ", " (List.map string_of_int cx.cx_path))
    (String.concat ", "
       (List.map
          (fun (l, v) -> Printf.sprintf "{\"loop\": %d, \"iter\": %d}" l v)
          cx.cx_iters))
    cx.cx_base cx.cx_predicted cx.cx_actual cx.cx_exec cx.cx_event

let ref_to_string r =
  let m = r.mref in
  let shape =
    if m.Model.partial then
      Printf.sprintf "partial m=%d/%d" m.Model.m m.Model.depth
    else "full affine"
  in
  let head =
    Printf.sprintf "%-8s %s %-18s %s  checked %d  rebases %d"
      (Model.array_name m.Model.site)
      (match r.verdict with Proved -> "PROVED  " | Diverges _ -> "DIVERGES")
      (path_to_string r.path) shape r.checked r.rebases
  in
  match r.verdict with
  | Proved -> head
  | Diverges cx -> head ^ "\n    first divergence: " ^ counterexample_to_string cx

let report_to_string rep =
  let buf = Buffer.create 512 in
  List.iter
    (fun r ->
      Buffer.add_string buf (ref_to_string r);
      Buffer.add_char buf '\n')
    rep.refs;
  Printf.bprintf buf
    "verify: %d reference(s): %d proved (%d unseen), %d diverged; %d/%d \
     access(es) covered\n"
    (List.length rep.refs) (proved rep) (unseen rep) (diverged rep)
    rep.covered rep.events;
  Buffer.contents buf

let report_to_json rep =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"refs\": [";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ", ";
      let m = r.mref in
      Printf.bprintf buf
        "{\"site\": %d, \"array\": \"%s\", \"path\": [%s], \"expr\": \
         \"%s\", \"partial\": %b, \"depth\": %d, \"m\": %d, \"checked\": \
         %d, \"rebases\": %d, \"verdict\": \"%s\""
        m.Model.site
        (Model.array_name m.Model.site)
        (String.concat ", " (List.map string_of_int r.path))
        (Model.expr_of_ref m) m.Model.partial m.Model.depth m.Model.m
        r.checked r.rebases (verdict_name r.verdict);
      (match r.verdict with
      | Proved -> ()
      | Diverges cx ->
          Printf.bprintf buf ", \"counterexample\": %s"
            (counterexample_to_json cx));
      Buffer.add_char buf '}')
    rep.refs;
  Printf.bprintf buf
    "], \"proved\": %d, \"diverged\": %d, \"unseen\": %d, \"covered\": %d, \
     \"uncovered\": %d, \"events\": %d}"
    (proved rep) (diverged rep) (unseen rep) rep.covered rep.uncovered
    rep.events;
  Buffer.contents buf
