(** Per-reference functional equivalence checking: replay an extracted
    FORAY model against the recorded access stream and prove — or refute
    with a counterexample — that each reference's affine expression
    reproduces the program's addresses.

    This is the proof-flavoured counterpart of {!Foray_core.Validate}:
    where [Validate] reports an accuracy {e ratio}, this module renders a
    {e verdict} per model reference, closing ROADMAP item 4(b) in the
    functional-equivalence-checking direction of Shashidhar et al.

    {b Verdict semantics.} The verifier walks the trace with the same
    loop-stack discipline as Algorithm 2, attributes each access to the
    model reference at the same (loop path, site), and checks the model's
    prediction:

    - {e Full affine} references ([partial = false]) must reproduce every
      access from the model's absolute constant term alone — no alignment,
      no rebasing. By construction of Algorithm 3 (each coefficient solve
      re-bases the constant consistently with the whole prefix) the final
      expression predicts the extraction trace exactly, so any mismatch is
      a real divergence.
    - {e Partial} references ([m < depth]) cover only the innermost [m]
      iterators; their base is established at the reference's first
      execution (not counted) and may legitimately re-base at an execution
      where some {e excluded} iterator (position >= [m], innermost first)
      changed since the reference's previous execution — Algorithm 3's
      sticky-set demotion guarantees the excluded iterator at position [m]
      changed at every extraction-time misprediction, so on the extraction
      trace every re-base is of this form. A mismatch while {e no}
      excluded iterator changed refutes the model: the affine window
      [0..m-1] failed on its own ground.

    A reference that never executes in the stream is vacuously [Proved]
    with [checked = 0] (and counted by {!unseen}); accesses outside the
    model (purged by Step 4) are counted as {!type-report.uncovered}, not
    as divergences.

    Verdicts are a pure function of (model, event stream), so sequential
    and sharded analyses of the same trace — which produce byte-identical
    models — yield byte-identical reports. *)

type counterexample = {
  cx_site : int;
  cx_path : int list;  (** enclosing loop ids, outermost first *)
  cx_iters : (int * int) list;
      (** (loop id, iteration) pairs, innermost first — the full dynamic
          context of the failing access *)
  cx_base : int;  (** constant term in effect at the failure *)
  cx_predicted : int;
  cx_actual : int;
  cx_exec : int;  (** 0-based execution ordinal of this reference *)
  cx_event : int;  (** 0-based position in the access stream *)
}

type verdict = Proved | Diverges of counterexample

type ref_verdict = {
  mref : Foray_core.Model.mref;
  path : int list;  (** enclosing loop ids, outermost first *)
  checked : int;  (** accesses attributed to this reference *)
  rebases : int;  (** legitimate partial-reference re-bases *)
  verdict : verdict;
}

type report = {
  refs : ref_verdict list;  (** sorted by (path, site) *)
  covered : int;  (** accesses attributed to some model reference *)
  uncovered : int;  (** accesses outside the model (Step-4 purged) *)
  events : int;  (** total accesses in the stream *)
}

(** References with [verdict = Proved]. *)
val proved : report -> int

(** References with [verdict = Diverges _]. *)
val diverged : report -> int

(** [Proved] references that never executed ([checked = 0]). *)
val unseen : report -> int

val all_proved : report -> bool

(** First diverging reference in report order, with its counterexample. *)
val first_divergence : report -> (ref_verdict * counterexample) option

(** [verify model events] walks the stream once and renders the verdicts. *)
val verify :
  Foray_core.Model.t -> Foray_trace.Event.event list -> report

(** Sink-based variant for online verification; call the returned closure
    after the run to obtain the report. *)
val sink :
  Foray_core.Model.t -> Foray_trace.Event.sink * (unit -> report)

(** {1 Counterexample re-simulation}

    A counterexample must be {e faithful}: re-evaluating the reference's
    affine expression at the recorded iteration vector with the recorded
    base must reproduce the recorded prediction, and that prediction must
    differ from the recorded actual address. The generative campaign
    asserts this for every divergence it finds. *)

(** [predict_at mref ~base ~iters] evaluates [base + sum c*i] over the
    reference's included terms, reading iterator values from [iters]
    (innermost occurrence first; absent loop ids read as 0). *)
val predict_at :
  Foray_core.Model.mref -> base:int -> iters:(int * int) list -> int

(** [faithful mref cx] re-simulates [cx] against [mref]'s expression. *)
val faithful : Foray_core.Model.mref -> counterexample -> bool

(** {1 Rendering} *)

val verdict_name : verdict -> string
val counterexample_to_string : counterexample -> string
val counterexample_to_json : counterexample -> string

(** One line per reference plus a summary tail; deterministic, so equal
    reports render byte-identically. *)
val report_to_string : report -> string

(** JSON object: ["refs"] array (verdicts, expressions, counterexamples),
    ["proved"]/["diverged"]/["unseen"] counts, stream coverage. *)
val report_to_json : report -> string
