(* The resolved-slot interpreter (Minic.Resolve + flat int-array frames)
   must be observationally identical to the original string-lookup
   interpreter: same result record and the same event stream, byte for
   byte. Checked on hand-written scoping corner cases and on random
   generator workloads. *)

module Interp = Minic_sim.Interp
module Generator = Foray_util.Progen

let run_both ?(config = Interp.default_config) src =
  let prog = Minic.Parser.program src in
  Minic.Sema.check_exn prog;
  let instrumented = Foray_instrument.Annotate.program prog in
  let resolved =
    Interp.run_to_trace ~config:{ config with resolve = true } instrumented
  in
  let unresolved =
    Interp.run_to_trace ~config:{ config with resolve = false } instrumented
  in
  (resolved, unresolved)

let event_lines trace = List.map Foray_trace.Event.to_line trace

let check_equal ?config name src =
  let (r1, t1), (r0, t0) = run_both ?config src in
  Alcotest.(check int) (name ^ ": ret") r0.Interp.ret r1.Interp.ret;
  Alcotest.(check (list int)) (name ^ ": output") r0.output r1.output;
  Alcotest.(check int) (name ^ ": steps") r0.steps r1.steps;
  Alcotest.(check int) (name ^ ": accesses") r0.accesses r1.accesses;
  Alcotest.(check (list string))
    (name ^ ": event stream")
    (event_lines t0) (event_lines t1)

(* -- scoping corner cases the resolver must mirror exactly ------------- *)

let t_shadowing () =
  check_equal "block shadowing"
    {|
      int g = 3;
      int main() {
        int x = g;
        { int x = 10; print_int(x); { int x = x + 1; print_int(x); } }
        print_int(x);
        return x;
      }
    |}

let t_decl_before_init () =
  (* a declaration binds its name before the initializer is evaluated, so
     [int x = x + 1] reads the fresh (zero-initialized) slot, not an outer
     binding -- both interpreters must agree *)
  check_equal "decl binds before initializer"
    {|
      int x = 7;
      int main() {
        int x = x + 1;
        print_int(x);
        return 0;
      }
    |}

let t_global_forward_ref () =
  check_equal "global initializers see later globals"
    {|
      int a = b + 1;
      int b = 5;
      int main() { print_int(a); print_int(b); return 0; }
    |}

let t_param_and_recursion () =
  check_equal "params, recursion, arrays in frames"
    {|
      int fib(int n) {
        int scratch[4];
        scratch[n % 4] = n;
        if (n < 2) return scratch[n % 4];
        return fib(n - 1) + fib(n - 2);
      }
      int main() { print_int(fib(10)); return 0; }
    |}

let t_loop_body_fresh_slots () =
  (* each iteration re-declares locals; addresses (hence events) must match
     the lazy per-frame allocation of the slow path *)
  check_equal "per-iteration declarations"
    {|
      int acc = 0;
      int main() {
        int i;
        for (i = 0; i < 5; i = i + 1) {
          int t = i * 2;
          int u[2];
          u[0] = t; u[1] = t + 1;
          acc = acc + u[0] + u[1];
        }
        print_int(acc);
        return 0;
      }
    |}

(* -- suite + generated workloads --------------------------------------- *)

let t_suite_equal () =
  List.iter
    (fun (b : Foray_suite.Suite.bench) ->
      if b.name <> "jpeg" && b.name <> "lame" then
        check_equal ("suite " ^ b.name) b.source)
    Foray_suite.Suite.all

let prop_generated_equal =
  QCheck2.Test.make ~name:"resolved interp == string-lookup interp" ~count:30
    QCheck2.Gen.(pair (int_range 1 5000) (int_range 1 5))
    (fun (seed, nests) ->
      let g = Generator.generate ~seed ~nests in
      let (r1, t1), (r0, t0) = run_both g.source in
      r1.Interp.ret = r0.Interp.ret
      && r1.output = r0.output
      && r1.steps = r0.steps
      && r1.accesses = r0.accesses
      && t1 = t0)

let tests =
  [
    Alcotest.test_case "block shadowing" `Quick t_shadowing;
    Alcotest.test_case "decl binds before initializer" `Quick
      t_decl_before_init;
    Alcotest.test_case "global forward references" `Quick t_global_forward_ref;
    Alcotest.test_case "params and recursion" `Quick t_param_and_recursion;
    Alcotest.test_case "per-iteration declarations" `Quick
      t_loop_body_fresh_slots;
    Alcotest.test_case "suite benchmarks agree" `Slow t_suite_equal;
    QCheck_alcotest.to_alcotest prop_generated_equal;
  ]
