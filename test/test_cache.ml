(* Cache simulator tests: geometry, replacement policies, and a property
   check against a reference fully-associative LRU model. *)

open Foray_cachesim

let cfg ?(size = 256) ?(line = 16) ?(assoc = 2) ?(policy = Cache.Lru) () =
  Cache.{ size_bytes = size; line_bytes = line; assoc; policy }

let t_geometry_errors () =
  let bad c = try ignore (Cache.create c); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "non-pow2 size" true (bad (cfg ~size:300 ()));
  Alcotest.(check bool) "tiny line" true (bad (cfg ~line:2 ()));
  Alcotest.(check bool) "assoc divides" true (bad (cfg ~assoc:3 ()));
  Alcotest.(check bool) "valid accepted" false (bad (cfg ()))

let t_cold_miss_then_hit () =
  let c = Cache.create (cfg ()) in
  Alcotest.(check bool) "first access misses" false
    (Cache.access c ~addr:100 ~width:4 ~write:false);
  Alcotest.(check bool) "second access hits" true
    (Cache.access c ~addr:100 ~width:4 ~write:false);
  Alcotest.(check bool) "same line hits" true
    (Cache.access c ~addr:108 ~width:4 ~write:false);
  let s = Cache.stats c in
  Alcotest.(check int) "accesses" 3 s.accesses;
  Alcotest.(check int) "hits" 2 s.hits;
  Alcotest.(check int) "misses" 1 s.misses

let t_straddling_access () =
  let c = Cache.create (cfg ()) in
  (* width 4 at line-boundary-2: touches two lines, but counts as one
     access and one miss; the per-line traffic shows up in line_fills *)
  ignore (Cache.access c ~addr:14 ~width:4 ~write:false);
  let s = Cache.stats c in
  Alcotest.(check int) "one access" 1 s.accesses;
  Alcotest.(check int) "one miss" 1 s.misses;
  Alcotest.(check int) "two line fills" 2 s.line_fills;
  Alcotest.(check bool) "now both hit" true
    (Cache.access c ~addr:14 ~width:4 ~write:false);
  let s = Cache.stats c in
  Alcotest.(check int) "hit counted once" 1 s.hits

let t_partial_hit_is_miss () =
  (* one line of a straddling access resident, the other not: the access
     as a whole must count as a miss, and fill only the absent line *)
  let c = Cache.create (cfg ()) in
  ignore (Cache.access c ~addr:0 ~width:4 ~write:false);
  ignore (Cache.access c ~addr:14 ~width:4 ~write:false);
  let s = Cache.stats c in
  Alcotest.(check int) "two accesses" 2 s.accesses;
  Alcotest.(check int) "both missed" 2 s.misses;
  Alcotest.(check int) "zero hits" 0 s.hits;
  (* line 0 was already resident, so the second access fills only line 1 *)
  Alcotest.(check int) "two line fills" 2 s.line_fills

let t_lru_eviction () =
  (* 2-way set: fill both ways, touch the first, insert a third ->
     the second way (least recent) is evicted *)
  let c = Cache.create (cfg ~size:64 ~line:16 ~assoc:2 ()) in
  (* two sets; lines mapping to set 0: line numbers even *)
  let a0 = 0 and a1 = 64 and a2 = 128 in
  ignore (Cache.access c ~addr:a0 ~width:4 ~write:false);
  ignore (Cache.access c ~addr:a1 ~width:4 ~write:false);
  ignore (Cache.access c ~addr:a0 ~width:4 ~write:false);
  (* evicts a1 *)
  ignore (Cache.access c ~addr:a2 ~width:4 ~write:false);
  Alcotest.(check bool) "a0 still resident" true
    (Cache.access c ~addr:a0 ~width:4 ~write:false);
  Alcotest.(check bool) "a1 evicted" false
    (Cache.access c ~addr:a1 ~width:4 ~write:false)

let t_fifo_eviction () =
  (* same pattern under FIFO: touching a0 does not protect it *)
  let c = Cache.create (cfg ~size:64 ~line:16 ~assoc:2 ~policy:Cache.Fifo ()) in
  let a0 = 0 and a1 = 64 and a2 = 128 in
  ignore (Cache.access c ~addr:a0 ~width:4 ~write:false);
  ignore (Cache.access c ~addr:a1 ~width:4 ~write:false);
  ignore (Cache.access c ~addr:a0 ~width:4 ~write:false);
  (* evicts a0 (oldest fill) *)
  ignore (Cache.access c ~addr:a2 ~width:4 ~write:false);
  Alcotest.(check bool) "a1 resident" true
    (Cache.access c ~addr:a1 ~width:4 ~write:false);
  Alcotest.(check bool) "a0 evicted under FIFO" false
    (Cache.access c ~addr:a0 ~width:4 ~write:false)

let t_writeback_accounting () =
  let c = Cache.create (cfg ~size:32 ~line:16 ~assoc:1 ()) in
  (* set 0: write line 0, then map line 2 (same set) on a 2-set cache *)
  ignore (Cache.access c ~addr:0 ~width:4 ~write:true);
  ignore (Cache.access c ~addr:32 ~width:4 ~write:false);
  let s = Cache.stats c in
  Alcotest.(check int) "eviction" 1 s.evictions;
  Alcotest.(check int) "dirty writeback" 1 s.writebacks;
  (* clean eviction does not write back *)
  ignore (Cache.access c ~addr:64 ~width:4 ~write:false);
  Alcotest.(check int) "still one writeback" 1 (Cache.stats c).writebacks

let t_sequential_hit_rate () =
  (* a sequential byte walk hits (line-1)/line of the time after the cold
     miss per line *)
  let c = Cache.create (cfg ~size:1024 ~line:16 ~assoc:4 ()) in
  for i = 0 to 1023 do
    ignore (Cache.access c ~addr:i ~width:1 ~write:false)
  done;
  let s = Cache.stats c in
  Alcotest.(check int) "one miss per line" 64 s.misses;
  Alcotest.(check int) "rest hit" 960 s.hits

let t_sink () =
  let c = Cache.create (cfg ()) in
  let sink = Cache.sink c in
  sink (Foray_trace.Event.Checkpoint { loop = 1; kind = Foray_trace.Event.Loop_enter });
  sink (Foray_trace.Event.Access { site = 1; addr = 0; width = 4; write = false; sys = false });
  Alcotest.(check int) "checkpoint ignored, access counted" 1
    (Cache.stats c).accesses

(* reference model: fully-associative LRU as a list of line numbers *)
let prop_fully_assoc_lru =
  QCheck2.Test.make ~name:"fully-associative config matches reference LRU"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 400) (int_range 0 1023))
    (fun addrs ->
      let lines_total = 8 in
      let c =
        Cache.create
          (cfg ~size:(lines_total * 16) ~line:16 ~assoc:lines_total ())
      in
      let model = ref [] in
      List.for_all
        (fun addr ->
          let line = addr / 16 in
          let model_hit = List.mem line !model in
          model :=
            line :: List.filter (fun l -> l <> line) !model;
          if List.length !model > lines_total then
            model :=
              List.filteri (fun i _ -> i < lines_total) !model;
          let got = Cache.access c ~addr ~width:1 ~write:false in
          got = model_hit)
        addrs)

let prop_conservation =
  QCheck2.Test.make ~name:"hits + misses = accesses; fills bounded by touches"
    ~count:100
    QCheck2.Gen.(list_size (int_range 0 200) (pair (int_range 0 4095) (int_range 1 8)))
    (fun ops ->
      let c = Cache.create (cfg ~size:512 ~line:16 ~assoc:2 ()) in
      let touches = ref 0 in
      List.iter
        (fun (addr, width) ->
          let first = addr / 16 and last = (addr + width - 1) / 16 in
          touches := !touches + (last - first + 1);
          ignore (Cache.access c ~addr ~width ~write:false))
        ops;
      let s = Cache.stats c in
      s.hits + s.misses = s.accesses
      && s.accesses = List.length ops
      && s.line_fills <= !touches
      && s.line_fills >= s.misses)

let tests =
  [
    Alcotest.test_case "geometry validation" `Quick t_geometry_errors;
    Alcotest.test_case "cold miss then hit" `Quick t_cold_miss_then_hit;
    Alcotest.test_case "straddling access" `Quick t_straddling_access;
    Alcotest.test_case "partial hit is a miss" `Quick t_partial_hit_is_miss;
    Alcotest.test_case "LRU eviction" `Quick t_lru_eviction;
    Alcotest.test_case "FIFO eviction" `Quick t_fifo_eviction;
    Alcotest.test_case "writeback accounting" `Quick t_writeback_accounting;
    Alcotest.test_case "sequential hit rate" `Quick t_sequential_hit_rate;
    Alcotest.test_case "event sink" `Quick t_sink;
    QCheck_alcotest.to_alcotest prop_fully_assoc_lru;
    QCheck_alcotest.to_alcotest prop_conservation;
  ]
