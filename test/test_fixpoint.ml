(* Fixpoint property: the FORAY model is closed under extraction.

   Emitting the model as an executable program (arrays re-based to 0) and
   running FORAY-GEN on that program must recover exactly the same affine
   structure: same coefficient lists, same trip counts, same reference
   count. This is the strongest statement that the model faithfully
   captures the access behaviour it claims to. *)

open Foray_core

let th nexec nloc = Filter.{ nexec; nloc }

let signature model =
  Model.all_refs model
  |> List.map (fun (chain, (mr : Model.mref)) ->
         ( List.map fst mr.terms,
           List.map (fun (l : Model.mloop) -> l.trip) chain ))
  |> List.sort compare

let check_fixpoint ?(thresholds = th 2 2) src =
  let r = Tutil.run_source ~thresholds src in
  let emitted = Model.to_c_exec r.model in
  let r2 = Tutil.run_source ~thresholds emitted in
  let s1 = signature r.model and s2 = signature r2.model in
  if s1 <> s2 then
    Alcotest.failf "not a fixpoint\noriginal:  %s\nre-extract: %s\nprogram:\n%s"
      (String.concat " | "
         (List.map
            (fun (ts, tr) ->
              Printf.sprintf "[%s]@[%s]"
                (String.concat "," (List.map string_of_int ts))
                (String.concat "," (List.map string_of_int tr)))
            s1))
      (String.concat " | "
         (List.map
            (fun (ts, tr) ->
              Printf.sprintf "[%s]@[%s]"
                (String.concat "," (List.map string_of_int ts))
                (String.concat "," (List.map string_of_int tr)))
            s2))
      emitted

let t_fig1 () = check_fixpoint ~thresholds:(th 10 10) Foray_suite.Figures.fig1
let t_fig4a () = check_fixpoint Foray_suite.Figures.fig4a
let t_fig9 () = check_fixpoint ~thresholds:(th 5 5) Foray_suite.Figures.fig9

let t_generated () =
  for seed = 100 to 112 do
    let g = Foray_util.Progen.generate ~seed ~nests:3 in
    check_fixpoint ~thresholds:Filter.default g.source
  done

let t_suite_bench () =
  (* full benchmark: the executable model of adpcm re-extracts to itself *)
  let b = Option.get (Foray_suite.Suite.find "adpcm") in
  check_fixpoint ~thresholds:Filter.default b.source

let t_exec_model_runs_cleanly () =
  (* the emitted program must pass sema and run without runtime errors *)
  let b = Option.get (Foray_suite.Suite.find "gsm") in
  let r = Tutil.run_source b.source in
  let src = Model.to_c_exec r.model in
  let prog = Minic.Parser.program src in
  Minic.Sema.check_exn prog;
  let res = Minic_sim.Interp.run prog ~sink:Foray_trace.Event.null_sink in
  Alcotest.(check int) "exits 0" 0 res.ret

let tests =
  [
    Alcotest.test_case "figure 1 model is a fixpoint" `Quick t_fig1;
    Alcotest.test_case "figure 4 model is a fixpoint" `Quick t_fig4a;
    Alcotest.test_case "figure 9 model is a fixpoint" `Quick t_fig9;
    Alcotest.test_case "generated workloads are fixpoints" `Quick t_generated;
    Alcotest.test_case "adpcm model is a fixpoint" `Slow t_suite_bench;
    Alcotest.test_case "executable model runs cleanly" `Slow
      t_exec_model_runs_cleanly;
  ]
