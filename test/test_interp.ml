(* Interpreter semantics tests: every program returns a value through
   print_int / main's return, checked against C semantics. *)

module Interp = Minic_sim.Interp

let run src =
  let prog = Minic.Parser.program src in
  Minic.Sema.check_exn prog;
  Interp.run prog ~sink:Foray_trace.Event.null_sink

let ret src = (run src).ret
let out src = (run src).output

let t_arith () =
  Alcotest.(check int) "arith" 7 (ret "int main() { return 1 + 2 * 3; }");
  Alcotest.(check int) "div trunc" 3 (ret "int main() { return 10 / 3; }");
  Alcotest.(check int) "neg div" (-3) (ret "int main() { return -10 / 3; }");
  Alcotest.(check int) "mod" 1 (ret "int main() { return 10 % 3; }");
  Alcotest.(check int) "shift" 20 (ret "int main() { return 5 << 2; }");
  Alcotest.(check int) "bitops" 6 (ret "int main() { return (12 & 7) ^ 2; }");
  Alcotest.(check int) "compare" 1 (ret "int main() { return 3 < 4; }")

let t_shortcircuit () =
  (* the right operand of && must not run when the left is false *)
  Alcotest.(check int) "and skips" 0
    (ret
       "int g; int boom() { g = 1; return 1; } int main() { int x; x = 0 && \
        boom(); return g; }");
  Alcotest.(check int) "or skips" 0
    (ret
       "int g; int boom() { g = 1; return 1; } int main() { int x; x = 1 || \
        boom(); return g; }")

let t_control_flow () =
  Alcotest.(check int) "for sum" 45
    (ret "int main() { int s; int i; s = 0; for (i = 0; i < 10; i++) { s += i; } return s; }");
  Alcotest.(check int) "while" 10
    (ret "int main() { int i; i = 0; while (i < 10) { i++; } return i; }");
  Alcotest.(check int) "do runs once" 1
    (ret "int main() { int i; i = 0; do { i++; } while (0); return i; }");
  Alcotest.(check int) "break" 5
    (ret
       "int main() { int i; for (i = 0; i < 10; i++) { if (i == 5) { break; } } return i; }");
  Alcotest.(check int) "continue" 25
    (ret
       "int main() { int s; int i; s = 0; for (i = 0; i < 10; i++) { if (i % 2 == 0) { continue; } s += i; } return s; }");
  Alcotest.(check int) "nested break only inner" 6
    (ret
       "int main() { int s; int i; int j; s = 0; for (i = 0; i < 3; i++) { for (j = 0; j < 5; j++) { if (j == 2) { break; } s += 1; } } return s; }")

let t_incdec () =
  Alcotest.(check int) "post returns old" 5
    (ret "int main() { int a; int b; a = 5; b = a++; return b; }");
  Alcotest.(check int) "pre returns new" 6
    (ret "int main() { int a; int b; a = 5; b = ++a; return b; }");
  Alcotest.(check int) "post then value" 6
    (ret "int main() { int a; a = 5; a++; return a; }");
  Alcotest.(check int) "decrement" 4
    (ret "int main() { int a; a = 5; --a; return a; }")

let t_arrays () =
  Alcotest.(check int) "array rw" 42
    (ret "int A[10]; int main() { A[3] = 42; return A[3]; }");
  Alcotest.(check int) "2d array" 7
    (ret "int M[3][4]; int main() { M[2][1] = 7; return M[2][1]; }");
  Alcotest.(check int) "2d layout row major" 11
    (ret
       "int M[3][4]; int main() { int i; for (i = 0; i < 12; i++) { M[i / 4][i % 4] = i; } return M[2][3]; }");
  Alcotest.(check int) "initializer" 6
    (ret "int A[4] = {1, 2, 3}; int main() { return A[0] + A[1] + A[2] + A[3]; }");
  Alcotest.(check int) "local array initializer zero-fills" 3
    (ret "int main() { int a[5] = {1, 2}; return a[0] + a[1] + a[4]; }")

let t_pointers () =
  Alcotest.(check int) "deref" 9
    (ret "int main() { int x; int *p; p = &x; *p = 9; return x; }");
  Alcotest.(check int) "pointer arith scales" 5
    (ret
       "int A[10]; int main() { int *p; p = A; A[3] = 5; return *(p + 3); }");
  Alcotest.(check int) "pointer walk" 10
    (ret
       "int A[5]; int main() { int *p; int s; int i; for (i = 0; i < 5; i++) { A[i] = i; } p = A; s = 0; for (i = 0; i < 5; i++) { s += *p++; } return s; }");
  Alcotest.(check int) "pointer difference" 3
    (ret "int A[10]; int main() { int *p; int *q; p = A; q = p + 3; return q - p; }");
  Alcotest.(check int) "char pointer walks bytes" 1
    (ret
       "char C[8]; int main() { char *p; p = C; p++; return p - C; }");
  Alcotest.(check int) "index on pointer" 4
    (ret "int A[10]; int main() { int *p; p = A + 2; A[6] = 4; return p[4]; }")

let t_char_semantics () =
  Alcotest.(check int) "char wraps" (-56)
    (ret "char c; int main() { c = 200; return c; }");
  Alcotest.(check int) "char array element" 65
    (ret "char s[4]; int main() { s[0] = 'A'; return s[0]; }")

let t_functions_mutual () =
  Alcotest.(check int) "call" 7
    (ret "int add(int a, int b) { return a + b; } int main() { return add(3, 4); }");
  Alcotest.(check int) "recursion" 120
    (ret
       "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); } int main() { return fact(5); }");
  Alcotest.(check int) "fib" 13
    (ret
       "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); } int main() { return fib(7); }")

let t_globals () =
  Alcotest.(check int) "global init expr" 12
    (ret "int a = 5; int b = 7; int main() { return a + b; }");
  Alcotest.(check int) "global pointer init" 3
    (ret "int A[5] = {3}; int *p = A; int main() { return *p; }")

let t_builtins () =
  Alcotest.(check int) "abs" 5 (ret "int main() { return abs(-5); }");
  Alcotest.(check int) "min max" 7
    (ret "int main() { return mc_min(9, 3) + mc_max(2, 4); }");
  Alcotest.(check (list int)) "print_int order" [ 1; 2; 3 ]
    (out "int main() { print_int(1); print_int(2); print_int(3); return 0; }");
  Alcotest.(check int) "malloc + memset" 0x0A0A0A0A
    (ret
       "int main() { int *p; p = (int*)malloc(16); memset(p, 10, 16); return p[2]; }");
  Alcotest.(check int) "memcpy" 99
    (ret
       "int A[4]; int B[4]; int main() { A[2] = 99; memcpy(B, A, 16); return B[2]; }");
  Alcotest.(check bool) "mc_rand bounded and deterministic" true
    (let a = ret "int main() { return mc_rand(100); }" in
     let b = ret "int main() { return mc_rand(100); }" in
     a = b && a >= 0 && a < 100)

let t_ternary_cast () =
  Alcotest.(check int) "ternary" 2 (ret "int main() { return 0 ? 1 : 2; }");
  Alcotest.(check int) "cast char" (-1)
    (ret "int main() { return (char)255; }");
  Alcotest.(check int) "cast int of char noop" 65
    (ret "int main() { return (int)'A'; }")

let t_runtime_errors () =
  let expect_err src frag =
    try
      ignore (ret src);
      Alcotest.failf "expected runtime error %s" frag
    with Interp.Runtime_error_at { msg = m; _ } ->
      if
        not
          (let n = String.length frag and l = String.length m in
           let rec go i = i + n <= l && (String.sub m i n = frag || go (i + 1)) in
           go 0)
      then Alcotest.failf "expected %S in %S" frag m
  in
  expect_err "int main() { return 1 / 0; }" "division by zero";
  expect_err "int main() { return 1 % 0; }" "modulo";
  expect_err "int main() { return mc_rand(0); }" "mc_rand"

let t_step_limit_config () =
  (* Exhausting the step budget is a clean stop, not an error: the run
     returns with [Stopped] naming the budget and the spend. *)
  let prog = Minic.Parser.program "int main() { int i; for (i = 0; i < 1000; i++) { } return i; }" in
  let config = { Interp.default_config with max_steps = 50 } in
  let r = Interp.run ~config prog ~sink:Foray_trace.Event.null_sink in
  match r.stopped with
  | Interp.Stopped { budget; limit; spent } ->
      Alcotest.(check string) "budget" "max_steps" budget;
      Alcotest.(check int) "limit" 50 limit;
      Alcotest.(check bool) "spent at limit" true (spent >= limit)
  | Interp.Completed -> Alcotest.fail "expected a budget stop"

let t_deadline_config () =
  (* A zero-millisecond deadline trips at admission, before any statement
     runs. *)
  let prog =
    Minic.Parser.program
      "int main() { int i; int s; s = 0; for (i = 0; i < 100000; i++) { s = \
       s + i; } return s; }"
  in
  let config = { Interp.default_config with deadline_ms = Some 0 } in
  let r = Interp.run ~config prog ~sink:Foray_trace.Event.null_sink in
  match r.stopped with
  | Interp.Stopped { budget; _ } ->
      Alcotest.(check string) "budget" "deadline_ms" budget
  | Interp.Completed -> Alcotest.fail "expected a deadline stop"

let t_deadline_admission_short_program () =
  (* Regression: the periodic deadline check first fires at step 4096, so
     a program shorter than that used to run to completion under an
     already-expired deadline. The admission check must stop it at step 0
     with non-negative spend. *)
  let prog =
    Minic.Parser.program
      "int main() { int i; int s; s = 0; for (i = 0; i < 10; i++) { s = s + \
       i; } return s; }"
  in
  let config = { Interp.default_config with deadline_ms = Some 0 } in
  let r = Interp.run ~config prog ~sink:Foray_trace.Event.null_sink in
  match r.stopped with
  | Interp.Stopped { budget; limit; spent } ->
      Alcotest.(check string) "budget" "deadline_ms" budget;
      Alcotest.(check int) "limit" 0 limit;
      Alcotest.(check bool) "spent non-negative" true (spent >= 0);
      Alcotest.(check int) "stopped before any statement" 0 r.steps
  | Interp.Completed ->
      Alcotest.fail "short program completed under an expired deadline"

let t_event_limit_config () =
  let prog =
    Minic.Parser.program
      "int A[100]; int main() { int i; for (i = 0; i < 100; i++) { A[i] = i; \
       } return 0; }"
  in
  let config = { Interp.default_config with max_trace_events = Some 12 } in
  let n = ref 0 in
  let r = Interp.run ~config prog ~sink:(fun _ -> incr n) in
  (match r.stopped with
  | Interp.Stopped { budget; limit; _ } ->
      Alcotest.(check string) "budget" "max_trace_events" budget;
      Alcotest.(check int) "limit" 12 limit
  | Interp.Completed -> Alcotest.fail "expected an event-budget stop");
  Alcotest.(check bool) "sink saw no more than the budget" true (!n <= 12)

let t_completed_marks_completed () =
  let r =
    Interp.run
      (Minic.Parser.program "int main() { return 3; }")
      ~sink:Foray_trace.Event.null_sink
  in
  Alcotest.(check bool) "completed" true (r.stopped = Interp.Completed)

let t_scalar_tracing_toggle () =
  let prog =
    Minic.Parser.program
      "int A[20]; int main() { int i; for (i = 0; i < 20; i++) { A[i] = i; } return 0; }"
  in
  let count config =
    let n = ref 0 in
    let sink = function Foray_trace.Event.Access _ -> incr n | _ -> () in
    ignore (Interp.run ~config prog ~sink);
    !n
  in
  let with_scalars = count Interp.default_config in
  let without =
    count { Interp.default_config with trace_scalars = false }
  in
  Alcotest.(check bool) "scalars add traffic" true (with_scalars > without);
  (* exactly the 20 array writes remain *)
  Alcotest.(check int) "array traffic only" 20 without

let t_param_stack_traffic () =
  (* argument stores appear in the trace, as the paper notes *)
  let prog =
    Minic.Parser.program
      "int f(int a, int b) { return a + b; } int main() { return f(1, 2); }"
  in
  let writes = ref 0 in
  let sink = function
    | Foray_trace.Event.Access a when a.write -> incr writes
    | _ -> ()
  in
  ignore (Interp.run prog ~sink);
  Alcotest.(check bool) "at least two param stores" true (!writes >= 2)

let t_suite_outputs () =
  (* deterministic end-to-end outputs of the six benchmarks *)
  let expect =
    [
      ("jpeg", [ 244; 12960 ]);
      ("lame", [ 15535; 19; 512 ]);
      ("susan", [ 1447; 730; 3 ]);
      ("fft", [ 1911 ]);
      ("gsm", [ 2755; 88 ]);
      ("adpcm", [ 3368171; 88 ]);
    ]
  in
  List.iter
    (fun (name, expected) ->
      let b = Option.get (Foray_suite.Suite.find name) in
      Alcotest.(check (list int)) (name ^ " output") expected (out b.source))
    expect

let tests =
  [
    Alcotest.test_case "arithmetic" `Quick t_arith;
    Alcotest.test_case "short circuit" `Quick t_shortcircuit;
    Alcotest.test_case "control flow" `Quick t_control_flow;
    Alcotest.test_case "increment/decrement" `Quick t_incdec;
    Alcotest.test_case "arrays" `Quick t_arrays;
    Alcotest.test_case "pointers" `Quick t_pointers;
    Alcotest.test_case "char semantics" `Quick t_char_semantics;
    Alcotest.test_case "functions" `Quick t_functions_mutual;
    Alcotest.test_case "globals" `Quick t_globals;
    Alcotest.test_case "builtins" `Quick t_builtins;
    Alcotest.test_case "ternary and casts" `Quick t_ternary_cast;
    Alcotest.test_case "runtime errors" `Quick t_runtime_errors;
    Alcotest.test_case "step limit config" `Quick t_step_limit_config;
    Alcotest.test_case "deadline config" `Quick t_deadline_config;
    Alcotest.test_case "deadline admission on short program" `Quick
      t_deadline_admission_short_program;
    Alcotest.test_case "event limit config" `Quick t_event_limit_config;
    Alcotest.test_case "completed marks completed" `Quick
      t_completed_marks_completed;
    Alcotest.test_case "scalar tracing toggle" `Quick t_scalar_tracing_toggle;
    Alcotest.test_case "parameter stack traffic" `Quick t_param_stack_traffic;
    Alcotest.test_case "suite outputs deterministic" `Slow t_suite_outputs;
  ]
