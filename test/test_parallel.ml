(* Foray_util.Parallel: the Domain pool behind -j. Results must keep input
   order whatever the interleaving, exceptions must propagate, and
   consumers (the report tables) must render byte-identically for any job
   count. *)

module Parallel = Foray_util.Parallel

let t_ordering_more_tasks_than_domains () =
  (* 50 tasks on 3 domains: every domain pulls many indices; the result
     list must still be the input order *)
  let xs = List.init 50 Fun.id in
  let got = Parallel.map ~jobs:3 (fun x -> x * x) xs in
  Alcotest.(check (list int)) "squares in order" (List.map (fun x -> x * x) xs)
    got

let t_serial_fallback () =
  let xs = [ 5; 4; 3 ] in
  Alcotest.(check (list int))
    "jobs:1 = List.map" (List.map succ xs)
    (Parallel.map ~jobs:1 succ xs);
  Alcotest.(check (list int)) "empty input" [] (Parallel.map ~jobs:4 succ []);
  Alcotest.(check (list int))
    "singleton input" [ 6 ]
    (Parallel.map ~jobs:4 succ [ 5 ])

let t_uneven_work () =
  (* make late indices cheap and early ones expensive so domains finish
     out of submission order *)
  let xs = List.init 24 (fun i -> 24 - i) in
  let work n =
    let acc = ref 0 in
    for i = 1 to n * 100_000 do
      acc := !acc + (i land 7)
    done;
    (n, !acc)
  in
  let got = Parallel.map ~jobs:4 work xs in
  Alcotest.(check (list int)) "first components keep order" xs
    (List.map fst got)

exception Boom of int

let t_exception_propagates () =
  let xs = List.init 20 Fun.id in
  match Parallel.map ~jobs:4 (fun x -> if x = 7 then raise (Boom x) else x) xs
  with
  | _ -> Alcotest.fail "expected Boom to propagate"
  | exception Boom 7 -> ()

let t_earliest_exception_wins () =
  (* several tasks fail; the re-raised one must be the earliest index so
     failures are deterministic across schedules *)
  let xs = List.init 30 Fun.id in
  match
    Parallel.map ~jobs:4 (fun x -> if x mod 10 = 3 then raise (Boom x) else x) xs
  with
  | _ -> Alcotest.fail "expected Boom to propagate"
  | exception Boom n -> Alcotest.(check int) "earliest failing index" 3 n

(* A multi-frame raise pinned to this file, so the re-raised backtrace
   must name test_parallel.ml if the worker's raw backtrace survived the
   domain boundary. *)
let[@inline never] raise_deep_in_test_parallel x =
  if x >= 0 then raise (Boom x);
  x

let[@inline never] worker_task_frame x =
  if x = 5 then 1 + raise_deep_in_test_parallel x else x

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let t_backtrace_preserved () =
  (* Regression: map used to re-raise worker exceptions with a bare
     [raise], which resets the backtrace to the re-raise site in
     parallel.ml. The failing task's own frames must survive. *)
  let was = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  Fun.protect
    ~finally:(fun () -> Printexc.record_backtrace was)
    (fun () ->
      match Parallel.map ~jobs:4 worker_task_frame (List.init 16 Fun.id) with
      | _ -> Alcotest.fail "expected Boom to propagate"
      | exception Boom 5 ->
          let bt = Printexc.get_backtrace () in
          Alcotest.(check bool)
            (Printf.sprintf "backtrace names the failing task's file:\n%s" bt)
            true
            (contains ~sub:"test_parallel" bt))

let t_run () =
  let got = Parallel.run ~jobs:2 [ (fun () -> "a"); (fun () -> "b") ] in
  Alcotest.(check (list string)) "thunks in order" [ "a"; "b" ] got

(* -- persistent pool (async/await, the daemon's substrate) ------------- *)

let t_pool_async_await () =
  let p = Parallel.create_pool ~jobs:2 () in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown_pool p)
    (fun () ->
      let futs =
        List.init 20 (fun i -> Parallel.async p (fun () -> i * i))
      in
      Alcotest.(check (list int))
        "futures resolve in submission order"
        (List.init 20 (fun i -> i * i))
        (List.map Parallel.await futs))

let t_pool_await_reraises () =
  let was = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  let p = Parallel.create_pool ~jobs:2 () in
  Fun.protect
    ~finally:(fun () ->
      Parallel.shutdown_pool p;
      Printexc.record_backtrace was)
    (fun () ->
      let ok = Parallel.async p (fun () -> 1) in
      let bad = Parallel.async p (fun () -> raise_deep_in_test_parallel 3) in
      Alcotest.(check int) "healthy future unaffected" 1 (Parallel.await ok);
      match Parallel.await bad with
      | _ -> Alcotest.fail "expected Boom from await"
      | exception Boom 3 ->
          Alcotest.(check bool)
            "await re-raises with the worker backtrace" true
            (contains ~sub:"test_parallel" (Printexc.get_backtrace ())))

let t_pool_shutdown_drains_then_rejects () =
  let p = Parallel.create_pool ~jobs:1 () in
  let futs = List.init 8 (fun i -> Parallel.async p (fun () -> i + 100)) in
  Parallel.shutdown_pool p;
  (* queued work submitted before shutdown still completes *)
  Alcotest.(check (list int))
    "queued futures drained"
    (List.init 8 (fun i -> i + 100))
    (List.map Parallel.await futs);
  match Parallel.async p (fun () -> 0) with
  | _ -> Alcotest.fail "async on a shut-down pool must be rejected"
  | exception Invalid_argument _ -> ()

let t_default_jobs () =
  Alcotest.(check bool) "at least one domain" true (Parallel.default_jobs () >= 1)

(* -- consumers: parallel fan-out must not change rendered output ------- *)

let render_tables ~jobs =
  let reports = Foray_report.Report.report_all ~jobs () in
  String.concat "\n"
    [
      Foray_report.Report.table1 reports;
      Foray_report.Report.table2 reports;
      Foray_report.Report.table3 reports;
      Foray_report.Report.headline reports;
    ]

let t_tables_byte_identical () =
  Alcotest.(check string)
    "tables -j 4 == -j 1" (render_tables ~jobs:1) (render_tables ~jobs:4)

let t_stability_jobs_identical () =
  let prog =
    Minic.Parser.program (Option.get (Foray_suite.Suite.find "adpcm")).source
  in
  let a = Foray_core.Stability.study ~jobs:1 ~seeds:[ 1; 2; 3; 4 ] prog in
  let b = Foray_core.Stability.study ~jobs:4 ~seeds:[ 1; 2; 3; 4 ] prog in
  Alcotest.(check string)
    "stability report identical"
    (Foray_core.Stability.to_string a)
    (Foray_core.Stability.to_string b)

let t_sweep_jobs_identical () =
  let r =
    Tutil.run_source (Option.get (Foray_suite.Suite.find "gsm")).source
  in
  let show (s : Foray_spm.Dse.solution) =
    Format.asprintf "%a" Foray_spm.Dse.pp_selection s.selection
  in
  let a = List.map (fun (_, s) -> show s) (Foray_spm.Dse.sweep ~jobs:1 r.model) in
  let b = List.map (fun (_, s) -> show s) (Foray_spm.Dse.sweep ~jobs:4 r.model) in
  Alcotest.(check (list string)) "DSE sweep identical" a b

let tests =
  [
    Alcotest.test_case "ordering, more tasks than domains" `Quick
      t_ordering_more_tasks_than_domains;
    Alcotest.test_case "serial fallback and small inputs" `Quick
      t_serial_fallback;
    Alcotest.test_case "uneven work keeps order" `Quick t_uneven_work;
    Alcotest.test_case "exception propagates" `Quick t_exception_propagates;
    Alcotest.test_case "earliest exception wins" `Quick
      t_earliest_exception_wins;
    Alcotest.test_case "worker backtrace preserved" `Quick
      t_backtrace_preserved;
    Alcotest.test_case "run thunks" `Quick t_run;
    Alcotest.test_case "pool async/await" `Quick t_pool_async_await;
    Alcotest.test_case "pool await re-raises with backtrace" `Quick
      t_pool_await_reraises;
    Alcotest.test_case "pool shutdown drains then rejects" `Quick
      t_pool_shutdown_drains_then_rejects;
    Alcotest.test_case "default_jobs sane" `Quick t_default_jobs;
    Alcotest.test_case "tables byte-identical across -j" `Slow
      t_tables_byte_identical;
    Alcotest.test_case "stability identical across jobs" `Quick
      t_stability_jobs_identical;
    Alcotest.test_case "DSE sweep identical across jobs" `Quick
      t_sweep_jobs_identical;
  ]
