(* Static baseline tests: affine expression engine and FORAY-form
   recognition. *)

open Foray_static
module Ast = Minic.Ast

let aff_of iters src = Static_affine.of_expr ~iters (Minic.Parser.expr src)

let t_affine_const () =
  match aff_of [] "3 * 4 + 2" with
  | Some { const = 14; coeffs = [] } -> ()
  | _ -> Alcotest.fail "constant folding"

let t_affine_linear () =
  (match aff_of [ "i"; "j" ] "4 * i + 2" with
  | Some { const = 2; coeffs = [ ("i", 4) ] } -> ()
  | _ -> Alcotest.fail "4*i + 2");
  match aff_of [ "i"; "j" ] "j + 10 * i - 3" with
  | Some { const = -3; coeffs } ->
      Alcotest.(check (list (pair string int)))
        "coeffs sorted" [ ("i", 10); ("j", 1) ] coeffs
  | _ -> Alcotest.fail "j + 10i - 3"

let t_affine_combines () =
  (match aff_of [ "i" ] "2 * (i + 3) + i" with
  | Some { const = 6; coeffs = [ ("i", 3) ] } -> ()
  | _ -> Alcotest.fail "distribution");
  (match aff_of [ "i" ] "i - i" with
  | Some { const = 0; coeffs = [] } -> ()
  | _ -> Alcotest.fail "cancellation");
  match aff_of [ "i" ] "i << 2" with
  | Some { const = 0; coeffs = [ ("i", 4) ] } -> ()
  | _ -> Alcotest.fail "shift as multiply"

let t_affine_rejects () =
  List.iter
    (fun src ->
      match aff_of [ "i"; "j" ] src with
      | None -> ()
      | Some _ -> Alcotest.failf "should reject %s" src)
    [ "i * j"; "i / 2"; "i % 8"; "x"; "a[i]"; "i * i"; "mc_rand(4)"; "i & 7" ]

let analyze src = Baseline.analyze (Minic.Parser.program src)

let t_canonical_for () =
  let r =
    analyze
      "int A[100]; int main() { int i; for (i = 0; i < 100; i++) { A[i] = i; } return 0; }"
  in
  Alcotest.(check int) "canonical" 1 (List.length r.canonical_loops);
  Alcotest.(check int) "analyzable ref" 1 (List.length r.analyzable_refs)

let t_canonical_variants () =
  let ok src =
    let r = analyze src in
    List.length r.canonical_loops = List.length r.total_loops
  in
  Alcotest.(check bool) "down counting" true
    (ok "int main() { int i; for (i = 10; i > 0; i--) { } return 0; }");
  Alcotest.(check bool) "step 2" true
    (ok "int main() { int i; for (i = 0; i < 10; i += 2) { } return 0; }");
  Alcotest.(check bool) "i = i + 1 form" true
    (ok "int main() { int i; for (i = 0; i < 10; i = i + 1) { } return 0; }");
  Alcotest.(check bool) "variable bound" true
    (ok "int n; int main() { int i; for (i = 0; i < n; i++) { } return 0; }")

let t_non_canonical () =
  let none src =
    let r = analyze src in
    List.length r.canonical_loops = 0
  in
  Alcotest.(check bool) "while loop" true
    (none "int main() { int i; i = 0; while (i < 10) { i++; } return 0; }");
  Alcotest.(check bool) "do loop" true
    (none "int main() { int i; i = 0; do { i++; } while (i < 10); return 0; }");
  Alcotest.(check bool) "iterator modified in body" true
    (none
       "int main() { int i; for (i = 0; i < 10; i++) { i += 2; } return 0; }");
  Alcotest.(check bool) "iterator address taken" true
    (none
       "int f(int *p) { *p = 0; return 0; } int main() { int i; for (i = 0; i < 10; i++) { f(&i); } return 0; }");
  Alcotest.(check bool) "data-dependent step" true
    (none
       "int n; int main() { int i; for (i = 0; i < 10; i += n) { } return 0; }")

let t_pointer_not_analyzable () =
  let r =
    analyze
      "int A[100]; int main() { int *p; int i; p = A; for (i = 0; i < 100; i++) { *p++ = i; } return 0; }"
  in
  Alcotest.(check int) "loop canonical" 1 (List.length r.canonical_loops);
  Alcotest.(check int) "pointer write not analyzable" 0
    (List.length r.analyzable_refs)

let t_param_array_not_analyzable () =
  (* arrays decay to pointers at function boundaries *)
  let r =
    analyze
      "int f(int a[10]) { int i; for (i = 0; i < 10; i++) { a[i] = i; } return 0; } int A[10]; int main() { return f(A); }"
  in
  Alcotest.(check int) "param indexing rejected" 0
    (List.length r.analyzable_refs)

let t_enclosing_loop_spoils () =
  (* an affine ref under a while loop cannot be statically placed *)
  let r =
    analyze
      "int A[100]; int main() { int i; int k; k = 0; while (k < 2) { for (i = 0; i < 100; i++) { A[i] = i; } k++; } return 0; }"
  in
  Alcotest.(check int) "inner for still canonical" 1
    (List.length r.canonical_loops);
  Alcotest.(check int) "but its refs are not analyzable" 0
    (List.length r.analyzable_refs)

let t_2d_array () =
  let r =
    analyze
      "int M[8][8]; int main() { int i; int j; for (i = 0; i < 8; i++) { for (j = 0; j < 8; j++) { M[i][j] = i + j; } } return 0; }"
  in
  Alcotest.(check int) "2-D affine ref" 1 (List.length r.analyzable_refs)

let t_nonaffine_index () =
  let r =
    analyze
      "int A[100]; int Z[10]; int main() { int i; for (i = 0; i < 10; i++) { A[Z[i]] = i; } return 0; }"
  in
  (* Z[i] is analyzable; A[Z[i]] is not *)
  Alcotest.(check int) "only the table read" 1 (List.length r.analyzable_refs)

let t_local_array () =
  let r =
    analyze
      "int main() { int a[50]; int i; for (i = 0; i < 50; i++) { a[i] = i; } return 0; }"
  in
  Alcotest.(check int) "local array analyzable" 1
    (List.length r.analyzable_refs)

let t_sites_match_simulator () =
  (* the eids the static analyzer reports are the sites the simulator
     emits: every statically analyzable ref must appear in the trace *)
  let src =
    "int A[40]; int main() { int i; for (i = 0; i < 40; i++) { A[i] = i; } return 0; }"
  in
  let prog = Minic.Parser.program src in
  let r = Baseline.analyze prog in
  let sites = Hashtbl.create 16 in
  let sink = function
    | Foray_trace.Event.Access a -> Hashtbl.replace sites a.site ()
    | _ -> ()
  in
  ignore (Minic_sim.Interp.run prog ~sink);
  List.iter
    (fun eid ->
      if not (Hashtbl.mem sites eid) then
        Alcotest.failf "static site %d missing from trace" eid)
    r.analyzable_refs

let t_fft_fully_static () =
  (* the fft benchmark is written in FORAY form: every reference the
     dynamic model captures is statically analyzable (Table II: 0%) *)
  let b = Option.get (Foray_suite.Suite.find "fft") in
  let res = Tutil.run_source b.source in
  let static = Baseline.analyze res.program in
  List.iter
    (fun (_, (mr : Foray_core.Model.mref)) ->
      if not (Baseline.ref_analyzable static mr.site) then
        Alcotest.failf "fft model site %x not static" mr.site)
    (Foray_core.Model.all_refs res.model)

let tests =
  [
    Alcotest.test_case "affine constants" `Quick t_affine_const;
    Alcotest.test_case "affine linear" `Quick t_affine_linear;
    Alcotest.test_case "affine combination" `Quick t_affine_combines;
    Alcotest.test_case "affine rejections" `Quick t_affine_rejects;
    Alcotest.test_case "canonical for" `Quick t_canonical_for;
    Alcotest.test_case "canonical variants" `Quick t_canonical_variants;
    Alcotest.test_case "non-canonical loops" `Quick t_non_canonical;
    Alcotest.test_case "pointer refs not analyzable" `Quick
      t_pointer_not_analyzable;
    Alcotest.test_case "param arrays decay" `Quick t_param_array_not_analyzable;
    Alcotest.test_case "enclosing while spoils refs" `Quick
      t_enclosing_loop_spoils;
    Alcotest.test_case "2-D arrays" `Quick t_2d_array;
    Alcotest.test_case "non-affine index" `Quick t_nonaffine_index;
    Alcotest.test_case "local arrays" `Quick t_local_array;
    Alcotest.test_case "sites match the simulator" `Quick
      t_sites_match_simulator;
    Alcotest.test_case "fft fully static (table II)" `Slow t_fft_fully_static;
  ]
