(* Aggregated alcotest runner for the whole repository. *)

let () =
  Alcotest.run "foray"
    [
      ("obs", Test_obs.tests);
      ("window", Test_window.tests);
      ("span", Test_span.tests);
      ("provenance", Test_provenance.tests);
      ("iset", Test_iset.tests);
      ("util", Test_util.tests);
      ("minic", Test_minic.tests);
      ("machine", Test_machine.tests);
      ("interp", Test_interp.tests);
      ("trace", Test_trace.tests);
      ("tracefile", Test_tracefile.tests);
      ("faults", Test_faults.tests);
      ("instrument", Test_instrument.tests);
      ("affine", Test_affine.tests);
      ("looptree", Test_looptree.tests);
      ("model", Test_model.tests);
      ("static", Test_static.tests);
      ("cache", Test_cache.tests);
      ("spm", Test_spm.tests);
      ("switch", Test_switch.tests);
      ("generator", Test_generator.tests);
      ("stability", Test_stability.tests);
      ("fixpoint", Test_fixpoint.tests);
      ("validate", Test_validate.tests);
      ("verify", Test_verify.tests);
      ("import", Test_import.tests);
      ("pipeline", Test_pipeline.tests);
      ("shard", Test_shard.tests);
      ("treedump", Test_treedump.tests);
      ("misc", Test_misc.tests);
      ("report", Test_report.tests);
      ("resolve", Test_resolve.tests);
      ("parallel", Test_parallel.tests);
      ("serve", Test_serve.tests);
    ]
