(* Differential tests for sharded trace analysis.

   The contract under test: for ANY trace and ANY shard count, cutting
   the trace with Tracefile.shards, walking each shard with a mergeable
   Looptree and folding Looptree.merge/Tstats.merge yields exactly the
   sequential analysis — same generated C model byte-for-byte, same
   Step-4 verdicts, same footprint statistics. The properties run over
   the random ground-truth generator, over fault-injected (salvaged)
   traces, and over hand-written programs whose loops are abandoned by
   break/continue/return, with shard boundaries swept across the trace. *)

open Foray_core
module Generator = Foray_util.Progen
module Event = Foray_trace.Event
module Tracefile = Foray_trace.Tracefile
module Tstats = Foray_trace.Tstats
module FI = Foray_util.Faultinject

(* --- helpers --------------------------------------------------------- *)

let trace_of_source src =
  let prog = Minic.Parser.program src in
  match Pipeline.run_offline prog with
  | Ok (_, trace) -> Array.of_list trace
  | Error e ->
      Alcotest.failf "trace generation failed: %s" (Error.to_string e)

(* Everything observable about one analysis: the generated C model, the
   Step-4 verdict of every reference keyed by (loop path, site), and the
   aggregate trace statistics. Two analyses agree iff these are equal. *)
type digest = {
  model : string;
  verdicts : ((int list * int) * (bool * Provenance.purge_reason option)) list;
  accesses : int;
  footprint : int;
  sites : int;
}

let digest_of (tree, stats) =
  let verdicts =
    Looptree.refs tree
    |> List.map (fun ((n : Looptree.node), (ri : Looptree.refinfo)) ->
           ( (Looptree.path n, Affine.site ri.aff),
             Filter.verdict Filter.default ri ))
    |> List.sort compare
  in
  {
    model = Model.to_c (Model.of_tree tree);
    verdicts;
    accesses = Tstats.total_accesses stats;
    footprint = Tstats.total_footprint stats;
    sites = Tstats.n_sites stats;
  }

let analyze ?shards events = digest_of (Pipeline.analyze_events ?shards events)

let check_equiv ~what ~shards events =
  let seq = analyze events in
  let shd = analyze ~shards events in
  if seq <> shd then
    Alcotest.failf
      "%s: %d-shard analysis diverged from sequential\n\
       models equal: %b  verdicts equal: %b  accesses %d/%d  footprint \
       %d/%d  sites %d/%d"
      what shards
      (String.equal seq.model shd.model)
      (seq.verdicts = shd.verdicts)
      seq.accesses shd.accesses seq.footprint shd.footprint seq.sites
      shd.sites

(* --- the differential property over generated programs --------------- *)

let gen_case =
  let open QCheck2.Gen in
  let* seed = int_bound 99_999 in
  let* nests = int_range 1 3 in
  let* shards = oneofl [ 1; 2; 7; 64 ] in
  return (seed, nests, shards)

let print_case (seed, nests, shards) =
  Printf.sprintf "seed=%d nests=%d shards=%d" seed nests shards

let prop_differential =
  QCheck2.Test.make ~name:"sharded = sequential on generated programs"
    ~count:200 ~print:print_case gen_case (fun (seed, nests, shards) ->
      let g = Generator.generate ~seed ~nests in
      let events = trace_of_source g.source in
      analyze events = analyze ~shards events)

(* --- salvage composition --------------------------------------------- *)

(* Sharding partitions whatever event stream salvage produced, so a
   damaged trace must shard to the same result as its sequential salvage
   read. Mutations are deterministic in the seed (Foray_util.Prng). *)
let prop_salvage =
  let open QCheck2.Gen in
  let gen =
    let* seed = int_bound 9_999 in
    let* kind = oneofl FI.all in
    let* shards = oneofl [ 2; 7; 64 ] in
    return (seed, kind, shards)
  in
  QCheck2.Test.make ~name:"sharded = sequential on salvaged traces" ~count:60
    ~print:(fun (seed, kind, shards) ->
      Printf.sprintf "seed=%d kind=%s shards=%d" seed (FI.name kind) shards)
    gen
    (fun (seed, kind, shards) ->
      let g = Generator.generate ~seed ~nests:2 in
      let events = trace_of_source g.source in
      let path = Filename.temp_file "foray_shard" ".trace" in
      Tracefile.save ~format:Tracefile.Binary path (Array.to_list events);
      let bytes =
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let b = really_input_string ic n in
        close_in ic;
        b
      in
      let mutated = FI.apply (Foray_util.Prng.create seed) kind bytes in
      let oc = open_out_bin path in
      output_string oc mutated;
      close_out oc;
      let read = Tracefile.read_events path in
      Sys.remove path;
      match read with
      | Error _ -> true (* typed rejection: nothing to shard *)
      | Ok (salvaged, _) -> analyze salvaged = analyze ~shards salvaged)

(* --- merge algebra ---------------------------------------------------- *)

(* Affine.merge consumes its arguments, so each algebraic expression gets
   freshly rebuilt solver states for the same observation streams. *)
let aff_of depth obs =
  let a = Affine.create_logged ~site:0xfee ~depth in
  List.iter (fun (iters, addr) -> Affine.observe a ~iters ~addr) obs;
  a

let aff_summary a =
  Affine.force a;
  ( Affine.execs a,
    Affine.analyzable a,
    Affine.const a,
    Affine.coeffs a,
    Affine.m a,
    Affine.partial a,
    Affine.mispredictions a,
    Affine.included_terms a )

let gen_obs depth =
  let open QCheck2.Gen in
  let iters = array_size (return depth) (int_bound 12) in
  let ob =
    let* i = iters in
    let* addr = int_bound 4_000 in
    return (i, addr)
  in
  list_size (int_range 0 20) ob

let prop_affine_merge_assoc =
  let open QCheck2.Gen in
  let gen =
    let* depth = int_range 1 3 in
    let* o1 = gen_obs depth in
    let* o2 = gen_obs depth in
    let* o3 = gen_obs depth in
    return (depth, o1, o2, o3)
  in
  QCheck2.Test.make ~name:"Affine.merge is associative" ~count:200 gen
    (fun (depth, o1, o2, o3) ->
      let left =
        Affine.merge
          (Affine.merge (aff_of depth o1) (aff_of depth o2))
          (aff_of depth o3)
      in
      let right =
        Affine.merge (aff_of depth o1)
          (Affine.merge (aff_of depth o2) (aff_of depth o3))
      in
      aff_summary left = aff_summary right)

let prop_affine_merge_identity =
  let open QCheck2.Gen in
  let gen =
    let* depth = int_range 1 3 in
    let* obs = gen_obs depth in
    return (depth, obs)
  in
  QCheck2.Test.make ~name:"fresh logged state is a merge identity" ~count:100
    gen
    (fun (depth, obs) ->
      let plain = aff_summary (aff_of depth obs) in
      let left =
        aff_summary
          (Affine.merge (Affine.create_logged ~site:0xfee ~depth)
             (aff_of depth obs))
      in
      let right =
        aff_summary
          (Affine.merge (aff_of depth obs)
             (Affine.create_logged ~site:0xfee ~depth))
      in
      plain = left && plain = right)

(* Looptree.merge associativity on real shard trees: cut a generated
   trace three ways, build the per-shard trees twice, fold in both
   association orders and compare the resulting models. *)
let shard_tree events (s : Tracefile.shard) =
  let tree = Looptree.create ~mergeable:true () in
  Looptree.restore_context tree s.s_context;
  let sink = Looptree.sink tree in
  for i = s.s_start to s.s_start + s.s_len - 1 do
    sink events.(i)
  done;
  tree

let tree_digest tree =
  Looptree.finalize tree;
  let verdicts =
    Looptree.refs tree
    |> List.map (fun ((n : Looptree.node), (ri : Looptree.refinfo)) ->
           ( (Looptree.path n, Affine.site ri.aff),
             Filter.verdict Filter.default ri ))
    |> List.sort compare
  in
  (Model.to_c (Model.of_tree tree), verdicts, Looptree.mismatches tree)

let t_looptree_merge_assoc () =
  for seed = 1 to 10 do
    let g = Generator.generate ~seed ~nests:3 in
    let events = trace_of_source g.source in
    match Tracefile.shards ~n:3 events with
    | [ _; _; _ ] as ss ->
        let build () =
          match List.map (shard_tree events) ss with
          | [ a; b; c ] -> (a, b, c)
          | _ -> assert false
        in
        let a, b, c = build () in
        let left = Looptree.merge (Looptree.merge a b) c in
        let a, b, c = build () in
        let right = Looptree.merge a (Looptree.merge b c) in
        if tree_digest left <> tree_digest right then
          Alcotest.failf "seed %d: merge association order changed the model"
            seed
    | _ -> () (* checkpoint-poor trace: fewer than 3 shards, nothing to test *)
  done

let t_looptree_merge_identity () =
  let g = Generator.generate ~seed:11 ~nests:2 in
  let events = trace_of_source g.source in
  let whole events =
    shard_tree events
      { Tracefile.s_index = 0; s_start = 0; s_len = Array.length events;
        s_context = [] }
  in
  let plain = tree_digest (whole events) in
  let left =
    tree_digest (Looptree.merge (Looptree.create ~mergeable:true ()) (whole events))
  in
  let right =
    tree_digest (Looptree.merge (whole events) (Looptree.create ~mergeable:true ()))
  in
  Alcotest.(check bool) "fresh tree is a left identity" true (plain = left);
  Alcotest.(check bool) "fresh tree is a right identity" true (plain = right)

(* --- boundary placement and abandoned loops --------------------------- *)

(* Loops abandoned by break/continue/return leave the walker with nodes
   that only a later checkpoint pops; shard cuts landing in that window
   historically risked double-counting or lost context. Sweeping the
   shard count moves the balanced boundary across every checkpoint of
   these small traces, so each program is analyzed with cuts before,
   inside and after the abandoned region. *)
let src_break =
  {|
int A[400];

int main() {
  int i;
  int j;
  for (i = 0; i < 12; i++) {
    for (j = 0; j < 30; j++) {
      A[j] = i + j;
      if (j > 2 + i % 3) break;
    }
  }
  return 0;
}
|}

let src_continue =
  {|
int A[400];
int B[400];

int main() {
  int i;
  int j;
  for (i = 0; i < 10; i++) {
    for (j = 0; j < 12; j++) {
      A[j + 12 * i % 400] = j;
      if (j % 3 == 1) continue;
      B[j] = i;
    }
  }
  return 0;
}
|}

let src_return =
  {|
int A[500];

int walk(int stop) {
  int k;
  for (k = 0; k < 50; k++) {
    A[k] = k;
    if (k == stop) return k;
  }
  return -1;
}

int main() {
  int i;
  int acc = 0;
  for (i = 0; i < 10; i++) {
    acc += walk(3 * i);
  }
  return 0;
}
|}

let t_boundary_sweep () =
  List.iter
    (fun (what, src) ->
      let events = trace_of_source src in
      let seq = analyze events in
      for n = 2 to 40 do
        let shd = analyze ~shards:n events in
        if seq <> shd then
          Alcotest.failf "%s: shard count %d diverged from sequential" what n
      done)
    [
      ("break mid-loop", src_break);
      ("continue mid-loop", src_continue);
      ("return mid-loop", src_return);
    ]

(* Every distinct cut Tracefile.shards can produce for n=2 on the break
   trace — near-exhaustive 2-shard boundary placement. Distinct n give
   distinct balanced boundaries, so sweeping n while forcing 2 shards by
   re-cutting the prefix is equivalent to moving the single cut. *)
let t_two_shard_cuts () =
  let events = trace_of_source src_break in
  let seq = analyze events in
  let seen = Hashtbl.create 64 in
  for n = 2 to Array.length events do
    match Tracefile.shards ~n events with
    | first :: _ when first.Tracefile.s_len < Array.length events ->
        let cut = first.Tracefile.s_len in
        if not (Hashtbl.mem seen cut) then begin
          Hashtbl.add seen cut ();
          (* rebuild as exactly two shards cut at [cut] via the n-shard
             list: merge the per-shard trees pairwise left-to-right *)
          let shd = analyze ~shards:n events in
          if seq <> shd then
            Alcotest.failf "cut at event %d (n=%d) diverged" cut n
        end
    | _ -> ()
  done;
  if Hashtbl.length seen < 4 then
    Alcotest.failf "expected several distinct cut positions, got %d"
      (Hashtbl.length seen)

(* --- v2 mapped analysis ------------------------------------------------ *)

(* The zero-copy path must agree with everything else: write the same
   events as a FORAYTR2 file (with a small frame budget so cut points
   exist), analyze the mapping sharded, compare digests with the
   sequential in-memory walk. *)
let with_v2_file events k =
  let path = Filename.temp_file "foray_shard" ".trace2" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Tracefile.save ~frame_events:32 ~format:Tracefile.Binary2 path
        (Array.to_list events);
      k (Tracefile.map path))

let analyze_mapped ?shards m = digest_of (Pipeline.analyze_mapped ?shards m)

let t_mapped_equals_sequential () =
  List.iter
    (fun (what, src) ->
      let events = trace_of_source src in
      let seq = analyze events in
      with_v2_file events (fun m ->
          List.iter
            (fun n ->
              if seq <> analyze_mapped ~shards:n m then
                Alcotest.failf "%s: v2 mapped %d-shard analysis diverged" what
                  n)
            [ 1; 2; 4; 13 ]))
    [
      ("break mid-loop", src_break);
      ("continue mid-loop", src_continue);
      ("return mid-loop", src_return);
    ]

let prop_mapped_differential =
  QCheck2.Test.make
    ~name:"v2 mapped sharded = sequential on generated programs" ~count:60
    ~print:print_case gen_case (fun (seed, nests, shards) ->
      let g = Generator.generate ~seed ~nests in
      let events = trace_of_source g.source in
      let seq = analyze events in
      with_v2_file events (fun m -> seq = analyze_mapped ~shards m))

let t_frame_shards_partition () =
  let events = trace_of_source src_break in
  with_v2_file events (fun m ->
      List.iter
        (fun n ->
          let fss = Tracefile.frame_shards ~n m in
          assert (List.length fss <= n);
          let sum =
            List.fold_left
              (fun a (fs : Tracefile.fshard) -> a + fs.fs_events)
              0 fss
          in
          Alcotest.(check int) "frame shards cover every event"
            (Array.length events) sum)
        [ 1; 2; 3; 7; 64; 1000 ])

let t_merge_all_equals_fold () =
  for seed = 1 to 5 do
    let g = Generator.generate ~seed ~nests:3 in
    let events = trace_of_source g.source in
    let ss = Tracefile.shards ~n:5 events in
    if List.length ss > 1 then begin
      let build () = List.map (shard_tree events) ss in
      let folded =
        match build () with
        | t :: ts -> List.fold_left Looptree.merge t ts
        | [] -> assert false
      in
      let treed = Looptree.merge_all ~jobs:2 (build ()) in
      if tree_digest folded <> tree_digest treed then
        Alcotest.failf "seed %d: merge_all diverged from the left fold" seed
    end
  done

(* --- shard partition sanity ------------------------------------------ *)

let t_shards_partition () =
  let events = trace_of_source src_break in
  let total = Array.length events in
  List.iter
    (fun n ->
      let ss = Tracefile.shards ~n events in
      assert (List.length ss <= n);
      let sum = List.fold_left (fun a s -> a + s.Tracefile.s_len) 0 ss in
      Alcotest.(check int) "covers exactly" total sum;
      ignore
        (List.fold_left
           (fun expect (s : Tracefile.shard) ->
             Alcotest.(check int) "contiguous" expect s.s_start;
             if s.s_start > 0 then
               (match events.(s.s_start) with
               | Event.Checkpoint _ -> ()
               | _ -> Alcotest.fail "shard start is not checkpoint-aligned");
             s.s_start + s.s_len)
           0 ss))
    [ 1; 2; 3; 7; 64; 1000 ]

let tests =
  [
    Alcotest.test_case "looptree merge associative" `Quick
      t_looptree_merge_assoc;
    Alcotest.test_case "looptree merge identity" `Quick
      t_looptree_merge_identity;
    Alcotest.test_case "boundary sweep over abandoned loops" `Quick
      t_boundary_sweep;
    Alcotest.test_case "two-shard cuts near-exhaustive" `Quick
      t_two_shard_cuts;
    Alcotest.test_case "shards partition the trace" `Quick t_shards_partition;
    Alcotest.test_case "v2 mapped analysis = sequential" `Quick
      t_mapped_equals_sequential;
    Alcotest.test_case "v2 frame shards partition the trace" `Quick
      t_frame_shards_partition;
    Alcotest.test_case "merge_all = left fold of merge" `Quick
      t_merge_all_equals_fold;
    QCheck_alcotest.to_alcotest prop_differential;
    QCheck_alcotest.to_alcotest prop_mapped_differential;
    QCheck_alcotest.to_alcotest prop_salvage;
    QCheck_alcotest.to_alcotest prop_affine_merge_assoc;
    QCheck_alcotest.to_alcotest prop_affine_merge_identity;
  ]
