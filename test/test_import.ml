(* Foreign trace-log import (Foray_trace.Import): the paper-style
   "site addr kind" plain-text adapter, its salvage-mode error handling,
   and its composition with the offline analysis pipeline. *)

module Event = Foray_trace.Event
module Import = Foray_trace.Import
module Tracefile = Foray_trace.Tracefile

let with_log lines k =
  let tmp = Filename.temp_file "foray_import" ".log" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let oc = open_out tmp in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      close_out oc;
      k tmp)

let read_ok ?strict path =
  match Import.read ?strict path with
  | Ok (events, salvage) -> (events, salvage)
  | Error c ->
      Alcotest.failf "unexpected corruption at byte %d: %s"
        c.Tracefile.offset c.Tracefile.kind

(* --- line grammar ----------------------------------------------------- *)

let t_parse_accesses () =
  let cases =
    [
      ( "a0 10000000 r",
        Event.Access
          { site = 0xa0; addr = 0x10000000; write = false; sys = false;
            width = 4 } );
      ( "A0 10000004 rd 2",
        Event.Access
          { site = 0xa0; addr = 0x10000004; write = false; sys = false;
            width = 2 } );
      ( "0xa1 0x10000100 write 4 sys",
        Event.Access
          { site = 0xa1; addr = 0x10000100; write = true; sys = true;
            width = 4 } );
      ( "a1 10000104 w",
        Event.Access
          { site = 0xa1; addr = 0x10000104; write = true; sys = false;
            width = 4 } );
      ("7 loop_enter", Event.Checkpoint { loop = 7; kind = Event.Loop_enter });
      ("7 body_exit", Event.Checkpoint { loop = 7; kind = Event.Body_exit });
    ]
  in
  List.iter
    (fun (line, want) ->
      match Import.parse_line line with
      | Ok (Some got) when got = want -> ()
      | Ok (Some _) -> Alcotest.failf "wrong event for %S" line
      | Ok None -> Alcotest.failf "line %S ignored" line
      | Error e -> Alcotest.failf "line %S rejected: %s" line e)
    cases

let t_parse_ignores_and_rejects () =
  List.iter
    (fun line ->
      match Import.parse_line line with
      | Ok None -> ()
      | _ -> Alcotest.failf "expected %S to be ignored" line)
    [ ""; "   "; "# a comment"; "\t" ];
  List.iter
    (fun line ->
      match Import.parse_line line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected %S to be rejected" line)
    [
      "lonely";
      "xyz loop_enter";
      "7 loop_sideways";
      "zz 10000000 r";
      "a0 zz r";
      "a0 10000000 sideways";
      "a0 10000000 r 4 sys junk";
    ]

(* --- whole-file reads -------------------------------------------------- *)

let clean_log =
  [
    "# simulator log";
    "7 loop_enter";
    "7 body_enter";
    "a0 10000000 r";
    "a1 10000100 w";
    "7 body_exit";
    "7 body_enter";
    "a0 10000004 r";
    "a1 10000104 w";
    "7 body_exit";
    "7 loop_exit";
  ]

let t_read_clean () =
  with_log clean_log (fun path ->
      let events, salvage = read_ok path in
      Alcotest.(check int) "event count" 10 (Array.length events);
      Alcotest.(check int) "no resyncs" 0 salvage.Tracefile.resyncs;
      Alcotest.(check int) "salvage count" 10 salvage.Tracefile.events;
      match events.(2) with
      | Event.Access { site; addr; write; _ } ->
          Alcotest.(check int) "site" 0xa0 site;
          Alcotest.(check int) "addr" 0x10000000 addr;
          Alcotest.(check bool) "read" false write
      | _ -> Alcotest.fail "expected an access")

let t_salvage_counts_runs () =
  (* two maximal bad runs: 3 lines + 1 line -> 2 resyncs, and the good
     events around them all survive *)
  let log =
    [ "a0 10000000 r"; "bad one"; "bad two"; "bad three"; "a0 10000004 r";
      "lonely"; "a0 10000008 r" ]
  in
  with_log log (fun path ->
      let events, salvage = read_ok path in
      Alcotest.(check int) "events" 3 (Array.length events);
      Alcotest.(check int) "resyncs" 2 salvage.Tracefile.resyncs;
      Alcotest.(check bool) "bytes skipped" true
        (salvage.Tracefile.bytes_skipped > 0);
      Alcotest.(check bool) "errors sampled" true
        (List.length salvage.Tracefile.first_errors >= 2))

let t_first_errors_capped () =
  let log =
    List.concat_map
      (fun i -> [ Printf.sprintf "a0 %x r" i; "junk junk junk junk junk" ])
      [ 0x1000; 0x1004; 0x1008; 0x100c; 0x1010; 0x1014; 0x1018; 0x101c ]
  in
  with_log log (fun path ->
      let _, salvage = read_ok path in
      Alcotest.(check int) "resyncs" 8 salvage.Tracefile.resyncs;
      Alcotest.(check int) "first_errors capped at 5" 5
        (List.length salvage.Tracefile.first_errors))

let t_strict_stops_at_first_bad_line () =
  let log = [ "a0 10000000 r"; "garbage here also"; "a0 10000004 r" ] in
  with_log log (fun path ->
      match Import.read ~strict:true path with
      | Ok _ -> Alcotest.fail "strict read accepted a damaged log"
      | Error c ->
          Alcotest.(check int) "events before" 1 c.Tracefile.events_before;
          Alcotest.(check int) "offset of the bad line"
            (String.length "a0 10000000 r\n")
            c.Tracefile.offset)

(* --- composition with the pipeline ------------------------------------ *)

let t_imported_log_analyzes () =
  (* a 3-iteration loop walking two arrays with stride 4: Steps 3-4 over
     the imported stream must recover both coefficients, and the model
     must then verify against the very same stream *)
  let log =
    [
      "7 loop_enter"; "7 body_enter"; "a0 10000000 r"; "a1 10000100 w";
      "7 body_exit"; "7 body_enter"; "a0 10000004 r"; "a1 10000104 w";
      "7 body_exit"; "7 body_enter"; "a0 10000008 r"; "a1 10000108 w";
      "7 body_exit"; "7 loop_exit";
    ]
  in
  with_log log (fun path ->
      let events, _ = read_ok path in
      let tree, _ = Foray_core.Pipeline.analyze_events events in
      let thresholds = Foray_core.Filter.{ nexec = 1; nloc = 1 } in
      let model = Foray_core.Model.of_tree ~thresholds tree in
      let coeffs =
        Foray_core.Model.all_refs model
        |> List.map (fun (_, (mr : Foray_core.Model.mref)) ->
               List.map fst mr.terms)
        |> List.sort compare
      in
      Alcotest.(check (list (list int))) "both strides recovered"
        [ [ 4 ]; [ 4 ] ] coeffs;
      let rep =
        Foray_verify.Verify.verify model (Array.to_list events)
      in
      Alcotest.(check bool) "imported model proves" true
        (Foray_verify.Verify.all_proved rep))

let tests =
  [
    Alcotest.test_case "access and checkpoint lines parse" `Quick
      t_parse_accesses;
    Alcotest.test_case "comments ignored, junk rejected" `Quick
      t_parse_ignores_and_rejects;
    Alcotest.test_case "clean log reads whole" `Quick t_read_clean;
    Alcotest.test_case "salvage counts maximal bad runs" `Quick
      t_salvage_counts_runs;
    Alcotest.test_case "first errors sampled, capped" `Quick
      t_first_errors_capped;
    Alcotest.test_case "strict stops at the first bad line" `Quick
      t_strict_stops_at_first_bad_line;
    Alcotest.test_case "imported log analyzes and verifies" `Quick
      t_imported_log_analyzes;
  ]
