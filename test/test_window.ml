(* Sliding-window aggregation tests: bucket rotation, rate math,
   hit-rate denominators, and a qcheck property that the window's
   percentiles match an exact oracle over the quantized stream. *)

module Window = Foray_obs.Window

(* A fixed epoch well away from zero, so ring arithmetic sees realistic
   absolute seconds. *)
let t0 = 1_000_000.0

let t_empty_stats () =
  let w = Window.create () in
  let s = Window.stats ~now:t0 w 10 in
  Alcotest.(check int) "no requests" 0 s.Window.w_requests;
  Alcotest.(check (float 1e-9)) "rps zero" 0.0 s.Window.w_rps;
  Alcotest.(check (float 1e-9)) "error rate zero" 0.0 s.Window.w_error_rate;
  Alcotest.(check (float 1e-9)) "hit rate zero" 0.0 s.Window.w_hit_rate;
  Alcotest.(check int) "p50 zero when idle" 0 s.Window.w_p50_ms;
  Alcotest.(check int) "p99 zero when idle" 0 s.Window.w_p99_ms

let t_basic_counts () =
  let w = Window.create () in
  Window.record ~now:t0 w Window.Hit 3;
  Window.record ~now:t0 w Window.Miss 40;
  Window.record ~now:(t0 +. 1.0) w Window.Error 7;
  Window.record ~now:(t0 +. 2.0) w Window.Uncached 100;
  let s = Window.stats ~now:(t0 +. 2.0) w 10 in
  Alcotest.(check int) "requests" 4 s.Window.w_requests;
  Alcotest.(check int) "errors" 1 s.Window.w_errors;
  Alcotest.(check int) "hits" 1 s.Window.w_hits;
  Alcotest.(check int) "misses" 1 s.Window.w_misses;
  Alcotest.(check (float 1e-9)) "rps = n / seconds" 0.4 s.Window.w_rps;
  Alcotest.(check (float 1e-9)) "error rate" 0.25 s.Window.w_error_rate;
  (* Uncached requests stay out of the hit-rate denominator *)
  Alcotest.(check (float 1e-9)) "hit rate hits/(hits+misses)" 0.5
    s.Window.w_hit_rate

let t_window_excludes_old () =
  let w = Window.create () in
  Window.record ~now:t0 w Window.Hit 1;
  Window.record ~now:(t0 +. 30.0) w Window.Miss 1;
  (* a 10s window at t0+30 must only see the second request *)
  let s = Window.stats ~now:(t0 +. 30.0) w 10 in
  Alcotest.(check int) "only recent request" 1 s.Window.w_requests;
  Alcotest.(check int) "no hits in window" 0 s.Window.w_hits;
  (* a 60s window sees both *)
  let s60 = Window.stats ~now:(t0 +. 30.0) w 60 in
  Alcotest.(check int) "wide window sees both" 2 s60.Window.w_requests

let t_ring_wrap_resets () =
  let w = Window.create () in
  Window.record ~now:t0 w Window.Hit 1;
  (* come back more than [capacity] seconds later: the slot was reused
     and the old sample must not resurface *)
  let later = t0 +. float_of_int (Window.capacity + 5) in
  Window.record ~now:later w Window.Miss 1;
  let s = Window.stats ~now:later w Window.capacity in
  Alcotest.(check int) "stale bucket dropped" 1 s.Window.w_requests;
  Alcotest.(check int) "stale hit dropped" 0 s.Window.w_hits

let t_quantize () =
  Alcotest.(check int) "0 -> first edge" 1 (Window.quantize_ms 0);
  Alcotest.(check int) "exact edge kept" 5 (Window.quantize_ms 5);
  Alcotest.(check int) "rounds up" 10 (Window.quantize_ms 6);
  Alcotest.(check int) "saturates at top" (Window.quantize_ms max_int)
    (Window.quantize_ms 1_000_000)

let t_percentiles_simple () =
  let w = Window.create () in
  (* 100 requests: 99 at 1ms, one at 5000ms *)
  for _ = 1 to 99 do
    Window.record ~now:t0 w Window.Uncached 1
  done;
  Window.record ~now:t0 w Window.Uncached 5000;
  let s = Window.stats ~now:t0 w 10 in
  Alcotest.(check int) "p50 is the common case" 1 s.Window.w_p50_ms;
  (* rank ceil(0.99 * 100) = 99 -> still the 1ms mass *)
  Alcotest.(check int) "p99 rank 99" 1 s.Window.w_p99_ms;
  Window.record ~now:t0 w Window.Uncached 5000;
  (* now 101 samples, rank ceil(.99*101)=100 -> the 5000ms tail *)
  let s' = Window.stats ~now:t0 w 10 in
  Alcotest.(check int) "p99 reaches the tail"
    (Window.quantize_ms 5000)
    s'.Window.w_p99_ms

(* The exact oracle: quantize every sample in the window, sort, take the
   1-based rank ceil(p * n). *)
let oracle_percentile samples p =
  let q = List.map Window.quantize_ms samples in
  let sorted = List.sort compare q in
  let n = List.length sorted in
  if n = 0 then 0
  else
    let rank = max 1 (int_of_float (ceil (p *. float_of_int n))) in
    List.nth sorted (rank - 1)

let prop_percentiles_match_oracle =
  (* Replay a random stream of (second-offset, latency) pairs at fixed
     timestamps and require the window percentiles to equal the oracle
     computed over exactly the samples the window covers. *)
  QCheck2.Test.make ~name:"window percentiles match exact oracle" ~count:200
    QCheck2.Gen.(
      list_size (int_range 1 400) (pair (int_range 0 9) (int_range 0 6000)))
    (fun stream ->
      let w = Window.create () in
      List.iter
        (fun (off, ms) ->
          Window.record ~now:(t0 +. float_of_int off) w Window.Uncached ms)
        stream;
      let now = t0 +. 9.0 in
      let s = Window.stats ~now w 10 in
      let in_window = List.map snd stream in
      (* every sample lands within the 10s window by construction *)
      s.Window.w_requests = List.length stream
      && s.Window.w_p50_ms = oracle_percentile in_window 0.50
      && s.Window.w_p99_ms = oracle_percentile in_window 0.99)

let t_json_shapes () =
  let w = Window.create () in
  Window.record ~now:t0 w Window.Hit 3;
  let js = Window.all_to_json ~now:t0 w in
  let contains needle hay =
    let n = String.length needle and hs = String.length hay in
    let rec go i = i + n <= hs && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present") true (contains ("\"" ^ k ^ "\"") js))
    [ "10s"; "60s"; "300s"; "requests"; "rps"; "hit_rate"; "p99_ms" ];
  let om = Window.to_openmetrics ~now:t0 w in
  Alcotest.(check bool) "gauge family rendered" true
    (contains "foray_window_rps{window=\"10s\"}" om);
  Alcotest.(check bool) "p99 family rendered" true
    (contains "foray_window_p99_ms{window=\"300s\"}" om)

let tests =
  [
    Alcotest.test_case "empty stats" `Quick t_empty_stats;
    Alcotest.test_case "basic counts" `Quick t_basic_counts;
    Alcotest.test_case "window excludes old" `Quick t_window_excludes_old;
    Alcotest.test_case "ring wrap resets" `Quick t_ring_wrap_resets;
    Alcotest.test_case "quantize" `Quick t_quantize;
    Alcotest.test_case "percentiles simple" `Quick t_percentiles_simple;
    QCheck_alcotest.to_alcotest prop_percentiles_match_oracle;
    Alcotest.test_case "json shapes" `Quick t_json_shapes;
  ]
