(* Shared helpers for tests exercising the typed pipeline API: unwrap
   the [result]-returning entry points, failing the test with the typed
   error's rendering when a run that must succeed does not. *)

let ok_result = function
  | Ok (o : Foray_core.Pipeline.outcome) -> o.result
  | Error e ->
      Alcotest.failf "pipeline error: %s" (Foray_core.Error.to_string e)

let run ?config ?thresholds prog =
  ok_result (Foray_core.Pipeline.run ?config ?thresholds prog)

let run_source ?config ?thresholds src =
  ok_result (Foray_core.Pipeline.run_source ?config ?thresholds src)

let run_offline ?config ?thresholds prog =
  match Foray_core.Pipeline.run_offline ?config ?thresholds prog with
  | Ok (o, trace) -> (o.Foray_core.Pipeline.result, trace)
  | Error e ->
      Alcotest.failf "pipeline error: %s" (Foray_core.Error.to_string e)

(* Full outcome (with degradation records), still asserting no error. *)
let run_outcome ?config ?thresholds prog =
  match Foray_core.Pipeline.run ?config ?thresholds prog with
  | Ok o -> o
  | Error e ->
      Alcotest.failf "pipeline error: %s" (Foray_core.Error.to_string e)
