(* Fault-injection and totality properties.

   The contract under test: no input — however damaged — escapes the
   trace/analysis layers as an exception. Damaged traces either salvage
   into a degraded-but-valid model or come back as a typed error value.
   All mutations are deterministic (Foray_util.Prng), so any failure here
   replays from its seed. *)

open Foray_trace
module FI = Foray_util.Faultinject

let ev_ck loop kind = Event.Checkpoint { loop; kind }

let ev_acc ?(write = false) ?(sys = false) ?(width = 4) site addr =
  Event.Access { site; addr; write; sys; width }

(* --- generators ------------------------------------------------------ *)

let gen_ckind =
  QCheck2.Gen.oneofl
    [ Event.Loop_enter; Event.Body_enter; Event.Body_exit; Event.Loop_exit ]

let gen_event =
  let open QCheck2.Gen in
  oneof
    [
      (let* loop = int_bound 100_000 in
       let* kind = gen_ckind in
       return (ev_ck loop kind));
      (let* site = int_bound 0xfff_ffff in
       let* addr = int_bound 0xffff_ffff in
       let* write = bool in
       let* sys = bool in
       let* width = oneofl [ 1; 2; 4; 8 ] in
       return (ev_acc ~write ~sys ~width site addr));
    ]

let gen_trace = QCheck2.Gen.(list_size (int_range 0 64) gen_event)

(* --- properties ------------------------------------------------------ *)

let prop_line_roundtrip =
  QCheck2.Test.make ~name:"event text line round-trips" ~count:500 gen_event
    (fun e ->
      match Event.of_line (Event.to_line e) with
      | Ok e2 -> Event.equal e e2
      | Error _ -> false)

let prop_ckind_roundtrip =
  QCheck2.Test.make ~name:"ckind name round-trips" ~count:50 gen_ckind
    (fun k ->
      match Event.ckind_of_string (Event.string_of_ckind k) with
      | Ok k2 -> k = k2
      | Error _ -> false)

let prop_trace_string_roundtrip =
  QCheck2.Test.make ~name:"trace text round-trips" ~count:200 gen_trace
    (fun events ->
      match Event.of_string (Event.to_string events) with
      | Ok back -> List.length back = List.length events
                   && List.for_all2 Event.equal events back
      | Error _ -> false)

(* Write a trace, mutate the file bytes, read it back in salvage mode:
   the read must return a value (never raise) and can only deliver events
   — [salvage.events] — it actually decoded, so for pure truncation
   salvaged <= written, and a clean file salvages completely. *)
let with_trace_file ~format events k =
  let tmp = Filename.temp_file "foray-faults" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      Tracefile.save ~format tmp events;
      k tmp)

let read_salvage path =
  let n = ref 0 in
  match Tracefile.read path (fun _ -> incr n) with
  | Ok s ->
      assert (s.Tracefile.events = !n);
      Ok s
  | Error _ as e -> e

let overwrite path bytes =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc bytes)

let prop_clean_salvage format name =
  QCheck2.Test.make ~name ~count:100 gen_trace (fun events ->
      with_trace_file ~format events (fun tmp ->
          match read_salvage tmp with
          | Ok s ->
              s.Tracefile.events = List.length events
              && s.resyncs = 0 && s.bytes_skipped = 0
              && not s.truncated_tail
          | Error _ -> false))

let prop_clean_salvage_binary =
  prop_clean_salvage Tracefile.Binary "intact binary trace salvages fully"

let prop_clean_salvage_binary2 =
  prop_clean_salvage Tracefile.Binary2 "intact v2 trace salvages fully"

let prop_clean_salvage_text =
  prop_clean_salvage Tracefile.Text "intact text trace salvages fully"

let gen_trace_and_cut =
  let open QCheck2.Gen in
  let* events = list_size (int_range 1 64) gen_event in
  let* cut = float_bound_inclusive 1.0 in
  return (events, cut)

let prop_truncation_salvage =
  QCheck2.Test.make ~name:"truncated binary trace: salvaged <= written"
    ~count:200 gen_trace_and_cut (fun (events, cut) ->
      with_trace_file ~format:Tracefile.Binary events (fun tmp ->
          let bytes = In_channel.with_open_bin tmp In_channel.input_all in
          let keep = int_of_float (cut *. float_of_int (String.length bytes)) in
          overwrite tmp (String.sub bytes 0 keep);
          match read_salvage tmp with
          | Ok s -> s.Tracefile.events <= List.length events
          | Error _ -> false))

let prop_truncation_salvage_v2 =
  QCheck2.Test.make ~name:"truncated v2 trace: salvaged <= written" ~count:200
    gen_trace_and_cut (fun (events, cut) ->
      with_trace_file ~format:Tracefile.Binary2 events (fun tmp ->
          let bytes = In_channel.with_open_bin tmp In_channel.input_all in
          let keep = int_of_float (cut *. float_of_int (String.length bytes)) in
          overwrite tmp (String.sub bytes 0 keep);
          match read_salvage tmp with
          | Ok s -> s.Tracefile.events <= List.length events
          | Error _ -> false))

(* The totality property at the center of the harness: every mutation
   kind, applied to a real binary trace, must produce either a full read,
   a salvage, or (under strict) a typed corruption value. The campaign
   callback also drives the downstream analyzers so an escape anywhere in
   trace->tree->model fails the test. *)
let campaign_total ~format () =
  let events =
    List.concat
      (List.init 8 (fun i ->
           [ ev_ck 1 Event.Loop_enter; ev_ck 1 Event.Body_enter;
             ev_acc 0x42 (0x1000 + (4 * i)) ~write:(i mod 2 = 0);
             ev_ck 1 Event.Body_exit; ev_ck 1 Event.Loop_exit ]))
  in
  with_trace_file ~format events (fun tmp ->
      let bytes = In_channel.with_open_bin tmp In_channel.input_all in
      let run _kind mutant =
        overwrite tmp mutant;
        let tree = Foray_core.Looptree.create () in
        match Tracefile.read tmp (Foray_core.Looptree.sink tree) with
        | Error _ -> FI.Typed_failure
        | Ok s ->
            Foray_core.Looptree.flush_metrics tree;
            ignore
              (Foray_core.Model.of_tree
                 ~thresholds:Foray_core.Filter.{ nexec = 1; nloc = 1 }
                 tree);
            (* strict mode on the same mutant must also be exception-free *)
            let strict_ok =
              match Tracefile.read ~strict:true tmp (fun _ -> ()) with
              | Ok _ | Error _ -> true
            in
            if not strict_ok then FI.Escaped "strict read"
            else if s.Tracefile.resyncs = 0 && not s.truncated_tail then
              FI.Clean
            else FI.Degraded
      in
      let report = FI.campaign ~seed:7 ~runs:600 ~bytes ~run in
      Alcotest.(check int) "runs" 600 report.FI.runs;
      (match report.FI.escaped with
      | [] -> ()
      | (i, k, e) :: _ ->
          Alcotest.failf "escape at run %d (%s): %s" i (FI.name k) e);
      (* every mutation kind was exercised *)
      List.iter
        (fun k ->
          Alcotest.(check bool)
            (FI.name k ^ " exercised")
            true
            (List.assoc k report.FI.per_kind >= 600 / 6))
        FI.all)

let t_campaign_deterministic () =
  let bytes = "FORAYTR1\x01\x00\x42\x80\x20\x04" in
  let digest report =
    (report.FI.clean, report.FI.degraded, report.FI.typed,
     List.length report.FI.escaped)
  in
  let run _ mutant =
    if String.length mutant mod 3 = 0 then FI.Clean
    else if String.length mutant mod 3 = 1 then FI.Degraded
    else FI.Typed_failure
  in
  let a = FI.campaign ~seed:123 ~runs:60 ~bytes ~run in
  let b = FI.campaign ~seed:123 ~runs:60 ~bytes ~run in
  Alcotest.(check bool) "same seed, same campaign" true (digest a = digest b)

let t_apply_total_on_empty () =
  let prng = Foray_util.Prng.create 1 in
  List.iter
    (fun k -> Alcotest.(check string) (FI.name k) "" (FI.apply prng k ""))
    FI.all

let t_campaign_catches_escapes () =
  let report =
    FI.campaign ~seed:1 ~runs:6 ~bytes:"abcdef" ~run:(fun _ _ ->
        failwith "deliberate")
  in
  Alcotest.(check int) "all recorded as escapes" 6
    (List.length report.FI.escaped)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_line_roundtrip;
    QCheck_alcotest.to_alcotest prop_ckind_roundtrip;
    QCheck_alcotest.to_alcotest prop_trace_string_roundtrip;
    QCheck_alcotest.to_alcotest prop_clean_salvage_binary;
    QCheck_alcotest.to_alcotest prop_clean_salvage_binary2;
    QCheck_alcotest.to_alcotest prop_clean_salvage_text;
    QCheck_alcotest.to_alcotest prop_truncation_salvage;
    QCheck_alcotest.to_alcotest prop_truncation_salvage_v2;
    Alcotest.test_case "campaign is total over 600 mutants" `Slow
      (campaign_total ~format:Tracefile.Binary);
    Alcotest.test_case "campaign is total over 600 v2 mutants" `Slow
      (campaign_total ~format:Tracefile.Binary2);
    Alcotest.test_case "campaign deterministic in seed" `Quick
      t_campaign_deterministic;
    Alcotest.test_case "mutations total on empty input" `Quick
      t_apply_total_on_empty;
    Alcotest.test_case "campaign catches callback escapes" `Quick
      t_campaign_catches_escapes;
  ]
