(* Trace serialization and per-site statistics tests. *)

open Foray_trace

let ev_ck loop kind = Event.Checkpoint { loop; kind }

let ev_acc ?(write = false) ?(sys = false) ?(width = 4) site addr =
  Event.Access { site; addr; write; sys; width }

let sample =
  [
    ev_ck 12 Event.Loop_enter;
    ev_ck 12 Event.Body_enter;
    ev_acc ~write:true ~width:1 0x4002a0 0x7fff5934;
    ev_acc 0x4002a1 0x7fff5935;
    ev_acc ~sys:true ~write:true ~width:1 0x0e000001 0x10000000;
    ev_ck 12 Event.Body_exit;
    ev_ck 12 Event.Loop_exit;
  ]

let t_line_roundtrip () =
  List.iter
    (fun e ->
      let line = Event.to_line e in
      match Event.of_line line with
      | Ok e2 when Event.equal e e2 -> ()
      | Ok _ -> Alcotest.failf "line round-trip failed for %s" line
      | Error msg -> Alcotest.failf "of_line rejected %s: %s" line msg)
    sample

let t_figure4c_format () =
  (* the serialization mirrors the paper's Figure 4(c) records *)
  Alcotest.(check string)
    "access line" "Instr: 4002a0 addr: 7fff5934 wr 1"
    (Event.to_line (ev_acc ~write:true ~width:1 0x4002a0 0x7fff5934));
  Alcotest.(check string)
    "checkpoint line" "Checkpoint: 12 loop_enter"
    (Event.to_line (ev_ck 12 Event.Loop_enter));
  Alcotest.(check string)
    "sys marker" "Instr: e000001 addr: 10000000 rd 4 sys"
    (Event.to_line (ev_acc ~sys:true 0x0e000001 0x10000000))

let t_string_roundtrip () =
  let s = Event.to_string sample in
  match Event.of_string s with
  | Error msg -> Alcotest.failf "of_string rejected its own output: %s" msg
  | Ok back ->
      Alcotest.(check int) "same length" (List.length sample)
        (List.length back);
      List.iter2
        (fun a b -> if not (Event.equal a b) then Alcotest.fail "mismatch")
        sample back

let t_of_line_errors () =
  (* Malformed records come back as [Error], never as an exception; the
     corrupt-handling policy lives entirely in Tracefile. *)
  List.iter
    (fun line ->
      match Event.of_line line with
      | Ok _ -> Alcotest.failf "expected Error for %S" line
      | Error msg ->
          Alcotest.(check bool) "diagnostic is non-empty" true
            (String.length msg > 0))
    [ "garbage"; "Checkpoint: x loop_enter"; "Checkpoint: 1 sideways";
      "Instr: 1 addr: 2 zz 4"; "Instr: 1 addr: 2 rd 4 extra stuff" ]

let t_collector_tee () =
  let s1, get1 = Event.collector () in
  let s2, get2 = Event.collector () in
  let t = Event.tee s1 s2 in
  List.iter t sample;
  Alcotest.(check int) "collector 1" (List.length sample) (List.length (get1 ()));
  Alcotest.(check int) "collector 2" (List.length sample) (List.length (get2 ()))

let t_tstats () =
  let st = Tstats.create () in
  let sink = Tstats.sink st in
  List.iter sink
    [
      ev_acc ~write:true 1 100;
      ev_acc 1 104;
      ev_acc 1 100;
      ev_acc ~sys:true ~width:1 2 200;
      ev_ck 5 Event.Loop_enter;
    ];
  Alcotest.(check int) "two sites" 2 (Tstats.n_sites st);
  Alcotest.(check int) "accesses" 4 (Tstats.total_accesses st);
  (* site 1: bytes [100,108); site 2: [200,201) *)
  Alcotest.(check int) "footprint union" 9 (Tstats.total_footprint st);
  let info1 =
    List.find (fun (s : Tstats.site_info) -> s.site = 1) (Tstats.sites st)
  in
  Alcotest.(check int) "site1 reads" 2 info1.reads;
  Alcotest.(check int) "site1 writes" 1 info1.writes;
  Alcotest.(check bool) "site1 not sys" false info1.sys;
  let by_sys =
    Tstats.group st ~classify:(fun (s : Tstats.site_info) -> s.sys)
  in
  let n, a, f = List.assoc true by_sys in
  Alcotest.(check (list int)) "sys group" [ 1; 1; 1 ] [ n; a; f ]

let tests =
  [
    Alcotest.test_case "line round-trip" `Quick t_line_roundtrip;
    Alcotest.test_case "figure 4c format" `Quick t_figure4c_format;
    Alcotest.test_case "string round-trip" `Quick t_string_roundtrip;
    Alcotest.test_case "of_line errors" `Quick t_of_line_errors;
    Alcotest.test_case "collector and tee" `Quick t_collector_tee;
    Alcotest.test_case "per-site stats" `Quick t_tstats;
  ]
