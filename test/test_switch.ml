(* switch statement tests: parsing, printing, semantics (fallthrough,
   default, break), sema rules, and interaction with the analyses. *)

module Interp = Minic_sim.Interp

let run src =
  let prog = Minic.Parser.program src in
  Minic.Sema.check_exn prog;
  Interp.run prog ~sink:Foray_trace.Event.null_sink

let ret src = (run src).ret

let t_basic_dispatch () =
  let prog v =
    Printf.sprintf
      "int main() { int r; r = 0; switch (%d) { case 1: r = 10; break; case \
       2: r = 20; break; default: r = 99; break; } return r; }"
      v
  in
  Alcotest.(check int) "case 1" 10 (ret (prog 1));
  Alcotest.(check int) "case 2" 20 (ret (prog 2));
  Alcotest.(check int) "default" 99 (ret (prog 7))

let t_fallthrough () =
  Alcotest.(check int) "fallthrough accumulates" 30
    (ret
       "int main() { int r; r = 0; switch (1) { case 1: r += 10; case 2: r \
        += 20; break; case 3: r += 40; } return r; }")

let t_stacked_labels () =
  Alcotest.(check int) "case 2 and 3 share a body" 5
    (ret
       "int main() { int r; r = 0; switch (3) { case 1: r = 1; break; case \
        2: case 3: r = 5; break; } return r; }")

let t_no_match_no_default () =
  Alcotest.(check int) "falls past the switch" 0
    (ret
       "int main() { int r; r = 0; switch (9) { case 1: r = 1; break; } \
        return r; }")

let t_default_position () =
  (* default in the middle also falls through *)
  Alcotest.(check int) "middle default" 12
    (ret
       "int main() { int r; r = 0; switch (9) { case 1: r = 1; break; \
        default: r += 4; case 5: r += 8; break; } return r; }")

let t_break_scoping () =
  (* break inside the switch leaves the switch, not the loop *)
  Alcotest.(check int) "loop continues after switch break" 6
    (ret
       "int main() { int i; int r; r = 0; for (i = 0; i < 3; i++) { switch \
        (i) { case 0: r += 1; break; case 1: r += 2; break; default: r += 3; \
        break; } } return r; }")

let t_continue_through_switch () =
  Alcotest.(check int) "continue passes through to the loop" 4
    (ret
       "int main() { int i; int r; r = 0; for (i = 0; i < 4; i++) { switch \
        (i % 2) { case 1: continue; default: break; } r += 2; } return r; }")

let t_roundtrip () =
  let src =
    "int main() { int r; r = 0; switch (r + 1) { case 1: r = 1; break; case \
     2: case 3: r = 2; break; default: r = 9; } return r; }"
  in
  let p1 = Minic.Parser.program src in
  let p2 = Minic.Parser.program (Minic.Pretty.program p1) in
  Alcotest.(check bool) "round-trips" true (Minic.Ast.equal_program p1 p2)

let t_sema_duplicate_case () =
  let errs =
    match
      Minic.Sema.check
        (Minic.Parser.program
           "int main() { switch (1) { case 1: break; case 1: break; } return 0; }")
    with
    | Ok () -> []
    | Error l -> List.map (fun (e : Minic.Sema.error) -> e.msg) l
  in
  Alcotest.(check bool) "duplicate case flagged" true
    (List.exists
       (fun m -> String.length m >= 9 && String.sub m 0 9 = "duplicate")
       errs)

let t_parse_error_naked_stmt () =
  try
    ignore
      (Minic.Parser.program
         "int main() { switch (1) { r = 1; } return 0; }");
    Alcotest.fail "expected parse error"
  with Minic.Parser.Error _ -> ()

let t_switch_in_pipeline () =
  (* a switch-dispatched pointer walk still yields an affine model ref *)
  let src =
    {|
int A[256];
int main() {
  int i;
  int mode;
  int *p;
  p = A;
  for (i = 0; i < 64; i++) {
    switch (i & 1) {
    case 0:
      *p = i;
      break;
    default:
      *p = -i;
      break;
    }
    p++;
  }
  return 0;
}
|}
  in
  let r =
    Tutil.run_source
      ~thresholds:Foray_core.Filter.{ nexec = 20; nloc = 10 } src
  in
  (* the two switch arms write interleaved even/odd elements: each arm is
     a stride-8 affine reference *)
  let refs = Foray_core.Model.all_refs r.model in
  Alcotest.(check int) "both arms captured" 2 (List.length refs);
  List.iter
    (fun (_, (mr : Foray_core.Model.mref)) ->
      Alcotest.(check (list int)) "stride 4 (8 bytes per 2 iterations)" [ 4 ]
        (List.map fst mr.terms))
    refs

let tests =
  [
    Alcotest.test_case "basic dispatch" `Quick t_basic_dispatch;
    Alcotest.test_case "fallthrough" `Quick t_fallthrough;
    Alcotest.test_case "stacked labels" `Quick t_stacked_labels;
    Alcotest.test_case "no match, no default" `Quick t_no_match_no_default;
    Alcotest.test_case "default in the middle" `Quick t_default_position;
    Alcotest.test_case "break leaves only the switch" `Quick t_break_scoping;
    Alcotest.test_case "continue passes through" `Quick
      t_continue_through_switch;
    Alcotest.test_case "print/parse round-trip" `Quick t_roundtrip;
    Alcotest.test_case "sema duplicate case" `Quick t_sema_duplicate_case;
    Alcotest.test_case "naked statement rejected" `Quick
      t_parse_error_naked_stmt;
    Alcotest.test_case "switch arms in the model" `Quick t_switch_in_pipeline;
  ]
