(* Cross-cutting scenario tests that don't belong to one module: heap
   workloads through the whole pipeline, hint-engine negatives,
   side-effecting conditions, and deep call chains. *)

open Foray_core

let th nexec nloc = Filter.{ nexec; nloc }

let t_heap_walk_captured () =
  (* malloc'd buffers live in the heap segment; their pointer walks are
     captured like any other reference *)
  let src =
    {|
int main() {
  int *buf;
  int i;
  int s;
  buf = (int*)malloc(400);
  for (i = 0; i < 100; i++) {
    buf[i] = i * 3;
  }
  s = 0;
  for (i = 0; i < 100; i++) {
    s += buf[i];
  }
  print_int(s);
  return 0;
}
|}
  in
  let r = Tutil.run_source src in
  Alcotest.(check (list int)) "sum correct" [ 14850 ] r.sim.output;
  let refs = Model.all_refs r.model in
  Alcotest.(check int) "write and read walks captured" 2 (List.length refs);
  List.iter
    (fun (_, (mr : Model.mref)) ->
      Alcotest.(check (list int)) "stride 4" [ 4 ] (List.map fst mr.terms);
      (* heap addresses *)
      Alcotest.(check bool) "heap segment" true
        (mr.const >= Minic_machine.Layout.heap_base))
    refs

let t_hints_same_pattern () =
  (* two call sites with the SAME stride: still two contexts, but the
     hint must say the patterns agree *)
  let src =
    {|
int A[500];
int tmp;
int foo(int off) {
  int i;
  for (i = 0; i < 10; i++) {
    tmp += A[i + off];
  }
  return 0;
}
int main() {
  int x;
  int y;
  for (x = 0; x < 10; x++) {
    foo(10 * x);
  }
  for (y = 0; y < 10; y++) {
    foo(10 * y);
  }
  return 0;
}
|}
  in
  let r = Tutil.run_source ~thresholds:(th 5 5) src in
  match Pipeline.hints r with
  | [ h ] ->
      Alcotest.(check int) "two contexts" 2 (List.length h.contexts);
      Alcotest.(check bool) "same access pattern" false h.distinct_patterns
  | l -> Alcotest.failf "expected one hint, got %d" (List.length l)

let t_side_effect_condition () =
  (* assignment inside a while condition, C idiom *)
  let src =
    {|
int A[30];
int main() {
  int i;
  int v;
  i = 0;
  while ((v = i * 2) < 40) {
    A[i] = v;
    i++;
  }
  return A[10];
}
|}
  in
  let prog = Minic.Parser.program src in
  Minic.Sema.check_exn prog;
  let res = Minic_sim.Interp.run prog ~sink:Foray_trace.Event.null_sink in
  Alcotest.(check int) "computes through the condition" 20 res.ret

let t_deep_call_chain () =
  (* loops reached through several call levels still nest correctly *)
  let src =
    {|
int A[800];
int leaf(int base) {
  int j;
  for (j = 0; j < 10; j++) {
    A[base + j] = j;
  }
  return 0;
}
int mid(int base) {
  return leaf(base);
}
int main() {
  int i;
  for (i = 0; i < 20; i++) {
    mid(10 * i);
  }
  return 0;
}
|}
  in
  let r = Tutil.run_source src in
  match Model.all_refs r.model with
  | [ (chain, mr) ] ->
      Alcotest.(check int) "two loops in the nest" 2 (List.length chain);
      Alcotest.(check (list int)) "coefficients through two calls" [ 4; 40 ]
        (List.map fst mr.terms);
      Alcotest.(check bool) "fully affine despite the call chain" false
        mr.partial
  | l -> Alcotest.failf "expected one model ref, got %d" (List.length l)

let t_recursion_contexts () =
  (* recursion from INSIDE a loop nests the same static loop under
     itself; tail recursion after the loop merges contexts instead.
     Both must be handled without confusion. *)
  let src =
    {|
int A[400];
int walk(int depth, int base) {
  int i;
  for (i = 0; i < 6; i++) {
    A[base + i] = depth;
    if (i == 0 && depth > 0) {
      walk(depth - 1, base + 40);
    }
  }
  return 0;
}
int main() {
  int k;
  for (k = 0; k < 4; k++) {
    walk(2, 24 * k);
  }
  return 0;
}
|}
  in
  let r = Tutil.run_source ~thresholds:(th 4 4) src in
  (* depth-4 nodes exist: k-loop > walk > walk > walk *)
  let max_depth =
    List.fold_left
      (fun a (n : Looptree.node) -> max a n.depth)
      0
      (Looptree.nodes r.tree)
  in
  Alcotest.(check int) "recursion nests the loop under itself" 4 max_depth;
  Alcotest.(check bool) "model nonempty" true (Model.n_refs r.model > 0);
  (* tail recursion after the loop merges into one context *)
  let tail =
    {|
int A[400];
int walk(int depth, int base) {
  int i;
  for (i = 0; i < 10; i++) {
    A[base + i] = depth;
  }
  if (depth > 0) {
    return walk(depth - 1, base + 10);
  }
  return 0;
}
int main() {
  return walk(3, 0);
}
|}
  in
  let r2 = Tutil.run_source ~thresholds:(th 4 4) tail in
  let loop_nodes = Looptree.nodes r2.tree in
  Alcotest.(check int) "tail recursion merges into one node" 1
    (List.length loop_nodes);
  Alcotest.(check int) "entered once per depth" 4
    (List.hd loop_nodes).entries

let t_char_array_width () =
  (* char walks produce width-1 accesses and byte-granular models *)
  let src =
    {|
char S[64];
int main() {
  int i;
  for (i = 0; i < 64; i++) {
    S[i] = i * 7;
  }
  return S[9];
}
|}
  in
  let r = Tutil.run_source src in
  match Model.all_refs r.model with
  | [ (_, mr) ] ->
      Alcotest.(check int) "byte width" 1 mr.width;
      Alcotest.(check (list int)) "byte stride" [ 1 ] (List.map fst mr.terms);
      Alcotest.(check int) "footprint 64 bytes" 64 mr.footprint
  | l -> Alcotest.failf "expected one ref, got %d" (List.length l)

let tests =
  [
    Alcotest.test_case "heap walks captured" `Quick t_heap_walk_captured;
    Alcotest.test_case "hints: same pattern not flagged" `Quick
      t_hints_same_pattern;
    Alcotest.test_case "side-effecting condition" `Quick
      t_side_effect_condition;
    Alcotest.test_case "deep call chain" `Quick t_deep_call_chain;
    Alcotest.test_case "recursive contexts" `Quick t_recursion_contexts;
    Alcotest.test_case "char array width" `Quick t_char_array_width;
  ]
