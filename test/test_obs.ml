(* Observability registry tests: handle semantics, labels, histograms,
   JSON rendering, the disabled fast path, and an end-to-end smoke check
   that the pipeline's counters agree with its results. *)

module Obs = Foray_obs.Obs

(* Every test owns the global registry for its duration. *)
let scoped f () =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

let t_counter_basics () =
  let c = Obs.counter "t.hits" in
  Obs.incr c;
  Obs.add c 4;
  Alcotest.(check (option int)) "accumulates" (Some 5) (Obs.value "t.hits");
  Alcotest.(check (option int)) "unknown name" None (Obs.value "t.nope")

let t_disabled_is_noop () =
  let c = Obs.counter "t.off" in
  Obs.incr c;
  Obs.set_enabled false;
  Obs.incr c;
  Obs.incr c;
  Obs.set_enabled true;
  Alcotest.(check (option int)) "updates while off dropped" (Some 1)
    (Obs.value "t.off")

let t_same_name_same_cell () =
  let a = Obs.counter "t.shared" in
  let b = Obs.counter "t.shared" in
  Obs.incr a;
  Obs.incr b;
  Alcotest.(check (option int)) "one cell" (Some 2) (Obs.value "t.shared");
  (* registration is lazy, so the kind clash surfaces on first update *)
  Alcotest.(check bool) "kind clash rejected" true
    (try
       Obs.set (Obs.gauge "t.shared") 1;
       false
     with Invalid_argument _ -> true)

let t_labels_canonical () =
  (* label order must not matter; values are quoted *)
  let a = Obs.counter ~labels:[ ("b", "2"); ("a", "1") ] "t.lab" in
  let b = Obs.counter ~labels:[ ("a", "1"); ("b", "2") ] "t.lab" in
  Obs.incr a;
  Obs.incr b;
  Alcotest.(check (option int)) "canonical key" (Some 2)
    (Obs.value "t.lab{a=\"1\",b=\"2\"}")

let t_gauge_set_max () =
  let g = Obs.gauge "t.depth" in
  Obs.set_max g 3;
  Obs.set_max g 7;
  Obs.set_max g 5;
  Alcotest.(check (option int)) "high-water mark" (Some 7) (Obs.value "t.depth")

let t_reset_invalidates () =
  let c = Obs.counter "t.gen" in
  Obs.incr c;
  Obs.reset ();
  Alcotest.(check (option int)) "gone after reset" None (Obs.value "t.gen");
  (* a stale handle re-registers transparently *)
  Obs.incr c;
  Alcotest.(check (option int)) "handle survives reset" (Some 1)
    (Obs.value "t.gen")

let t_histogram_json () =
  let h = Obs.histogram ~bounds:[ 1; 4 ] "t.hist" in
  List.iter (Obs.observe h) [ 0; 1; 2; 4; 9 ];
  let js = Obs.to_json () in
  let contains needle =
    let n = String.length needle and hs = String.length js in
    let rec go i = i + n <= hs && (String.sub js i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "histogram serialized" true (contains "\"t.hist\"");
  Alcotest.(check bool) "count present" true (contains "\"count\": 5")

let t_timer () =
  let t = Obs.timer "t.span" in
  let v = Obs.time t (fun () -> 42) in
  Alcotest.(check int) "value passed through" 42 v;
  match Obs.timer_seconds "t.span" with
  | Some s -> Alcotest.(check bool) "non-negative" true (s >= 0.0)
  | None -> Alcotest.fail "timer not registered"

let t_timer_charges_on_raise () =
  (* a timed section that raises must still be charged its elapsed time *)
  let t = Obs.timer "t.raise" in
  (try Obs.time t (fun () -> failwith "boom") with Failure _ -> ());
  match Obs.timer_seconds "t.raise" with
  | Some s -> Alcotest.(check bool) "elapsed charged" true (s >= 0.0)
  | None -> Alcotest.fail "raising section left the timer unregistered"

let t_timer_reentrant () =
  (* nested time on the same timer: both sections charge, so the total is
     at least the inner section's share and nothing is lost or doubled
     into other cells *)
  let t = Obs.timer "t.nest" in
  let v =
    Obs.time t (fun () ->
        Obs.time t (fun () ->
            let t0 = Unix.gettimeofday () in
            while Unix.gettimeofday () -. t0 < 0.002 do
              ()
            done;
            17))
  in
  Alcotest.(check int) "value passes through nesting" 17 v;
  match Obs.timer_seconds "t.nest" with
  | Some s ->
      (* inner (>= 2ms) and outer (>= inner) both accumulate *)
      Alcotest.(check bool) "both sections charged" true (s >= 0.004)
  | None -> Alcotest.fail "timer not registered"

let t_pipeline_smoke () =
  (* the acceptance check: counters flushed by a full pipeline run agree
     with the result record the pipeline itself returns *)
  let r =
    Tutil.run_source
      ~thresholds:Foray_core.Filter.{ nexec = 2; nloc = 2 }
      Foray_suite.Figures.fig4a
  in
  Alcotest.(check (option int)) "interp.steps matches sim" (Some r.sim.steps)
    (Obs.value "interp.steps");
  Alcotest.(check (option int)) "one run" (Some 1) (Obs.value "interp.runs");
  Alcotest.(check (option int)) "loop tree nodes"
    (Some (Foray_core.Looptree.n_nodes r.tree))
    (Obs.value "looptree.nodes");
  Alcotest.(check (option int)) "no mismatches" (Some 0)
    (Obs.value "looptree.checkpoint_mismatches");
  (match Obs.value "infer.refs_seen" with
  | Some n -> Alcotest.(check bool) "inference saw refs" true (n > 0)
  | None -> Alcotest.fail "infer.refs_seen missing");
  match Obs.timer_seconds "pipeline.simulate" with
  | Some s -> Alcotest.(check bool) "simulate timed" true (s >= 0.0)
  | None -> Alcotest.fail "pipeline.simulate missing"

let t_label_value_escaping () =
  (* OpenMetrics-reserved characters in label values must be escaped in
     the canonical name (and hence in the exposition, which embeds it
     verbatim): backslash, double quote, newline. *)
  let c = Obs.counter ~labels:[ ("p", "a\"b\\c\nd") ] "t.esc" in
  Obs.incr c;
  Alcotest.(check (option int)) "escaped canonical key" (Some 1)
    (Obs.value "t.esc{p=\"a\\\"b\\\\c\\nd\"}");
  let om = Obs.to_openmetrics () in
  let contains needle =
    let n = String.length needle and hs = String.length om in
    let rec go i = i + n <= hs && (String.sub om i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "escaped in exposition" true
    (contains "t_esc_total{p=\"a\\\"b\\\\c\\nd\"} 1");
  Alcotest.(check bool) "raw newline never emitted" true
    (not (contains "b\\c\nd"))

let t_histogram_bounds_validated () =
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty bounds rejected" true
    (raises (fun () -> Obs.histogram ~bounds:[] "t.hb0"));
  Alcotest.(check bool) "descending bounds rejected" true
    (raises (fun () -> Obs.histogram ~bounds:[ 5; 1 ] "t.hb1"));
  Alcotest.(check bool) "duplicate bounds rejected" true
    (raises (fun () -> Obs.histogram ~bounds:[ 1; 3; 3 ] "t.hb2"));
  (* valid bounds still register and observe *)
  let h = Obs.histogram ~bounds:[ 1; 3 ] "t.hb3" in
  Obs.observe h 2;
  let om = Obs.to_openmetrics () in
  Alcotest.(check bool) "valid bounds accepted" true
    (String.length om > 0
    &&
    let needle = "t_hb3_count 1" in
    let n = String.length needle and hs = String.length om in
    let rec go i = i + n <= hs && (String.sub om i n = needle || go (i + 1)) in
    go 0)

let t_openmetrics_golden () =
  (* The full exposition for a fixed registry, byte for byte: family
     grouping with TYPE lines, _total counters, cumulative buckets with
     +Inf, _sum/_count, label escaping, the # EOF terminator. *)
  let e = Obs.counter ~labels:[ ("p", "a\"b\\c\nd") ] "esc" in
  Obs.incr e;
  let h = Obs.histogram ~bounds:[ 1; 5 ] "lat.ms" in
  List.iter (Obs.observe h) [ 0; 1; 2; 7 ];
  Obs.set (Obs.gauge "pool.size") 4;
  Obs.add (Obs.counter ~labels:[ ("op", "analyze") ] "serve.req") 3;
  Obs.incr (Obs.counter ~labels:[ ("op", "extract") ] "serve.req");
  let expected =
    "# TYPE esc counter\n"
    ^ "esc_total{p=\"a\\\"b\\\\c\\nd\"} 1\n"
    ^ "# TYPE lat_ms histogram\n" ^ "lat_ms_bucket{le=\"1\"} 2\n"
    ^ "lat_ms_bucket{le=\"5\"} 3\n" ^ "lat_ms_bucket{le=\"+Inf\"} 4\n"
    ^ "lat_ms_sum 10\n" ^ "lat_ms_count 4\n" ^ "# TYPE pool_size gauge\n"
    ^ "pool_size 4\n" ^ "# TYPE serve_req counter\n"
    ^ "serve_req_total{op=\"analyze\"} 3\n"
    ^ "serve_req_total{op=\"extract\"} 1\n" ^ "# EOF\n"
  in
  Alcotest.(check string) "golden exposition" expected (Obs.to_openmetrics ());
  (* ~extra splices before the terminator, newline-normalized *)
  let with_extra = Obs.to_openmetrics ~extra:"win_rps 2" () in
  Alcotest.(check bool) "extra precedes EOF" true
    (String.ends_with ~suffix:"win_rps 2\n# EOF\n" with_extra)

let t_trace_io_counters () =
  let path = Filename.temp_file "foray_obs" ".tr" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let events =
        [ Foray_trace.Event.Checkpoint
            { loop = 1; kind = Foray_trace.Event.Loop_enter };
          Foray_trace.Event.Access
            { site = 1; addr = 64; write = false; sys = false; width = 4 };
          Foray_trace.Event.Checkpoint
            { loop = 1; kind = Foray_trace.Event.Loop_exit }
        ]
      in
      Foray_trace.Tracefile.save ~format:Foray_trace.Tracefile.Binary path
        events;
      ignore (Foray_trace.Tracefile.load path);
      Alcotest.(check (option int)) "written" (Some 3)
        (Obs.value "trace.events_written");
      Alcotest.(check (option int)) "read back" (Some 3)
        (Obs.value "trace.events_read");
      match Obs.value "trace.bytes_written" with
      | Some n -> Alcotest.(check bool) "bytes counted" true (n > 0)
      | None -> Alcotest.fail "trace.bytes_written missing")

let tests =
  [
    Alcotest.test_case "counter basics" `Quick (scoped t_counter_basics);
    Alcotest.test_case "disabled is no-op" `Quick (scoped t_disabled_is_noop);
    Alcotest.test_case "same name same cell" `Quick (scoped t_same_name_same_cell);
    Alcotest.test_case "labels canonicalize" `Quick (scoped t_labels_canonical);
    Alcotest.test_case "gauge set_max" `Quick (scoped t_gauge_set_max);
    Alcotest.test_case "reset invalidates" `Quick (scoped t_reset_invalidates);
    Alcotest.test_case "histogram json" `Quick (scoped t_histogram_json);
    Alcotest.test_case "timer" `Quick (scoped t_timer);
    Alcotest.test_case "timer charges on raise" `Quick
      (scoped t_timer_charges_on_raise);
    Alcotest.test_case "timer re-entrant" `Quick (scoped t_timer_reentrant);
    Alcotest.test_case "label value escaping" `Quick
      (scoped t_label_value_escaping);
    Alcotest.test_case "histogram bounds validated" `Quick
      (scoped t_histogram_bounds_validated);
    Alcotest.test_case "openmetrics golden" `Quick (scoped t_openmetrics_golden);
    Alcotest.test_case "pipeline metrics smoke" `Quick (scoped t_pipeline_smoke);
    Alcotest.test_case "trace io counters" `Quick (scoped t_trace_io_counters);
  ]
