(* Model validation tests: replaying the extraction trace through the
   model's predictions. *)

open Foray_core

let th nexec nloc = Filter.{ nexec; nloc }

let t_full_affine_exact () =
  (* a model extracted from a trace predicts that same trace perfectly
     when every reference is fully affine *)
  let prog = Minic.Parser.program Foray_suite.Figures.fig4a in
  let r, trace = Tutil.run_offline ~thresholds:(th 2 2) prog in
  let rep = Validate.replay r.model trace in
  Alcotest.(check (float 0.0001)) "100% exact" 1.0 (Validate.overall rep);
  Alcotest.(check int) "covers the six accesses" 6 rep.covered;
  Alcotest.(check bool) "everything else is outside the model" true
    (rep.uncovered > 0)

let t_partial_rebases () =
  (* fig7b's data-dependent offsets force one re-base per outer change *)
  let prog = Minic.Parser.program Foray_suite.Figures.fig7b in
  let r, trace = Tutil.run_offline ~thresholds:(th 10 5) prog in
  let rep = Validate.replay r.model trace in
  let partial_sites =
    List.filter_map
      (fun (_, (mr : Model.mref)) -> if mr.partial then Some mr.site else None)
      (Model.all_refs r.model)
  in
  Alcotest.(check bool) "has partial refs" true (partial_sites <> []);
  List.iter
    (fun (rr : Validate.ref_report) ->
      if List.mem rr.site partial_sites then begin
        (* ten calls, first aligned, so at most 9 rebases; still mostly
           exact inside each call *)
        Alcotest.(check bool) "rebases bounded" true (rr.rebases <= 9);
        Alcotest.(check bool) "mostly exact" true
          (Validate.accuracy rr > 0.85)
      end)
    rep.refs

let t_overall_suite () =
  (* across the suite the model should predict nearly all covered accesses;
     only partial refs re-base *)
  List.iter
    (fun name ->
      let b = Option.get (Foray_suite.Suite.find name) in
      let prog = Minic.Parser.program b.source in
      let r, trace = Tutil.run_offline prog in
      let rep = Validate.replay r.model trace in
      Alcotest.(check bool)
        (name ^ " accuracy > 95%")
        true
        (Validate.overall rep > 0.95);
      (* coverage equals the model's share of accesses *)
      Alcotest.(check int)
        (name ^ " covered = model accesses")
        (Model.accesses r.model) rep.covered)
    [ "adpcm"; "gsm" ]

let t_empty_model () =
  let model = Model.{ loops = []; sites = [] } in
  let rep = Validate.replay model [] in
  Alcotest.(check (float 0.0)) "vacuous accuracy" 1.0 (Validate.overall rep);
  Alcotest.(check int) "nothing covered" 0 rep.covered

let tests =
  [
    Alcotest.test_case "full affine predicts exactly" `Quick
      t_full_affine_exact;
    Alcotest.test_case "partial refs re-base" `Quick t_partial_rebases;
    Alcotest.test_case "suite accuracy" `Slow t_overall_suite;
    Alcotest.test_case "empty model" `Quick t_empty_model;
  ]
