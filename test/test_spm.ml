(* SPM phase tests: energy model, reuse candidates, knapsack selection and
   code transformation. *)

open Foray_spm
open Foray_core
module Event = Foray_trace.Event

let t_energy_model () =
  Alcotest.(check bool) "SPM beats main memory" true
    (Energy.spm_access 1024 < Energy.main_access);
  Alcotest.(check bool) "energy grows with size" true
    (Energy.spm_access 256 < Energy.spm_access 16384);
  Alcotest.(check bool) "rounding up" true
    (Energy.spm_access 300 = Energy.spm_access 512);
  Alcotest.(check (float 0.0001)) "baseline is linear"
    (2.0 *. Energy.baseline 100)
    (Energy.baseline 200);
  Alcotest.(check bool) "transfer = main + spm" true
    (Energy.transfer_word 1024 > Energy.main_access)

(* Build a model from a synthetic trace. *)
let ck loop kind = Event.Checkpoint { loop; kind }
let acc ?(write = false) site addr =
  Event.Access { site; addr; write; sys = false; width = 4 }

let loop lid trip body_of =
  [ ck lid Event.Loop_enter ]
  @ List.concat
      (List.init trip (fun i ->
           (ck lid Event.Body_enter :: body_of i) @ [ ck lid Event.Body_exit ]))
  @ [ ck lid Event.Loop_exit ]

let model_of events =
  let t = Looptree.create () in
  List.iter (Looptree.sink t) events;
  Model.of_tree ~thresholds:Filter.{ nexec = 2; nloc = 2 } t

(* reused row: inner j walks 16 ints, outer i repeats it 10 times *)
let reuse_model =
  model_of
    (loop 1 10 (fun _i -> loop 2 16 (fun j -> [ acc 7 (1000 + (4 * j)) ])))

let t_candidates () =
  let cands = Reuse.candidates reuse_model in
  Alcotest.(check int) "one per level" 2 (List.length cands);
  let l1 = List.find (fun (c : Reuse.candidate) -> c.level = 1) cands in
  Alcotest.(check int) "span of inner walk" 64 l1.size;
  Alcotest.(check int) "fills once per outer iter" 10 l1.fills;
  Alcotest.(check int) "serves all accesses" 160 l1.accesses;
  Alcotest.(check int) "words per fill" 16 l1.words_per_fill;
  Alcotest.(check bool) "read only" false l1.writeback;
  let l2 = List.find (fun (c : Reuse.candidate) -> c.level = 2) cands in
  Alcotest.(check int) "whole-nest buffer fills once" 1 l2.fills;
  Alcotest.(check int) "same span (perfect reuse)" 64 l2.size

let t_benefit_sign () =
  let cands = Reuse.candidates reuse_model in
  let l2 = List.find (fun (c : Reuse.candidate) -> c.level = 2) cands in
  Alcotest.(check bool) "high-reuse buffer profitable" true
    (Reuse.benefit l2 ~spm_bytes:256 > 0.0);
  (* a buffer that is refilled for every access can't win *)
  let silly =
    Reuse.
      {
        group = 99;
        site = 9;
        lid = 0;
        level = 1;
        size = 64;
        accesses = 10;
        fills = 10;
        words_per_fill = 16;
        writeback = true;
        reuse_factor = 0.1;
      }
  in
  Alcotest.(check bool) "thrashing buffer unprofitable" true
    (Reuse.benefit silly ~spm_bytes:256 < 0.0)

let t_partial_limits_levels () =
  (* partial refs only produce candidates inside their window *)
  let bases = [| 100; 9999; 313131 |] in
  let m =
    model_of
      (loop 1 3 (fun i -> loop 2 16 (fun j -> [ acc 7 (bases.(i) + (4 * j)) ])))
  in
  let cands = Reuse.candidates m in
  Alcotest.(check bool) "no candidate beyond the window" true
    (List.for_all (fun (c : Reuse.candidate) -> c.level <= 1) cands);
  Alcotest.(check int) "inner candidate exists" 1 (List.length cands)

let t_fusion_stencil () =
  (* three stencil taps A[i-1], A[i], A[i+1] share one fused buffer *)
  let m =
    model_of
      (loop 1 20 (fun i ->
           [ acc 7 (1000 + (4 * i));
             acc 8 (1004 + (4 * i));
             acc 9 (1008 + (4 * i)) ]))
  in
  let plain = Reuse.candidates m in
  let fused = Reuse.candidates ~fuse:true m in
  (* plain: one group per ref; fused: a single group *)
  Alcotest.(check int) "three groups unfused" 3
    (List.length (Reuse.by_ref plain));
  Alcotest.(check int) "one fused group" 1 (List.length (Reuse.by_ref fused));
  match fused with
  | [ c ] ->
      (* union window: 1000 .. 1008 + 4*19 + 4 = 88 bytes *)
      Alcotest.(check int) "union span" 88 c.size;
      Alcotest.(check int) "all accesses served" 60 c.accesses
  | l -> Alcotest.failf "expected one candidate, got %d" (List.length l)

let t_fusion_keeps_disjoint () =
  (* far-apart references are not fused *)
  let m =
    model_of
      (loop 1 20 (fun i ->
           [ acc 7 (1000 + (4 * i)); acc 8 (90000 + (4 * i)) ]))
  in
  let fused = Reuse.candidates ~fuse:true m in
  Alcotest.(check int) "two groups" 2 (List.length (Reuse.by_ref fused))

let t_fusion_needs_same_terms () =
  (* different strides never fuse *)
  let m =
    model_of
      (loop 1 20 (fun i ->
           [ acc 7 (1000 + (4 * i)); acc 8 (1000 + (8 * i)) ]))
  in
  let fused = Reuse.candidates ~fuse:true m in
  Alcotest.(check int) "two groups" 2 (List.length (Reuse.by_ref fused))

let t_fusion_saves_energy () =
  (* with a tight SPM, the fused stencil buffer fits where three separate
     buffers cannot *)
  let m =
    model_of
      (loop 1 64 (fun i ->
           [ acc 7 (1000 + (4 * i));
             acc 8 (1004 + (4 * i));
             acc 9 (1008 + (4 * i)) ]))
  in
  let cap = 300 in
  let plain = Dse.select_optimal (Reuse.candidates m) ~spm_bytes:cap in
  let fused =
    Dse.select_optimal (Reuse.candidates ~fuse:true m) ~spm_bytes:cap
  in
  Alcotest.(check bool) "fusion never worse" true
    (fused.energy_opt <= plain.energy_opt +. 1e-6)

let t_selection_capacity () =
  let cands = Reuse.candidates reuse_model in
  let sel = Dse.select_optimal cands ~spm_bytes:256 in
  Alcotest.(check bool) "fits" true (sel.used_bytes <= 256);
  Alcotest.(check bool) "chose something" true (sel.chosen <> []);
  Alcotest.(check bool) "one buffer per reference group" true
    (let groups = List.map (fun (c : Reuse.candidate) -> c.group) sel.chosen in
     List.length groups = List.length (List.sort_uniq compare groups));
  let tiny = Dse.select_optimal cands ~spm_bytes:16 in
  Alcotest.(check (list int)) "nothing fits in 16B" []
    (List.map (fun (c : Reuse.candidate) -> c.size) tiny.chosen)

let t_greedy_vs_optimal () =
  (* optimal never loses to greedy; both respect capacity *)
  List.iter
    (fun (b : Foray_suite.Suite.bench) ->
      let r = Tutil.run_source b.source in
      let cands = Reuse.candidates r.model in
      List.iter
        (fun size ->
          let g = Dse.select_greedy cands ~spm_bytes:size in
          let o = Dse.select_optimal cands ~spm_bytes:size in
          Alcotest.(check bool)
            (Printf.sprintf "%s %dB optimal >= greedy" b.name size)
            true
            (o.energy_opt <= g.energy_opt +. 1e-6);
          Alcotest.(check bool) "greedy fits" true (g.used_bytes <= size);
          Alcotest.(check bool) "optimal fits" true (o.used_bytes <= size))
        [ 256; 1024; 4096 ])
    [ Option.get (Foray_suite.Suite.find "gsm") ]

let t_optimal_matches_bruteforce () =
  (* exhaustive check on small random candidate sets *)
  let rng = Foray_util.Prng.create 5 in
  for _ = 1 to 50 do
    let n = 1 + Foray_util.Prng.int rng 8 in
    let cands =
      List.init n (fun i ->
          Reuse.
            {
              group = i / 2;
              site = i;
              lid = 0;
              level = 1 + (i mod 2);
              size = 16 * (1 + Foray_util.Prng.int rng 20);
              accesses = 50 + Foray_util.Prng.int rng 1000;
              fills = 1 + Foray_util.Prng.int rng 10;
              words_per_fill = 4 + Foray_util.Prng.int rng 64;
              writeback = Foray_util.Prng.bool rng;
              reuse_factor = 1.0;
            })
    in
    let cap = 128 + Foray_util.Prng.int rng 512 in
    let opt = Dse.select_optimal cands ~spm_bytes:cap in
    (* brute force over all subsets with at most one per group *)
    let rec subsets = function
      | [] -> [ [] ]
      | c :: rest ->
          let without = subsets rest in
          without @ List.map (fun s -> c :: s) without
    in
    let feasible s =
      let groups = List.map (fun (c : Reuse.candidate) -> c.group) s in
      List.length groups = List.length (List.sort_uniq compare groups)
      && List.fold_left (fun a (c : Reuse.candidate) -> a + c.size) 0 s <= cap
    in
    let value s =
      List.fold_left
        (fun a c ->
          let b = Reuse.benefit c ~spm_bytes:cap in
          a +. if b > 0.0 then b else 0.0)
        0.0 s
    in
    let best =
      List.fold_left
        (fun acc s -> if feasible s then max acc (value s) else acc)
        0.0 (subsets cands)
    in
    let got =
      List.fold_left
        (fun a c -> a +. Reuse.benefit c ~spm_bytes:cap)
        0.0 opt.chosen
    in
    if abs_float (got -. best) > 1e-6 then
      Alcotest.failf "knapsack suboptimal: got %.3f, best %.3f" got best
  done

let t_sweep_shape () =
  let b = Option.get (Foray_suite.Suite.find "susan") in
  let r = Tutil.run_source b.source in
  let sweep = Dse.sweep r.model in
  Alcotest.(check int) "seven sizes" 7 (List.length sweep);
  List.iter
    (fun (size, (sel : Dse.selection)) ->
      Alcotest.(check bool) "capacity respected" true (sel.used_bytes <= size);
      Alcotest.(check bool) "savings in range" true
        (sel.saving_pct >= -0.01 && sel.saving_pct <= 100.0))
    sweep

let t_transform_parses () =
  let cands = Reuse.candidates reuse_model in
  let sel = Dse.select_optimal cands ~spm_bytes:1024 in
  let src = Transform.apply reuse_model sel in
  let prog = Minic.Parser.program src in
  Minic.Sema.check_exn prog;
  (* the chosen buffer must be declared and filled *)
  let has sub =
    let n = String.length sub and l = String.length src in
    let rec go i = i + n <= l && (String.sub src i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "declares a buffer" true (has "char B7_l");
  Alcotest.(check bool) "fills via memcpy" true (has "memcpy(B7_l")

let t_transform_without_buffers () =
  let sel = Dse.select_optimal [] ~spm_bytes:64 in
  let src = Transform.apply reuse_model sel in
  let prog = Minic.Parser.program src in
  Minic.Sema.check_exn prog

let tests =
  [
    Alcotest.test_case "energy model" `Quick t_energy_model;
    Alcotest.test_case "reuse candidates" `Quick t_candidates;
    Alcotest.test_case "benefit sign" `Quick t_benefit_sign;
    Alcotest.test_case "partial limits buffer levels" `Quick
      t_partial_limits_levels;
    Alcotest.test_case "fusion: stencil taps share a buffer" `Quick
      t_fusion_stencil;
    Alcotest.test_case "fusion: disjoint refs stay apart" `Quick
      t_fusion_keeps_disjoint;
    Alcotest.test_case "fusion: different strides stay apart" `Quick
      t_fusion_needs_same_terms;
    Alcotest.test_case "fusion: never worse under pressure" `Quick
      t_fusion_saves_energy;
    Alcotest.test_case "selection capacity" `Quick t_selection_capacity;
    Alcotest.test_case "greedy vs optimal" `Slow t_greedy_vs_optimal;
    Alcotest.test_case "optimal matches brute force" `Quick
      t_optimal_matches_bruteforce;
    Alcotest.test_case "sweep shape" `Slow t_sweep_shape;
    Alcotest.test_case "transform parses" `Quick t_transform_parses;
    Alcotest.test_case "transform without buffers" `Quick
      t_transform_without_buffers;
  ]
