(* SPM phase tests: energy model, reuse candidates, knapsack selection and
   code transformation. *)

open Foray_spm
open Foray_core
module Event = Foray_trace.Event

let t_energy_model () =
  Alcotest.(check bool) "SPM beats main memory" true
    (Energy.spm_access 1024 < Energy.main_access);
  Alcotest.(check bool) "energy grows with size" true
    (Energy.spm_access 256 < Energy.spm_access 16384);
  Alcotest.(check bool) "rounding up" true
    (Energy.spm_access 300 = Energy.spm_access 512);
  Alcotest.(check (float 0.0001)) "baseline is linear"
    (2.0 *. Energy.baseline 100)
    (Energy.baseline 200);
  Alcotest.(check bool) "transfer = main + spm" true
    (Energy.transfer_word 1024 > Energy.main_access)

(* Build a model from a synthetic trace. *)
let ck loop kind = Event.Checkpoint { loop; kind }
let acc ?(write = false) site addr =
  Event.Access { site; addr; write; sys = false; width = 4 }

let loop lid trip body_of =
  [ ck lid Event.Loop_enter ]
  @ List.concat
      (List.init trip (fun i ->
           (ck lid Event.Body_enter :: body_of i) @ [ ck lid Event.Body_exit ]))
  @ [ ck lid Event.Loop_exit ]

let model_of events =
  let t = Looptree.create () in
  List.iter (Looptree.sink t) events;
  Model.of_tree ~thresholds:Filter.{ nexec = 2; nloc = 2 } t

(* reused row: inner j walks 16 ints, outer i repeats it 10 times *)
let reuse_model =
  model_of
    (loop 1 10 (fun _i -> loop 2 16 (fun j -> [ acc 7 (1000 + (4 * j)) ])))

let t_candidates () =
  let cands = Reuse.candidates reuse_model in
  Alcotest.(check int) "one per level" 2 (List.length cands);
  let l1 = List.find (fun (c : Reuse.candidate) -> c.level = 1) cands in
  Alcotest.(check int) "span of inner walk" 64 l1.size;
  Alcotest.(check int) "fills once per outer iter" 10 l1.fills;
  Alcotest.(check int) "serves all accesses" 160 l1.accesses;
  Alcotest.(check int) "words per fill" 16 l1.words_per_fill;
  Alcotest.(check bool) "read only" false l1.writeback;
  let l2 = List.find (fun (c : Reuse.candidate) -> c.level = 2) cands in
  Alcotest.(check int) "whole-nest buffer fills once" 1 l2.fills;
  Alcotest.(check int) "same span (perfect reuse)" 64 l2.size

let t_benefit_sign () =
  let cands = Reuse.candidates reuse_model in
  let l2 = List.find (fun (c : Reuse.candidate) -> c.level = 2) cands in
  Alcotest.(check bool) "high-reuse buffer profitable" true
    (Reuse.benefit l2 ~spm_bytes:256 > 0.0);
  (* a buffer that is refilled for every access can't win *)
  let silly =
    Reuse.
      {
        group = 99;
        site = 9;
        lid = 0;
        level = 1;
        size = 64;
        accesses = 10;
        fills = 10;
        words_per_fill = 16;
        writeback = true;
        reuse_factor = 0.1;
      }
  in
  Alcotest.(check bool) "thrashing buffer unprofitable" true
    (Reuse.benefit silly ~spm_bytes:256 < 0.0)

let t_partial_limits_levels () =
  (* partial refs only produce candidates inside their window *)
  let bases = [| 100; 9999; 313131 |] in
  let m =
    model_of
      (loop 1 3 (fun i -> loop 2 16 (fun j -> [ acc 7 (bases.(i) + (4 * j)) ])))
  in
  let cands = Reuse.candidates m in
  Alcotest.(check bool) "no candidate beyond the window" true
    (List.for_all (fun (c : Reuse.candidate) -> c.level <= 1) cands);
  Alcotest.(check int) "inner candidate exists" 1 (List.length cands)

let t_fusion_stencil () =
  (* three stencil taps A[i-1], A[i], A[i+1] share one fused buffer *)
  let m =
    model_of
      (loop 1 20 (fun i ->
           [ acc 7 (1000 + (4 * i));
             acc 8 (1004 + (4 * i));
             acc 9 (1008 + (4 * i)) ]))
  in
  let plain = Reuse.candidates m in
  let fused = Reuse.candidates ~fuse:true m in
  (* plain: one group per ref; fused: a single group *)
  Alcotest.(check int) "three groups unfused" 3
    (List.length (Reuse.by_ref plain));
  Alcotest.(check int) "one fused group" 1 (List.length (Reuse.by_ref fused));
  match fused with
  | [ c ] ->
      (* union window: 1000 .. 1008 + 4*19 + 4 = 88 bytes *)
      Alcotest.(check int) "union span" 88 c.size;
      Alcotest.(check int) "all accesses served" 60 c.accesses
  | l -> Alcotest.failf "expected one candidate, got %d" (List.length l)

let t_fusion_keeps_disjoint () =
  (* far-apart references are not fused *)
  let m =
    model_of
      (loop 1 20 (fun i ->
           [ acc 7 (1000 + (4 * i)); acc 8 (90000 + (4 * i)) ]))
  in
  let fused = Reuse.candidates ~fuse:true m in
  Alcotest.(check int) "two groups" 2 (List.length (Reuse.by_ref fused))

let t_fusion_needs_same_terms () =
  (* different strides never fuse *)
  let m =
    model_of
      (loop 1 20 (fun i ->
           [ acc 7 (1000 + (4 * i)); acc 8 (1000 + (8 * i)) ]))
  in
  let fused = Reuse.candidates ~fuse:true m in
  Alcotest.(check int) "two groups" 2 (List.length (Reuse.by_ref fused))

let t_fusion_saves_energy () =
  (* with a tight SPM, the fused stencil buffer fits where three separate
     buffers cannot *)
  let m =
    model_of
      (loop 1 64 (fun i ->
           [ acc 7 (1000 + (4 * i));
             acc 8 (1004 + (4 * i));
             acc 9 (1008 + (4 * i)) ]))
  in
  let cap = 300 in
  let plain = Dse.select_optimal (Reuse.candidates m) ~spm_bytes:cap in
  let fused =
    Dse.select_optimal (Reuse.candidates ~fuse:true m) ~spm_bytes:cap
  in
  Alcotest.(check bool) "fusion never worse" true
    (fused.energy_opt <= plain.energy_opt +. 1e-6)

let t_selection_capacity () =
  let cands = Reuse.candidates reuse_model in
  let sel = Dse.select_optimal cands ~spm_bytes:256 in
  Alcotest.(check bool) "fits" true (sel.used_bytes <= 256);
  Alcotest.(check bool) "chose something" true (sel.chosen <> []);
  Alcotest.(check bool) "one buffer per reference group" true
    (let groups = List.map (fun (c : Reuse.candidate) -> c.group) sel.chosen in
     List.length groups = List.length (List.sort_uniq compare groups));
  let tiny = Dse.select_optimal cands ~spm_bytes:16 in
  Alcotest.(check (list int)) "nothing fits in 16B" []
    (List.map (fun (c : Reuse.candidate) -> c.size) tiny.chosen)

let t_greedy_vs_optimal () =
  (* optimal never loses to greedy; both respect capacity *)
  List.iter
    (fun (b : Foray_suite.Suite.bench) ->
      let r = Tutil.run_source b.source in
      let cands = Reuse.candidates r.model in
      List.iter
        (fun size ->
          let g = Dse.select_greedy cands ~spm_bytes:size in
          let o = Dse.select_optimal cands ~spm_bytes:size in
          Alcotest.(check bool)
            (Printf.sprintf "%s %dB optimal >= greedy" b.name size)
            true
            (o.energy_opt <= g.energy_opt +. 1e-6);
          Alcotest.(check bool) "greedy fits" true (g.used_bytes <= size);
          Alcotest.(check bool) "optimal fits" true (o.used_bytes <= size))
        [ 256; 1024; 4096 ])
    [ Option.get (Foray_suite.Suite.find "gsm") ]

let t_optimal_matches_bruteforce () =
  (* exhaustive check on small random candidate sets *)
  let rng = Foray_util.Prng.create 5 in
  for _ = 1 to 50 do
    let n = 1 + Foray_util.Prng.int rng 8 in
    let cands =
      List.init n (fun i ->
          Reuse.
            {
              group = i / 2;
              site = i;
              lid = 0;
              level = 1 + (i mod 2);
              size = 16 * (1 + Foray_util.Prng.int rng 20);
              accesses = 50 + Foray_util.Prng.int rng 1000;
              fills = 1 + Foray_util.Prng.int rng 10;
              words_per_fill = 4 + Foray_util.Prng.int rng 64;
              writeback = Foray_util.Prng.bool rng;
              reuse_factor = 1.0;
            })
    in
    let cap = 128 + Foray_util.Prng.int rng 512 in
    let opt = Dse.select_optimal cands ~spm_bytes:cap in
    (* brute force over all subsets with at most one per group *)
    let rec subsets = function
      | [] -> [ [] ]
      | c :: rest ->
          let without = subsets rest in
          without @ List.map (fun s -> c :: s) without
    in
    let feasible s =
      let groups = List.map (fun (c : Reuse.candidate) -> c.group) s in
      List.length groups = List.length (List.sort_uniq compare groups)
      && List.fold_left (fun a (c : Reuse.candidate) -> a + c.size) 0 s <= cap
    in
    let value s =
      List.fold_left
        (fun a c ->
          let b = Reuse.benefit c ~spm_bytes:cap in
          a +. if b > 0.0 then b else 0.0)
        0.0 s
    in
    let best =
      List.fold_left
        (fun acc s -> if feasible s then max acc (value s) else acc)
        0.0 (subsets cands)
    in
    let got =
      List.fold_left
        (fun a c -> a +. Reuse.benefit c ~spm_bytes:cap)
        0.0 opt.chosen
    in
    if abs_float (got -. best) > 1e-6 then
      Alcotest.failf "knapsack suboptimal: got %.3f, best %.3f" got best
  done

let t_sweep_shape () =
  let b = Option.get (Foray_suite.Suite.find "susan") in
  let r = Tutil.run_source b.source in
  let sweep = Dse.sweep r.model in
  Alcotest.(check int) "seven sizes" 7 (List.length sweep);
  List.iter
    (fun (size, (sol : Dse.solution)) ->
      let sel = sol.selection in
      Alcotest.(check bool) "capacity respected" true (sel.used_bytes <= size);
      Alcotest.(check bool) "savings in range" true
        (sel.saving_pct >= -0.01 && sel.saving_pct <= 100.0))
    sweep

(* ---- stochastic search and the solve strategy API ------------------- *)

(* Random grouped-knapsack instances in the brute-force test's mold:
   small candidate sets with shared groups and mixed profitability. *)
let gen_instance =
  let open QCheck2.Gen in
  map
    (fun (n, (seed, cap)) ->
      let rng = Foray_util.Prng.create seed in
      let cands =
        List.init n (fun i ->
            Reuse.
              {
                group = i / 2;
                site = i;
                lid = 0;
                level = 1 + (i mod 2);
                size = 16 * (1 + Foray_util.Prng.int rng 20);
                accesses = 50 + Foray_util.Prng.int rng 1000;
                fills = 1 + Foray_util.Prng.int rng 10;
                words_per_fill = 4 + Foray_util.Prng.int rng 64;
                writeback = Foray_util.Prng.bool rng;
                reuse_factor = 1.0;
              })
      in
      (cands, cap))
    (pair (int_range 1 12) (pair (int_range 0 1_000_000) (int_range 64 1024)))

let print_instance (cands, cap) =
  Format.asprintf "cap=%d@.%a" cap
    (Format.pp_print_list Reuse.pp)
    cands

let quick_cfg = { Stochastic.default_config with budget = 4_000; restarts = 2 }

let stochastic_energy ?(cfg = quick_cfg) cands ~spm_bytes =
  (Dse.solve ~strategy:(Dse.Stochastic cfg) cands ~spm_bytes).selection
    .energy_opt

let prop_stochastic_beats_greedy =
  QCheck2.Test.make ~name:"stochastic energy <= greedy energy" ~count:60
    ~print:print_instance gen_instance (fun (cands, cap) ->
      stochastic_energy cands ~spm_bytes:cap
      <= (Dse.select_greedy cands ~spm_bytes:cap).energy_opt +. 1e-6)

let prop_stochastic_near_optimal =
  QCheck2.Test.make ~name:"stochastic within 1% of optimal (small instances)"
    ~count:60 ~print:print_instance gen_instance (fun (cands, cap) ->
      let opt = (Dse.select_optimal cands ~spm_bytes:cap).energy_opt in
      stochastic_energy cands ~spm_bytes:cap <= (opt *. 1.01) +. 1e-6)

let prop_stochastic_deterministic =
  (* same seed, serial vs 4-domain ensemble: identical placement and
     energy — [jobs] must never leak into the result *)
  QCheck2.Test.make ~name:"stochastic deterministic across -j 1 / -j 4"
    ~count:20 ~print:print_instance gen_instance (fun (cands, cap) ->
      let run jobs =
        let cfg = { quick_cfg with jobs; restarts = 4 } in
        let sel =
          (Dse.solve ~strategy:(Dse.Stochastic cfg) cands ~spm_bytes:cap)
            .selection
        in
        ( List.map
            (fun (c : Reuse.candidate) -> (c.group, c.site, c.level))
            sel.chosen,
          sel.energy_opt )
      in
      run 1 = run 4)

let prop_wrapper_equivalence =
  QCheck2.Test.make ~name:"select_optimal/greedy = solve wrappers" ~count:60
    ~print:print_instance gen_instance (fun (cands, cap) ->
      Dse.select_optimal cands ~spm_bytes:cap
      = (Dse.solve ~strategy:Dse.Optimal cands ~spm_bytes:cap).selection
      && Dse.select_greedy cands ~spm_bytes:cap
         = (Dse.solve ~strategy:Dse.Greedy cands ~spm_bytes:cap).selection)

let t_stochastic_suite_within_1pct () =
  (* the headline acceptance bar: on every suite benchmark and every
     default sweep size, the seeded default-budget search lands within 1%
     of the exhaustive optimum *)
  List.iter
    (fun (b : Foray_suite.Suite.bench) ->
      let r = Tutil.run_source b.source in
      let cands = Reuse.candidates r.model in
      List.iter
        (fun size ->
          let opt = (Dse.select_optimal cands ~spm_bytes:size).energy_opt in
          let sol =
            Dse.solve
              ~strategy:(Dse.Stochastic Stochastic.default_config)
              cands ~spm_bytes:size
          in
          let st = sol.selection.energy_opt in
          if st > (opt *. 1.01) +. 1e-6 then
            Alcotest.failf "%s %dB: stochastic %.1f > optimal %.1f + 1%%"
              b.name size st opt;
          Alcotest.(check bool)
            (Printf.sprintf "%s %dB search attached" b.name size)
            true
            (sol.search <> None))
        Dse.default_sizes)
    Foray_suite.Suite.all

let t_solution_metadata () =
  let cands = Reuse.candidates reuse_model in
  let opt = Dse.solve ~strategy:Dse.Optimal cands ~spm_bytes:256 in
  Alcotest.(check bool) "optimal carries its bound" true
    (opt.optimal_energy = Some opt.selection.energy_opt);
  Alcotest.(check bool) "optimal has no search trace" true (opt.search = None);
  let st =
    Dse.solve ~strategy:(Dse.Stochastic quick_cfg) cands ~spm_bytes:256
  in
  Alcotest.(check bool) "stochastic claims no bound" true
    (st.optimal_energy = None);
  match st.search with
  | None -> Alcotest.fail "stochastic must attach its search result"
  | Some r ->
      Alcotest.(check bool) "proposals spent" true (r.proposals > 0);
      Alcotest.(check bool) "trace starts at proposal 0" true
        (match r.trace with (0, _) :: _ -> true | _ -> false);
      Alcotest.(check bool) "trace monotone decreasing" true
        (let rec mono = function
           | (k1, c1) :: ((k2, c2) :: _ as rest) ->
               k1 <= k2 && c2 <= c1 +. 1e-9 && mono rest
           | _ -> true
         in
         mono r.trace);
      Alcotest.(check bool) "kernel stats cover the proposals" true
        (List.fold_left (fun a (_, (s : Stochastic.kernel_stat)) ->
             a + s.proposed)
           0 r.kernels
        = r.proposals)

let t_stochastic_fused_beats_plain_enumeration () =
  (* under pressure the fused stencil buffer fits where three separate
     ones cannot — and reaching it requires the fusion dimension the
     exhaustive knapsack cannot express *)
  let m =
    model_of
      (loop 1 64 (fun i ->
           [ acc 7 (1000 + (4 * i));
             acc 8 (1004 + (4 * i));
             acc 9 (1008 + (4 * i)) ]))
  in
  let cap = 300 in
  let plain = Dse.select_optimal (Reuse.candidates m) ~spm_bytes:cap in
  let fused = Dse.solve_fused m ~spm_bytes:cap quick_cfg in
  Alcotest.(check bool) "joint search never worse than plain optimal" true
    (fused.selection.energy_opt <= plain.energy_opt +. 1e-6);
  Alcotest.(check bool) "capacity respected" true
    (fused.selection.used_bytes <= cap);
  match fused.search with
  | None -> Alcotest.fail "solve_fused must attach its search result"
  | Some r ->
      Alcotest.(check bool) "the space has fusion choices" true
        (r.fusable_clusters > 0)

let t_stochastic_deadline_anytime () =
  (* a deadline far smaller than the budget stops the search early but
     still returns a feasible best-so-far *)
  let b = Option.get (Foray_suite.Suite.find "jpeg") in
  let r = Tutil.run_source b.source in
  let cands = Reuse.candidates r.model in
  let cfg =
    {
      Stochastic.default_config with
      budget = 500_000_000;
      deadline_ms = Some 30;
    }
  in
  let p = Stochastic.of_candidates cands in
  let res = Stochastic.search p ~spm_bytes:4096 cfg in
  Alcotest.(check bool) "stopped on the deadline" true
    (res.stopped = Stochastic.Deadline);
  Alcotest.(check bool) "returned an anytime result" true
    (res.cost <= res.base +. 1e-6);
  Alcotest.(check bool) "well under the budget" true
    (res.proposals < cfg.budget)

let t_transform_parses () =
  let cands = Reuse.candidates reuse_model in
  let sel = Dse.select_optimal cands ~spm_bytes:1024 in
  let src = Transform.apply reuse_model sel in
  let prog = Minic.Parser.program src in
  Minic.Sema.check_exn prog;
  (* the chosen buffer must be declared and filled *)
  let has sub =
    let n = String.length sub and l = String.length src in
    let rec go i = i + n <= l && (String.sub src i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "declares a buffer" true (has "char B7_l");
  Alcotest.(check bool) "fills via memcpy" true (has "memcpy(B7_l")

let t_transform_without_buffers () =
  let sel = Dse.select_optimal [] ~spm_bytes:64 in
  let src = Transform.apply reuse_model sel in
  let prog = Minic.Parser.program src in
  Minic.Sema.check_exn prog

let tests =
  [
    Alcotest.test_case "energy model" `Quick t_energy_model;
    Alcotest.test_case "reuse candidates" `Quick t_candidates;
    Alcotest.test_case "benefit sign" `Quick t_benefit_sign;
    Alcotest.test_case "partial limits buffer levels" `Quick
      t_partial_limits_levels;
    Alcotest.test_case "fusion: stencil taps share a buffer" `Quick
      t_fusion_stencil;
    Alcotest.test_case "fusion: disjoint refs stay apart" `Quick
      t_fusion_keeps_disjoint;
    Alcotest.test_case "fusion: different strides stay apart" `Quick
      t_fusion_needs_same_terms;
    Alcotest.test_case "fusion: never worse under pressure" `Quick
      t_fusion_saves_energy;
    Alcotest.test_case "selection capacity" `Quick t_selection_capacity;
    Alcotest.test_case "greedy vs optimal" `Slow t_greedy_vs_optimal;
    Alcotest.test_case "optimal matches brute force" `Quick
      t_optimal_matches_bruteforce;
    Alcotest.test_case "sweep shape" `Slow t_sweep_shape;
    Alcotest.test_case "transform parses" `Quick t_transform_parses;
    Alcotest.test_case "transform without buffers" `Quick
      t_transform_without_buffers;
    QCheck_alcotest.to_alcotest prop_stochastic_beats_greedy;
    QCheck_alcotest.to_alcotest prop_stochastic_near_optimal;
    QCheck_alcotest.to_alcotest prop_stochastic_deterministic;
    QCheck_alcotest.to_alcotest prop_wrapper_equivalence;
    Alcotest.test_case "stochastic suite within 1% of optimal" `Slow
      t_stochastic_suite_within_1pct;
    Alcotest.test_case "solution metadata" `Quick t_solution_metadata;
    Alcotest.test_case "fused search beats plain enumeration" `Quick
      t_stochastic_fused_beats_plain_enumeration;
    Alcotest.test_case "stochastic deadline is anytime" `Quick
      t_stochastic_deadline_anytime;
  ]
