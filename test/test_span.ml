(* Span tracing tests: nesting and export shape of the Chrome trace JSON,
   folded-stack output, ring-buffer overwrite semantics, the disabled fast
   path, multi-domain tracks, and the validator's rejection cases. *)

module Span = Foray_obs.Span

(* Every test owns the global span ring for its duration. *)
let scoped f () =
  Span.reset ();
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.set_capacity Span.default_capacity)
    f

let contains hay needle =
  let n = String.length needle and hs = String.length hay in
  let rec go i = i + n <= hs && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let t_chrome_golden () =
  (* nested with_span calls must export as a valid, well-nested trace *)
  Span.with_span "outer" (fun () ->
      Span.with_span ~cat:"x" "inner_a" (fun () -> ());
      Span.with_span ~cat:"x" ~args:[ ("k", "v\"quoted\"") ] "inner_b"
        (fun () -> Span.instant "mark"));
  Alcotest.(check int) "four spans recorded" 4 (Span.recorded ());
  let js = Span.to_chrome_json () in
  (match Span.validate_chrome js with
  | Ok n ->
      (* 4 events + process_name + thread_name metadata *)
      Alcotest.(check bool) "at least 6 events" true (n >= 6)
  | Error e -> Alcotest.fail ("export did not validate: " ^ e));
  Alcotest.(check bool) "names exported" true
    (contains js "\"outer\"" && contains js "\"inner_a\"");
  Alcotest.(check bool) "args escaped" true (contains js "v\\\"quoted\\\"");
  Alcotest.(check bool) "instant phase present" true (contains js "\"ph\": \"i\"")

let t_leave_out_of_order () =
  (* leaving a parent before a child must still export a laminar trace:
     the child interval is clamped inside what the stack recorded *)
  let a = Span.enter "a" in
  let b = Span.enter "b" in
  Span.leave a;
  Span.leave b;
  match Span.validate_chrome (Span.to_chrome_json ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("not laminar: " ^ e)

let t_ring_drops_oldest () =
  Span.set_capacity 8;
  Span.set_enabled true;
  for i = 0 to 19 do
    Span.with_span (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  Alcotest.(check int) "ring holds capacity" 8 (Span.recorded ());
  Alcotest.(check int) "overflow counted" 12 (Span.dropped ());
  let js = Span.to_chrome_json () in
  Alcotest.(check bool) "oldest overwritten" false (contains js "\"s0\"");
  Alcotest.(check bool) "newest kept" true (contains js "\"s19\"");
  match Span.validate_chrome js with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("wrapped ring not valid: " ^ e)

let t_disabled_is_noop () =
  Span.set_enabled false;
  let s = Span.enter "off" in
  Span.leave s;
  Span.with_span "off2" (fun () -> ());
  Span.instant "off3";
  Alcotest.(check int) "nothing recorded" 0 (Span.recorded ());
  Alcotest.(check bool) "enter returns the null token" true (s == Span.null)

(* folded-stack lines are dropped below one self-microsecond, so give the
   span a measurable body *)
let spin () =
  for _ = 1 to 500_000 do
    ignore (Sys.opaque_identity ())
  done

let t_folded_stacks () =
  Span.with_span "root" (fun () -> Span.with_span "leaf" spin);
  let folded = Span.to_folded () in
  Alcotest.(check bool) "nested stack line" true
    (contains folded "domain0;root;leaf ");
  (* every line is "stack <int>" *)
  String.split_on_char '\n' folded
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun line ->
         match String.rindex_opt line ' ' with
         | None -> Alcotest.fail ("no value on line: " ^ line)
         | Some i ->
             let v = String.sub line (i + 1) (String.length line - i - 1) in
             Alcotest.(check bool) ("integer value on " ^ line) true
               (int_of_string_opt v <> None))

let t_multi_domain_tracks () =
  (* spans from a spawned domain land on their own track *)
  Span.with_span "main_side" (fun () ->
      let d =
        Domain.spawn (fun () ->
            Span.with_span "worker_side" (fun () -> ());
            (Domain.self () :> int))
      in
      ignore (Domain.join d));
  let js = Span.to_chrome_json () in
  (match Span.validate_chrome js with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("two-track export invalid: " ^ e));
  Alcotest.(check bool) "both spans exported" true
    (contains js "\"main_side\"" && contains js "\"worker_side\"")

let t_validator_rejects () =
  let bad = [ "", "empty"; "{", "truncated"; "[1, 2]", "not an object";
              "{\"traceEvents\": 3}", "traceEvents not an array";
              "{\"traceEvents\": [{\"ph\": \"X\"}]}", "event without name" ] in
  List.iter
    (fun (s, what) ->
      match Span.validate_chrome s with
      | Ok _ -> Alcotest.fail ("accepted " ^ what)
      | Error _ -> ())
    bad;
  (* overlapping (non-nested) spans on one track must be rejected *)
  let overlap =
    {|{"traceEvents": [
        {"name": "a", "ph": "X", "ts": 0.0, "dur": 10.0, "pid": 1, "tid": 0},
        {"name": "b", "ph": "X", "ts": 5.0, "dur": 10.0, "pid": 1, "tid": 0}]}|}
  in
  match Span.validate_chrome overlap with
  | Ok _ -> Alcotest.fail "accepted overlapping spans"
  | Error e ->
      Alcotest.(check bool) "mentions the overlap" true (contains e "overlap")

let t_write_formats () =
  Span.with_span "w" spin;
  let json_path = Filename.temp_file "foray_span" ".json" in
  let folded_path = Filename.temp_file "foray_span" ".folded" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ json_path; folded_path ])
    (fun () ->
      Span.write json_path;
      Span.write folded_path;
      (match Span.validate_chrome_file json_path with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("written file invalid: " ^ e));
      let read p = In_channel.with_open_bin p In_channel.input_all in
      Alcotest.(check bool) "folded file has the stack" true
        (contains (read folded_path) "domain0;w "))

let t_pipeline_spans () =
  (* a full pipeline run records the stage spans, nested and valid *)
  ignore
    (Tutil.run_source
       ~thresholds:Foray_core.Filter.{ nexec = 2; nloc = 2 }
       Foray_suite.Figures.fig4a);
  let js = Span.to_chrome_json () in
  List.iter
    (fun stage ->
      Alcotest.(check bool) (stage ^ " present") true
        (contains js ("\"" ^ stage ^ "\"")))
    [ "pipeline.sema"; "pipeline.annotate"; "pipeline.simulate";
      "pipeline.analyze"; "interp.run"; "interp.resolve" ];
  Alcotest.(check bool) "loop spans present" true (contains js "\"loop");
  match Span.validate_chrome js with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("pipeline trace invalid: " ^ e)

let tests =
  [
    Alcotest.test_case "chrome export golden" `Quick (scoped t_chrome_golden);
    Alcotest.test_case "out-of-order leave stays laminar" `Quick
      (scoped t_leave_out_of_order);
    Alcotest.test_case "ring drops oldest" `Quick (scoped t_ring_drops_oldest);
    Alcotest.test_case "disabled is no-op" `Quick (scoped t_disabled_is_noop);
    Alcotest.test_case "folded stacks" `Quick (scoped t_folded_stacks);
    Alcotest.test_case "multi-domain tracks" `Quick
      (scoped t_multi_domain_tracks);
    Alcotest.test_case "validator rejects malformed" `Quick
      (scoped t_validator_rejects);
    Alcotest.test_case "write picks format by suffix" `Quick
      (scoped t_write_formats);
    Alcotest.test_case "pipeline stage spans" `Quick (scoped t_pipeline_spans);
  ]
