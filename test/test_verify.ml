(* Per-reference functional equivalence checking: the model-replay
   verifier (Foray_verify) and its generative differential campaign.

   The load-bearing property throughout: a model extracted from a trace
   must PROVE on that same trace — full-affine references from the
   model's absolute constant with no alignment, partial references with
   re-bases only where an excluded iterator moved — and any deliberate
   damage to the model must be refuted with a faithful counterexample
   (re-simulating the recorded iteration vector reproduces the recorded
   mismatch). *)

open Foray_core
module Verify = Foray_verify.Verify
module Progen = Foray_util.Progen
module Tracefile = Foray_trace.Tracefile

let th nexec nloc = Filter.{ nexec; nloc }

let run_offline ?(thresholds = Filter.default) ?shards ?jobs prog =
  match Pipeline.run_offline ~thresholds ?shards ?jobs prog with
  | Ok (o, trace) -> (o.Pipeline.result, trace)
  | Error e -> Alcotest.failf "pipeline error: %s" (Error.to_string e)

let verify_source ?thresholds ?shards src =
  let prog = Minic.Parser.program src in
  let r, trace = run_offline ?thresholds ?shards prog in
  (r, trace, Verify.verify r.Pipeline.model trace)

(* The same deliberate damage [foraygen verify --perturb] applies: DELTA
   onto the first reference's innermost coefficient, or its constant
   when no iterator survived. *)
let perturb delta (m : Model.t) =
  let hit = ref false in
  let mref (r : Model.mref) =
    if !hit then r
    else begin
      hit := true;
      match r.terms with
      | (c, lid) :: rest -> { r with terms = (c + delta, lid) :: rest }
      | [] -> { r with const = r.const + delta }
    end
  in
  let rec mloop (l : Model.mloop) =
    { l with Model.refs = List.map mref l.refs; subs = List.map mloop l.subs }
  in
  { m with Model.loops = List.map mloop m.loops }

let total_rebases (rep : Verify.report) =
  List.fold_left
    (fun acc (r : Verify.ref_verdict) -> acc + r.rebases)
    0 rep.refs

(* Write the stream to a trace file in [format] and read it back — the
   verifier must not care which wire format carried the events. *)
let roundtrip format events =
  let tmp = Filename.temp_file "foray_verify" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      Tracefile.with_sink ~format tmp (fun sink -> List.iter sink events);
      match Tracefile.read_events tmp with
      | Ok (arr, _) -> Array.to_list arr
      | Error _ -> Alcotest.fail "trace roundtrip failed")

(* Validate and Verify must tell one coherent story: a perfect replay
   ratio exactly when every reference proves without a single re-base,
   and identical per-reference re-base counts. *)
let check_validate_agreement ~ctx (model : Model.t) trace
    (rep : Verify.report) =
  let vrep = Validate.replay model trace in
  let perfect = Validate.overall vrep = 1.0 in
  let proved_norebase = Verify.all_proved rep && total_rebases rep = 0 in
  if perfect <> proved_norebase then
    Alcotest.failf
      "%s: overall=%.6f but verify says all_proved=%b rebases=%d" ctx
      (Validate.overall vrep) (Verify.all_proved rep) (total_rebases rep);
  List.iter
    (fun (rv : Verify.ref_verdict) ->
      match
        List.find_opt
          (fun (vr : Validate.ref_report) ->
            vr.site = rv.mref.Model.site && vr.path = rv.path)
          vrep.refs
      with
      | None -> Alcotest.failf "%s: verify ref missing from validate" ctx
      | Some vr ->
          if vr.checked <> rv.checked then
            Alcotest.failf "%s: checked disagree (%d vs %d)" ctx vr.checked
              rv.checked;
          if Verify.(rv.verdict = Proved) && vr.rebases <> rv.rebases then
            Alcotest.failf "%s: rebases disagree at site %x (%d vs %d)" ctx
              rv.mref.Model.site vr.rebases rv.rebases;
          (* a proved full-affine ref leaves Validate nothing to miss *)
          if
            Verify.(rv.verdict = Proved)
            && (not rv.mref.Model.partial)
            && vr.exact <> vr.checked
          then
            Alcotest.failf "%s: proved full-affine ref not fully exact" ctx)
    rep.refs

(* --- figures and benchmarks ------------------------------------------ *)

let t_fig4a_proves () =
  let _, _, rep = verify_source ~thresholds:(th 2 2) Foray_suite.Figures.fig4a in
  Alcotest.(check bool) "all proved" true (Verify.all_proved rep);
  Alcotest.(check int) "one reference" 1 (List.length rep.refs);
  Alcotest.(check int) "covers the six accesses" 6 rep.covered;
  Alcotest.(check int) "nothing diverged" 0 (Verify.diverged rep);
  Alcotest.(check bool) "scalars stay uncovered" true (rep.uncovered > 0)

let t_partial_rebases_prove () =
  (* fig7b's data-dependent offsets make partial references: they must
     still prove, re-basing exactly where an excluded iterator moved *)
  let r, trace, rep =
    verify_source ~thresholds:(th 10 5) Foray_suite.Figures.fig7b
  in
  Alcotest.(check bool) "has partial refs" true
    (List.exists
       (fun (rv : Verify.ref_verdict) -> rv.mref.Model.partial)
       rep.refs);
  Alcotest.(check bool) "all proved" true (Verify.all_proved rep);
  Alcotest.(check bool) "partials re-based" true (total_rebases rep > 0);
  check_validate_agreement ~ctx:"fig7b" r.Pipeline.model trace rep

let t_benchmarks_prove () =
  List.iter
    (fun (b : Foray_suite.Suite.bench) ->
      let r, trace, rep = verify_source b.source in
      if not (Verify.all_proved rep) then begin
        match Verify.first_divergence rep with
        | Some (rv, cx) ->
            Alcotest.failf "%s: site %x diverges: %s" b.name
              rv.mref.Model.site
              (Verify.counterexample_to_string cx)
        | None -> assert false
      end;
      Alcotest.(check int) (b.name ^ " nothing unseen") 0 (Verify.unseen rep);
      Alcotest.(check bool) (b.name ^ " refs checked") true (rep.covered > 0);
      check_validate_agreement ~ctx:b.name r.Pipeline.model trace rep)
    Foray_suite.Suite.all

(* --- boundary nests --------------------------------------------------- *)

let t_zero_trip_loop () =
  let src =
    "int A[64];\n\
     int B[64];\n\
     int main() {\n\
    \  int i;\n\
    \  int n;\n\
    \  n = 0;\n\
    \  for (i = 0; i < n; i++) { A[i] = i; }\n\
    \  for (i = 0; i < 8; i++) { B[i] = i; }\n\
    \  return 0;\n\
     }\n"
  in
  let r, trace, rep = verify_source ~thresholds:(th 1 1) src in
  Alcotest.(check bool) "all proved" true (Verify.all_proved rep);
  Alcotest.(check bool) "B captured and checked" true
    (List.exists
       (fun (rv : Verify.ref_verdict) -> rv.checked = 8)
       rep.refs);
  check_validate_agreement ~ctx:"zero-trip" r.Pipeline.model trace rep

let t_single_iteration_nest () =
  (* outer loop runs exactly once: the inner coefficient solves, the
     outer iterator never moves, and the reference must still prove *)
  let src =
    "int A[8];\n\
     int main() {\n\
    \  int i;\n\
    \  int j;\n\
    \  for (i = 0; i < 1; i++) {\n\
    \    for (j = 0; j < 8; j++) { A[i + j] = 7; }\n\
    \  }\n\
    \  return 0;\n\
     }\n"
  in
  let r, trace, rep = verify_source ~thresholds:(th 1 1) src in
  Alcotest.(check bool) "all proved" true (Verify.all_proved rep);
  Alcotest.(check bool) "the eight executions were checked" true
    (List.exists
       (fun (rv : Verify.ref_verdict) -> rv.checked = 8)
       rep.refs);
  check_validate_agreement ~ctx:"single-iter" r.Pipeline.model trace rep

let t_fully_degenerate_nest () =
  (* a 1x1 nest executes its reference once: no iterator ever solves, so
     Step 4 purges it (has_iterator) and verification is vacuous — no
     refs, everything uncovered, and Validate agrees at overall = 1.0 *)
  let src =
    "int A[8];\n\
     int main() {\n\
    \  int i;\n\
    \  int j;\n\
    \  for (i = 0; i < 1; i++) {\n\
    \    for (j = 0; j < 1; j++) { A[i + j] = 7; }\n\
    \  }\n\
    \  return 0;\n\
     }\n"
  in
  let r, trace, rep = verify_source ~thresholds:(th 1 1) src in
  Alcotest.(check int) "empty model" 0 (List.length rep.refs);
  Alcotest.(check bool) "vacuously proved" true (Verify.all_proved rep);
  Alcotest.(check int) "nothing covered" 0 rep.covered;
  Alcotest.(check int) "every access uncovered" rep.events rep.uncovered;
  check_validate_agreement ~ctx:"degenerate" r.Pipeline.model trace rep

let t_empty_stream_vacuous () =
  let prog = Minic.Parser.program Foray_suite.Figures.fig4a in
  let r, _ = run_offline ~thresholds:(th 2 2) prog in
  let rep = Verify.verify r.Pipeline.model [] in
  Alcotest.(check bool) "vacuously proved" true (Verify.all_proved rep);
  Alcotest.(check int) "every ref unseen" (List.length rep.refs)
    (Verify.unseen rep);
  Alcotest.(check int) "nothing covered" 0 rep.covered;
  Alcotest.(check int) "no events" 0 rep.events

(* --- determinism across analysis configurations ----------------------- *)

let t_seq_sharded_v1_v2_identical () =
  let b = Option.get (Foray_suite.Suite.find "adpcm") in
  let prog = Minic.Parser.program b.source in
  let r_seq, trace = run_offline prog in
  let r_par, trace_par = run_offline ~shards:4 ~jobs:2 prog in
  let base = Verify.report_to_json (Verify.verify r_seq.Pipeline.model trace) in
  let variants =
    [
      ("sharded model", Verify.verify r_par.Pipeline.model trace_par);
      ( "v1 roundtrip",
        Verify.verify r_seq.Pipeline.model (roundtrip Tracefile.Binary trace)
      );
      ( "v2 roundtrip",
        Verify.verify r_seq.Pipeline.model (roundtrip Tracefile.Binary2 trace)
      );
    ]
  in
  List.iter
    (fun (name, rep) ->
      Alcotest.(check string)
        (name ^ " verdicts byte-identical")
        base (Verify.report_to_json rep))
    variants

(* --- refutation: perturbed models must lose, faithfully ---------------- *)

let assert_faithful_divergences ctx (rep : Verify.report) =
  List.iter
    (fun (rv : Verify.ref_verdict) ->
      match rv.verdict with
      | Verify.Proved -> ()
      | Verify.Diverges cx ->
          if not (Verify.faithful rv.mref cx) then
            Alcotest.failf "%s: unfaithful counterexample: %s" ctx
              (Verify.counterexample_to_string cx);
          if cx.Verify.cx_event < 0 || cx.Verify.cx_event >= rep.events then
            Alcotest.failf "%s: counterexample event out of range" ctx;
          if cx.Verify.cx_exec < 0 || cx.Verify.cx_exec >= rv.checked then
            Alcotest.failf "%s: counterexample exec out of range" ctx)
    rep.refs

let t_perturbed_model_diverges () =
  let b = Option.get (Foray_suite.Suite.find "adpcm") in
  let prog = Minic.Parser.program b.source in
  let r, trace = run_offline prog in
  List.iter
    (fun delta ->
      let rep = Verify.verify (perturb delta r.Pipeline.model) trace in
      Alcotest.(check bool)
        (Printf.sprintf "delta %+d refuted" delta)
        true
        (Verify.diverged rep >= 1);
      assert_faithful_divergences "perturbed adpcm" rep)
    [ 4; -4; 1; 256 ]

let t_counterexample_renders () =
  let b = Option.get (Foray_suite.Suite.find "adpcm") in
  let prog = Minic.Parser.program b.source in
  let r, trace = run_offline prog in
  let rep = Verify.verify (perturb 8 r.Pipeline.model) trace in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    go 0
  in
  match Verify.first_divergence rep with
  | None -> Alcotest.fail "expected a divergence"
  | Some (_, cx) ->
      let s = Verify.counterexample_to_string cx in
      Alcotest.(check bool) "mentions predicted" true (contains s "predicted");
      let j = Verify.report_to_json rep in
      Alcotest.(check bool) "json carries the counterexample" true
        (contains j "\"counterexample\"")

(* --- the generative differential campaign ------------------------------ *)

type campaign_cfg = Seq | Shards of int | Wire_v1 | Wire_v2

let cfg_name = function
  | Seq -> "seq"
  | Shards n -> Printf.sprintf "shards=%d" n
  | Wire_v1 -> "v1"
  | Wire_v2 -> "v2"

let campaign_case (seed, nests, cfg) =
  let g = Progen.generate ~seed ~nests in
  let prog = Minic.Parser.program g.Progen.source in
  let r, trace =
    match cfg with
    | Shards n -> run_offline ~shards:n ~jobs:2 prog
    | Seq | Wire_v1 | Wire_v2 -> run_offline prog
  in
  let trace =
    match cfg with
    | Wire_v1 -> roundtrip Tracefile.Binary trace
    | Wire_v2 -> roundtrip Tracefile.Binary2 trace
    | Seq | Shards _ -> trace
  in
  let rep = Verify.verify r.Pipeline.model trace in
  (* 1. no oracle escapes: every reference proves on its own trace, and
     full-affine references prove without a single re-base *)
  if not (Verify.all_proved rep) then begin
    match Verify.first_divergence rep with
    | Some (rv, cx) ->
        QCheck2.Test.fail_reportf
          "seed %d nests %d %s: site %x diverges: %s\n%s" seed nests
          (cfg_name cfg) rv.Verify.mref.Model.site
          (Verify.counterexample_to_string cx)
          g.Progen.source
    | None -> assert false
  end;
  List.iter
    (fun (rv : Verify.ref_verdict) ->
      if (not rv.mref.Model.partial) && rv.rebases <> 0 then
        QCheck2.Test.fail_reportf
          "seed %d nests %d %s: full-affine ref re-based" seed nests
          (cfg_name cfg))
    rep.refs;
  (* 2. Validate tells the same story *)
  check_validate_agreement
    ~ctx:(Printf.sprintf "seed %d %s" seed (cfg_name cfg))
    r.Pipeline.model trace rep;
  true

let gen_campaign =
  let open QCheck2.Gen in
  let* seed = int_bound 999_999 in
  let* nests = int_range 1 4 in
  let* cfg = oneofl [ Seq; Shards 2; Shards 4; Wire_v1; Wire_v2 ] in
  return (seed, nests, cfg)

let print_campaign (seed, nests, cfg) =
  Printf.sprintf "seed=%d nests=%d cfg=%s" seed nests (cfg_name cfg)

let prop_campaign =
  QCheck2.Test.make
    ~name:"campaign: extract->verify proves on 220 random programs"
    ~count:220 ~print:print_campaign gen_campaign campaign_case

(* Differential refutation: damage the model, and the verifier must
   notice — with a counterexample whose re-simulation reproduces the
   mismatch. *)
let campaign_perturbed_case (seed, nests, delta) =
  let g = Progen.generate ~seed ~nests in
  let prog = Minic.Parser.program g.Progen.source in
  let r, trace = run_offline prog in
  let rep = Verify.verify (perturb delta r.Pipeline.model) trace in
  if Verify.diverged rep < 1 then
    QCheck2.Test.fail_reportf
      "seed %d nests %d delta %+d: damaged model still proves\n%s" seed nests
      delta g.Progen.source;
  assert_faithful_divergences
    (Printf.sprintf "seed %d delta %+d" seed delta)
    rep;
  true

let gen_perturbed =
  let open QCheck2.Gen in
  let* seed = int_bound 999_999 in
  let* nests = int_range 1 3 in
  let* mag = int_range 1 64 in
  let* sign = oneofl [ 1; -1 ] in
  return (seed, nests, mag * sign)

let print_perturbed (seed, nests, delta) =
  Printf.sprintf "seed=%d nests=%d delta=%+d" seed nests delta

let prop_campaign_perturbed =
  QCheck2.Test.make
    ~name:"campaign: damaged models are refuted with faithful \
           counterexamples"
    ~count:60 ~print:print_perturbed gen_perturbed campaign_perturbed_case

let tests =
  [
    Alcotest.test_case "fig4a proves" `Quick t_fig4a_proves;
    Alcotest.test_case "fig7b partials prove with rebases" `Quick
      t_partial_rebases_prove;
    Alcotest.test_case "all six benchmarks prove" `Slow t_benchmarks_prove;
    Alcotest.test_case "zero-trip loop" `Quick t_zero_trip_loop;
    Alcotest.test_case "single-iteration nest" `Quick t_single_iteration_nest;
    Alcotest.test_case "fully degenerate 1x1 nest is purged" `Quick
      t_fully_degenerate_nest;
    Alcotest.test_case "empty stream is vacuous" `Quick t_empty_stream_vacuous;
    Alcotest.test_case "verdicts identical across seq/sharded x v1/v2" `Quick
      t_seq_sharded_v1_v2_identical;
    Alcotest.test_case "perturbed model diverges faithfully" `Quick
      t_perturbed_model_diverges;
    Alcotest.test_case "counterexample rendering" `Quick
      t_counterexample_renders;
    QCheck_alcotest.to_alcotest prop_campaign;
    QCheck_alcotest.to_alcotest prop_campaign_perturbed;
  ]
